package c2mn

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"c2mn/internal/sim"
)

// testWorld generates a small venue and labeled workload.
func testWorld(t testing.TB) (*Space, []LabeledSequence) {
	t.Helper()
	space, err := GenerateBuilding(sim.SmallBuilding(), 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := sim.DefaultMobility(10, 1500)
	spec.StayMax = 300
	ds, err := GenerateMobility(space, spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	return space, ds.Sequences
}

func testAnnotator(t testing.TB) (*Annotator, []LabeledSequence) {
	t.Helper()
	space, data := testWorld(t)
	train, test := data[:7], data[7:]
	a, err := Train(space, train, TrainOptions{
		V:              6,
		Exact:          true,
		TuneClustering: true,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a, test
}

func TestTrainAndAnnotate(t *testing.T) {
	a, test := testAnnotator(t)
	var okR, okE, n int
	for i := range test {
		labels, ms, err := a.Annotate(&test[i].P)
		if err != nil {
			t.Fatal(err)
		}
		if len(labels.Regions) != test[i].P.Len() {
			t.Fatalf("label alignment broken")
		}
		if len(ms.Semantics) == 0 {
			t.Fatalf("no m-semantics for sequence %d", i)
		}
		for j := range labels.Regions {
			n++
			if labels.Regions[j] == test[i].Labels.Regions[j] {
				okR++
			}
			if labels.Events[j] == test[i].Labels.Events[j] {
				okE++
			}
		}
	}
	ra := float64(okR) / float64(n)
	ea := float64(okE) / float64(n)
	t.Logf("facade accuracy: RA=%.3f EA=%.3f", ra, ea)
	if ra < 0.6 || ea < 0.6 {
		t.Errorf("annotator accuracy too low: RA=%v EA=%v", ra, ea)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	a, test := testAnnotator(t)
	var model bytes.Buffer
	if err := a.Save(&model); err != nil {
		t.Fatal(err)
	}
	var spaceBuf bytes.Buffer
	if err := a.Space().WriteJSON(&spaceBuf); err != nil {
		t.Fatal(err)
	}
	space2, err := ReadSpace(&spaceBuf)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load(space2, &model)
	if err != nil {
		t.Fatal(err)
	}
	// Same labels from both annotators.
	la, _, err := a.Annotate(&test[0].P)
	if err != nil {
		t.Fatal(err)
	}
	lb, _, err := b.Annotate(&test[0].P)
	if err != nil {
		t.Fatal(err)
	}
	for i := range la.Regions {
		if la.Regions[i] != lb.Regions[i] || la.Events[i] != lb.Events[i] {
			t.Fatalf("reloaded annotator disagrees at %d", i)
		}
	}
	// Weights exposed and copied.
	w := a.Weights()
	w[0] = 1e9
	if a.Weights()[0] == 1e9 {
		t.Errorf("Weights must return a copy")
	}
}

// TestSaveLoadVersionedRoundTrip checks the model file carries the
// versioned header and that a Save→Load round trip reproduces the
// original annotator exactly: identical labels on every sequence of a
// seeded workload, and ErrModelVersion on files from the future.
func TestSaveLoadVersionedRoundTrip(t *testing.T) {
	a, test := testAnnotator(t)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var header struct {
		Format  string `json:"format"`
		Version int    `json:"version"`
	}
	if err := json.Unmarshal(buf.Bytes(), &header); err != nil {
		t.Fatal(err)
	}
	if header.Format != "c2mn-model" || header.Version < 1 {
		t.Fatalf("saved model header = %q v%d, want c2mn-model v>=1", header.Format, header.Version)
	}

	b, err := Load(a.Space(), bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Weights(), b.Weights()) {
		t.Fatal("reloaded weights differ")
	}
	for i := range test {
		la, msa, err := a.Annotate(&test[i].P)
		if err != nil {
			t.Fatal(err)
		}
		lb, msb, err := b.Annotate(&test[i].P)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(la, lb) {
			t.Fatalf("sequence %d: reloaded labels differ", i)
		}
		if !reflect.DeepEqual(msa, msb) {
			t.Fatalf("sequence %d: reloaded m-semantics differ", i)
		}
	}

	// A future format version is refused with the typed sentinel.
	future := strings.Replace(buf.String(), `"version":1`, `"version":99`, 1)
	if future == buf.String() {
		t.Fatal("version field not found in saved model")
	}
	if _, err := Load(a.Space(), strings.NewReader(future)); !errors.Is(err, ErrModelVersion) {
		t.Fatalf("future model version: err = %v, want ErrModelVersion", err)
	}
}

func TestAnnotateAllAndQueries(t *testing.T) {
	a, test := testAnnotator(t)
	ps := make([]PSequence, len(test))
	for i := range test {
		ps[i] = test[i].P
	}
	mss, err := a.AnnotateAll(ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(mss) != len(test) {
		t.Fatalf("AnnotateAll returned %d", len(mss))
	}
	regions := a.Space().Regions()
	w := Window{Start: 0, End: 1500}
	top := TopKPopularRegions(mss, regions, w, 3)
	if len(top) == 0 {
		t.Errorf("no popular regions found")
	}
	pairs := TopKFrequentPairs(mss, regions, w, 3)
	_ = pairs // pairs can legitimately be empty on tiny data
}

func TestAnnotateRejectsBadSequence(t *testing.T) {
	a, _ := testAnnotator(t)
	bad := PSequence{Records: []Record{
		{Loc: Loc(1, 1, 0), T: 10},
		{Loc: Loc(1, 1, 0), T: 5}, // out of order
	}}
	if _, _, err := a.Annotate(&bad); err == nil {
		t.Errorf("out-of-order sequence should fail")
	}
}

func TestPreprocessFacade(t *testing.T) {
	records := []Record{
		{Loc: Loc(0, 0, 0), T: 0},
		{Loc: Loc(0, 0, 0), T: 100},
		{Loc: Loc(0, 0, 0), T: 1000},
		{Loc: Loc(0, 0, 0), T: 1100},
	}
	out := Preprocess("dev", records, 300, 50)
	if len(out) != 2 {
		t.Errorf("Preprocess produced %d sequences", len(out))
	}
}

func TestTrainErrors(t *testing.T) {
	space, _ := testWorld(t)
	if _, err := Train(space, nil, TrainOptions{Exact: true}); err == nil {
		t.Errorf("no data should fail")
	}
}

func TestAnnotateWindowedFacade(t *testing.T) {
	a, test := testAnnotator(t)
	whole, _, err := a.Annotate(&test[0].P)
	if err != nil {
		t.Fatal(err)
	}
	windowed, ms, err := a.AnnotateWindowed(&test[0].P, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Semantics) == 0 {
		t.Fatalf("no m-semantics from windowed annotation")
	}
	n := len(whole.Regions)
	agree := 0
	for i := 0; i < n; i++ {
		if whole.Regions[i] == windowed.Regions[i] {
			agree++
		}
	}
	if f := float64(agree) / float64(n); f < 0.85 {
		t.Errorf("windowed agreement = %.3f", f)
	}
	bad := PSequence{Records: []Record{{T: 5}, {T: 1}}}
	if _, _, err := a.AnnotateWindowed(&bad, 10, 2); err == nil {
		t.Errorf("invalid sequence should fail")
	}
}
