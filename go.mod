module c2mn

go 1.24
