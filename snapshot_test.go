package c2mn

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// feedVenueHalfOpen feeds the test workload into a venue so that some
// sequences complete and the tail of every stream stays buffered as an
// open fragment — the state a live server carries at any instant.
func feedVenueHalfOpen(t *testing.T, vr *VenueRegistry, venue string, test []LabeledSequence) {
	t.Helper()
	for i := range test {
		records := test[i].P.Records
		cut := len(records) - len(records)/4 // keep a tail buffered
		if _, err := vr.FeedAll(venue, test[i].P.ObjectID, records[:cut]); err != nil {
			t.Fatal(err)
		}
	}
}

// feedVenueTails feeds the withheld record tails, completing the open
// fragments on whichever engine now serves the venue.
func feedVenueTails(t *testing.T, vr *VenueRegistry, venue string, test []LabeledSequence) {
	t.Helper()
	for i := range test {
		records := test[i].P.Records
		cut := len(records) - len(records)/4
		if _, err := vr.FeedAll(venue, test[i].P.ObjectID, records[cut:]); err != nil {
			t.Fatal(err)
		}
	}
	if err := vr.Flush(venue); err != nil {
		t.Fatal(err)
	}
}

// queryJSON renders a venue's top-k answers for byte comparison.
func queryJSON(t *testing.T, vr *VenueRegistry, venue string, q []RegionID) []byte {
	t.Helper()
	w := Window{Start: 0, End: 1e18}
	top, err := vr.TopKPopularRegions(venue, q, w, 10)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := vr.TopKFrequentPairs(venue, q, w, 10)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(struct {
		Regions []RegionCount
		Pairs   []PairCount
	}{top, pairs})
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestRegistrySnapshotRestoreWarm is the warm-restart property at the
// registry level: snapshot a serving venue (open fragments included),
// restore it into a freshly loaded venue in another registry, and the
// restored venue answers queries byte-identically, reports the same
// pipeline counters, and continues its open streams exactly where the
// captured venue left off.
func TestRegistrySnapshotRestoreWarm(t *testing.T) {
	a, test := testAnnotator(t)
	opts := WithVenueDefaults(WithPreprocess(120, 60), WithRetention(1e6))
	vr, err := NewVenueRegistry(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vr.Register("mall", a); err != nil {
		t.Fatal(err)
	}
	feedVenueHalfOpen(t, vr, "mall", test)

	dir := t.TempDir()
	path, err := vr.SnapshotVenue("mall", dir)
	if err != nil {
		t.Fatal(err)
	}
	if path != SnapshotPath(dir, "mall") {
		t.Fatalf("snapshot path = %q", path)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}

	// A second registry, same model and configuration, freshly loaded.
	vr2, err := NewVenueRegistry(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vr2.Register("mall", a); err != nil {
		t.Fatal(err)
	}
	restored, err := vr2.RestoreAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restored, []string{"mall"}) {
		t.Fatalf("RestoreAll restored %v", restored)
	}

	// Stored sequences, counters and answers match the captured venue.
	liveSeqs, _ := vr.Sequences("mall")
	warmSeqs, _ := vr2.Sequences("mall")
	if !reflect.DeepEqual(warmSeqs, liveSeqs) {
		t.Fatalf("restored store has %d sequences, live %d", len(warmSeqs), len(liveSeqs))
	}
	liveStats, warmStats := vr.Stats()["mall"], vr2.Stats()["mall"]
	if liveStats != warmStats {
		t.Fatalf("restored stats = %+v, live %+v", warmStats, liveStats)
	}
	if warmStats.PendingRecords == 0 {
		t.Fatal("fixture has no open fragments: the restart test is vacuous")
	}
	q := a.Space().Regions()
	if got, want := queryJSON(t, vr2, "mall", q), queryJSON(t, vr, "mall", q); !bytes.Equal(got, want) {
		t.Fatalf("restored answers diverge:\n got %s\nwant %s", got, want)
	}

	// The open fragments continue identically: feeding the withheld
	// tails into both registries yields the same final state.
	feedVenueTails(t, vr, "mall", test)
	feedVenueTails(t, vr2, "mall", test)
	liveSeqs, _ = vr.Sequences("mall")
	warmSeqs, _ = vr2.Sequences("mall")
	if !reflect.DeepEqual(warmSeqs, liveSeqs) {
		t.Fatal("post-restore ingestion diverges from the uninterrupted venue")
	}
	if got, want := queryJSON(t, vr2, "mall", q), queryJSON(t, vr, "mall", q); !bytes.Equal(got, want) {
		t.Fatalf("post-restore answers diverge:\n got %s\nwant %s", got, want)
	}
}

// TestRegistrySnapshotVenueIDEscaping: hostile venue IDs cannot climb
// out of the snapshot directory.
func TestRegistrySnapshotVenueIDEscaping(t *testing.T) {
	dir := t.TempDir()
	for _, id := range []string{"../evil", "a/b", "..", "c:d"} {
		p := SnapshotPath(dir, id)
		if filepath.Dir(p) != filepath.Clean(dir) {
			t.Fatalf("venue %q escapes the snapshot dir: %s", id, p)
		}
	}
}

// TestRegistryRestoreStaleModel pins the model guard: a snapshot
// captured under one model must not restore into the same venue ID
// running a retrained model — its stored semantics would mix two
// models' annotations.
func TestRegistryRestoreStaleModel(t *testing.T) {
	a, test := testAnnotator(t)
	vr, err := NewVenueRegistry()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vr.Register("mall", a); err != nil {
		t.Fatal(err)
	}
	if _, err := vr.FeedAll("mall", test[0].P.ObjectID, test[0].P.Records); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := vr.SnapshotVenue("mall", dir); err != nil {
		t.Fatal(err)
	}

	// "Retrain": perturb one weight through the model's own save/load
	// path, producing a valid model with a different hash.
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	weights := m["weights"].([]any)
	weights[0] = weights[0].(float64) + 1
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	retrained, err := Load(a.Space(), bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}

	vr2, err := NewVenueRegistry()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vr2.Register("mall", retrained); err != nil {
		t.Fatal(err)
	}
	err = vr2.RestoreVenue("mall", dir)
	if !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("stale-model restore: err = %v, want ErrSnapshotMismatch", err)
	}
	if !strings.Contains(err.Error(), "model hash") {
		t.Fatalf("mismatch error does not name the model: %v", err)
	}
	// The venue kept its fresh (cold) state.
	if seqs, _ := vr2.Sequences("mall"); len(seqs) != 0 {
		t.Fatal("failed restore left state behind")
	}
	// RestoreAll surfaces the same failure joined, restoring nothing.
	if restored, err := vr2.RestoreAll(dir); len(restored) != 0 || !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("RestoreAll = (%v, %v)", restored, err)
	}
}

// TestRegistryRestoreConflict pins the no-silent-overwrite contract: a
// venue that already ingested traffic refuses a restore.
func TestRegistryRestoreConflict(t *testing.T) {
	a, test := testAnnotator(t)
	vr, err := NewVenueRegistry()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vr.Register("mall", a); err != nil {
		t.Fatal(err)
	}
	if _, err := vr.FeedAll("mall", test[0].P.ObjectID, test[0].P.Records); err != nil {
		t.Fatal(err)
	}
	if err := vr.Flush("mall"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := vr.SnapshotVenue("mall", dir); err != nil {
		t.Fatal(err)
	}
	// The venue is still serving — restoring over it must conflict.
	if err := vr.RestoreVenue("mall", dir); !errors.Is(err, ErrSnapshotConflict) {
		t.Fatalf("restore over live venue: err = %v, want ErrSnapshotConflict", err)
	}
	before, _ := vr.Sequences("mall")
	if len(before) == 0 {
		t.Fatal("fixture venue stored nothing")
	}

	// A hot reload swaps in a fresh engine; the restore then lands.
	if _, err := vr.Register("mall", a); err != nil {
		t.Fatal(err)
	}
	if err := vr.RestoreVenue("mall", dir); err != nil {
		t.Fatal(err)
	}
	after, _ := vr.Sequences("mall")
	if !reflect.DeepEqual(after, before) {
		t.Fatal("post-reload restore did not reproduce the snapshot")
	}
}

// TestRegistryRestoreConfigMismatchAndMissing: a snapshot captured
// under different η/ψ preprocessing is refused, and a venue without a
// snapshot file surfaces os.ErrNotExist (RestoreAll treats it as a
// cold start).
func TestRegistryRestoreConfigMismatchAndMissing(t *testing.T) {
	a, test := testAnnotator(t)
	vr, err := NewVenueRegistry(WithVenueDefaults(WithPreprocess(120, 60)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vr.Register("mall", a); err != nil {
		t.Fatal(err)
	}
	if _, err := vr.FeedAll("mall", test[0].P.ObjectID, test[0].P.Records); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := vr.SnapshotVenue("mall", dir); err != nil {
		t.Fatal(err)
	}

	vr2, err := NewVenueRegistry(WithVenueDefaults(WithPreprocess(300, 60)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vr2.Register("mall", a); err != nil {
		t.Fatal(err)
	}
	if err := vr2.RestoreVenue("mall", dir); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("config-mismatch restore: err = %v, want ErrSnapshotMismatch", err)
	}

	if err := vr.RestoreVenue("nowhere", dir); !errors.Is(err, ErrUnknownVenue) {
		t.Fatalf("restore of unloaded venue: err = %v, want ErrUnknownVenue", err)
	}
	if err := vr2.RestoreVenue("mall", t.TempDir()); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("restore without file: err = %v, want ErrNotExist", err)
	}
	if restored, err := vr2.RestoreAll(t.TempDir()); err != nil || len(restored) != 0 {
		t.Fatalf("RestoreAll of empty dir = (%v, %v), want cold start", restored, err)
	}
}

// TestRegistryRestoreTruncatedSnapshot: a torn snapshot file fails
// with the typed corruption error — never a panic — and leaves the
// venue cold.
func TestRegistryRestoreTruncatedSnapshot(t *testing.T) {
	a, test := testAnnotator(t)
	vr, err := NewVenueRegistry()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vr.Register("mall", a); err != nil {
		t.Fatal(err)
	}
	if _, err := vr.FeedAll("mall", test[0].P.ObjectID, test[0].P.Records); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path, err := vr.SnapshotVenue("mall", dir)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	vr2, err := NewVenueRegistry()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vr2.Register("mall", a); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, len(whole) / 3, len(whole) - 1} {
		if err := os.WriteFile(path, whole[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := vr2.RestoreVenue("mall", dir); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("truncation at %d bytes: err = %v, want ErrSnapshotCorrupt", n, err)
		}
	}
	if seqs, _ := vr2.Sequences("mall"); len(seqs) != 0 {
		t.Fatal("corrupt restore left state behind")
	}
	// The intact bytes still restore (the guard is on content, not on
	// having failed before).
	if err := os.WriteFile(path, whole, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := vr2.RestoreVenue("mall", dir); err != nil {
		t.Fatal(err)
	}

	// A future-format snapshot is the version sentinel, not corruption.
	future := strings.Replace(string(whole), `"version":1`, `"version":99`, 1)
	if err := os.WriteFile(path, []byte(future), 0o644); err != nil {
		t.Fatal(err)
	}
	vr3, err := NewVenueRegistry()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vr3.Register("mall", a); err != nil {
		t.Fatal(err)
	}
	if err := vr3.RestoreVenue("mall", dir); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("future snapshot: err = %v, want ErrSnapshotVersion", err)
	}
}

// TestEngineWriteRestoreSnapshotStandalone drives the io.Reader/Writer
// surface directly on a standalone engine (no registry, no files).
func TestEngineWriteRestoreSnapshotStandalone(t *testing.T) {
	a, test := testAnnotator(t)
	e, err := NewEngine(a, WithPreprocess(120, 60))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.FeedAll(test[0].P.ObjectID, test[0].P.Records); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(a, WithPreprocess(120, 60))
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.RestoreSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e2.Sequences(), e.Sequences()) {
		t.Fatal("standalone restore diverges")
	}
	if e.Stats() != e2.Stats() {
		t.Fatalf("standalone stats = %+v, want %+v", e2.Stats(), e.Stats())
	}
}
