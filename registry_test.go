package c2mn

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

func testRegistry(t *testing.T, opts ...RegistryOption) (*VenueRegistry, *Annotator, []LabeledSequence) {
	t.Helper()
	a, test := testAnnotator(t)
	vr, err := NewVenueRegistry(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return vr, a, test
}

func TestVenueRegistryRoutingAndIsolation(t *testing.T) {
	vr, a, test := testRegistry(t, WithVenueDefaults(WithPreprocess(120, 60)))
	if _, err := vr.Register("north", a); err != nil {
		t.Fatal(err)
	}
	if _, err := vr.Register("south", a); err != nil {
		t.Fatal(err)
	}
	if got := vr.Venues(); !reflect.DeepEqual(got, []string{"north", "south"}) {
		t.Fatalf("Venues() = %v", got)
	}

	// The same object ID fed to both venues is two independent streams:
	// different records, independently segmented and stored.
	if _, err := vr.FeedAll("north", "obj", test[0].P.Records); err != nil {
		t.Fatal(err)
	}
	if _, err := vr.FeedAll("south", "obj", test[1].P.Records); err != nil {
		t.Fatal(err)
	}
	if err := vr.FlushAll(); err != nil {
		t.Fatal(err)
	}
	northSeqs, err := vr.Sequences("north")
	if err != nil {
		t.Fatal(err)
	}
	southSeqs, err := vr.Sequences("south")
	if err != nil {
		t.Fatal(err)
	}
	if len(northSeqs) == 0 || len(southSeqs) == 0 {
		t.Fatalf("venue stores empty: north=%d south=%d", len(northSeqs), len(southSeqs))
	}
	if reflect.DeepEqual(northSeqs, southSeqs) {
		t.Fatal("venues share state: identical store contents from different streams")
	}

	// Per-venue queries match the per-venue engines directly.
	w := Window{Start: 0, End: 1e9}
	q := a.Space().Regions()
	topN, err := vr.TopKPopularRegions("north", q, w, 5)
	if err != nil {
		t.Fatal(err)
	}
	ne, err := vr.Engine("north")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(topN, ne.TopKPopularRegions(q, w, 5)) {
		t.Fatal("routed query disagrees with the venue engine")
	}

	// Stats are broken down per venue.
	st := vr.Stats()
	if len(st) != 2 {
		t.Fatalf("Stats() covers %d venues", len(st))
	}
	if st["north"].FedRecords != int64(len(test[0].P.Records)) {
		t.Fatalf("north FedRecords = %d, want %d", st["north"].FedRecords, len(test[0].P.Records))
	}
	if st["south"].FedRecords != int64(len(test[1].P.Records)) {
		t.Fatalf("south FedRecords = %d, want %d", st["south"].FedRecords, len(test[1].P.Records))
	}
}

func TestVenueRegistryUnknownVenue(t *testing.T) {
	vr, a, test := testRegistry(t)
	if _, err := vr.Register("only", a); err != nil {
		t.Fatal(err)
	}
	if err := vr.Feed("nope", "o", Record{Loc: Loc(1, 1, 0), T: 1}); !errors.Is(err, ErrUnknownVenue) {
		t.Fatalf("Feed unknown venue: err = %v, want ErrUnknownVenue", err)
	}
	if _, _, err := vr.AnnotateCtx(context.Background(), "nope", &test[0].P); !errors.Is(err, ErrUnknownVenue) {
		t.Fatalf("AnnotateCtx unknown venue: err = %v", err)
	}
	if _, err := vr.TopKPopularRegions("nope", nil, Window{}, 1); !errors.Is(err, ErrUnknownVenue) {
		t.Fatalf("query unknown venue: err = %v", err)
	}
	if err := vr.Unload("nope"); !errors.Is(err, ErrUnknownVenue) {
		t.Fatalf("Unload unknown venue: err = %v", err)
	}
	if err := vr.Unload("only"); err != nil {
		t.Fatal(err)
	}
	if err := vr.Flush("only"); !errors.Is(err, ErrUnknownVenue) {
		t.Fatalf("Flush after unload: err = %v, want ErrUnknownVenue", err)
	}
	if vr.Len() != 0 {
		t.Fatalf("Len() = %d after unload", vr.Len())
	}
}

func TestVenueRegistryHotReload(t *testing.T) {
	vr, a, test := testRegistry(t)
	orig, err := vr.Register("mall", a)
	if err != nil {
		t.Fatal(err)
	}
	wantLabels, _, err := a.Annotate(&test[0].P)
	if err != nil {
		t.Fatal(err)
	}

	// Save the model, hot-reload it into the same venue ID.
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := vr.Load("mall", a.Space(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded == orig {
		t.Fatal("Load did not swap in a fresh engine")
	}
	cur, err := vr.Engine("mall")
	if err != nil {
		t.Fatal(err)
	}
	if cur != reloaded {
		t.Fatal("registry still routes to the old engine")
	}
	if cur.VenueID() != "mall" {
		t.Fatalf("VenueID = %q", cur.VenueID())
	}
	got, _, err := vr.AnnotateCtx(context.Background(), "mall", &test[0].P)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, wantLabels) {
		t.Fatal("hot-reloaded model labels differ from the original")
	}
}

func TestVenueRegistryMaxVenues(t *testing.T) {
	vr, a, _ := testRegistry(t, WithMaxVenues(1))
	if _, err := vr.Register("a", a); err != nil {
		t.Fatal(err)
	}
	if _, err := vr.Register("b", a); !errors.Is(err, ErrTooManyVenues) {
		t.Fatalf("over-limit load: err = %v, want ErrTooManyVenues", err)
	}
	// A hot reload of an existing venue is always allowed.
	if _, err := vr.Register("a", a); err != nil {
		t.Fatalf("hot reload at the limit failed: %v", err)
	}
	if _, err := vr.Register("", a); err == nil {
		t.Fatal("empty venue ID accepted")
	}
}

func TestVenueRegistryBudgetWaitIsCancellable(t *testing.T) {
	vr, a, test := testRegistry(t, WithVenueBudget(1))
	e, err := vr.Register("v", a)
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the only slot, then issue a request with an already-dead
	// context: it must fail with ErrCanceled instead of queuing behind
	// the held slot (and must not run inference once the slot frees).
	if err := e.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer e.release()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() {
		_, _, err := e.AnnotateCtx(ctx, &test[0].P)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("budget wait with dead ctx: err = %v, want ErrCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AnnotateCtx blocked on a held budget slot despite cancellation")
	}
}

func TestVenueRegistrySharedBudget(t *testing.T) {
	vr, a, test := testRegistry(t, WithVenueBudget(1))
	for _, id := range []string{"a", "b"} {
		if _, err := vr.Register(id, a); err != nil {
			t.Fatal(err)
		}
	}
	// With a single shared inference slot, concurrent batches on both
	// venues still complete (the budget serialises, not deadlocks).
	ps := []PSequence{test[0].P, test[1].P}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, id := range []string{"a", "b"} {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			_, errs[i] = vr.AnnotateAllCtx(context.Background(), id, ps)
		}(i, id)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("venue %d under shared budget: %v", i, err)
		}
	}
}
