// Command msload replays simulated indoor mobility as live traffic
// against a running msserve or msrouter and reports what the serving
// tier actually delivered: p50/p99 latency and throughput per request
// class, client-side 304 and 429 counts, and the server's query-cache
// hit ratio measured as a /v1/stats delta across the run.
//
// The harness speaks the same wire protocol msgen-produced datasets
// flow through: feed requests POST whole-object record batches to
// /v1/venues/{venue}/feed, query requests GET the top-k sugars with a
// bounded pool of distinct windows (so a steady-state mix re-asks
// questions, like real dashboards do) and carry If-None-Match when a
// previous response minted an ETag. -watch N holds N /v1/watch SSE
// subscriptions open for the run and reports push-lag percentiles;
// -max-runtime bounds the whole run's wall clock, fatally.
//
// Usage:
//
//	msload -base http://127.0.0.1:8080 -space mall.json -venues north,south \
//	       -requests 2000 -query-ratio 0.8 -concurrency 8 -seed 1 -md load.md
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"c2mn"
	"c2mn/internal/sim"
)

type wireRecord struct {
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Floor int     `json:"floor"`
	T     float64 `json:"t"`
}

type sequenceRequest struct {
	ObjectID string       `json:"object_id"`
	Records  []wireRecord `json:"records"`
}

// job is one pre-planned request. Feeds carry a complete object's
// records in one POST, so workers never race on stream ordering.
type job struct {
	query bool
	url   string // query target, or feed endpoint
	body  []byte // feed payload, nil for queries
}

// classStats accumulates one request class's outcomes.
type classStats struct {
	mu        sync.Mutex
	latencies []time.Duration
	notMod    int // 304s (queries)
	throttled int // 429s (feeds)
	errors    int
}

func (c *classStats) record(d time.Duration, status int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.latencies = append(c.latencies, d)
	switch {
	case status == http.StatusNotModified:
		c.notMod++
	case status == http.StatusTooManyRequests:
		c.throttled++
	case status < 200 || status > 299:
		c.errors++
	}
}

func (c *classStats) percentile(p float64) time.Duration {
	if len(c.latencies) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(c.latencies))
	copy(sorted, c.latencies)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// cacheTotals is the slice of /v1/stats totals the harness diffs; the
// shape matches both msserve and msrouter (EngineStats marshals its Go
// field names).
type cacheTotals struct {
	QueryCacheHits          int64
	QueryCacheMisses        int64
	QueryCacheRevalidations int64
}

func fetchTotals(client *http.Client, base string) (cacheTotals, error) {
	var resp struct {
		Totals cacheTotals `json:"totals"`
	}
	r, err := client.Get(base + "/v1/stats")
	if err != nil {
		return cacheTotals{}, err
	}
	defer r.Body.Close()
	buf, err := io.ReadAll(r.Body)
	if err != nil {
		return cacheTotals{}, err
	}
	if r.StatusCode != http.StatusOK {
		return cacheTotals{}, fmt.Errorf("GET /v1/stats: %s: %s", r.Status, buf)
	}
	if err := json.Unmarshal(buf, &resp); err != nil {
		return cacheTotals{}, err
	}
	return resp.Totals, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("msload: ")

	base := flag.String("base", "", "base URL of the msserve or msrouter under load (required)")
	spacePath := flag.String("space", "", "venue space JSON the mobility is generated over (required)")
	venuesFlag := flag.String("venues", "", "comma-separated venue IDs to target (required)")
	requests := flag.Int("requests", 1000, "total requests to issue")
	queryRatio := flag.Float64("query-ratio", 0.8, "fraction of requests that are queries (the rest feed)")
	concurrency := flag.Int("concurrency", 8, "concurrent workers")
	objects := flag.Int("objects", 20, "simulated objects feeding the venues")
	duration := flag.Float64("duration", 1800, "simulated object lifespan in seconds")
	seed := flag.Int64("seed", 1, "random seed for mobility and the request mix")
	windows := flag.Int("windows", 8, "distinct query windows in the rotation")
	k := flag.Int("k", 10, "top-k size the queries ask for")
	mdPath := flag.String("md", "", "write a markdown summary to this path")
	minHitRatio := flag.Float64("min-hit-ratio", 0, "fail when the server-side hit ratio lands below this")
	watch := flag.Int("watch", 0, "concurrent /v1/watch SSE subscribers held open for the run (0 = off)")
	maxRuntime := flag.Duration("max-runtime", 0, "hard wall-clock bound on the whole run; exceeding it is fatal (0 = unbounded)")
	flag.Parse()

	if *base == "" || *spacePath == "" || *venuesFlag == "" {
		flag.Usage()
		os.Exit(2)
	}
	venues := strings.Split(*venuesFlag, ",")
	for i := range venues {
		venues[i] = strings.TrimSpace(venues[i])
	}
	if *queryRatio < 0 || *queryRatio > 1 {
		log.Fatalf("query-ratio %v outside [0, 1]", *queryRatio)
	}

	sf, err := os.Open(*spacePath)
	if err != nil {
		log.Fatal(err)
	}
	space, err := c2mn.ReadSpace(sf)
	sf.Close()
	if err != nil {
		log.Fatalf("reading space: %v", err)
	}
	ds, err := c2mn.GenerateMobility(space, sim.DefaultMobility(*objects, *duration), *seed)
	if err != nil {
		log.Fatalf("generating mobility: %v", err)
	}
	if len(ds.Sequences) == 0 {
		log.Fatal("simulator produced no sequences")
	}

	jobs := planJobs(*base, venues, ds.Sequences, *requests, *queryRatio, *windows, *k, *seed)

	// The wall-clock bound is a watchdog, not a cancellation: CI calls
	// msload against freshly-started processes, and a hang anywhere —
	// a wedged stream, a dead backend, a stuck drain — must turn into a
	// loud failure instead of a six-hour job timeout.
	ctx := context.Background()
	if *maxRuntime > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *maxRuntime)
		defer cancel()
		watchdog := time.AfterFunc(*maxRuntime, func() {
			log.Fatalf("max runtime %v exceeded", *maxRuntime)
		})
		defer watchdog.Stop()
	}

	client := &http.Client{Timeout: 30 * time.Second}
	before, err := fetchTotals(client, *base)
	if err != nil {
		log.Fatalf("sampling pre-run stats: %v", err)
	}

	var queries, feeds classStats
	// etags remembers the freshest validator per query URL so repeat
	// queries revalidate instead of re-downloading.
	var etagMu sync.Mutex
	etags := map[string]string{}

	// lastFeedNano is the wall clock of the newest acknowledged feed
	// write; watchers measure push lag against it.
	var lastFeedNano atomic.Int64
	var ws *watchStats
	stopWatchers := func() {}
	if *watch > 0 {
		var maxT float64
		for _, ls := range ds.Sequences {
			if n := len(ls.P.Records); n > 0 && ls.P.Records[n-1].T > maxT {
				maxT = ls.P.Records[n-1].T
			}
		}
		ws, stopWatchers = startWatchers(ctx, *base, *watch, *k, maxT, &lastFeedNano)
	}

	start := time.Now()
	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range ch {
				runJob(ctx, client, jb, &queries, &feeds, &etagMu, etags, &lastFeedNano)
			}
		}()
	}
	for _, jb := range jobs {
		ch <- jb
	}
	close(ch)
	wg.Wait()
	// Leave the streams open briefly so pushes from the final feed
	// writes arrive and count, then tear them down.
	if *watch > 0 {
		select {
		case <-time.After(500 * time.Millisecond):
		case <-ctx.Done():
		}
	}
	stopWatchers()
	elapsed := time.Since(start)

	after, err := fetchTotals(client, *base)
	if err != nil {
		log.Fatalf("sampling post-run stats: %v", err)
	}
	hits := after.QueryCacheHits - before.QueryCacheHits
	misses := after.QueryCacheMisses - before.QueryCacheMisses
	revals := after.QueryCacheRevalidations - before.QueryCacheRevalidations
	hitRatio := 0.0
	if hits+misses > 0 {
		hitRatio = float64(hits) / float64(hits+misses)
	}

	qps := float64(len(jobs)) / elapsed.Seconds()
	fmt.Printf("%d requests in %v (%.1f req/s) against %s\n", len(jobs), elapsed.Round(time.Millisecond), qps, *base)
	fmt.Printf("queries: %-6d p50 %-10v p99 %-10v 304s %-5d errors %d\n",
		len(queries.latencies), queries.percentile(0.50), queries.percentile(0.99), queries.notMod, queries.errors)
	fmt.Printf("feeds:   %-6d p50 %-10v p99 %-10v 429s %-5d errors %d\n",
		len(feeds.latencies), feeds.percentile(0.50), feeds.percentile(0.99), feeds.throttled, feeds.errors)
	fmt.Printf("server query cache: hits %d, misses %d, revalidations %d, hit ratio %.3f\n",
		hits, misses, revals, hitRatio)
	if ws != nil {
		fmt.Printf("watch:   %d subscriber(s), %d event(s), lag p50 %-10v p99 %-10v resyncs %d reconnects %d goodbyes %d\n",
			*watch, ws.events, ws.percentile(0.50), ws.percentile(0.99), ws.resyncs, ws.reconnects, ws.goodbyes)
	}

	if *mdPath != "" {
		md := markdownSummary(len(jobs), elapsed, qps, &queries, &feeds, hits, misses, revals, hitRatio)
		if ws != nil {
			md += watchMarkdown(*watch, ws)
		}
		if err := os.WriteFile(*mdPath, []byte(md), 0o644); err != nil {
			log.Fatalf("writing markdown summary: %v", err)
		}
	}
	if queries.errors+feeds.errors > 0 {
		log.Fatalf("%d request(s) failed", queries.errors+feeds.errors)
	}
	if *minHitRatio > 0 && hitRatio < *minHitRatio {
		log.Fatalf("server hit ratio %.3f below the %.3f floor", hitRatio, *minHitRatio)
	}
}

// planJobs lays out the deterministic request mix: feeds hand each
// venue complete objects round-robin, queries rotate venue/fleet
// scopes, both kinds, and a bounded pool of windows so the mix
// revisits warm keys.
func planJobs(base string, venues []string, seqs []c2mn.LabeledSequence, requests int, queryRatio float64, windows, k int, seed int64) []job {
	rng := rand.New(rand.NewSource(seed))
	// Pre-chunk the dataset into feed payloads, one object per POST.
	// Each replay round mints fresh object IDs: re-feeding a finished
	// object's records would rewind its stream clock and be rejected.
	type feedPayload struct {
		venue   string
		records []wireRecord
	}
	var payloads []feedPayload
	for i, ls := range seqs {
		venue := venues[i%len(venues)]
		records := make([]wireRecord, len(ls.P.Records))
		for j, r := range ls.P.Records {
			records[j] = wireRecord{X: r.Loc.X, Y: r.Loc.Y, Floor: r.Loc.Floor, T: r.T}
		}
		payloads = append(payloads, feedPayload{venue: venue, records: records})
	}

	// The window pool: distinct half-open slices of the simulated time
	// range. Small enough that a steady query stream re-asks them.
	type span struct{ start, end float64 }
	var maxT float64
	for _, ls := range seqs {
		if n := len(ls.P.Records); n > 0 && ls.P.Records[n-1].T > maxT {
			maxT = ls.P.Records[n-1].T
		}
	}
	spans := make([]span, windows)
	for i := range spans {
		lo := rng.Float64() * maxT / 2
		spans[i] = span{start: lo, end: lo + maxT/2}
	}

	jobs := make([]job, 0, requests)
	fed := 0
	for i := 0; i < requests; i++ {
		if rng.Float64() < queryRatio {
			sp := spans[rng.Intn(len(spans))]
			kind := "popular-regions"
			if rng.Intn(2) == 1 {
				kind = "frequent-pairs"
			}
			scope := fmt.Sprintf("/v1/venues/%s/query/%s", venues[rng.Intn(len(venues))], kind)
			if rng.Intn(4) == 0 {
				scope = fmt.Sprintf("/v1/query/%s?scope=fleet&", kind)
			} else {
				scope += "?"
			}
			url := fmt.Sprintf("%s%sk=%d&start=%g&end=%g", base, scope, k, sp.start, sp.end)
			jobs = append(jobs, job{query: true, url: url})
			continue
		}
		p := payloads[fed%len(payloads)]
		body, err := json.Marshal(sequenceRequest{
			ObjectID: fmt.Sprintf("load-%d", fed),
			Records:  p.records,
		})
		if err != nil {
			log.Fatal(err)
		}
		fed++
		jobs = append(jobs, job{url: base + "/v1/venues/" + p.venue + "/feed", body: body})
	}
	return jobs
}

// runJob issues one request, timing it and folding the outcome into
// the class stats. Query responses feed the ETag table; acknowledged
// feeds stamp the shared last-feed clock the watchers lag against.
func runJob(ctx context.Context, client *http.Client, jb job, queries, feeds *classStats, etagMu *sync.Mutex, etags map[string]string, lastFeedNano *atomic.Int64) {
	var req *http.Request
	var err error
	if jb.query {
		req, err = http.NewRequestWithContext(ctx, http.MethodGet, jb.url, nil)
		if err == nil {
			etagMu.Lock()
			if etag := etags[jb.url]; etag != "" {
				req.Header.Set("If-None-Match", etag)
			}
			etagMu.Unlock()
		}
	} else {
		req, err = http.NewRequestWithContext(ctx, http.MethodPost, jb.url, bytes.NewReader(jb.body))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	resp, err := client.Do(req)
	elapsed := time.Since(start)
	if err != nil {
		// A transport failure counts as an error with the elapsed time
		// it burned; the run keeps going so one blip doesn't void it.
		cs := feeds
		if jb.query {
			cs = queries
		}
		cs.record(elapsed, 0)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if jb.query {
		if etag := resp.Header.Get("ETag"); etag != "" {
			etagMu.Lock()
			etags[jb.url] = etag
			etagMu.Unlock()
		}
		queries.record(elapsed, resp.StatusCode)
		return
	}
	if resp.StatusCode >= 200 && resp.StatusCode <= 299 {
		lastFeedNano.Store(time.Now().UnixNano())
	}
	feeds.record(elapsed, resp.StatusCode)
}

// watchMarkdown renders the subscriber class for the CI job summary.
func watchMarkdown(n int, ws *watchStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\n| watch (%d subscribers) | value |\n|---|---|\n", n)
	fmt.Fprintf(&b, "| events | %d |\n| lag p50 | %v |\n| lag p99 | %v |\n| resyncs | %d |\n| reconnects | %d |\n| goodbyes | %d |\n",
		ws.events, ws.percentile(0.50), ws.percentile(0.99), ws.resyncs, ws.reconnects, ws.goodbyes)
	return b.String()
}

// markdownSummary renders the run for a CI job summary.
func markdownSummary(total int, elapsed time.Duration, qps float64, queries, feeds *classStats, hits, misses, revals int64, hitRatio float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### msload\n\n")
	fmt.Fprintf(&b, "%d requests in %v (%.1f req/s)\n\n", total, elapsed.Round(time.Millisecond), qps)
	fmt.Fprintf(&b, "| class | requests | p50 | p99 | 304s | 429s | errors |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|\n")
	fmt.Fprintf(&b, "| queries | %d | %v | %v | %d | %d | %d |\n",
		len(queries.latencies), queries.percentile(0.50), queries.percentile(0.99), queries.notMod, queries.throttled, queries.errors)
	fmt.Fprintf(&b, "| feeds | %d | %v | %v | %d | %d | %d |\n",
		len(feeds.latencies), feeds.percentile(0.50), feeds.percentile(0.99), feeds.notMod, feeds.throttled, feeds.errors)
	fmt.Fprintf(&b, "\n| server query cache | value |\n|---|---|\n")
	fmt.Fprintf(&b, "| hits | %d |\n| misses | %d |\n| revalidations | %d |\n| hit ratio | %.3f |\n",
		hits, misses, revals, hitRatio)
	return b.String()
}
