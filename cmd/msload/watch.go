package main

// The -watch subscriber class: N concurrent SSE subscriptions to the
// target's /v1/watch endpoint, held open for the whole run. Each
// subscriber folds nothing — msload is a load generator, not a
// correctness harness — but it measures what dashboards feel: the lag
// between the newest acknowledged feed write and the next push event,
// and how often the stream degraded (resync events, reconnects).

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"c2mn/internal/notify"
)

// watchStats accumulates the subscriber class's outcomes across all
// concurrent watchers.
type watchStats struct {
	mu         sync.Mutex
	lags       []time.Duration
	events     int // data-bearing events (snapshot/delta/resync)
	resyncs    int // degraded pushes: the hub dropped signal detail
	reconnects int // stream re-establishments after the first connect
	goodbyes   int // server-terminated streams
}

func (ws *watchStats) event(lag time.Duration, haveLag bool) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	ws.events++
	if haveLag {
		ws.lags = append(ws.lags, lag)
	}
}

func (ws *watchStats) percentile(p float64) time.Duration {
	cs := classStats{latencies: ws.lags}
	return cs.percentile(p)
}

// runWatcher holds one SSE subscription open until ctx cancels,
// reconnecting with Last-Event-ID on any stream loss. lastFeedNano is
// the shared wall-clock of the newest acknowledged feed write; the lag
// sample for a push event is the time since that write, which bounds
// how stale a dashboard fed by this stream can be.
func runWatcher(ctx context.Context, client *http.Client, url string, lastFeedNano *atomic.Int64, ws *watchStats) {
	lastID := ""
	first := true
	for ctx.Err() == nil {
		if !first {
			ws.mu.Lock()
			ws.reconnects++
			ws.mu.Unlock()
			select {
			case <-time.After(200 * time.Millisecond):
			case <-ctx.Done():
				return
			}
		}
		first = false
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return
		}
		req.Header.Set("Accept", "text/event-stream")
		if lastID != "" {
			req.Header.Set("Last-Event-ID", lastID)
		}
		resp, err := client.Do(req)
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			continue
		}
		er := notify.NewEventReader(resp.Body)
		for {
			ev, err := er.Next()
			if err != nil {
				break
			}
			if ev.IsComment() {
				continue
			}
			if ev.ID != "" {
				lastID = ev.ID
			}
			switch ev.Name {
			case "goodbye":
				ws.mu.Lock()
				ws.goodbyes++
				ws.mu.Unlock()
			case "snapshot", "delta", "resync":
				fed := lastFeedNano.Load()
				ws.event(time.Since(time.Unix(0, fed)), fed != 0)
				if ev.Name == "resync" {
					ws.mu.Lock()
					ws.resyncs++
					ws.mu.Unlock()
				}
			}
		}
		resp.Body.Close()
	}
}

// startWatchers launches n subscribers against a fleet-scoped watch
// whose window covers the whole simulated time range, so every feed
// write is in scope. Returns the stats sink and a stop function that
// tears the streams down and waits them out.
func startWatchers(ctx context.Context, base string, n, k int, maxT float64, lastFeedNano *atomic.Int64) (*watchStats, func()) {
	ws := &watchStats{}
	// SSE streams are idle between events by design: no client timeout.
	client := &http.Client{}
	url := fmt.Sprintf("%s/v1/watch?scope=fleet&k=%d&start=0&end=%g", base, k, maxT+1)
	wctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runWatcher(wctx, client, url, lastFeedNano, ws)
		}()
	}
	return ws, func() {
		cancel()
		wg.Wait()
	}
}
