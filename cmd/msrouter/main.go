// Command msrouter is the stateless routing tier in front of a fleet
// of msserve backends. It owns no venue state: it keeps a backend
// table, health-checks each backend's /readyz, learns which backend
// hosts which venue, and places every venue on exactly one backend by
// rendezvous (highest-random-weight) hashing — overridable per venue
// with an explicit pin. Because the placement function is
// deterministic and stateless, any number of router instances (and
// any restart) compute the same routing.
//
// Usage:
//
//	msrouter -addr :9090 \
//	         -backends http://10.0.0.7:8080,http://10.0.0.8:8080 \
//	         -backend-token $MSSERVE_ADMIN_TOKEN
//
// The full msserve /v1 tree is proxied. Venue-scoped requests forward
// to the owning backend with bounded, jittered retries on connection
// errors only — an HTTP response, 429 backpressure included, is the
// backend's answer and passes through with its Retry-After untouched.
// Fleet- and multi-venue queries scatter across the owning backends,
// fetch untruncated per-venue partials, and merge them exactly: the
// answer is byte-identical to a single msserve holding every venue.
//
// GET /v1/watch (and /v1/venues/{venue}/watch) serves the fleet
// continuous-query plane: one client SSE stream multiplexed over
// per-owner upstream /v1/watch subscriptions, folded through the same
// exact merge path, resubscribing transparently through migration
// cutover and backend death via Last-Event-ID resume.
//
// Router-specific endpoints (the router's own admin plane lives under
// /v1/admin/; the pre-consolidation /admin/* mounts stay as deprecated
// aliases answering with Deprecation + successor-version Link headers):
//
//	GET    /v1/admin/backends      backend table with health + hosted venues
//	POST   /v1/admin/backends      {"url"}: add a backend
//	DELETE /v1/admin/backends?url= remove a backend
//	GET    /v1/admin/assignments   venue → backend placement (pins marked)
//	POST   /v1/admin/pins          {"venue","backend"}: pin a venue
//	DELETE /v1/admin/pins?venue=   drop a pin (placement reverts to HRW)
//	POST   /v1/admin/migrate       {"venue","to"}: live-migrate a venue
//	GET    /healthz                router liveness
//	GET    /readyz                 503 until at least one backend is ready
//
// The backends' consolidated /v1/admin/venues/{venue}/... tree proxies
// through to the venue's owner, with one router-side guard: a retrain
// trigger (POST .../retrain) against a venue mid-migration answers 409
// migration_conflict before reaching the backend — a hot swap landing
// under a migration would rotate the model the snapshot's identity
// guards were checked against.
//
// A migration drains the venue on its current owner, waits for the
// pipeline to settle, snapshots, transfers the snapshot to the target
// (which must hold the venue cold — loaded, never fed), restores it
// there, pins the venue, and retires the source copy; feeds arriving
// mid-migration get retryable 503s before cutover and 307s to the new
// owner after. Queries answer throughout.
//
// -admin-token gates the router's own admin plane; -backend-token is
// presented to the backends' admin endpoints (their -admin-token)
// during migrations and when proxying admin requests is not enough.
//
// On SIGINT/SIGTERM the router stops accepting connections and drains
// in-flight requests for up to -drain before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"c2mn/internal/router"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("msrouter: ")

	addr := flag.String("addr", ":9090", "listen address")
	backends := flag.String("backends", "", "comma-separated msserve base URLs (http://host:port)")
	adminToken := flag.String("admin-token", os.Getenv("MSROUTER_ADMIN_TOKEN"),
		"bearer token required on the router's /admin endpoints (empty = open)")
	backendToken := flag.String("backend-token", os.Getenv("MSSERVE_ADMIN_TOKEN"),
		"bearer token the router presents to backend admin endpoints during migrations")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "backend health-check period")
	retries := flag.Int("retries", 2, "retries per forwarded request on connection errors (never on HTTP responses)")
	maxBody := flag.Int64("max-body", 32<<20, "maximum buffered request body size in bytes")
	settleDelay := flag.Duration("settle-delay", 100*time.Millisecond,
		"delay between the stats polls that decide a draining venue has quiesced")
	watchHeartbeat := flag.Duration("watch-heartbeat", 15*time.Second,
		"comment-frame heartbeat period on /v1/watch client streams")
	watchIdleTimeout := flag.Duration("watch-idle-timeout", 60*time.Second,
		"abandon and resubscribe an upstream watch stream after this long without any frame (must exceed the backends' -watch-heartbeat)")
	watchConnectTimeout := flag.Duration("watch-connect-timeout", 15*time.Second,
		"end a /v1/watch client stream with a goodbye if any watched venue's first snapshot is still missing after this long")
	drain := flag.Duration("drain", 5*time.Second, "graceful shutdown drain timeout")
	pprofAddr := flag.String("pprof-addr", "",
		"serve net/http/pprof on this separate address (e.g. localhost:6061); never exposed on -addr (empty = off)")
	flag.Parse()

	if *pprofAddr != "" {
		startPprof(*pprofAddr)
	}
	var list []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			list = append(list, u)
		}
	}
	rt, err := router.New(router.Config{
		Backends:            list,
		AdminToken:          *adminToken,
		BackendToken:        *backendToken,
		HealthInterval:      *healthInterval,
		Retries:             *retries,
		MaxBody:             *maxBody,
		SettleDelay:         *settleDelay,
		WatchHeartbeat:      *watchHeartbeat,
		WatchIdleTimeout:    *watchIdleTimeout,
		WatchConnectTimeout: *watchConnectTimeout,
		Logf:                log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go rt.Run(ctx)

	srv := &http.Server{Handler: rt, ReadHeaderTimeout: 10 * time.Second}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("routing %d backend(s) on %s", len(list), ln.Addr())
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	// Standing watch streams never go idle; tell them to say goodbye
	// before Shutdown starts counting, or the drain always times out.
	rt.StopWatches()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Fatal(err)
	}
	log.Print("drained, bye")
}

// startPprof serves the net/http/pprof endpoints on their own listener
// and mux — never on the public -addr server, which fronts untrusted
// traffic. The explicit mux keeps the profiling surface disjoint from
// http.DefaultServeMux registrations.
func startPprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("pprof listener: %v", err)
	}
	log.Printf("pprof on http://%s/debug/pprof/", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			log.Printf("pprof server: %v", err)
		}
	}()
}
