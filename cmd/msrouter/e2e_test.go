//go:build e2e

package main

// End-to-end scale-out gate: build the real msserve and msrouter
// binaries, stand up two backends (each dual-loading both venues, so
// either can become a migration target) plus a single-process
// reference msserve holding the same venues, feed identical traffic
// through the router and the reference, and require every /v1 query
// and stats answer through the router to be byte-identical to the
// reference. Then live-migrate the venues off one backend — with the
// other venue taking feed traffic mid-migration — SIGKILL the vacated
// backend, and require the same byte-identical answers from the
// survivor.
//
// Run with: go test -tags e2e -run TestRouterMigrationE2E ./cmd/msrouter

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"c2mn"
	"c2mn/internal/notify"
	"c2mn/internal/sim"
)

const (
	testEta, testPsi = 120, 60
	backendToken     = "e2e-backend-secret"
	routerToken      = "e2e-router-secret"
)

// buildBinary compiles the command package at pkgDir into dir.
func buildBinary(t *testing.T, dir, name, pkgDir string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Dir = pkgDir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

// proc is one launched server process.
type proc struct {
	t    *testing.T
	name string
	cmd  *exec.Cmd
	base string
	done bool
}

// startProc launches bin and parses the bound address from the log
// line containing marker ("serving" for msserve, "routing" for
// msrouter) followed by " on ADDR".
func startProc(t *testing.T, name, bin string, args []string, marker string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("%s: %s", name, line)
			if i := strings.LastIndex(line, " on "); i >= 0 && strings.Contains(line, marker) {
				select {
				case addrCh <- strings.TrimSpace(line[i+4:]):
				default:
				}
			}
		}
	}()
	p := &proc{t: t, name: name, cmd: cmd}
	select {
	case addr := <-addrCh:
		p.base = "http://" + addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("%s did not report a listen address", name)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(p.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			return p
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("%s never became healthy: %v", name, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// stop SIGTERMs the process and waits for a clean exit.
func (p *proc) stop() {
	if p.done {
		return
	}
	p.done = true
	p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			p.t.Errorf("%s exited uncleanly: %v", p.name, err)
		}
	case <-time.After(30 * time.Second):
		p.cmd.Process.Kill()
		p.t.Errorf("%s did not exit after SIGTERM", p.name)
	}
}

// kill SIGKILLs the process — the crashed-backend scenario.
func (p *proc) kill() {
	if p.done {
		return
	}
	p.done = true
	p.cmd.Process.Kill()
	p.cmd.Wait()
}

type wireRecord struct {
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Floor int     `json:"floor"`
	T     float64 `json:"t"`
}

type sequenceRequest struct {
	ObjectID string       `json:"object_id"`
	Records  []wireRecord `json:"records"`
}

func toWire(records []c2mn.Record) []wireRecord {
	out := make([]wireRecord, len(records))
	for i, r := range records {
		out[i] = wireRecord{X: r.Loc.X, Y: r.Loc.Y, Floor: r.Loc.Floor, T: r.T}
	}
	return out
}

// doJSON sends body (marshaled) with method, an optional bearer
// token, and returns the response.
func doJSON(t *testing.T, method, url, token string, body any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	return resp
}

func mustOK(t *testing.T, resp *http.Response, what string) []byte {
	t.Helper()
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %s\n%s", what, resp.Status, buf)
	}
	return buf
}

// feed pushes records for one object into venue through base.
func feed(t *testing.T, base, venue, object string, records []wireRecord) {
	t.Helper()
	resp := doJSON(t, http.MethodPost, base+"/v1/venues/"+venue+"/feed", "",
		sequenceRequest{ObjectID: object, Records: records})
	mustOK(t, resp, "feed "+venue+"/"+object+" via "+base)
}

// trainFixture trains the shared small model and writes space/model
// files, returning their paths and the held-out test sequences.
func trainFixture(t *testing.T, dir string) (spacePath, modelPath string, test []c2mn.LabeledSequence) {
	t.Helper()
	space, err := c2mn.GenerateBuilding(sim.SmallBuilding(), 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := sim.DefaultMobility(10, 1500)
	spec.StayMax = 300
	ds, err := c2mn.GenerateMobility(space, spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	ann, err := c2mn.Train(space, ds.Sequences[:7], c2mn.TrainOptions{
		V: 6, Exact: true, TuneClustering: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	spacePath = filepath.Join(dir, "space.json")
	modelPath = filepath.Join(dir, "model.json")
	sf, err := os.Create(spacePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ann.Space().WriteJSON(sf); err != nil {
		t.Fatal(err)
	}
	sf.Close()
	mf, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ann.Save(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()
	return spacePath, modelPath, ds.Sequences[7:]
}

// e2eWatcher holds one /v1/watch SSE subscription open, folding the
// event stream into a standing answer — with automatic reconnect via
// Last-Event-ID, so migrations and drains on the serving side are
// invisible to the folded state except as ordinary events.
type e2eWatcher struct {
	t      *testing.T
	cancel context.CancelFunc
	mu     sync.Mutex
	answer notify.Answer
}

func startE2EWatcher(t *testing.T, url string) *e2eWatcher {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	w := &e2eWatcher{t: t, cancel: cancel}
	go func() {
		lastID := ""
		for ctx.Err() == nil {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
			if err != nil {
				return
			}
			req.Header.Set("Accept", "text/event-stream")
			if lastID != "" {
				req.Header.Set("Last-Event-ID", lastID)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				select {
				case <-time.After(100 * time.Millisecond):
				case <-ctx.Done():
				}
				continue
			}
			if resp.StatusCode != http.StatusOK {
				resp.Body.Close()
				select {
				case <-time.After(100 * time.Millisecond):
				case <-ctx.Done():
				}
				continue
			}
			er := notify.NewEventReader(resp.Body)
			for {
				ev, err := er.Next()
				if err != nil {
					break
				}
				if ev.IsComment() {
					continue
				}
				if ev.ID != "" {
					lastID = ev.ID
				}
				switch ev.Name {
				case "snapshot", "resync":
					var snap notify.SnapshotData
					if json.Unmarshal(ev.Data, &snap) != nil {
						continue
					}
					w.mu.Lock()
					w.answer = notify.Answer{Kind: snap.Kind, Regions: snap.Regions, Pairs: snap.Pairs}
					w.mu.Unlock()
				case "delta":
					var d notify.DeltaData
					if json.Unmarshal(ev.Data, &d) != nil {
						continue
					}
					w.mu.Lock()
					w.answer = notify.Apply(w.answer, d)
					w.mu.Unlock()
				}
			}
			resp.Body.Close()
		}
	}()
	t.Cleanup(cancel)
	return w
}

func (w *e2eWatcher) regionsJSON() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	buf, err := json.Marshal(w.answer.Regions)
	if err != nil {
		w.t.Fatal(err)
	}
	return string(buf)
}

func TestRouterMigrationE2E(t *testing.T) {
	dir := t.TempDir()
	spacePath, modelPath, test := trainFixture(t, dir)
	if len(test) < 3 {
		t.Fatalf("fixture too small: %d test sequences", len(test))
	}

	msserve := buildBinary(t, dir, "msserve", "../msserve")
	msrouter := buildBinary(t, dir, "msrouter", ".")

	// Two backends, each dual-loading both venues: the non-owning copy
	// stays cold (the router deterministically sends all traffic to the
	// owner), which is exactly the state a migration target must be in.
	backendArgs := func(snapDir string) []string {
		return []string{
			"-addr", "127.0.0.1:0",
			"-venue", "north=" + spacePath + "," + modelPath,
			"-venue", "south=" + spacePath + "," + modelPath,
			"-eta", fmt.Sprint(testEta), "-psi", fmt.Sprint(testPsi),
			"-admin-token", backendToken,
			"-snapshot-dir", snapDir,
			"-drain", "10s",
		}
	}
	b1 := startProc(t, "backend-1", msserve, backendArgs(filepath.Join(dir, "snap1")), "serving")
	defer b1.kill()
	b2 := startProc(t, "backend-2", msserve, backendArgs(filepath.Join(dir, "snap2")), "serving")
	defer b2.kill()

	// The reference: one msserve holding both venues, no router. Every
	// /v1 answer through the router must match this process byte for
	// byte.
	ref := startProc(t, "reference", msserve, []string{
		"-addr", "127.0.0.1:0",
		"-venue", "north=" + spacePath + "," + modelPath,
		"-venue", "south=" + spacePath + "," + modelPath,
		"-eta", fmt.Sprint(testEta), "-psi", fmt.Sprint(testPsi),
	}, "serving")
	defer ref.stop()

	rtr := startProc(t, "router", msrouter, []string{
		"-addr", "127.0.0.1:0",
		"-backends", b1.base + "," + b2.base,
		"-admin-token", routerToken,
		"-backend-token", backendToken,
		"-health-interval", "200ms",
		"-settle-delay", "20ms",
	}, "routing")
	defer rtr.stop()

	// Wait until the router has discovered both backends ready.
	waitReady := func() {
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get(rtr.base + "/readyz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatal("router never became ready")
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	waitReady()

	// owner asks the router where a venue's traffic goes.
	owner := func(venue string) string {
		t.Helper()
		resp := doJSON(t, http.MethodGet, rtr.base+"/admin/assignments", routerToken, nil)
		var body struct {
			Assignments []struct {
				Venue   string `json:"venue"`
				Backend string `json:"backend"`
			} `json:"assignments"`
		}
		if err := json.Unmarshal(mustOK(t, resp, "assignments"), &body); err != nil {
			t.Fatal(err)
		}
		for _, a := range body.Assignments {
			if a.Venue == venue {
				return a.Backend
			}
		}
		t.Fatalf("venue %q not in assignments: %+v", venue, body.Assignments)
		return ""
	}

	// Feed both venues identically through the router and the
	// reference: one full sequence each, then an open half-sequence
	// fragment the migration snapshot must carry across.
	open := toWire(test[2].P.Records)
	for i, venue := range []string{"north", "south"} {
		records := toWire(test[i].P.Records)
		feed(t, rtr.base, venue, "obj-"+venue, records)
		feed(t, ref.base, venue, "obj-"+venue, records)
		feed(t, rtr.base, venue, "late-"+venue, open[:len(open)/4])
		feed(t, ref.base, venue, "late-"+venue, open[:len(open)/4])
	}
	mustOK(t, doJSON(t, http.MethodPost, rtr.base+"/v1/flush", "", nil), "router flush")
	mustOK(t, doJSON(t, http.MethodPost, ref.base+"/v1/flush", "", nil), "reference flush")

	queries := []string{
		"/v1/venues/north/query/popular-regions?k=10&start=0&end=1e18",
		"/v1/venues/north/query/frequent-pairs?k=10&start=0&end=1e18",
		"/v1/venues/south/query/popular-regions?k=10&start=0&end=1e18",
		"/v1/venues/south/query/frequent-pairs?k=10&start=0&end=1e18",
		"/v1/query/popular-regions?scope=fleet&k=10&start=0&end=1e18",
		"/v1/query/frequent-pairs?scope=fleet&k=10&start=0&end=1e18",
		"/v1/venues/north/stats",
		"/v1/venues/south/stats",
		"/v1/stats",
	}
	// The query-cache counters are one sanctioned stats divergence
	// between the topologies: the router's conditional revalidations
	// land on the backends, while the reference never sees one.
	// StoreNotifications is the other: the change-feed counter is
	// process-local and not part of venue snapshots, so migration
	// leaves the source's count behind. Zero both before comparing;
	// every other byte must still match.
	cacheCounters := regexp.MustCompile(`"(QueryCacheHits|QueryCacheMisses|QueryCacheRevalidations|StoreNotifications)":-?\d+`)
	normalizeStats := func(q string, body []byte) []byte {
		if !strings.HasSuffix(q, "/stats") {
			return body
		}
		return cacheCounters.ReplaceAll(body, []byte(`"$1":0`))
	}
	compare := func(stage string) {
		t.Helper()
		for _, q := range queries {
			want := mustOK(t, doJSON(t, http.MethodGet, ref.base+q, "", nil), "reference "+q)
			got := mustOK(t, doJSON(t, http.MethodGet, rtr.base+q, "", nil), "router "+q)
			want = normalizeStats(q, want)
			got = normalizeStats(q, got)
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: %s diverged through the router:\n reference %s\n router    %s", stage, q, want, got)
			}
		}
		// The structured endpoint too: a fleet-scoped POST /v1/query.
		body := map[string]any{"kind": "popular-regions", "scope": "fleet", "k": 10}
		want := mustOK(t, doJSON(t, http.MethodPost, ref.base+"/v1/query", "", body), "reference POST /v1/query")
		got := mustOK(t, doJSON(t, http.MethodPost, rtr.base+"/v1/query", "", body), "router POST /v1/query")
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: POST /v1/query diverged:\n reference %s\n router    %s", stage, want, got)
		}
	}
	compare("pre-migration")

	// Standing watch streams on both tiers: a fleet-scoped subscriber
	// against the reference msserve and one through the router, held
	// open across the churn, the migrations, and the backend crash
	// below. At every quiescent compare point the folded SSE state must
	// be byte-identical to what polling the reference returns — the
	// push plane is the query plane, just delivered incrementally.
	watchQ := "/v1/watch?scope=fleet&k=10&start=0&end=1e18"
	refWatch := startE2EWatcher(t, ref.base+watchQ)
	rtrWatch := startE2EWatcher(t, rtr.base+watchQ)
	watchConverge := func(stage string) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		var want, gotRef, gotRtr string
		for {
			body := map[string]any{"kind": "popular-regions", "scope": "fleet", "k": 10}
			resp := mustOK(t, doJSON(t, http.MethodPost, ref.base+"/v1/query", "", body), "watch reference poll")
			var qr struct {
				Regions json.RawMessage `json:"regions"`
			}
			if err := json.Unmarshal(resp, &qr); err != nil {
				t.Fatal(err)
			}
			want = string(qr.Regions)
			if want == "" {
				want = "null"
			}
			gotRef, gotRtr = refWatch.regionsJSON(), rtrWatch.regionsJSON()
			if gotRef == want && gotRtr == want {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		t.Fatalf("%s: folded watch state diverged from the polling reference:\n poll      %s\n msserve   %s\n router    %s",
			stage, want, gotRef, gotRtr)
	}
	watchConverge("pre-migration")

	// Hot-store churn: repeat a fleet query with feeds interleaved, so
	// every venue's store generation moves between queries. The
	// router's partial cache must revalidate — never serve stale
	// bytes — and each answer must keep matching the reference. The
	// duplicate query up front (no churn yet) exercises the 304 reuse
	// path at an unchanged generation.
	fleetQ := "/v1/query/popular-regions?scope=fleet&k=10&start=0&end=1e18"
	churn := toWire(test[0].P.Records)
	if len(churn) > 6 {
		churn = churn[:6]
	}
	for i := -1; i < len(churn); i++ {
		if i >= 0 {
			feed(t, rtr.base, "north", "churn-north", churn[i:i+1])
			feed(t, ref.base, "north", "churn-north", churn[i:i+1])
		}
		want := mustOK(t, doJSON(t, http.MethodGet, ref.base+fleetQ, "", nil), "reference churn query")
		got := mustOK(t, doJSON(t, http.MethodGet, rtr.base+fleetQ, "", nil), "router churn query")
		if !bytes.Equal(got, want) {
			t.Fatalf("hot-store churn round %d diverged:\n reference %s\n router    %s", i, want, got)
		}
	}
	// The router's partial cache was really on the path: the churn
	// rounds must have revalidated cached partials, and the duplicate
	// query must have reused at least one via 304.
	{
		resp := doJSON(t, http.MethodGet, rtr.base+"/admin/backends", routerToken, nil)
		var body struct {
			ScatterCache struct {
				Hits          int64 `json:"hits"`
				Misses        int64 `json:"misses"`
				Revalidations int64 `json:"revalidations"`
			} `json:"scatter_cache"`
		}
		if err := json.Unmarshal(mustOK(t, resp, "backends"), &body); err != nil {
			t.Fatal(err)
		}
		if body.ScatterCache.Hits == 0 || body.ScatterCache.Revalidations == 0 {
			t.Fatalf("scatter cache idle through churn: %+v", body.ScatterCache)
		}
	}

	// Migrate every venue off b1 onto b2 — the first one with live
	// traffic still arriving at the other venue mid-migration — so b1
	// can die without losing anything.
	victims := []string{}
	for _, v := range []string{"north", "south"} {
		if owner(v) == b1.base {
			victims = append(victims, v)
		}
	}
	if len(victims) == 0 {
		// HRW put both venues on b2; make the scenario real by pinning
		// nothing and migrating in the other direction instead.
		b1, b2 = b2, b1
		for _, v := range []string{"north", "south"} {
			if owner(v) == b1.base {
				victims = append(victims, v)
			}
		}
	}
	if len(victims) == 0 {
		t.Fatal("no venue assigned to either backend")
	}

	// Live traffic during the first migration: stream the withheld
	// open-fragment tail into the venue that is NOT migrating, one
	// record at a time, while /admin/migrate runs.
	other := "north"
	if victims[0] == "north" {
		other = "south"
	}
	tail := open[len(open)/4 : len(open)/2]
	feederDone := make(chan struct{})
	go func() {
		defer close(feederDone)
		for i := range tail {
			feed(t, rtr.base, other, "late-"+other, tail[i:i+1])
		}
	}()

	for i, v := range victims {
		resp := doJSON(t, http.MethodPost, rtr.base+"/admin/migrate", routerToken,
			map[string]string{"venue": v, "to": b2.base})
		var report struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(mustOK(t, resp, "migrate "+v), &report); err != nil {
			t.Fatal(err)
		}
		if report.Status != "migrated" {
			t.Fatalf("migrating %q: status %q", v, report.Status)
		}
		if got := owner(v); got != b2.base {
			t.Fatalf("after migrating %q its owner is %q, want %q", v, got, b2.base)
		}
		if i == 0 {
			// When HRW put both venues on b1, "other" is also a victim:
			// the feeder must finish before ITS migration drains it, or
			// the drain 503s the feed. Live traffic during the first
			// migration is the scenario; the rest migrate quiesced.
			<-feederDone
		}
	}
	<-feederDone
	// Mirror the mid-migration traffic into the reference: same venue,
	// same records, same order — the engines are deterministic, so the
	// state must still match exactly.
	for i := range tail {
		feed(t, ref.base, other, "late-"+other, tail[i:i+1])
	}
	compare("post-migration")
	// The router-side subscriber rode out the cutover: its relays saw
	// the source copy retire, re-resolved the owner, and resumed on the
	// destination — without the client stream ever closing.
	watchConverge("post-migration")

	// Crash the vacated backend. The router's health checks notice and
	// every answer keeps coming, still byte-identical, from b2 alone.
	b1.kill()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := doJSON(t, http.MethodGet, rtr.base+"/admin/backends", routerToken, nil)
		var body struct {
			Backends []struct {
				URL   string `json:"url"`
				Ready bool   `json:"ready"`
			} `json:"backends"`
		}
		if err := json.Unmarshal(mustOK(t, resp, "backends"), &body); err != nil {
			t.Fatal(err)
		}
		dead := false
		for _, b := range body.Backends {
			if b.URL == b1.base && !b.Ready {
				dead = true
			}
		}
		if dead {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("router never noticed the killed backend")
		}
		time.Sleep(50 * time.Millisecond)
	}
	compare("post-crash")
	watchConverge("post-crash")

	// The migrated state is still live, not a read-only copy: finish
	// the open fragments on the survivor and flush them through.
	for _, venue := range []string{"north", "south"} {
		feed(t, rtr.base, venue, "late-"+venue, open[len(open)/2:])
		feed(t, ref.base, venue, "late-"+venue, open[len(open)/2:])
	}
	mustOK(t, doJSON(t, http.MethodPost, rtr.base+"/v1/flush", "", nil), "post-crash router flush")
	mustOK(t, doJSON(t, http.MethodPost, ref.base+"/v1/flush", "", nil), "post-crash reference flush")
	compare("post-crash-feed")
	watchConverge("post-crash-feed")
	refWatch.cancel()
	rtrWatch.cancel()
}
