package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync/atomic"
	"testing"

	"c2mn"
)

// noRedirect is a client that surfaces 307s instead of chasing them,
// like the router does.
var noRedirect = &http.Client{
	CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
}

func TestServerReadyzSeparateFromHealthz(t *testing.T) {
	registry, _ := testRegistry(t, "north")
	var ready atomic.Bool
	ready.Store(true)
	ts := httptest.NewServer(newServer(registry, defaultMaxBody, "", withReadiness(&ready)))
	defer ts.Close()

	for _, path := range []string{"/readyz", "/v1/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s while ready = %s", path, resp.Status)
		}
	}

	// Drain starts: readiness flips, liveness must not.
	ready.Store(false)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %s, want 503", resp.Status)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while draining = %s; liveness must never follow readiness", resp.Status)
	}
}

func TestServerVenueDrainLifecycle(t *testing.T) {
	registry, test := testRegistry(t, "north")
	ts := httptest.NewServer(newServer(registry, defaultMaxBody, ""))
	defer ts.Close()

	// feed sends one record through a client that surfaces 307s.
	feedBody, err := json.Marshal(sequenceRequest{
		ObjectID: "obj", Records: toWire(test[0].P.Records[:1]),
	})
	if err != nil {
		t.Fatal(err)
	}
	feed := func() *http.Response {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/venues/north/feed",
			bytes.NewReader(feedBody))
		resp, err := noRedirect.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Serving normally.
	resp := feed()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain feed = %s", resp.Status)
	}
	resp.Body.Close()

	// Drain without a redirect: feeds 503 with Retry-After, queries
	// keep answering, the venue listing flags the drain.
	resp = postJSON(t, ts.URL+"/v1/venues/north/drain", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain = %s", resp.Status)
	}
	resp.Body.Close()
	resp = feed()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drained feed = %s, want 503", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drained feed carries no Retry-After")
	}
	e := decodeBody[v1Error](t, resp)
	if e.Error.Code != "venue_draining" {
		t.Fatalf("drained feed code = %q", e.Error.Code)
	}
	resp, err = http.Get(ts.URL + "/v1/venues/north/query/popular-regions?k=3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query against drained venue = %s; reads must keep serving", resp.Status)
	}
	resp, err = http.Get(ts.URL + "/v1/venues")
	if err != nil {
		t.Fatal(err)
	}
	list := decodeBody[struct {
		Venues []venueInfo `json:"venues"`
	}](t, resp)
	if len(list.Venues) != 1 || !list.Venues[0].Draining {
		t.Fatalf("venue listing during drain = %+v", list.Venues)
	}

	// Cutover: re-drain with a redirect target; stragglers get 307 to
	// the new owner's feed path.
	resp = postJSON(t, ts.URL+"/v1/venues/north/drain", map[string]string{"redirect_to": "http://new-owner:8080"})
	resp.Body.Close()
	resp = feed()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("post-cutover feed = %s, want 307", resp.Status)
	}
	if got, want := resp.Header.Get("Location"), "http://new-owner:8080/v1/venues/north/feed"; got != want {
		t.Fatalf("redirect Location = %q, want %q", got, want)
	}
	resp.Body.Close()

	// Undrain: service resumes.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/venues/north/drain", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("undrain = %s", resp.Status)
	}
	resp = feed()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-undrain feed = %s", resp.Status)
	}
	resp.Body.Close()

	// Undraining a venue that is not draining: 404. Draining an
	// unknown venue: 404.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/venues/north/drain", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double undrain = %s, want 404", resp.Status)
	}
	resp = postJSON(t, ts.URL+"/v1/venues/nowhere/drain", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("drain unknown venue = %s, want 404", resp.Status)
	}
}

// TestServerSnapshotFileTransfer walks the migration transfer leg:
// snapshot on the source, download the file, upload into a cold
// twin, and verify the state moved exactly — plus every guard on the
// upload path.
func TestServerSnapshotFileTransfer(t *testing.T) {
	registry, test := testRegistry(t, "default")
	srcDir := t.TempDir()
	src := httptest.NewServer(newServer(registry, defaultMaxBody, "", withSnapshotDir(srcDir)))
	defer src.Close()

	for i := range test {
		resp := postJSON(t, src.URL+"/v1/feed", sequenceRequest{
			ObjectID: fmt.Sprintf("obj%d", i), Records: toWire(test[i].P.Records),
		})
		resp.Body.Close()
	}
	resp := postJSON(t, src.URL+"/v1/venues/default/snapshot", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot trigger = %s", resp.Status)
	}

	// Download and compare with the on-disk file byte for byte.
	resp, err := http.Get(src.URL + "/v1/venues/default/snapshot/file")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot download = %s", resp.Status)
	}
	disk, err := os.ReadFile(c2mn.SnapshotPath(srcDir, "default"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, disk) {
		t.Fatalf("downloaded snapshot differs from the on-disk file (%d vs %d bytes)", len(snap), len(disk))
	}

	// Upload into a cold twin backend: state transfers exactly and the
	// uploaded bytes persist into the target's snapshot dir.
	ann, _ := testParts(t)
	coldReg, err := c2mn.NewVenueRegistry(c2mn.WithVenueDefaults(c2mn.WithPreprocess(testEta, testPsi)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coldReg.Register("default", ann); err != nil {
		t.Fatal(err)
	}
	dstDir := t.TempDir()
	dst := httptest.NewServer(newServer(coldReg, defaultMaxBody, "", withSnapshotDir(dstDir)))
	defer dst.Close()

	put := func(url string, body []byte) *http.Response {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp = put(dst.URL+"/v1/venues/default/snapshot/file", snap)
	if resp.StatusCode != http.StatusOK {
		buf, _ := io.ReadAll(resp.Body)
		t.Fatalf("snapshot upload = %s: %s", resp.Status, buf)
	}
	restored := decodeBody[map[string]any](t, resp)
	if restored["status"] != "restored" {
		t.Fatalf("upload response = %v", restored)
	}
	if got, want := coldReg.Stats()["default"], registry.Stats()["default"]; got != want {
		t.Fatalf("restored stats = %+v, want %+v", got, want)
	}
	if _, err := os.Stat(c2mn.SnapshotPath(dstDir, "default")); err != nil {
		t.Fatalf("uploaded snapshot not persisted on the target: %v", err)
	}
	// Freshness: the venue listing reports the restore as a snapshot.
	resp, err = http.Get(dst.URL + "/v1/venues")
	if err != nil {
		t.Fatal(err)
	}
	list := decodeBody[struct {
		Venues []venueInfo `json:"venues"`
	}](t, resp)
	if len(list.Venues) != 1 || list.Venues[0].SnapshotStale || list.Venues[0].LastSnapshotUnix == 0 {
		t.Fatalf("post-restore venue listing = %+v", list.Venues)
	}

	// Guard: restoring over live state is refused with a typed 409.
	resp = put(dst.URL+"/v1/venues/default/snapshot/file", snap)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("double restore = %s, want 409", resp.Status)
	}
	e := decodeBody[v1Error](t, resp)
	if e.Error.Code != "snapshot_conflict" {
		t.Fatalf("double restore code = %q", e.Error.Code)
	}

	// Guard: garbage is a typed 422, and the venue's state survives.
	resp = put(dst.URL+"/v1/venues/default/snapshot/file", []byte("not a snapshot"))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("garbage upload = %s, want 422", resp.Status)
	}
	e = decodeBody[v1Error](t, resp)
	if e.Error.Code != "snapshot_corrupt" {
		t.Fatalf("garbage upload code = %q", e.Error.Code)
	}

	// Guard: unknown venue 404; download without persistence 409;
	// download before any snapshot 404.
	resp = put(dst.URL+"/v1/venues/nowhere/snapshot/file", snap)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("upload to unknown venue = %s, want 404", resp.Status)
	}
	noDir := httptest.NewServer(newServer(registry, defaultMaxBody, ""))
	defer noDir.Close()
	resp, err = http.Get(noDir.URL + "/v1/venues/default/snapshot/file")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("download with persistence off = %s, want 409", resp.Status)
	}
	emptyDir := httptest.NewServer(newServer(coldReg, defaultMaxBody, "", withSnapshotDir(t.TempDir())))
	defer emptyDir.Close()
	resp, err = http.Get(emptyDir.URL + "/v1/venues/default/snapshot/file")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("download before any snapshot = %s, want 404", resp.Status)
	}

	// The transfer endpoints are admin surface: token-gated both ways.
	gated := httptest.NewServer(newServer(registry, defaultMaxBody, "s3cret", withSnapshotDir(srcDir)))
	defer gated.Close()
	resp, err = http.Get(gated.URL + "/v1/venues/default/snapshot/file")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless download = %s, want 401", resp.Status)
	}
	resp = put(gated.URL+"/v1/venues/default/snapshot/file", snap)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless upload = %s, want 401", resp.Status)
	}
}

// TestServerSnapshotFreshnessColumns pins the /v1/venues snapshot
// freshness satellite: stale until snapshotted, fresh after, stale
// again as soon as the counters move.
func TestServerSnapshotFreshnessColumns(t *testing.T) {
	registry, test := testRegistry(t, "north")
	dir := t.TempDir()
	ts := httptest.NewServer(newServer(registry, defaultMaxBody, "", withSnapshotDir(dir)))
	defer ts.Close()

	venueRow := func() venueInfo {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/venues")
		if err != nil {
			t.Fatal(err)
		}
		list := decodeBody[struct {
			Venues []venueInfo `json:"venues"`
		}](t, resp)
		if len(list.Venues) != 1 {
			t.Fatalf("venue listing = %+v", list.Venues)
		}
		return list.Venues[0]
	}

	if row := venueRow(); !row.SnapshotStale || row.LastSnapshotUnix != 0 {
		t.Fatalf("never-snapshotted row = %+v, want stale with no timestamp", row)
	}
	resp := postJSON(t, ts.URL+"/v1/venues/north/feed", sequenceRequest{
		ObjectID: "obj", Records: toWire(test[0].P.Records),
	})
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/v1/venues/north/snapshot", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot = %s", resp.Status)
	}
	if row := venueRow(); row.SnapshotStale || row.LastSnapshotUnix == 0 {
		t.Fatalf("freshly snapshotted row = %+v, want fresh with a timestamp", row)
	}
	resp = postJSON(t, ts.URL+"/v1/venues/north/feed", sequenceRequest{
		ObjectID: "obj2", Records: toWire(test[1].P.Records),
	})
	resp.Body.Close()
	if row := venueRow(); !row.SnapshotStale {
		t.Fatalf("row after more traffic = %+v, want stale again", row)
	}
}

// TestServerRequestIDPropagation pins the X-Request-ID satellite: an
// inbound ID is echoed on the response and embedded in /v1 error
// payloads; absent IDs stay absent (the router, not msserve,
// generates).
func TestServerRequestIDPropagation(t *testing.T) {
	registry, _ := testRegistry(t, "north")
	ts := httptest.NewServer(newServer(registry, defaultMaxBody, ""))
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/venues/nowhere/stats", nil)
	req.Header.Set("X-Request-ID", "req-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "req-abc-123" {
		t.Fatalf("echoed X-Request-ID = %q", got)
	}
	e := decodeBody[v1Error](t, resp)
	if e.Error.Code != "unknown_venue" || e.Error.RequestID != "req-abc-123" {
		t.Fatalf("error payload = %+v, want the request ID embedded", e.Error)
	}

	// No inbound ID: no synthesized one on the backend.
	resp, err = http.Get(ts.URL + "/v1/venues")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "" {
		t.Fatalf("unsolicited X-Request-ID = %q", got)
	}
}
