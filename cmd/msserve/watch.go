package main

// The continuous-query endpoint: GET /v1/watch (and its venue-scoped
// twin GET /v1/venues/{venue}/watch) upgrades the polling query sugar
// into a standing subscription. The handler registers the same
// composable Query the one-shot funnel executes, then re-executes it —
// through the generation-keyed result cache, so an unchanged store
// costs an LRU hit — only when the change-feed hub says a subscribed
// venue's generation moved, and pushes the difference as SSE events.
//
// Exactness contract: every data-bearing event's id: is the composite
// generation of the scanned venues (the /v1/query ETag, unquoted), and
// folding the event stream reproduces, at each id, the byte-identical
// answer a poll at that generation would have returned. A reconnect
// with Last-Event-ID equal to the current composite resumes without a
// snapshot; any other value gets a fresh snapshot, because a moved
// generation means the client's folded answer may describe history the
// store no longer remembers.
//
// The resume-skip is only sound because event ids are exact: the
// generations stamped on an event are captured under each store's lock
// together with that venue's partial answer (QueryResult.Generations),
// so an event can never carry bytes newer than its id claims. With a
// racy sample — generations read before execution — a write landing
// mid-query would label gen-N+1 bytes as gen-N; a client reconnecting
// at gen-N would then have its snapshot skipped while holding different
// bytes than the server diffs against, silently diverging forever.

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"c2mn"
	"c2mn/internal/notify"
)

// defaultWatchHeartbeat keeps idle streams alive through proxies and
// load balancers whose idle timeouts are commonly 30–60 s.
const defaultWatchHeartbeat = 15 * time.Second

// watchKind parses ?kind= (default popular-regions).
func watchKind(r *http.Request) (c2mn.QueryKind, error) {
	switch v := r.URL.Query().Get("kind"); v {
	case "", string(c2mn.QueryPopularRegions):
		return c2mn.QueryPopularRegions, nil
	case string(c2mn.QueryFrequentPairs):
		return c2mn.QueryFrequentPairs, nil
	default:
		return "", fmt.Errorf("bad kind %q (want %q or %q)", v, c2mn.QueryPopularRegions, c2mn.QueryFrequentPairs)
	}
}

// watchExecute runs the standing query and returns the exact per-venue
// generations the answer was computed at: each venue's generation is
// captured under its store lock atomically with its partial answer, so
// the resulting event id can neither understate nor overstate the
// bytes it stamps — the property the Last-Event-ID resume-skip
// depends on.
func (s *server) watchExecute(r *http.Request, q c2mn.Query) (map[string]uint64, c2mn.QueryResult, error) {
	res, err := s.registry.Query(r.Context(), q)
	if err != nil {
		return nil, c2mn.QueryResult{}, err
	}
	return res.Generations, res, nil
}

// watchSnapshot renders a QueryResult as a snapshot/resync payload.
func watchSnapshot(res c2mn.QueryResult) notify.SnapshotData {
	return notify.SnapshotData{
		Kind:    string(res.Kind),
		K:       res.K,
		Scanned: res.Scanned,
		Regions: res.Regions,
		Pairs:   res.Pairs,
	}
}

// watchAnswer is the folded-state view of a QueryResult.
func watchAnswer(res c2mn.QueryResult) notify.Answer {
	return notify.Answer{Kind: string(res.Kind), Regions: res.Regions, Pairs: res.Pairs}
}

// handleWatch serves GET /v1/watch and GET /v1/venues/{venue}/watch.
func (s *server) handleWatch(w http.ResponseWriter, r *http.Request) {
	kind, err := watchKind(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	scope, venues, err := s.sugarScope(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	regions, win, k, err := sugarParams(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	q := c2mn.Query{Kind: kind, Scope: scope, Venues: venues, Regions: regions, Window: win, K: k}

	// Subscribe before the first execution: a generation that moves
	// between the two is pended, so the loop re-executes rather than
	// missing it. Fleet scope uses the wildcard subscription — it must
	// also see venues loaded after the stream began.
	var subVenues []string
	if scope != c2mn.ScopeFleet {
		subVenues = venues
	}
	sub := s.watchHub.Subscribe(subVenues, 0)
	defer sub.Close()

	ids, res, err := s.watchExecute(r, q)
	if err != nil {
		// Still a plain HTTP response: the stream has not started, so a
		// bad venue or malformed query fails like the one-shot endpoint.
		writeQueryError(w, r, err)
		return
	}

	hb := s.watchHeartbeat
	if hb <= 0 {
		hb = defaultWatchHeartbeat
	}
	sw, err := notify.NewSSEWriter(w, 3*hb)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}

	answer, curID := watchAnswer(res), notify.EncodeEventID(ids)
	if last := r.Header.Get("Last-Event-ID"); last == "" || last != curID {
		// An unmatched Last-Event-ID gets a full snapshot: the server
		// cannot reconstruct the answer the client folded up to, and the
		// generation contract makes the replacement exact.
		if err := sw.Event("snapshot", curID, watchSnapshot(res)); err != nil {
			return
		}
	}

	ticker := time.NewTicker(hb)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.watchShutdown:
			// Process drain: readiness already flipped off; tell the client
			// to reconnect elsewhere, then let Shutdown reap the handler.
			sw.Event("goodbye", curID, notify.GoodbyeData{Reason: notify.ReasonDraining})
			return
		case <-ticker.C:
			if err := sw.Comment("hb"); err != nil {
				return
			}
		case <-sub.Ready():
			_, resync := sub.Take()
			newIDs, res, err := s.watchExecute(r, q)
			if err != nil {
				reason := notify.ReasonError
				if errors.Is(err, c2mn.ErrUnknownVenue) {
					reason = notify.ReasonUnknownVenue
				}
				sw.Event("goodbye", curID, notify.GoodbyeData{Reason: reason})
				return
			}
			newID := notify.EncodeEventID(newIDs)
			next := watchAnswer(res)
			if resync {
				// The hub dropped signal detail (overflow or invalidation):
				// replace instead of patching.
				if err := sw.Event("resync", newID, watchSnapshot(res)); err != nil {
					return
				}
				answer, curID = next, newID
				continue
			}
			if newID == curID {
				continue // coalesced signal for a generation already pushed
			}
			delta := notify.Diff(answer, next)
			if delta.Empty() {
				// The store moved but the top-k did not: emit nothing. The
				// client's id stays behind, which is sound — its folded bytes
				// still equal the current answer.
				continue
			}
			if err := sw.Event("delta", newID, delta); err != nil {
				return
			}
			answer, curID = next, newID
		}
	}
}
