//go:build e2e

package main

// End-to-end retraining gate: build the real msserve binary and drive
// the closed loop over the wire twice, with an uninvolved healthy
// venue serving alongside. Phase 1 pits a deliberately crippled
// candidate trainer (-retrain-v 0.05 -retrain-sigma2 1e-9: a 5 cm fsm
// radius and a pinned-weights prior) against a healthy incumbent —
// the shadow gate must REJECT it and leave the incumbent serving.
// Phase 2 pits a sane trainer against a deliberately weak incumbent —
// the gate must SWAP and the model identity must rotate. The
// uninvolved venue's answers must stay byte-identical through both
// cycles. This is the CI proof that shadow gating, not operator hope,
// decides what serves.
//
// Run with: go test -tags e2e -run TestRetrainClosedLoopE2E ./cmd/msserve

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"c2mn"
)

func TestRetrainClosedLoopE2E(t *testing.T) {
	ann, test := testParts(t)
	space := ann.Space()
	data := retrainTestData(t, space)
	weak, err := c2mn.Train(space, data[:2], c2mn.TrainOptions{V: 6, Exact: true, MaxIter: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	spacePath := filepath.Join(dir, "space.json")
	weakPath := filepath.Join(dir, "weak.json")
	modelPath := filepath.Join(dir, "model.json")
	writeJSONFile := func(path string, write func(io.Writer) error) {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := write(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	writeJSONFile(spacePath, space.WriteJSON)
	writeJSONFile(weakPath, weak.Save)
	writeJSONFile(modelPath, ann.Save)

	bin := buildMsserve(t, dir)
	common := []string{
		"-addr", "127.0.0.1:0",
		"-venue", "steady=" + spacePath + "," + modelPath,
		"-eta", fmt.Sprint(testEta), "-psi", fmt.Sprint(testPsi),
		"-admin-token", "sesame",
		"-retrain",
		"-retrain-min-samples", "8",
		"-retrain-holdout", "0.5",
		"-retrain-seed", "3",
	}
	withArgs := func(extra ...string) []string {
		return append(append([]string{}, common...), extra...)
	}

	// The uninvolved venue's answers, captured before any cycle and
	// required byte-identical after every one.
	steadyQueries := []string{
		"/v1/venues/steady/query/popular-regions?k=10&start=0&end=1e18",
		"/v1/venues/steady/query/frequent-pairs?k=10&start=0&end=1e18",
	}
	feedTruth := func(base string) {
		t.Helper()
		wire := make([]labeledSequenceWire, len(data))
		for i, ls := range data {
			wire[i] = toWireLabeled(ls)
		}
		resp := doReq(t, "POST", base+"/v1/admin/venues/prime/feedback", "sesame",
			retrainRequest{Data: wire})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("feedback: %s", resp.Status)
		}
		resp.Body.Close()
	}
	runCycle := func(base string) c2mn.RetrainDecision {
		t.Helper()
		resp := doReq(t, "POST", base+"/v1/admin/venues/prime/retrain", "sesame", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("retrain: %s", resp.Status)
		}
		out := decodeBody[struct {
			Decision c2mn.RetrainDecision `json:"decision"`
		}](t, resp)
		return out.Decision
	}
	modelInfo := func(base string) c2mn.ModelInfo {
		t.Helper()
		resp, err := http.Get(base + "/v1/venues/prime/model")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET model: %s", resp.Status)
		}
		return decodeBody[c2mn.ModelInfo](t, resp)
	}
	seedSteady := func(base string) []string {
		t.Helper()
		for i := 0; i < len(test); i += 2 {
			resp := postJSON(t, base+"/v1/venues/steady/feed", sequenceRequest{
				ObjectID: fmt.Sprintf("steady%d", i),
				Records:  toWire(test[i].P.Records),
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("steady feed: %s", resp.Status)
			}
			resp.Body.Close()
		}
		resp := postJSON(t, base+"/v1/flush", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("flush: %s", resp.Status)
		}
		resp.Body.Close()
		answers := make([]string, len(steadyQueries))
		for i, q := range steadyQueries {
			answers[i] = getBody(t, base+q)
		}
		return answers
	}
	requireSteadyUnchanged := func(base string, before []string, phase string) {
		t.Helper()
		for i, q := range steadyQueries {
			if after := getBody(t, base+q); after != before[i] {
				t.Fatalf("%s: steady venue answer for %s diverged:\n before %s\n after  %s",
					phase, q, before[i], after)
			}
		}
	}

	// Phase 1: a crippled challenger against the healthy incumbent. A
	// 5 cm fsm uncertainty radius and a degenerate prior survive the
	// trainer's fill — only non-positive values are replaced — so the
	// candidate genuinely trains, just badly: its accuracy lands well
	// under the incumbent's and the gate must hold the line.
	base, stop := startMsserve(t, bin, withArgs(
		"-venue", "prime="+spacePath+","+modelPath,
		"-retrain-v", "0.05", "-retrain-sigma2", "1e-9"))
	steadyBefore := seedSteady(base)
	initial := modelInfo(base)
	feedTruth(base)
	d := runCycle(base)
	if d.Outcome != c2mn.RetrainRejected {
		t.Fatalf("crippled candidate outcome %q (inc CA %.3f vs cand CA %.3f), want rejected",
			d.Outcome, d.IncumbentCA, d.CandidateCA)
	}
	after := modelInfo(base)
	if after.ModelHash != initial.ModelHash || after.SwapCount != 0 {
		t.Fatalf("rejected cycle rotated the model: %+v, was %+v", after, initial)
	}
	requireSteadyUnchanged(base, steadyBefore, "rejected cycle")
	stop()

	// Phase 2: a sane challenger against a deliberately weak incumbent
	// (one exact step over two sequences): now the gate must swap.
	base, stop = startMsserve(t, bin, withArgs(
		"-venue", "prime="+spacePath+","+weakPath,
		"-retrain-v", "6"))
	defer stop()
	steadyBefore = seedSteady(base)
	initial = modelInfo(base)
	feedTruth(base)
	d = runCycle(base)
	if d.Outcome != c2mn.RetrainSwapped {
		t.Fatalf("genuine candidate outcome %q (inc CA %.3f vs cand CA %.3f), want swapped",
			d.Outcome, d.IncumbentCA, d.CandidateCA)
	}
	after = modelInfo(base)
	if after.SwapCount != 1 || after.ModelHash == initial.ModelHash || after.ModelHash != d.ModelHash {
		t.Fatalf("swap did not rotate the identity: %+v (decision hash %s, initial %s)",
			after, d.ModelHash, initial.ModelHash)
	}
	requireSteadyUnchanged(base, steadyBefore, "swapped cycle")

	// The swapped-in model serves: ingest on prime completes and the
	// venue answers queries.
	resp := postJSON(t, base+"/v1/venues/prime/feed", sequenceRequest{
		ObjectID: "post-swap", Records: toWire(test[1].P.Records),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-swap feed: %s", resp.Status)
	}
	resp.Body.Close()
	resp = postJSON(t, base+"/v1/flush", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-swap flush: %s", resp.Status)
	}
	resp.Body.Close()
	if body := getBody(t, base+"/v1/venues/prime/query/popular-regions?k=5&start=0&end=1e18"); body == "" {
		t.Fatal("post-swap query returned nothing")
	}
}
