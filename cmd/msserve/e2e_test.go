//go:build e2e

package main

// End-to-end snapshot roundtrip: build the real msserve binary, serve
// two venues, ingest traffic (leaving open stream fragments), shut the
// process down, restart it with the same -snapshot-dir, and require
// the restarted server to answer /v1/query byte-identically to the
// pre-restart server — the CI gate proving warm restarts work across
// actual process boundaries, not just within one test process.
//
// Run with: go test -tags e2e -run TestSnapshotRoundtripE2E ./cmd/msserve

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"c2mn"
)

// buildMsserve compiles the command under test into dir.
func buildMsserve(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "msserve")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building msserve: %v\n%s", err, out)
	}
	return bin
}

// startMsserve launches the binary and parses the bound address from
// its "serving N venue(s) on ADDR" log line. The returned stop
// function SIGTERMs the process and waits for a clean exit (the
// snapshot-on-drain path).
func startMsserve(t *testing.T, bin string, args []string) (baseURL string, stop func()) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("msserve: %s", line)
			if i := strings.LastIndex(line, " on "); i >= 0 && strings.Contains(line, "serving") {
				select {
				case addrCh <- strings.TrimSpace(line[i+4:]):
				default:
				}
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("msserve did not report a listen address")
	}
	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("msserve never became healthy: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	stopped := false
	return base, func() {
		if stopped {
			return
		}
		stopped = true
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("msserve exited uncleanly: %v", err)
			}
		case <-time.After(30 * time.Second):
			cmd.Process.Kill()
			t.Fatal("msserve did not exit after SIGTERM")
		}
	}
}

// getBody fetches a URL and returns the raw response body.
func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s\n%s", url, resp.Status, buf)
	}
	return string(buf)
}

func TestSnapshotRoundtripE2E(t *testing.T) {
	ann, test := testParts(t)
	dir := t.TempDir()
	spacePath := filepath.Join(dir, "space.json")
	modelPath := filepath.Join(dir, "model.json")
	sf, err := os.Create(spacePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ann.Space().WriteJSON(sf); err != nil {
		t.Fatal(err)
	}
	sf.Close()
	mf, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ann.Save(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()

	bin := buildMsserve(t, dir)
	snapDir := filepath.Join(dir, "snapshots")
	args := []string{
		"-addr", "127.0.0.1:0",
		"-venue", "north=" + spacePath + "," + modelPath,
		"-venue", "south=" + spacePath + "," + modelPath,
		"-eta", fmt.Sprint(testEta), "-psi", fmt.Sprint(testPsi),
		"-snapshot-dir", snapDir,
		"-drain", "10s",
	}

	base, stop := startMsserve(t, bin, args)

	// Feed the two venues distinct workloads, flush them into the live
	// stores, then re-open a stream per venue with a buffered fragment
	// the snapshot must carry across the restart.
	for i := range test {
		venue := "north"
		if i%2 == 1 {
			venue = "south"
		}
		resp := postJSON(t, fmt.Sprintf("%s/v1/venues/%s/feed", base, venue), sequenceRequest{
			ObjectID: fmt.Sprintf("obj%d", i),
			Records:  toWire(test[i].P.Records),
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("feed %s: %s", venue, resp.Status)
		}
		resp.Body.Close()
	}
	resp := postJSON(t, base+"/v1/flush", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: %s", resp.Status)
	}
	resp.Body.Close()
	open := test[0].P.Records
	for _, venue := range []string{"north", "south"} {
		resp := postJSON(t, fmt.Sprintf("%s/v1/venues/%s/feed", base, venue), sequenceRequest{
			ObjectID: "late-" + venue,
			Records:  toWire(open[:len(open)/2]),
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("late feed %s: %s", venue, resp.Status)
		}
		resp.Body.Close()
	}

	// The answers the restarted server must reproduce.
	queries := []string{
		"/v1/venues/north/query/popular-regions?k=10&start=0&end=1e18",
		"/v1/venues/north/query/frequent-pairs?k=10&start=0&end=1e18",
		"/v1/venues/south/query/popular-regions?k=10&start=0&end=1e18",
		"/v1/venues/south/query/frequent-pairs?k=10&start=0&end=1e18",
		"/v1/query/popular-regions?scope=fleet&k=10&start=0&end=1e18",
		"/v1/venues/north/stats",
		"/v1/venues/south/stats",
	}
	// StoreNotifications is the one sanctioned stats divergence across
	// a restart: the change-feed counter is process-local operational
	// state — snapshots neither persist nor restore it — so the warm
	// boot restarts it from the single restore signal. Zero it before
	// comparing; every other stats byte must still match.
	notifCounter := regexp.MustCompile(`"StoreNotifications":-?\d+`)
	normalizeStats := func(q, body string) string {
		if !strings.HasSuffix(q, "/stats") {
			return body
		}
		return notifCounter.ReplaceAllString(body, `"StoreNotifications":0`)
	}
	before := make([]string, len(queries))
	for i, q := range queries {
		before[i] = normalizeStats(q, getBody(t, base+q))
	}
	if !strings.Contains(before[5], `"PendingRecords":`) || strings.Contains(before[5], `"PendingRecords":0,`) {
		t.Fatalf("fixture has no open fragments before restart: %s", before[5])
	}

	// Exercise the explicit trigger for one venue; the drain snapshot
	// covers both anyway.
	resp = postJSON(t, base+"/v1/venues/north/snapshot", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot trigger: %s", resp.Status)
	}
	resp.Body.Close()

	stop() // SIGTERM: drain, snapshot all venues, exit

	for _, venue := range []string{"north", "south"} {
		if _, err := os.Stat(c2mn.SnapshotPath(snapDir, venue)); err != nil {
			t.Fatalf("missing snapshot after shutdown: %v", err)
		}
	}

	// Restart against the same snapshot directory: the server must
	// answer every query byte-identically, warm. Stats compare first:
	// the snapshot carries the query-cache counters, and replaying the
	// sugar queries against the restored (purged) cache would bump
	// them before the comparison.
	base2, stop2 := startMsserve(t, bin, args)
	defer stop2()
	for _, i := range []int{5, 6, 0, 1, 2, 3, 4} {
		q := queries[i]
		after := normalizeStats(q, getBody(t, base2+q))
		if after != before[i] {
			t.Fatalf("post-restart answer for %s diverged:\n before %s\n after  %s", q, before[i], after)
		}
	}

	// The reopened streams survived: feeding the withheld tail and
	// flushing completes them without error.
	for _, venue := range []string{"north", "south"} {
		resp := postJSON(t, fmt.Sprintf("%s/v1/venues/%s/feed", base2, venue), sequenceRequest{
			ObjectID: "late-" + venue,
			Records:  toWire(open[len(open)/2:]),
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-restart feed %s: %s", venue, resp.Status)
		}
		resp.Body.Close()
	}
	resp = postJSON(t, base2+"/v1/flush", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart flush: %s", resp.Status)
	}
	flushed := decodeBody[flushResponse](t, resp)
	if flushed.PendingRecords != 0 {
		t.Fatalf("post-restart flush left %d records pending", flushed.PendingRecords)
	}
}
