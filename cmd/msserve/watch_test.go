package main

// Tests for the continuous-query push plane: snapshot/delta exactness
// against the polling endpoints, Last-Event-ID resume, heartbeats,
// drain and unload goodbyes — and the replay property at the heart of
// the design: any interleaving of feed events, dropped connections and
// resumes folds to the same answer as one uninterrupted subscription.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"c2mn"
	"c2mn/internal/notify"
)

// watchTestServer stands msserve up with the change-feed hub actually
// wired to the venue stores, the way main() does it.
func watchTestServer(t *testing.T, hb time.Duration, venues ...string) (*httptest.Server, chan struct{}, []c2mn.LabeledSequence) {
	t.Helper()
	ann, test := testParts(t)
	hub := notify.NewHub()
	registry, err := c2mn.NewVenueRegistry(
		c2mn.WithVenueDefaults(
			c2mn.WithPreprocess(testEta, testPsi),
			c2mn.WithChangeNotifier(hub.Publish),
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range venues {
		if _, err := registry.Register(id, ann); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	ts := httptest.NewServer(newServer(registry, defaultMaxBody, "",
		withWatchHub(hub), withWatchHeartbeat(hb), withWatchShutdown(stop)))
	t.Cleanup(ts.Close)
	return ts, stop, test
}

type sseEvent struct {
	ev  notify.Event
	err error
}

// sseConn is a test SSE client: a pump goroutine parses the stream into
// a channel so reads can time out without leaking readers.
type sseConn struct {
	cancel context.CancelFunc
	events chan sseEvent
}

func dialWatch(t *testing.T, url, lastID string) *sseConn {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if lastID != "" {
		req.Header.Set("Last-Event-ID", lastID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		cancel()
		t.Fatalf("watch status = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		cancel()
		t.Fatalf("watch Content-Type = %q", ct)
	}
	c := &sseConn{cancel: cancel, events: make(chan sseEvent, 64)}
	go func() {
		defer resp.Body.Close()
		er := notify.NewEventReader(resp.Body)
		for {
			ev, err := er.Next()
			c.events <- sseEvent{ev, err}
			if err != nil {
				return
			}
		}
	}()
	t.Cleanup(c.close)
	return c
}

func (c *sseConn) close() { c.cancel() }

// nextData returns the next data-bearing event, skipping heartbeats.
func (c *sseConn) nextData(t *testing.T, timeout time.Duration) (notify.Event, bool) {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case e := <-c.events:
			if e.err != nil {
				return notify.Event{}, false
			}
			if e.ev.IsComment() {
				continue
			}
			return e.ev, true
		case <-deadline:
			return notify.Event{}, false
		}
	}
}

// foldedState is a client's view of a standing query: the last event id
// it acknowledged and the answer folded up to it.
type foldedState struct {
	id     string
	answer notify.Answer
}

// fold applies one event to the state per the wire contract.
func (st *foldedState) fold(t *testing.T, ev notify.Event) {
	t.Helper()
	switch ev.Name {
	case "snapshot", "resync":
		var snap notify.SnapshotData
		if err := json.Unmarshal(ev.Data, &snap); err != nil {
			t.Fatalf("bad %s payload %s: %v", ev.Name, ev.Data, err)
		}
		st.answer = notify.Answer{Kind: snap.Kind, Regions: snap.Regions, Pairs: snap.Pairs}
	case "delta":
		var d notify.DeltaData
		if err := json.Unmarshal(ev.Data, &d); err != nil {
			t.Fatalf("bad delta payload %s: %v", ev.Data, err)
		}
		st.answer = notify.Apply(st.answer, d)
	default:
		t.Fatalf("unexpected event %q", ev.Name)
	}
	st.id = ev.ID
}

func answerJSON(t *testing.T, a notify.Answer) string {
	t.Helper()
	buf, err := json.Marshal(struct {
		Regions []c2mn.RegionCount `json:"regions,omitempty"`
		Pairs   []c2mn.PairCount   `json:"pairs,omitempty"`
	}{a.Regions, a.Pairs})
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// pollReference polls the one-shot sugar and returns its answer plus
// the unquoted ETag — the composite generation watch events carry.
func pollReference(t *testing.T, url string) (notify.Answer, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference poll: %s", resp.Status)
	}
	etag := strings.Trim(resp.Header.Get("ETag"), `"`)
	rows := decodeBody[[]regionCountResponse](t, resp)
	a := notify.Answer{Kind: string(c2mn.QueryPopularRegions)}
	for _, rc := range rows {
		a.Regions = append(a.Regions, c2mn.RegionCount{Region: c2mn.RegionID(rc.Region), Count: rc.Count})
	}
	return a, etag
}

func feedObject(t *testing.T, base, venue, object string, records []c2mn.Record) {
	t.Helper()
	resp := postJSON(t, base+"/v1/venues/"+venue+"/feed", sequenceRequest{
		ObjectID: object, Records: toWire(records),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feed: %s", resp.Status)
	}
	resp.Body.Close()
	resp = postJSON(t, base+"/v1/venues/"+venue+"/flush?venue="+venue, struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: %s", resp.Status)
	}
	resp.Body.Close()
}

// settle folds events until the client state matches the reference
// answer (the stream may deliver the change as several deltas).
func settle(t *testing.T, c *sseConn, st *foldedState, want notify.Answer) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if answerJSON(t, st.answer) == answerJSON(t, want) {
			return
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			t.Fatalf("stream never reached the reference answer:\nfolded %s\nwant   %s",
				answerJSON(t, st.answer), answerJSON(t, want))
		}
		ev, ok := c.nextData(t, remaining)
		if !ok {
			t.Fatalf("stream ended while %s still != %s", answerJSON(t, st.answer), answerJSON(t, want))
		}
		st.fold(t, ev)
	}
}

func TestWatchSnapshotAndDeltaMatchPolling(t *testing.T) {
	ts, _, test := watchTestServer(t, time.Minute, "w")
	refURL := ts.URL + "/v1/venues/w/query/popular-regions?k=5"

	feedObject(t, ts.URL, "w", "seed", test[0].P.Records)
	wantRef, wantID := pollReference(t, refURL)

	c := dialWatch(t, ts.URL+"/v1/venues/w/watch?k=5", "")
	ev, ok := c.nextData(t, 5*time.Second)
	if !ok || ev.Name != "snapshot" {
		t.Fatalf("first event = %+v ok=%v, want snapshot", ev, ok)
	}
	var st foldedState
	st.fold(t, ev)
	if st.id != wantID {
		t.Fatalf("snapshot id %q != polled ETag %q", st.id, wantID)
	}
	if answerJSON(t, st.answer) != answerJSON(t, wantRef) {
		t.Fatalf("snapshot answer diverges from poll:\n got %s\nwant %s",
			answerJSON(t, st.answer), answerJSON(t, wantRef))
	}

	// A store mutation pushes deltas that fold to the fresh poll.
	feedObject(t, ts.URL, "w", "step", test[1].P.Records)
	wantRef2, wantID2 := pollReference(t, refURL)
	settle(t, c, &st, wantRef2)
	if st.id != wantID2 {
		t.Fatalf("folded id %q != polled ETag %q", st.id, wantID2)
	}

	// Reconnecting with the current composite resumes without a
	// snapshot: the next data event is the NEXT change, not a replay.
	c2 := dialWatch(t, ts.URL+"/v1/venues/w/watch?k=5", st.id)
	feedObject(t, ts.URL, "w", "step2", test[2].P.Records)
	wantRef3, _ := pollReference(t, refURL)
	ev2, ok := c2.nextData(t, 10*time.Second)
	if !ok {
		t.Fatal("no event after resume")
	}
	if ev2.Name == "snapshot" {
		t.Fatalf("resume with matching Last-Event-ID replayed a snapshot")
	}
	st2 := foldedState{id: st.id, answer: st.answer}
	st2.fold(t, ev2)
	settle(t, c2, &st2, wantRef3)
}

func TestWatchFleetScope(t *testing.T) {
	ts, _, test := watchTestServer(t, time.Minute, "north", "south")
	refURL := ts.URL + "/v1/query/popular-regions?scope=fleet&k=5"

	feedObject(t, ts.URL, "north", "n0", test[0].P.Records)
	c := dialWatch(t, ts.URL+"/v1/watch?scope=fleet&k=5", "")
	ev, ok := c.nextData(t, 5*time.Second)
	if !ok || ev.Name != "snapshot" {
		t.Fatalf("first event = %+v, want snapshot", ev)
	}
	var st foldedState
	st.fold(t, ev)

	// A write to the OTHER venue must reach a fleet-scoped stream.
	feedObject(t, ts.URL, "south", "s0", test[1].P.Records)
	want, wantID := pollReference(t, refURL)
	settle(t, c, &st, want)
	if st.id != wantID {
		t.Fatalf("fleet folded id %q != polled ETag %q", st.id, wantID)
	}
}

// TestWatchReplayProperty is the exactness property: a subscriber that
// suffers random disconnects and resumes via Last-Event-ID folds to
// the same answer as an uninterrupted subscription, and both equal the
// polling reference at every quiescent point.
func TestWatchReplayProperty(t *testing.T) {
	ts, _, test := watchTestServer(t, time.Minute, "w")
	watchURL := ts.URL + "/v1/venues/w/watch?k=5"
	refURL := ts.URL + "/v1/venues/w/query/popular-regions?k=5"

	rng := rand.New(rand.NewSource(7))
	steady := dialWatch(t, watchURL, "")
	var steadyState foldedState
	flaky := dialWatch(t, watchURL, "")
	var flakyState foldedState

	for step, ls := range test {
		if step > 0 && rng.Intn(2) == 0 {
			// Drop the flaky connection mid-run; resume from its folded id.
			flaky.close()
			flaky = dialWatch(t, watchURL, flakyState.id)
		}
		feedObject(t, ts.URL, "w", fmt.Sprintf("obj-%d", step), ls.P.Records)
		want, wantID := pollReference(t, refURL)
		settle(t, steady, &steadyState, want)
		settle(t, flaky, &flakyState, want)
		if steadyState.id != wantID || flakyState.id != wantID {
			t.Fatalf("step %d: ids steady=%q flaky=%q, want %q",
				step, steadyState.id, flakyState.id, wantID)
		}
	}
	if answerJSON(t, steadyState.answer) != answerJSON(t, flakyState.answer) {
		t.Fatalf("final answers diverge:\nsteady %s\nflaky  %s",
			answerJSON(t, steadyState.answer), answerJSON(t, flakyState.answer))
	}
}

func TestWatchHeartbeatAndDrainGoodbye(t *testing.T) {
	ts, stop, test := watchTestServer(t, 50*time.Millisecond, "w")
	feedObject(t, ts.URL, "w", "seed", test[0].P.Records)

	c := dialWatch(t, ts.URL+"/v1/venues/w/watch", "")
	if ev, ok := c.nextData(t, 5*time.Second); !ok || ev.Name != "snapshot" {
		t.Fatalf("first event = %+v", ev)
	}
	// Heartbeats flow while the store is quiet.
	gotHB := false
	deadline := time.After(2 * time.Second)
	for !gotHB {
		select {
		case e := <-c.events:
			if e.err != nil {
				t.Fatalf("stream error before heartbeat: %v", e.err)
			}
			if e.ev.IsComment() {
				gotHB = true
			}
		case <-deadline:
			t.Fatal("no heartbeat within 2s at a 50ms cadence")
		}
	}

	// Drain: every open stream says goodbye(draining) and ends.
	close(stop)
	for {
		e := <-c.events
		if e.err != nil {
			t.Fatal("stream ended without a goodbye")
		}
		if e.ev.IsComment() {
			continue
		}
		if e.ev.Name != "goodbye" {
			t.Fatalf("event %q after drain, want goodbye", e.ev.Name)
		}
		var g notify.GoodbyeData
		if err := json.Unmarshal(e.ev.Data, &g); err != nil || g.Reason != notify.ReasonDraining {
			t.Fatalf("goodbye payload %s", e.ev.Data)
		}
		break
	}
}

func TestWatchUnloadGoodbye(t *testing.T) {
	ts, _, test := watchTestServer(t, time.Minute, "w")
	feedObject(t, ts.URL, "w", "seed", test[0].P.Records)
	c := dialWatch(t, ts.URL+"/v1/venues/w/watch", "")
	if ev, ok := c.nextData(t, 5*time.Second); !ok || ev.Name != "snapshot" {
		t.Fatalf("first event = %+v", ev)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/venues/w", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("unload: %v %v", resp.Status, err)
	}
	resp.Body.Close()

	ev, ok := c.nextData(t, 5*time.Second)
	if !ok || ev.Name != "goodbye" {
		t.Fatalf("after unload: %+v ok=%v, want goodbye", ev, ok)
	}
	var g notify.GoodbyeData
	if err := json.Unmarshal(ev.Data, &g); err != nil || g.Reason != notify.ReasonUnknownVenue {
		t.Fatalf("goodbye payload %s", ev.Data)
	}
}

func TestWatchUnknownVenueFailsBeforeStreaming(t *testing.T) {
	ts, _, _ := watchTestServer(t, time.Minute, "w")
	resp, err := http.Get(ts.URL + "/v1/venues/nope/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown venue watch = %s, want 404", resp.Status)
	}
}

func TestIntrospectionResponsesAreNoStore(t *testing.T) {
	ts, _, _ := watchTestServer(t, time.Minute, "w")
	for _, path := range []string{"/v1/stats", "/v1/venues", "/v1/venues/w/stats", "/healthz", "/readyz", "/v1/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
			t.Errorf("%s: Cache-Control = %q, want no-store", path, cc)
		}
	}
}
