package main

// Integration test: train a small model, stand the HTTP surface up on
// httptest, and round-trip /annotate, /feed + /flush and the live
// queries against direct Engine calls.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"c2mn"
	"c2mn/internal/sim"
)

const testEta, testPsi = 120, 60

func testEngine(t *testing.T) (*c2mn.Engine, []c2mn.LabeledSequence) {
	t.Helper()
	space, err := c2mn.GenerateBuilding(sim.SmallBuilding(), 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := sim.DefaultMobility(10, 1500)
	spec.StayMax = 300
	ds, err := c2mn.GenerateMobility(space, spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Sequences[:7], ds.Sequences[7:]
	ann, err := c2mn.Train(space, train, c2mn.TrainOptions{
		V: 6, Exact: true, TuneClustering: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := c2mn.NewEngine(ann, c2mn.WithPreprocess(testEta, testPsi))
	if err != nil {
		t.Fatal(err)
	}
	return e, test
}

func toWire(records []c2mn.Record) []wireRecord {
	out := make([]wireRecord, len(records))
	for i, r := range records {
		out[i] = wireRecord{X: r.Loc.X, Y: r.Loc.Y, Floor: r.Loc.Floor, T: r.T}
	}
	return out
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestServerRoundTrips(t *testing.T) {
	engine, test := testEngine(t)
	ts := httptest.NewServer(newServer(engine, defaultMaxBody))
	defer ts.Close()

	// Liveness.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.Status, err)
	}
	resp.Body.Close()

	// /annotate matches a direct Engine call.
	p := test[0].P
	resp = postJSON(t, ts.URL+"/annotate", sequenceRequest{
		ObjectID: p.ObjectID,
		Records:  toWire(p.Records),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/annotate status = %s", resp.Status)
	}
	got := decodeBody[annotateResponse](t, resp)
	labels, ms, err := engine.Annotator().Annotate(&p)
	if err != nil {
		t.Fatal(err)
	}
	if got.ObjectID != p.ObjectID || len(got.Regions) != len(labels.Regions) {
		t.Fatalf("/annotate shape: %s with %d regions", got.ObjectID, len(got.Regions))
	}
	for i, r := range labels.Regions {
		if got.Regions[i] != int(r) {
			t.Fatalf("/annotate region[%d] = %d, want %d", i, got.Regions[i], r)
		}
	}
	if len(got.Semantics) != len(ms.Semantics) {
		t.Fatalf("/annotate semantics count = %d, want %d", len(got.Semantics), len(ms.Semantics))
	}
	for i, m := range ms.Semantics {
		w := got.Semantics[i]
		if w.Region != int(m.Region) || w.Start != m.Start || w.End != m.End || w.Event != m.Event.String() {
			t.Fatalf("/annotate semantics[%d] = %+v, want %v", i, w, m)
		}
	}

	// Empty sequences are a client error.
	resp = postJSON(t, ts.URL+"/annotate", sequenceRequest{ObjectID: "empty"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/annotate empty status = %s, want 400", resp.Status)
	}
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/annotate", sequenceRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/annotate no object_id status = %s, want 400", resp.Status)
	}
	resp.Body.Close()

	// Stream every test object through /feed, then /flush.
	for i := range test {
		resp = postJSON(t, ts.URL+"/feed", sequenceRequest{
			ObjectID: fmt.Sprintf("obj%d", i),
			Records:  toWire(test[i].P.Records),
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/feed status = %s", resp.Status)
		}
		fed := decodeBody[feedResponse](t, resp)
		if fed.Fed != len(test[i].P.Records) {
			t.Fatalf("/feed fed = %d, want %d", fed.Fed, len(test[i].P.Records))
		}
	}
	resp = postJSON(t, ts.URL+"/flush", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/flush status = %s", resp.Status)
	}
	flushed := decodeBody[flushResponse](t, resp)
	if flushed.PendingRecords != 0 {
		t.Fatalf("/flush left %d records pending", flushed.PendingRecords)
	}
	if flushed.EmittedSequences == 0 {
		t.Fatal("/flush emitted nothing")
	}

	// Live query over the fed stream matches the Engine directly.
	resp, err = http.Get(ts.URL + "/query/popular-regions?k=3")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/query/popular-regions: %v %v", resp.Status, err)
	}
	gotTop := decodeBody[[]regionCountResponse](t, resp)
	wantTop := engine.TopKPopularRegions(engine.Space().Regions(), c2mn.Window{Start: 0, End: 1e18}, 3)
	if len(gotTop) != len(wantTop) {
		t.Fatalf("/query/popular-regions returned %d entries, want %d", len(gotTop), len(wantTop))
	}
	for i, rc := range wantTop {
		if gotTop[i].Region != int(rc.Region) || gotTop[i].Count != rc.Count {
			t.Fatalf("/query/popular-regions[%d] = %+v, want %v", i, gotTop[i], rc)
		}
	}

	// Frequent pairs and stats respond.
	resp, err = http.Get(ts.URL + "/query/frequent-pairs?k=3")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/query/frequent-pairs: %v %v", resp.Status, err)
	}
	decodeBody[[]pairCountResponse](t, resp)
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats: %v %v", resp.Status, err)
	}
	st := decodeBody[c2mn.EngineStats](t, resp)
	if st.EmittedSequences != flushed.EmittedSequences {
		t.Fatalf("/stats emitted = %d, want %d", st.EmittedSequences, flushed.EmittedSequences)
	}

	// Parameter validation.
	for _, bad := range []string{"?k=0", "?k=x", "?start=x", "?regions=1,x"} {
		resp, err = http.Get(ts.URL + "/query/popular-regions" + bad)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad params %q status = %s, want 400", bad, resp.Status)
		}
		resp.Body.Close()
	}
}

func TestServerQueryParamsWindowAndRegions(t *testing.T) {
	engine, test := testEngine(t)
	ts := httptest.NewServer(newServer(engine, defaultMaxBody))
	defer ts.Close()

	for i := range test {
		resp := postJSON(t, ts.URL+"/feed", sequenceRequest{
			ObjectID: fmt.Sprintf("obj%d", i),
			Records:  toWire(test[i].P.Records),
		})
		resp.Body.Close()
	}
	resp := postJSON(t, ts.URL+"/flush", nil)
	resp.Body.Close()

	// Restricting the window and region set narrows the answer the same
	// way the library query does.
	regions := engine.Space().Regions()
	q := []c2mn.RegionID{regions[0], regions[1]}
	w := c2mn.Window{Start: 0, End: 700}
	want := engine.TopKPopularRegions(q, w, 2)
	url := fmt.Sprintf("%s/query/popular-regions?k=2&start=0&end=700&regions=%d,%d",
		ts.URL, regions[0], regions[1])
	resp, err := http.Get(url)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %v %v", resp.Status, err)
	}
	got := decodeBody[[]regionCountResponse](t, resp)
	gotPlain := make([]c2mn.RegionCount, len(got))
	for i, rc := range got {
		gotPlain[i] = c2mn.RegionCount{Region: c2mn.RegionID(rc.Region), Count: rc.Count}
	}
	if !reflect.DeepEqual(gotPlain, want) {
		t.Fatalf("windowed query = %v, want %v", gotPlain, want)
	}
}

func TestServerMaxBodyRejectsOversizedRequests(t *testing.T) {
	engine, test := testEngine(t)
	ts := httptest.NewServer(newServer(engine, 128))
	defer ts.Close()

	for _, path := range []string{"/annotate", "/feed"} {
		resp := postJSON(t, ts.URL+path, sequenceRequest{
			ObjectID: "big",
			Records:  toWire(test[0].P.Records),
		})
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s oversized status = %s, want 413", path, resp.Status)
		}
		body := decodeBody[map[string]string](t, resp)
		if body["error"] == "" {
			t.Fatalf("%s oversized response carries no JSON error", path)
		}
	}

	// A request under the cap still reaches the handler (and fails for
	// its own reasons, not with 413).
	resp := postJSON(t, ts.URL+"/annotate", sequenceRequest{ObjectID: "s"})
	if resp.StatusCode == http.StatusRequestEntityTooLarge {
		t.Fatalf("small request rejected as too large: %s", resp.Status)
	}
	resp.Body.Close()
}
