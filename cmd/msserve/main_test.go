package main

// Integration tests: train a small model, stand the HTTP surface up on
// httptest, and round-trip /annotate, /feed + /flush and the live
// queries against direct Engine calls — single-venue and multi-venue,
// plus the admin plane and graceful shutdown.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"c2mn"
	"c2mn/internal/sim"
)

const testEta, testPsi = 120, 60

var (
	annOnce sync.Once
	annVal  *c2mn.Annotator
	annTest []c2mn.LabeledSequence
	annErr  error
)

// testParts trains one small model, shared across tests (the engines
// built on it are independent; training dominates test time).
func testParts(t *testing.T) (*c2mn.Annotator, []c2mn.LabeledSequence) {
	t.Helper()
	annOnce.Do(func() {
		space, err := c2mn.GenerateBuilding(sim.SmallBuilding(), 1)
		if err != nil {
			annErr = err
			return
		}
		spec := sim.DefaultMobility(10, 1500)
		spec.StayMax = 300
		ds, err := c2mn.GenerateMobility(space, spec, 5)
		if err != nil {
			annErr = err
			return
		}
		train, test := ds.Sequences[:7], ds.Sequences[7:]
		ann, err := c2mn.Train(space, train, c2mn.TrainOptions{
			V: 6, Exact: true, TuneClustering: true, Seed: 1,
		})
		if err != nil {
			annErr = err
			return
		}
		annVal, annTest = ann, test
	})
	if annErr != nil {
		t.Fatal(annErr)
	}
	return annVal, annTest
}

// testRegistry builds a registry hosting the venues under the shared
// test model.
func testRegistry(t *testing.T, venues ...string) (*c2mn.VenueRegistry, []c2mn.LabeledSequence) {
	t.Helper()
	ann, test := testParts(t)
	registry, err := c2mn.NewVenueRegistry(
		c2mn.WithVenueDefaults(c2mn.WithPreprocess(testEta, testPsi)),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range venues {
		if _, err := registry.Register(id, ann); err != nil {
			t.Fatal(err)
		}
	}
	return registry, test
}

func toWire(records []c2mn.Record) []wireRecord {
	out := make([]wireRecord, len(records))
	for i, r := range records {
		out[i] = wireRecord{X: r.Loc.X, Y: r.Loc.Y, Floor: r.Loc.Floor, T: r.T}
	}
	return out
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestServerRoundTrips(t *testing.T) {
	registry, test := testRegistry(t, "default")
	engine, err := registry.Engine("default")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(registry, defaultMaxBody, ""))
	defer ts.Close()

	// Liveness.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.Status, err)
	}
	resp.Body.Close()

	// /annotate (venue defaulted: only one loaded) matches a direct
	// Engine call.
	p := test[0].P
	resp = postJSON(t, ts.URL+"/annotate", sequenceRequest{
		ObjectID: p.ObjectID,
		Records:  toWire(p.Records),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/annotate status = %s", resp.Status)
	}
	got := decodeBody[annotateResponse](t, resp)
	labels, ms, err := engine.Annotator().Annotate(&p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Venue != "default" {
		t.Fatalf("/annotate venue = %q", got.Venue)
	}
	if got.ObjectID != p.ObjectID || len(got.Regions) != len(labels.Regions) {
		t.Fatalf("/annotate shape: %s with %d regions", got.ObjectID, len(got.Regions))
	}
	for i, r := range labels.Regions {
		if got.Regions[i] != int(r) {
			t.Fatalf("/annotate region[%d] = %d, want %d", i, got.Regions[i], r)
		}
	}
	if len(got.Semantics) != len(ms.Semantics) {
		t.Fatalf("/annotate semantics count = %d, want %d", len(got.Semantics), len(ms.Semantics))
	}
	for i, m := range ms.Semantics {
		w := got.Semantics[i]
		if w.Region != int(m.Region) || w.Start != m.Start || w.End != m.End || w.Event != m.Event.String() {
			t.Fatalf("/annotate semantics[%d] = %+v, want %v", i, w, m)
		}
	}

	// Empty sequences are a client error.
	resp = postJSON(t, ts.URL+"/annotate", sequenceRequest{ObjectID: "empty"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/annotate empty status = %s, want 400", resp.Status)
	}
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/annotate", sequenceRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/annotate no object_id status = %s, want 400", resp.Status)
	}
	resp.Body.Close()

	// Stream every test object through /feed, then /flush.
	for i := range test {
		resp = postJSON(t, ts.URL+"/feed", sequenceRequest{
			ObjectID: fmt.Sprintf("obj%d", i),
			Records:  toWire(test[i].P.Records),
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/feed status = %s", resp.Status)
		}
		fed := decodeBody[feedResponse](t, resp)
		if fed.Fed != len(test[i].P.Records) {
			t.Fatalf("/feed fed = %d, want %d", fed.Fed, len(test[i].P.Records))
		}
	}
	resp = postJSON(t, ts.URL+"/flush", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/flush status = %s", resp.Status)
	}
	flushed := decodeBody[flushResponse](t, resp)
	if flushed.PendingRecords != 0 {
		t.Fatalf("/flush left %d records pending", flushed.PendingRecords)
	}
	if flushed.EmittedSequences == 0 {
		t.Fatal("/flush emitted nothing")
	}

	// Live query over the fed stream matches the Engine directly.
	resp, err = http.Get(ts.URL + "/query/popular-regions?k=3")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/query/popular-regions: %v %v", resp.Status, err)
	}
	gotTop := decodeBody[[]regionCountResponse](t, resp)
	wantTop := engine.TopKPopularRegions(engine.Space().Regions(), c2mn.Window{Start: 0, End: 1e18}, 3)
	if len(gotTop) != len(wantTop) {
		t.Fatalf("/query/popular-regions returned %d entries, want %d", len(gotTop), len(wantTop))
	}
	for i, rc := range wantTop {
		if gotTop[i].Region != int(rc.Region) || gotTop[i].Count != rc.Count {
			t.Fatalf("/query/popular-regions[%d] = %+v, want %v", i, gotTop[i], rc)
		}
	}

	// Frequent pairs and stats respond; stats carry the venue split.
	resp, err = http.Get(ts.URL + "/query/frequent-pairs?k=3")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/query/frequent-pairs: %v %v", resp.Status, err)
	}
	decodeBody[[]pairCountResponse](t, resp)
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats: %v %v", resp.Status, err)
	}
	st := decodeBody[statsResponse](t, resp)
	if st.Totals.EmittedSequences != flushed.EmittedSequences {
		t.Fatalf("/stats totals emitted = %d, want %d", st.Totals.EmittedSequences, flushed.EmittedSequences)
	}
	if st.Venues["default"].EmittedSequences != flushed.EmittedSequences {
		t.Fatalf("/stats venue split missing: %+v", st.Venues)
	}

	// Parameter validation.
	for _, bad := range []string{"?k=0", "?k=x", "?start=x", "?start=NaN", "?end=nan", "?regions=1,x"} {
		resp, err = http.Get(ts.URL + "/query/popular-regions" + bad)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad params %q status = %s, want 400", bad, resp.Status)
		}
		resp.Body.Close()
	}
}

func TestServerQueryParamsWindowAndRegions(t *testing.T) {
	registry, test := testRegistry(t, "default")
	engine, _ := registry.Engine("default")
	ts := httptest.NewServer(newServer(registry, defaultMaxBody, ""))
	defer ts.Close()

	for i := range test {
		resp := postJSON(t, ts.URL+"/feed", sequenceRequest{
			ObjectID: fmt.Sprintf("obj%d", i),
			Records:  toWire(test[i].P.Records),
		})
		resp.Body.Close()
	}
	resp := postJSON(t, ts.URL+"/flush", nil)
	resp.Body.Close()

	// Restricting the window and region set narrows the answer the same
	// way the library query does.
	regions := engine.Space().Regions()
	q := []c2mn.RegionID{regions[0], regions[1]}
	w := c2mn.Window{Start: 0, End: 700}
	want := engine.TopKPopularRegions(q, w, 2)
	url := fmt.Sprintf("%s/query/popular-regions?k=2&start=0&end=700&regions=%d,%d",
		ts.URL, regions[0], regions[1])
	resp, err := http.Get(url)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %v %v", resp.Status, err)
	}
	got := decodeBody[[]regionCountResponse](t, resp)
	gotPlain := make([]c2mn.RegionCount, len(got))
	for i, rc := range got {
		gotPlain[i] = c2mn.RegionCount{Region: c2mn.RegionID(rc.Region), Count: rc.Count}
	}
	if !reflect.DeepEqual(gotPlain, want) {
		t.Fatalf("windowed query = %v, want %v", gotPlain, want)
	}
}

func TestServerMaxBodyRejectsOversizedRequests(t *testing.T) {
	registry, test := testRegistry(t, "default")
	ts := httptest.NewServer(newServer(registry, 128, ""))
	defer ts.Close()

	for _, path := range []string{"/annotate", "/feed"} {
		resp := postJSON(t, ts.URL+path, sequenceRequest{
			ObjectID: "big",
			Records:  toWire(test[0].P.Records),
		})
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s oversized status = %s, want 413", path, resp.Status)
		}
		body := decodeBody[map[string]string](t, resp)
		if body["error"] == "" {
			t.Fatalf("%s oversized response carries no JSON error", path)
		}
	}

	// A request under the cap still reaches the handler (and fails for
	// its own reasons, not with 413).
	resp := postJSON(t, ts.URL+"/annotate", sequenceRequest{ObjectID: "s"})
	if resp.StatusCode == http.StatusRequestEntityTooLarge {
		t.Fatalf("small request rejected as too large: %s", resp.Status)
	}
	resp.Body.Close()
}

// TestServerMultiVenue is the two-venue end-to-end: concurrent feeding
// into both venues, per-venue queries verifying isolation, and the
// 404 + ErrUnknownVenue contract on a bad venue ID.
func TestServerMultiVenue(t *testing.T) {
	registry, test := testRegistry(t, "north", "south")
	ts := httptest.NewServer(newServer(registry, defaultMaxBody, ""))
	defer ts.Close()

	// With two venues loaded, a bare data-plane call must name one.
	resp := postJSON(t, ts.URL+"/feed", sequenceRequest{ObjectID: "o", Records: toWire(test[0].P.Records)})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ambiguous venue status = %s, want 400", resp.Status)
	}
	resp.Body.Close()

	// Feed both venues concurrently: north gets even test objects via
	// the path form, south gets odd ones via the ?venue= form. The same
	// object IDs are reused across venues — streams must not collide.
	var wg sync.WaitGroup
	feedErrs := make(chan string, len(test)*2)
	for i := range test {
		wg.Add(1)
		go func(i int) {
			// No t.Fatal here: testing.T must not be failed from spawned
			// goroutines, so every failure flows through feedErrs.
			defer wg.Done()
			var url string
			if i%2 == 0 {
				url = fmt.Sprintf("%s/venues/north/feed", ts.URL)
			} else {
				url = fmt.Sprintf("%s/feed?venue=south", ts.URL)
			}
			buf, err := json.Marshal(sequenceRequest{
				ObjectID: fmt.Sprintf("obj%d", i/2),
				Records:  toWire(test[i].P.Records),
			})
			if err != nil {
				feedErrs <- fmt.Sprintf("feed %d: marshal: %v", i, err)
				return
			}
			resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
			if err != nil {
				feedErrs <- fmt.Sprintf("feed %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				feedErrs <- fmt.Sprintf("feed %d: %s", i, resp.Status)
			}
		}(i)
	}
	wg.Wait()
	close(feedErrs)
	for msg := range feedErrs {
		t.Fatal(msg)
	}
	resp = postJSON(t, ts.URL+"/flush", nil) // no venue: flushes all
	flushed := decodeBody[flushResponse](t, resp)
	if flushed.Venues != 2 || flushed.EmittedSequences == 0 {
		t.Fatalf("/flush all = %+v", flushed)
	}

	// Per-venue queries match the per-venue engines: isolation.
	for _, id := range []string{"north", "south"} {
		engine, err := registry.Engine(id)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Get(fmt.Sprintf("%s/venues/%s/query/popular-regions?k=4", ts.URL, id))
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("venue %s query: %v %v", id, resp.Status, err)
		}
		got := decodeBody[[]regionCountResponse](t, resp)
		want := engine.TopKPopularRegions(engine.Space().Regions(), c2mn.Window{Start: 0, End: math.MaxFloat64}, 4)
		if len(got) != len(want) {
			t.Fatalf("venue %s: %d entries, want %d", id, len(got), len(want))
		}
		for i := range want {
			if got[i].Region != int(want[i].Region) || got[i].Count != want[i].Count {
				t.Fatalf("venue %s[%d] = %+v, want %+v", id, i, got[i], want[i])
			}
		}
	}
	// The two venues saw different streams, so their stores differ.
	north, _ := registry.Sequences("north")
	south, _ := registry.Sequences("south")
	if reflect.DeepEqual(north, south) {
		t.Fatal("venue stores identical: isolation broken")
	}

	// Unknown venue IDs are 404 with the sentinel's message, on every
	// routed endpoint.
	for _, probe := range []struct {
		method, url string
	}{
		{"POST", ts.URL + "/venues/nowhere/feed"},
		{"POST", ts.URL + "/feed?venue=nowhere"},
		{"POST", ts.URL + "/venues/nowhere/annotate"},
		{"GET", ts.URL + "/venues/nowhere/query/popular-regions"},
		{"GET", ts.URL + "/venues/nowhere/stats"},
		{"POST", ts.URL + "/flush?venue=nowhere"},
	} {
		var resp *http.Response
		var err error
		if probe.method == "POST" {
			resp = postJSON(t, probe.url, sequenceRequest{ObjectID: "o"})
		} else {
			resp, err = http.Get(probe.url)
			if err != nil {
				t.Fatal(err)
			}
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s status = %s, want 404", probe.method, probe.url, resp.Status)
		}
		body := decodeBody[map[string]string](t, resp)
		if !strings.Contains(body["error"], "unknown venue") {
			t.Fatalf("%s error = %q, want unknown-venue message", probe.url, body["error"])
		}
	}

	// Per-venue stats via the path form.
	resp, err := http.Get(ts.URL + "/venues/north/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/venues/north/stats: %v %v", resp.Status, err)
	}
	nst := decodeBody[c2mn.EngineStats](t, resp)
	if nst.EmittedSequences == 0 {
		t.Fatal("north emitted nothing")
	}
}

// TestServerAdminPlane exercises /venues list, load-from-disk (hot
// reload included) and unload.
func TestServerAdminPlane(t *testing.T) {
	registry, test := testRegistry(t, "alpha")
	ann, _ := testParts(t)
	ts := httptest.NewServer(newServer(registry, defaultMaxBody, ""))
	defer ts.Close()

	// Save the model + space for the admin load.
	dir := t.TempDir()
	spacePath := filepath.Join(dir, "space.json")
	modelPath := filepath.Join(dir, "model.json")
	sf, err := os.Create(spacePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ann.Space().WriteJSON(sf); err != nil {
		t.Fatal(err)
	}
	sf.Close()
	mf, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ann.Save(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()

	// List: one venue.
	resp, err := http.Get(ts.URL + "/venues")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/venues: %v %v", resp.Status, err)
	}
	listing := decodeBody[struct {
		Venues []venueInfo `json:"venues"`
	}](t, resp)
	if len(listing.Venues) != 1 || listing.Venues[0].Venue != "alpha" || listing.Venues[0].Regions == 0 {
		t.Fatalf("/venues = %+v", listing)
	}

	// Load a second venue from disk.
	resp = postJSON(t, ts.URL+"/venues", loadVenueRequest{Venue: "beta", Space: spacePath, Model: modelPath})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /venues status = %s", resp.Status)
	}
	resp.Body.Close()
	if got := registry.Venues(); !reflect.DeepEqual(got, []string{"alpha", "beta"}) {
		t.Fatalf("venues after load = %v", got)
	}
	// The loaded venue annotates.
	resp = postJSON(t, ts.URL+"/venues/beta/annotate", sequenceRequest{
		ObjectID: test[0].P.ObjectID,
		Records:  toWire(test[0].P.Records),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("beta annotate status = %s", resp.Status)
	}
	resp.Body.Close()

	// Hot reload an existing ID is allowed and swaps the engine.
	before, _ := registry.Engine("beta")
	resp = postJSON(t, ts.URL+"/venues", loadVenueRequest{Venue: "beta", Space: spacePath, Model: modelPath})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("hot reload status = %s", resp.Status)
	}
	resp.Body.Close()
	after, _ := registry.Engine("beta")
	if before == after {
		t.Fatal("hot reload did not swap the engine")
	}

	// Bad loads are client errors.
	resp = postJSON(t, ts.URL+"/venues", loadVenueRequest{Venue: "", Space: spacePath, Model: modelPath})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty venue load status = %s", resp.Status)
	}
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/venues", loadVenueRequest{Venue: "x", Space: spacePath, Model: filepath.Join(dir, "missing.json")})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("missing model load status = %s", resp.Status)
	}
	resp.Body.Close()

	// Unload.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/venues/beta", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /venues/beta: %v %v", resp.Status, err)
	}
	resp.Body.Close()
	if registry.Len() != 1 {
		t.Fatalf("venues after unload = %v", registry.Venues())
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/venues/beta", nil)
	resp, _ = http.DefaultClient.Do(req)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double unload status = %s, want 404", resp.Status)
	}
	resp.Body.Close()
}

// TestServerSnapshotEndpoint drives the admin snapshot trigger: a
// snapshot lands on disk and restores into a fresh registry with
// identical query answers; unknown venues 404; without -snapshot-dir
// the endpoint answers 409 with a typed code.
func TestServerSnapshotEndpoint(t *testing.T) {
	registry, test := testRegistry(t, "default")
	dir := t.TempDir()
	ts := httptest.NewServer(newServer(registry, defaultMaxBody, "", withSnapshotDir(dir)))
	defer ts.Close()

	for i := range test {
		resp := postJSON(t, ts.URL+"/v1/feed", sequenceRequest{
			ObjectID: fmt.Sprintf("obj%d", i),
			Records:  toWire(test[i].P.Records),
		})
		resp.Body.Close()
	}
	resp := postJSON(t, ts.URL+"/v1/venues/default/snapshot", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot trigger status = %s", resp.Status)
	}
	snap := decodeBody[map[string]string](t, resp)
	if snap["venue"] != "default" || snap["path"] != c2mn.SnapshotPath(dir, "default") {
		t.Fatalf("snapshot response = %v", snap)
	}
	if _, err := os.Stat(snap["path"]); err != nil {
		t.Fatal(err)
	}

	// The written snapshot warm-starts a fresh registry: identical
	// stats and identical pending streams.
	ann, _ := testParts(t)
	fresh, err := c2mn.NewVenueRegistry(c2mn.WithVenueDefaults(c2mn.WithPreprocess(testEta, testPsi)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Register("default", ann); err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreVenue("default", dir); err != nil {
		t.Fatal(err)
	}
	if got, want := fresh.Stats()["default"], registry.Stats()["default"]; got != want {
		t.Fatalf("restored stats = %+v, want %+v", got, want)
	}

	// Unknown venue: 404 with the venue sentinel.
	resp = postJSON(t, ts.URL+"/v1/venues/nowhere/snapshot", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown venue snapshot status = %s", resp.Status)
	}
	resp.Body.Close()

	// Persistence disabled: typed 409.
	off := httptest.NewServer(newServer(registry, defaultMaxBody, ""))
	defer off.Close()
	resp = postJSON(t, off.URL+"/v1/venues/default/snapshot", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("disabled snapshot status = %s, want 409", resp.Status)
	}
	te := decodeBody[v1Error](t, resp)
	if te.Error.Code != "conflict" {
		t.Fatalf("disabled snapshot code = %q", te.Error.Code)
	}

	// The trigger is a mutating admin endpoint: token-gated.
	gated := httptest.NewServer(newServer(registry, defaultMaxBody, "s3cret", withSnapshotDir(dir)))
	defer gated.Close()
	resp = postJSON(t, gated.URL+"/v1/venues/default/snapshot", nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless snapshot status = %s, want 401", resp.Status)
	}
	resp.Body.Close()
}

// TestSnapshotRoundSkipsUnchangedVenues pins the background loop's
// budget-awareness: a venue is re-snapshotted only when its pipeline
// counters moved since its last snapshot.
func TestSnapshotRoundSkipsUnchangedVenues(t *testing.T) {
	registry, test := testRegistry(t, "north", "south")
	dir := t.TempDir()
	last := newSnapshotTracker()

	// First round: both venues are new to the tracker.
	written, err := snapshotRound(registry, dir, last)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(written, []string{"north", "south"}) {
		t.Fatalf("first round wrote %v", written)
	}

	// Nothing moved: nothing written.
	if written, err = snapshotRound(registry, dir, last); err != nil || len(written) != 0 {
		t.Fatalf("idle round wrote %v (err %v)", written, err)
	}

	// Traffic into north: only north is re-snapshotted.
	if _, err := registry.FeedAll("north", "obj", test[0].P.Records); err != nil {
		t.Fatal(err)
	}
	if written, err = snapshotRound(registry, dir, last); err != nil || !reflect.DeepEqual(written, []string{"north"}) {
		t.Fatalf("post-traffic round wrote %v (err %v)", written, err)
	}

	// An unloaded venue falls out of the tracker without erroring.
	if err := registry.Unload("south"); err != nil {
		t.Fatal(err)
	}
	if written, err = snapshotRound(registry, dir, last); err != nil || len(written) != 0 {
		t.Fatalf("post-unload round wrote %v (err %v)", written, err)
	}
	if _, ok := last.get("south"); ok {
		t.Fatal("unloaded venue still tracked")
	}
}

// TestServerAdminTokenGatesMutations: with -admin-token set, venue
// load/unload require the bearer token; the read-only planes stay
// open.
func TestServerAdminTokenGatesMutations(t *testing.T) {
	registry, _ := testRegistry(t, "alpha")
	ts := httptest.NewServer(newServer(registry, defaultMaxBody, "s3cret"))
	defer ts.Close()

	// Mutating admin calls without (or with a wrong) token: 401.
	resp := postJSON(t, ts.URL+"/venues", loadVenueRequest{Venue: "x", Space: "s", Model: "m"})
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless load status = %s, want 401", resp.Status)
	}
	resp.Body.Close()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/venues/alpha", nil)
	req.Header.Set("Authorization", "Bearer wrong")
	resp, err := http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong-token unload: %v %v", resp.Status, err)
	}
	resp.Body.Close()
	if registry.Len() != 1 {
		t.Fatal("unauthorized request mutated the registry")
	}

	// The right token works.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/venues/alpha", nil)
	req.Header.Set("Authorization", "Bearer s3cret")
	resp, err = http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("authorized unload: %v %v", resp.Status, err)
	}
	resp.Body.Close()
	if registry.Len() != 0 {
		t.Fatal("authorized unload did not apply")
	}

	// Read-only endpoints stay open.
	resp, err = http.Get(ts.URL + "/venues")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/venues listing behind token: %v %v", resp.Status, err)
	}
	resp.Body.Close()
}

// TestServeGracefulShutdown drives the same serve() helper main uses:
// on context cancellation an in-flight request completes within the
// drain window, the listener refuses new connections, and serve
// returns cleanly.
func TestServeGracefulShutdown(t *testing.T) {
	registry, _ := testRegistry(t, "default")

	started := make(chan struct{})
	release := make(chan struct{})
	inner := newServer(registry, defaultMaxBody, "")
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" && r.URL.Query().Get("slow") == "1" {
			close(started)
			<-release // hold the request open across the shutdown signal
		}
		inner.ServeHTTP(w, r)
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: handler}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- serve(ctx, srv, ln, 5*time.Second, nil) }()

	// Start a request that is still in flight when shutdown begins.
	reqDone := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/healthz?slow=1")
		if err != nil {
			reqDone <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			reqDone <- fmt.Errorf("in-flight request status %s", resp.Status)
			return
		}
		reqDone <- nil
	}()
	<-started
	cancel() // the SIGINT/SIGTERM path

	select {
	case err := <-serveDone:
		t.Fatalf("serve returned before draining in-flight request: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-reqDone; err != nil {
		t.Fatalf("in-flight request during shutdown: %v", err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve() = %v, want clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after drain")
	}
	// The listener is closed: new connections fail.
	if _, err := http.Get("http://" + ln.Addr().String() + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

// TestServeDrainTimeout: a request that outlives the drain window is
// force-closed and serve reports the shutdown error.
func TestServeDrainTimeout(t *testing.T) {
	registry, _ := testRegistry(t, "default")
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	inner := newServer(registry, defaultMaxBody, "")
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("hang") == "1" {
			close(started)
			<-release
			return
		}
		inner.ServeHTTP(w, r)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: handler}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- serve(ctx, srv, ln, 20*time.Millisecond, nil) }()
	go http.Get("http://" + ln.Addr().String() + "/healthz?hang=1")
	<-started
	cancel()
	select {
	case err := <-serveDone:
		if err == nil || !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("serve() = %v, want deadline-exceeded shutdown error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve hung past the drain timeout")
	}
}

// TestServerV1FleetQuery is the acceptance end-to-end: three loaded
// venues with different streams, POST /v1/query with fleet scope, and
// the merged top-k must equal a brute-force recount over the
// concatenation of all venues' retained m-semantics.
func TestServerV1FleetQuery(t *testing.T) {
	ids := []string{"east", "north", "west"}
	registry, test := testRegistry(t, ids...)
	ts := httptest.NewServer(newServer(registry, defaultMaxBody, ""))
	defer ts.Close()

	// Venue i gets the test sequences from offset i on: overlapping but
	// distinct workloads per venue.
	for vi, id := range ids {
		for si := vi; si < len(test); si++ {
			resp := postJSON(t, fmt.Sprintf("%s/v1/venues/%s/feed", ts.URL, id), sequenceRequest{
				ObjectID: fmt.Sprintf("obj%d", si),
				Records:  toWire(test[si].P.Records),
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("/v1 feed %s: %s", id, resp.Status)
			}
			resp.Body.Close()
		}
	}
	resp := postJSON(t, ts.URL+"/v1/flush", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/flush: %s", resp.Status)
	}
	resp.Body.Close()

	// Brute-force reference over the concatenated venue snapshots.
	var all []c2mn.MSSequence
	var regions []c2mn.RegionID
	for _, id := range ids {
		seqs, err := registry.Sequences(id)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, seqs...)
		e, _ := registry.Engine(id)
		regions = e.Space().Regions()
	}
	allTime := c2mn.Window{Start: 0, End: 1e18}

	const k = 4
	resp = postJSON(t, ts.URL+"/v1/query", queryRequest{Query: c2mn.Query{
		Kind: c2mn.QueryPopularRegions, Scope: c2mn.ScopeFleet,
		Window: &allTime, K: k, PerVenue: true,
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/query fleet: %s", resp.Status)
	}
	got := decodeBody[queryResponse](t, resp)
	if !reflect.DeepEqual(got.Scanned, ids) {
		t.Fatalf("scanned = %v, want %v", got.Scanned, ids)
	}
	want := c2mn.TopKPopularRegions(all, regions, allTime, k)
	if !reflect.DeepEqual(got.Regions, want) {
		t.Fatalf("fleet /v1/query = %v, brute force = %v", got.Regions, want)
	}
	if len(got.PerVenue) != len(ids) {
		t.Fatalf("per_venue has %d entries, want %d", len(got.PerVenue), len(ids))
	}
	for i, vc := range got.PerVenue {
		e, err := registry.Engine(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		if vc.Venue != ids[i] || !reflect.DeepEqual(vc.Regions, e.TopKPopularRegions(regions, allTime, k)) {
			t.Fatalf("per_venue[%d] = %+v diverges from venue top-k", i, vc)
		}
	}

	// The pair kind merges exactly too.
	resp = postJSON(t, ts.URL+"/v1/query", queryRequest{Query: c2mn.Query{
		Kind: c2mn.QueryFrequentPairs, Scope: c2mn.ScopeFleet, Window: &allTime, K: k,
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/query pairs: %s", resp.Status)
	}
	gotPairs := decodeBody[queryResponse](t, resp)
	wantPairs := c2mn.TopKFrequentPairs(all, regions, allTime, k)
	if !reflect.DeepEqual(gotPairs.Pairs, wantPairs) {
		t.Fatalf("fleet pair /v1/query = %v, brute force = %v", gotPairs.Pairs, wantPairs)
	}

	// The GET sugar route answers the same fleet query.
	hresp, err := http.Get(fmt.Sprintf("%s/v1/query/popular-regions?scope=fleet&k=%d&start=0&end=1e18", ts.URL, k))
	if err != nil || hresp.StatusCode != http.StatusOK {
		t.Fatalf("sugar fleet query: %v %v", hresp.Status, err)
	}
	sugar := decodeBody[[]regionCountResponse](t, hresp)
	if len(sugar) != len(want) {
		t.Fatalf("sugar fleet query returned %d rows, want %d", len(sugar), len(want))
	}
	for i, rc := range want {
		if sugar[i].Region != int(rc.Region) || sugar[i].Count != rc.Count {
			t.Fatalf("sugar[%d] = %+v, want %+v", i, sugar[i], rc)
		}
	}

	// An explicit venue list via ?venues= merges that subset.
	hresp, err = http.Get(fmt.Sprintf("%s/v1/query/popular-regions?venues=west,east&k=%d", ts.URL, k))
	if err != nil || hresp.StatusCode != http.StatusOK {
		t.Fatalf("sugar venues query: %v %v", hresp.Status, err)
	}
	subset := decodeBody[[]regionCountResponse](t, hresp)
	var wantSub []c2mn.MSSequence
	for _, id := range []string{"west", "east"} {
		seqs, _ := registry.Sequences(id)
		wantSub = append(wantSub, seqs...)
	}
	wantSubTop := c2mn.TopKPopularRegions(wantSub, regions, allTime, k)
	for i, rc := range wantSubTop {
		if subset[i].Region != int(rc.Region) || subset[i].Count != rc.Count {
			t.Fatalf("subset sugar[%d] = %+v, want %+v", i, subset[i], rc)
		}
	}
}

// TestServerV1QueryPagination drives the cursor protocol: pages of the
// ranked list concatenate to the unpaginated answer, and the final
// page carries no cursor.
func TestServerV1QueryPagination(t *testing.T) {
	registry, test := testRegistry(t, "default")
	ts := httptest.NewServer(newServer(registry, defaultMaxBody, ""))
	defer ts.Close()

	for i := range test {
		resp := postJSON(t, ts.URL+"/v1/feed", sequenceRequest{
			ObjectID: fmt.Sprintf("obj%d", i),
			Records:  toWire(test[i].P.Records),
		})
		resp.Body.Close()
	}
	resp := postJSON(t, ts.URL+"/v1/flush", nil)
	resp.Body.Close()

	full := c2mn.Query{Kind: c2mn.QueryPopularRegions, K: 50}
	resp = postJSON(t, ts.URL+"/v1/query", queryRequest{Query: full})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unpaginated query: %s", resp.Status)
	}
	whole := decodeBody[queryResponse](t, resp)
	if len(whole.Regions) < 3 {
		t.Fatalf("workload too small to paginate: %d regions", len(whole.Regions))
	}
	if whole.NextCursor != "" {
		t.Fatal("unpaginated query returned a cursor")
	}

	const pageSize = 2
	var pages []c2mn.RegionCount
	req := queryRequest{Query: full, PageSize: pageSize}
	for hops := 0; ; hops++ {
		if hops > len(whole.Regions) {
			t.Fatal("cursor chain does not terminate")
		}
		resp := postJSON(t, ts.URL+"/v1/query", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("page %d: %s", hops, resp.Status)
		}
		page := decodeBody[queryResponse](t, resp)
		if len(page.Regions) > pageSize {
			t.Fatalf("page %d has %d rows, page_size %d", hops, len(page.Regions), pageSize)
		}
		if page.Offset != hops*pageSize {
			t.Fatalf("page %d offset = %d, want %d", hops, page.Offset, hops*pageSize)
		}
		pages = append(pages, page.Regions...)
		if page.NextCursor == "" {
			break
		}
		req = queryRequest{Cursor: page.NextCursor}
	}
	if !reflect.DeepEqual(pages, whole.Regions) {
		t.Fatalf("concatenated pages = %v, unpaginated = %v", pages, whole.Regions)
	}

	// A cursor combined with query fields is rejected — even when only
	// a non-kind field like k is set.
	resp = postJSON(t, ts.URL+"/v1/query", queryRequest{Query: full, Cursor: "abc"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cursor+query status = %s, want 400", resp.Status)
	}
	resp.Body.Close()
	valid, err := encodeCursor(queryCursor{Query: full, PageSize: pageSize, Offset: 0})
	if err != nil {
		t.Fatal(err)
	}
	resp = postJSON(t, ts.URL+"/v1/query", queryRequest{Query: c2mn.Query{K: 50}, Cursor: valid})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cursor+k status = %s, want 400", resp.Status)
	}
	resp.Body.Close()
	// So is a corrupt cursor.
	resp = postJSON(t, ts.URL+"/v1/query", queryRequest{Cursor: "!!!not-base64!!!"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt cursor status = %s, want 400", resp.Status)
	}
	resp.Body.Close()

	// A forged cursor with an extreme offset pages past the end — an
	// empty final page, never a sliced-out-of-range panic.
	forged, err := encodeCursor(queryCursor{Query: full, PageSize: pageSize, Offset: math.MaxInt64})
	if err != nil {
		t.Fatal(err)
	}
	resp = postJSON(t, ts.URL+"/v1/query", queryRequest{Cursor: forged})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forged-offset cursor status = %s, want 200", resp.Status)
	}
	tail := decodeBody[queryResponse](t, resp)
	if len(tail.Regions) != 0 || tail.NextCursor != "" {
		t.Fatalf("forged-offset cursor page = %+v, want empty terminal page", tail)
	}
}

// v1Error is the typed /v1 error envelope as tests decode it.
type v1Error struct {
	Error wireError `json:"error"`
}

// TestServerV1TypedErrorsAndDeprecation: /v1 errors carry machine
// codes, legacy routes keep the flat payload and gain deprecation
// headers.
func TestServerV1TypedErrorsAndDeprecation(t *testing.T) {
	registry, _ := testRegistry(t, "alpha")
	ts := httptest.NewServer(newServer(registry, defaultMaxBody, ""))
	defer ts.Close()

	// Typed unknown-venue error on /v1.
	resp, err := http.Get(ts.URL + "/v1/venues/nowhere/stats")
	if err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1 unknown venue: %v %v", resp.Status, err)
	}
	te := decodeBody[v1Error](t, resp)
	if te.Error.Code != "unknown_venue" || !strings.Contains(te.Error.Message, "unknown venue") {
		t.Fatalf("/v1 error envelope = %+v", te)
	}

	// Typed invalid-query error from the unified endpoint.
	resp = postJSON(t, ts.URL+"/v1/query", queryRequest{Query: c2mn.Query{Kind: "bogus"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/v1/query bad kind status = %s, want 400", resp.Status)
	}
	te = decodeBody[v1Error](t, resp)
	if te.Error.Code != "invalid_query" {
		t.Fatalf("bad kind error code = %q, want invalid_query", te.Error.Code)
	}

	// Unknown venue through the unified endpoint is typed 404.
	resp = postJSON(t, ts.URL+"/v1/query", queryRequest{Query: c2mn.Query{
		Kind: c2mn.QueryPopularRegions, Venues: []string{"nowhere"},
	}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/query unknown venue status = %s, want 404", resp.Status)
	}
	te = decodeBody[v1Error](t, resp)
	if te.Error.Code != "unknown_venue" {
		t.Fatalf("unknown venue code = %q", te.Error.Code)
	}

	// The legacy route answers identically in substance but keeps the
	// flat error string and carries the deprecation headers.
	resp, err = http.Get(ts.URL + "/venues/nowhere/stats")
	if err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("legacy unknown venue: %v %v", resp.Status, err)
	}
	if resp.Header.Get("Deprecation") != "true" || !strings.Contains(resp.Header.Get("Link"), "/v1/venues/nowhere/stats") {
		t.Fatalf("legacy deprecation headers = %v", resp.Header)
	}
	flat := decodeBody[map[string]string](t, resp)
	if !strings.Contains(flat["error"], "unknown venue") {
		t.Fatalf("legacy error body = %v", flat)
	}

	// /v1 success paths exist for the aliased routes too.
	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/healthz: %v %v", resp.Status, err)
	}
	if resp.Header.Get("Deprecation") != "" {
		t.Fatal("/v1 route carries a deprecation header")
	}
	resp.Body.Close()
}

// TestFeedBacklogResponseShape pins the 429 load-shedding contract of
// /feed: backlog errors map to 429 with a Retry-After hint derived
// from -feed-timeout, typed on /v1 and flat on legacy routes.
func TestFeedBacklogResponseShape(t *testing.T) {
	s := &server{retryAfterSecs: "1"}
	withFeedRetryAfter(2500 * time.Millisecond)(s)
	if s.retryAfterSecs != "3" {
		t.Fatalf("retry-after from 2.5s timeout = %q, want 3", s.retryAfterSecs)
	}
	withFeedRetryAfter(0)(s) // unset bound keeps the minimum hint
	if s.retryAfterSecs != "3" {
		t.Fatalf("zero timeout overwrote the hint: %q", s.retryAfterSecs)
	}

	backlog := fmt.Errorf("stream x: %w", c2mn.ErrBacklog)
	if code := errorCode(http.StatusTooManyRequests, backlog); code != "backlog" {
		t.Fatalf("backlog error code = %q", code)
	}

	// A backlog error maps to 429 + Retry-After; the v1 envelope
	// carries the typed error next to the counts.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/feed", nil)
	s.writeIngestError(rec, req, backlog, feedResponse{Venue: "v", Fed: 3})
	var v1 struct {
		Error wireError `json:"error"`
		feedResponse
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &v1); err != nil {
		t.Fatal(err)
	}
	if rec.Code != http.StatusTooManyRequests || v1.Error.Code != "backlog" || v1.Fed != 3 {
		t.Fatalf("v1 backlog response = %d %+v", rec.Code, v1)
	}
	if rec.Header().Get("Retry-After") != s.retryAfterSecs {
		t.Fatalf("Retry-After = %q, want %q", rec.Header().Get("Retry-After"), s.retryAfterSecs)
	}

	// The legacy envelope keeps the flat error string.
	rec = httptest.NewRecorder()
	req = httptest.NewRequest(http.MethodPost, "/feed", nil)
	s.writeIngestError(rec, req, backlog, feedResponse{Venue: "v", Fed: 3})
	var legacy struct {
		Error string `json:"error"`
		feedResponse
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &legacy); err != nil {
		t.Fatal(err)
	}
	if legacy.Error == "" || !strings.Contains(legacy.Error, "backlog") {
		t.Fatalf("legacy backlog response = %+v", legacy)
	}

	// A non-backlog ingestion failure stays a 422.
	rec = httptest.NewRecorder()
	s.writeIngestError(rec, req, errors.New("bad fragment"), feedResponse{Venue: "v"})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("plain ingest error status = %d, want 422", rec.Code)
	}
}
