package main

// Tests for the consolidated /v1/admin surface: the single token
// chokepoint, the deprecated aliases' steering headers, the typed
// 404/405 envelope, and the retraining endpoints end to end.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"c2mn"
	"c2mn/internal/sim"
)

// doReq issues a method/url/body request with an optional bearer token.
func doReq(t *testing.T, method, url, token string, body any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = strings.NewReader(string(buf))
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func wireErrorOf(t *testing.T, resp *http.Response) wireError {
	t.Helper()
	var body struct {
		Error wireError `json:"error"`
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding error envelope: %v", err)
	}
	return body.Error
}

// TestAdminSurfaceToken pins the single chokepoint: every mutating
// route — canonical /v1/admin, deprecated /v1 and bare legacy mounts
// alike — refuses without the bearer token and proceeds with it.
func TestAdminSurfaceToken(t *testing.T) {
	registry, _ := testRegistry(t, "default")
	ts := httptest.NewServer(newServer(registry, defaultMaxBody, "sesame"))
	defer ts.Close()

	paths := []struct{ method, path string }{
		{"POST", "/v1/admin/venues"},
		{"DELETE", "/v1/admin/venues/default"},
		{"POST", "/v1/admin/venues/default/snapshot"},
		{"GET", "/v1/admin/venues/default/snapshot/file"},
		{"PUT", "/v1/admin/venues/default/snapshot/file"},
		{"POST", "/v1/admin/venues/default/drain"},
		{"DELETE", "/v1/admin/venues/default/drain"},
		{"POST", "/v1/admin/venues/default/retrain"},
		{"GET", "/v1/admin/venues/default/retrain"},
		{"POST", "/v1/admin/venues/default/feedback"},
		// Deprecated aliases share the same check.
		{"POST", "/v1/venues"},
		{"DELETE", "/v1/venues/default"},
		{"POST", "/v1/venues/default/drain"},
		{"POST", "/venues"},
		{"DELETE", "/venues/default"},
	}
	for _, p := range paths {
		resp := doReq(t, p.method, ts.URL+p.path, "", nil)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s %s without token: %d, want 401", p.method, p.path, resp.StatusCode)
		}
		if got := resp.Header.Get("WWW-Authenticate"); got != "Bearer" {
			t.Errorf("%s %s WWW-Authenticate %q", p.method, p.path, got)
		}
	}

	// With the token the request clears auth and reaches the handler
	// (drain: 200 on a loaded venue).
	resp := doReq(t, "POST", ts.URL+"/v1/admin/venues/default/drain", "sesame", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authorized drain via /v1/admin: %d, want 200", resp.StatusCode)
	}
	resp = doReq(t, "DELETE", ts.URL+"/v1/admin/venues/default/drain", "sesame", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authorized undrain via /v1/admin: %d, want 200", resp.StatusCode)
	}
}

// TestAdminAliasHeaders: the pre-consolidation mounts steer to the
// /v1/admin successor; the canonical tree carries no deprecation.
func TestAdminAliasHeaders(t *testing.T) {
	registry, _ := testRegistry(t, "default")
	ts := httptest.NewServer(newServer(registry, defaultMaxBody, ""))
	defer ts.Close()

	cases := []struct{ method, path, successor string }{
		{"POST", "/v1/venues/default/drain", "/v1/admin/venues/default/drain"},
		{"DELETE", "/v1/venues/default/drain", "/v1/admin/venues/default/drain"},
		{"POST", "/venues", "/v1/admin/venues"},
		{"POST", "/v1/venues", "/v1/admin/venues"},
	}
	for _, c := range cases {
		resp := doReq(t, c.method, ts.URL+c.path, "", nil)
		resp.Body.Close()
		if got := resp.Header.Get("Deprecation"); got != "true" {
			t.Errorf("%s %s Deprecation %q, want true", c.method, c.path, got)
		}
		want := fmt.Sprintf("<%s>; rel=%q", c.successor, "successor-version")
		if got := resp.Header.Get("Link"); got != want {
			t.Errorf("%s %s Link %q, want %q", c.method, c.path, got, want)
		}
	}

	resp := doReq(t, "POST", ts.URL+"/v1/admin/venues/default/drain", "", nil)
	resp.Body.Close()
	if got := resp.Header.Get("Deprecation"); got != "" {
		t.Errorf("canonical /v1/admin mount marked deprecated: %q", got)
	}
	resp = doReq(t, "DELETE", ts.URL+"/v1/admin/venues/default/drain", "", nil)
	resp.Body.Close()
}

// TestV1ErrorEnvelope405And404: the mux's own plain-text errors under
// /v1 carry the typed envelope, the 405's Allow header survives, and
// non-/v1 paths keep the stock plain responses.
func TestV1ErrorEnvelope405And404(t *testing.T) {
	registry, _ := testRegistry(t, "default")
	ts := httptest.NewServer(newServer(registry, defaultMaxBody, ""))
	defer ts.Close()

	// Wrong method on a known /v1 route.
	resp := doReq(t, "DELETE", ts.URL+"/v1/query", "", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /v1/query: %d, want 405", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("405 Content-Type %q, want JSON envelope", ct)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "POST") {
		t.Fatalf("405 Allow %q lost the mux's method list", allow)
	}
	if we := wireErrorOf(t, resp); we.Code != "method_not_allowed" {
		t.Fatalf("405 code %q, want method_not_allowed", we.Code)
	}

	// Unknown /v1 path.
	resp = doReq(t, "GET", ts.URL+"/v1/nope", "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/nope: %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("404 Content-Type %q, want JSON envelope", ct)
	}
	if we := wireErrorOf(t, resp); we.Code != "not_found" {
		t.Fatalf("404 code %q, want not_found", we.Code)
	}

	// Legacy surface keeps the stock mux behaviour.
	resp = doReq(t, "GET", ts.URL+"/nope", "", nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /nope: %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("legacy 404 Content-Type %q, want text/plain passthrough", ct)
	}
}

// TestVenueModelEndpoint: model identity over the API, with the
// /v1/venues rows carrying the same fields.
func TestVenueModelEndpoint(t *testing.T) {
	registry, _ := testRegistry(t, "default")
	ts := httptest.NewServer(newServer(registry, defaultMaxBody, ""))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/venues/default/model")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET model: %d", resp.StatusCode)
	}
	info := decodeBody[c2mn.ModelInfo](t, resp)
	if info.Venue != "default" || len(info.ModelHash) != 64 || len(info.SpaceHash) != 64 {
		t.Fatalf("model info %+v", info)
	}
	if info.ModelVersion <= 0 || info.SwapCount != 0 {
		t.Fatalf("model info %+v", info)
	}

	resp, err = http.Get(ts.URL + "/v1/venues")
	if err != nil {
		t.Fatal(err)
	}
	list := decodeBody[struct {
		Venues []venueInfo `json:"venues"`
	}](t, resp)
	if len(list.Venues) != 1 || list.Venues[0].ModelHash != info.ModelHash ||
		list.Venues[0].ModelVersion != info.ModelVersion {
		t.Fatalf("venue listing rows missing model identity: %+v", list.Venues)
	}

	resp, err = http.Get(ts.URL + "/v1/venues/missing/model")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown venue model: %d", resp.StatusCode)
	}
	if we := wireErrorOf(t, resp); we.Code != "unknown_venue" {
		t.Fatalf("unknown venue code %q", we.Code)
	}
}

// toWireLabeled converts a labeled sequence to the feedback wire form.
func toWireLabeled(ls c2mn.LabeledSequence) labeledSequenceWire {
	wi := labeledSequenceWire{
		ObjectID: ls.P.ObjectID,
		Records:  toWire(ls.P.Records),
		Regions:  make([]int, len(ls.Labels.Regions)),
		Events:   make([]string, len(ls.Labels.Events)),
	}
	for i, r := range ls.Labels.Regions {
		wi.Regions[i] = int(r)
	}
	for i, e := range ls.Labels.Events {
		wi.Events[i] = e.String()
	}
	return wi
}

// TestRetrainEndpointsDisabled: without -retrain the endpoints answer
// with the typed retrain_disabled conflict.
func TestRetrainEndpointsDisabled(t *testing.T) {
	registry, test := testRegistry(t, "default")
	ts := httptest.NewServer(newServer(registry, defaultMaxBody, ""))
	defer ts.Close()

	resp := doReq(t, "POST", ts.URL+"/v1/admin/venues/default/retrain", "", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("retrain disabled: %d, want 409", resp.StatusCode)
	}
	if we := wireErrorOf(t, resp); we.Code != "retrain_disabled" {
		t.Fatalf("code %q, want retrain_disabled", we.Code)
	}
	resp = doReq(t, "POST", ts.URL+"/v1/admin/venues/default/feedback", "",
		retrainRequest{Data: []labeledSequenceWire{toWireLabeled(test[0])}})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("feedback disabled: %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestRetrainEndpointsCycle drives the closed loop over HTTP: a weak
// incumbent, ground truth through the feedback endpoint, a manual
// retrain trigger — the better candidate swaps in, the audit and the
// model identity reflect it, and a drained venue's cycle is vetoed.
func TestRetrainEndpointsCycle(t *testing.T) {
	ann, _ := testParts(t)
	space := ann.Space()
	// An incumbent deliberately trained into the ground: one exact
	// step over two sequences.
	data := retrainTestData(t, space)
	weak, err := c2mn.Train(space, data[:2], c2mn.TrainOptions{V: 6, Exact: true, MaxIter: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	registry, err := c2mn.NewVenueRegistry(
		c2mn.WithVenueDefaults(c2mn.WithPreprocess(testEta, testPsi)),
		c2mn.WithRetrainPolicy(c2mn.RetrainPolicy{
			Config: c2mn.RetrainConfig{MinSamples: 8, HoldoutFrac: 0.5, Seed: 3},
			Train:  c2mn.TrainOptions{V: 6, Exact: true, TuneClustering: true, Seed: 2},
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := registry.Register("default", weak); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(registry, defaultMaxBody, "sesame"))
	defer ts.Close()

	// A draining venue refuses the cycle before anything trains.
	resp := doReq(t, "POST", ts.URL+"/v1/admin/venues/default/drain", "sesame", nil)
	resp.Body.Close()
	resp = doReq(t, "POST", ts.URL+"/v1/admin/venues/default/retrain", "sesame", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("retrain while draining: %d, want 409", resp.StatusCode)
	}
	if we := wireErrorOf(t, resp); we.Code != "venue_draining" {
		t.Fatalf("draining veto code %q", we.Code)
	}
	resp = doReq(t, "DELETE", ts.URL+"/v1/admin/venues/default/drain", "sesame", nil)
	resp.Body.Close()

	// Not enough samples yet: the skip is typed and audited.
	resp = doReq(t, "POST", ts.URL+"/v1/admin/venues/default/retrain", "sesame", nil)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("retrain without samples: %d, want 422", resp.StatusCode)
	}
	if we := wireErrorOf(t, resp); we.Code != "retrain_samples" {
		t.Fatalf("skip code %q, want retrain_samples", we.Code)
	}

	// Ground truth in, cycle, swap.
	wireData := make([]labeledSequenceWire, len(data))
	for i, ls := range data {
		wireData[i] = toWireLabeled(ls)
	}
	resp = doReq(t, "POST", ts.URL+"/v1/admin/venues/default/feedback", "sesame",
		retrainRequest{Data: wireData})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feedback: %d", resp.StatusCode)
	}
	fb := decodeBody[map[string]any](t, resp)
	if n, _ := fb["sequences"].(float64); int(n) != len(data) {
		t.Fatalf("feedback recorded %v of %d", fb["sequences"], len(data))
	}

	oldHash, err := registry.VenueModel("default")
	if err != nil {
		t.Fatal(err)
	}
	resp = doReq(t, "POST", ts.URL+"/v1/admin/venues/default/retrain", "sesame", nil)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("retrain: %d (%s)", resp.StatusCode, body)
	}
	out := decodeBody[struct {
		Decision c2mn.RetrainDecision `json:"decision"`
	}](t, resp)
	if out.Decision.Outcome != c2mn.RetrainSwapped {
		t.Fatalf("outcome %q (inc CA %.3f vs cand CA %.3f), want swapped",
			out.Decision.Outcome, out.Decision.IncumbentCA, out.Decision.CandidateCA)
	}

	// Identity and audit reflect the swap over the API.
	resp, err = http.Get(ts.URL + "/v1/venues/default/model")
	if err != nil {
		t.Fatal(err)
	}
	info := decodeBody[c2mn.ModelInfo](t, resp)
	if info.SwapCount != 1 || info.ModelHash == oldHash.ModelHash || info.ModelHash != out.Decision.ModelHash {
		t.Fatalf("model identity after swap: %+v (decision hash %s)", info, out.Decision.ModelHash)
	}
	resp = doReq(t, "GET", ts.URL+"/v1/admin/venues/default/retrain", "sesame", nil)
	st := decodeBody[struct {
		Retrain c2mn.RetrainState `json:"retrain"`
	}](t, resp)
	if st.Retrain.Swaps != 1 || st.Retrain.Counts[c2mn.RetrainSwapped] != 1 {
		t.Fatalf("retrain status after swap: %+v", st.Retrain)
	}
}

// retrainTestData regenerates the full labeled workload on the shared
// test space (testParts keeps only the tail split; retraining wants
// the whole set, and generation is deterministic per seed).
func retrainTestData(t *testing.T, space *c2mn.Space) []c2mn.LabeledSequence {
	t.Helper()
	spec := sim.DefaultMobility(10, 1500)
	spec.StayMax = 300
	ds, err := c2mn.GenerateMobility(space, spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Sequences
}
