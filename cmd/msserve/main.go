// Command msserve exposes a trained C2MN annotation Engine over HTTP:
// one-shot batch annotation, record-by-record streaming ingestion with
// online η-gap segmentation, and live top-k queries over the
// m-semantics annotated so far.
//
// Usage:
//
//	msserve -space mall.json -model model.json -addr :8080
//
// Endpoints (JSON over HTTP):
//
//	POST /annotate              {"object_id", "records": [{"x","y","floor","t"}]}
//	POST /feed                  same body; records join the object's stream
//	POST /flush                 complete all open stream fragments
//	GET  /query/popular-regions ?k=5&start=0&end=3600&regions=1,2,3
//	GET  /query/frequent-pairs  same parameters
//	GET  /stats                 streaming pipeline counters
//	GET  /healthz               liveness probe
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"c2mn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("msserve: ")

	addr := flag.String("addr", ":8080", "listen address")
	spacePath := flag.String("space", "space.json", "venue JSON path")
	modelPath := flag.String("model", "model.json", "trained model path")
	eta := flag.Float64("eta", c2mn.DefaultEta, "stream split gap η in seconds")
	psi := flag.Float64("psi", c2mn.DefaultPsi, "minimum fragment duration ψ in seconds")
	workers := flag.Int("workers", 0, "batch annotation workers (0 = GOMAXPROCS)")
	window := flag.Int("window", 0, "windowed inference chunk size (0 = whole-sequence)")
	overlap := flag.Int("overlap", 0, "windowed inference overlap (0 = default 32, -1 = none)")
	retention := flag.Float64("retention", 0, "live store retention in seconds of stream time (0 = keep all)")
	maxBody := flag.Int64("max-body", defaultMaxBody, "maximum request body size in bytes")
	maxSweeps := flag.Int("max-sweeps", 0, "ICM sweep bound per sequence (0 = default 20)")
	annealSweeps := flag.Int("anneal-sweeps", 0, "annealed-restart Gibbs sweeps (0 = off)")
	seed := flag.Int64("seed", 0, "annealing randomness seed")
	flag.Parse()

	if *maxBody <= 0 {
		log.Fatalf("-max-body must be positive, got %d", *maxBody)
	}
	infer := c2mn.AnnotateOptions{MaxSweeps: *maxSweeps, AnnealSweeps: *annealSweeps, Seed: *seed}
	engine, err := buildEngine(*spacePath, *modelPath, *eta, *psi, *workers, *window, *overlap, *retention, infer)
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(engine, *maxBody),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()
	log.Printf("serving on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}

func buildEngine(spacePath, modelPath string, eta, psi float64, workers, window, overlap int, retention float64, infer c2mn.AnnotateOptions) (*c2mn.Engine, error) {
	sf, err := os.Open(spacePath)
	if err != nil {
		return nil, err
	}
	defer sf.Close()
	space, err := c2mn.ReadSpace(sf)
	if err != nil {
		return nil, err
	}
	mf, err := os.Open(modelPath)
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	ann, err := c2mn.Load(space, mf)
	if err != nil {
		return nil, err
	}
	return c2mn.NewEngine(ann,
		c2mn.WithPreprocess(eta, psi),
		c2mn.WithWorkers(workers),
		c2mn.WithWindowing(window, overlap),
		c2mn.WithRetention(retention),
		c2mn.WithInferOptions(infer),
	)
}

// defaultMaxBody caps request bodies at 32 MiB unless -max-body says
// otherwise.
const defaultMaxBody = 32 << 20

// server handles the HTTP surface over one Engine.
type server struct {
	engine  *c2mn.Engine
	maxBody int64
}

// newServer builds the route table. maxBody caps every request body.
func newServer(e *c2mn.Engine, maxBody int64) http.Handler {
	s := &server{engine: e, maxBody: maxBody}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /annotate", s.handleAnnotate)
	mux.HandleFunc("POST /feed", s.handleFeed)
	mux.HandleFunc("POST /flush", s.handleFlush)
	mux.HandleFunc("GET /query/popular-regions", s.handlePopularRegions)
	mux.HandleFunc("GET /query/frequent-pairs", s.handleFrequentPairs)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// Wire types. Records are flat {x, y, floor, t} objects; timestamps
// are seconds, as everywhere in the package.
type wireRecord struct {
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Floor int     `json:"floor"`
	T     float64 `json:"t"`
}

type sequenceRequest struct {
	ObjectID string       `json:"object_id"`
	Records  []wireRecord `json:"records"`
}

type wireSemantics struct {
	Region     int     `json:"region"`
	RegionName string  `json:"region_name,omitempty"`
	Start      float64 `json:"start"`
	End        float64 `json:"end"`
	Event      string  `json:"event"`
}

type annotateResponse struct {
	ObjectID  string          `json:"object_id"`
	Regions   []int           `json:"regions"`
	Events    []string        `json:"events"`
	Semantics []wireSemantics `json:"semantics"`
}

func (s *server) handleAnnotate(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeSequence(w, r)
	if !ok {
		return
	}
	p := toPSequence(req)
	labels, ms, err := s.engine.AnnotateCtx(r.Context(), &p)
	if err != nil {
		writeAnnotateError(w, err)
		return
	}
	resp := annotateResponse{
		ObjectID:  p.ObjectID,
		Regions:   make([]int, len(labels.Regions)),
		Events:    make([]string, len(labels.Events)),
		Semantics: s.wireSemantics(ms),
	}
	for i, rg := range labels.Regions {
		resp.Regions[i] = int(rg)
	}
	for i, ev := range labels.Events {
		resp.Events[i] = ev.String()
	}
	writeJSON(w, http.StatusOK, resp)
}

type feedResponse struct {
	Fed                int `json:"fed"`
	CompletedSequences int `json:"completed_sequences"`
}

func (s *server) handleFeed(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeSequence(w, r)
	if !ok {
		return
	}
	p := toPSequence(req)
	// The response uses only this call's counts — no engine-wide stats
	// scan on the ingestion hot path.
	completed, err := s.engine.FeedAll(p.ObjectID, p.Records)
	if err != nil {
		// Partial success: valid records were ingested and may have
		// emitted sequences. Report the counts with the error so the
		// client knows not to blindly re-feed the batch.
		writeJSON(w, http.StatusUnprocessableEntity, struct {
			Error string `json:"error"`
			feedResponse
		}{err.Error(), feedResponse{Fed: len(p.Records), CompletedSequences: completed}})
		return
	}
	writeJSON(w, http.StatusOK, feedResponse{
		Fed:                len(p.Records),
		CompletedSequences: completed,
	})
}

type flushResponse struct {
	PendingRecords   int   `json:"pending_records"`
	EmittedSequences int64 `json:"emitted_sequences"`
}

func (s *server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if err := s.engine.Flush(); err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	st := s.engine.Stats()
	writeJSON(w, http.StatusOK, flushResponse{
		PendingRecords:   st.PendingRecords,
		EmittedSequences: st.EmittedSequences,
	})
}

type regionCountResponse struct {
	Region     int    `json:"region"`
	RegionName string `json:"region_name,omitempty"`
	Count      int    `json:"count"`
}

func (s *server) handlePopularRegions(w http.ResponseWriter, r *http.Request) {
	q, win, k, err := s.queryParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	top := s.engine.TopKPopularRegions(q, win, k)
	out := make([]regionCountResponse, len(top))
	for i, rc := range top {
		out[i] = regionCountResponse{
			Region:     int(rc.Region),
			RegionName: s.regionName(rc.Region),
			Count:      rc.Count,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

type pairCountResponse struct {
	A     int    `json:"a"`
	AName string `json:"a_name,omitempty"`
	B     int    `json:"b"`
	BName string `json:"b_name,omitempty"`
	Count int    `json:"count"`
}

func (s *server) handleFrequentPairs(w http.ResponseWriter, r *http.Request) {
	q, win, k, err := s.queryParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	top := s.engine.TopKFrequentPairs(q, win, k)
	out := make([]pairCountResponse, len(top))
	for i, pc := range top {
		out[i] = pairCountResponse{
			A: int(pc.A), AName: s.regionName(pc.A),
			B: int(pc.B), BName: s.regionName(pc.B),
			Count: pc.Count,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Stats())
}

// queryParams parses k (default 5), start/end (default all time) and
// regions (default: every region of the venue).
func (s *server) queryParams(r *http.Request) ([]c2mn.RegionID, c2mn.Window, int, error) {
	vals := r.URL.Query()
	k := 5
	win := c2mn.Window{Start: 0, End: math.MaxFloat64}
	if v := vals.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return nil, win, 0, fmt.Errorf("bad k %q", v)
		}
		k = n
	}
	if v := vals.Get("start"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, win, 0, fmt.Errorf("bad start %q", v)
		}
		win.Start = f
	}
	if v := vals.Get("end"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, win, 0, fmt.Errorf("bad end %q", v)
		}
		win.End = f
	}
	var q []c2mn.RegionID
	if v := vals.Get("regions"); v != "" {
		for _, part := range strings.Split(v, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, win, 0, fmt.Errorf("bad region %q", part)
			}
			q = append(q, c2mn.RegionID(n))
		}
	} else {
		q = s.engine.Space().Regions()
	}
	return q, win, k, nil
}

func (s *server) regionName(id c2mn.RegionID) string {
	if id == c2mn.NoRegion {
		return ""
	}
	return s.engine.Space().Region(id).Name
}

func (s *server) wireSemantics(ms c2mn.MSSequence) []wireSemantics {
	out := make([]wireSemantics, len(ms.Semantics))
	for i, m := range ms.Semantics {
		out[i] = wireSemantics{
			Region:     int(m.Region),
			RegionName: s.regionName(m.Region),
			Start:      m.Start,
			End:        m.End,
			Event:      m.Event.String(),
		}
	}
	return out
}

func (s *server) decodeSequence(w http.ResponseWriter, r *http.Request) (sequenceRequest, bool) {
	var req sequenceRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return req, false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return req, false
	}
	if req.ObjectID == "" {
		writeError(w, http.StatusBadRequest, errors.New("object_id is required"))
		return req, false
	}
	return req, true
}

func toPSequence(req sequenceRequest) c2mn.PSequence {
	p := c2mn.PSequence{ObjectID: req.ObjectID, Records: make([]c2mn.Record, len(req.Records))}
	for i, rec := range req.Records {
		p.Records[i] = c2mn.Record{Loc: c2mn.Loc(rec.X, rec.Y, rec.Floor), T: rec.T}
	}
	return p
}

// writeAnnotateError maps the typed annotation errors to statuses:
// client mistakes (empty or invalid sequences) are 4xx, cancellation —
// normally the client having gone away — is 499-style.
func writeAnnotateError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, c2mn.ErrEmptySequence):
		writeError(w, http.StatusBadRequest, err)
	case errors.Is(err, c2mn.ErrCanceled):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, c2mn.ErrNoModel):
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeError(w, http.StatusUnprocessableEntity, err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
