// Command msserve exposes trained C2MN annotation engines over HTTP.
// It serves one or many venues — each an independently loaded
// (space, model) pair — and routes batch annotation, record-by-record
// streaming ingestion with online η-gap segmentation, and live top-k
// queries by venue.
//
// Usage:
//
//	msserve -space mall.json -model model.json -addr :8080
//	msserve -venue north=mall-n.json,model-n.json \
//	        -venue south=mall-s.json,model-s.json -addr :8080
//
// Endpoints (JSON over HTTP). The canonical surface is versioned
// under /v1/; every route below is mounted there. Data-plane
// endpoints take the venue as a path segment (/v1/venues/{venue}/...)
// or a ?venue= parameter on the bare path; with exactly one venue
// loaded the parameter may be omitted.
//
//	POST   /v1/query                         unified query: JSON body = c2mn.Query
//	                                         (kind, scope venue|venues|fleet, venues,
//	                                         regions, window, k, per_venue) + optional
//	                                         page_size / cursor pagination fields
//	POST   /v1/annotate                      {"object_id", "records": [{"x","y","floor","t"}]}
//	POST   /v1/feed                          same body; records join the object's stream
//	POST   /v1/flush                         complete open stream fragments (?venue=, default all)
//	GET    /v1/query/popular-regions         ?k=5&start=0&end=3600&regions=1,2,3
//	                                         (+ ?scope=fleet or ?venues=a,b for cross-venue)
//	GET    /v1/query/frequent-pairs          same parameters
//	POST   /v1/venues/{venue}/annotate       path-routed equivalents of the above
//	POST   /v1/venues/{venue}/feed
//	POST   /v1/venues/{venue}/flush
//	GET    /v1/venues/{venue}/query/popular-regions
//	GET    /v1/venues/{venue}/query/frequent-pairs
//	GET    /v1/venues/{venue}/stats          one venue's pipeline counters
//	GET    /v1/venues                        list loaded venues with stats + model identity
//	GET    /v1/venues/{venue}/model          the venue's serving-model identity (hashes,
//	                                         format version, retraining swap count)
//	GET    /v1/stats                         per-venue counters + totals
//	GET    /v1/healthz                       liveness probe (also at /healthz)
//	GET    /v1/readyz                        readiness probe (also at /readyz): 503 while
//	                                         the process is draining for shutdown
//
// The mutating admin surface is consolidated under /v1/admin/ behind a
// single bearer-token check:
//
//	POST   /v1/admin/venues                        {"venue","space","model"}: (re)load from server-side paths
//	DELETE /v1/admin/venues/{venue}                unload a venue
//	POST   /v1/admin/venues/{venue}/snapshot       persist the venue's live state to -snapshot-dir now
//	GET    /v1/admin/venues/{venue}/snapshot/file  download the venue's on-disk snapshot bytes
//	PUT    /v1/admin/venues/{venue}/snapshot/file  upload + restore a snapshot into the (cold) venue
//	POST   /v1/admin/venues/{venue}/drain          stop accepting /feed for the venue (migration)
//	DELETE /v1/admin/venues/{venue}/drain          resume accepting /feed
//	POST   /v1/admin/venues/{venue}/feedback       {"data": [labeled sequences]}: operator ground truth
//	POST   /v1/admin/venues/{venue}/retrain        run one retraining cycle now (optional truth body)
//	GET    /v1/admin/venues/{venue}/retrain        the venue's retraining loop status + audit log
//
// The pre-consolidation admin mounts (POST /v1/venues, the snapshot,
// drain and legacy bare paths) stay as deprecated aliases onto the
// same handlers and the same token check, with Deprecation/Link
// headers steering to the /v1/admin successor. The retraining
// endpoints are new with the consolidation, so they exist only under
// /v1/admin and answer 409 "retrain_disabled" unless msserve runs
// with -retrain.
//
// Query responses carry an ETag freshness validator derived from the
// scanned venues' store generations — `"<venue>:<generation>"` for a
// single venue, a venue-sorted `"a:3;b:7"` composite for cross-venue
// scopes. A conditional request repeating the same query with
// If-None-Match gets 304 Not Modified while no scanned store has
// moved; /v1/venues surfaces each venue's current generation as
// store_generation. cmd/msrouter's scatter-gather revalidates its
// cached per-venue partials through this contract.
//
// /v1 errors are typed: {"error": {"code": "unknown_venue", ...}}.
// Requests carrying an X-Request-ID header get it echoed on the
// response and embedded in /v1 error payloads, so a failure observed
// behind a routing tier is correlatable across both log streams.
//
// Draining a venue is the first step of a live migration (see
// cmd/msrouter): a drained venue rejects new /feed traffic with
// 503 + Retry-After until a redirect target is set, then with
// 307 → the new owner; queries keep answering from the frozen state
// throughout. The snapshot file endpoints move the venue's state:
// GET streams the venue's current on-disk snapshot, PUT restores an
// uploaded snapshot into a venue with no live state — PR 5's
// venue/space/model-hash guards turn a misrouted upload into a typed
// 409/422, never corruption.
// The unversioned paths from earlier releases stay mounted as
// deprecated aliases onto the same handlers — identical behaviour and
// flat {"error": "..."} payloads, plus Deprecation/Link headers
// pointing at the /v1 successor.
//
// Everything under /v1/admin/ is destructive (it replaces or discards
// a venue's live state, reads server-side files, or rotates the
// serving model); gate the tree with -admin-token (or the
// MSSERVE_ADMIN_TOKEN environment variable), which requires
// "Authorization: Bearer <token>" on those endpoints and their
// deprecated aliases. Leave it empty only behind an authenticating
// proxy.
//
// With -retrain, each venue runs the closed-loop retraining plane:
// every streamed inference feeds a PSI drift detector and bounded
// labeled-sample reservoirs; a cycle (drift-triggered with
// -retrain-auto, or POST .../retrain) trains a candidate model off
// the serving path, shadow-scores it against the incumbent on a
// held-out labeled slice and hot-swaps it in only on a strict
// accuracy win. Ground truth posted to .../feedback is what opens the
// gate — a venue fed only its own predictions can never swap. A swap
// splices the venue's store generation forward, so cached ETags,
// router partials and watch resume labels all see new content; it is
// vetoed while the venue drains for migration.
//
// With -budget bounding fleet-wide inference and -feed-timeout set,
// /feed sheds load instead of queueing without bound: a completed
// fragment that cannot get an inference slot in time fails with
// 429 + Retry-After (error code "backlog").
//
// Profiling is opt-in: -pprof-addr serves net/http/pprof on a separate
// listener (keep it on localhost or a private interface); the public
// -addr surface never exposes the profiling endpoints.
//
// With -snapshot-dir set, venue state is durable across restarts: on
// boot every loaded venue with a snapshot file resumes its sliding
// windows (live top-k store, open stream fragments, pipeline counters)
// instead of starting cold; snapshots are written on graceful
// shutdown, on the admin trigger above, and — with -snapshot-interval
// — periodically in the background (jittered, skipping venues whose
// pipelines have not advanced). Snapshot files are written atomically
// (fsync + rename), so a crash mid-write never leaves a torn file; a
// snapshot that does not match the venue's current space, model or
// preprocessing configuration is refused at restore and the venue
// starts cold.
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight requests for up to -drain before exiting.
package main

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/base64"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"c2mn"
	"c2mn/internal/notify"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("msserve: ")

	addr := flag.String("addr", ":8080", "listen address")
	spacePath := flag.String("space", "", "venue JSON path (single-venue form; venue ID \"default\")")
	modelPath := flag.String("model", "", "trained model path (single-venue form)")
	var venueSpecs []string
	flag.Func("venue", "venue spec id=space.json,model.json (repeatable)", func(v string) error {
		venueSpecs = append(venueSpecs, v)
		return nil
	})
	eta := flag.Float64("eta", c2mn.DefaultEta, "stream split gap η in seconds")
	psi := flag.Float64("psi", c2mn.DefaultPsi, "minimum fragment duration ψ in seconds")
	workers := flag.Int("workers", 0, "per-venue batch annotation workers (0 = GOMAXPROCS)")
	budget := flag.Int("budget", 0, "total concurrent annotations across all venues (0 = unbounded)")
	maxVenues := flag.Int("max-venues", 0, "maximum loaded venues (0 = unlimited)")
	window := flag.Int("window", 0, "windowed inference chunk size (0 = whole-sequence)")
	overlap := flag.Int("overlap", 0, "windowed inference overlap (0 = default 32, -1 = none)")
	retention := flag.Float64("retention", 0, "live store retention in seconds of stream time (0 = keep all)")
	maxBody := flag.Int64("max-body", defaultMaxBody, "maximum request body size in bytes")
	maxSweeps := flag.Int("max-sweeps", 0, "ICM sweep bound per sequence (0 = default 20)")
	annealSweeps := flag.Int("anneal-sweeps", 0, "annealed-restart Gibbs sweeps (0 = off)")
	seed := flag.Int64("seed", 0, "annealing randomness seed")
	feedTimeout := flag.Duration("feed-timeout", 0,
		"bound on a fed fragment's wait for a -budget inference slot; exceeded waits fail with 429 (0 = wait forever)")
	adminToken := flag.String("admin-token", os.Getenv("MSSERVE_ADMIN_TOKEN"),
		"bearer token required on venue load/unload admin endpoints (empty = open)")
	drain := flag.Duration("drain", 5*time.Second, "graceful shutdown drain timeout")
	snapshotDir := flag.String("snapshot-dir", "",
		"directory for venue snapshots: restored on boot (warm restart), written on shutdown and on the admin trigger (empty = no persistence)")
	snapshotInterval := flag.Duration("snapshot-interval", 0,
		"background snapshot period per venue; unchanged venues are skipped (0 = snapshot only on shutdown/trigger; requires -snapshot-dir)")
	pprofAddr := flag.String("pprof-addr", "",
		"serve net/http/pprof on this separate address (e.g. localhost:6060); never exposed on -addr (empty = off)")
	watchHeartbeat := flag.Duration("watch-heartbeat", defaultWatchHeartbeat,
		"comment-frame heartbeat period on /v1/watch streams (keeps idle streams alive through proxies)")
	retrainOn := flag.Bool("retrain", false,
		"enable the closed-loop retraining plane: drift tracking, labeled-sample reservoirs and the /v1/admin retrain endpoints")
	retrainAuto := flag.Bool("retrain-auto", false,
		"start a retraining cycle automatically when a venue's drift detector fires (requires -retrain)")
	retrainDrift := flag.Float64("retrain-drift", 0, "PSI drift trigger threshold (0 = default 0.25)")
	retrainWindow := flag.Int("retrain-window", 0, "drift sliding window in emitted sequences (0 = default 64)")
	retrainMinSamples := flag.Int("retrain-min-samples", 0, "minimum labeled samples before a cycle trains (0 = default 32)")
	retrainHoldout := flag.Float64("retrain-holdout", 0, "fraction of samples held out for shadow scoring (0 = default 0.25)")
	retrainCooldown := flag.Duration("retrain-cooldown", 0, "minimum spacing between drift-triggered cycles (0 = default 10m)")
	retrainV := flag.Float64("retrain-v", 0, "candidate trainer: fsm uncertainty radius V in meters (0 = trainer default)")
	retrainSigma2 := flag.Float64("retrain-sigma2", 0, "candidate trainer: Gaussian prior variance override (0 = trainer default)")
	retrainSeed := flag.Int64("retrain-seed", 0, "candidate trainer + sampling seed")
	flag.Parse()

	if *maxBody <= 0 {
		log.Fatalf("-max-body must be positive, got %d", *maxBody)
	}
	if *pprofAddr != "" {
		startPprof(*pprofAddr)
	}
	type venueLoad struct{ id, space, model string }
	var loads []venueLoad
	for _, spec := range venueSpecs {
		id, spacePath, modelPath, err := parseVenueSpec(spec)
		if err != nil {
			log.Fatal(err)
		}
		loads = append(loads, venueLoad{id, spacePath, modelPath})
	}
	if *spacePath != "" || *modelPath != "" {
		if *spacePath == "" || *modelPath == "" {
			log.Fatal("-space and -model must be given together")
		}
		// Appended directly, not via the spec syntax, so paths containing
		// '=' or ',' survive.
		loads = append(loads, venueLoad{"default", *spacePath, *modelPath})
	}
	if len(loads) == 0 {
		log.Fatal("no venues: pass -space/-model or at least one -venue id=space.json,model.json")
	}

	infer := c2mn.AnnotateOptions{MaxSweeps: *maxSweeps, AnnealSweeps: *annealSweeps, Seed: *seed}
	// The change-feed hub spans the whole registry: every engine —
	// including ones loaded or hot-reloaded later, which inherit the
	// defaults — publishes its generation moves here, and /v1/watch
	// streams subscribe (see watch.go).
	watchHub := notify.NewHub()
	regOpts := []c2mn.RegistryOption{
		c2mn.WithVenueDefaults(
			c2mn.WithPreprocess(*eta, *psi),
			c2mn.WithWorkers(*workers),
			c2mn.WithWindowing(*window, *overlap),
			c2mn.WithRetention(*retention),
			c2mn.WithInferOptions(infer),
			c2mn.WithFeedQueueTimeout(*feedTimeout),
			c2mn.WithChangeNotifier(watchHub.Publish),
		),
		c2mn.WithVenueBudget(*budget),
		c2mn.WithMaxVenues(*maxVenues),
	}
	if *retrainAuto && !*retrainOn {
		log.Fatal("-retrain-auto requires -retrain")
	}
	if *retrainOn {
		regOpts = append(regOpts, c2mn.WithRetrainPolicy(c2mn.RetrainPolicy{
			Config: c2mn.RetrainConfig{
				DriftThreshold: *retrainDrift,
				DriftWindow:    *retrainWindow,
				MinSamples:     *retrainMinSamples,
				HoldoutFrac:    *retrainHoldout,
				Cooldown:       *retrainCooldown,
				Seed:           *retrainSeed,
			},
			Auto: *retrainAuto,
			// Exact decomposed training: deterministic, so a cycle's
			// outcome is reproducible from its audit record.
			// Exact + TuneClustering: candidate training runs off the
			// serving path, so the deterministic trainer and workload
			// parameter tuning are affordable defaults.
			Train: c2mn.TrainOptions{
				V: *retrainV, Sigma2: *retrainSigma2, Exact: true,
				TuneClustering: true, Seed: *retrainSeed,
			},
		}))
	}
	registry, err := c2mn.NewVenueRegistry(regOpts...)
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range loads {
		if err := loadVenueFiles(registry, l.id, l.space, l.model); err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded venue %q (space %s, model %s)", l.id, l.space, l.model)
	}

	if *snapshotInterval > 0 && *snapshotDir == "" {
		log.Fatal("-snapshot-interval requires -snapshot-dir")
	}
	snaps := newSnapshotTracker()
	if *snapshotDir != "" {
		if err := os.MkdirAll(*snapshotDir, 0o755); err != nil {
			log.Fatal(err)
		}
		// Warm start: venues with a snapshot resume their sliding
		// windows; a bad snapshot costs that venue its warmth, not the
		// whole boot.
		restored, err := registry.RestoreAll(*snapshotDir)
		if err != nil {
			log.Printf("warm start: %v (affected venues start cold)", err)
		}
		if len(restored) > 0 {
			log.Printf("warm start: restored %d venue(s): %s", len(restored), strings.Join(restored, ", "))
		}
		// A restored venue is exactly as fresh as its file: seed the
		// tracker with the file's mtime so /v1/venues reports snapshot
		// freshness from the first request, and the background loop
		// skips venues that stay idle after the warm boot.
		stats := registry.Stats()
		for _, id := range restored {
			if fi, err := os.Stat(c2mn.SnapshotPath(*snapshotDir, id)); err == nil {
				snaps.recordAt(id, stats[id], fi.ModTime().Unix())
			}
		}
	}

	// Readiness flips on once warm boot finished (just below) and off
	// when the drain starts, so a router's health checks stop routing
	// new work here while in-flight requests finish.
	var ready atomic.Bool
	watchStop := make(chan struct{})
	srv := &http.Server{
		Handler: newServer(registry, *maxBody, *adminToken,
			withFeedRetryAfter(*feedTimeout), withSnapshotDir(*snapshotDir),
			withReadiness(&ready), withSnapshotTracker(snaps),
			withWatchHub(watchHub), withWatchHeartbeat(*watchHeartbeat),
			withWatchShutdown(watchStop)),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *snapshotDir != "" && *snapshotInterval > 0 {
		go snapshotLoop(ctx, registry, *snapshotDir, *snapshotInterval, snaps)
	}
	ready.Store(true)
	log.Printf("serving %d venue(s) on %s", registry.Len(), ln.Addr())
	// Drain order: readiness off first (health checks stop routing new
	// work here), then the watch stop — open /v1/watch streams emit a
	// terminal goodbye and return, so Shutdown's wait below covers them.
	if err := serve(ctx, srv, ln, *drain, func() { ready.Store(false); close(watchStop) }); err != nil {
		log.Fatal(err)
	}
	if *snapshotDir != "" {
		// Snapshot-on-drain: capture every venue — open fragments
		// included — after in-flight requests finished, so the next boot
		// restarts warm. Written atomically (fsync + rename); a SIGKILL
		// mid-write leaves the previous snapshots intact.
		if paths, err := registry.SnapshotAll(*snapshotDir); err != nil {
			log.Printf("final snapshot: %v", err)
		} else {
			log.Printf("snapshotted %d venue(s) to %s", len(paths), *snapshotDir)
		}
	}
	log.Print("drained, bye")
}

// snapshotLoop writes periodic background snapshots: each round,
// jittered around the configured interval so fleets sharing a disk do
// not snapshot in lockstep, persists the venues whose pipelines
// advanced since their last snapshot. The change check keeps the loop
// budget-aware — an idle venue costs nothing, and venues are written
// one at a time so snapshot IO never bursts above a single shard's
// serialisation.
// startPprof serves the net/http/pprof endpoints on their own listener
// and mux. The profiling surface is deliberately never mounted on the
// public -addr server: an explicit mux (rather than the default one the
// pprof import auto-registers on) keeps the two surfaces disjoint even
// if the main server ever falls back to http.DefaultServeMux.
func startPprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("pprof listener: %v", err)
	}
	log.Printf("pprof on http://%s/debug/pprof/", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			log.Printf("pprof server: %v", err)
		}
	}()
}

func snapshotLoop(ctx context.Context, registry *c2mn.VenueRegistry, dir string, interval time.Duration, snaps *snapshotTracker) {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for {
		// Jitter each round by ±10% of the interval.
		d := interval + time.Duration((rng.Float64()-0.5)*0.2*float64(interval))
		select {
		case <-ctx.Done():
			return
		case <-time.After(d):
		}
		if _, err := snapshotRound(registry, dir, snaps); err != nil {
			log.Printf("background snapshot: %v", err)
		}
	}
}

// snapshotRound snapshots every venue whose counters moved since the
// stats recorded in the tracker, records the written venues, and
// returns their IDs. Unloaded venues are dropped from the tracker.
func snapshotRound(registry *c2mn.VenueRegistry, dir string, snaps *snapshotTracker) ([]string, error) {
	stats := registry.Stats()
	snaps.prune(stats)
	ids := make([]string, 0, len(stats))
	for id := range stats {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var written []string
	var errs []error
	for _, id := range ids {
		if rec, ok := snaps.get(id); ok && pipelineFingerprint(rec.stats) == pipelineFingerprint(stats[id]) {
			continue // unchanged since its last snapshot
		}
		if _, err := registry.SnapshotVenue(id, dir); err != nil {
			if errors.Is(err, c2mn.ErrUnknownVenue) {
				continue // unloaded between listing and snapshot
			}
			errs = append(errs, err)
			continue
		}
		// Record the pre-snapshot sample: traffic landing during the
		// write re-marks the venue changed for the next round.
		snaps.record(id, stats[id])
		written = append(written, id)
	}
	return written, errors.Join(errs...)
}

// pipelineFingerprint projects a stats sample onto the counters that
// indicate durable-state movement, zeroing the query-cache counters:
// read-only query traffic moves hit/miss/revalidation counts without
// changing anything a snapshot needs to re-capture, so the idle-skip
// in snapshotRound and the snapshot_stale column must not see it as
// change.
func pipelineFingerprint(st c2mn.EngineStats) c2mn.EngineStats {
	st.QueryCacheHits, st.QueryCacheMisses, st.QueryCacheRevalidations = 0, 0, 0
	return st
}

// snapshotTracker remembers, per venue, when the last snapshot was
// written and the pipeline counters it captured. It backs both the
// background loop's "did anything move" skip and the /v1/venues
// freshness columns, so operators and the migration flow can judge
// staleness without forcing a snapshot.
type snapshotTracker struct {
	mu sync.Mutex
	m  map[string]snapshotRecord
}

// snapshotRecord is one venue's last-snapshot bookkeeping.
type snapshotRecord struct {
	unix  int64            // write time, unix seconds
	stats c2mn.EngineStats // counters sampled just before the write
}

func newSnapshotTracker() *snapshotTracker {
	return &snapshotTracker{m: map[string]snapshotRecord{}}
}

// record notes a snapshot written now capturing the given counters.
func (t *snapshotTracker) record(id string, stats c2mn.EngineStats) {
	t.recordAt(id, stats, time.Now().Unix())
}

// recordAt is record with an explicit timestamp (warm-boot seeding
// uses the snapshot file's mtime).
func (t *snapshotTracker) recordAt(id string, stats c2mn.EngineStats, unix int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[id] = snapshotRecord{unix: unix, stats: stats}
}

// get returns the venue's last-snapshot record, if any.
func (t *snapshotTracker) get(id string) (snapshotRecord, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rec, ok := t.m[id]
	return rec, ok
}

// forget drops a venue's record (unload, hot reload).
func (t *snapshotTracker) forget(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.m, id)
}

// prune drops records of venues absent from the given stats map.
func (t *snapshotTracker) prune(loaded map[string]c2mn.EngineStats) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id := range t.m {
		if _, ok := loaded[id]; !ok {
			delete(t.m, id)
		}
	}
}

// serve runs srv on ln until ctx is canceled, then shuts down
// gracefully: onDrain (if non-nil) runs first — flipping readiness
// off so probes see the drain — the listener closes, in-flight
// requests get up to drain to complete, and serve returns once the
// server has fully stopped. A nil return means a clean exit (either a
// drained shutdown or the listener closing normally).
func serve(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration, onDrain func()) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	if onDrain != nil {
		onDrain()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// Drain timeout exceeded: force-close lingering connections.
		srv.Close()
		<-errc
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// parseVenueSpec splits "id=space.json,model.json".
func parseVenueSpec(spec string) (id, spacePath, modelPath string, err error) {
	id, paths, ok := strings.Cut(spec, "=")
	if !ok || id == "" {
		return "", "", "", fmt.Errorf("bad -venue %q: want id=space.json,model.json", spec)
	}
	spacePath, modelPath, ok = strings.Cut(paths, ",")
	if !ok || spacePath == "" || modelPath == "" {
		return "", "", "", fmt.Errorf("bad -venue %q: want id=space.json,model.json", spec)
	}
	return id, spacePath, modelPath, nil
}

// loadVenueFiles loads a (space, model) pair from disk into the
// registry under the venue ID, replacing any engine already there.
func loadVenueFiles(registry *c2mn.VenueRegistry, id, spacePath, modelPath string) error {
	sf, err := os.Open(spacePath)
	if err != nil {
		return err
	}
	defer sf.Close()
	space, err := c2mn.ReadSpace(sf)
	if err != nil {
		return fmt.Errorf("venue %q: reading space: %w", id, err)
	}
	mf, err := os.Open(modelPath)
	if err != nil {
		return err
	}
	defer mf.Close()
	if _, err := registry.Load(id, space, mf); err != nil {
		return err
	}
	return nil
}

// defaultMaxBody caps request bodies at 32 MiB unless -max-body says
// otherwise.
const defaultMaxBody = 32 << 20

// server handles the HTTP surface over a venue registry.
type server struct {
	registry       *c2mn.VenueRegistry
	maxBody        int64
	adminToken     string
	retryAfterSecs string // Retry-After hint on 429 backlog responses
	snapshotDir    string // venue snapshot directory ("" = persistence disabled)
	ready          *atomic.Bool
	snaps          *snapshotTracker

	// Continuous-query push plane (see watch.go): the change-feed hub
	// the registry's engines publish generation moves into, the
	// heartbeat cadence of /v1/watch streams, and a channel closed when
	// the shutdown drain starts so standing streams say goodbye instead
	// of holding Shutdown open.
	watchHub       *notify.Hub
	watchHeartbeat time.Duration
	watchShutdown  chan struct{}

	// drainMu guards draining: venue → redirect base URL. A venue
	// present with an empty value is draining without a cutover target
	// yet (/feed answers 503 + Retry-After); a non-empty value is the
	// new owner's base URL (/feed answers 307 there).
	drainMu  sync.Mutex
	draining map[string]string
}

// drainState reports whether a venue is draining and, once cut over,
// where its feed traffic should go instead.
func (s *server) drainState(venue string) (redirect string, draining bool) {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	redirect, draining = s.draining[venue]
	return redirect, draining
}

// A serverOption tunes the handler beyond the required arguments.
type serverOption func(*server)

// withFeedRetryAfter derives the Retry-After hint on 429 backlog
// responses from the -feed-timeout bound: a client backing off for at
// least the queue-wait bound gives the backlog one full drain window.
func withFeedRetryAfter(d time.Duration) serverOption {
	return func(s *server) {
		if secs := int(math.Ceil(d.Seconds())); secs > 1 {
			s.retryAfterSecs = strconv.Itoa(secs)
		}
	}
}

// withSnapshotDir enables the admin snapshot trigger, writing venue
// snapshots into dir. The empty default leaves the endpoint mounted
// but answering 409: persistence is off.
func withSnapshotDir(dir string) serverOption {
	return func(s *server) { s.snapshotDir = dir }
}

// withReadiness wires /readyz to an externally owned flag, so main
// can flip it off when the shutdown drain starts. Without it the
// server constructs its own always-ready flag.
func withReadiness(ready *atomic.Bool) serverOption {
	return func(s *server) { s.ready = ready }
}

// withSnapshotTracker shares the background snapshot loop's freshness
// bookkeeping with the /v1/venues listing.
func withSnapshotTracker(t *snapshotTracker) serverOption {
	return func(s *server) { s.snaps = t }
}

// withWatchHub installs the change-feed hub /v1/watch subscribes to.
// The caller must also register the hub's Publish as the registry's
// change notifier (c2mn.WithChangeNotifier) — the server only consumes
// signals. Without the option the server makes its own hub, which then
// never fires: watches degrade to snapshot + heartbeats.
func withWatchHub(h *notify.Hub) serverOption {
	return func(s *server) { s.watchHub = h }
}

// withWatchHeartbeat overrides the /v1/watch heartbeat cadence.
func withWatchHeartbeat(d time.Duration) serverOption {
	return func(s *server) {
		if d > 0 {
			s.watchHeartbeat = d
		}
	}
}

// withWatchShutdown wires the channel main closes when the shutdown
// drain starts; open /v1/watch streams then emit a terminal goodbye
// and return, so Shutdown's wait covers them without a timeout.
func withWatchShutdown(ch chan struct{}) serverOption {
	return func(s *server) { s.watchShutdown = ch }
}

// newServer builds the route table: the canonical versioned surface
// under /v1/ plus the pre-versioning unversioned paths, kept as
// deprecated aliases onto the same handlers. maxBody caps every
// request body. A non-empty adminToken gates the mutating admin
// endpoints (venue load/unload) behind `Authorization: Bearer
// <token>`; empty leaves them open, for deployments fronted by their
// own auth.
func newServer(registry *c2mn.VenueRegistry, maxBody int64, adminToken string, opts ...serverOption) http.Handler {
	s := &server{
		registry: registry, maxBody: maxBody, adminToken: adminToken, retryAfterSecs: "1",
		draining: map[string]string{},
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.ready == nil {
		s.ready = &atomic.Bool{}
		s.ready.Store(true)
	}
	if s.snaps == nil {
		s.snaps = newSnapshotTracker()
	}
	if s.watchHub == nil {
		s.watchHub = notify.NewHub()
	}
	if s.watchHeartbeat <= 0 {
		s.watchHeartbeat = defaultWatchHeartbeat
	}
	mux := http.NewServeMux()
	routes := []struct {
		pattern string
		h       http.HandlerFunc
	}{
		// Bare data-plane paths: venue from ?venue=, or the sole venue;
		// the query GETs also accept ?venues=a,b and ?scope=fleet.
		{"POST /annotate", s.handleAnnotate},
		{"POST /feed", s.handleFeed},
		{"POST /flush", s.handleFlush},
		{"GET /query/popular-regions", s.handlePopularRegions},
		{"GET /query/frequent-pairs", s.handleFrequentPairs},
		// Venue-scoped equivalents with the venue as a path segment.
		{"POST /venues/{venue}/annotate", s.handleAnnotate},
		{"POST /venues/{venue}/feed", s.handleFeed},
		{"POST /venues/{venue}/flush", s.handleFlush},
		{"GET /venues/{venue}/query/popular-regions", s.handlePopularRegions},
		{"GET /venues/{venue}/query/frequent-pairs", s.handleFrequentPairs},
		{"GET /venues/{venue}/stats", s.handleVenueStats},
		// Read-only listing and probes.
		{"GET /venues", s.handleListVenues},
		{"GET /stats", s.handleStats},
		{"GET /healthz", s.handleHealthz},
	}
	for _, rt := range routes {
		method, path, _ := strings.Cut(rt.pattern, " ")
		mux.HandleFunc(method+" /v1"+path, rt.h)
		mux.HandleFunc(rt.pattern, deprecated(rt.h))
	}
	// The mutating admin plane lives under /v1/admin/, every route
	// behind the one token check in s.admin. The pre-consolidation
	// mounts — the /v1 paths these operations first shipped on, and
	// the bare legacy venue load/unload — stay as deprecated aliases
	// onto the same wrapped handlers, steering to the /v1/admin
	// successor.
	adminRoutes := []struct {
		pattern string
		h       http.HandlerFunc
	}{
		{"POST /venues", s.handleLoadVenue},
		{"DELETE /venues/{venue}", s.handleUnloadVenue},
		{"POST /venues/{venue}/snapshot", s.handleSnapshotVenue},
		{"GET /venues/{venue}/snapshot/file", s.handleGetSnapshotFile},
		{"PUT /venues/{venue}/snapshot/file", s.handlePutSnapshotFile},
		{"POST /venues/{venue}/drain", s.handleDrainVenue},
		{"DELETE /venues/{venue}/drain", s.handleUndrainVenue},
	}
	for _, rt := range adminRoutes {
		method, path, _ := strings.Cut(rt.pattern, " ")
		h := s.admin(rt.h)
		mux.HandleFunc(method+" /v1/admin"+path, h)
		mux.HandleFunc(method+" /v1"+path, deprecatedAdmin(h))
	}
	mux.HandleFunc("POST /venues", deprecatedAdmin(s.admin(s.handleLoadVenue)))
	mux.HandleFunc("DELETE /venues/{venue}", deprecatedAdmin(s.admin(s.handleUnloadVenue)))
	// The retraining plane is new with the /v1/admin consolidation:
	// canonical paths only, no aliases.
	mux.HandleFunc("POST /v1/admin/venues/{venue}/retrain", s.admin(s.handleRetrain))
	mux.HandleFunc("GET /v1/admin/venues/{venue}/retrain", s.admin(s.handleRetrainStatus))
	mux.HandleFunc("POST /v1/admin/venues/{venue}/feedback", s.admin(s.handleRetrainFeedback))
	// Model identity is read-only data plane: which model is this
	// venue serving with right now.
	mux.HandleFunc("GET /v1/venues/{venue}/model", s.handleVenueModel)
	// The unified query endpoint is v1-only: it is the API the
	// versioning exists for.
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	// Readiness is new with the routing tier, so it has no deprecated
	// unversioned twin; the bare path is mounted for plain probes, not
	// as a legacy alias.
	mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	// The continuous-query endpoint is v1-only like /v1/query: same
	// composable scope surface, push instead of poll (see watch.go).
	mux.HandleFunc("GET /v1/watch", s.handleWatch)
	mux.HandleFunc("GET /v1/venues/{venue}/watch", s.handleWatch)

	// Retraining hooks into the serving tier: cycles are vetoed while
	// the venue drains for migration (the frozen state is about to
	// move; a hot swap under it would void the migration's snapshot),
	// and a landed swap converges the serving caches exactly like an
	// operator reload — snapshot freshness is forgotten and standing
	// watches resync against the spliced generation. Both calls are
	// no-ops when the registry runs without a retrain policy.
	registry.SetRetrainGate(func(venue string) error {
		if _, draining := s.drainState(venue); draining {
			return fmt.Errorf("%w: venue %q", errVenueDraining, venue)
		}
		return nil
	})
	registry.SetRetrainObserver(func(d c2mn.RetrainDecision) {
		if d.Outcome != c2mn.RetrainSwapped {
			return
		}
		s.snaps.forget(d.Venue)
		s.watchHub.Invalidate(d.Venue)
		log.Printf("venue %q hot-swapped retrained model %s (CA %.3f > %.3f)",
			d.Venue, d.ModelHash, d.CandidateCA, d.IncumbentCA)
	})
	return echoRequestID(v1Envelope(mux))
}

// admin wraps a mutating admin handler behind the bearer-token check:
// the single auth chokepoint for the /v1/admin tree and its deprecated
// aliases.
func (s *server) admin(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.authorizeAdmin(w, r) {
			return
		}
		h(w, r)
	}
}

// deprecatedAdmin marks a pre-consolidation admin mount: same wrapped
// handler as its /v1/admin twin, plus RFC 8594-style headers steering
// to the consolidated successor (for both /v1 and bare legacy paths).
func deprecatedAdmin(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `</v1/admin`+strings.TrimPrefix(r.URL.Path, "/v1")+`>; rel="successor-version"`)
		h(w, r)
	}
}

// requestIDHeader correlates a request across the routing tier and
// the venue backends: the router generates an ID when the client sent
// none, msserve echoes whatever arrives, and both embed it in /v1
// error payloads.
const requestIDHeader = "X-Request-ID"

// echoRequestID reflects an inbound X-Request-ID onto the response,
// so a client (or the router) can match answers to requests across
// process boundaries.
func echoRequestID(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if id := r.Header.Get(requestIDHeader); id != "" {
			w.Header().Set(requestIDHeader, id)
		}
		h.ServeHTTP(w, r)
	})
}

// v1Envelope upgrades the mux's own error responses under /v1 — the
// text/plain 404s and auto-405s ServeMux writes for unmatched paths
// and wrong methods — to the typed JSON envelope every other /v1
// error carries. Handler-written responses pass through untouched:
// our handlers always set a non-text Content-Type before writing, so
// the text/plain sniff only ever matches the mux's (and http.Error's)
// own output. The mux's Allow header on a 405 survives, since headers
// are shared with the underlying writer.
func v1Envelope(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !isV1(r) {
			h.ServeHTTP(w, r)
			return
		}
		ew := &envelopeWriter{ResponseWriter: w, r: r}
		h.ServeHTTP(ew, r)
		ew.finish()
	})
}

// envelopeWriter intercepts a plain-text 404/405 at WriteHeader time,
// swallows its body, and lets finish rewrite it as the typed
// envelope. Everything else streams straight through.
type envelopeWriter struct {
	http.ResponseWriter
	r         *http.Request
	intercept bool
	status    int
	wrote     bool
}

func (ew *envelopeWriter) WriteHeader(status int) {
	if ew.wrote || ew.intercept {
		return
	}
	if (status == http.StatusNotFound || status == http.StatusMethodNotAllowed) &&
		strings.HasPrefix(ew.Header().Get("Content-Type"), "text/plain") {
		ew.intercept = true
		ew.status = status
		return
	}
	ew.wrote = true
	ew.ResponseWriter.WriteHeader(status)
}

func (ew *envelopeWriter) Write(b []byte) (int, error) {
	if ew.intercept {
		// Drop the plain-text body; finish writes the envelope.
		return len(b), nil
	}
	ew.wrote = true
	return ew.ResponseWriter.Write(b)
}

func (ew *envelopeWriter) finish() {
	if !ew.intercept {
		return
	}
	h := ew.Header()
	h.Del("X-Content-Type-Options")
	msg := "no route matches " + ew.r.Method + " " + ew.r.URL.Path
	if ew.status == http.StatusMethodNotAllowed {
		msg = ew.r.Method + " not allowed on " + ew.r.URL.Path
		if allow := h.Get("Allow"); allow != "" {
			msg += " (allowed: " + allow + ")"
		}
	}
	writeError(ew.ResponseWriter, ew.r, ew.status, errors.New(msg))
}

// Flush and Unwrap keep the streaming surface (/v1/watch) working
// through the wrapper: internal/notify's SSE writer resolves its
// flusher via http.NewResponseController's Unwrap chain.
func (ew *envelopeWriter) Flush() {
	if f, ok := ew.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (ew *envelopeWriter) Unwrap() http.ResponseWriter { return ew.ResponseWriter }

// handleSnapshotVenue serves the admin snapshot trigger: persist one
// venue's live state to the -snapshot-dir now (on top of the periodic
// and shutdown snapshots), e.g. ahead of a planned kill or a venue
// migration. Token-gated like the other mutating admin endpoints.
func (s *server) handleSnapshotVenue(w http.ResponseWriter, r *http.Request) {
	if s.snapshotDir == "" {
		writeError(w, r, http.StatusConflict,
			errors.New("snapshot persistence disabled: start msserve with -snapshot-dir"))
		return
	}
	id := r.PathValue("venue")
	// Sample the counters before the write: traffic landing during the
	// snapshot re-marks the venue stale, never silently fresh.
	var stats c2mn.EngineStats
	if e, err := s.registry.Engine(id); err == nil {
		stats = e.Stats()
	}
	path, err := s.registry.SnapshotVenue(id, s.snapshotDir)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, c2mn.ErrUnknownVenue) {
			status = http.StatusNotFound
		}
		writeError(w, r, status, err)
		return
	}
	s.snaps.record(id, stats)
	writeJSON(w, http.StatusOK, map[string]string{"venue": id, "status": "snapshotted", "path": path})
}

// handleGetSnapshotFile streams a venue's on-disk snapshot bytes —
// the transfer leg of a live migration. It serves whatever the
// snapshot directory holds; callers wanting the current state POST
// the snapshot trigger first. Token-gated: the snapshot is the
// venue's full serving state.
func (s *server) handleGetSnapshotFile(w http.ResponseWriter, r *http.Request) {
	if s.snapshotDir == "" {
		writeError(w, r, http.StatusConflict,
			errors.New("snapshot persistence disabled: start msserve with -snapshot-dir"))
		return
	}
	id := r.PathValue("venue")
	path := c2mn.SnapshotPath(s.snapshotDir, id)
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			writeError(w, r, http.StatusNotFound,
				fmt.Errorf("no snapshot file for venue %q (trigger POST /v1/venues/%s/snapshot first)", id, id))
			return
		}
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeContent(w, r, filepath.Base(path), fi.ModTime(), f)
}

// handlePutSnapshotFile restores an uploaded snapshot into the venue
// — the landing leg of a live migration. The venue must be loaded
// (the snapshot carries serving state, not the model) and cold; the
// snapshot format's venue/space/model-hash guards refuse a payload
// captured from any other venue identity with a typed error, so a
// misrouted upload cannot corrupt state. On success the bytes are
// also persisted to the snapshot directory (when one is configured),
// so a crash right after the restore still reboots warm.
func (s *server) handlePutSnapshotFile(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("venue")
	e, err := s.registry.Engine(id)
	if err != nil {
		writeError(w, r, http.StatusNotFound, err)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, r, http.StatusRequestEntityTooLarge,
				fmt.Errorf("snapshot exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("reading snapshot: %w", err))
		return
	}
	if err := e.RestoreSnapshot(bytes.NewReader(body)); err != nil {
		switch {
		case errors.Is(err, c2mn.ErrSnapshotMismatch), errors.Is(err, c2mn.ErrSnapshotConflict):
			writeError(w, r, http.StatusConflict, err)
		case errors.Is(err, c2mn.ErrSnapshotCorrupt), errors.Is(err, c2mn.ErrSnapshotVersion):
			writeError(w, r, http.StatusUnprocessableEntity, err)
		default:
			writeError(w, r, http.StatusInternalServerError, err)
		}
		return
	}
	if s.snapshotDir != "" {
		path := c2mn.SnapshotPath(s.snapshotDir, id)
		tmp := path + ".up"
		if err := os.WriteFile(tmp, body, 0o644); err == nil {
			if err := os.Rename(tmp, path); err != nil {
				os.Remove(tmp)
				log.Printf("persisting uploaded snapshot for %q: %v", id, err)
			}
		} else {
			log.Printf("persisting uploaded snapshot for %q: %v", id, err)
		}
	}
	s.snaps.record(id, e.Stats())
	writeJSON(w, http.StatusOK, map[string]any{"venue": id, "status": "restored", "bytes": len(body)})
}

// errVenueDraining marks feed rejections against a draining venue, so
// the typed /v1 error code distinguishes a migration pause from a
// client mistake.
var errVenueDraining = errors.New("venue is draining")

// handleDrainVenue marks a venue draining: new /feed traffic is
// rejected (503 + Retry-After without a cutover target, 307 → the
// new owner once redirect_to is set by a second call), while
// annotation and queries keep serving from the frozen state. The
// migration coordinator calls it twice: once to quiesce before the
// snapshot, once more after the restore to point stragglers at the
// new owner.
func (s *server) handleDrainVenue(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("venue")
	if _, err := s.registry.Engine(id); err != nil {
		writeError(w, r, http.StatusNotFound, err)
		return
	}
	var req struct {
		RedirectTo string `json:"redirect_to"`
	}
	if r.ContentLength != 0 {
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
		if err := dec.Decode(&req); err != nil {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
	}
	s.drainMu.Lock()
	s.draining[id] = strings.TrimSuffix(req.RedirectTo, "/")
	s.drainMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"venue": id, "status": "draining", "redirect_to": req.RedirectTo})
}

// handleUndrainVenue cancels a drain (aborted migration): the venue
// accepts /feed traffic again.
func (s *server) handleUndrainVenue(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("venue")
	s.drainMu.Lock()
	_, was := s.draining[id]
	delete(s.draining, id)
	s.drainMu.Unlock()
	if !was {
		writeError(w, r, http.StatusNotFound, fmt.Errorf("venue %q is not draining", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"venue": id, "status": "accepting"})
}

// handleReadyz is the readiness probe: 200 while the process should
// receive new traffic, 503 once the shutdown drain started (or before
// warm boot completed). Liveness (/healthz) is deliberately separate
// and never flips — a draining process is still alive.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	noStore(w)
	if s.ready.Load() {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
}

// deprecated marks a legacy unversioned route: same handler as its
// /v1 twin, plus RFC 8594-style headers steering clients to the
// successor.
func deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `</v1`+r.URL.Path+`>; rel="successor-version"`)
		h(w, r)
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	noStore(w)
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// venueID resolves the request's venue: the path segment, then the
// query parameter, then — when exactly one venue is loaded — that
// venue. The empty string with a nil error means "not specified and
// ambiguous" is impossible: an error is always returned instead.
func (s *server) venueID(r *http.Request) (string, error) {
	if v := r.PathValue("venue"); v != "" {
		return v, nil
	}
	if v := r.URL.Query().Get("venue"); v != "" {
		return v, nil
	}
	if ids := s.registry.Venues(); len(ids) == 1 {
		return ids[0], nil
	}
	return "", fmt.Errorf("venue required: pass /venues/{venue}/... or ?venue= (loaded: %s)",
		strings.Join(s.registry.Venues(), ", "))
}

// engine resolves the request's venue engine, writing the error
// response (400 for a missing venue spec, 404 for an unknown one)
// itself. The bool reports success.
func (s *server) engine(w http.ResponseWriter, r *http.Request) (*c2mn.Engine, string, bool) {
	id, err := s.venueID(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return nil, "", false
	}
	e, err := s.registry.Engine(id)
	if err != nil {
		writeError(w, r, http.StatusNotFound, err)
		return nil, "", false
	}
	return e, id, true
}

// Wire types. Records are flat {x, y, floor, t} objects; timestamps
// are seconds, as everywhere in the package.
type wireRecord struct {
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Floor int     `json:"floor"`
	T     float64 `json:"t"`
}

type sequenceRequest struct {
	ObjectID string       `json:"object_id"`
	Records  []wireRecord `json:"records"`
}

type wireSemantics struct {
	Region     int     `json:"region"`
	RegionName string  `json:"region_name,omitempty"`
	Start      float64 `json:"start"`
	End        float64 `json:"end"`
	Event      string  `json:"event"`
}

type annotateResponse struct {
	Venue     string          `json:"venue"`
	ObjectID  string          `json:"object_id"`
	Regions   []int           `json:"regions"`
	Events    []string        `json:"events"`
	Semantics []wireSemantics `json:"semantics"`
}

func (s *server) handleAnnotate(w http.ResponseWriter, r *http.Request) {
	e, venue, ok := s.engine(w, r)
	if !ok {
		return
	}
	req, ok := s.decodeSequence(w, r)
	if !ok {
		return
	}
	p := toPSequence(req)
	labels, ms, err := e.AnnotateCtx(r.Context(), &p)
	if err != nil {
		writeAnnotateError(w, r, err)
		return
	}
	resp := annotateResponse{
		Venue:     venue,
		ObjectID:  p.ObjectID,
		Regions:   make([]int, len(labels.Regions)),
		Events:    make([]string, len(labels.Events)),
		Semantics: wireSemanticsOf(e, ms),
	}
	for i, rg := range labels.Regions {
		resp.Regions[i] = int(rg)
	}
	for i, ev := range labels.Events {
		resp.Events[i] = ev.String()
	}
	writeJSON(w, http.StatusOK, resp)
}

type feedResponse struct {
	Venue              string `json:"venue"`
	Fed                int    `json:"fed"`
	CompletedSequences int    `json:"completed_sequences"`
}

func (s *server) handleFeed(w http.ResponseWriter, r *http.Request) {
	e, venue, ok := s.engine(w, r)
	if !ok {
		return
	}
	if redirect, draining := s.drainState(venue); draining {
		// Migration in progress: before cutover the state is about to
		// be snapshotted here (retry shortly), after cutover it lives
		// at the new owner (follow the redirect with the same body).
		if redirect != "" {
			w.Header().Set("Location", redirect+"/v1/venues/"+url.PathEscape(venue)+"/feed")
			writeError(w, r, http.StatusTemporaryRedirect,
				fmt.Errorf("%w: venue %q moved to %s", errVenueDraining, venue, redirect))
			return
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, r, http.StatusServiceUnavailable,
			fmt.Errorf("%w: venue %q is migrating, retry shortly", errVenueDraining, venue))
		return
	}
	req, ok := s.decodeSequence(w, r)
	if !ok {
		return
	}
	p := toPSequence(req)
	// The response uses only this call's counts — no engine-wide stats
	// scan on the ingestion hot path.
	completed, err := e.FeedAll(p.ObjectID, p.Records)
	if err != nil {
		// Partial success: valid records were ingested and may have
		// emitted sequences. Report the counts with the error so the
		// client knows not to blindly re-feed the batch.
		s.writeIngestError(w, r, err, feedResponse{Venue: venue, Fed: len(p.Records), CompletedSequences: completed})
		return
	}
	writeJSON(w, http.StatusOK, feedResponse{
		Venue:              venue,
		Fed:                len(p.Records),
		CompletedSequences: completed,
	})
}

// writeIngestError reports a partial-success ingestion failure (feed
// or flush) alongside its counts payload. A backlogged venue
// (feed-timeout exceeded waiting for an inference slot) is load
// shedding, not a client mistake: 429 + Retry-After instead of 422.
func (s *server) writeIngestError(w http.ResponseWriter, r *http.Request, err error, payload any) {
	status := http.StatusUnprocessableEntity
	if errors.Is(err, c2mn.ErrBacklog) {
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", s.retryAfterSecs)
	}
	writeErrorWith(w, r, status, err, payload)
}

// writeErrorWith writes an error next to a partial-success payload's
// fields, in the route tree's envelope style: a typed error object on
// /v1, the flat error string on legacy routes. payload must marshal
// to a JSON object without an "error" key.
func writeErrorWith(w http.ResponseWriter, r *http.Request, status int, err error, payload any) {
	body := map[string]any{}
	if buf, merr := json.Marshal(payload); merr == nil {
		// Best-effort: a payload that does not marshal still reports
		// the error below.
		json.Unmarshal(buf, &body)
	}
	if isV1(r) {
		body["error"] = wireError{
			Code: errorCode(status, err), Message: err.Error(),
			RequestID: r.Header.Get(requestIDHeader),
		}
	} else {
		body["error"] = err.Error()
	}
	writeJSON(w, status, body)
}

type flushResponse struct {
	Venues           int   `json:"venues"`
	PendingRecords   int   `json:"pending_records"`
	EmittedSequences int64 `json:"emitted_sequences"`
}

// handleFlush flushes one venue when specified, every venue otherwise.
// The response totals pending records and emitted sequences across the
// flushed venues. Flushing all venues keeps going past a failing one —
// a bad fragment in venue A must not leave venue B's streams open —
// and reports the joined errors alongside the counts.
func (s *server) handleFlush(w http.ResponseWriter, r *http.Request) {
	var ids []string
	explicit := false
	if v := r.PathValue("venue"); v != "" {
		ids, explicit = []string{v}, true
	} else if v := r.URL.Query().Get("venue"); v != "" {
		ids, explicit = []string{v}, true
	} else {
		ids = s.registry.Venues()
	}
	resp := flushResponse{}
	var errs []error
	for _, id := range ids {
		e, err := s.registry.Engine(id)
		if err != nil {
			if explicit {
				writeError(w, r, http.StatusNotFound, err)
				return
			}
			continue // unloaded between listing and flush
		}
		resp.Venues++
		if err := e.Flush(); err != nil {
			errs = append(errs, fmt.Errorf("venue %q: %w", id, err))
		}
		st := e.Stats()
		resp.PendingRecords += st.PendingRecords
		resp.EmittedSequences += st.EmittedSequences
	}
	if len(errs) > 0 {
		s.writeIngestError(w, r, errors.Join(errs...), resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// The unified query endpoint. The request embeds the library's Query
// verbatim plus cursor-style pagination: page_size bounds one page of
// the ranked list, and the opaque cursor returned with a partial page
// fetches the next one (the follow-up request carries only cursor,
// and optionally a new page_size).
type queryRequest struct {
	c2mn.Query
	PageSize int    `json:"page_size,omitempty"`
	Cursor   string `json:"cursor,omitempty"`
}

type queryResponse struct {
	c2mn.QueryResult
	Offset     int    `json:"offset,omitempty"`
	NextCursor string `json:"next_cursor,omitempty"`
}

// queryCursor is the decoded pagination cursor: the original query
// plus the resume position. It is stateless — each page re-runs the
// query — so pages concatenate to the unpaginated answer as long as
// the underlying stores are quiescent between pages.
type queryCursor struct {
	Query    c2mn.Query `json:"q"`
	PageSize int        `json:"page_size"`
	Offset   int        `json:"offset"`
}

func encodeCursor(c queryCursor) (string, error) {
	buf, err := json.Marshal(c)
	if err != nil {
		return "", err
	}
	return base64.RawURLEncoding.EncodeToString(buf), nil
}

func decodeCursor(s string) (queryCursor, error) {
	var c queryCursor
	buf, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return c, fmt.Errorf("bad cursor: %w", err)
	}
	if err := json.Unmarshal(buf, &c); err != nil {
		return c, fmt.Errorf("bad cursor: %w", err)
	}
	if c.PageSize <= 0 || c.Offset < 0 {
		return c, errors.New("bad cursor: invalid page bounds")
	}
	return c, nil
}

// paginate slices the result's ranked list to [offset, offset+size)
// and returns the next page's offset, or -1 when this page exhausts
// the list. The bounds arithmetic never computes offset+size directly
// — a forged cursor can carry offset near MaxInt, and the sum would
// wrap negative and panic the slice expression.
func paginate(res *c2mn.QueryResult, offset, size int) int {
	if res.Kind == c2mn.QueryFrequentPairs {
		n := len(res.Pairs)
		lo := min(offset, n)
		hi := lo + min(size, n-lo)
		res.Pairs = res.Pairs[lo:hi]
		if hi < n {
			return hi
		}
		return -1
	}
	n := len(res.Regions)
	lo := min(offset, n)
	hi := lo + min(size, n-lo)
	res.Regions = res.Regions[lo:hi]
	if hi < n {
		return hi
	}
	return -1
}

// storeETag renders the freshness validator of a query answer over the
// scanned venues: `"<venue>:<generation>"` for one venue, a
// venue-sorted `"a:3;b:7"` composite for cross-venue scopes. Venue IDs
// are query-escaped so an ID containing the separators cannot make two
// distinct fleet states render the same validator. The bool is false
// when a scanned venue has no sampled generation (loaded mid-request);
// such an answer goes out without a validator rather than with a
// wrong one.
func storeETag(scanned []string, gens map[string]uint64) (string, bool) {
	if len(scanned) == 0 {
		return "", false
	}
	ids := append([]string(nil), scanned...)
	sort.Strings(ids)
	var sb strings.Builder
	sb.WriteByte('"')
	for i, id := range ids {
		g, ok := gens[id]
		if !ok {
			return "", false
		}
		if i > 0 {
			sb.WriteByte(';')
		}
		sb.WriteString(url.QueryEscape(id))
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatUint(g, 10))
	}
	sb.WriteByte('"')
	return sb.String(), true
}

// etagMatches implements the If-None-Match comparison: a literal `*`
// matches anything, otherwise any listed validator may match. Weak
// validators (`W/"..."`) compare by their opaque part — the generation
// validator is exact, so weak comparison is sound for it.
func etagMatches(ifNoneMatch, etag string) bool {
	if ifNoneMatch == "" {
		return false
	}
	for _, cand := range strings.Split(ifNoneMatch, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == "*" || cand == etag {
			return true
		}
	}
	return false
}

// writeFreshness stamps the answer's validator and, when the request
// carried a matching If-None-Match, short-circuits with 304 Not
// Modified. It reports whether the response was finished here. The
// query has already executed by then — at an unchanged generation that
// execution was an LRU hit, so the 304 path stays cheap — and the
// scanned venues' revalidation counters are bumped so both cache tiers
// are observable. gens is the result's own Generations map, captured
// atomically with the answer bytes, so the ETag labels exactly the
// bytes it validates and matches the /v1/watch event id for the same
// fleet state.
func (s *server) writeFreshness(w http.ResponseWriter, r *http.Request, scanned []string, gens map[string]uint64) bool {
	etag, ok := storeETag(scanned, gens)
	if !ok {
		return false
	}
	w.Header().Set("ETag", etag)
	if !etagMatches(r.Header.Get("If-None-Match"), etag) {
		return false
	}
	for _, id := range scanned {
		if e, err := s.registry.Engine(id); err == nil {
			e.RecordQueryRevalidation()
		}
	}
	w.WriteHeader(http.StatusNotModified)
	return true
}

// handleQuery serves POST /v1/query: decode the Query (or resume a
// cursor), execute it through the registry's single entry point, and
// page the ranked list.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, r, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.PageSize < 0 {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("negative page_size %d", req.PageSize))
		return
	}
	q, pageSize, offset := req.Query, req.PageSize, 0
	if req.Cursor != "" {
		if !reflect.DeepEqual(req.Query, c2mn.Query{}) {
			writeError(w, r, http.StatusBadRequest, errors.New("cursor and query fields are mutually exclusive"))
			return
		}
		cur, err := decodeCursor(req.Cursor)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, err)
			return
		}
		q, offset = cur.Query, cur.Offset
		pageSize = cur.PageSize
		if req.PageSize > 0 {
			pageSize = req.PageSize
		}
	}
	res, err := s.registry.Query(r.Context(), q)
	if err != nil {
		writeQueryError(w, r, err)
		return
	}
	if s.writeFreshness(w, r, res.Scanned, res.Generations) {
		return
	}
	resp := queryResponse{QueryResult: res}
	if pageSize > 0 {
		resp.Offset = offset
		if next := paginate(&resp.QueryResult, offset, pageSize); next >= 0 {
			cursor, err := encodeCursor(queryCursor{Query: q, PageSize: pageSize, Offset: next})
			if err != nil {
				writeError(w, r, http.StatusInternalServerError, err)
				return
			}
			resp.NextCursor = cursor
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeQueryError maps VenueRegistry.Query failures onto statuses.
func writeQueryError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, c2mn.ErrInvalidQuery):
		writeError(w, r, http.StatusBadRequest, err)
	case errors.Is(err, c2mn.ErrUnknownVenue):
		writeError(w, r, http.StatusNotFound, err)
	case errors.Is(err, c2mn.ErrCanceled):
		writeError(w, r, http.StatusServiceUnavailable, err)
	default:
		writeError(w, r, http.StatusUnprocessableEntity, err)
	}
}

type regionCountResponse struct {
	Region     int    `json:"region"`
	RegionName string `json:"region_name,omitempty"`
	Count      int    `json:"count"`
}

func (s *server) handlePopularRegions(w http.ResponseWriter, r *http.Request) {
	res, space, ok := s.runTopKSugar(w, r, c2mn.QueryPopularRegions)
	if !ok {
		return
	}
	out := make([]regionCountResponse, len(res.Regions))
	for i, rc := range res.Regions {
		out[i] = regionCountResponse{
			Region:     int(rc.Region),
			RegionName: regionName(space, rc.Region),
			Count:      rc.Count,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

type pairCountResponse struct {
	A     int    `json:"a"`
	AName string `json:"a_name,omitempty"`
	B     int    `json:"b"`
	BName string `json:"b_name,omitempty"`
	Count int    `json:"count"`
}

func (s *server) handleFrequentPairs(w http.ResponseWriter, r *http.Request) {
	res, space, ok := s.runTopKSugar(w, r, c2mn.QueryFrequentPairs)
	if !ok {
		return
	}
	out := make([]pairCountResponse, len(res.Pairs))
	for i, pc := range res.Pairs {
		out[i] = pairCountResponse{
			A: int(pc.A), AName: regionName(space, pc.A),
			B: int(pc.B), BName: regionName(space, pc.B),
			Count: pc.Count,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// runTopKSugar executes a GET query sugar route through the unified
// query path, writing the error response itself on failure. The
// returned Space resolves region names when exactly one venue was
// scanned; it is nil for wider scans, whose merged rows have no
// single naming venue.
func (s *server) runTopKSugar(w http.ResponseWriter, r *http.Request, kind c2mn.QueryKind) (c2mn.QueryResult, *c2mn.Space, bool) {
	scope, venues, err := s.sugarScope(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return c2mn.QueryResult{}, nil, false
	}
	regions, win, k, err := sugarParams(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return c2mn.QueryResult{}, nil, false
	}
	res, err := s.registry.Query(r.Context(), c2mn.Query{
		Kind: kind, Scope: scope, Venues: venues,
		Regions: regions, Window: win, K: k,
	})
	if err != nil {
		writeQueryError(w, r, err)
		return c2mn.QueryResult{}, nil, false
	}
	if s.writeFreshness(w, r, res.Scanned, res.Generations) {
		return c2mn.QueryResult{}, nil, false
	}
	var space *c2mn.Space
	if len(res.Scanned) == 1 {
		// One scanned venue — whatever scope phrased it — names the rows.
		if e, err := s.registry.Engine(res.Scanned[0]); err == nil {
			space = e.Space()
		}
	}
	return res, space, true
}

// sugarScope resolves a query GET's scope: the cross-venue forms
// ?venues=a,b and ?scope=fleet first (they have no single-venue
// equivalent), then the shared single-venue resolution chain of
// venueID — path segment, ?venue=, sole loaded venue.
func (s *server) sugarScope(r *http.Request) (c2mn.QueryScope, []string, error) {
	if r.PathValue("venue") == "" && r.URL.Query().Get("venue") == "" {
		vals := r.URL.Query()
		if v := vals.Get("venues"); v != "" {
			return c2mn.ScopeVenues, strings.Split(v, ","), nil
		}
		switch sc := vals.Get("scope"); sc {
		case "fleet":
			return c2mn.ScopeFleet, nil, nil
		case "":
		default:
			return "", nil, fmt.Errorf("bad scope %q (only \"fleet\" may be given without venues)", sc)
		}
	}
	id, err := s.venueID(r)
	if err != nil {
		return "", nil, fmt.Errorf("%w — or pass ?venues=a,b / ?scope=fleet for a cross-venue query", err)
	}
	return c2mn.ScopeVenue, []string{id}, nil
}

// statsResponse breaks the pipeline counters down per venue and sums
// them for the fleet view.
type statsResponse struct {
	Venues map[string]c2mn.EngineStats `json:"venues"`
	Totals c2mn.EngineStats            `json:"totals"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	noStore(w)
	per := s.registry.Stats()
	resp := statsResponse{Venues: per}
	for _, st := range per {
		resp.Totals.FedRecords += st.FedRecords
		resp.Totals.PendingObjects += st.PendingObjects
		resp.Totals.PendingRecords += st.PendingRecords
		resp.Totals.EmittedSequences += st.EmittedSequences
		resp.Totals.StoredSequences += st.StoredSequences
		resp.Totals.StoredSemantics += st.StoredSemantics
		resp.Totals.QueryCacheHits += st.QueryCacheHits
		resp.Totals.QueryCacheMisses += st.QueryCacheMisses
		resp.Totals.QueryCacheRevalidations += st.QueryCacheRevalidations
		resp.Totals.StoreNotifications += st.StoreNotifications
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleVenueStats(w http.ResponseWriter, r *http.Request) {
	e, _, ok := s.engine(w, r)
	if !ok {
		return
	}
	noStore(w)
	writeJSON(w, http.StatusOK, e.Stats())
}

// noStore marks an introspection response uncacheable. Operational
// state (stats, venue listings, health) must never be served stale by
// an intermediary; only /v1/query is deliberately cache-validated,
// through its generation ETag.
func noStore(w http.ResponseWriter) {
	w.Header().Set("Cache-Control", "no-store")
}

// venueInfo is one row of the /venues listing. The snapshot columns
// report durability freshness without touching the disk or forcing a
// snapshot: last_snapshot_unix is when the venue's state was last
// persisted (absent if never in this process's lifetime), and
// snapshot_stale is true while the pipeline counters have moved since
// — i.e. a crash right now would lose something.
type venueInfo struct {
	Venue   string           `json:"venue"`
	Regions int              `json:"regions"`
	Stats   c2mn.EngineStats `json:"stats"`
	// StoreGeneration is the venue's query-store content generation —
	// the value behind the ETag validator on the query surface. A
	// client holding a response tagged with this generation knows it is
	// still current.
	StoreGeneration  uint64 `json:"store_generation"`
	LastSnapshotUnix int64  `json:"last_snapshot_unix,omitempty"`
	SnapshotStale    bool   `json:"snapshot_stale"`
	Draining         bool   `json:"draining,omitempty"`
	// Model identity: which model the venue serves with right now.
	// The hash changes when an operator reload or a retraining hot
	// swap rotates the model; swap_count/retrained_at_unix attribute
	// rotations to the retraining loop specifically.
	ModelHash       string `json:"model_hash"`
	ModelVersion    int    `json:"model_version"`
	SwapCount       int64  `json:"swap_count"`
	RetrainedAtUnix int64  `json:"retrained_at_unix,omitempty"`
}

func (s *server) handleListVenues(w http.ResponseWriter, r *http.Request) {
	noStore(w)
	ids := s.registry.Venues()
	out := make([]venueInfo, 0, len(ids))
	for _, id := range ids {
		e, err := s.registry.Engine(id)
		if err != nil {
			continue // unloaded between listing and lookup
		}
		stats := e.Stats()
		info := venueInfo{
			Venue:           id,
			Regions:         len(e.Space().Regions()),
			Stats:           stats,
			StoreGeneration: e.StoreGeneration(),
			SnapshotStale:   true, // until a recorded snapshot proves otherwise
		}
		if rec, ok := s.snaps.get(id); ok {
			info.LastSnapshotUnix = rec.unix
			info.SnapshotStale = pipelineFingerprint(rec.stats) != pipelineFingerprint(stats)
		}
		if mi, err := s.registry.VenueModel(id); err == nil {
			info.ModelHash = mi.ModelHash
			info.ModelVersion = mi.ModelVersion
			info.SwapCount = mi.SwapCount
			info.RetrainedAtUnix = mi.RetrainedAtUnix
		}
		_, info.Draining = s.drainState(id)
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Venue < out[j].Venue })
	writeJSON(w, http.StatusOK, map[string]any{"venues": out})
}

// loadVenueRequest is the admin body for POST /venues: server-side
// file paths of a space and a model saved with Annotator.Save. Loading
// an already-loaded venue ID hot-reloads it.
type loadVenueRequest struct {
	Venue string `json:"venue"`
	Space string `json:"space"`
	Model string `json:"model"`
}

// authorizeAdmin enforces the admin bearer token on the mutating
// admin endpoints. It reports whether the request may proceed,
// writing the 401 itself otherwise.
func (s *server) authorizeAdmin(w http.ResponseWriter, r *http.Request) bool {
	if s.adminToken == "" {
		return true
	}
	token, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	if !ok || subtle.ConstantTimeCompare([]byte(token), []byte(s.adminToken)) != 1 {
		w.Header().Set("WWW-Authenticate", "Bearer")
		writeError(w, r, http.StatusUnauthorized, errors.New("admin endpoint requires a valid bearer token"))
		return false
	}
	return true
}

func (s *server) handleLoadVenue(w http.ResponseWriter, r *http.Request) {
	var req loadVenueRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err := dec.Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Venue == "" || req.Space == "" || req.Model == "" {
		writeError(w, r, http.StatusBadRequest, errors.New("venue, space and model are required"))
		return
	}
	if err := loadVenueFiles(s.registry, req.Venue, req.Space, req.Model); err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, c2mn.ErrTooManyVenues) {
			status = http.StatusConflict
		}
		writeError(w, r, status, err)
		return
	}
	// A (re)loaded venue starts with a fresh engine: any previous
	// drain state or snapshot freshness no longer describes it, and
	// standing watches cannot patch their answers across the swap —
	// they resync.
	s.drainMu.Lock()
	delete(s.draining, req.Venue)
	s.drainMu.Unlock()
	s.snaps.forget(req.Venue)
	s.watchHub.Invalidate(req.Venue)
	writeJSON(w, http.StatusCreated, map[string]string{"venue": req.Venue, "status": "loaded"})
}

func (s *server) handleUnloadVenue(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("venue")
	if err := s.registry.Unload(id); err != nil {
		writeError(w, r, http.StatusNotFound, err)
		return
	}
	// The drain state and snapshot bookkeeping belong to the unloaded
	// engine; a later reload of the same ID starts clean.
	s.drainMu.Lock()
	delete(s.draining, id)
	s.drainMu.Unlock()
	s.snaps.forget(id)
	// Standing watches on the venue re-execute, find it gone, and close
	// with a goodbye — the client's signal to re-resolve ownership.
	s.watchHub.Invalidate(id)
	writeJSON(w, http.StatusOK, map[string]string{"venue": id, "status": "unloaded"})
}

// sugarParams parses a query GET's k (default: the library default),
// start/end (default: all time) and regions (default: every region of
// each scanned venue — applied inside the query path).
func sugarParams(r *http.Request) ([]c2mn.RegionID, *c2mn.Window, int, error) {
	vals := r.URL.Query()
	k := 0
	if v := vals.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return nil, nil, 0, fmt.Errorf("bad k %q", v)
		}
		k = n
	}
	var win *c2mn.Window
	if vals.Get("start") != "" || vals.Get("end") != "" {
		// A single given bound leaves the other at all-of-time, matching
		// the nil-window default: ?end= alone is a pure upper bound.
		win = &c2mn.Window{Start: -math.MaxFloat64, End: math.MaxFloat64}
		if v := vals.Get("start"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || math.IsNaN(f) {
				return nil, nil, 0, fmt.Errorf("bad start %q", v)
			}
			win.Start = f
		}
		if v := vals.Get("end"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || math.IsNaN(f) {
				return nil, nil, 0, fmt.Errorf("bad end %q", v)
			}
			win.End = f
		}
	}
	var q []c2mn.RegionID
	if v := vals.Get("regions"); v != "" {
		for _, part := range strings.Split(v, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, nil, 0, fmt.Errorf("bad region %q", part)
			}
			q = append(q, c2mn.RegionID(n))
		}
	}
	return q, win, k, nil
}

func regionName(sp *c2mn.Space, id c2mn.RegionID) string {
	if sp == nil || id == c2mn.NoRegion {
		return ""
	}
	return sp.Region(id).Name
}

func wireSemanticsOf(e *c2mn.Engine, ms c2mn.MSSequence) []wireSemantics {
	out := make([]wireSemantics, len(ms.Semantics))
	for i, m := range ms.Semantics {
		out[i] = wireSemantics{
			Region:     int(m.Region),
			RegionName: regionName(e.Space(), m.Region),
			Start:      m.Start,
			End:        m.End,
			Event:      m.Event.String(),
		}
	}
	return out
}

func (s *server) decodeSequence(w http.ResponseWriter, r *http.Request) (sequenceRequest, bool) {
	var req sequenceRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, r, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return req, false
		}
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return req, false
	}
	if req.ObjectID == "" {
		writeError(w, r, http.StatusBadRequest, errors.New("object_id is required"))
		return req, false
	}
	return req, true
}

func toPSequence(req sequenceRequest) c2mn.PSequence {
	p := c2mn.PSequence{ObjectID: req.ObjectID, Records: make([]c2mn.Record, len(req.Records))}
	for i, rec := range req.Records {
		p.Records[i] = c2mn.Record{Loc: c2mn.Loc(rec.X, rec.Y, rec.Floor), T: rec.T}
	}
	return p
}

// writeAnnotateError maps the typed annotation errors to statuses:
// client mistakes (empty or invalid sequences) are 4xx, cancellation —
// normally the client having gone away — is 499-style.
func writeAnnotateError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, c2mn.ErrEmptySequence):
		writeError(w, r, http.StatusBadRequest, err)
	case errors.Is(err, c2mn.ErrCanceled):
		writeError(w, r, http.StatusServiceUnavailable, err)
	case errors.Is(err, c2mn.ErrNoModel):
		writeError(w, r, http.StatusInternalServerError, err)
	default:
		writeError(w, r, http.StatusUnprocessableEntity, err)
	}
}

// wireError is the typed /v1 error payload. RequestID reflects the
// request's X-Request-ID (when one was sent, e.g. by the router), so
// an error observed by the client is correlatable with the backend's
// logs and the router's.
type wireError struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

// isV1 reports whether the request came in through the versioned
// route tree (which carries typed error payloads).
func isV1(r *http.Request) bool { return strings.HasPrefix(r.URL.Path, "/v1/") }

// errorCode derives the stable machine-readable code of a /v1 error:
// the library's sentinel when one matches, a status-derived fallback
// otherwise.
func errorCode(status int, err error) string {
	switch {
	case errors.Is(err, c2mn.ErrUnknownVenue):
		return "unknown_venue"
	case errors.Is(err, c2mn.ErrInvalidQuery):
		return "invalid_query"
	case errors.Is(err, c2mn.ErrBacklog):
		return "backlog"
	case errors.Is(err, c2mn.ErrCanceled):
		return "canceled"
	case errors.Is(err, c2mn.ErrTooManyVenues):
		return "too_many_venues"
	case errors.Is(err, c2mn.ErrEmptySequence):
		return "empty_sequence"
	case errors.Is(err, c2mn.ErrModelVersion):
		return "model_version"
	case errors.Is(err, c2mn.ErrSnapshotVersion):
		return "snapshot_version"
	case errors.Is(err, c2mn.ErrSnapshotMismatch):
		return "snapshot_mismatch"
	case errors.Is(err, c2mn.ErrSnapshotConflict):
		return "snapshot_conflict"
	case errors.Is(err, c2mn.ErrSnapshotCorrupt):
		return "snapshot_corrupt"
	case errors.Is(err, errVenueDraining):
		return "venue_draining"
	case errors.Is(err, c2mn.ErrRetrainDisabled):
		return "retrain_disabled"
	case errors.Is(err, c2mn.ErrRetrainBusy):
		return "retrain_busy"
	case errors.Is(err, c2mn.ErrRetrainConflict):
		return "retrain_conflict"
	case errors.Is(err, c2mn.ErrRetrainSamples):
		return "retrain_samples"
	}
	switch status {
	case http.StatusBadRequest:
		return "invalid_argument"
	case http.StatusUnauthorized:
		return "unauthorized"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusConflict:
		return "conflict"
	case http.StatusRequestEntityTooLarge:
		return "body_too_large"
	case http.StatusTooManyRequests:
		return "backlog"
	case http.StatusServiceUnavailable:
		return "unavailable"
	}
	if status >= http.StatusInternalServerError {
		return "internal"
	}
	return "unprocessable"
}

// writeError emits the error envelope: /v1 routes get the typed
// {"error": {"code", "message"}} payload, legacy unversioned routes
// keep the pre-versioning flat {"error": "..."} string.
func writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	if isV1(r) {
		writeJSON(w, status, map[string]wireError{"error": {
			Code: errorCode(status, err), Message: err.Error(),
			RequestID: r.Header.Get(requestIDHeader),
		}})
		return
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
