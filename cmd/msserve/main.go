// Command msserve exposes trained C2MN annotation engines over HTTP.
// It serves one or many venues — each an independently loaded
// (space, model) pair — and routes batch annotation, record-by-record
// streaming ingestion with online η-gap segmentation, and live top-k
// queries by venue.
//
// Usage:
//
//	msserve -space mall.json -model model.json -addr :8080
//	msserve -venue north=mall-n.json,model-n.json \
//	        -venue south=mall-s.json,model-s.json -addr :8080
//
// Endpoints (JSON over HTTP). The canonical surface is versioned
// under /v1/; every route below is mounted there. Data-plane
// endpoints take the venue as a path segment (/v1/venues/{venue}/...)
// or a ?venue= parameter on the bare path; with exactly one venue
// loaded the parameter may be omitted.
//
//	POST   /v1/query                         unified query: JSON body = c2mn.Query
//	                                         (kind, scope venue|venues|fleet, venues,
//	                                         regions, window, k, per_venue) + optional
//	                                         page_size / cursor pagination fields
//	POST   /v1/annotate                      {"object_id", "records": [{"x","y","floor","t"}]}
//	POST   /v1/feed                          same body; records join the object's stream
//	POST   /v1/flush                         complete open stream fragments (?venue=, default all)
//	GET    /v1/query/popular-regions         ?k=5&start=0&end=3600&regions=1,2,3
//	                                         (+ ?scope=fleet or ?venues=a,b for cross-venue)
//	GET    /v1/query/frequent-pairs          same parameters
//	POST   /v1/venues/{venue}/annotate       path-routed equivalents of the above
//	POST   /v1/venues/{venue}/feed
//	POST   /v1/venues/{venue}/flush
//	GET    /v1/venues/{venue}/query/popular-regions
//	GET    /v1/venues/{venue}/query/frequent-pairs
//	GET    /v1/venues/{venue}/stats          one venue's pipeline counters
//	GET    /v1/venues                        list loaded venues with stats
//	POST   /v1/venues                        {"venue","space","model"}: (re)load from server-side paths
//	DELETE /v1/venues/{venue}                unload a venue
//	POST   /v1/venues/{venue}/snapshot       persist the venue's live state to -snapshot-dir now
//	GET    /v1/stats                         per-venue counters + totals
//	GET    /v1/healthz                       liveness probe
//
// /v1 errors are typed: {"error": {"code": "unknown_venue", ...}}.
// The unversioned paths from earlier releases stay mounted as
// deprecated aliases onto the same handlers — identical behaviour and
// flat {"error": "..."} payloads, plus Deprecation/Link headers
// pointing at the /v1 successor.
//
// POST /venues and DELETE /venues/{venue} are destructive admin
// operations (they replace or discard a venue's live state and read
// server-side files); gate them with -admin-token (or the
// MSSERVE_ADMIN_TOKEN environment variable), which requires
// "Authorization: Bearer <token>" on those endpoints. Leave it empty
// only behind an authenticating proxy.
//
// With -budget bounding fleet-wide inference and -feed-timeout set,
// /feed sheds load instead of queueing without bound: a completed
// fragment that cannot get an inference slot in time fails with
// 429 + Retry-After (error code "backlog").
//
// With -snapshot-dir set, venue state is durable across restarts: on
// boot every loaded venue with a snapshot file resumes its sliding
// windows (live top-k store, open stream fragments, pipeline counters)
// instead of starting cold; snapshots are written on graceful
// shutdown, on the admin trigger above, and — with -snapshot-interval
// — periodically in the background (jittered, skipping venues whose
// pipelines have not advanced). Snapshot files are written atomically
// (fsync + rename), so a crash mid-write never leaves a torn file; a
// snapshot that does not match the venue's current space, model or
// preprocessing configuration is refused at restore and the venue
// starts cold.
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight requests for up to -drain before exiting.
package main

import (
	"context"
	"crypto/subtle"
	"encoding/base64"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"c2mn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("msserve: ")

	addr := flag.String("addr", ":8080", "listen address")
	spacePath := flag.String("space", "", "venue JSON path (single-venue form; venue ID \"default\")")
	modelPath := flag.String("model", "", "trained model path (single-venue form)")
	var venueSpecs []string
	flag.Func("venue", "venue spec id=space.json,model.json (repeatable)", func(v string) error {
		venueSpecs = append(venueSpecs, v)
		return nil
	})
	eta := flag.Float64("eta", c2mn.DefaultEta, "stream split gap η in seconds")
	psi := flag.Float64("psi", c2mn.DefaultPsi, "minimum fragment duration ψ in seconds")
	workers := flag.Int("workers", 0, "per-venue batch annotation workers (0 = GOMAXPROCS)")
	budget := flag.Int("budget", 0, "total concurrent annotations across all venues (0 = unbounded)")
	maxVenues := flag.Int("max-venues", 0, "maximum loaded venues (0 = unlimited)")
	window := flag.Int("window", 0, "windowed inference chunk size (0 = whole-sequence)")
	overlap := flag.Int("overlap", 0, "windowed inference overlap (0 = default 32, -1 = none)")
	retention := flag.Float64("retention", 0, "live store retention in seconds of stream time (0 = keep all)")
	maxBody := flag.Int64("max-body", defaultMaxBody, "maximum request body size in bytes")
	maxSweeps := flag.Int("max-sweeps", 0, "ICM sweep bound per sequence (0 = default 20)")
	annealSweeps := flag.Int("anneal-sweeps", 0, "annealed-restart Gibbs sweeps (0 = off)")
	seed := flag.Int64("seed", 0, "annealing randomness seed")
	feedTimeout := flag.Duration("feed-timeout", 0,
		"bound on a fed fragment's wait for a -budget inference slot; exceeded waits fail with 429 (0 = wait forever)")
	adminToken := flag.String("admin-token", os.Getenv("MSSERVE_ADMIN_TOKEN"),
		"bearer token required on venue load/unload admin endpoints (empty = open)")
	drain := flag.Duration("drain", 5*time.Second, "graceful shutdown drain timeout")
	snapshotDir := flag.String("snapshot-dir", "",
		"directory for venue snapshots: restored on boot (warm restart), written on shutdown and on the admin trigger (empty = no persistence)")
	snapshotInterval := flag.Duration("snapshot-interval", 0,
		"background snapshot period per venue; unchanged venues are skipped (0 = snapshot only on shutdown/trigger; requires -snapshot-dir)")
	flag.Parse()

	if *maxBody <= 0 {
		log.Fatalf("-max-body must be positive, got %d", *maxBody)
	}
	type venueLoad struct{ id, space, model string }
	var loads []venueLoad
	for _, spec := range venueSpecs {
		id, spacePath, modelPath, err := parseVenueSpec(spec)
		if err != nil {
			log.Fatal(err)
		}
		loads = append(loads, venueLoad{id, spacePath, modelPath})
	}
	if *spacePath != "" || *modelPath != "" {
		if *spacePath == "" || *modelPath == "" {
			log.Fatal("-space and -model must be given together")
		}
		// Appended directly, not via the spec syntax, so paths containing
		// '=' or ',' survive.
		loads = append(loads, venueLoad{"default", *spacePath, *modelPath})
	}
	if len(loads) == 0 {
		log.Fatal("no venues: pass -space/-model or at least one -venue id=space.json,model.json")
	}

	infer := c2mn.AnnotateOptions{MaxSweeps: *maxSweeps, AnnealSweeps: *annealSweeps, Seed: *seed}
	registry, err := c2mn.NewVenueRegistry(
		c2mn.WithVenueDefaults(
			c2mn.WithPreprocess(*eta, *psi),
			c2mn.WithWorkers(*workers),
			c2mn.WithWindowing(*window, *overlap),
			c2mn.WithRetention(*retention),
			c2mn.WithInferOptions(infer),
			c2mn.WithFeedQueueTimeout(*feedTimeout),
		),
		c2mn.WithVenueBudget(*budget),
		c2mn.WithMaxVenues(*maxVenues),
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range loads {
		if err := loadVenueFiles(registry, l.id, l.space, l.model); err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded venue %q (space %s, model %s)", l.id, l.space, l.model)
	}

	if *snapshotInterval > 0 && *snapshotDir == "" {
		log.Fatal("-snapshot-interval requires -snapshot-dir")
	}
	if *snapshotDir != "" {
		if err := os.MkdirAll(*snapshotDir, 0o755); err != nil {
			log.Fatal(err)
		}
		// Warm start: venues with a snapshot resume their sliding
		// windows; a bad snapshot costs that venue its warmth, not the
		// whole boot.
		restored, err := registry.RestoreAll(*snapshotDir)
		if err != nil {
			log.Printf("warm start: %v (affected venues start cold)", err)
		}
		if len(restored) > 0 {
			log.Printf("warm start: restored %d venue(s): %s", len(restored), strings.Join(restored, ", "))
		}
	}

	srv := &http.Server{
		Handler:           newServer(registry, *maxBody, *adminToken, withFeedRetryAfter(*feedTimeout), withSnapshotDir(*snapshotDir)),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *snapshotDir != "" && *snapshotInterval > 0 {
		go snapshotLoop(ctx, registry, *snapshotDir, *snapshotInterval)
	}
	log.Printf("serving %d venue(s) on %s", registry.Len(), ln.Addr())
	if err := serve(ctx, srv, ln, *drain); err != nil {
		log.Fatal(err)
	}
	if *snapshotDir != "" {
		// Snapshot-on-drain: capture every venue — open fragments
		// included — after in-flight requests finished, so the next boot
		// restarts warm. Written atomically (fsync + rename); a SIGKILL
		// mid-write leaves the previous snapshots intact.
		if paths, err := registry.SnapshotAll(*snapshotDir); err != nil {
			log.Printf("final snapshot: %v", err)
		} else {
			log.Printf("snapshotted %d venue(s) to %s", len(paths), *snapshotDir)
		}
	}
	log.Print("drained, bye")
}

// snapshotLoop writes periodic background snapshots: each round,
// jittered around the configured interval so fleets sharing a disk do
// not snapshot in lockstep, persists the venues whose pipelines
// advanced since their last snapshot. The change check keeps the loop
// budget-aware — an idle venue costs nothing, and venues are written
// one at a time so snapshot IO never bursts above a single shard's
// serialisation.
func snapshotLoop(ctx context.Context, registry *c2mn.VenueRegistry, dir string, interval time.Duration) {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	last := map[string]c2mn.EngineStats{}
	for {
		// Jitter each round by ±10% of the interval.
		d := interval + time.Duration((rng.Float64()-0.5)*0.2*float64(interval))
		select {
		case <-ctx.Done():
			return
		case <-time.After(d):
		}
		if _, err := snapshotRound(registry, dir, last); err != nil {
			log.Printf("background snapshot: %v", err)
		}
	}
}

// snapshotRound snapshots every venue whose counters moved since the
// stats recorded in last, updates last for the written venues, and
// returns their IDs. Unloaded venues are dropped from last.
func snapshotRound(registry *c2mn.VenueRegistry, dir string, last map[string]c2mn.EngineStats) ([]string, error) {
	stats := registry.Stats()
	for id := range last {
		if _, ok := stats[id]; !ok {
			delete(last, id)
		}
	}
	ids := make([]string, 0, len(stats))
	for id := range stats {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var written []string
	var errs []error
	for _, id := range ids {
		if prev, ok := last[id]; ok && prev == stats[id] {
			continue // unchanged since its last snapshot
		}
		if _, err := registry.SnapshotVenue(id, dir); err != nil {
			if errors.Is(err, c2mn.ErrUnknownVenue) {
				continue // unloaded between listing and snapshot
			}
			errs = append(errs, err)
			continue
		}
		// Record the pre-snapshot sample: traffic landing during the
		// write re-marks the venue changed for the next round.
		last[id] = stats[id]
		written = append(written, id)
	}
	return written, errors.Join(errs...)
}

// serve runs srv on ln until ctx is canceled, then shuts down
// gracefully: the listener closes immediately, in-flight requests get
// up to drain to complete, and serve returns once the server has
// fully stopped. A nil return means a clean exit (either a drained
// shutdown or the listener closing normally).
func serve(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// Drain timeout exceeded: force-close lingering connections.
		srv.Close()
		<-errc
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// parseVenueSpec splits "id=space.json,model.json".
func parseVenueSpec(spec string) (id, spacePath, modelPath string, err error) {
	id, paths, ok := strings.Cut(spec, "=")
	if !ok || id == "" {
		return "", "", "", fmt.Errorf("bad -venue %q: want id=space.json,model.json", spec)
	}
	spacePath, modelPath, ok = strings.Cut(paths, ",")
	if !ok || spacePath == "" || modelPath == "" {
		return "", "", "", fmt.Errorf("bad -venue %q: want id=space.json,model.json", spec)
	}
	return id, spacePath, modelPath, nil
}

// loadVenueFiles loads a (space, model) pair from disk into the
// registry under the venue ID, replacing any engine already there.
func loadVenueFiles(registry *c2mn.VenueRegistry, id, spacePath, modelPath string) error {
	sf, err := os.Open(spacePath)
	if err != nil {
		return err
	}
	defer sf.Close()
	space, err := c2mn.ReadSpace(sf)
	if err != nil {
		return fmt.Errorf("venue %q: reading space: %w", id, err)
	}
	mf, err := os.Open(modelPath)
	if err != nil {
		return err
	}
	defer mf.Close()
	if _, err := registry.Load(id, space, mf); err != nil {
		return err
	}
	return nil
}

// defaultMaxBody caps request bodies at 32 MiB unless -max-body says
// otherwise.
const defaultMaxBody = 32 << 20

// server handles the HTTP surface over a venue registry.
type server struct {
	registry       *c2mn.VenueRegistry
	maxBody        int64
	adminToken     string
	retryAfterSecs string // Retry-After hint on 429 backlog responses
	snapshotDir    string // venue snapshot directory ("" = persistence disabled)
}

// A serverOption tunes the handler beyond the required arguments.
type serverOption func(*server)

// withFeedRetryAfter derives the Retry-After hint on 429 backlog
// responses from the -feed-timeout bound: a client backing off for at
// least the queue-wait bound gives the backlog one full drain window.
func withFeedRetryAfter(d time.Duration) serverOption {
	return func(s *server) {
		if secs := int(math.Ceil(d.Seconds())); secs > 1 {
			s.retryAfterSecs = strconv.Itoa(secs)
		}
	}
}

// withSnapshotDir enables the admin snapshot trigger, writing venue
// snapshots into dir. The empty default leaves the endpoint mounted
// but answering 409: persistence is off.
func withSnapshotDir(dir string) serverOption {
	return func(s *server) { s.snapshotDir = dir }
}

// newServer builds the route table: the canonical versioned surface
// under /v1/ plus the pre-versioning unversioned paths, kept as
// deprecated aliases onto the same handlers. maxBody caps every
// request body. A non-empty adminToken gates the mutating admin
// endpoints (venue load/unload) behind `Authorization: Bearer
// <token>`; empty leaves them open, for deployments fronted by their
// own auth.
func newServer(registry *c2mn.VenueRegistry, maxBody int64, adminToken string, opts ...serverOption) http.Handler {
	s := &server{registry: registry, maxBody: maxBody, adminToken: adminToken, retryAfterSecs: "1"}
	for _, opt := range opts {
		opt(s)
	}
	mux := http.NewServeMux()
	routes := []struct {
		pattern string
		h       http.HandlerFunc
	}{
		// Bare data-plane paths: venue from ?venue=, or the sole venue;
		// the query GETs also accept ?venues=a,b and ?scope=fleet.
		{"POST /annotate", s.handleAnnotate},
		{"POST /feed", s.handleFeed},
		{"POST /flush", s.handleFlush},
		{"GET /query/popular-regions", s.handlePopularRegions},
		{"GET /query/frequent-pairs", s.handleFrequentPairs},
		// Venue-scoped equivalents with the venue as a path segment.
		{"POST /venues/{venue}/annotate", s.handleAnnotate},
		{"POST /venues/{venue}/feed", s.handleFeed},
		{"POST /venues/{venue}/flush", s.handleFlush},
		{"GET /venues/{venue}/query/popular-regions", s.handlePopularRegions},
		{"GET /venues/{venue}/query/frequent-pairs", s.handleFrequentPairs},
		{"GET /venues/{venue}/stats", s.handleVenueStats},
		// Admin plane.
		{"GET /venues", s.handleListVenues},
		{"POST /venues", s.handleLoadVenue},
		{"DELETE /venues/{venue}", s.handleUnloadVenue},
		{"GET /stats", s.handleStats},
		{"GET /healthz", s.handleHealthz},
	}
	for _, rt := range routes {
		method, path, _ := strings.Cut(rt.pattern, " ")
		mux.HandleFunc(method+" /v1"+path, rt.h)
		mux.HandleFunc(rt.pattern, deprecated(rt.h))
	}
	// The unified query endpoint is v1-only: it is the API the
	// versioning exists for. The snapshot trigger is v1-only too: it
	// postdates the unversioned surface, so no legacy alias exists.
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/venues/{venue}/snapshot", s.handleSnapshotVenue)
	return mux
}

// handleSnapshotVenue serves the admin snapshot trigger: persist one
// venue's live state to the -snapshot-dir now (on top of the periodic
// and shutdown snapshots), e.g. ahead of a planned kill or a venue
// migration. Token-gated like the other mutating admin endpoints.
func (s *server) handleSnapshotVenue(w http.ResponseWriter, r *http.Request) {
	if !s.authorizeAdmin(w, r) {
		return
	}
	if s.snapshotDir == "" {
		writeError(w, r, http.StatusConflict,
			errors.New("snapshot persistence disabled: start msserve with -snapshot-dir"))
		return
	}
	id := r.PathValue("venue")
	path, err := s.registry.SnapshotVenue(id, s.snapshotDir)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, c2mn.ErrUnknownVenue) {
			status = http.StatusNotFound
		}
		writeError(w, r, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"venue": id, "status": "snapshotted", "path": path})
}

// deprecated marks a legacy unversioned route: same handler as its
// /v1 twin, plus RFC 8594-style headers steering clients to the
// successor.
func deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `</v1`+r.URL.Path+`>; rel="successor-version"`)
		h(w, r)
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// venueID resolves the request's venue: the path segment, then the
// query parameter, then — when exactly one venue is loaded — that
// venue. The empty string with a nil error means "not specified and
// ambiguous" is impossible: an error is always returned instead.
func (s *server) venueID(r *http.Request) (string, error) {
	if v := r.PathValue("venue"); v != "" {
		return v, nil
	}
	if v := r.URL.Query().Get("venue"); v != "" {
		return v, nil
	}
	if ids := s.registry.Venues(); len(ids) == 1 {
		return ids[0], nil
	}
	return "", fmt.Errorf("venue required: pass /venues/{venue}/... or ?venue= (loaded: %s)",
		strings.Join(s.registry.Venues(), ", "))
}

// engine resolves the request's venue engine, writing the error
// response (400 for a missing venue spec, 404 for an unknown one)
// itself. The bool reports success.
func (s *server) engine(w http.ResponseWriter, r *http.Request) (*c2mn.Engine, string, bool) {
	id, err := s.venueID(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return nil, "", false
	}
	e, err := s.registry.Engine(id)
	if err != nil {
		writeError(w, r, http.StatusNotFound, err)
		return nil, "", false
	}
	return e, id, true
}

// Wire types. Records are flat {x, y, floor, t} objects; timestamps
// are seconds, as everywhere in the package.
type wireRecord struct {
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Floor int     `json:"floor"`
	T     float64 `json:"t"`
}

type sequenceRequest struct {
	ObjectID string       `json:"object_id"`
	Records  []wireRecord `json:"records"`
}

type wireSemantics struct {
	Region     int     `json:"region"`
	RegionName string  `json:"region_name,omitempty"`
	Start      float64 `json:"start"`
	End        float64 `json:"end"`
	Event      string  `json:"event"`
}

type annotateResponse struct {
	Venue     string          `json:"venue"`
	ObjectID  string          `json:"object_id"`
	Regions   []int           `json:"regions"`
	Events    []string        `json:"events"`
	Semantics []wireSemantics `json:"semantics"`
}

func (s *server) handleAnnotate(w http.ResponseWriter, r *http.Request) {
	e, venue, ok := s.engine(w, r)
	if !ok {
		return
	}
	req, ok := s.decodeSequence(w, r)
	if !ok {
		return
	}
	p := toPSequence(req)
	labels, ms, err := e.AnnotateCtx(r.Context(), &p)
	if err != nil {
		writeAnnotateError(w, r, err)
		return
	}
	resp := annotateResponse{
		Venue:     venue,
		ObjectID:  p.ObjectID,
		Regions:   make([]int, len(labels.Regions)),
		Events:    make([]string, len(labels.Events)),
		Semantics: wireSemanticsOf(e, ms),
	}
	for i, rg := range labels.Regions {
		resp.Regions[i] = int(rg)
	}
	for i, ev := range labels.Events {
		resp.Events[i] = ev.String()
	}
	writeJSON(w, http.StatusOK, resp)
}

type feedResponse struct {
	Venue              string `json:"venue"`
	Fed                int    `json:"fed"`
	CompletedSequences int    `json:"completed_sequences"`
}

func (s *server) handleFeed(w http.ResponseWriter, r *http.Request) {
	e, venue, ok := s.engine(w, r)
	if !ok {
		return
	}
	req, ok := s.decodeSequence(w, r)
	if !ok {
		return
	}
	p := toPSequence(req)
	// The response uses only this call's counts — no engine-wide stats
	// scan on the ingestion hot path.
	completed, err := e.FeedAll(p.ObjectID, p.Records)
	if err != nil {
		// Partial success: valid records were ingested and may have
		// emitted sequences. Report the counts with the error so the
		// client knows not to blindly re-feed the batch.
		s.writeIngestError(w, r, err, feedResponse{Venue: venue, Fed: len(p.Records), CompletedSequences: completed})
		return
	}
	writeJSON(w, http.StatusOK, feedResponse{
		Venue:              venue,
		Fed:                len(p.Records),
		CompletedSequences: completed,
	})
}

// writeIngestError reports a partial-success ingestion failure (feed
// or flush) alongside its counts payload. A backlogged venue
// (feed-timeout exceeded waiting for an inference slot) is load
// shedding, not a client mistake: 429 + Retry-After instead of 422.
func (s *server) writeIngestError(w http.ResponseWriter, r *http.Request, err error, payload any) {
	status := http.StatusUnprocessableEntity
	if errors.Is(err, c2mn.ErrBacklog) {
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", s.retryAfterSecs)
	}
	writeErrorWith(w, r, status, err, payload)
}

// writeErrorWith writes an error next to a partial-success payload's
// fields, in the route tree's envelope style: a typed error object on
// /v1, the flat error string on legacy routes. payload must marshal
// to a JSON object without an "error" key.
func writeErrorWith(w http.ResponseWriter, r *http.Request, status int, err error, payload any) {
	body := map[string]any{}
	if buf, merr := json.Marshal(payload); merr == nil {
		// Best-effort: a payload that does not marshal still reports
		// the error below.
		json.Unmarshal(buf, &body)
	}
	if isV1(r) {
		body["error"] = wireError{Code: errorCode(status, err), Message: err.Error()}
	} else {
		body["error"] = err.Error()
	}
	writeJSON(w, status, body)
}

type flushResponse struct {
	Venues           int   `json:"venues"`
	PendingRecords   int   `json:"pending_records"`
	EmittedSequences int64 `json:"emitted_sequences"`
}

// handleFlush flushes one venue when specified, every venue otherwise.
// The response totals pending records and emitted sequences across the
// flushed venues. Flushing all venues keeps going past a failing one —
// a bad fragment in venue A must not leave venue B's streams open —
// and reports the joined errors alongside the counts.
func (s *server) handleFlush(w http.ResponseWriter, r *http.Request) {
	var ids []string
	explicit := false
	if v := r.PathValue("venue"); v != "" {
		ids, explicit = []string{v}, true
	} else if v := r.URL.Query().Get("venue"); v != "" {
		ids, explicit = []string{v}, true
	} else {
		ids = s.registry.Venues()
	}
	resp := flushResponse{}
	var errs []error
	for _, id := range ids {
		e, err := s.registry.Engine(id)
		if err != nil {
			if explicit {
				writeError(w, r, http.StatusNotFound, err)
				return
			}
			continue // unloaded between listing and flush
		}
		resp.Venues++
		if err := e.Flush(); err != nil {
			errs = append(errs, fmt.Errorf("venue %q: %w", id, err))
		}
		st := e.Stats()
		resp.PendingRecords += st.PendingRecords
		resp.EmittedSequences += st.EmittedSequences
	}
	if len(errs) > 0 {
		s.writeIngestError(w, r, errors.Join(errs...), resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// The unified query endpoint. The request embeds the library's Query
// verbatim plus cursor-style pagination: page_size bounds one page of
// the ranked list, and the opaque cursor returned with a partial page
// fetches the next one (the follow-up request carries only cursor,
// and optionally a new page_size).
type queryRequest struct {
	c2mn.Query
	PageSize int    `json:"page_size,omitempty"`
	Cursor   string `json:"cursor,omitempty"`
}

type queryResponse struct {
	c2mn.QueryResult
	Offset     int    `json:"offset,omitempty"`
	NextCursor string `json:"next_cursor,omitempty"`
}

// queryCursor is the decoded pagination cursor: the original query
// plus the resume position. It is stateless — each page re-runs the
// query — so pages concatenate to the unpaginated answer as long as
// the underlying stores are quiescent between pages.
type queryCursor struct {
	Query    c2mn.Query `json:"q"`
	PageSize int        `json:"page_size"`
	Offset   int        `json:"offset"`
}

func encodeCursor(c queryCursor) (string, error) {
	buf, err := json.Marshal(c)
	if err != nil {
		return "", err
	}
	return base64.RawURLEncoding.EncodeToString(buf), nil
}

func decodeCursor(s string) (queryCursor, error) {
	var c queryCursor
	buf, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return c, fmt.Errorf("bad cursor: %w", err)
	}
	if err := json.Unmarshal(buf, &c); err != nil {
		return c, fmt.Errorf("bad cursor: %w", err)
	}
	if c.PageSize <= 0 || c.Offset < 0 {
		return c, errors.New("bad cursor: invalid page bounds")
	}
	return c, nil
}

// paginate slices the result's ranked list to [offset, offset+size)
// and returns the next page's offset, or -1 when this page exhausts
// the list. The bounds arithmetic never computes offset+size directly
// — a forged cursor can carry offset near MaxInt, and the sum would
// wrap negative and panic the slice expression.
func paginate(res *c2mn.QueryResult, offset, size int) int {
	if res.Kind == c2mn.QueryFrequentPairs {
		n := len(res.Pairs)
		lo := min(offset, n)
		hi := lo + min(size, n-lo)
		res.Pairs = res.Pairs[lo:hi]
		if hi < n {
			return hi
		}
		return -1
	}
	n := len(res.Regions)
	lo := min(offset, n)
	hi := lo + min(size, n-lo)
	res.Regions = res.Regions[lo:hi]
	if hi < n {
		return hi
	}
	return -1
}

// handleQuery serves POST /v1/query: decode the Query (or resume a
// cursor), execute it through the registry's single entry point, and
// page the ranked list.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, r, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.PageSize < 0 {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("negative page_size %d", req.PageSize))
		return
	}
	q, pageSize, offset := req.Query, req.PageSize, 0
	if req.Cursor != "" {
		if !reflect.DeepEqual(req.Query, c2mn.Query{}) {
			writeError(w, r, http.StatusBadRequest, errors.New("cursor and query fields are mutually exclusive"))
			return
		}
		cur, err := decodeCursor(req.Cursor)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, err)
			return
		}
		q, offset = cur.Query, cur.Offset
		pageSize = cur.PageSize
		if req.PageSize > 0 {
			pageSize = req.PageSize
		}
	}
	res, err := s.registry.Query(r.Context(), q)
	if err != nil {
		writeQueryError(w, r, err)
		return
	}
	resp := queryResponse{QueryResult: res}
	if pageSize > 0 {
		resp.Offset = offset
		if next := paginate(&resp.QueryResult, offset, pageSize); next >= 0 {
			cursor, err := encodeCursor(queryCursor{Query: q, PageSize: pageSize, Offset: next})
			if err != nil {
				writeError(w, r, http.StatusInternalServerError, err)
				return
			}
			resp.NextCursor = cursor
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeQueryError maps VenueRegistry.Query failures onto statuses.
func writeQueryError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, c2mn.ErrInvalidQuery):
		writeError(w, r, http.StatusBadRequest, err)
	case errors.Is(err, c2mn.ErrUnknownVenue):
		writeError(w, r, http.StatusNotFound, err)
	case errors.Is(err, c2mn.ErrCanceled):
		writeError(w, r, http.StatusServiceUnavailable, err)
	default:
		writeError(w, r, http.StatusUnprocessableEntity, err)
	}
}

type regionCountResponse struct {
	Region     int    `json:"region"`
	RegionName string `json:"region_name,omitempty"`
	Count      int    `json:"count"`
}

func (s *server) handlePopularRegions(w http.ResponseWriter, r *http.Request) {
	res, space, ok := s.runTopKSugar(w, r, c2mn.QueryPopularRegions)
	if !ok {
		return
	}
	out := make([]regionCountResponse, len(res.Regions))
	for i, rc := range res.Regions {
		out[i] = regionCountResponse{
			Region:     int(rc.Region),
			RegionName: regionName(space, rc.Region),
			Count:      rc.Count,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

type pairCountResponse struct {
	A     int    `json:"a"`
	AName string `json:"a_name,omitempty"`
	B     int    `json:"b"`
	BName string `json:"b_name,omitempty"`
	Count int    `json:"count"`
}

func (s *server) handleFrequentPairs(w http.ResponseWriter, r *http.Request) {
	res, space, ok := s.runTopKSugar(w, r, c2mn.QueryFrequentPairs)
	if !ok {
		return
	}
	out := make([]pairCountResponse, len(res.Pairs))
	for i, pc := range res.Pairs {
		out[i] = pairCountResponse{
			A: int(pc.A), AName: regionName(space, pc.A),
			B: int(pc.B), BName: regionName(space, pc.B),
			Count: pc.Count,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// runTopKSugar executes a GET query sugar route through the unified
// query path, writing the error response itself on failure. The
// returned Space resolves region names when exactly one venue was
// scanned; it is nil for wider scans, whose merged rows have no
// single naming venue.
func (s *server) runTopKSugar(w http.ResponseWriter, r *http.Request, kind c2mn.QueryKind) (c2mn.QueryResult, *c2mn.Space, bool) {
	scope, venues, err := s.sugarScope(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return c2mn.QueryResult{}, nil, false
	}
	regions, win, k, err := sugarParams(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return c2mn.QueryResult{}, nil, false
	}
	res, err := s.registry.Query(r.Context(), c2mn.Query{
		Kind: kind, Scope: scope, Venues: venues,
		Regions: regions, Window: win, K: k,
	})
	if err != nil {
		writeQueryError(w, r, err)
		return c2mn.QueryResult{}, nil, false
	}
	var space *c2mn.Space
	if len(res.Scanned) == 1 {
		// One scanned venue — whatever scope phrased it — names the rows.
		if e, err := s.registry.Engine(res.Scanned[0]); err == nil {
			space = e.Space()
		}
	}
	return res, space, true
}

// sugarScope resolves a query GET's scope: the cross-venue forms
// ?venues=a,b and ?scope=fleet first (they have no single-venue
// equivalent), then the shared single-venue resolution chain of
// venueID — path segment, ?venue=, sole loaded venue.
func (s *server) sugarScope(r *http.Request) (c2mn.QueryScope, []string, error) {
	if r.PathValue("venue") == "" && r.URL.Query().Get("venue") == "" {
		vals := r.URL.Query()
		if v := vals.Get("venues"); v != "" {
			return c2mn.ScopeVenues, strings.Split(v, ","), nil
		}
		switch sc := vals.Get("scope"); sc {
		case "fleet":
			return c2mn.ScopeFleet, nil, nil
		case "":
		default:
			return "", nil, fmt.Errorf("bad scope %q (only \"fleet\" may be given without venues)", sc)
		}
	}
	id, err := s.venueID(r)
	if err != nil {
		return "", nil, fmt.Errorf("%w — or pass ?venues=a,b / ?scope=fleet for a cross-venue query", err)
	}
	return c2mn.ScopeVenue, []string{id}, nil
}

// statsResponse breaks the pipeline counters down per venue and sums
// them for the fleet view.
type statsResponse struct {
	Venues map[string]c2mn.EngineStats `json:"venues"`
	Totals c2mn.EngineStats            `json:"totals"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	per := s.registry.Stats()
	resp := statsResponse{Venues: per}
	for _, st := range per {
		resp.Totals.FedRecords += st.FedRecords
		resp.Totals.PendingObjects += st.PendingObjects
		resp.Totals.PendingRecords += st.PendingRecords
		resp.Totals.EmittedSequences += st.EmittedSequences
		resp.Totals.StoredSequences += st.StoredSequences
		resp.Totals.StoredSemantics += st.StoredSemantics
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleVenueStats(w http.ResponseWriter, r *http.Request) {
	e, _, ok := s.engine(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, e.Stats())
}

// venueInfo is one row of the /venues listing.
type venueInfo struct {
	Venue   string           `json:"venue"`
	Regions int              `json:"regions"`
	Stats   c2mn.EngineStats `json:"stats"`
}

func (s *server) handleListVenues(w http.ResponseWriter, r *http.Request) {
	ids := s.registry.Venues()
	out := make([]venueInfo, 0, len(ids))
	for _, id := range ids {
		e, err := s.registry.Engine(id)
		if err != nil {
			continue // unloaded between listing and lookup
		}
		out = append(out, venueInfo{
			Venue:   id,
			Regions: len(e.Space().Regions()),
			Stats:   e.Stats(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Venue < out[j].Venue })
	writeJSON(w, http.StatusOK, map[string]any{"venues": out})
}

// loadVenueRequest is the admin body for POST /venues: server-side
// file paths of a space and a model saved with Annotator.Save. Loading
// an already-loaded venue ID hot-reloads it.
type loadVenueRequest struct {
	Venue string `json:"venue"`
	Space string `json:"space"`
	Model string `json:"model"`
}

// authorizeAdmin enforces the admin bearer token on the mutating
// admin endpoints. It reports whether the request may proceed,
// writing the 401 itself otherwise.
func (s *server) authorizeAdmin(w http.ResponseWriter, r *http.Request) bool {
	if s.adminToken == "" {
		return true
	}
	token, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	if !ok || subtle.ConstantTimeCompare([]byte(token), []byte(s.adminToken)) != 1 {
		w.Header().Set("WWW-Authenticate", "Bearer")
		writeError(w, r, http.StatusUnauthorized, errors.New("admin endpoint requires a valid bearer token"))
		return false
	}
	return true
}

func (s *server) handleLoadVenue(w http.ResponseWriter, r *http.Request) {
	if !s.authorizeAdmin(w, r) {
		return
	}
	var req loadVenueRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err := dec.Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Venue == "" || req.Space == "" || req.Model == "" {
		writeError(w, r, http.StatusBadRequest, errors.New("venue, space and model are required"))
		return
	}
	if err := loadVenueFiles(s.registry, req.Venue, req.Space, req.Model); err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, c2mn.ErrTooManyVenues) {
			status = http.StatusConflict
		}
		writeError(w, r, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"venue": req.Venue, "status": "loaded"})
}

func (s *server) handleUnloadVenue(w http.ResponseWriter, r *http.Request) {
	if !s.authorizeAdmin(w, r) {
		return
	}
	id := r.PathValue("venue")
	if err := s.registry.Unload(id); err != nil {
		writeError(w, r, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"venue": id, "status": "unloaded"})
}

// sugarParams parses a query GET's k (default: the library default),
// start/end (default: all time) and regions (default: every region of
// each scanned venue — applied inside the query path).
func sugarParams(r *http.Request) ([]c2mn.RegionID, *c2mn.Window, int, error) {
	vals := r.URL.Query()
	k := 0
	if v := vals.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return nil, nil, 0, fmt.Errorf("bad k %q", v)
		}
		k = n
	}
	var win *c2mn.Window
	if vals.Get("start") != "" || vals.Get("end") != "" {
		// A single given bound leaves the other at all-of-time, matching
		// the nil-window default: ?end= alone is a pure upper bound.
		win = &c2mn.Window{Start: -math.MaxFloat64, End: math.MaxFloat64}
		if v := vals.Get("start"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || math.IsNaN(f) {
				return nil, nil, 0, fmt.Errorf("bad start %q", v)
			}
			win.Start = f
		}
		if v := vals.Get("end"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || math.IsNaN(f) {
				return nil, nil, 0, fmt.Errorf("bad end %q", v)
			}
			win.End = f
		}
	}
	var q []c2mn.RegionID
	if v := vals.Get("regions"); v != "" {
		for _, part := range strings.Split(v, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, nil, 0, fmt.Errorf("bad region %q", part)
			}
			q = append(q, c2mn.RegionID(n))
		}
	}
	return q, win, k, nil
}

func regionName(sp *c2mn.Space, id c2mn.RegionID) string {
	if sp == nil || id == c2mn.NoRegion {
		return ""
	}
	return sp.Region(id).Name
}

func wireSemanticsOf(e *c2mn.Engine, ms c2mn.MSSequence) []wireSemantics {
	out := make([]wireSemantics, len(ms.Semantics))
	for i, m := range ms.Semantics {
		out[i] = wireSemantics{
			Region:     int(m.Region),
			RegionName: regionName(e.Space(), m.Region),
			Start:      m.Start,
			End:        m.End,
			Event:      m.Event.String(),
		}
	}
	return out
}

func (s *server) decodeSequence(w http.ResponseWriter, r *http.Request) (sequenceRequest, bool) {
	var req sequenceRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, r, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return req, false
		}
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return req, false
	}
	if req.ObjectID == "" {
		writeError(w, r, http.StatusBadRequest, errors.New("object_id is required"))
		return req, false
	}
	return req, true
}

func toPSequence(req sequenceRequest) c2mn.PSequence {
	p := c2mn.PSequence{ObjectID: req.ObjectID, Records: make([]c2mn.Record, len(req.Records))}
	for i, rec := range req.Records {
		p.Records[i] = c2mn.Record{Loc: c2mn.Loc(rec.X, rec.Y, rec.Floor), T: rec.T}
	}
	return p
}

// writeAnnotateError maps the typed annotation errors to statuses:
// client mistakes (empty or invalid sequences) are 4xx, cancellation —
// normally the client having gone away — is 499-style.
func writeAnnotateError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, c2mn.ErrEmptySequence):
		writeError(w, r, http.StatusBadRequest, err)
	case errors.Is(err, c2mn.ErrCanceled):
		writeError(w, r, http.StatusServiceUnavailable, err)
	case errors.Is(err, c2mn.ErrNoModel):
		writeError(w, r, http.StatusInternalServerError, err)
	default:
		writeError(w, r, http.StatusUnprocessableEntity, err)
	}
}

// wireError is the typed /v1 error payload.
type wireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// isV1 reports whether the request came in through the versioned
// route tree (which carries typed error payloads).
func isV1(r *http.Request) bool { return strings.HasPrefix(r.URL.Path, "/v1/") }

// errorCode derives the stable machine-readable code of a /v1 error:
// the library's sentinel when one matches, a status-derived fallback
// otherwise.
func errorCode(status int, err error) string {
	switch {
	case errors.Is(err, c2mn.ErrUnknownVenue):
		return "unknown_venue"
	case errors.Is(err, c2mn.ErrInvalidQuery):
		return "invalid_query"
	case errors.Is(err, c2mn.ErrBacklog):
		return "backlog"
	case errors.Is(err, c2mn.ErrCanceled):
		return "canceled"
	case errors.Is(err, c2mn.ErrTooManyVenues):
		return "too_many_venues"
	case errors.Is(err, c2mn.ErrEmptySequence):
		return "empty_sequence"
	case errors.Is(err, c2mn.ErrModelVersion):
		return "model_version"
	case errors.Is(err, c2mn.ErrSnapshotVersion):
		return "snapshot_version"
	case errors.Is(err, c2mn.ErrSnapshotMismatch):
		return "snapshot_mismatch"
	case errors.Is(err, c2mn.ErrSnapshotConflict):
		return "snapshot_conflict"
	case errors.Is(err, c2mn.ErrSnapshotCorrupt):
		return "snapshot_corrupt"
	}
	switch status {
	case http.StatusBadRequest:
		return "invalid_argument"
	case http.StatusUnauthorized:
		return "unauthorized"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusRequestEntityTooLarge:
		return "body_too_large"
	case http.StatusTooManyRequests:
		return "backlog"
	case http.StatusServiceUnavailable:
		return "unavailable"
	}
	if status >= http.StatusInternalServerError {
		return "internal"
	}
	return "unprocessable"
}

// writeError emits the error envelope: /v1 routes get the typed
// {"error": {"code", "message"}} payload, legacy unversioned routes
// keep the pre-versioning flat {"error": "..."} string.
func writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	if isV1(r) {
		writeJSON(w, status, map[string]wireError{"error": {Code: errorCode(status, err), Message: err.Error()}})
		return
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
