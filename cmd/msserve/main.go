// Command msserve exposes trained C2MN annotation engines over HTTP.
// It serves one or many venues — each an independently loaded
// (space, model) pair — and routes batch annotation, record-by-record
// streaming ingestion with online η-gap segmentation, and live top-k
// queries by venue.
//
// Usage:
//
//	msserve -space mall.json -model model.json -addr :8080
//	msserve -venue north=mall-n.json,model-n.json \
//	        -venue south=mall-s.json,model-s.json -addr :8080
//
// Endpoints (JSON over HTTP). Data-plane endpoints take the venue as
// a path segment (/venues/{venue}/...) or a ?venue= parameter on the
// bare path; with exactly one venue loaded the parameter may be
// omitted.
//
//	POST   /annotate                      {"object_id", "records": [{"x","y","floor","t"}]}
//	POST   /feed                          same body; records join the object's stream
//	POST   /flush                         complete open stream fragments (?venue=, default all)
//	GET    /query/popular-regions         ?k=5&start=0&end=3600&regions=1,2,3
//	GET    /query/frequent-pairs          same parameters
//	POST   /venues/{venue}/annotate       path-routed equivalents of the above
//	POST   /venues/{venue}/feed
//	POST   /venues/{venue}/flush
//	GET    /venues/{venue}/query/popular-regions
//	GET    /venues/{venue}/query/frequent-pairs
//	GET    /venues/{venue}/stats          one venue's pipeline counters
//	GET    /venues                        list loaded venues with stats
//	POST   /venues                        {"venue","space","model"}: (re)load from server-side paths
//	DELETE /venues/{venue}                unload a venue
//	GET    /stats                         per-venue counters + totals
//	GET    /healthz                       liveness probe
//
// POST /venues and DELETE /venues/{venue} are destructive admin
// operations (they replace or discard a venue's live state and read
// server-side files); gate them with -admin-token (or the
// MSSERVE_ADMIN_TOKEN environment variable), which requires
// "Authorization: Bearer <token>" on those endpoints. Leave it empty
// only behind an authenticating proxy.
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight requests for up to -drain before exiting.
package main

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"c2mn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("msserve: ")

	addr := flag.String("addr", ":8080", "listen address")
	spacePath := flag.String("space", "", "venue JSON path (single-venue form; venue ID \"default\")")
	modelPath := flag.String("model", "", "trained model path (single-venue form)")
	var venueSpecs []string
	flag.Func("venue", "venue spec id=space.json,model.json (repeatable)", func(v string) error {
		venueSpecs = append(venueSpecs, v)
		return nil
	})
	eta := flag.Float64("eta", c2mn.DefaultEta, "stream split gap η in seconds")
	psi := flag.Float64("psi", c2mn.DefaultPsi, "minimum fragment duration ψ in seconds")
	workers := flag.Int("workers", 0, "per-venue batch annotation workers (0 = GOMAXPROCS)")
	budget := flag.Int("budget", 0, "total concurrent annotations across all venues (0 = unbounded)")
	maxVenues := flag.Int("max-venues", 0, "maximum loaded venues (0 = unlimited)")
	window := flag.Int("window", 0, "windowed inference chunk size (0 = whole-sequence)")
	overlap := flag.Int("overlap", 0, "windowed inference overlap (0 = default 32, -1 = none)")
	retention := flag.Float64("retention", 0, "live store retention in seconds of stream time (0 = keep all)")
	maxBody := flag.Int64("max-body", defaultMaxBody, "maximum request body size in bytes")
	maxSweeps := flag.Int("max-sweeps", 0, "ICM sweep bound per sequence (0 = default 20)")
	annealSweeps := flag.Int("anneal-sweeps", 0, "annealed-restart Gibbs sweeps (0 = off)")
	seed := flag.Int64("seed", 0, "annealing randomness seed")
	adminToken := flag.String("admin-token", os.Getenv("MSSERVE_ADMIN_TOKEN"),
		"bearer token required on venue load/unload admin endpoints (empty = open)")
	drain := flag.Duration("drain", 5*time.Second, "graceful shutdown drain timeout")
	flag.Parse()

	if *maxBody <= 0 {
		log.Fatalf("-max-body must be positive, got %d", *maxBody)
	}
	type venueLoad struct{ id, space, model string }
	var loads []venueLoad
	for _, spec := range venueSpecs {
		id, spacePath, modelPath, err := parseVenueSpec(spec)
		if err != nil {
			log.Fatal(err)
		}
		loads = append(loads, venueLoad{id, spacePath, modelPath})
	}
	if *spacePath != "" || *modelPath != "" {
		if *spacePath == "" || *modelPath == "" {
			log.Fatal("-space and -model must be given together")
		}
		// Appended directly, not via the spec syntax, so paths containing
		// '=' or ',' survive.
		loads = append(loads, venueLoad{"default", *spacePath, *modelPath})
	}
	if len(loads) == 0 {
		log.Fatal("no venues: pass -space/-model or at least one -venue id=space.json,model.json")
	}

	infer := c2mn.AnnotateOptions{MaxSweeps: *maxSweeps, AnnealSweeps: *annealSweeps, Seed: *seed}
	registry, err := c2mn.NewVenueRegistry(
		c2mn.WithVenueDefaults(
			c2mn.WithPreprocess(*eta, *psi),
			c2mn.WithWorkers(*workers),
			c2mn.WithWindowing(*window, *overlap),
			c2mn.WithRetention(*retention),
			c2mn.WithInferOptions(infer),
		),
		c2mn.WithVenueBudget(*budget),
		c2mn.WithMaxVenues(*maxVenues),
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range loads {
		if err := loadVenueFiles(registry, l.id, l.space, l.model); err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded venue %q (space %s, model %s)", l.id, l.space, l.model)
	}

	srv := &http.Server{
		Handler:           newServer(registry, *maxBody, *adminToken),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("serving %d venue(s) on %s", registry.Len(), ln.Addr())
	if err := serve(ctx, srv, ln, *drain); err != nil {
		log.Fatal(err)
	}
	log.Print("drained, bye")
}

// serve runs srv on ln until ctx is canceled, then shuts down
// gracefully: the listener closes immediately, in-flight requests get
// up to drain to complete, and serve returns once the server has
// fully stopped. A nil return means a clean exit (either a drained
// shutdown or the listener closing normally).
func serve(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// Drain timeout exceeded: force-close lingering connections.
		srv.Close()
		<-errc
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// parseVenueSpec splits "id=space.json,model.json".
func parseVenueSpec(spec string) (id, spacePath, modelPath string, err error) {
	id, paths, ok := strings.Cut(spec, "=")
	if !ok || id == "" {
		return "", "", "", fmt.Errorf("bad -venue %q: want id=space.json,model.json", spec)
	}
	spacePath, modelPath, ok = strings.Cut(paths, ",")
	if !ok || spacePath == "" || modelPath == "" {
		return "", "", "", fmt.Errorf("bad -venue %q: want id=space.json,model.json", spec)
	}
	return id, spacePath, modelPath, nil
}

// loadVenueFiles loads a (space, model) pair from disk into the
// registry under the venue ID, replacing any engine already there.
func loadVenueFiles(registry *c2mn.VenueRegistry, id, spacePath, modelPath string) error {
	sf, err := os.Open(spacePath)
	if err != nil {
		return err
	}
	defer sf.Close()
	space, err := c2mn.ReadSpace(sf)
	if err != nil {
		return fmt.Errorf("venue %q: reading space: %w", id, err)
	}
	mf, err := os.Open(modelPath)
	if err != nil {
		return err
	}
	defer mf.Close()
	if _, err := registry.Load(id, space, mf); err != nil {
		return err
	}
	return nil
}

// defaultMaxBody caps request bodies at 32 MiB unless -max-body says
// otherwise.
const defaultMaxBody = 32 << 20

// server handles the HTTP surface over a venue registry.
type server struct {
	registry   *c2mn.VenueRegistry
	maxBody    int64
	adminToken string
}

// newServer builds the route table. maxBody caps every request body.
// A non-empty adminToken gates the mutating admin endpoints (venue
// load/unload) behind `Authorization: Bearer <token>`; empty leaves
// them open, for deployments fronted by their own auth.
func newServer(registry *c2mn.VenueRegistry, maxBody int64, adminToken string) http.Handler {
	s := &server{registry: registry, maxBody: maxBody, adminToken: adminToken}
	mux := http.NewServeMux()
	// Bare data-plane paths: venue from ?venue=, or the sole venue.
	mux.HandleFunc("POST /annotate", s.handleAnnotate)
	mux.HandleFunc("POST /feed", s.handleFeed)
	mux.HandleFunc("POST /flush", s.handleFlush)
	mux.HandleFunc("GET /query/popular-regions", s.handlePopularRegions)
	mux.HandleFunc("GET /query/frequent-pairs", s.handleFrequentPairs)
	// Venue-scoped equivalents with the venue as a path segment.
	mux.HandleFunc("POST /venues/{venue}/annotate", s.handleAnnotate)
	mux.HandleFunc("POST /venues/{venue}/feed", s.handleFeed)
	mux.HandleFunc("POST /venues/{venue}/flush", s.handleFlush)
	mux.HandleFunc("GET /venues/{venue}/query/popular-regions", s.handlePopularRegions)
	mux.HandleFunc("GET /venues/{venue}/query/frequent-pairs", s.handleFrequentPairs)
	mux.HandleFunc("GET /venues/{venue}/stats", s.handleVenueStats)
	// Admin plane.
	mux.HandleFunc("GET /venues", s.handleListVenues)
	mux.HandleFunc("POST /venues", s.handleLoadVenue)
	mux.HandleFunc("DELETE /venues/{venue}", s.handleUnloadVenue)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// venueID resolves the request's venue: the path segment, then the
// query parameter, then — when exactly one venue is loaded — that
// venue. The empty string with a nil error means "not specified and
// ambiguous" is impossible: an error is always returned instead.
func (s *server) venueID(r *http.Request) (string, error) {
	if v := r.PathValue("venue"); v != "" {
		return v, nil
	}
	if v := r.URL.Query().Get("venue"); v != "" {
		return v, nil
	}
	if ids := s.registry.Venues(); len(ids) == 1 {
		return ids[0], nil
	}
	return "", fmt.Errorf("venue required: pass /venues/{venue}/... or ?venue= (loaded: %s)",
		strings.Join(s.registry.Venues(), ", "))
}

// engine resolves the request's venue engine, writing the error
// response (400 for a missing venue spec, 404 for an unknown one)
// itself. The bool reports success.
func (s *server) engine(w http.ResponseWriter, r *http.Request) (*c2mn.Engine, string, bool) {
	id, err := s.venueID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, "", false
	}
	e, err := s.registry.Engine(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return nil, "", false
	}
	return e, id, true
}

// Wire types. Records are flat {x, y, floor, t} objects; timestamps
// are seconds, as everywhere in the package.
type wireRecord struct {
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Floor int     `json:"floor"`
	T     float64 `json:"t"`
}

type sequenceRequest struct {
	ObjectID string       `json:"object_id"`
	Records  []wireRecord `json:"records"`
}

type wireSemantics struct {
	Region     int     `json:"region"`
	RegionName string  `json:"region_name,omitempty"`
	Start      float64 `json:"start"`
	End        float64 `json:"end"`
	Event      string  `json:"event"`
}

type annotateResponse struct {
	Venue     string          `json:"venue"`
	ObjectID  string          `json:"object_id"`
	Regions   []int           `json:"regions"`
	Events    []string        `json:"events"`
	Semantics []wireSemantics `json:"semantics"`
}

func (s *server) handleAnnotate(w http.ResponseWriter, r *http.Request) {
	e, venue, ok := s.engine(w, r)
	if !ok {
		return
	}
	req, ok := s.decodeSequence(w, r)
	if !ok {
		return
	}
	p := toPSequence(req)
	labels, ms, err := e.AnnotateCtx(r.Context(), &p)
	if err != nil {
		writeAnnotateError(w, err)
		return
	}
	resp := annotateResponse{
		Venue:     venue,
		ObjectID:  p.ObjectID,
		Regions:   make([]int, len(labels.Regions)),
		Events:    make([]string, len(labels.Events)),
		Semantics: wireSemanticsOf(e, ms),
	}
	for i, rg := range labels.Regions {
		resp.Regions[i] = int(rg)
	}
	for i, ev := range labels.Events {
		resp.Events[i] = ev.String()
	}
	writeJSON(w, http.StatusOK, resp)
}

type feedResponse struct {
	Venue              string `json:"venue"`
	Fed                int    `json:"fed"`
	CompletedSequences int    `json:"completed_sequences"`
}

func (s *server) handleFeed(w http.ResponseWriter, r *http.Request) {
	e, venue, ok := s.engine(w, r)
	if !ok {
		return
	}
	req, ok := s.decodeSequence(w, r)
	if !ok {
		return
	}
	p := toPSequence(req)
	// The response uses only this call's counts — no engine-wide stats
	// scan on the ingestion hot path.
	completed, err := e.FeedAll(p.ObjectID, p.Records)
	if err != nil {
		// Partial success: valid records were ingested and may have
		// emitted sequences. Report the counts with the error so the
		// client knows not to blindly re-feed the batch.
		writeJSON(w, http.StatusUnprocessableEntity, struct {
			Error string `json:"error"`
			feedResponse
		}{err.Error(), feedResponse{Venue: venue, Fed: len(p.Records), CompletedSequences: completed}})
		return
	}
	writeJSON(w, http.StatusOK, feedResponse{
		Venue:              venue,
		Fed:                len(p.Records),
		CompletedSequences: completed,
	})
}

type flushResponse struct {
	Venues           int   `json:"venues"`
	PendingRecords   int   `json:"pending_records"`
	EmittedSequences int64 `json:"emitted_sequences"`
}

// handleFlush flushes one venue when specified, every venue otherwise.
// The response totals pending records and emitted sequences across the
// flushed venues. Flushing all venues keeps going past a failing one —
// a bad fragment in venue A must not leave venue B's streams open —
// and reports the joined errors alongside the counts.
func (s *server) handleFlush(w http.ResponseWriter, r *http.Request) {
	var ids []string
	explicit := false
	if v := r.PathValue("venue"); v != "" {
		ids, explicit = []string{v}, true
	} else if v := r.URL.Query().Get("venue"); v != "" {
		ids, explicit = []string{v}, true
	} else {
		ids = s.registry.Venues()
	}
	resp := flushResponse{}
	var errs []error
	for _, id := range ids {
		e, err := s.registry.Engine(id)
		if err != nil {
			if explicit {
				writeError(w, http.StatusNotFound, err)
				return
			}
			continue // unloaded between listing and flush
		}
		resp.Venues++
		if err := e.Flush(); err != nil {
			errs = append(errs, fmt.Errorf("venue %q: %w", id, err))
		}
		st := e.Stats()
		resp.PendingRecords += st.PendingRecords
		resp.EmittedSequences += st.EmittedSequences
	}
	if len(errs) > 0 {
		writeJSON(w, http.StatusUnprocessableEntity, struct {
			Error string `json:"error"`
			flushResponse
		}{errors.Join(errs...).Error(), resp})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

type regionCountResponse struct {
	Region     int    `json:"region"`
	RegionName string `json:"region_name,omitempty"`
	Count      int    `json:"count"`
}

func (s *server) handlePopularRegions(w http.ResponseWriter, r *http.Request) {
	e, _, ok := s.engine(w, r)
	if !ok {
		return
	}
	q, win, k, err := queryParams(e, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	top := e.TopKPopularRegions(q, win, k)
	out := make([]regionCountResponse, len(top))
	for i, rc := range top {
		out[i] = regionCountResponse{
			Region:     int(rc.Region),
			RegionName: regionName(e, rc.Region),
			Count:      rc.Count,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

type pairCountResponse struct {
	A     int    `json:"a"`
	AName string `json:"a_name,omitempty"`
	B     int    `json:"b"`
	BName string `json:"b_name,omitempty"`
	Count int    `json:"count"`
}

func (s *server) handleFrequentPairs(w http.ResponseWriter, r *http.Request) {
	e, _, ok := s.engine(w, r)
	if !ok {
		return
	}
	q, win, k, err := queryParams(e, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	top := e.TopKFrequentPairs(q, win, k)
	out := make([]pairCountResponse, len(top))
	for i, pc := range top {
		out[i] = pairCountResponse{
			A: int(pc.A), AName: regionName(e, pc.A),
			B: int(pc.B), BName: regionName(e, pc.B),
			Count: pc.Count,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// statsResponse breaks the pipeline counters down per venue and sums
// them for the fleet view.
type statsResponse struct {
	Venues map[string]c2mn.EngineStats `json:"venues"`
	Totals c2mn.EngineStats            `json:"totals"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	per := s.registry.Stats()
	resp := statsResponse{Venues: per}
	for _, st := range per {
		resp.Totals.FedRecords += st.FedRecords
		resp.Totals.PendingObjects += st.PendingObjects
		resp.Totals.PendingRecords += st.PendingRecords
		resp.Totals.EmittedSequences += st.EmittedSequences
		resp.Totals.StoredSequences += st.StoredSequences
		resp.Totals.StoredSemantics += st.StoredSemantics
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleVenueStats(w http.ResponseWriter, r *http.Request) {
	e, _, ok := s.engine(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, e.Stats())
}

// venueInfo is one row of the /venues listing.
type venueInfo struct {
	Venue   string           `json:"venue"`
	Regions int              `json:"regions"`
	Stats   c2mn.EngineStats `json:"stats"`
}

func (s *server) handleListVenues(w http.ResponseWriter, r *http.Request) {
	ids := s.registry.Venues()
	out := make([]venueInfo, 0, len(ids))
	for _, id := range ids {
		e, err := s.registry.Engine(id)
		if err != nil {
			continue // unloaded between listing and lookup
		}
		out = append(out, venueInfo{
			Venue:   id,
			Regions: len(e.Space().Regions()),
			Stats:   e.Stats(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Venue < out[j].Venue })
	writeJSON(w, http.StatusOK, map[string]any{"venues": out})
}

// loadVenueRequest is the admin body for POST /venues: server-side
// file paths of a space and a model saved with Annotator.Save. Loading
// an already-loaded venue ID hot-reloads it.
type loadVenueRequest struct {
	Venue string `json:"venue"`
	Space string `json:"space"`
	Model string `json:"model"`
}

// authorizeAdmin enforces the admin bearer token on the mutating
// admin endpoints. It reports whether the request may proceed,
// writing the 401 itself otherwise.
func (s *server) authorizeAdmin(w http.ResponseWriter, r *http.Request) bool {
	if s.adminToken == "" {
		return true
	}
	token, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	if !ok || subtle.ConstantTimeCompare([]byte(token), []byte(s.adminToken)) != 1 {
		w.Header().Set("WWW-Authenticate", "Bearer")
		writeError(w, http.StatusUnauthorized, errors.New("admin endpoint requires a valid bearer token"))
		return false
	}
	return true
}

func (s *server) handleLoadVenue(w http.ResponseWriter, r *http.Request) {
	if !s.authorizeAdmin(w, r) {
		return
	}
	var req loadVenueRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Venue == "" || req.Space == "" || req.Model == "" {
		writeError(w, http.StatusBadRequest, errors.New("venue, space and model are required"))
		return
	}
	if err := loadVenueFiles(s.registry, req.Venue, req.Space, req.Model); err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, c2mn.ErrTooManyVenues) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"venue": req.Venue, "status": "loaded"})
}

func (s *server) handleUnloadVenue(w http.ResponseWriter, r *http.Request) {
	if !s.authorizeAdmin(w, r) {
		return
	}
	id := r.PathValue("venue")
	if err := s.registry.Unload(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"venue": id, "status": "unloaded"})
}

// queryParams parses k (default 5), start/end (default all time) and
// regions (default: every region of the venue).
func queryParams(e *c2mn.Engine, r *http.Request) ([]c2mn.RegionID, c2mn.Window, int, error) {
	vals := r.URL.Query()
	k := 5
	win := c2mn.Window{Start: 0, End: math.MaxFloat64}
	if v := vals.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return nil, win, 0, fmt.Errorf("bad k %q", v)
		}
		k = n
	}
	if v := vals.Get("start"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || math.IsNaN(f) {
			return nil, win, 0, fmt.Errorf("bad start %q", v)
		}
		win.Start = f
	}
	if v := vals.Get("end"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || math.IsNaN(f) {
			return nil, win, 0, fmt.Errorf("bad end %q", v)
		}
		win.End = f
	}
	var q []c2mn.RegionID
	if v := vals.Get("regions"); v != "" {
		for _, part := range strings.Split(v, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, win, 0, fmt.Errorf("bad region %q", part)
			}
			q = append(q, c2mn.RegionID(n))
		}
	} else {
		q = e.Space().Regions()
	}
	return q, win, k, nil
}

func regionName(e *c2mn.Engine, id c2mn.RegionID) string {
	if id == c2mn.NoRegion {
		return ""
	}
	return e.Space().Region(id).Name
}

func wireSemanticsOf(e *c2mn.Engine, ms c2mn.MSSequence) []wireSemantics {
	out := make([]wireSemantics, len(ms.Semantics))
	for i, m := range ms.Semantics {
		out[i] = wireSemantics{
			Region:     int(m.Region),
			RegionName: regionName(e, m.Region),
			Start:      m.Start,
			End:        m.End,
			Event:      m.Event.String(),
		}
	}
	return out
}

func (s *server) decodeSequence(w http.ResponseWriter, r *http.Request) (sequenceRequest, bool) {
	var req sequenceRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return req, false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return req, false
	}
	if req.ObjectID == "" {
		writeError(w, http.StatusBadRequest, errors.New("object_id is required"))
		return req, false
	}
	return req, true
}

func toPSequence(req sequenceRequest) c2mn.PSequence {
	p := c2mn.PSequence{ObjectID: req.ObjectID, Records: make([]c2mn.Record, len(req.Records))}
	for i, rec := range req.Records {
		p.Records[i] = c2mn.Record{Loc: c2mn.Loc(rec.X, rec.Y, rec.Floor), T: rec.T}
	}
	return p
}

// writeAnnotateError maps the typed annotation errors to statuses:
// client mistakes (empty or invalid sequences) are 4xx, cancellation —
// normally the client having gone away — is 499-style.
func writeAnnotateError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, c2mn.ErrEmptySequence):
		writeError(w, http.StatusBadRequest, err)
	case errors.Is(err, c2mn.ErrCanceled):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, c2mn.ErrNoModel):
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeError(w, http.StatusUnprocessableEntity, err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
