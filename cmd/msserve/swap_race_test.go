package main

// Race test for the hot-swap path: a retraining cycle installs a new
// model while /feed, /v1/query and /v1/watch traffic hammers the same
// venue. Run under -race this pins the registry swap, the engine
// labeled sink, the snapshot-cache forget and the watch-hub
// invalidation against the serving hot paths. The feeders post fresh
// object IDs without flushing, so no sequence completes mid-test and
// the shadow holdout stays pure operator truth — the swap outcome is
// deterministic even with traffic racing the cycle.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"c2mn"
	"c2mn/internal/notify"
)

func TestHotSwapUnderConcurrentTraffic(t *testing.T) {
	ann, _ := testParts(t)
	space := ann.Space()
	data := retrainTestData(t, space)
	weak, err := c2mn.Train(space, data[:2], c2mn.TrainOptions{V: 6, Exact: true, MaxIter: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	hub := notify.NewHub()
	registry, err := c2mn.NewVenueRegistry(
		c2mn.WithVenueDefaults(
			c2mn.WithPreprocess(testEta, testPsi),
			c2mn.WithChangeNotifier(hub.Publish),
		),
		c2mn.WithRetrainPolicy(c2mn.RetrainPolicy{
			Config: c2mn.RetrainConfig{MinSamples: 8, HoldoutFrac: 0.5, Seed: 3},
			Train:  c2mn.TrainOptions{V: 6, Exact: true, TuneClustering: true, Seed: 2},
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := registry.Register("default", weak); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	// Heartbeat sizes the SSE frame-write deadline (3×hb): keep it
	// roomy — the cycle's training saturates the CPU (more so under
	// -race) and a starved write must not tear the stream down.
	ts := httptest.NewServer(newServer(registry, defaultMaxBody, "sesame",
		withWatchHub(hub), withWatchHeartbeat(time.Second), withWatchShutdown(stop)))
	t.Cleanup(ts.Close)

	// Watch subscriber: drain continuously so the server-side writer
	// never backs up, and flag the resync the swap must broadcast.
	watcher := dialWatch(t, ts.URL+"/v1/watch?scope=fleet&k=3", "")
	resync := make(chan struct{})
	consumerDone := make(chan struct{})
	// Read the raw pump channel, not nextData: the cycle's training can
	// run for tens of seconds with only heartbeats on the wire, and a
	// fixed nextData deadline would misread that silence as a dead
	// stream. The pump's error event (sent when the conn closes) ends
	// the loop instead.
	go func() {
		defer close(consumerDone)
		flagged := false
		for e := range watcher.events {
			if e.err != nil {
				return
			}
			if e.ev.Name == "resync" && !flagged {
				flagged = true
				close(resync)
			}
		}
	}()

	done := make(chan struct{})
	var wg sync.WaitGroup
	var firstErr sync.Once
	fail := func(format string, args ...any) {
		firstErr.Do(func() { t.Errorf(format, args...) })
	}

	allTime := c2mn.Window{Start: 0, End: 1e18}
	for w := 0; w < 2; w++ {
		// Feeders: fresh object IDs, full record sets, never flushed —
		// the ingestion path races the swap without completing anything.
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				ls := data[i%len(data)]
				resp := postJSON(t, ts.URL+"/v1/venues/default/feed", sequenceRequest{
					ObjectID: fmt.Sprintf("race-%d-%d", worker, i),
					Records:  toWire(ls.P.Records),
				})
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					fail("concurrent feed: %d", resp.StatusCode)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(w)

		// Queriers: live fleet queries must answer throughout the swap.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp := postJSON(t, ts.URL+"/v1/query", queryRequest{Query: c2mn.Query{
					Kind: c2mn.QueryPopularRegions, Scope: c2mn.ScopeFleet,
					Window: &allTime, K: 3,
				}})
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fail("concurrent query: %d", resp.StatusCode)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}

	// With traffic in flight: ground truth in, cycle, swap.
	resp := doReq(t, "POST", ts.URL+"/v1/admin/venues/default/feedback", "sesame",
		retrainRequest{Data: func() []labeledSequenceWire {
			out := make([]labeledSequenceWire, len(data))
			for i, ls := range data {
				out[i] = toWireLabeled(ls)
			}
			return out
		}()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feedback under traffic: %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = doReq(t, "POST", ts.URL+"/v1/admin/venues/default/retrain", "sesame", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retrain under traffic: %d", resp.StatusCode)
	}
	out := decodeBody[struct {
		Decision c2mn.RetrainDecision `json:"decision"`
	}](t, resp)
	if out.Decision.Outcome != c2mn.RetrainSwapped {
		t.Fatalf("outcome %q (inc CA %.3f vs cand CA %.3f), want swapped",
			out.Decision.Outcome, out.Decision.IncumbentCA, out.Decision.CandidateCA)
	}

	// Let traffic keep racing the freshly swapped engine briefly.
	time.Sleep(100 * time.Millisecond)
	close(done)
	wg.Wait()

	// The swap broadcast a resync to the standing watch.
	select {
	case <-resync:
	case <-time.After(5 * time.Second):
		t.Fatal("watch subscriber never saw the swap's resync")
	}
	watcher.close()
	<-consumerDone

	// The surface is still coherent on the new model: ingestion
	// completes, queries answer, and the identity reflects the swap.
	resp = postJSON(t, ts.URL+"/v1/venues/default/feed", sequenceRequest{
		ObjectID: "post-swap", Records: toWire(data[0].P.Records),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-swap feed: %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/v1/flush", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-swap flush: %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/v1/query", queryRequest{Query: c2mn.Query{
		Kind: c2mn.QueryPopularRegions, Scope: c2mn.ScopeFleet,
		Window: &allTime, K: 3,
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-swap query: %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/v1/venues/default/model")
	if err != nil {
		t.Fatal(err)
	}
	info := decodeBody[c2mn.ModelInfo](t, resp)
	if info.SwapCount != 1 || info.ModelHash != out.Decision.ModelHash {
		t.Fatalf("model identity after swap under traffic: %+v (decision hash %s)",
			info, out.Decision.ModelHash)
	}
}
