package main

// The /v1/admin retraining endpoints: operator ground-truth feedback,
// the manual cycle trigger and the loop status/audit view. All three
// are mounted behind the /v1/admin token check in newServer; the loop
// itself — drift detection, sampling, shadow gating, the hot swap —
// lives in the c2mn registry (WithRetrainPolicy).

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"c2mn"
)

// labeledSequenceWire is one operator-labeled sequence on the wire:
// the same record shape /v1/annotate takes, plus index-aligned
// per-record region and event ("stay"/"pass") labels.
type labeledSequenceWire struct {
	ObjectID string       `json:"object_id"`
	Records  []wireRecord `json:"records"`
	Regions  []int        `json:"regions"`
	Events   []string     `json:"events"`
}

// retrainRequest is the body of the feedback endpoint and (optionally)
// the retrain trigger: labeled ground-truth sequences for the venue's
// truth reservoir.
type retrainRequest struct {
	Data []labeledSequenceWire `json:"data"`
}

func parseEvent(s string) (c2mn.Event, error) {
	switch s {
	case "stay":
		return c2mn.Stay, nil
	case "pass":
		return c2mn.Pass, nil
	}
	return 0, fmt.Errorf("bad event %q (want \"stay\" or \"pass\")", s)
}

// toLabeledSequence validates and converts one wire sequence.
func toLabeledSequence(wi labeledSequenceWire) (c2mn.LabeledSequence, error) {
	var ls c2mn.LabeledSequence
	if wi.ObjectID == "" {
		return ls, errors.New("object_id is required")
	}
	n := len(wi.Records)
	if len(wi.Regions) != n || len(wi.Events) != n {
		return ls, fmt.Errorf("sequence %q labels misaligned: %d records, %d regions, %d events",
			wi.ObjectID, n, len(wi.Regions), len(wi.Events))
	}
	ls.P = toPSequence(sequenceRequest{ObjectID: wi.ObjectID, Records: wi.Records})
	ls.Labels = c2mn.Labels{
		Regions: make([]c2mn.RegionID, n),
		Events:  make([]c2mn.Event, n),
	}
	for i := range wi.Records {
		ls.Labels.Regions[i] = c2mn.RegionID(wi.Regions[i])
		ev, err := parseEvent(wi.Events[i])
		if err != nil {
			return ls, fmt.Errorf("sequence %q record %d: %w", wi.ObjectID, i, err)
		}
		ls.Labels.Events[i] = ev
	}
	if err := ls.Validate(); err != nil {
		return ls, err
	}
	return ls, nil
}

// decodeTruth reads an optional retrainRequest body. A missing body
// yields no sequences; a present but malformed one is a 400.
func (s *server) decodeTruth(w http.ResponseWriter, r *http.Request) ([]c2mn.LabeledSequence, bool) {
	if r.ContentLength == 0 {
		return nil, true
	}
	var req retrainRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, r, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return nil, false
		}
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return nil, false
	}
	out := make([]c2mn.LabeledSequence, 0, len(req.Data))
	for _, wi := range req.Data {
		ls, err := toLabeledSequence(wi)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, err)
			return nil, false
		}
		out = append(out, ls)
	}
	return out, true
}

// writeRetrainError maps the retraining API's typed failures onto
// statuses. A decision with a recorded outcome rides along in the
// error payload, so a skipped or failed cycle is still auditable from
// the response alone.
func writeRetrainError(w http.ResponseWriter, r *http.Request, err error, d c2mn.RetrainDecision) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, c2mn.ErrUnknownVenue):
		status = http.StatusNotFound
	case errors.Is(err, c2mn.ErrRetrainDisabled),
		errors.Is(err, c2mn.ErrRetrainBusy),
		errors.Is(err, c2mn.ErrRetrainConflict),
		errors.Is(err, errVenueDraining):
		status = http.StatusConflict
	case errors.Is(err, c2mn.ErrRetrainSamples):
		status = http.StatusUnprocessableEntity
	}
	if d.Outcome == "" {
		writeError(w, r, status, err)
		return
	}
	writeErrorWith(w, r, status, err, map[string]any{"decision": d})
}

// handleRetrain runs one retraining cycle for the venue synchronously:
// any labeled sequences in the body join the truth reservoir first,
// then train → shadow-score → gate → (maybe) hot swap. The decision is
// the response either way; non-2xx statuses carry it next to the typed
// error.
func (s *server) handleRetrain(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("venue")
	truth, ok := s.decodeTruth(w, r)
	if !ok {
		return
	}
	d, err := s.registry.Retrain(id, truth)
	if err != nil {
		writeRetrainError(w, r, err, d)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"venue": id, "decision": d})
}

// handleRetrainStatus reports the venue's loop state: drift index,
// reservoir sizes, cycle counters and the recent audit decisions.
func (s *server) handleRetrainStatus(w http.ResponseWriter, r *http.Request) {
	noStore(w)
	id := r.PathValue("venue")
	st, err := s.registry.RetrainStatus(id)
	if err != nil {
		writeRetrainError(w, r, err, c2mn.RetrainDecision{})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"venue": id, "retrain": st})
}

// handleRetrainFeedback records operator ground truth without starting
// a cycle. Feedback is what opens the shadow gate: holdout scoring
// uses recorded labels, so a venue fed only its own predictions can
// never swap.
func (s *server) handleRetrainFeedback(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("venue")
	truth, ok := s.decodeTruth(w, r)
	if !ok {
		return
	}
	if len(truth) == 0 {
		writeError(w, r, http.StatusBadRequest, errors.New("feedback requires labeled sequences in data"))
		return
	}
	n, err := s.registry.RetrainFeedback(id, truth)
	if err != nil {
		writeRetrainError(w, r, err, c2mn.RetrainDecision{})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"venue": id, "status": "recorded", "sequences": n})
}

// handleVenueModel reports the identity of the model a venue currently
// serves with — data plane, read-only, works with or without a
// retraining policy.
func (s *server) handleVenueModel(w http.ResponseWriter, r *http.Request) {
	noStore(w)
	id := r.PathValue("venue")
	info, err := s.registry.VenueModel(id)
	if err != nil {
		writeError(w, r, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}
