// Command msquery answers the paper's semantic top-k queries — TkPRQ
// (popular regions) and TkFRPQ (frequent region pairs) — over an
// annotated dataset (e.g. the -out of msannotate). Visits are stay
// events whose period intersects the query window.
//
// Usage:
//
//	msquery -space mall.json -data labeled.json -query tkprq -k 10 -from 0 -to 7200
//	msquery -space mall.json -data labeled.json -query tkfrpq -k 5
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"c2mn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("msquery: ")

	spacePath := flag.String("space", "space.json", "venue JSON path")
	dataPath := flag.String("data", "labeled.json", "annotated dataset JSON path")
	queryType := flag.String("query", "tkprq", "query type: tkprq or tkfrpq")
	k := flag.Int("k", 10, "top-k size")
	from := flag.Float64("from", 0, "window start, seconds")
	to := flag.Float64("to", math.MaxFloat64, "window end, seconds")
	flag.Parse()

	space := loadSpace(*spacePath)
	ds := loadDataset(*dataPath)

	var mss []c2mn.MSSequence
	for i := range ds.Sequences {
		ls := &ds.Sequences[i]
		mss = append(mss, c2mn.Merge(&ls.P, ls.Labels))
	}
	window := c2mn.Window{Start: *from, End: *to}
	regions := space.Regions()
	winEnd := "end"
	if *to < math.MaxFloat64 {
		winEnd = fmt.Sprintf("%.0fs", *to)
	}

	switch *queryType {
	case "tkprq":
		top := c2mn.TopKPopularRegions(mss, regions, window, *k)
		fmt.Printf("top-%d popular regions in [%.0fs, %s]:\n", *k, *from, winEnd)
		for i, rc := range top {
			fmt.Printf("%3d. %-24s %d visits\n", i+1, space.Region(rc.Region).Name, rc.Count)
		}
	case "tkfrpq":
		top := c2mn.TopKFrequentPairs(mss, regions, window, *k)
		fmt.Printf("top-%d co-visited region pairs in [%.0fs, %s]:\n", *k, *from, winEnd)
		for i, pc := range top {
			fmt.Printf("%3d. %s + %s — %d objects\n", i+1,
				space.Region(pc.A).Name, space.Region(pc.B).Name, pc.Count)
		}
	default:
		log.Fatalf("unknown query type %q (want tkprq or tkfrpq)", *queryType)
	}
}

func loadSpace(path string) *c2mn.Space {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	space, err := c2mn.ReadSpace(f)
	if err != nil {
		log.Fatal(err)
	}
	return space
}

func loadDataset(path string) *c2mn.Dataset {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	ds, err := c2mn.ReadDataset(f)
	if err != nil {
		log.Fatal(err)
	}
	return ds
}
