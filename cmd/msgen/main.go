// Command msgen generates synthetic indoor venues and labeled mobility
// datasets using the Vita-style simulator, writing both as JSON for
// the other tools.
//
// Usage:
//
//	msgen -profile mall -objects 50 -duration 7200 -space mall.json -data mall-data.json
//	msgen -profile synth -T 10 -mu 7 -space synth.json -data synth-data.json
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"c2mn/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("msgen: ")

	profile := flag.String("profile", "small", "building profile: mall, synth or small")
	objects := flag.Int("objects", 20, "number of moving objects")
	duration := flag.Float64("duration", 3600, "object lifespan in seconds")
	tMax := flag.Float64("T", 0, "maximum positioning period in seconds (0 = profile default)")
	mu := flag.Float64("mu", 0, "positioning error factor in meters (0 = profile default)")
	seed := flag.Int64("seed", 1, "random seed")
	spacePath := flag.String("space", "space.json", "output path for the venue")
	dataPath := flag.String("data", "data.json", "output path for the labeled dataset")
	flag.Parse()

	var bspec sim.BuildingSpec
	var mspec sim.MobilitySpec
	switch *profile {
	case "mall":
		bspec = sim.MallBuilding()
		mspec = sim.MallMobility(*objects, *duration)
	case "synth":
		bspec = sim.SynthBuilding()
		mspec = sim.DefaultMobility(*objects, *duration)
	case "small":
		bspec = sim.SmallBuilding()
		mspec = sim.DefaultMobility(*objects, *duration)
	default:
		log.Fatalf("unknown profile %q (want mall, synth or small)", *profile)
	}
	if *tMax > 0 {
		mspec.T = *tMax
	}
	if *mu > 0 {
		mspec.Mu = *mu
	}

	space, err := sim.GenerateBuilding(bspec, *seed)
	if err != nil {
		log.Fatal(err)
	}
	st := space.Stats()
	fmt.Printf("venue: %d floors, %d partitions, %d doors (%d stairs), %d regions\n",
		st.Floors, st.Partitions, st.Doors, st.Stairs, st.Regions)

	ds, err := sim.Generate(space, mspec, *seed+1)
	if err != nil {
		log.Fatal(err)
	}
	stats := ds.Stats()
	fmt.Printf("dataset: %d sequences, %d records (%.1f per sequence, %.1fs interval)\n",
		stats.Sequences, stats.Records, stats.AvgRecordsPer, stats.AvgIntervalSec)

	if err := writeFile(*spacePath, space.WriteJSON); err != nil {
		log.Fatal(err)
	}
	if err := writeFile(*dataPath, ds.WriteJSON); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s and %s\n", *spacePath, *dataPath)
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
