package main

import (
	"regexp"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkAnnotateSingleSequence-8   \t 1202\t    982374 ns/op\t     512 B/op\t       9 allocs/op\t       100 records/seq")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkAnnotateSingleSequence-8" || r.Iterations != 1202 {
		t.Fatalf("name/iters = %q/%d", r.Name, r.Iterations)
	}
	if r.NsPerOp != 982374 {
		t.Fatalf("ns/op = %g", r.NsPerOp)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 512 || r.AllocsPerOp == nil || *r.AllocsPerOp != 9 {
		t.Fatalf("memory columns lost")
	}
	if r.Metrics["records/seq"] != 100 {
		t.Fatalf("custom metric lost: %v", r.Metrics)
	}

	if _, ok := parseLine("ok  \tc2mn\t12.3s"); ok {
		t.Fatal("non-benchmark line accepted")
	}
	if _, ok := parseLine("BenchmarkBroken-8 notanumber 12 ns/op"); ok {
		t.Fatal("bad iteration count accepted")
	}
}

func TestBaseNameStripsGomaxprocsSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkAnnotateSingleSequence-8":  "BenchmarkAnnotateSingleSequence",
		"BenchmarkAnnotateSingleSequence-16": "BenchmarkAnnotateSingleSequence",
		"BenchmarkFleetTopK/venues=4-2":      "BenchmarkFleetTopK/venues=4",
		"BenchmarkNoSuffix":                  "BenchmarkNoSuffix",
		"BenchmarkTopK/stored=1000":          "BenchmarkTopK/stored=1000",
	} {
		if got := baseName(in); got != want {
			t.Fatalf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestCompareResults pins the regression gate: a >max-ratio ns/op
// growth fails, shrinkage and modest growth pass, a vanished gated
// benchmark fails, and non-gated benchmarks regress freely.
func TestCompareResults(t *testing.T) {
	gate := regexp.MustCompile("^BenchmarkHot$")
	base := []result{
		{Name: "BenchmarkHot-8", NsPerOp: 100},
		{Name: "BenchmarkCold-8", NsPerOp: 100},
	}

	// Within bounds (1.9x < 2x), measured on a different core count.
	cur := []result{{Name: "BenchmarkHot-16", NsPerOp: 190}, {Name: "BenchmarkCold-16", NsPerOp: 900}}
	if p := compareResults(cur, base, gate, 2); len(p) != 0 {
		t.Fatalf("within-bounds run flagged: %v", p)
	}

	// Over the ratio: flagged, naming the benchmark and the ratio.
	cur = []result{{Name: "BenchmarkHot-16", NsPerOp: 201}, {Name: "BenchmarkCold-16", NsPerOp: 1}}
	p := compareResults(cur, base, gate, 2)
	if len(p) != 1 || !strings.Contains(p[0], "BenchmarkHot") || !strings.Contains(p[0], "2.01x") {
		t.Fatalf("regression report = %v", p)
	}

	// A gated benchmark missing from the run fails the gate.
	cur = []result{{Name: "BenchmarkCold-16", NsPerOp: 1}}
	p = compareResults(cur, base, gate, 2)
	if len(p) != 1 || !strings.Contains(p[0], "missing") {
		t.Fatalf("missing-benchmark report = %v", p)
	}

	// A zero-ns baseline entry cannot gate (no ratio to express).
	p = compareResults(cur, []result{{Name: "BenchmarkHot-8", NsPerOp: 0}, {Name: "BenchmarkCold-8"}},
		regexp.MustCompile("."), 2)
	if len(p) != 1 || !strings.Contains(p[0], "BenchmarkHot") {
		t.Fatalf("zero-baseline report = %v", p)
	}
}

func TestMetricGateListSet(t *testing.T) {
	var l metricGateList
	if err := l.Set("^BenchmarkAnnotateThroughput$=seqs/s=higher"); err != nil {
		t.Fatal(err)
	}
	if err := l.Set("^BenchmarkFleetTopK=latency-ms=lower"); err != nil {
		t.Fatal(err)
	}
	if len(l) != 2 || !l[0].higher || l[0].unit != "seqs/s" || l[1].higher {
		t.Fatalf("parsed gates = %+v", l)
	}
	for _, bad := range []string{"", "x=y", "x=y=sideways", "(=y=higher"} {
		if err := l.Set(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

// TestCompareMetrics pins the custom-metric gate in both directions: a
// throughput metric fails on a >max-ratio drop, a latency-style metric
// on a >max-ratio rise, and a gated metric that vanishes from the run
// fails rather than silently un-gating.
func TestCompareMetrics(t *testing.T) {
	var gates metricGateList
	if err := gates.Set("^BenchmarkThroughput$=seqs/s=higher"); err != nil {
		t.Fatal(err)
	}
	if err := gates.Set("^BenchmarkLatency$=ms/seq=lower"); err != nil {
		t.Fatal(err)
	}
	base := []result{
		{Name: "BenchmarkThroughput-8", Metrics: map[string]float64{"seqs/s": 100}},
		{Name: "BenchmarkLatency-8", Metrics: map[string]float64{"ms/seq": 10}},
	}

	// Both within bounds: throughput halved exactly (ratio 2 allowed),
	// latency below the ceiling.
	cur := []result{
		{Name: "BenchmarkThroughput-16", Metrics: map[string]float64{"seqs/s": 50}},
		{Name: "BenchmarkLatency-16", Metrics: map[string]float64{"ms/seq": 19}},
	}
	if p := compareMetrics(cur, base, gates, 2); len(p) != 0 {
		t.Fatalf("within-bounds run flagged: %v", p)
	}

	// Throughput collapse and latency blow-up: both flagged.
	cur = []result{
		{Name: "BenchmarkThroughput-16", Metrics: map[string]float64{"seqs/s": 40}},
		{Name: "BenchmarkLatency-16", Metrics: map[string]float64{"ms/seq": 21}},
	}
	p := compareMetrics(cur, base, gates, 2)
	if len(p) != 2 || !strings.Contains(p[0], "seqs/s") || !strings.Contains(p[1], "ms/seq") {
		t.Fatalf("regression report = %v", p)
	}

	// The metric disappearing from the run fails the gate.
	cur = []result{
		{Name: "BenchmarkThroughput-16"},
		{Name: "BenchmarkLatency-16", Metrics: map[string]float64{"ms/seq": 1}},
	}
	p = compareMetrics(cur, base, gates, 2)
	if len(p) != 1 || !strings.Contains(p[0], "missing") {
		t.Fatalf("missing-metric report = %v", p)
	}
}

func TestMarkdownTable(t *testing.T) {
	alloc := func(v float64) *float64 { return &v }
	base := []result{
		{Name: "BenchmarkHot-8", NsPerOp: 200, AllocsPerOp: alloc(10), Metrics: map[string]float64{"seqs/s": 50}},
		{Name: "BenchmarkGone-8", NsPerOp: 1},
	}
	cur := []result{
		{Name: "BenchmarkHot-16", NsPerOp: 100, AllocsPerOp: alloc(10), Metrics: map[string]float64{"seqs/s": 100}},
		{Name: "BenchmarkNew-16", NsPerOp: 5},
	}
	md := markdownTable(cur, base)
	for _, want := range []string{
		"| Hot | ns/op | 200 | 100 | -50.0% |",
		"| Hot | allocs/op | 10 | 10 | +0.0% |",
		"| Hot | seqs/s | 50 | 100 | +100.0% |",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("table missing row %q:\n%s", want, md)
		}
	}
	if strings.Contains(md, "Gone") || strings.Contains(md, "New") {
		t.Fatalf("table includes benchmarks absent from one side:\n%s", md)
	}
}
