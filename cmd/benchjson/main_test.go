package main

import (
	"regexp"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkAnnotateSingleSequence-8   \t 1202\t    982374 ns/op\t     512 B/op\t       9 allocs/op\t       100 records/seq")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkAnnotateSingleSequence-8" || r.Iterations != 1202 {
		t.Fatalf("name/iters = %q/%d", r.Name, r.Iterations)
	}
	if r.NsPerOp != 982374 {
		t.Fatalf("ns/op = %g", r.NsPerOp)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 512 || r.AllocsPerOp == nil || *r.AllocsPerOp != 9 {
		t.Fatalf("memory columns lost")
	}
	if r.Metrics["records/seq"] != 100 {
		t.Fatalf("custom metric lost: %v", r.Metrics)
	}

	if _, ok := parseLine("ok  \tc2mn\t12.3s"); ok {
		t.Fatal("non-benchmark line accepted")
	}
	if _, ok := parseLine("BenchmarkBroken-8 notanumber 12 ns/op"); ok {
		t.Fatal("bad iteration count accepted")
	}
}

func TestBaseNameStripsGomaxprocsSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkAnnotateSingleSequence-8":  "BenchmarkAnnotateSingleSequence",
		"BenchmarkAnnotateSingleSequence-16": "BenchmarkAnnotateSingleSequence",
		"BenchmarkFleetTopK/venues=4-2":      "BenchmarkFleetTopK/venues=4",
		"BenchmarkNoSuffix":                  "BenchmarkNoSuffix",
		"BenchmarkTopK/stored=1000":          "BenchmarkTopK/stored=1000",
	} {
		if got := baseName(in); got != want {
			t.Fatalf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestCompareResults pins the regression gate: a >max-ratio ns/op
// growth fails, shrinkage and modest growth pass, a vanished gated
// benchmark fails, and non-gated benchmarks regress freely.
func TestCompareResults(t *testing.T) {
	gate := regexp.MustCompile("^BenchmarkHot$")
	base := []result{
		{Name: "BenchmarkHot-8", NsPerOp: 100},
		{Name: "BenchmarkCold-8", NsPerOp: 100},
	}

	// Within bounds (1.9x < 2x), measured on a different core count.
	cur := []result{{Name: "BenchmarkHot-16", NsPerOp: 190}, {Name: "BenchmarkCold-16", NsPerOp: 900}}
	if p := compareResults(cur, base, gate, 2); len(p) != 0 {
		t.Fatalf("within-bounds run flagged: %v", p)
	}

	// Over the ratio: flagged, naming the benchmark and the ratio.
	cur = []result{{Name: "BenchmarkHot-16", NsPerOp: 201}, {Name: "BenchmarkCold-16", NsPerOp: 1}}
	p := compareResults(cur, base, gate, 2)
	if len(p) != 1 || !strings.Contains(p[0], "BenchmarkHot") || !strings.Contains(p[0], "2.01x") {
		t.Fatalf("regression report = %v", p)
	}

	// A gated benchmark missing from the run fails the gate.
	cur = []result{{Name: "BenchmarkCold-16", NsPerOp: 1}}
	p = compareResults(cur, base, gate, 2)
	if len(p) != 1 || !strings.Contains(p[0], "missing") {
		t.Fatalf("missing-benchmark report = %v", p)
	}

	// A zero-ns baseline entry cannot gate (no ratio to express).
	p = compareResults(cur, []result{{Name: "BenchmarkHot-8", NsPerOp: 0}, {Name: "BenchmarkCold-8"}},
		regexp.MustCompile("."), 2)
	if len(p) != 1 || !strings.Contains(p[0], "BenchmarkHot") {
		t.Fatalf("zero-baseline report = %v", p)
	}
}
