package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkAnnotateSingleSequence-8   \t 1202\t    982374 ns/op\t     512 B/op\t       9 allocs/op\t       100 records/seq")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkAnnotateSingleSequence-8" || r.Iterations != 1202 {
		t.Fatalf("name/iters = %q/%d", r.Name, r.Iterations)
	}
	if r.NsPerOp != 982374 {
		t.Fatalf("ns/op = %g", r.NsPerOp)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 512 || r.AllocsPerOp == nil || *r.AllocsPerOp != 9 {
		t.Fatalf("memory columns lost")
	}
	if r.Metrics["records/seq"] != 100 {
		t.Fatalf("custom metric lost: %v", r.Metrics)
	}

	if _, ok := parseLine("ok  \tc2mn\t12.3s"); ok {
		t.Fatal("non-benchmark line accepted")
	}
	if _, ok := parseLine("BenchmarkBroken-8 notanumber 12 ns/op"); ok {
		t.Fatal("bad iteration count accepted")
	}
}
