// Command benchjson converts `go test -bench` text output on stdin
// into a JSON array on stdout, so CI can archive benchmark trajectories
// (e.g. BENCH_infer.json) without parsing benchmark text downstream.
//
// Usage:
//
//	go test -run '^$' -bench Annotate -benchmem . | benchjson > BENCH_infer.json
//
// Each benchmark result line becomes one object holding the benchmark
// name, iteration count, ns/op, and — when -benchmem is on — B/op and
// allocs/op, plus any custom metrics reported via b.ReportMetric.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var out []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if r, ok := parseLine(line); ok {
			out = append(out, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if out == nil {
		out = []result{}
	}
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseLine parses one benchmark result line of the form
//
//	BenchmarkName-8  5  123456 ns/op  789 B/op  10 allocs/op  3.5 custom
//
// i.e. a name, an iteration count, then (value, unit) pairs.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
