// Command benchjson converts `go test -bench` text output on stdin
// into a JSON array on stdout, so CI can archive benchmark trajectories
// (e.g. BENCH_infer.json) without parsing benchmark text downstream.
//
// Usage:
//
//	go test -run '^$' -bench Annotate -benchmem . | benchjson > BENCH_infer.json
//
// Each benchmark result line becomes one object holding the benchmark
// name, iteration count, ns/op, and — when -benchmem is on — B/op and
// allocs/op, plus any custom metrics reported via b.ReportMetric.
//
// With -baseline, benchjson additionally acts as CI's regression gate:
// after emitting the JSON it compares the fresh results against a
// committed baseline file (itself benchjson output) and exits non-zero
// when any benchmark matching -gate regressed in ns/op by more than
// -max-ratio, or disappeared from the run entirely. Names are compared
// with the trailing GOMAXPROCS suffix ("-8") stripped, so baselines
// recorded on one machine gate runs on another.
//
//	benchjson -baseline ci/BENCH_baseline.json \
//	          -gate '^BenchmarkAnnotateSingleSequence$' \
//	          -max-ratio 2 < bench.txt > BENCH_infer.json
//
// Custom metrics reported via b.ReportMetric are gated with
// -metric-gate, a repeatable flag of the form
//
//	-metric-gate 'regexp=unit=higher'   (throughput-style metrics)
//	-metric-gate 'regexp=unit=lower'    (latency-style metrics)
//
// compared under the same -max-ratio: a higher-is-better metric fails
// when it drops below baseline/max-ratio, a lower-is-better one when
// it exceeds baseline*max-ratio.
//
// With -md FILE, benchjson also writes a benchstat-style before/after
// markdown table (baseline vs current, with deltas) for every
// benchmark present in both runs — CI appends it to the job summary so
// the PR shows the perf trajectory without downloading artifacts.
//
// With -trajectory FILE, benchjson appends this run to a JSON
// run-history file: an array of {unix, commit, results} entries, one
// per invocation, the commit stamped from $GITHUB_SHA when set. The
// file accretes across CI runs (restored from cache or committed), so
// perf over time is queryable without trawling artifacts.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// result is one parsed benchmark line.
type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// metricGate gates one custom metric over the benchmarks matching re.
type metricGate struct {
	re     *regexp.Regexp
	unit   string
	higher bool // true when larger values are better (throughput)
}

// metricGateList implements flag.Value for repeated -metric-gate flags.
type metricGateList []metricGate

func (l *metricGateList) String() string { return fmt.Sprintf("%d metric gates", len(*l)) }

func (l *metricGateList) Set(spec string) error {
	parts := strings.Split(spec, "=")
	if len(parts) != 3 {
		return fmt.Errorf("want 'regexp=unit=higher|lower', got %q", spec)
	}
	re, err := regexp.Compile(parts[0])
	if err != nil {
		return fmt.Errorf("bad regexp in %q: %w", spec, err)
	}
	var higher bool
	switch parts[2] {
	case "higher":
		higher = true
	case "lower":
		higher = false
	default:
		return fmt.Errorf("direction in %q must be 'higher' or 'lower'", spec)
	}
	*l = append(*l, metricGate{re: re, unit: parts[1], higher: higher})
	return nil
}

func main() {
	baseline := flag.String("baseline", "", "baseline JSON file (benchjson output) to gate against")
	gate := flag.String("gate", "", "regexp of benchmark names gated against the baseline (requires -baseline)")
	maxRatio := flag.Float64("max-ratio", 2, "maximum allowed regression ratio for gated benchmarks and metrics")
	mdPath := flag.String("md", "", "write a markdown before/after table (baseline vs current) to this file (requires -baseline)")
	trajectory := flag.String("trajectory", "", "append this run to a JSON run-history file")
	var metricGates metricGateList
	flag.Var(&metricGates, "metric-gate", "gate a custom metric: 'regexp=unit=higher|lower' (repeatable, requires -baseline)")
	flag.Parse()

	var out []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if r, ok := parseLine(line); ok {
			out = append(out, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if out == nil {
		out = []result{}
	}
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *trajectory != "" {
		if err := appendTrajectory(*trajectory, out); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}

	if *baseline == "" {
		return
	}
	gateRe, err := regexp.Compile(*gate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: bad -gate: %v\n", err)
		os.Exit(1)
	}
	buf, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading baseline: %v\n", err)
		os.Exit(1)
	}
	var base []result
	if err := json.Unmarshal(buf, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: decoding baseline %s: %v\n", *baseline, err)
		os.Exit(1)
	}
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(markdownTable(out, base)), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: writing %s: %v\n", *mdPath, err)
			os.Exit(1)
		}
	}
	problems := compareResults(out, base, gateRe, *maxRatio)
	problems = append(problems, compareMetrics(out, base, metricGates, *maxRatio)...)
	for _, p := range problems {
		fmt.Fprintf(os.Stderr, "benchjson: %s\n", p)
	}
	if len(problems) > 0 {
		os.Exit(1)
	}
}

// trajectoryEntry is one recorded run in a -trajectory history file.
type trajectoryEntry struct {
	Unix    int64    `json:"unix"`
	Commit  string   `json:"commit,omitempty"`
	Results []result `json:"results"`
}

// appendTrajectory loads the run-history file (absent means empty),
// appends this run, and rewrites it.
func appendTrajectory(path string, out []result) error {
	var history []trajectoryEntry
	if buf, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(buf, &history); err != nil {
			return fmt.Errorf("decoding trajectory %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("reading trajectory: %w", err)
	}
	history = append(history, trajectoryEntry{
		Unix:    time.Now().Unix(),
		Commit:  os.Getenv("GITHUB_SHA"),
		Results: out,
	})
	buf, err := json.MarshalIndent(history, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// baseName strips the trailing GOMAXPROCS suffix ("-8") from a
// benchmark result name, so baselines gate runs across machines with
// different core counts.
func baseName(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// compareResults checks every baseline benchmark matching gate against
// the current results: a gated benchmark whose ns/op grew by more than
// maxRatio — or which vanished from the run, which would otherwise let
// the gate silently rot — is reported. Benchmarks present only in the
// current run are new and pass freely.
func compareResults(cur, base []result, gate *regexp.Regexp, maxRatio float64) []string {
	current := make(map[string]result, len(cur))
	for _, r := range cur {
		current[baseName(r.Name)] = r
	}
	var problems []string
	for _, b := range base {
		name := baseName(b.Name)
		if !gate.MatchString(name) {
			continue
		}
		now, ok := current[name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: gated benchmark missing from this run", name))
			continue
		}
		if b.NsPerOp <= 0 {
			continue // a zero baseline cannot express a ratio
		}
		if ratio := now.NsPerOp / b.NsPerOp; ratio > maxRatio {
			problems = append(problems, fmt.Sprintf(
				"%s: %.0f ns/op vs baseline %.0f ns/op (%.2fx > %.2fx allowed)",
				name, now.NsPerOp, b.NsPerOp, ratio, maxRatio))
		}
	}
	return problems
}

// compareMetrics checks the gated custom metrics of every baseline
// benchmark against the current run, honouring each gate's direction.
// A gated metric missing from the current run — renamed or no longer
// reported — fails, for the same rot-proofing reason as a missing
// gated benchmark.
func compareMetrics(cur, base []result, gates metricGateList, maxRatio float64) []string {
	if len(gates) == 0 {
		return nil
	}
	current := make(map[string]result, len(cur))
	for _, r := range cur {
		current[baseName(r.Name)] = r
	}
	var problems []string
	for _, b := range base {
		name := baseName(b.Name)
		for _, g := range gates {
			if !g.re.MatchString(name) {
				continue
			}
			was, ok := b.Metrics[g.unit]
			if !ok || was <= 0 {
				continue // baseline has nothing to gate against
			}
			now, ok := current[name]
			if !ok {
				problems = append(problems, fmt.Sprintf("%s: gated benchmark missing from this run", name))
				continue
			}
			v, ok := now.Metrics[g.unit]
			if !ok {
				problems = append(problems, fmt.Sprintf("%s: gated metric %q missing from this run", name, g.unit))
				continue
			}
			if g.higher {
				if v < was/maxRatio {
					problems = append(problems, fmt.Sprintf(
						"%s: %.2f %s vs baseline %.2f %s (%.2fx drop > %.2fx allowed)",
						name, v, g.unit, was, g.unit, was/v, maxRatio))
				}
			} else if v > was*maxRatio {
				problems = append(problems, fmt.Sprintf(
					"%s: %.2f %s vs baseline %.2f %s (%.2fx > %.2fx allowed)",
					name, v, g.unit, was, g.unit, v/was, maxRatio))
			}
		}
	}
	return problems
}

// markdownTable renders a benchstat-style before/after comparison of
// the benchmarks present in both runs: one row per measure (ns/op,
// allocs/op and every custom metric both runs report), with the
// relative delta. Baseline order is preserved.
func markdownTable(cur, base []result) string {
	current := make(map[string]result, len(cur))
	for _, r := range cur {
		current[baseName(r.Name)] = r
	}
	var sb strings.Builder
	sb.WriteString("| benchmark | measure | baseline | current | delta |\n")
	sb.WriteString("|---|---|---:|---:|---:|\n")
	row := func(name, unit string, was, now float64) {
		delta := "n/a"
		if was > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(now-was)/was)
		}
		fmt.Fprintf(&sb, "| %s | %s | %s | %s | %s |\n",
			strings.TrimPrefix(name, "Benchmark"), unit, formatVal(was), formatVal(now), delta)
	}
	for _, b := range base {
		name := baseName(b.Name)
		now, ok := current[name]
		if !ok {
			continue
		}
		row(name, "ns/op", b.NsPerOp, now.NsPerOp)
		if b.AllocsPerOp != nil && now.AllocsPerOp != nil {
			row(name, "allocs/op", *b.AllocsPerOp, *now.AllocsPerOp)
		}
		units := make([]string, 0, len(b.Metrics))
		for u := range b.Metrics {
			if _, ok := now.Metrics[u]; ok {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			row(name, u, b.Metrics[u], now.Metrics[u])
		}
	}
	return sb.String()
}

// formatVal renders a measurement compactly: integers stay integral,
// everything else keeps two decimals.
func formatVal(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}

// parseLine parses one benchmark result line of the form
//
//	BenchmarkName-8  5  123456 ns/op  789 B/op  10 allocs/op  3.5 custom
//
// i.e. a name, an iteration count, then (value, unit) pairs.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
