// Command benchjson converts `go test -bench` text output on stdin
// into a JSON array on stdout, so CI can archive benchmark trajectories
// (e.g. BENCH_infer.json) without parsing benchmark text downstream.
//
// Usage:
//
//	go test -run '^$' -bench Annotate -benchmem . | benchjson > BENCH_infer.json
//
// Each benchmark result line becomes one object holding the benchmark
// name, iteration count, ns/op, and — when -benchmem is on — B/op and
// allocs/op, plus any custom metrics reported via b.ReportMetric.
//
// With -baseline, benchjson additionally acts as CI's regression gate:
// after emitting the JSON it compares the fresh results against a
// committed baseline file (itself benchjson output) and exits non-zero
// when any benchmark matching -gate regressed in ns/op by more than
// -max-ratio, or disappeared from the run entirely. Names are compared
// with the trailing GOMAXPROCS suffix ("-8") stripped, so baselines
// recorded on one machine gate runs on another.
//
//	benchjson -baseline ci/BENCH_baseline.json \
//	          -gate '^BenchmarkAnnotateSingleSequence$' \
//	          -max-ratio 2 < bench.txt > BENCH_infer.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	baseline := flag.String("baseline", "", "baseline JSON file (benchjson output) to gate against")
	gate := flag.String("gate", "", "regexp of benchmark names gated against the baseline (requires -baseline)")
	maxRatio := flag.Float64("max-ratio", 2, "maximum allowed new/baseline ns/op ratio for gated benchmarks")
	flag.Parse()

	var out []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if r, ok := parseLine(line); ok {
			out = append(out, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if out == nil {
		out = []result{}
	}
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	if *baseline == "" {
		return
	}
	gateRe, err := regexp.Compile(*gate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: bad -gate: %v\n", err)
		os.Exit(1)
	}
	buf, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading baseline: %v\n", err)
		os.Exit(1)
	}
	var base []result
	if err := json.Unmarshal(buf, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: decoding baseline %s: %v\n", *baseline, err)
		os.Exit(1)
	}
	problems := compareResults(out, base, gateRe, *maxRatio)
	for _, p := range problems {
		fmt.Fprintf(os.Stderr, "benchjson: %s\n", p)
	}
	if len(problems) > 0 {
		os.Exit(1)
	}
}

// baseName strips the trailing GOMAXPROCS suffix ("-8") from a
// benchmark result name, so baselines gate runs across machines with
// different core counts.
func baseName(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// compareResults checks every baseline benchmark matching gate against
// the current results: a gated benchmark whose ns/op grew by more than
// maxRatio — or which vanished from the run, which would otherwise let
// the gate silently rot — is reported. Benchmarks present only in the
// current run are new and pass freely.
func compareResults(cur, base []result, gate *regexp.Regexp, maxRatio float64) []string {
	current := make(map[string]result, len(cur))
	for _, r := range cur {
		current[baseName(r.Name)] = r
	}
	var problems []string
	for _, b := range base {
		name := baseName(b.Name)
		if !gate.MatchString(name) {
			continue
		}
		now, ok := current[name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: gated benchmark missing from this run", name))
			continue
		}
		if b.NsPerOp <= 0 {
			continue // a zero baseline cannot express a ratio
		}
		if ratio := now.NsPerOp / b.NsPerOp; ratio > maxRatio {
			problems = append(problems, fmt.Sprintf(
				"%s: %.0f ns/op vs baseline %.0f ns/op (%.2fx > %.2fx allowed)",
				name, now.NsPerOp, b.NsPerOp, ratio, maxRatio))
		}
	}
	return problems
}

// parseLine parses one benchmark result line of the form
//
//	BenchmarkName-8  5  123456 ns/op  789 B/op  10 allocs/op  3.5 custom
//
// i.e. a name, an iteration count, then (value, unit) pairs.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
