// Command mstrain trains a C2MN annotation model from a venue and a
// labeled dataset (both JSON, e.g. from msgen) and writes the model as
// JSON.
//
// Usage:
//
//	mstrain -space mall.json -data mall-data.json -model model.json
//	mstrain -space mall.json -data mall-data.json -exact -model model.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"c2mn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mstrain: ")

	spacePath := flag.String("space", "space.json", "venue JSON path")
	dataPath := flag.String("data", "data.json", "labeled dataset JSON path")
	modelPath := flag.String("model", "model.json", "output model path")
	exact := flag.Bool("exact", false, "use the exact pseudo-likelihood trainer instead of Algorithm 1")
	m := flag.Int("m", 0, "MCMC instances per step (0 = paper default 800)")
	maxIter := flag.Int("maxiter", 0, "maximum training iterations (0 = paper default 90)")
	v := flag.Float64("v", 0, "fsm uncertainty radius in meters (0 = paper default 15)")
	seed := flag.Int64("seed", 1, "random seed")
	tune := flag.Bool("tune", true, "adapt st-DBSCAN parameters to the workload")
	trainFrac := flag.Float64("frac", 1.0, "fraction of sequences used for training")
	flag.Parse()

	space := loadSpace(*spacePath)
	ds := loadDataset(*dataPath)
	data := ds.Sequences
	if *trainFrac < 1 {
		n := int(*trainFrac * float64(len(data)))
		if n < 1 {
			n = 1
		}
		data = data[:n]
	}
	fmt.Printf("training on %d sequences (%d records)\n", len(data), countRecords(data))

	ann, err := c2mn.Train(space, data, c2mn.TrainOptions{
		V:              *v,
		M:              *m,
		MaxIter:        *maxIter,
		Seed:           *seed,
		Exact:          *exact,
		TuneClustering: *tune,
	})
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := ann.Save(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("weights: %.4f\n", ann.Weights())
	fmt.Printf("wrote %s\n", *modelPath)
}

func loadSpace(path string) *c2mn.Space {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	space, err := c2mn.ReadSpace(f)
	if err != nil {
		log.Fatal(err)
	}
	return space
}

func loadDataset(path string) *c2mn.Dataset {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	ds, err := c2mn.ReadDataset(f)
	if err != nil {
		log.Fatal(err)
	}
	return ds
}

func countRecords(data []c2mn.LabeledSequence) int {
	n := 0
	for i := range data {
		n += data[i].P.Len()
	}
	return n
}
