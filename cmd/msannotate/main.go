// Command msannotate labels positioning sequences with a trained C2MN
// model and prints the resulting m-semantics (or writes the labeled
// dataset as JSON).
//
// Usage:
//
//	msannotate -space mall.json -model model.json -data queries.json
//	msannotate -space mall.json -model model.json -data queries.json -out labeled.json -accuracy
//
// Long sequences (day-long streams) can be routed through windowed
// inference with -window/-overlap instead of whole-sequence inference:
//
//	msannotate -space mall.json -model model.json -data day.json -window 256 -overlap 32
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"c2mn"
	"c2mn/internal/eval"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("msannotate: ")

	spacePath := flag.String("space", "space.json", "venue JSON path")
	modelPath := flag.String("model", "model.json", "trained model path")
	dataPath := flag.String("data", "data.json", "sequences to annotate (JSON)")
	outPath := flag.String("out", "", "optional output path for the labeled dataset JSON")
	accuracy := flag.Bool("accuracy", false, "report accuracy against the labels in -data")
	maxPrint := flag.Int("print", 3, "number of annotated sequences to print")
	window := flag.Int("window", 0, "windowed inference chunk size in records (0 = whole-sequence)")
	overlap := flag.Int("overlap", 0, "windowed inference context overlap in records (0 = default 32, -1 = none)")
	flag.Parse()
	if *window < 0 {
		log.Fatal("-window must be >= 0")
	}
	if *overlap < -1 {
		log.Fatal("-overlap must be >= -1 (0 = default 32, -1 = none)")
	}
	if *window == 0 && *overlap != 0 {
		log.Fatal("-overlap requires -window")
	}

	space := loadSpace(*spacePath)
	model, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	ann, err := c2mn.Load(space, model)
	model.Close()
	if err != nil {
		log.Fatal(err)
	}
	ds := loadDataset(*dataPath)

	var counter eval.Counter
	out := &c2mn.Dataset{}
	for i := range ds.Sequences {
		ls := &ds.Sequences[i]
		var labels c2mn.Labels
		var ms c2mn.MSSequence
		var err error
		if *window > 0 {
			labels, ms, err = ann.AnnotateWindowed(&ls.P, *window, *overlap)
		} else {
			labels, ms, err = ann.Annotate(&ls.P)
		}
		if err != nil {
			log.Fatal(err)
		}
		if *accuracy {
			if err := counter.Add(ls.Labels, labels); err != nil {
				log.Fatal(err)
			}
		}
		out.Sequences = append(out.Sequences, c2mn.LabeledSequence{P: ls.P, Labels: labels})
		if i < *maxPrint {
			fmt.Printf("%s (%d records):\n", ls.P.ObjectID, ls.P.Len())
			for _, m := range ms.Semantics {
				fmt.Printf("  (%s, [%.0fs, %.0fs], %s)\n",
					space.Region(m.Region).Name, m.Start, m.End, m.Event)
			}
		}
	}
	if *accuracy {
		acc := counter.Result(eval.DefaultLambda)
		fmt.Printf("accuracy over %d records: RA=%.4f EA=%.4f CA=%.4f PA=%.4f\n",
			acc.Records, acc.RA, acc.EA, acc.CA, acc.PA)
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := out.WriteJSON(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
}

func loadSpace(path string) *c2mn.Space {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	space, err := c2mn.ReadSpace(f)
	if err != nil {
		log.Fatal(err)
	}
	return space
}

func loadDataset(path string) *c2mn.Dataset {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	ds, err := c2mn.ReadDataset(f)
	if err != nil {
		log.Fatal(err)
	}
	return ds
}
