// Command msannotate labels positioning sequences with a trained C2MN
// model and prints the resulting m-semantics (or writes the labeled
// dataset as JSON).
//
// Usage:
//
//	msannotate -space mall.json -model model.json -data queries.json
//	msannotate -space mall.json -model model.json -data queries.json -out labeled.json -accuracy
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"c2mn"
	"c2mn/internal/eval"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("msannotate: ")

	spacePath := flag.String("space", "space.json", "venue JSON path")
	modelPath := flag.String("model", "model.json", "trained model path")
	dataPath := flag.String("data", "data.json", "sequences to annotate (JSON)")
	outPath := flag.String("out", "", "optional output path for the labeled dataset JSON")
	accuracy := flag.Bool("accuracy", false, "report accuracy against the labels in -data")
	maxPrint := flag.Int("print", 3, "number of annotated sequences to print")
	flag.Parse()

	space := loadSpace(*spacePath)
	model, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	ann, err := c2mn.Load(space, model)
	model.Close()
	if err != nil {
		log.Fatal(err)
	}
	ds := loadDataset(*dataPath)

	var counter eval.Counter
	out := &c2mn.Dataset{}
	for i := range ds.Sequences {
		ls := &ds.Sequences[i]
		labels, ms, err := ann.Annotate(&ls.P)
		if err != nil {
			log.Fatal(err)
		}
		if *accuracy {
			if err := counter.Add(ls.Labels, labels); err != nil {
				log.Fatal(err)
			}
		}
		out.Sequences = append(out.Sequences, c2mn.LabeledSequence{P: ls.P, Labels: labels})
		if i < *maxPrint {
			fmt.Printf("%s (%d records):\n", ls.P.ObjectID, ls.P.Len())
			for _, m := range ms.Semantics {
				fmt.Printf("  (%s, [%.0fs, %.0fs], %s)\n",
					space.Region(m.Region).Name, m.Start, m.End, m.Event)
			}
		}
	}
	if *accuracy {
		acc := counter.Result(eval.DefaultLambda)
		fmt.Printf("accuracy over %d records: RA=%.4f EA=%.4f CA=%.4f PA=%.4f\n",
			acc.Records, acc.RA, acc.EA, acc.CA, acc.PA)
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := out.WriteJSON(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
}

func loadSpace(path string) *c2mn.Space {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	space, err := c2mn.ReadSpace(f)
	if err != nil {
		log.Fatal(err)
	}
	return space
}

func loadDataset(path string) *c2mn.Dataset {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	ds, err := c2mn.ReadDataset(f)
	if err != nil {
		log.Fatal(err)
	}
	return ds
}
