// Command msexp reproduces the paper's tables and figures. Each
// experiment id maps to one table/figure of the evaluation section
// (see DESIGN.md §5 for the index); "all" runs everything.
//
// Usage:
//
//	msexp -exp table4 -scale small
//	msexp -exp fig14 -scale tiny
//	msexp -exp all -scale small
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"c2mn/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("msexp: ")

	exp := flag.String("exp", "", "experiment id (table3|table4|table5|fig5..fig19|ablation|all)")
	scaleName := flag.String("scale", "small", "workload scale: tiny, small or paper")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	sc, ok := experiments.ScaleByName(*scaleName)
	if !ok {
		log.Fatalf("unknown scale %q (want tiny, small or paper)", *scaleName)
	}
	ids := []string{*exp}
	if *exp == "all" {
		// Combined drivers cover several figures; run each driver once.
		ids = []string{"table3", "table4", "table5", "fig5", "fig7", "fig9",
			"fig10", "fig11", "fig12", "fig14", "fig17", "ablation", "cv"}
	} else if *exp == "" {
		log.Fatal("pass -exp <id> or -exp all (see -list)")
	}

	seen := map[string]bool{}
	for _, id := range ids {
		start := time.Now()
		tables, err := experiments.Run(id, sc)
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		for _, t := range tables {
			if seen[t.ID] {
				continue
			}
			seen[t.ID] = true
			if err := t.Fprint(os.Stdout); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("(%s finished in %.1fs at scale %q)\n\n", id, time.Since(start).Seconds(), sc.Name)
	}
}
