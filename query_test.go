package c2mn

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestQueryValidation(t *testing.T) {
	vr, err := NewVenueRegistry()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	nan := math.NaN()
	bad := []Query{
		{},             // missing kind
		{Kind: "nope"}, // unknown kind
		{Kind: QueryPopularRegions, Scope: "galaxy"},                               // unknown scope
		{Kind: QueryPopularRegions, Scope: ScopeFleet, Venues: []string{"a"}},      // fleet with venues
		{Kind: QueryPopularRegions, Scope: ScopeVenue},                             // venue without venue
		{Kind: QueryPopularRegions, Scope: ScopeVenue, Venues: []string{"a", "b"}}, // venue with two
		{Kind: QueryPopularRegions, Scope: ScopeVenues},                            // venues without venues
		{Kind: QueryPopularRegions, Venues: []string{""}},                          // empty venue ID
		{Kind: QueryPopularRegions, K: -1},                                         // negative k
		{Kind: QueryPopularRegions, Window: &Window{Start: nan, End: 1}},           // NaN window
	}
	for i, q := range bad {
		if _, err := vr.Query(ctx, q); !errors.Is(err, ErrInvalidQuery) {
			t.Errorf("bad query %d: err = %v, want ErrInvalidQuery", i, err)
		}
	}

	// An empty fleet is a valid, empty answer — with the defaults
	// (fleet scope, DefaultQueryK) filled in.
	res, err := vr.Query(ctx, Query{Kind: QueryPopularRegions})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scope != ScopeFleet || res.K != DefaultQueryK {
		t.Fatalf("defaults not applied: %+v", res)
	}
	if res.Regions == nil || len(res.Regions) != 0 || len(res.Scanned) != 0 {
		t.Fatalf("empty fleet result = %+v", res)
	}
}

// fleetRegistry loads three venues with the shared test model and
// streams a different rotation of the test sequences into each, so
// every venue store holds different m-semantics.
func fleetRegistry(t *testing.T) (*VenueRegistry, *Annotator, []string, []LabeledSequence) {
	t.Helper()
	vr, a, test := testRegistry(t, WithVenueDefaults(WithPreprocess(120, 60)))
	ids := []string{"east", "north", "west"}
	for _, id := range ids {
		if _, err := vr.Register(id, a); err != nil {
			t.Fatal(err)
		}
	}
	streams := gappedStreams(test, 120)
	objs := make([]string, 0, len(streams))
	for id := range streams {
		objs = append(objs, id)
	}
	for vi, id := range ids {
		// Venue vi gets all objects from offset vi on — overlapping but
		// distinct workloads.
		for oi, obj := range objs {
			if oi < vi {
				continue
			}
			if _, err := vr.FeedAll(id, obj, streams[obj]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := vr.FlushAll(); err != nil {
		t.Fatal(err)
	}
	return vr, a, ids, test
}

func TestRegistryFleetQueryMatchesBruteForce(t *testing.T) {
	vr, a, ids, _ := fleetRegistry(t)
	ctx := context.Background()
	regions := a.Space().Regions()
	all := Window{Start: -math.MaxFloat64, End: math.MaxFloat64}

	// The brute-force reference: the concatenation of every venue's
	// retained m-semantics, recounted from scratch.
	concat := func(venues []string) []MSSequence {
		var out []MSSequence
		for _, id := range venues {
			seqs, err := vr.Sequences(id)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, seqs...)
		}
		return out
	}

	const k = 5
	res, err := vr.Query(ctx, Query{Kind: QueryPopularRegions, Scope: ScopeFleet, K: k, PerVenue: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Scanned, ids) {
		t.Fatalf("Scanned = %v, want %v", res.Scanned, ids)
	}
	want := TopKPopularRegions(concat(ids), regions, all, k)
	if !reflect.DeepEqual(res.Regions, want) {
		t.Fatalf("fleet TkPRQ = %v, brute force = %v", res.Regions, want)
	}
	// The per-venue breakdown is each venue's own top-k.
	if len(res.PerVenue) != len(ids) {
		t.Fatalf("PerVenue covers %d venues, want %d", len(res.PerVenue), len(ids))
	}
	for i, vc := range res.PerVenue {
		e, err := vr.Engine(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		if vc.Venue != ids[i] || !reflect.DeepEqual(vc.Regions, e.TopKPopularRegions(regions, all, k)) {
			t.Fatalf("PerVenue[%d] = %+v diverges from the venue's own top-k", i, vc)
		}
	}

	pres, err := vr.Query(ctx, Query{Kind: QueryFrequentPairs, Scope: ScopeFleet, K: k})
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := TopKFrequentPairs(concat(ids), regions, all, k)
	if !reflect.DeepEqual(pres.Pairs, wantPairs) {
		t.Fatalf("fleet TkFRPQ = %v, brute force = %v", pres.Pairs, wantPairs)
	}

	// An explicit venue list merges exactly that subset, in request
	// order, and a duplicate entry does not double-count.
	subset := []string{"west", "east", "west"}
	sres, err := vr.Query(ctx, Query{Kind: QueryPopularRegions, Venues: subset, K: k})
	if err != nil {
		t.Fatal(err)
	}
	if sres.Scope != ScopeVenues || !reflect.DeepEqual(sres.Scanned, []string{"west", "east"}) {
		t.Fatalf("subset scope/scan = %v %v", sres.Scope, sres.Scanned)
	}
	wantSubset := TopKPopularRegions(concat([]string{"west", "east"}), regions, all, k)
	if !reflect.DeepEqual(sres.Regions, wantSubset) {
		t.Fatalf("subset TkPRQ = %v, brute force = %v", sres.Regions, wantSubset)
	}

	// Single-venue scope through the unified path agrees with the
	// compatibility wrappers.
	one, err := vr.Query(ctx, Query{Kind: QueryPopularRegions, Venues: []string{"north"}, K: k})
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := vr.TopKPopularRegions("north", regions, all, k)
	if err != nil {
		t.Fatal(err)
	}
	// The unified path defaults empty Regions to the venue's region
	// set, which here is exactly `regions`.
	if one.Scope != ScopeVenue || !reflect.DeepEqual(one.Regions, legacy) {
		t.Fatalf("venue-scope Query %v diverges from TopKPopularRegions %v", one.Regions, legacy)
	}
}

// TestQueryGenerationsExact: a QueryResult carries, for every scanned
// venue, the store generation its partial answer was computed at —
// captured atomically with the counts, so the watch plane can stamp
// event ids that exactly label their bytes. On a quiescent store that
// generation must equal the engine's current one, and a write to one
// venue must move only that venue's entry.
func TestQueryGenerationsExact(t *testing.T) {
	vr, _, ids, test := fleetRegistry(t)
	ctx := context.Background()

	res, err := vr.Query(ctx, Query{Kind: QueryPopularRegions, Scope: ScopeFleet})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Generations) != len(res.Scanned) {
		t.Fatalf("Generations covers %d venues, Scanned %d", len(res.Generations), len(res.Scanned))
	}
	for _, id := range res.Scanned {
		e, err := vr.Engine(id)
		if err != nil {
			t.Fatal(err)
		}
		if g, ok := res.Generations[id]; !ok || g != e.StoreGeneration() {
			t.Fatalf("venue %q: Generations = %d (ok=%v), store at %d", id, g, ok, e.StoreGeneration())
		}
	}
	before := res.Generations

	// A write to one venue moves only that venue's generation. Venue 0
	// holds every object's stream already, so re-feeding any object's
	// records re-emits sequences and bumps the store.
	for obj, recs := range gappedStreams(test, 120) {
		if _, err := vr.FeedAll(ids[0], obj+"-again", recs); err != nil {
			t.Fatal(err)
		}
		break
	}
	if err := vr.Flush(ids[0]); err != nil {
		t.Fatal(err)
	}
	res2, err := vr.Query(ctx, Query{Kind: QueryPopularRegions, Scope: ScopeFleet})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Generations[ids[0]] <= before[ids[0]] {
		t.Fatalf("venue %q generation did not move after a write: %d -> %d",
			ids[0], before[ids[0]], res2.Generations[ids[0]])
	}
	for _, id := range ids[1:] {
		if res2.Generations[id] != before[id] {
			t.Fatalf("untouched venue %q generation moved: %d -> %d", id, before[id], res2.Generations[id])
		}
	}
}

func TestRegistryQueryErrors(t *testing.T) {
	vr, a, test := testRegistry(t)
	if _, err := vr.Register("only", a); err != nil {
		t.Fatal(err)
	}
	_ = test
	// An explicitly named venue must be loaded.
	if _, err := vr.Query(context.Background(), Query{Kind: QueryPopularRegions, Venues: []string{"ghost"}}); !errors.Is(err, ErrUnknownVenue) {
		t.Fatalf("unknown venue: err = %v, want ErrUnknownVenue", err)
	}
	// A dead context fails typed instead of scanning.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := vr.Query(ctx, Query{Kind: QueryPopularRegions, Scope: ScopeFleet}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled ctx: err = %v, want ErrCanceled", err)
	}
}

// TestEngineFeedBacklogTimeout: with a saturated shared budget and a
// feed-queue bound, a completed fragment fails fast with ErrBacklog
// instead of blocking the Feed caller forever — and ingestion recovers
// once a slot frees.
func TestEngineFeedBacklogTimeout(t *testing.T) {
	a, test := testAnnotator(t)
	budget := make(chan struct{}, 1)
	e, err := NewEngine(a,
		WithPreprocess(10, 0),
		WithFeedQueueTimeout(30*time.Millisecond),
		withBudget(budget),
	)
	if err != nil {
		t.Fatal(err)
	}
	loc := test[0].P.Records[0].Loc

	budget <- struct{}{} // saturate the fleet
	if err := e.Feed("o", Record{Loc: loc, T: 0}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = e.Feed("o", Record{Loc: loc, T: 1000}) // η-gap: completes the fragment
	if !errors.Is(err, ErrBacklog) {
		t.Fatalf("saturated feed: err = %v, want ErrBacklog", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("backlog wait not bounded: took %v", elapsed)
	}

	<-budget // free the slot: the stream keeps working
	if err := e.Feed("o", Record{Loc: loc, T: 5000}); err != nil {
		t.Fatalf("feed after backlog recovery: %v", err)
	}
}

// TestVenueRegistryFlushAllAggregatesFailures: FlushAll keeps flushing
// past a failing venue and the joined error names every one of them.
func TestVenueRegistryFlushAllAggregatesFailures(t *testing.T) {
	vr, a, test := testRegistry(t,
		WithVenueDefaults(WithPreprocess(120, 60), WithFeedQueueTimeout(30*time.Millisecond)),
		WithVenueBudget(1),
	)
	for _, id := range []string{"a", "b"} {
		if _, err := vr.Register(id, a); err != nil {
			t.Fatal(err)
		}
		if _, err := vr.FeedAll(id, "obj", test[0].P.Records); err != nil {
			t.Fatal(err)
		}
	}
	ea, err := vr.Engine("a")
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the shared budget so both venues' trailing fragments
	// fail annotation with ErrBacklog at flush time.
	if err := ea.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer ea.release()

	err = vr.FlushAll()
	if err == nil {
		t.Fatal("FlushAll under saturated budget reported success")
	}
	if !errors.Is(err, ErrBacklog) {
		t.Fatalf("FlushAll err = %v, want ErrBacklog", err)
	}
	for _, id := range []string{"a", "b"} {
		if !strings.Contains(err.Error(), `venue "`+id+`"`) {
			t.Fatalf("FlushAll error does not name venue %q: %v", id, err)
		}
	}
	// Every venue was flushed despite the failures: no pending streams.
	for id, st := range vr.Stats() {
		if st.PendingRecords != 0 {
			t.Fatalf("venue %q still has %d pending records after FlushAll", id, st.PendingRecords)
		}
	}
}
