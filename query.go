package c2mn

import (
	"context"
	"fmt"
	"math"
	"sync"

	"c2mn/internal/query"
)

// QueryKind selects which of the paper's two top-k m-semantics queries
// a Query runs.
type QueryKind string

const (
	// QueryPopularRegions is the TkPRQ: the k regions with the most
	// stay visits inside the window.
	QueryPopularRegions QueryKind = "popular-regions"
	// QueryFrequentPairs is the TkFRPQ: the k region pairs most often
	// visited by the same object inside the window.
	QueryFrequentPairs QueryKind = "frequent-pairs"
)

// QueryScope selects how many venue shards a Query spans.
type QueryScope string

const (
	// ScopeVenue targets exactly one venue (Venues must hold one ID).
	ScopeVenue QueryScope = "venue"
	// ScopeVenues targets an explicit venue list.
	ScopeVenues QueryScope = "venues"
	// ScopeFleet targets every loaded venue (Venues must be empty).
	ScopeFleet QueryScope = "fleet"
)

// DefaultQueryK is the k applied when a Query leaves K at zero.
const DefaultQueryK = 5

// Query is the one composable request type behind every m-semantics
// query: kind, region filter, time window, k, and scope — one venue,
// an explicit venue list, or the whole fleet. The zero values compose
// into sensible defaults: empty Scope is inferred from Venues (no
// venues means the fleet), empty Regions means every region of each
// scanned venue, a nil Window means all of time, and K <= 0 means
// DefaultQueryK. It marshals to/from JSON as the body of msserve's
// POST /v1/query.
//
// Fleet and multi-venue results merge region counts by region ID
// value, i.e. they assume a shared region ID namespace across venues
// (replicated floor plans, or globally assigned IDs). Set PerVenue for
// the per-shard breakdown when the namespaces are independent.
type Query struct {
	// Kind selects the query; required.
	Kind QueryKind `json:"kind"`
	// Scope selects venue/venues/fleet execution. Empty infers it from
	// Venues: none loaded-venue-wide (fleet), one venue, many venues.
	Scope QueryScope `json:"scope,omitempty"`
	// Venues names the target shards for venue/venues scope; it must
	// be empty for fleet scope. Duplicates are collapsed.
	Venues []string `json:"venues,omitempty"`
	// Regions restricts the query set Q; empty means every region of
	// each scanned venue.
	Regions []RegionID `json:"regions,omitempty"`
	// Window restricts the query to m-semantics periods intersecting
	// it; nil means all of time.
	Window *Window `json:"window,omitempty"`
	// K bounds the merged result (and each per-venue breakdown list);
	// 0 means DefaultQueryK.
	K int `json:"k,omitempty"`
	// PerVenue adds each scanned venue's own top-K partial answer to
	// the result.
	PerVenue bool `json:"per_venue,omitempty"`
}

// normalized validates q and fills the documented defaults, returning
// the execution-ready copy. All failures wrap ErrInvalidQuery.
func (q Query) normalized() (Query, error) {
	switch q.Kind {
	case QueryPopularRegions, QueryFrequentPairs:
	default:
		return q, invalidQuery(fmt.Sprintf("kind %q (want %q or %q)", q.Kind, QueryPopularRegions, QueryFrequentPairs))
	}
	if q.Scope == "" {
		switch len(q.Venues) {
		case 0:
			q.Scope = ScopeFleet
		case 1:
			q.Scope = ScopeVenue
		default:
			q.Scope = ScopeVenues
		}
	}
	switch q.Scope {
	case ScopeFleet:
		if len(q.Venues) != 0 {
			return q, invalidQuery(`scope "fleet" does not take a venue list`)
		}
	case ScopeVenue:
		if len(q.Venues) != 1 {
			return q, invalidQuery(fmt.Sprintf(`scope "venue" wants exactly one venue, got %d`, len(q.Venues)))
		}
	case ScopeVenues:
		if len(q.Venues) == 0 {
			return q, invalidQuery(`scope "venues" wants at least one venue`)
		}
	default:
		return q, invalidQuery(fmt.Sprintf("scope %q", q.Scope))
	}
	if len(q.Venues) > 0 {
		dedup := make([]string, 0, len(q.Venues))
		seen := make(map[string]bool, len(q.Venues))
		for _, id := range q.Venues {
			if id == "" {
				return q, invalidQuery("empty venue ID")
			}
			if !seen[id] {
				seen[id] = true
				dedup = append(dedup, id)
			}
		}
		q.Venues = dedup
	}
	if q.K < 0 {
		return q, invalidQuery(fmt.Sprintf("negative k %d", q.K))
	}
	if q.K == 0 {
		q.K = DefaultQueryK
	}
	if q.Window != nil {
		if math.IsNaN(q.Window.Start) || math.IsNaN(q.Window.End) {
			return q, invalidQuery("NaN window bound")
		}
		w := *q.Window // detach from the caller's struct
		q.Window = &w
	}
	return q, nil
}

// window returns the effective time window: the explicit one, or all
// of time when none was set.
func (q *Query) window() Window {
	if q.Window == nil {
		return Window{Start: -math.MaxFloat64, End: math.MaxFloat64}
	}
	return *q.Window
}

// VenueCounts is one venue's own top-k answer inside a multi-venue
// QueryResult (see Query.PerVenue). Exactly one of Regions/Pairs is
// set, matching the query kind.
type VenueCounts struct {
	Venue   string        `json:"venue"`
	Regions []RegionCount `json:"regions,omitempty"`
	Pairs   []PairCount   `json:"pairs,omitempty"`
}

// QueryResult is the answer to a Query. Regions (TkPRQ) or Pairs
// (TkFRPQ) holds the merged top-K in canonical order — count
// descending, ties by region ID ascending — and merging across venues
// is exact: it equals a brute-force recount over the concatenation of
// every scanned venue's retained m-semantics. Scanned reports which
// venues contributed, in scan order (sorted for fleet scope, request
// order otherwise).
type QueryResult struct {
	Kind     QueryKind     `json:"kind"`
	Scope    QueryScope    `json:"scope"`
	K        int           `json:"k"`
	Scanned  []string      `json:"scanned"`
	Regions  []RegionCount `json:"regions,omitempty"`
	Pairs    []PairCount   `json:"pairs,omitempty"`
	PerVenue []VenueCounts `json:"per_venue,omitempty"`
	// Generations holds each scanned venue's store generation, captured
	// atomically (under the store lock) with that venue's partial
	// answer: the result's bytes are exactly the answer at these
	// generations, never newer. The watch plane stamps event ids from
	// this — a sample taken before or after execution could mislabel
	// bytes written mid-query and break Last-Event-ID resume. Not part
	// of the HTTP response body; the serving layer exposes freshness via
	// the ETag validator instead.
	Generations map[string]uint64 `json:"-"`
}

// Query is the single execution entry point of the query API: it
// validates q, resolves its scope to venue shards, runs the per-shard
// query on each — in parallel for multi-venue scopes, with the fan-out
// bounded by the registry's WithVenueBudget slots so a wide fleet
// query cannot monopolise the fleet's inference capacity — and merges
// the partial counts exactly.
//
// A venue named explicitly (venue/venues scope) must be loaded:
// a missing one fails the whole query with ErrUnknownVenue. Fleet
// scope snapshots the loaded venue set at entry and silently skips
// venues unloaded mid-scan; Scanned reports what was actually merged.
// Malformed queries fail with ErrInvalidQuery, and ctx cancellation
// with ErrCanceled. Single-venue scans never wait for budget slots
// (matching the TopK* compatibility wrappers, which route through
// here).
func (vr *VenueRegistry) Query(ctx context.Context, q Query) (QueryResult, error) {
	nq, err := q.normalized()
	if err != nil {
		return QueryResult{}, err
	}
	fleet := nq.Scope == ScopeFleet
	ids := nq.Venues
	if fleet {
		ids = vr.Venues()
	}
	type partial struct {
		regions []RegionCount
		pairs   []PairCount
		gen     uint64
		skipped bool
		err     error
	}
	parts := make([]partial, len(ids))
	// Only a genuine fan-out is budget-bounded: serialising single-venue
	// queries behind busy inference slots would regress the venue-scoped
	// path, which never waited before this API existed.
	bounded := len(ids) > 1
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(p *partial, id string) {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				p.err = canceled(err)
				return
			}
			e, err := vr.Engine(id)
			if err != nil {
				if fleet {
					p.skipped = true // unloaded between listing and scan
				} else {
					p.err = err
				}
				return
			}
			if bounded {
				if err := e.acquire(ctx); err != nil {
					p.err = err
					return
				}
				defer e.release()
			}
			regions := nq.Regions
			if len(regions) == 0 {
				regions = e.Space().Regions()
			}
			p.regions, p.pairs, p.gen = e.queryCounts(nq.Kind, regions, nq.window(), query.AllCounts)
		}(&parts[i], id)
	}
	wg.Wait()

	res := QueryResult{
		Kind: nq.Kind, Scope: nq.Scope, K: nq.K,
		Scanned:     make([]string, 0, len(ids)),
		Generations: make(map[string]uint64, len(ids)),
	}
	regionLists := make([][]RegionCount, 0, len(ids))
	pairLists := make([][]PairCount, 0, len(ids))
	for i := range parts {
		p := &parts[i]
		if p.err != nil {
			return QueryResult{}, fmt.Errorf("c2mn: query venue %q: %w", ids[i], p.err)
		}
		if p.skipped {
			continue
		}
		res.Scanned = append(res.Scanned, ids[i])
		res.Generations[ids[i]] = p.gen
		if nq.PerVenue {
			res.PerVenue = append(res.PerVenue, VenueCounts{
				Venue:   ids[i],
				Regions: query.TruncateRegionCounts(p.regions, nq.K),
				Pairs:   query.TruncatePairCounts(p.pairs, nq.K),
			})
		}
		regionLists = append(regionLists, p.regions)
		pairLists = append(pairLists, p.pairs)
	}
	switch nq.Kind {
	case QueryFrequentPairs:
		res.Pairs = query.TruncatePairCounts(query.MergePairCounts(pairLists...), nq.K)
		if res.Pairs == nil {
			res.Pairs = []PairCount{}
		}
	default:
		res.Regions = query.TruncateRegionCounts(query.MergeRegionCounts(regionLists...), nq.K)
		if res.Regions == nil {
			res.Regions = []RegionCount{}
		}
	}
	return res, nil
}
