package c2mn

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestAnnotateAllCtxDeterministicOrdering(t *testing.T) {
	a, test := testAnnotator(t)
	var ps []PSequence
	for len(ps) < 24 {
		for i := range test {
			ps = append(ps, test[i].P)
		}
	}
	ps = ps[:24]

	serialEng, err := NewEngine(a, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	parallelEng, err := NewEngine(a, WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	serial, err := serialEng.AnnotateAllCtx(ctx, ps)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := parallelEng.AnnotateAllCtx(ctx, ps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("worker pool changed batch results")
	}
	// Slot i holds sequence i's result regardless of scheduling.
	for i := range ps {
		_, want, err := a.Annotate(&ps[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(parallel[i], want) {
			t.Fatalf("out[%d] does not match direct annotation", i)
		}
	}
	// The no-ctx facade rides the same pool.
	all, err := a.AnnotateAll(ps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(all, serial) {
		t.Fatalf("AnnotateAll disagrees with AnnotateAllCtx")
	}
}

func TestAnnotateAllCtxCancellation(t *testing.T) {
	a, test := testAnnotator(t)

	// Already-canceled context: immediate typed error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.AnnotateAllCtx(ctx, []PSequence{test[0].P}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled ctx: err = %v, want ErrCanceled", err)
	}
	if _, _, err := a.AnnotateCtx(ctx, &test[0].P); !errors.Is(err, ErrCanceled) {
		t.Fatalf("AnnotateCtx pre-canceled: err = %v", err)
	}

	// Mid-batch cancellation: a batch far too large to finish quickly,
	// canceled shortly after it starts, must stop promptly with the
	// sentinel rather than running to completion.
	big := make([]PSequence, 0, 2000)
	for len(big) < 2000 {
		big = append(big, test[len(big)%len(test)].P)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel2()
	}()
	start := time.Now()
	_, err := a.AnnotateAllCtx(ctx2, big)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("mid-batch cancel: err = %v, want ErrCanceled", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation not prompt: took %v", elapsed)
	}
}

func TestTypedSentinelErrors(t *testing.T) {
	a, test := testAnnotator(t)
	if _, err := NewEngine(nil); !errors.Is(err, ErrNoModel) {
		t.Errorf("NewEngine(nil) err = %v, want ErrNoModel", err)
	}
	empty := PSequence{ObjectID: "empty"}
	if _, _, err := a.AnnotateCtx(context.Background(), &empty); !errors.Is(err, ErrEmptySequence) {
		t.Errorf("empty sequence err = %v, want ErrEmptySequence", err)
	}
	if _, _, err := a.AnnotateWindowedCtx(context.Background(), &empty, 16, 4); !errors.Is(err, ErrEmptySequence) {
		t.Errorf("windowed empty sequence err = %v", err)
	}
	// Batch entry points enforce the same contract, naming the index.
	batch := []PSequence{test[0].P, empty}
	if _, err := a.AnnotateAllCtx(context.Background(), batch); !errors.Is(err, ErrEmptySequence) {
		t.Errorf("batch empty sequence err = %v, want ErrEmptySequence", err)
	}
	e, err := NewEngine(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.AnnotateCtx(context.Background(), &test[0].P); err != nil {
		t.Errorf("engine annotate failed: %v", err)
	}
	if _, err := NewEngine(a, WithPreprocess(-1, 0)); err == nil {
		t.Errorf("negative eta accepted")
	}
	if _, err := NewEngine(a, WithWindowing(-1, 0)); err == nil {
		t.Errorf("negative window accepted")
	}
}

// gappedStreams rebuilds the test sequences as raw per-object record
// streams with artificial η-sized gaps so that preprocessing splits
// each stream into several fragments.
func gappedStreams(test []LabeledSequence, eta float64) map[string][]Record {
	streams := map[string][]Record{}
	for i := range test {
		id := fmt.Sprintf("obj%d", i)
		var out []Record
		shift := 0.0
		for j, r := range test[i].P.Records {
			if j > 0 && j%40 == 0 {
				shift += eta + 50
			}
			r.T += shift
			out = append(out, r)
		}
		streams[id] = out
	}
	return streams
}

func sortedMSS(mss []MSSequence) []MSSequence {
	out := append([]MSSequence(nil), mss...)
	sort.Slice(out, func(i, j int) bool { return out[i].ObjectID < out[j].ObjectID })
	return out
}

func TestEngineFeedMatchesBatchPipeline(t *testing.T) {
	a, test := testAnnotator(t)
	const eta, psi = 120, 60
	streams := gappedStreams(test, eta)

	// Batch reference: Preprocess + AnnotateAll per object.
	var batch []MSSequence
	for id, records := range streams {
		frs := Preprocess(id, records, eta, psi)
		mss, err := a.AnnotateAll(frs)
		if err != nil {
			t.Fatal(err)
		}
		batch = append(batch, mss...)
	}
	if len(batch) <= len(streams) {
		t.Fatalf("workload produced no splits: %d fragments from %d objects", len(batch), len(streams))
	}

	// Streaming: records fed one at a time, round-robin across objects.
	var emitted []MSSequence
	e, err := NewEngine(a,
		WithPreprocess(eta, psi),
		WithOnSequence(func(ms MSSequence) { emitted = append(emitted, ms) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, len(streams))
	for id := range streams {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	maxLen := 0
	for _, id := range ids {
		if len(streams[id]) > maxLen {
			maxLen = len(streams[id])
		}
	}
	for j := 0; j < maxLen; j++ {
		for _, id := range ids {
			if j < len(streams[id]) {
				if err := e.Feed(id, streams[id][j]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}

	// Byte-identical m-semantics, fragment IDs included.
	wantJSON, err := json.Marshal(sortedMSS(batch))
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(sortedMSS(emitted))
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("streaming m-semantics diverge from batch pipeline:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	// The live store saw exactly the emitted sequences (modulo empties).
	if !reflect.DeepEqual(sortedMSS(e.Sequences()), sortedMSS(emitted)) {
		t.Fatalf("live store contents diverge from callback emissions")
	}

	// Live queries match batch queries over the same semantics.
	regions := a.Space().Regions()
	w := Window{Start: 0, End: 1e9}
	gotTop := e.TopKPopularRegions(regions, w, 5)
	wantTop := TopKPopularRegions(batch, regions, w, 5)
	if !reflect.DeepEqual(gotTop, wantTop) {
		t.Errorf("live TkPRQ = %v, want %v", gotTop, wantTop)
	}
	gotPairs := e.TopKFrequentPairs(regions, w, 5)
	wantPairs := TopKFrequentPairs(batch, regions, w, 5)
	if !reflect.DeepEqual(gotPairs, wantPairs) {
		t.Errorf("live TkFRPQ = %v, want %v", gotPairs, wantPairs)
	}

	// Counters line up with what was fed and emitted.
	st := e.Stats()
	total := 0
	for _, id := range ids {
		total += len(streams[id])
	}
	if st.FedRecords != int64(total) {
		t.Errorf("FedRecords = %d, want %d", st.FedRecords, total)
	}
	if st.EmittedSequences != int64(len(emitted)) {
		t.Errorf("EmittedSequences = %d, want %d", st.EmittedSequences, len(emitted))
	}
	if st.PendingRecords != 0 {
		t.Errorf("PendingRecords = %d after Flush", st.PendingRecords)
	}
}

// TestEngineFeedCoalescedConcurrent drives the /feed micro-batcher
// with production-shaped concurrency — every object streaming from its
// own goroutine — and checks that coalescing is invisible in the
// results: the emitted m-semantics are exactly the batch pipeline's,
// every Feed caller gets its own fragment's outcome, and the
// batch counter stays consistent (acquisitions never exceed emitted
// fragments).
func TestEngineFeedCoalescedConcurrent(t *testing.T) {
	a, test := testAnnotator(t)
	const eta, psi = 120, 60
	streams := gappedStreams(test, eta)

	var batch []MSSequence
	for id, records := range streams {
		frs := Preprocess(id, records, eta, psi)
		mss, err := a.AnnotateAll(frs)
		if err != nil {
			t.Fatal(err)
		}
		batch = append(batch, mss...)
	}

	e, err := NewEngine(a, WithPreprocess(eta, psi))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(streams))
	for id, records := range streams {
		wg.Add(1)
		go func(id string, records []Record) {
			defer wg.Done()
			for _, r := range records {
				if err := e.Feed(id, r); err != nil {
					errs <- err
					return
				}
			}
		}(id, records)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}

	wantJSON, err := json.Marshal(sortedMSS(batch))
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(sortedMSS(e.Sequences()))
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("coalesced streaming m-semantics diverge from batch pipeline:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	st := e.Stats()
	if st.EmittedSequences != int64(len(batch)) {
		t.Errorf("EmittedSequences = %d, want %d", st.EmittedSequences, len(batch))
	}
	if st.FeedBatches < 1 || st.FeedBatches > st.EmittedSequences {
		t.Errorf("FeedBatches = %d, want within [1, %d]", st.FeedBatches, st.EmittedSequences)
	}
}

func TestEngineAnnotateAllCtxHonoursWindowing(t *testing.T) {
	a, test := testAnnotator(t)
	e, err := NewEngine(a, WithWindowing(40, 10), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	ps := make([]PSequence, len(test))
	for i := range test {
		ps[i] = test[i].P
	}
	got, err := e.AnnotateAllCtx(context.Background(), ps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		_, want, err := a.AnnotateWindowed(&ps[i], 40, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("out[%d] is not the windowed annotation", i)
		}
	}
}

func TestEngineFlushReleasesStreamState(t *testing.T) {
	a, test := testAnnotator(t)
	e, err := NewEngine(a, WithPreprocess(120, 60))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.FeedAll("obj", test[0].P.Records); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.PendingObjects != 0 {
		t.Fatalf("Flush left %d tracked objects", st.PendingObjects)
	}
	// A continuing stream starts a fresh segmenter: numbering restarts
	// at #0, as a fresh Preprocess call would.
	before := len(e.Sequences())
	if _, err := e.FeedAll("obj", test[0].P.Records); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	seqs := e.Sequences()
	if len(seqs) <= before {
		t.Fatal("second flush emitted nothing")
	}
	if id := seqs[len(seqs)-1].ObjectID; id[len(id)-2:] != "#0" {
		t.Errorf("post-flush stream fragment ID = %q, want a #0 restart", id)
	}
}

func TestEngineFeedRejectsOutOfOrder(t *testing.T) {
	a, _ := testAnnotator(t)
	e, err := NewEngine(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Feed("o", Record{Loc: Loc(1, 1, 0), T: 100}); err != nil {
		t.Fatal(err)
	}
	if err := e.Feed("o", Record{Loc: Loc(1, 1, 0), T: 50}); err == nil {
		t.Fatal("out-of-order record accepted")
	}
	// Equal timestamps are non-decreasing, like PSequence.Validate.
	if err := e.Feed("o", Record{Loc: Loc(1, 1, 0), T: 100}); err != nil {
		t.Fatalf("equal timestamp rejected: %v", err)
	}
	if st := e.Stats(); st.FedRecords != 2 {
		t.Errorf("FedRecords = %d, want 2 (rejected record must not count)", st.FedRecords)
	}
}

func TestEngineRetentionWindow(t *testing.T) {
	a, test := testAnnotator(t)
	const eta, psi = 120, 60
	streams := gappedStreams(test, eta)
	e, err := NewEngine(a, WithPreprocess(eta, psi), WithRetention(1))
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, len(streams))
	for id := range streams {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fedEmitted := 0
	for _, id := range ids {
		n, err := e.FeedAll(id, streams[id])
		if err != nil {
			t.Fatal(err)
		}
		fedEmitted += n
	}
	if fedEmitted == 0 {
		t.Fatal("no sequences completed mid-stream")
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.EmittedSequences == 0 {
		t.Fatal("nothing emitted")
	}
	// A 1-second window over a multi-object stream keeps only sequences
	// ending near the maximum period end.
	if int64(st.StoredSequences) >= st.EmittedSequences {
		t.Errorf("retention evicted nothing: stored %d of %d emitted",
			st.StoredSequences, st.EmittedSequences)
	}
}

func TestEngineChangeNotifier(t *testing.T) {
	a, test := testAnnotator(t)
	type signal struct {
		venue string
		gen   uint64
	}
	var mu sync.Mutex
	var signals []signal
	e, err := NewEngine(a,
		WithVenueID("north"),
		WithChangeNotifier(func(venue string, gen uint64) {
			mu.Lock()
			signals = append(signals, signal{venue, gen})
			mu.Unlock()
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, ls := range test[:2] {
		for _, r := range ls.P.Records {
			if err := e.Feed(ls.P.ObjectID, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := append([]signal(nil), signals...)
	mu.Unlock()
	if len(got) == 0 {
		t.Fatal("feeding through a flush produced no change notifications")
	}
	for i, s := range got {
		if s.venue != "north" {
			t.Fatalf("signal %d carries venue %q, want north", i, s.venue)
		}
		if i > 0 && s.gen <= got[i-1].gen {
			t.Fatalf("generations not increasing: %v", got)
		}
	}
	st := e.Stats()
	if st.StoreNotifications != int64(len(got)) {
		t.Fatalf("StoreNotifications = %d, want %d delivered signals", st.StoreNotifications, len(got))
	}
}
