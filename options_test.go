package c2mn

import (
	"context"
	"reflect"
	"sync"
	"testing"
)

func TestAnnotateOptsTuningAndDeterminism(t *testing.T) {
	a, test := testAnnotator(t)
	p := &test[0].P

	// Zero options match the default entry point.
	_, plain, err := a.Annotate(p)
	if err != nil {
		t.Fatal(err)
	}
	_, zero, err := a.AnnotateOpts(p, AnnotateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, zero) {
		t.Fatalf("zero AnnotateOptions diverge from Annotate")
	}

	// The annealed restart is deterministic per seed.
	opts := AnnotateOptions{MaxSweeps: 10, AnnealSweeps: 5, Seed: 42}
	_, first, err := a.AnnotateOpts(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, second, err := a.AnnotateOpts(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("same seed produced different annotations")
	}

	// Invalid tuning is rejected on the direct path too, matching the
	// Engine's WithInferOptions behaviour.
	if _, _, err := a.AnnotateOpts(p, AnnotateOptions{MaxSweeps: -1}); err == nil {
		t.Fatalf("AnnotateOpts accepted negative MaxSweeps")
	}
	if _, _, err := a.AnnotateWindowedOpts(p, 8, 4, AnnotateOptions{AnnealSweeps: -1}); err == nil {
		t.Fatalf("AnnotateWindowedOpts accepted negative AnnealSweeps")
	}
}

func TestWithInferOptionsThreadsThroughEngine(t *testing.T) {
	a, test := testAnnotator(t)
	opts := AnnotateOptions{MaxSweeps: 6, AnnealSweeps: 3, Seed: 7}
	eng, err := NewEngine(a, WithInferOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
	p := test[0].P
	_, got, err := eng.AnnotateCtx(context.Background(), &p)
	if err != nil {
		t.Fatal(err)
	}
	_, want, err := a.AnnotateOpts(&p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("engine inference ignores WithInferOptions")
	}

	// Windowed engines thread the same tuning per chunk.
	weng, err := NewEngine(a, WithInferOptions(opts), WithWindowing(8, 4))
	if err != nil {
		t.Fatal(err)
	}
	_, wgot, err := weng.AnnotateCtx(context.Background(), &p)
	if err != nil {
		t.Fatal(err)
	}
	_, wwant, err := a.AnnotateWindowedOpts(&p, 8, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wgot, wwant) {
		t.Fatalf("windowed engine inference ignores WithInferOptions")
	}

	// Nonsense tuning is rejected at construction.
	if _, err := NewEngine(a, WithInferOptions(AnnotateOptions{MaxSweeps: -1})); err == nil {
		t.Fatalf("negative MaxSweeps accepted")
	}
	if _, err := NewEngine(a, WithInferOptions(AnnotateOptions{AnnealSweeps: -1})); err == nil {
		t.Fatalf("negative AnnealSweeps accepted")
	}
}

// TestAnnotatePoolConcurrentConsistency hammers the annotator's shared
// workspace pool from many goroutines and checks every result against
// a serial run — the test the -race CI job leans on.
func TestAnnotatePoolConcurrentConsistency(t *testing.T) {
	a, test := testAnnotator(t)
	want := make([]MSSequence, len(test))
	for i := range test {
		_, ms, err := a.Annotate(&test[i].P)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ms
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				for i := range test {
					_, ms, err := a.Annotate(&test[i].P)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(ms, want[i]) {
						t.Errorf("concurrent annotation of sequence %d diverged", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
