package c2mn

import (
	"fmt"
	"time"

	"c2mn/internal/core"
)

// Default Engine configuration: the paper's real-data preprocessing
// thresholds (§V-B1) and unbounded m-semantics retention.
const (
	// DefaultEta is the default η-gap split threshold in seconds.
	DefaultEta = 300
	// DefaultPsi is the default ψ minimum fragment duration in seconds.
	DefaultPsi = 60
)

// AnnotateOptions tunes the MAP inference behind every annotation
// entry point. The zero value reproduces the default configuration:
// 20 ICM sweeps, no annealed restart.
type AnnotateOptions struct {
	// MaxSweeps bounds the ICM coordinate-ascent sweeps (and the
	// node-level refinement inside block moves). 0 means the default
	// of 20.
	MaxSweeps int
	// AnnealSweeps, when positive, adds a second inference start:
	// annealed Gibbs sweeps followed by ICM, keeping whichever fixed
	// point scores higher. Off by default — on the evaluated workloads
	// the annealed optima score higher but do not label better, so the
	// deterministic ICM start is preferred.
	AnnealSweeps int
	// Seed drives the annealing randomness (deterministic per seed).
	Seed int64
}

// validate rejects nonsensical tuning values.
func (o AnnotateOptions) validate() error {
	if o.MaxSweeps < 0 {
		return fmt.Errorf("c2mn: AnnotateOptions: MaxSweeps must be non-negative, got %d", o.MaxSweeps)
	}
	if o.AnnealSweeps < 0 {
		return fmt.Errorf("c2mn: AnnotateOptions: AnnealSweeps must be non-negative, got %d", o.AnnealSweeps)
	}
	return nil
}

// inferOptions maps the public tuning onto the core layer's options.
func (o AnnotateOptions) inferOptions() core.InferOptions {
	return core.InferOptions{
		MaxSweeps:    o.MaxSweeps,
		AnnealSweeps: o.AnnealSweeps,
		Seed:         o.Seed,
	}
}

// An Option configures an Engine.
type Option func(*Engine) error

// WithWorkers bounds the Engine's annotation worker pool to n
// goroutines. n <= 0 (the default) means GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(e *Engine) error {
		e.workers = n
		return nil
	}
}

// WithPreprocess overrides the streaming η-gap split threshold and ψ
// minimum fragment duration (seconds). The defaults are DefaultEta and
// DefaultPsi.
func WithPreprocess(eta, psi float64) Option {
	return func(e *Engine) error {
		if eta <= 0 {
			return fmt.Errorf("c2mn: WithPreprocess: eta must be positive, got %g", eta)
		}
		if psi < 0 {
			return fmt.Errorf("c2mn: WithPreprocess: psi must be non-negative, got %g", psi)
		}
		e.eta, e.psi = eta, psi
		return nil
	}
}

// WithWindowing routes every sequence the Engine annotates — batch
// and streaming alike — through AnnotateWindowed with the given chunk
// size and overlap instead of whole-sequence inference. window 0
// disables windowing (the default). overlap 0 uses the inference
// default of 32 context records; pass -1 for no overlap at all.
func WithWindowing(window, overlap int) Option {
	return func(e *Engine) error {
		if window < 0 || overlap < -1 {
			return fmt.Errorf("c2mn: WithWindowing: bad window/overlap (%d/%d)", window, overlap)
		}
		e.window, e.overlap = window, overlap
		return nil
	}
}

// WithInferOptions routes every sequence the Engine annotates — batch
// and streaming alike — through inference tuned by opts instead of the
// defaults.
func WithInferOptions(opts AnnotateOptions) Option {
	return func(e *Engine) error {
		if err := opts.validate(); err != nil {
			return err
		}
		e.infer = opts
		return nil
	}
}

// WithOnSequence registers a callback invoked with every ms-sequence
// the streaming pipeline emits, after it has been added to the live
// store. The callback runs on the goroutine that completed the
// sequence (the Feed or Flush caller); it must not call back into the
// Engine's ingestion methods.
func WithOnSequence(fn func(MSSequence)) Option {
	return func(e *Engine) error {
		e.onSeq = fn
		return nil
	}
}

// WithChangeNotifier registers a callback invoked whenever the
// engine's live store moves its generation counter: an effective
// streamed sequence (including any retention eviction it triggers) or
// a snapshot restore. The callback receives the engine's venue ID and
// the generation the store moved to, runs on the writer's goroutine
// after the change is visible to queries, and must not block — fan-out
// to slow consumers belongs behind a coalescing hub (internal/notify),
// whose Publish method is the intended callback. This is the change
// signal the continuous-query push plane (/v1/watch) is driven by;
// deliveries are counted in EngineStats.StoreNotifications.
func WithChangeNotifier(fn func(venue string, gen uint64)) Option {
	return func(e *Engine) error {
		e.notifier = fn
		return nil
	}
}

// withLabeledSink registers the retrain loop's tap: a callback invoked
// with every (p-sequence, labels) pair the streaming pipeline infers,
// after the emitted ms-sequence is in the live store. It runs on the
// completing goroutine, like WithOnSequence, and must not block or call
// back into ingestion. Internal: the registry's retrain manager is the
// only intended consumer (WithRetrainPolicy installs it).
func withLabeledSink(fn func(LabeledSequence)) Option {
	return func(e *Engine) error {
		e.labeledSink = fn
		return nil
	}
}

// WithRetention keeps only m-semantics that ended within the trailing
// `seconds` of stream time in the Engine's live store, turning the
// top-k queries into sliding-window queries. seconds <= 0 (the
// default) retains everything. Eviction orders sequences by their end
// time, so interleaved streams completing out of order are evicted
// correctly.
func WithRetention(seconds float64) Option {
	return func(e *Engine) error {
		e.retention = seconds
		return nil
	}
}

// WithFeedQueueTimeout bounds how long the streaming ingestion path
// (Feed, FeedAll, Flush) waits for a shared inference slot (see
// WithVenueBudget) before giving up on annotating a completed
// fragment. Without it the wait is unbounded: a venue whose annotation
// backlog outgrows the fleet budget blocks its Feed callers forever.
// With a bound, a fragment whose wait exceeds d fails with ErrBacklog
// — the fragment's records are consumed (the stream has moved on) but
// the caller learns the venue is saturated and can shed load;
// cmd/msserve translates it into 429 + Retry-After. d <= 0 (the
// default) waits forever. The bound only applies when a budget is
// installed; without one, ingestion never queues.
func WithFeedQueueTimeout(d time.Duration) Option {
	return func(e *Engine) error {
		e.feedTimeout = d
		return nil
	}
}

// WithVenueID names the engine's venue shard. A VenueRegistry sets it
// to the registration key; standalone engines may set it so stream
// error messages and callbacks identify the venue. The ID also keys
// the engine's streaming state, so two engines with different venue
// IDs never share a (venue, object) stream.
func WithVenueID(id string) Option {
	return func(e *Engine) error {
		e.venue = id
		return nil
	}
}

// withBudget shares a sized inference-slot channel across engines: an
// annotation holds one slot for its duration, so the aggregate
// concurrency — and with it the aggregate growth of the per-annotator
// sync.Pool of inference workspaces — is bounded registry-wide
// instead of per venue. The registry installs it via WithVenueBudget.
func withBudget(ch chan struct{}) Option {
	return func(e *Engine) error {
		e.budget = ch
		return nil
	}
}

// A RegistryOption configures a VenueRegistry.
type RegistryOption func(*VenueRegistry) error

// WithVenueDefaults applies opts to every engine the registry loads,
// before any per-venue options passed at Load/Register time. Typical
// deployment-wide settings: WithPreprocess, WithRetention,
// WithWorkers, WithInferOptions.
func WithVenueDefaults(opts ...Option) RegistryOption {
	return func(vr *VenueRegistry) error {
		vr.defaults = append(vr.defaults, opts...)
		return nil
	}
}

// WithVenueBudget bounds the total number of concurrently running
// annotations across ALL venues of the registry to n slots. Without
// it every venue engine annotates with only its own worker bound, so
// a registry hosting v venues could run v×workers inferences at once;
// the budget caps the fleet-wide inference concurrency and thereby
// the aggregate pooled-workspace memory. n <= 0 (the default) means
// no shared budget.
func WithVenueBudget(n int) RegistryOption {
	return func(vr *VenueRegistry) error {
		if n > 0 {
			vr.budget = make(chan struct{}, n)
		}
		return nil
	}
}

// WithMaxVenues caps how many venues the registry will host; loading
// beyond it fails with ErrTooManyVenues (hot reloads of an existing
// venue are always allowed). n <= 0 (the default) means unlimited.
func WithMaxVenues(n int) RegistryOption {
	return func(vr *VenueRegistry) error {
		vr.maxVenues = n
		return nil
	}
}
