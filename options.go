package c2mn

import (
	"fmt"

	"c2mn/internal/core"
)

// Default Engine configuration: the paper's real-data preprocessing
// thresholds (§V-B1) and unbounded m-semantics retention.
const (
	// DefaultEta is the default η-gap split threshold in seconds.
	DefaultEta = 300
	// DefaultPsi is the default ψ minimum fragment duration in seconds.
	DefaultPsi = 60
)

// AnnotateOptions tunes the MAP inference behind every annotation
// entry point. The zero value reproduces the default configuration:
// 20 ICM sweeps, no annealed restart.
type AnnotateOptions struct {
	// MaxSweeps bounds the ICM coordinate-ascent sweeps (and the
	// node-level refinement inside block moves). 0 means the default
	// of 20.
	MaxSweeps int
	// AnnealSweeps, when positive, adds a second inference start:
	// annealed Gibbs sweeps followed by ICM, keeping whichever fixed
	// point scores higher. Off by default — on the evaluated workloads
	// the annealed optima score higher but do not label better, so the
	// deterministic ICM start is preferred.
	AnnealSweeps int
	// Seed drives the annealing randomness (deterministic per seed).
	Seed int64
}

// validate rejects nonsensical tuning values.
func (o AnnotateOptions) validate() error {
	if o.MaxSweeps < 0 {
		return fmt.Errorf("c2mn: AnnotateOptions: MaxSweeps must be non-negative, got %d", o.MaxSweeps)
	}
	if o.AnnealSweeps < 0 {
		return fmt.Errorf("c2mn: AnnotateOptions: AnnealSweeps must be non-negative, got %d", o.AnnealSweeps)
	}
	return nil
}

// inferOptions maps the public tuning onto the core layer's options.
func (o AnnotateOptions) inferOptions() core.InferOptions {
	return core.InferOptions{
		MaxSweeps:    o.MaxSweeps,
		AnnealSweeps: o.AnnealSweeps,
		Seed:         o.Seed,
	}
}

// An Option configures an Engine.
type Option func(*Engine) error

// WithWorkers bounds the Engine's annotation worker pool to n
// goroutines. n <= 0 (the default) means GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(e *Engine) error {
		e.workers = n
		return nil
	}
}

// WithPreprocess overrides the streaming η-gap split threshold and ψ
// minimum fragment duration (seconds). The defaults are DefaultEta and
// DefaultPsi.
func WithPreprocess(eta, psi float64) Option {
	return func(e *Engine) error {
		if eta <= 0 {
			return fmt.Errorf("c2mn: WithPreprocess: eta must be positive, got %g", eta)
		}
		if psi < 0 {
			return fmt.Errorf("c2mn: WithPreprocess: psi must be non-negative, got %g", psi)
		}
		e.eta, e.psi = eta, psi
		return nil
	}
}

// WithWindowing routes every sequence the Engine annotates — batch
// and streaming alike — through AnnotateWindowed with the given chunk
// size and overlap instead of whole-sequence inference. window 0
// disables windowing (the default). overlap 0 uses the inference
// default of 32 context records; pass -1 for no overlap at all.
func WithWindowing(window, overlap int) Option {
	return func(e *Engine) error {
		if window < 0 || overlap < -1 {
			return fmt.Errorf("c2mn: WithWindowing: bad window/overlap (%d/%d)", window, overlap)
		}
		e.window, e.overlap = window, overlap
		return nil
	}
}

// WithInferOptions routes every sequence the Engine annotates — batch
// and streaming alike — through inference tuned by opts instead of the
// defaults.
func WithInferOptions(opts AnnotateOptions) Option {
	return func(e *Engine) error {
		if err := opts.validate(); err != nil {
			return err
		}
		e.infer = opts
		return nil
	}
}

// WithOnSequence registers a callback invoked with every ms-sequence
// the streaming pipeline emits, after it has been added to the live
// store. The callback runs on the goroutine that completed the
// sequence (the Feed or Flush caller); it must not call back into the
// Engine's ingestion methods.
func WithOnSequence(fn func(MSSequence)) Option {
	return func(e *Engine) error {
		e.onSeq = fn
		return nil
	}
}

// WithRetention keeps only m-semantics that ended within the trailing
// `seconds` of stream time in the Engine's live store, turning the
// top-k queries into sliding-window queries. seconds <= 0 (the
// default) retains everything.
func WithRetention(seconds float64) Option {
	return func(e *Engine) error {
		e.retention = seconds
		return nil
	}
}
