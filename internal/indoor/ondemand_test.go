package indoor

import (
	"math"
	"math/rand"
	"testing"
)

func TestMIWDOnDemandMatchesMatrix(t *testing.T) {
	s, _, _ := buildTestSpace(t)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 300; i++ {
		floorA, floorB := rng.Intn(2), rng.Intn(2)
		a := Loc(rng.Float64()*40, rng.Float64()*14, floorA)
		b := Loc(rng.Float64()*40, rng.Float64()*14, floorB)
		got := s.MIWDOnDemand(a, b)
		want := s.MIWD(a, b)
		if math.Abs(got-want) > 1e-4 {
			t.Fatalf("MIWDOnDemand(%v,%v) = %v, matrix MIWD = %v", a, b, got, want)
		}
	}
}

func TestMIWDOnDemandFallbacks(t *testing.T) {
	s, _, _ := buildTestSpace(t)
	outside := Loc(-10, -10, 0)
	in := Loc(5, 9, 0)
	if got, want := s.MIWDOnDemand(outside, in), outside.Dist(in); math.Abs(got-want) > 1e-9 {
		t.Errorf("outside fallback = %v, want %v", got, want)
	}
	// Same partition: straight line.
	a, b := Loc(2, 6, 0), Loc(8, 12, 0)
	if got, want := s.MIWDOnDemand(a, b), a.Point().Dist(b.Point()); math.Abs(got-want) > 1e-9 {
		t.Errorf("same-partition = %v, want %v", got, want)
	}
}

func TestDistanceMatrixBytes(t *testing.T) {
	s, _, _ := buildTestSpace(t)
	// 7 doors → 14 sides → 14x14 float32 entries.
	if got, want := s.DistanceMatrixBytes(), 14*14*4; got != want {
		t.Errorf("DistanceMatrixBytes = %d, want %d", got, want)
	}
}
