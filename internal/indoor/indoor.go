// Package indoor models indoor venues: multi-floor buildings
// decomposed into partitions (rooms, hallway cells) connected by doors
// and staircases, with semantic regions defined over partitions.
//
// It provides the spatial substrate of the C2MN annotation model:
//   - point → partition / region lookup backed by per-floor R-trees,
//   - uncertainty-disk ∩ region overlap ratios (feature fsm),
//   - minimum indoor walking distances (MIWD, Lu et al. [17]) over the
//     accessibility door graph with a precomputed door-to-door matrix,
//   - expected region-to-region indoor distances (features fst, fsc).
package indoor

import (
	"fmt"
	"math"
	"sync"

	"c2mn/internal/geom"
	"c2mn/internal/rtree"
)

// FloorHeight is the vertical distance, in meters, between consecutive
// floors. It is used when computing straight-line distances between
// locations on different floors.
const FloorHeight = 4.0

// PartitionID identifies a partition within a Space.
type PartitionID int

// DoorID identifies a door within a Space.
type DoorID int

// RegionID identifies a semantic region within a Space.
type RegionID int

// Sentinel IDs for "not found".
const (
	NoPartition PartitionID = -1
	NoRegion    RegionID    = -1
	NoDoor      DoorID      = -1
)

// Location is an indoor position: a planar point plus a floor number.
type Location struct {
	X, Y  float64
	Floor int
}

// Loc is shorthand for Location{x, y, floor}.
func Loc(x, y float64, floor int) Location { return Location{x, y, floor} }

// Point returns the planar component of the location.
func (l Location) Point() geom.Point { return geom.Pt(l.X, l.Y) }

// Dist returns the straight-line distance to m, counting FloorHeight
// per floor of separation.
func (l Location) Dist(m Location) float64 {
	dz := float64(l.Floor-m.Floor) * FloorHeight
	return math.Sqrt((l.X-m.X)*(l.X-m.X) + (l.Y-m.Y)*(l.Y-m.Y) + dz*dz)
}

func (l Location) String() string {
	return fmt.Sprintf("(%.2f,%.2f,F%d)", l.X, l.Y, l.Floor)
}

// Partition is an indoor cell (room, hallway segment) bounded by walls
// and doors. Partitions do not overlap within a floor.
type Partition struct {
	ID     PartitionID
	Floor  int
	Poly   geom.Polygon
	Region RegionID // NoRegion when the partition carries no semantics
	Doors  []DoorID

	area     float64
	centroid geom.Point
}

// Area returns the partition's floor area.
func (p *Partition) Area() float64 { return p.area }

// Centroid returns the partition's area centroid as a Location.
func (p *Partition) Centroid() Location {
	return Location{p.centroid.X, p.centroid.Y, p.Floor}
}

// Door connects two partitions. A staircase door connects partitions on
// different floors; its location carries the floor of partition A.
type Door struct {
	ID   DoorID
	At   geom.Point
	A, B PartitionID
	// Stair is true when the door connects partitions on different
	// floors.
	Stair bool
}

// Region is a semantic region: a named, non-overlapping group of
// partitions (e.g. a shop in a mall).
type Region struct {
	ID         RegionID
	Name       string
	Partitions []PartitionID

	area float64
}

// Area returns the total area of the region's partitions.
func (r *Region) Area() float64 { return r.area }

// Space is an immutable indoor venue built by a Builder.
type Space struct {
	partitions []Partition
	doors      []Door
	regions    []Region

	floors     []int               // sorted distinct floor numbers
	floorTrees map[int]*rtree.Tree // partition index per floor
	doorAdj    [][]doorEdge        // accessibility graph between doors
	d2d        [][]float32         // door-to-door walking distance
	regionDist [][]float64         // expected region-to-region MIWD

	// Lazily built geometry caches, keyed by uncertainty radius. Pure
	// memoization of derived geometry; the space itself stays immutable.
	cacheMu sync.Mutex
	caches  map[float64]*SpaceCache
}

type doorEdge struct {
	to int // door-side node index
	w  float64
}

// NumPartitions returns the number of partitions.
func (s *Space) NumPartitions() int { return len(s.partitions) }

// NumDoors returns the number of doors.
func (s *Space) NumDoors() int { return len(s.doors) }

// NumRegions returns the number of semantic regions.
func (s *Space) NumRegions() int { return len(s.regions) }

// Floors returns the sorted list of floor numbers present.
func (s *Space) Floors() []int { return s.floors }

// Partition returns the partition with the given ID.
func (s *Space) Partition(id PartitionID) *Partition { return &s.partitions[id] }

// Door returns the door with the given ID.
func (s *Space) Door(id DoorID) *Door { return &s.doors[id] }

// Region returns the region with the given ID.
func (s *Space) Region(id RegionID) *Region { return &s.regions[id] }

// Regions returns all region IDs in order.
func (s *Space) Regions() []RegionID {
	ids := make([]RegionID, len(s.regions))
	for i := range ids {
		ids[i] = RegionID(i)
	}
	return ids
}

// PartitionAt returns the partition containing l, or NoPartition.
func (s *Space) PartitionAt(l Location) PartitionID {
	tree, ok := s.floorTrees[l.Floor]
	if !ok {
		return NoPartition
	}
	p := l.Point()
	ids := tree.Search(geom.Rect{Min: p, Max: p}, nil)
	for _, id := range ids {
		if s.partitions[id].Poly.Contains(p) {
			return PartitionID(id)
		}
	}
	return NoPartition
}

// RegionAt returns the semantic region containing l, or NoRegion.
func (s *Space) RegionAt(l Location) RegionID {
	pid := s.PartitionAt(l)
	if pid == NoPartition {
		return NoRegion
	}
	return s.partitions[pid].Region
}

// NearestRegion returns the semantic region nearest to l on l's floor
// (the containing region when l falls inside one), or NoRegion when the
// floor has no regions.
func (s *Space) NearestRegion(l Location) RegionID {
	tree, ok := s.floorTrees[l.Floor]
	if !ok {
		return NoRegion
	}
	// Expand k until a region-bearing partition appears.
	for k := 8; ; k *= 4 {
		nbs := tree.Nearest(l.Point(), k)
		for _, nb := range nbs {
			if r := s.partitions[nb.ID].Region; r != NoRegion {
				return r
			}
		}
		if len(nbs) < k {
			return NoRegion
		}
	}
}

// CandidateRegions appends the IDs of semantic regions whose area
// overlaps the uncertainty disk UR(l, v), in increasing region-ID
// order without duplicates. When no region overlaps, the nearest
// region is used as a fallback so that every record has at least one
// candidate label.
func (s *Space) CandidateRegions(l Location, v float64, dst []RegionID) []RegionID {
	dst, _ = s.CandidateRegionsScratch(l, v, dst, nil)
	return dst
}

// CandidateRegionsScratch is CandidateRegions drawing the R-tree
// search buffer from ids, which is grown as needed and returned for
// reuse — per-record candidate lookup without per-call allocation.
func (s *Space) CandidateRegionsScratch(l Location, v float64, dst []RegionID, ids []int) ([]RegionID, []int) {
	tree, ok := s.floorTrees[l.Floor]
	if !ok {
		return dst, ids
	}
	start := len(dst)
	circle := geom.Circle{C: l.Point(), R: v}
	ids = tree.SearchCircle(circle.C, circle.R, ids[:0])
	for _, id := range ids {
		part := &s.partitions[id]
		if part.Region == NoRegion || regionsContain(dst[start:], part.Region) {
			continue
		}
		if circle.IntersectsPolygon(part.Poly) {
			dst = append(dst, part.Region)
		}
	}
	if len(dst) == start {
		if r := s.NearestRegion(l); r != NoRegion {
			dst = append(dst, r)
		}
		return dst, ids
	}
	// Keep deterministic order.
	sub := dst[start:]
	for i := 1; i < len(sub); i++ {
		for j := i; j > 0 && sub[j] < sub[j-1]; j-- {
			sub[j], sub[j-1] = sub[j-1], sub[j]
		}
	}
	return dst, ids
}

// regionsContain reports whether rs holds r; candidate sets are small,
// so a linear scan beats a map and allocates nothing.
func regionsContain(rs []RegionID, r RegionID) bool {
	for _, x := range rs {
		if x == r {
			return true
		}
	}
	return false
}

// UncertaintyOverlap returns area(UR(l,v) ∩ region) / area(UR(l,v)),
// the spatial matching feature fsm of the paper (Eq. 3). Regions on a
// different floor overlap nothing.
func (s *Space) UncertaintyOverlap(l Location, v float64, region RegionID) float64 {
	if region == NoRegion || v <= 0 {
		return 0
	}
	circle := geom.Circle{C: l.Point(), R: v}
	total := 0.0
	for _, pid := range s.regions[region].Partitions {
		part := &s.partitions[pid]
		if part.Floor != l.Floor {
			continue
		}
		total += circle.IntersectArea(part.Poly)
	}
	return geom.Clamp(total/circle.Area(), 0, 1)
}

// Bounds returns the planar bounding rectangle over all partitions.
func (s *Space) Bounds() geom.Rect {
	var r geom.Rect
	first := true
	for i := range s.partitions {
		b := s.partitions[i].Poly.Bounds()
		if first {
			r, first = b, false
		} else {
			r = r.Union(b)
		}
	}
	return r
}

// Stats summarises the space, mirroring the venue statistics the paper
// reports in §V-B1 and §V-C.
type Stats struct {
	Floors     int
	Partitions int
	Doors      int
	Stairs     int
	Regions    int
	TotalArea  float64
}

// Stats returns summary statistics of the space.
func (s *Space) Stats() Stats {
	st := Stats{
		Floors:     len(s.floors),
		Partitions: len(s.partitions),
		Doors:      len(s.doors),
		Regions:    len(s.regions),
	}
	for i := range s.doors {
		if s.doors[i].Stair {
			st.Stairs++
		}
	}
	for i := range s.partitions {
		st.TotalArea += s.partitions[i].area
	}
	return st
}
