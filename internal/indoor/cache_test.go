package indoor

import (
	"fmt"
	"math/rand"
	"testing"

	"c2mn/internal/geom"
)

// randomGridSpace builds a randomized venue: a gx×gy grid of rooms per
// floor, rooms randomly grouped into regions (some left semantics-free),
// adjacent rooms randomly connected by doors plus one staircase per
// extra floor.
func randomGridSpace(t *testing.T, rng *rand.Rand, floors, gx, gy int, roomW float64) *Space {
	t.Helper()
	b := NewBuilder()
	part := make([][]PartitionID, floors)
	for f := 0; f < floors; f++ {
		part[f] = make([]PartitionID, gx*gy)
		for y := 0; y < gy; y++ {
			for x := 0; x < gx; x++ {
				x0, y0 := float64(x)*roomW, float64(y)*roomW
				part[f][y*gx+x] = b.AddPartition(f, geom.RectPoly(
					geom.Pt(x0, y0), geom.Pt(x0+roomW, y0+roomW)))
			}
		}
		// Doors between horizontally and vertically adjacent rooms.
		for y := 0; y < gy; y++ {
			for x := 0; x < gx; x++ {
				if x+1 < gx && rng.Float64() < 0.8 {
					b.AddDoor(geom.Pt(float64(x+1)*roomW, (float64(y)+0.5)*roomW),
						part[f][y*gx+x], part[f][y*gx+x+1])
				}
				if y+1 < gy && rng.Float64() < 0.8 {
					b.AddDoor(geom.Pt((float64(x)+0.5)*roomW, float64(y+1)*roomW),
						part[f][y*gx+x], part[f][(y+1)*gx+x])
				}
			}
		}
		if f > 0 {
			b.AddDoor(geom.Pt(0.5*roomW, 0.5*roomW), part[f-1][0], part[f][0])
		}
	}
	// Random regions: contiguous room pairs or singles; ~20% of rooms
	// stay region-free (hallways).
	for f := 0; f < floors; f++ {
		for i := 0; i < gx*gy; i++ {
			if rng.Float64() < 0.2 {
				continue
			}
			b.AddRegion(fmt.Sprintf("r%d_%d", f, i), part[f][i])
		}
	}
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestGeometryCacheCandidatesExact pins the tentpole exactness claim at
// the indoor layer: for random venues, radii and query points — inside
// rooms, on walls, outside the building, on unknown floors — the
// grid-cached candidate lookup returns a slice identical to the R-tree
// path.
func TestGeometryCacheCandidatesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		floors := 1 + trial%3
		s := randomGridSpace(t, rng, floors, 3+rng.Intn(4), 3+rng.Intn(3), 4+6*rng.Float64())
		v := 1 + 14*rng.Float64()
		cache := s.GeometryCache(v)
		if cache == nil || cache.V != v {
			t.Fatalf("trial %d: no cache for v=%g", trial, v)
		}
		bounds := s.Bounds().Expand(2 * v)
		for q := 0; q < 300; q++ {
			l := Location{
				X:     bounds.Min.X + rng.Float64()*(bounds.Max.X-bounds.Min.X),
				Y:     bounds.Min.Y + rng.Float64()*(bounds.Max.Y-bounds.Min.Y),
				Floor: rng.Intn(floors + 1), // sometimes an unknown floor
			}
			want := s.CandidateRegions(l, v, nil)
			got := cache.CandidateRegions(l, nil)
			if len(want) != len(got) {
				t.Fatalf("trial %d query %d at %v: cache %v, tree %v", trial, q, l, got, want)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("trial %d query %d at %v: cache %v, tree %v", trial, q, l, got, want)
				}
			}
		}
	}
}

// TestGeometryCacheMemoized checks the per-radius memoization and the
// precomputed centroid table.
func TestGeometryCacheMemoized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randomGridSpace(t, rng, 2, 4, 3, 6)
	c1 := s.GeometryCache(5)
	c2 := s.GeometryCache(5)
	if c1 != c2 {
		t.Fatal("same radius should return the memoized cache")
	}
	if c3 := s.GeometryCache(7); c3 == c1 {
		t.Fatal("different radius must build a different cache")
	}
	if s.GeometryCache(0) != nil || s.GeometryCache(-1) != nil {
		t.Fatal("non-positive radius must not build a cache")
	}
	for r := 0; r < s.NumRegions(); r++ {
		want := s.RegionCentroid(RegionID(r))
		if got := c1.RegionCentroid(RegionID(r)); got != want {
			t.Fatalf("region %d centroid: cache %v, space %v", r, got, want)
		}
	}
}

// TestRegionAdjacency checks the door-derived adjacency on a venue
// where the expected neighbours are known by construction.
func TestRegionAdjacency(t *testing.T) {
	b := NewBuilder()
	p0 := b.AddPartition(0, geom.RectPoly(geom.Pt(0, 0), geom.Pt(5, 5)))
	p1 := b.AddPartition(0, geom.RectPoly(geom.Pt(5, 0), geom.Pt(10, 5)))
	p2 := b.AddPartition(0, geom.RectPoly(geom.Pt(10, 0), geom.Pt(15, 5)))
	b.AddDoor(geom.Pt(5, 2.5), p0, p1)
	b.AddDoor(geom.Pt(10, 2.5), p1, p2)
	r0 := b.AddRegion("a", p0)
	r1 := b.AddRegion("b", p1)
	r2 := b.AddRegion("c", p2)
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	adj := s.GeometryCache(3).RegionAdjacency()
	check := func(r RegionID, want ...RegionID) {
		t.Helper()
		got := adj[r]
		if len(got) != len(want) {
			t.Fatalf("region %d adjacency %v, want %v", r, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("region %d adjacency %v, want %v", r, got, want)
			}
		}
	}
	check(r0, r1)
	check(r1, r0, r2)
	check(r2, r1)
}
