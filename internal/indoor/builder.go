package indoor

import (
	"fmt"
	"sort"

	"c2mn/internal/geom"
	"c2mn/internal/rtree"
)

// Builder accumulates partitions, doors and regions and assembles an
// immutable Space. The zero Builder is not usable; create one with
// NewBuilder.
type Builder struct {
	partitions []Partition
	doors      []Door
	regions    []Region
	err        error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// AddPartition registers a partition on the given floor and returns its
// ID. The polygon must be a valid simple polygon.
func (b *Builder) AddPartition(floor int, poly geom.Polygon) PartitionID {
	id := PartitionID(len(b.partitions))
	if err := poly.Validate(); err != nil && b.err == nil {
		b.err = fmt.Errorf("partition %d: %w", id, err)
	}
	own := make(geom.Polygon, len(poly))
	copy(own, poly)
	b.partitions = append(b.partitions, Partition{
		ID:       id,
		Floor:    floor,
		Poly:     own,
		Region:   NoRegion,
		area:     own.Area(),
		centroid: own.Centroid(),
	})
	return id
}

// AddDoor registers a door at the planar point at connecting partitions
// pa and pb, and returns its ID. A door between partitions on different
// floors is marked as a staircase.
func (b *Builder) AddDoor(at geom.Point, pa, pb PartitionID) DoorID {
	id := DoorID(len(b.doors))
	if b.err == nil {
		if !b.validPartition(pa) || !b.validPartition(pb) {
			b.err = fmt.Errorf("door %d: unknown partition (%d,%d)", id, pa, pb)
		} else if pa == pb {
			b.err = fmt.Errorf("door %d: connects partition %d to itself", id, pa)
		}
	}
	stair := false
	if b.validPartition(pa) && b.validPartition(pb) {
		stair = b.partitions[pa].Floor != b.partitions[pb].Floor
	}
	b.doors = append(b.doors, Door{ID: id, At: at, A: pa, B: pb, Stair: stair})
	return id
}

// AddRegion registers a semantic region over the given partitions and
// returns its ID. A partition may belong to at most one region.
func (b *Builder) AddRegion(name string, parts ...PartitionID) RegionID {
	id := RegionID(len(b.regions))
	area := 0.0
	for _, pid := range parts {
		if !b.validPartition(pid) {
			if b.err == nil {
				b.err = fmt.Errorf("region %q: unknown partition %d", name, pid)
			}
			continue
		}
		if r := b.partitions[pid].Region; r != NoRegion && b.err == nil {
			b.err = fmt.Errorf("region %q: partition %d already in region %d", name, pid, r)
		}
		b.partitions[pid].Region = id
		area += b.partitions[pid].area
	}
	own := make([]PartitionID, len(parts))
	copy(own, parts)
	b.regions = append(b.regions, Region{ID: id, Name: name, Partitions: own, area: area})
	return id
}

func (b *Builder) validPartition(id PartitionID) bool {
	return id >= 0 && int(id) < len(b.partitions)
}

// Build validates the accumulated definitions, computes the spatial
// indexes and distance matrices, and returns the finished Space.
func (b *Builder) Build() (*Space, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.partitions) == 0 {
		return nil, fmt.Errorf("indoor: space has no partitions")
	}
	s := &Space{
		partitions: b.partitions,
		doors:      b.doors,
		regions:    b.regions,
	}
	// Attach doors to partitions.
	for i := range s.doors {
		d := &s.doors[i]
		s.partitions[d.A].Doors = append(s.partitions[d.A].Doors, d.ID)
		s.partitions[d.B].Doors = append(s.partitions[d.B].Doors, d.ID)
	}
	// Distinct floors and per-floor R-trees.
	floorSet := map[int]bool{}
	for i := range s.partitions {
		floorSet[s.partitions[i].Floor] = true
	}
	for f := range floorSet {
		s.floors = append(s.floors, f)
	}
	sort.Ints(s.floors)
	s.floorTrees = make(map[int]*rtree.Tree, len(s.floors))
	for _, f := range s.floors {
		var entries []rtree.Entry
		for i := range s.partitions {
			if s.partitions[i].Floor == f {
				entries = append(entries, rtree.Entry{Rect: s.partitions[i].Poly.Bounds(), ID: i})
			}
		}
		s.floorTrees[f] = rtree.New(entries)
	}
	s.buildDoorGraph()
	s.computeDoorDistances()
	s.computeRegionDistances()
	return s, nil
}

// buildDoorGraph constructs the accessibility graph over door *sides*:
// each door contributes two nodes, one per connected partition. Within
// a partition, the sides facing it are linked with their straight-line
// distance (partitions are convex by construction, so the straight
// line stays inside). The two sides of one door are linked with the
// crossing cost: zero for an ordinary door, StairLength for a
// staircase.
func (s *Space) buildDoorGraph() {
	s.doorAdj = make([][]doorEdge, 2*len(s.doors))
	for i := range s.partitions {
		pid := PartitionID(i)
		doors := s.partitions[i].Doors
		for a := 0; a < len(doors); a++ {
			for bi := a + 1; bi < len(doors); bi++ {
				na := s.doorSide(doors[a], pid)
				nb := s.doorSide(doors[bi], pid)
				w := s.doors[doors[a]].At.Dist(s.doors[doors[bi]].At)
				s.doorAdj[na] = append(s.doorAdj[na], doorEdge{nb, w})
				s.doorAdj[nb] = append(s.doorAdj[nb], doorEdge{na, w})
			}
		}
	}
	for i := range s.doors {
		w := 0.0
		if s.doors[i].Stair {
			w = StairLength
		}
		s.doorAdj[2*i] = append(s.doorAdj[2*i], doorEdge{2*i + 1, w})
		s.doorAdj[2*i+1] = append(s.doorAdj[2*i+1], doorEdge{2 * i, w})
	}
}

// doorSide returns the graph node for door d's side facing partition p.
func (s *Space) doorSide(d DoorID, p PartitionID) int {
	if s.doors[d].A == p {
		return int(2 * d)
	}
	return int(2*d + 1)
}
