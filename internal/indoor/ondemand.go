package indoor

import (
	"container/heap"
	"math"
)

// MIWDOnDemand computes the same minimum indoor walking distance as
// MIWD but without consulting the precomputed door-to-door matrix: it
// runs a fresh multi-source Dijkstra from the source partition's door
// sides at query time. The paper precomputes the matrix to "speed up
// computations on MIWD" (§V-B1) at a large memory cost (990.8 MB for
// its venue); this method is the memory-free alternative that the
// distance-matrix ablation bench compares against.
func (s *Space) MIWDOnDemand(a, b Location) float64 {
	pa, pb := s.PartitionAt(a), s.PartitionAt(b)
	if pa == NoPartition || pb == NoPartition {
		return a.Dist(b)
	}
	if pa == pb {
		return a.Point().Dist(b.Point())
	}
	// Multi-source Dijkstra over door sides, seeded with the walk from
	// a to each door of its partition.
	n := 2 * len(s.doors)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	pq := &doorHeap{}
	heap.Init(pq)
	for _, da := range s.partitions[pa].Doors {
		side := s.doorSide(da, pa)
		d := a.Point().Dist(s.doors[da].At)
		if d < dist[side] {
			dist[side] = d
			heap.Push(pq, doorDist{door: side, dist: d})
		}
	}
	// Early exit once every target door side is settled.
	targets := map[int]bool{}
	for _, db := range s.partitions[pb].Doors {
		targets[s.doorSide(db, pb)] = true
	}
	remaining := len(targets)
	for pq.Len() > 0 && remaining > 0 {
		it := heap.Pop(pq).(doorDist)
		if it.dist > dist[it.door] {
			continue
		}
		if targets[it.door] {
			targets[it.door] = false
			remaining--
		}
		for _, e := range s.doorAdj[it.door] {
			nd := it.dist + e.w
			if nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(pq, doorDist{door: e.to, dist: nd})
			}
		}
	}
	best := math.Inf(1)
	for _, db := range s.partitions[pb].Doors {
		side := s.doorSide(db, pb)
		if d := dist[side] + s.doors[db].At.Dist(b.Point()); d < best {
			best = d
		}
	}
	if math.IsInf(best, 1) {
		return a.Dist(b)
	}
	return best
}

// DistanceMatrixBytes reports the memory footprint of the precomputed
// door-to-door matrix, mirroring the paper's 990.8 MB statistic.
func (s *Space) DistanceMatrixBytes() int {
	total := 0
	for _, row := range s.d2d {
		total += 4 * len(row)
	}
	return total
}
