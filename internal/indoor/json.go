package indoor

import (
	"encoding/json"
	"fmt"
	"io"

	"c2mn/internal/geom"
)

// jsonSpace is the portable on-disk schema of a Space. Derived data
// (indexes, distance matrices) is rebuilt on load.
type jsonSpace struct {
	Partitions []jsonPartition `json:"partitions"`
	Doors      []jsonDoor      `json:"doors"`
	Regions    []jsonRegion    `json:"regions"`
}

type jsonPartition struct {
	Floor int          `json:"floor"`
	Poly  [][2]float64 `json:"poly"`
}

type jsonDoor struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	A int     `json:"a"`
	B int     `json:"b"`
}

type jsonRegion struct {
	Name       string `json:"name"`
	Partitions []int  `json:"partitions"`
}

// WriteJSON serialises the space to w. The output contains only the
// source definitions; spatial indexes and distance matrices are
// recomputed by ReadJSON.
func (s *Space) WriteJSON(w io.Writer) error {
	js := jsonSpace{}
	for i := range s.partitions {
		p := &s.partitions[i]
		jp := jsonPartition{Floor: p.Floor}
		for _, v := range p.Poly {
			jp.Poly = append(jp.Poly, [2]float64{v.X, v.Y})
		}
		js.Partitions = append(js.Partitions, jp)
	}
	for i := range s.doors {
		d := &s.doors[i]
		js.Doors = append(js.Doors, jsonDoor{X: d.At.X, Y: d.At.Y, A: int(d.A), B: int(d.B)})
	}
	for i := range s.regions {
		r := &s.regions[i]
		jr := jsonRegion{Name: r.Name}
		for _, pid := range r.Partitions {
			jr.Partitions = append(jr.Partitions, int(pid))
		}
		js.Regions = append(js.Regions, jr)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(js)
}

// ReadJSON deserialises a space written by WriteJSON, rebuilding all
// derived structures.
func ReadJSON(r io.Reader) (*Space, error) {
	var js jsonSpace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&js); err != nil {
		return nil, fmt.Errorf("indoor: decoding space: %w", err)
	}
	b := NewBuilder()
	for _, jp := range js.Partitions {
		poly := make(geom.Polygon, len(jp.Poly))
		for i, v := range jp.Poly {
			poly[i] = geom.Pt(v[0], v[1])
		}
		b.AddPartition(jp.Floor, poly)
	}
	for _, jd := range js.Doors {
		b.AddDoor(geom.Pt(jd.X, jd.Y), PartitionID(jd.A), PartitionID(jd.B))
	}
	for _, jr := range js.Regions {
		parts := make([]PartitionID, len(jr.Partitions))
		for i, p := range jr.Partitions {
			parts[i] = PartitionID(p)
		}
		b.AddRegion(jr.Name, parts...)
	}
	return b.Build()
}
