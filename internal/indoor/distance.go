package indoor

import (
	"container/heap"
	"math"
)

// meanIntraFactor approximates the expected distance between two
// uniform points inside a compact region of area A as
// meanIntraFactor * sqrt(A) (the exact constant for a square is
// ≈ 0.5214).
const meanIntraFactor = 0.5214

// StairLength is the walking distance attributed to traversing one
// staircase between adjacent floors (slope length, not just the
// vertical rise).
const StairLength = 1.5 * FloorHeight

// computeDoorDistances runs Dijkstra from every door side over the
// accessibility graph and stores the full side-to-side walking
// distance matrix (the paper precomputes shortest indoor distances
// between doors to speed up MIWD computations, §V-B1).
func (s *Space) computeDoorDistances() {
	n := 2 * len(s.doors)
	s.d2d = make([][]float32, n)
	for src := 0; src < n; src++ {
		s.d2d[src] = s.dijkstraFrom(src)
	}
}

func (s *Space) dijkstraFrom(src int) []float32 {
	n := 2 * len(s.doors)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &doorHeap{{door: src, dist: 0}}
	heap.Init(pq)
	for pq.Len() > 0 {
		it := heap.Pop(pq).(doorDist)
		if it.dist > dist[it.door] {
			continue
		}
		for _, e := range s.doorAdj[it.door] {
			nd := it.dist + e.w
			if nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(pq, doorDist{door: e.to, dist: nd})
			}
		}
	}
	out := make([]float32, n)
	for i, d := range dist {
		out[i] = float32(d)
	}
	return out
}

type doorDist struct {
	door int // door-side node index
	dist float64
}

type doorHeap []doorDist

func (h doorHeap) Len() int            { return len(h) }
func (h doorHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h doorHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *doorHeap) Push(x interface{}) { *h = append(*h, x.(doorDist)) }
func (h *doorHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// MIWD returns the minimum indoor walking distance between two
// locations: straight-line within a partition, otherwise the best
// door-to-door route. Locations outside any partition, or in mutually
// unreachable partitions, fall back to the straight-line distance.
func (s *Space) MIWD(a, b Location) float64 {
	pa, pb := s.PartitionAt(a), s.PartitionAt(b)
	if pa == NoPartition || pb == NoPartition {
		return a.Dist(b)
	}
	return s.miwdBetween(a, pa, b, pb)
}

func (s *Space) miwdBetween(a Location, pa PartitionID, b Location, pb PartitionID) float64 {
	if pa == pb {
		return a.Point().Dist(b.Point())
	}
	best := math.Inf(1)
	for _, da := range s.partitions[pa].Doors {
		enter := a.Point().Dist(s.doors[da].At)
		sideA := s.doorSide(da, pa)
		for _, db := range s.partitions[pb].Doors {
			through := float64(s.d2d[sideA][s.doorSide(db, pb)])
			if math.IsInf(through, 1) {
				continue
			}
			d := enter + through + s.doors[db].At.Dist(b.Point())
			if d < best {
				best = d
			}
		}
	}
	if math.IsInf(best, 1) {
		return a.Dist(b)
	}
	return best
}

// computeRegionDistances precomputes the expected MIWD between every
// pair of semantic regions: E[dI(p,q)] for p uniform in region i and q
// uniform in region j. The expectation is approximated by the
// area-weighted average of partition-centroid MIWDs; the intra-region
// distance uses the uniform-square expectation meanIntraFactor·√area.
func (s *Space) computeRegionDistances() {
	n := len(s.regions)
	s.regionDist = make([][]float64, n)
	for i := range s.regionDist {
		s.regionDist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		s.regionDist[i][i] = meanIntraFactor * math.Sqrt(s.regions[i].area)
		for j := i + 1; j < n; j++ {
			d := s.expectedRegionDist(RegionID(i), RegionID(j))
			s.regionDist[i][j] = d
			s.regionDist[j][i] = d
		}
	}
}

func (s *Space) expectedRegionDist(ri, rj RegionID) float64 {
	var sum, wsum float64
	for _, pa := range s.regions[ri].Partitions {
		for _, pb := range s.regions[rj].Partitions {
			a, b := &s.partitions[pa], &s.partitions[pb]
			w := a.area * b.area
			d := s.miwdBetween(a.Centroid(), pa, b.Centroid(), pb)
			sum += w * d
			wsum += w
		}
	}
	if wsum == 0 {
		return math.Inf(1)
	}
	return sum / wsum
}

// RegionDist returns the precomputed expected indoor walking distance
// E[dI(p∈ri, q∈rj)] used by the space transition (fst) and spatial
// consistency (fsc) features. The intra-region distance RegionDist(r,r)
// is small but non-zero.
func (s *Space) RegionDist(ri, rj RegionID) float64 {
	if ri == NoRegion || rj == NoRegion {
		return math.Inf(1)
	}
	return s.regionDist[ri][rj]
}

// RegionCentroid returns the area-weighted centroid of a region; its
// floor is the floor of the region's largest partition.
func (s *Space) RegionCentroid(r RegionID) Location {
	reg := &s.regions[r]
	var cx, cy, wsum, maxA float64
	floor := 0
	for _, pid := range reg.Partitions {
		p := &s.partitions[pid]
		cx += p.centroid.X * p.area
		cy += p.centroid.Y * p.area
		wsum += p.area
		if p.area > maxA {
			maxA = p.area
			floor = p.Floor
		}
	}
	if wsum == 0 {
		return Location{Floor: floor}
	}
	return Location{cx / wsum, cy / wsum, floor}
}
