package indoor

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"c2mn/internal/geom"
)

// buildTestSpace constructs a small two-floor venue:
//
//	floor 0:  hallway (0,0)-(40,4); rooms A,B,C,D of 10x10 above it,
//	          each with a door to the hallway; C and D connected
//	          directly; regions rA={A}, rB={B}, rCD={C,D}.
//	floor 1:  hallway (0,0)-(40,4); room E (0,4)-(20,14); region rE={E};
//	          a staircase connects the two hallways at (39,2).
func buildTestSpace(t *testing.T) (*Space, map[string]PartitionID, map[string]RegionID) {
	t.Helper()
	b := NewBuilder()
	parts := map[string]PartitionID{}
	parts["hall0"] = b.AddPartition(0, geom.RectPoly(geom.Pt(0, 0), geom.Pt(40, 4)))
	parts["A"] = b.AddPartition(0, geom.RectPoly(geom.Pt(0, 4), geom.Pt(10, 14)))
	parts["B"] = b.AddPartition(0, geom.RectPoly(geom.Pt(10, 4), geom.Pt(20, 14)))
	parts["C"] = b.AddPartition(0, geom.RectPoly(geom.Pt(20, 4), geom.Pt(30, 14)))
	parts["D"] = b.AddPartition(0, geom.RectPoly(geom.Pt(30, 4), geom.Pt(40, 14)))
	parts["hall1"] = b.AddPartition(1, geom.RectPoly(geom.Pt(0, 0), geom.Pt(40, 4)))
	parts["E"] = b.AddPartition(1, geom.RectPoly(geom.Pt(0, 4), geom.Pt(20, 14)))

	b.AddDoor(geom.Pt(5, 4), parts["hall0"], parts["A"])
	b.AddDoor(geom.Pt(15, 4), parts["hall0"], parts["B"])
	b.AddDoor(geom.Pt(25, 4), parts["hall0"], parts["C"])
	b.AddDoor(geom.Pt(35, 4), parts["hall0"], parts["D"])
	b.AddDoor(geom.Pt(30, 9), parts["C"], parts["D"])
	b.AddDoor(geom.Pt(10, 4), parts["hall1"], parts["E"])
	b.AddDoor(geom.Pt(39, 2), parts["hall0"], parts["hall1"])

	regions := map[string]RegionID{}
	regions["rA"] = b.AddRegion("rA", parts["A"])
	regions["rB"] = b.AddRegion("rB", parts["B"])
	regions["rCD"] = b.AddRegion("rCD", parts["C"], parts["D"])
	regions["rE"] = b.AddRegion("rE", parts["E"])

	s, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return s, parts, regions
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	if _, err := b.Build(); err == nil {
		t.Errorf("empty space should fail")
	}

	b = NewBuilder()
	b.AddPartition(0, geom.Polygon{geom.Pt(0, 0), geom.Pt(1, 1)})
	if _, err := b.Build(); err == nil {
		t.Errorf("degenerate polygon should fail")
	}

	b = NewBuilder()
	p := b.AddPartition(0, geom.RectPoly(geom.Pt(0, 0), geom.Pt(1, 1)))
	b.AddDoor(geom.Pt(0, 0), p, PartitionID(99))
	if _, err := b.Build(); err == nil {
		t.Errorf("door to unknown partition should fail")
	}

	b = NewBuilder()
	p = b.AddPartition(0, geom.RectPoly(geom.Pt(0, 0), geom.Pt(1, 1)))
	b.AddDoor(geom.Pt(0, 0), p, p)
	if _, err := b.Build(); err == nil {
		t.Errorf("self door should fail")
	}

	b = NewBuilder()
	p = b.AddPartition(0, geom.RectPoly(geom.Pt(0, 0), geom.Pt(1, 1)))
	b.AddRegion("r1", p)
	b.AddRegion("r2", p)
	if _, err := b.Build(); err == nil {
		t.Errorf("partition in two regions should fail")
	}
}

func TestLocationDist(t *testing.T) {
	a, b := Loc(0, 0, 0), Loc(3, 4, 0)
	if got := a.Dist(b); math.Abs(got-5) > 1e-12 {
		t.Errorf("planar Dist = %v", got)
	}
	c := Loc(0, 0, 1)
	if got := a.Dist(c); math.Abs(got-FloorHeight) > 1e-12 {
		t.Errorf("vertical Dist = %v", got)
	}
}

func TestPartitionAndRegionLookup(t *testing.T) {
	s, parts, regions := buildTestSpace(t)
	cases := []struct {
		l    Location
		part PartitionID
		reg  RegionID
	}{
		{Loc(5, 9, 0), parts["A"], regions["rA"]},
		{Loc(15, 9, 0), parts["B"], regions["rB"]},
		{Loc(25, 9, 0), parts["C"], regions["rCD"]},
		{Loc(35, 9, 0), parts["D"], regions["rCD"]},
		{Loc(20, 2, 0), parts["hall0"], NoRegion},
		{Loc(5, 9, 1), parts["E"], regions["rE"]},
		{Loc(100, 100, 0), NoPartition, NoRegion},
		{Loc(5, 9, 7), NoPartition, NoRegion},
	}
	for _, c := range cases {
		if got := s.PartitionAt(c.l); got != c.part {
			t.Errorf("PartitionAt(%v) = %v, want %v", c.l, got, c.part)
		}
		if got := s.RegionAt(c.l); got != c.reg {
			t.Errorf("RegionAt(%v) = %v, want %v", c.l, got, c.reg)
		}
	}
}

func TestNearestRegion(t *testing.T) {
	s, _, regions := buildTestSpace(t)
	// From the hallway under room B, the nearest region is rB.
	if got := s.NearestRegion(Loc(15, 3, 0)); got != regions["rB"] {
		t.Errorf("NearestRegion(hall under B) = %v, want rB=%v", got, regions["rB"])
	}
	// Inside a region, the region itself is nearest.
	if got := s.NearestRegion(Loc(5, 9, 0)); got != regions["rA"] {
		t.Errorf("NearestRegion(in A) = %v, want rA", got)
	}
	// Unknown floor.
	if got := s.NearestRegion(Loc(5, 9, 9)); got != NoRegion {
		t.Errorf("NearestRegion(bad floor) = %v, want NoRegion", got)
	}
}

func TestCandidateRegions(t *testing.T) {
	s, _, regions := buildTestSpace(t)
	// Small disk inside room A: only rA.
	got := s.CandidateRegions(Loc(5, 9, 0), 2, nil)
	if len(got) != 1 || got[0] != regions["rA"] {
		t.Errorf("CandidateRegions(in A) = %v", got)
	}
	// Disk straddling the A/B wall: both.
	got = s.CandidateRegions(Loc(10, 9, 0), 3, nil)
	if len(got) != 2 || got[0] != regions["rA"] || got[1] != regions["rB"] {
		t.Errorf("CandidateRegions(A|B wall) = %v", got)
	}
	// Deep in the hallway with a tiny disk: falls back to nearest.
	got = s.CandidateRegions(Loc(20, 0.5, 0), 0.2, nil)
	if len(got) != 1 {
		t.Errorf("CandidateRegions(hall fallback) = %v", got)
	}
	// Candidates are sorted and unique even for multi-partition regions.
	got = s.CandidateRegions(Loc(30, 9, 0), 5, nil)
	if len(got) != 1 || got[0] != regions["rCD"] {
		t.Errorf("CandidateRegions(C|D) = %v, want just rCD", got)
	}
}

func TestUncertaintyOverlap(t *testing.T) {
	s, _, regions := buildTestSpace(t)
	// Disk fully inside room A: overlap 1.
	if got := s.UncertaintyOverlap(Loc(5, 9, 0), 2, regions["rA"]); math.Abs(got-1) > 1e-9 {
		t.Errorf("full overlap = %v", got)
	}
	// Disk centered on the A/B wall: half in each.
	a := s.UncertaintyOverlap(Loc(10, 9, 0), 2, regions["rA"])
	bv := s.UncertaintyOverlap(Loc(10, 9, 0), 2, regions["rB"])
	if math.Abs(a-0.5) > 1e-9 || math.Abs(bv-0.5) > 1e-9 {
		t.Errorf("wall overlap = %v, %v, want 0.5 each", a, bv)
	}
	// Wrong floor: zero.
	if got := s.UncertaintyOverlap(Loc(5, 9, 1), 2, regions["rA"]); got != 0 {
		t.Errorf("cross-floor overlap = %v", got)
	}
	// Multi-partition region accumulates both parts.
	cd := s.UncertaintyOverlap(Loc(30, 9, 0), 2, regions["rCD"])
	if math.Abs(cd-1) > 1e-9 {
		t.Errorf("multi-partition overlap = %v, want 1", cd)
	}
	if got := s.UncertaintyOverlap(Loc(5, 9, 0), 2, NoRegion); got != 0 {
		t.Errorf("NoRegion overlap = %v", got)
	}
}

func TestMIWDSamePartition(t *testing.T) {
	s, _, _ := buildTestSpace(t)
	a, b := Loc(2, 6, 0), Loc(8, 12, 0)
	want := a.Point().Dist(b.Point())
	if got := s.MIWD(a, b); math.Abs(got-want) > 1e-9 {
		t.Errorf("same-partition MIWD = %v, want %v", got, want)
	}
}

func TestMIWDThroughDoors(t *testing.T) {
	s, _, _ := buildTestSpace(t)
	// From room A to room B the walk goes door(5,4) -> hallway -> door(15,4).
	a, b := Loc(5, 9, 0), Loc(15, 9, 0)
	want := a.Point().Dist(geom.Pt(5, 4)) + geom.Pt(5, 4).Dist(geom.Pt(15, 4)) + geom.Pt(15, 4).Dist(b.Point())
	if got := s.MIWD(a, b); math.Abs(got-want) > 1e-9 {
		t.Errorf("A->B MIWD = %v, want %v", got, want)
	}
	// C to D can shortcut through the connecting door (30,9).
	c, d := Loc(29, 9, 0), Loc(31, 9, 0)
	if got := s.MIWD(c, d); math.Abs(got-2) > 1e-9 {
		t.Errorf("C->D MIWD = %v, want 2 (direct door)", got)
	}
}

func TestMIWDCrossFloor(t *testing.T) {
	s, _, _ := buildTestSpace(t)
	a := Loc(38, 2, 0) // floor-0 hallway near the staircase
	b := Loc(38, 2, 1) // floor-1 hallway, same planar point
	got := s.MIWD(a, b)
	if math.IsInf(got, 1) {
		t.Fatalf("cross-floor MIWD infinite")
	}
	// Must include the stair penalty and be at least the vertical gap.
	if got < FloorHeight {
		t.Errorf("cross-floor MIWD = %v, want >= %v", got, FloorHeight)
	}
}

func TestMIWDFallbacks(t *testing.T) {
	s, _, _ := buildTestSpace(t)
	// Outside any partition: straight line.
	a, b := Loc(-5, -5, 0), Loc(5, 9, 0)
	if got, want := s.MIWD(a, b), a.Dist(b); math.Abs(got-want) > 1e-9 {
		t.Errorf("outside MIWD = %v, want straight-line %v", got, want)
	}
}

func TestMIWDProperties(t *testing.T) {
	s, _, _ := buildTestSpace(t)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a := Loc(rng.Float64()*40, rng.Float64()*14, 0)
		b := Loc(rng.Float64()*40, rng.Float64()*14, 0)
		if s.PartitionAt(a) == NoPartition || s.PartitionAt(b) == NoPartition {
			continue
		}
		dab := s.MIWD(a, b)
		dba := s.MIWD(b, a)
		if math.Abs(dab-dba) > 1e-6 {
			t.Fatalf("MIWD not symmetric: %v vs %v (a=%v b=%v)", dab, dba, a, b)
		}
		if dab < a.Point().Dist(b.Point())-1e-6 {
			t.Fatalf("MIWD below straight line: %v < %v (a=%v b=%v)", dab, a.Point().Dist(b.Point()), a, b)
		}
	}
}

func TestRegionDist(t *testing.T) {
	s, _, regions := buildTestSpace(t)
	rA, rB, rCD, rE := regions["rA"], regions["rB"], regions["rCD"], regions["rE"]
	// Symmetry.
	if s.RegionDist(rA, rB) != s.RegionDist(rB, rA) {
		t.Errorf("RegionDist not symmetric")
	}
	// Intra-region distance is small but positive.
	if d := s.RegionDist(rA, rA); d <= 0 || d > 10 {
		t.Errorf("intra RegionDist = %v", d)
	}
	// Closer regions have smaller expected distance.
	if !(s.RegionDist(rA, rB) < s.RegionDist(rA, rCD)) {
		t.Errorf("expected d(rA,rB) < d(rA,rCD): %v vs %v", s.RegionDist(rA, rB), s.RegionDist(rA, rCD))
	}
	// Cross-floor distance is largest.
	if !(s.RegionDist(rA, rE) > s.RegionDist(rA, rCD)) {
		t.Errorf("expected cross-floor to dominate: %v vs %v", s.RegionDist(rA, rE), s.RegionDist(rA, rCD))
	}
	// NoRegion yields +inf.
	if !math.IsInf(s.RegionDist(NoRegion, rA), 1) {
		t.Errorf("NoRegion distance should be +inf")
	}
}

func TestRegionCentroid(t *testing.T) {
	s, _, regions := buildTestSpace(t)
	c := s.RegionCentroid(regions["rA"])
	if math.Abs(c.X-5) > 1e-9 || math.Abs(c.Y-9) > 1e-9 || c.Floor != 0 {
		t.Errorf("rA centroid = %v", c)
	}
	cd := s.RegionCentroid(regions["rCD"])
	if math.Abs(cd.X-30) > 1e-9 {
		t.Errorf("rCD centroid = %v", cd)
	}
}

func TestStatsAndBounds(t *testing.T) {
	s, _, _ := buildTestSpace(t)
	st := s.Stats()
	if st.Floors != 2 || st.Partitions != 7 || st.Doors != 7 || st.Regions != 4 || st.Stairs != 1 {
		t.Errorf("Stats = %+v", st)
	}
	wantArea := 40*4.0 + 4*100 + 40*4 + 200.0
	if math.Abs(st.TotalArea-wantArea) > 1e-9 {
		t.Errorf("TotalArea = %v, want %v", st.TotalArea, wantArea)
	}
	b := s.Bounds()
	if b.Min != geom.Pt(0, 0) || b.Max != geom.Pt(40, 14) {
		t.Errorf("Bounds = %+v", b)
	}
	if got := len(s.Regions()); got != 4 {
		t.Errorf("Regions() len = %d", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s, _, regions := buildTestSpace(t)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	s2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if s2.Stats() != s.Stats() {
		t.Errorf("stats changed: %+v vs %+v", s2.Stats(), s.Stats())
	}
	// Lookups and distances must be preserved.
	probe := Loc(15, 9, 0)
	if s2.RegionAt(probe) != s.RegionAt(probe) {
		t.Errorf("RegionAt changed after round trip")
	}
	for _, ri := range s.Regions() {
		for _, rj := range s.Regions() {
			if math.Abs(s.RegionDist(ri, rj)-s2.RegionDist(ri, rj)) > 1e-9 {
				t.Errorf("RegionDist(%d,%d) changed", ri, rj)
			}
		}
	}
	if s2.Region(regions["rA"]).Name != "rA" {
		t.Errorf("region name lost")
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{bad json")); err == nil {
		t.Errorf("malformed JSON should fail")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"partitions":[]}`)); err == nil {
		t.Errorf("empty space should fail")
	}
}
