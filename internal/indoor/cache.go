package indoor

import (
	"math"

	"c2mn/internal/geom"
)

// maxGridCellsPerAxis bounds the candidate-lookup grid resolution so a
// pathological venue (huge bounds, tiny uncertainty radius) cannot blow
// up cache memory; beyond the cap, cells simply hold longer partition
// lists.
const maxGridCellsPerAxis = 256

// SpaceCache is the per-venue geometry memoization built once per
// (Space, uncertainty radius): a grid-quantized candidate-partition
// index over the venue bounding box plus precomputed region centroids
// and door-based region adjacency. It turns the per-record R-tree
// descent of CandidateRegions into a single cell lookup followed by the
// same exact circle–polygon tests, so cached lookups return slices
// identical to Space.CandidateRegions.
//
// Memory cost is O(cells + Σ per-cell partition lists + regions²-free):
// one int32 per (cell, nearby partition) pair, bounded by
// maxGridCellsPerAxis² per floor. Accuracy is unaffected — the grid is
// a superset prefilter and every exact test still runs.
//
// A SpaceCache is immutable after construction and safe for concurrent
// use.
type SpaceCache struct {
	space *Space
	// V is the uncertainty-disk radius the grid was built for; lookups
	// with a different radius must fall back to the R-tree path.
	V float64

	grids map[int]*floorGrid // per floor

	centroids []Location   // per region, == Space.RegionCentroid
	adjacency [][]RegionID // regions sharing a door, sorted ascending
}

// floorGrid is the uniform cell index of one floor: cells[cy*nx+cx]
// lists the partitions whose bounding box, expanded by the uncertainty
// radius, intersects the cell — i.e. every partition whose polygon an
// uncertainty disk centred anywhere in the cell could touch.
type floorGrid struct {
	minX, minY float64
	cell       float64 // cell edge length, meters
	nx, ny     int
	cells      [][]int32 // partition indices per cell
}

// GeometryCache returns the memoized SpaceCache for radius v, building
// it on first use. Caches are keyed by radius: the annotation path
// always queries with its configured Params.V, so one entry per loaded
// model is typical.
func (s *Space) GeometryCache(v float64) *SpaceCache {
	if v <= 0 {
		return nil
	}
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	if c, ok := s.caches[v]; ok {
		return c
	}
	c := s.buildGeometryCache(v)
	if s.caches == nil {
		s.caches = map[float64]*SpaceCache{}
	}
	s.caches[v] = c
	return c
}

func (s *Space) buildGeometryCache(v float64) *SpaceCache {
	c := &SpaceCache{space: s, V: v, grids: make(map[int]*floorGrid, len(s.floors))}
	for _, f := range s.floors {
		c.grids[f] = s.buildFloorGrid(f, v)
	}
	c.centroids = make([]Location, len(s.regions))
	for r := range s.regions {
		c.centroids[r] = s.RegionCentroid(RegionID(r))
	}
	c.adjacency = s.regionAdjacency()
	return c
}

func (s *Space) buildFloorGrid(floor int, v float64) *floorGrid {
	var bounds geom.Rect
	first := true
	for i := range s.partitions {
		if s.partitions[i].Floor != floor {
			continue
		}
		b := s.partitions[i].Poly.Bounds()
		if first {
			bounds, first = b, false
		} else {
			bounds = bounds.Union(b)
		}
	}
	if first {
		return &floorGrid{nx: 0, ny: 0}
	}
	// Any disk centre within v of a partition can yield candidates, so
	// the grid covers the bounds expanded by the radius.
	bounds = bounds.Expand(v)
	w := bounds.Max.X - bounds.Min.X
	h := bounds.Max.Y - bounds.Min.Y
	// One disk diameter per cell keeps per-cell lists short without
	// exploding the cell count.
	cell := 2 * v
	if n := w / cell; n > maxGridCellsPerAxis {
		cell = w / maxGridCellsPerAxis
	}
	if n := h / cell; n > maxGridCellsPerAxis {
		cell = h / maxGridCellsPerAxis
	}
	g := &floorGrid{
		minX: bounds.Min.X,
		minY: bounds.Min.Y,
		cell: cell,
		nx:   int(math.Ceil(w/cell)) + 1,
		ny:   int(math.Ceil(h/cell)) + 1,
	}
	g.cells = make([][]int32, g.nx*g.ny)
	for i := range s.partitions {
		if s.partitions[i].Floor != floor {
			continue
		}
		// A disk centred in cell (cx, cy) reaches the partition only if
		// the partition bbox expanded by v touches the cell rectangle.
		b := s.partitions[i].Poly.Bounds().Expand(v)
		cx0 := g.clampX(int(math.Floor((b.Min.X - g.minX) / g.cell)))
		cx1 := g.clampX(int(math.Floor((b.Max.X - g.minX) / g.cell)))
		cy0 := g.clampY(int(math.Floor((b.Min.Y - g.minY) / g.cell)))
		cy1 := g.clampY(int(math.Floor((b.Max.Y - g.minY) / g.cell)))
		for cy := cy0; cy <= cy1; cy++ {
			for cx := cx0; cx <= cx1; cx++ {
				idx := cy*g.nx + cx
				g.cells[idx] = append(g.cells[idx], int32(i))
			}
		}
	}
	return g
}

func (g *floorGrid) clampX(cx int) int {
	if cx < 0 {
		return 0
	}
	if cx >= g.nx {
		return g.nx - 1
	}
	return cx
}

func (g *floorGrid) clampY(cy int) int {
	if cy < 0 {
		return 0
	}
	if cy >= g.ny {
		return g.ny - 1
	}
	return cy
}

// lookup returns the partitions reachable by an uncertainty disk
// centred at p, or nil when p lies outside the gridded area (no
// partition is reachable then, by construction of the expanded bounds).
func (g *floorGrid) lookup(p geom.Point) []int32 {
	if g.nx == 0 || g.ny == 0 {
		return nil
	}
	cx := int(math.Floor((p.X - g.minX) / g.cell))
	cy := int(math.Floor((p.Y - g.minY) / g.cell))
	if cx < 0 || cx >= g.nx || cy < 0 || cy >= g.ny {
		return nil
	}
	return g.cells[cy*g.nx+cx]
}

// CandidateRegions appends the candidate regions of the uncertainty
// disk UR(l, cache.V) to dst, exactly as Space.CandidateRegions would:
// the grid replaces the R-tree descent as a superset prefilter, the
// exact circle–polygon intersection test decides membership, the result
// is deduplicated and sorted ascending, and the nearest-region fallback
// fires when nothing overlaps.
func (c *SpaceCache) CandidateRegions(l Location, dst []RegionID) []RegionID {
	s := c.space
	g, ok := c.grids[l.Floor]
	if !ok {
		return dst
	}
	start := len(dst)
	circle := geom.Circle{C: l.Point(), R: c.V}
	for _, id := range g.lookup(circle.C) {
		part := &s.partitions[id]
		if part.Region == NoRegion || regionsContain(dst[start:], part.Region) {
			continue
		}
		if circle.IntersectsPolygon(part.Poly) {
			dst = append(dst, part.Region)
		}
	}
	if len(dst) == start {
		if r := s.NearestRegion(l); r != NoRegion {
			dst = append(dst, r)
		}
		return dst
	}
	sub := dst[start:]
	for i := 1; i < len(sub); i++ {
		for j := i; j > 0 && sub[j] < sub[j-1]; j-- {
			sub[j], sub[j-1] = sub[j-1], sub[j]
		}
	}
	return dst
}

// RegionCentroid returns the precomputed area-weighted centroid of r,
// identical to Space.RegionCentroid without the per-call partition
// scan.
func (c *SpaceCache) RegionCentroid(r RegionID) Location {
	return c.centroids[r]
}

// RegionAdjacency returns, for each region, the sorted list of regions
// reachable through a single door. The slices are shared and must not
// be mutated.
func (c *SpaceCache) RegionAdjacency() [][]RegionID { return c.adjacency }

// regionAdjacency derives door-based region adjacency: two distinct
// regions are adjacent when some door connects a partition of one to a
// partition of the other.
func (s *Space) regionAdjacency() [][]RegionID {
	adj := make([][]RegionID, len(s.regions))
	for i := range s.doors {
		ra := s.partitions[s.doors[i].A].Region
		rb := s.partitions[s.doors[i].B].Region
		if ra == NoRegion || rb == NoRegion || ra == rb {
			continue
		}
		if !regionsContain(adj[ra], rb) {
			adj[ra] = append(adj[ra], rb)
		}
		if !regionsContain(adj[rb], ra) {
			adj[rb] = append(adj[rb], ra)
		}
	}
	for r := range adj {
		sub := adj[r]
		for i := 1; i < len(sub); i++ {
			for j := i; j > 0 && sub[j] < sub[j-1]; j-- {
				sub[j], sub[j-1] = sub[j-1], sub[j]
			}
		}
	}
	return adj
}
