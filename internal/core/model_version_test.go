package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"c2mn/internal/features"
)

func TestModelJSONCarriesVersionHeader(t *testing.T) {
	m := NewModel(features.DefaultParams())
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var header struct {
		Format  string `json:"format"`
		Version int    `json:"version"`
	}
	if err := json.Unmarshal(buf.Bytes(), &header); err != nil {
		t.Fatal(err)
	}
	if header.Format != ModelFormat || header.Version != ModelFormatVersion {
		t.Fatalf("header = %q v%d, want %q v%d",
			header.Format, header.Version, ModelFormat, ModelFormatVersion)
	}
	if _, err := ReadModelJSON(&buf); err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestReadModelJSONVersionGate(t *testing.T) {
	m := NewModel(features.DefaultParams())
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	// A future version is rejected with the sentinel.
	future := strings.Replace(buf.String(), `"version":1`, `"version":99`, 1)
	if future == buf.String() {
		t.Fatal("test setup: version field not found in serialised model")
	}
	if _, err := ReadModelJSON(strings.NewReader(future)); !errors.Is(err, ErrModelVersion) {
		t.Fatalf("future version: err = %v, want ErrModelVersion", err)
	}

	// A wrong format string is rejected.
	alien := strings.Replace(buf.String(), ModelFormat, "other-format", 1)
	if _, err := ReadModelJSON(strings.NewReader(alien)); err == nil {
		t.Fatal("foreign format accepted")
	}

	// A legacy headerless file (version 0) still loads.
	var legacy struct {
		Weights []float64       `json:"weights"`
		Params  features.Params `json:"params"`
	}
	if err := json.Unmarshal(buf.Bytes(), &legacy); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadModelJSON(bytes.NewReader(raw)); err != nil {
		t.Fatalf("legacy headerless model rejected: %v", err)
	}
}
