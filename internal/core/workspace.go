package core

import (
	"math"
	"math/rand"

	"c2mn/internal/features"
	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// Workspace holds every mutable buffer one inference run needs — the
// R/E label slices, the candidate logits, feature scratch vectors and
// a maintained running score — so that repeated annotation reuses the
// same memory. A zero Workspace is ready to use; Annotate grows the
// buffers to the bound sequence and performs no steady-state
// allocation beyond the returned labels.
//
// The running score is updated incrementally: every accepted move adds
// the exact Markov-blanket feature delta of that move (see
// features.RegionRunDelta), so block moves cost O(run·Dim) instead of
// the O(n·Dim) full rescore the previous implementation paid per
// tentative relabeling.
//
// A Workspace is not safe for concurrent use. The public layer keeps a
// sync.Pool of them, one handed to each annotation worker.
type Workspace struct {
	m   *Model
	ctx *features.SeqContext

	// score is the running w·f(P, R, E) of the current configuration.
	score     float64
	initScore float64

	// R/E are the current configuration; initR/initE preserve the
	// deterministic initialisation for the annealed restart; bestR/bestE
	// hold the best fixed point found so far.
	R     []indoor.RegionID
	E     []seq.Event
	initR []indoor.RegionID
	initE []seq.Event
	bestR []indoor.RegionID
	bestE []seq.Event

	// Scratch: per-candidate feature buffers, logits and the raw
	// (untempered) potentials of the annealed sweeps.
	buf    []float64
	delta  []float64
	logits []float64
	raw    []float64
	scores []float64
	tried  []indoor.RegionID

	// Convergence worklists. dirtyR[i]/dirtyE[i] mark nodes whose
	// Markov blanket may have changed since their last ICM evaluation;
	// clean nodes re-evaluate to the same argmax, so sweeps skip them
	// without changing the move sequence. dirtyB[i] is the analogous
	// flag for block-ICM run pricing: a run all of whose nodes are
	// clean re-prices to the same (non-improving) deltas and is
	// skipped. Every accepted move re-marks a conservative superset of
	// its influence range, so the invariant "clean ⟹ conditional
	// unchanged since last evaluation" holds across phases.
	dirtyR []bool
	dirtyE []bool
	dirtyB []bool
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// Reset binds the workspace to a model and a prepared sequence
// context, loads the deterministic initialisation (maximum-overlap
// regions, density-tag events) into R/E and computes the starting
// score with one full feature pass — the only full pass of the run.
func (ws *Workspace) Reset(m *Model, ctx *features.SeqContext) {
	n := ctx.Len()
	ws.m, ws.ctx = m, ctx
	ws.R = grow(ws.R, n)
	ws.E = grow(ws.E, n)
	ws.initR = grow(ws.initR, n)
	ws.initE = grow(ws.initE, n)
	ws.bestR = grow(ws.bestR, n)
	ws.bestE = grow(ws.bestE, n)
	ws.buf = grow(ws.buf, features.Dim)
	ws.delta = grow(ws.delta, features.Dim)
	ws.scores = grow(ws.scores, seq.NumEvents)
	ws.dirtyR = grow(ws.dirtyR, n)
	ws.dirtyE = grow(ws.dirtyE, n)
	ws.dirtyB = grow(ws.dirtyB, n)
	ws.markAllDirty()
	InitRegionsInto(ctx, ws.R)
	InitEventsInto(ctx, ws.E)
	copy(ws.initR, ws.R)
	copy(ws.initE, ws.E)
	ctx.TotalFeatures(ws.R, ws.E, ws.buf)
	ws.score = dot(m.Weights, ws.buf)
	ws.initScore = ws.score
}

// Score returns the running score of the current configuration. It
// equals m.Score(ctx, R, E) up to floating-point association, which
// the workspace tests assert.
func (ws *Workspace) Score() float64 { return ws.score }

// Labels returns a copy of the current configuration that outlives the
// workspace.
func (ws *Workspace) Labels() seq.Labels {
	return seq.Labels{
		Regions: append([]indoor.RegionID{}, ws.R...),
		Events:  append([]seq.Event{}, ws.E...),
	}
}

// Annotate runs the full inference pipeline of Model.Annotate on the
// workspace's buffers and returns an owned copy of the best labels.
func (ws *Workspace) Annotate(m *Model, ctx *features.SeqContext, opts InferOptions) seq.Labels {
	ws.annotate(m, ctx, opts)
	return ws.Labels()
}

// annotate is Annotate leaving the result in ws.R/ws.E (and ws.score)
// without copying it out; the windowed path reads it in place.
func (ws *Workspace) annotate(m *Model, ctx *features.SeqContext, opts InferOptions) {
	if opts.MaxSweeps <= 0 {
		opts.MaxSweeps = 20
	}
	ws.Reset(m, ctx)
	if ctx.Len() == 0 {
		return
	}

	// First candidate: ICM from the deterministic initialisation.
	ws.icm(opts.MaxSweeps)
	ws.blockICM(opts.MaxSweeps)
	bestScore := ws.score
	copy(ws.bestR, ws.R)
	copy(ws.bestE, ws.E)

	// Second candidate: annealed Gibbs from the initialisation, then
	// ICM; keep whichever fixed point scores higher. The annealing
	// escapes local optima near region boundaries that greedy ICM
	// cannot leave.
	if opts.AnnealSweeps > 0 {
		copy(ws.R, ws.initR)
		copy(ws.E, ws.initE)
		ws.score = ws.initScore
		ws.anneal(opts)
		ws.icm(opts.MaxSweeps)
		ws.blockICM(opts.MaxSweeps)
		if ws.score > bestScore {
			bestScore = ws.score
			copy(ws.bestR, ws.R)
			copy(ws.bestE, ws.E)
		}
	}
	copy(ws.R, ws.bestR)
	copy(ws.E, ws.bestE)
	ws.score = bestScore
}

// icm runs coordinate-ascent sweeps over R and E in place until a
// fixed point; every accepted move increases the running score by its
// exact Markov-blanket delta (the local feature deltas equal the
// global ones), so the loop terminates.
//
// Sweeps are convergence-aware: only dirty nodes are re-evaluated. A
// clean node's conditional scores are unchanged since its last
// evaluation, where it did not move (a moved node's own conditional
// never depends on its own label, so the move itself keeps it clean),
// so skipping it preserves the exact move sequence — and therefore the
// exact labels — of the full sweep. MaxSweeps stays a ceiling with
// identical counting: a sweep over an all-clean worklist makes zero
// moves and terminates exactly where a full no-move sweep would.
func (ws *Workspace) icm(maxSweeps int) {
	ctx, w := ws.ctx, ws.m.Weights
	R, E, buf := ws.R, ws.E, ws.buf
	n := ctx.Len()
	for sweep := 0; sweep < maxSweeps; sweep++ {
		changed := false
		for i := 0; i < n; i++ {
			if !ws.dirtyR[i] {
				continue
			}
			ws.dirtyR[i] = false
			cands := ctx.Candidates[i]
			if len(cands) == 0 {
				continue
			}
			ws.scores = grow(ws.scores, len(cands))
			scores := ws.scores[:len(cands)]
			ctx.RegionCandScores(w, R, E, i, scores)
			cur := R[i]
			best, bestV := cur, math.Inf(-1)
			curV := math.Inf(-1)
			for k, r := range cands {
				v := scores[k]
				if r == cur {
					curV = v
				}
				if v > bestV {
					best, bestV = r, v
				}
			}
			if best != cur {
				if math.IsInf(curV, -1) {
					// The current label came from a block move over a
					// neighbour's candidate set and is not in this
					// record's; score it explicitly for the delta.
					ctx.LocalRegionFeatures(R, E, i, cur, buf)
					curV = dot(w, buf)
				}
				ws.applyRegionMove(i, best)
				ws.score += bestV - curV
				changed = true
			}
		}
		for i := 0; i < n; i++ {
			if !ws.dirtyE[i] {
				continue
			}
			ws.dirtyE[i] = false
			scores := ws.scores[:seq.NumEvents]
			ctx.EventCandScores(w, R, E, i, scores)
			cur := E[i]
			best, bestV := cur, math.Inf(-1)
			curV := 0.0
			for e := 0; e < seq.NumEvents; e++ {
				v := scores[e]
				if seq.Event(e) == cur {
					curV = v
				}
				if v > bestV {
					best, bestV = seq.Event(e), v
				}
			}
			if best != cur {
				ws.applyEventMove(i, best)
				ws.score += bestV - curV
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// markAllDirty re-arms every worklist, used after Reset and after the
// annealed sweeps rewrote the configuration wholesale.
func (ws *Workspace) markAllDirty() {
	for i := range ws.dirtyR {
		ws.dirtyR[i] = true
	}
	for i := range ws.dirtyE {
		ws.dirtyE[i] = true
	}
	for i := range ws.dirtyB {
		ws.dirtyB[i] = true
	}
}

// markRange marks nodes in [lo, hi] (clamped) dirty on all worklists.
func (ws *Workspace) markRange(lo, hi int) {
	if lo < 0 {
		lo = 0
	}
	if hi >= len(ws.dirtyR) {
		hi = len(ws.dirtyR) - 1
	}
	for x := lo; x <= hi; x++ {
		ws.dirtyR[x] = true
		ws.dirtyE[x] = true
		ws.dirtyB[x] = true
	}
}

// applyRegionMove assigns R[i] = r and marks the conservative
// influence range of the move: the union of the old and new region-run
// spans around i, each extended by the adjacent run and one node, plus
// the event run around i (whose segmentation statistics read region
// labels) extended by one node.
func (ws *Workspace) applyRegionMove(i int, r indoor.RegionID) {
	R, E := ws.R, ws.E
	n := len(R)
	aO, bO := runStartR(R, i), runEndR(R, i)
	loO, hiO := aO, bO
	if aO > 0 {
		loO = runStartR(R, aO-1)
	}
	if bO+1 < n {
		hiO = runEndR(R, bO+1)
	}
	R[i] = r
	aN, bN := runStartR(R, i), runEndR(R, i)
	loN, hiN := aN, bN
	if aN > 0 {
		loN = runStartR(R, aN-1)
	}
	if bN+1 < n {
		hiN = runEndR(R, bN+1)
	}
	ea, eb := runStartE(E, i), runEndE(E, i)
	ws.markRange(min(min(loO, loN), ea)-1, max(max(hiO, hiN), eb)+1)
}

// applyEventMove is the event-label analogue of applyRegionMove: the
// influence range unions the old and new event-run spans (extended by
// the adjacent run and one node) with the region run around i.
func (ws *Workspace) applyEventMove(i int, e seq.Event) {
	R, E := ws.R, ws.E
	n := len(E)
	aO, bO := runStartE(E, i), runEndE(E, i)
	loO, hiO := aO, bO
	if aO > 0 {
		loO = runStartE(E, aO-1)
	}
	if bO+1 < n {
		hiO = runEndE(E, bO+1)
	}
	E[i] = e
	aN, bN := runStartE(E, i), runEndE(E, i)
	loN, hiN := aN, bN
	if aN > 0 {
		loN = runStartE(E, aN-1)
	}
	if bN+1 < n {
		hiN = runEndE(E, bN+1)
	}
	ra, rb := runStartR(R, i), runEndR(R, i)
	ws.markRange(min(min(loO, loN), ra)-1, max(max(hiO, hiN), rb)+1)
}

// applyBlockMove relabels run [a, b] to r and marks its influence
// range, mirroring applyRegionMove with the whole run as the changed
// span.
func (ws *Workspace) applyBlockMove(a, b int, r indoor.RegionID) {
	R, E := ws.R, ws.E
	n := len(R)
	loO, hiO := a, b
	if a > 0 {
		loO = runStartR(R, a-1)
	}
	if b+1 < n {
		hiO = runEndR(R, b+1)
	}
	for y := a; y <= b; y++ {
		R[y] = r
	}
	aN, bN := runStartR(R, a), runEndR(R, b)
	loN, hiN := aN, bN
	if aN > 0 {
		loN = runStartR(R, aN-1)
	}
	if bN+1 < n {
		hiN = runEndR(R, bN+1)
	}
	ea, eb := runStartE(E, a), runEndE(E, b)
	ws.markRange(min(min(loO, loN), ea)-1, max(max(hiO, hiN), eb)+1)
}

// Run-extent helpers over the label slices.
func runStartR(R []indoor.RegionID, i int) int {
	for i > 0 && R[i-1] == R[i] {
		i--
	}
	return i
}

func runEndR(R []indoor.RegionID, i int) int {
	for i+1 < len(R) && R[i+1] == R[i] {
		i++
	}
	return i
}

func runStartE(E []seq.Event, i int) int {
	for i > 0 && E[i-1] == E[i] {
		i--
	}
	return i
}

func runEndE(E []seq.Event, i int) int {
	for i+1 < len(E) && E[i+1] == E[i] {
		i++
	}
	return i
}

// blockICM interleaves run-level region moves with node-level sweeps:
// each maximal same-region run is tentatively relabeled as a whole to
// every candidate of its records, keeping score-improving moves.
// Single-node ICM cannot make these moves once transition potentials
// lock a run into a uniform (possibly wrong) label; relabeling the
// block escapes that local optimum. Each tentative move is priced by
// features.RegionRunDelta — O(run·Dim) on the run's Markov blanket —
// instead of a full O(n·Dim) rescore. Every accepted move increases
// the running score, so the procedure terminates.
func (ws *Workspace) blockICM(maxSweeps int) {
	ctx, w := ws.ctx, ws.m.Weights
	R, E := ws.R, ws.E
	n := ctx.Len()
	if n == 0 {
		return
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		improved := false
		for a := 0; a < n; {
			b := a
			for b+1 < n && R[b+1] == R[a] {
				b++
			}
			// Skip runs whose Markov blanket is untouched since they were
			// last priced: the same extent re-prices to the same
			// non-improving deltas, so the full sweep would make no move
			// here either.
			dirty := false
			for x := a; x <= b; x++ {
				if ws.dirtyB[x] {
					dirty = true
				}
				ws.dirtyB[x] = false
			}
			if !dirty {
				a = b + 1
				continue
			}
			orig := R[a]
			// Candidate labels: union over the run's records.
			tried := append(ws.tried[:0], orig)
			bestLabel, bestDelta := orig, 0.0
			for x := a; x <= b; x++ {
				for _, r := range ctx.Candidates[x] {
					if containsRegion(tried, r) {
						continue
					}
					tried = append(tried, r)
					ctx.RegionRunDelta(R, E, a, b, r, ws.delta)
					if d := dot(w, ws.delta); d > bestDelta {
						bestLabel, bestDelta = r, d
					}
				}
			}
			ws.tried = tried
			if bestLabel != orig {
				ws.applyBlockMove(a, b, bestLabel)
				ws.score += bestDelta
				improved = true
			}
			a = b + 1
		}
		if !improved {
			break
		}
		// Let node-level moves refine boundaries after block changes.
		ws.icm(maxSweeps)
	}
}

// anneal runs tempered Gibbs sweeps over R and E in place, keeping the
// running score in step with every sampled move. Every node is visited
// every sweep — the sampler's RNG stream is part of the deterministic
// contract, so no convergence skipping applies here — but each visit
// prices its candidates through the fused fast-score path, which
// produces bitwise-identical raw potentials and therefore an identical
// sample stream. The wholesale rewrite invalidates the ICM worklists,
// so anneal ends by re-arming them.
func (ws *Workspace) anneal(opts InferOptions) {
	ctx, w := ws.ctx, ws.m.Weights
	R, E, buf := ws.R, ws.E, ws.buf
	n := ctx.Len()
	rng := rand.New(rand.NewSource(opts.Seed + 0x5eed))
	for sweep := 0; sweep < opts.AnnealSweeps; sweep++ {
		temp := 2.0 * float64(opts.AnnealSweeps-sweep) / float64(opts.AnnealSweeps)
		for i := 0; i < n; i++ {
			cands := ctx.Candidates[i]
			if len(cands) > 1 {
				ws.raw = grow(ws.raw, len(cands))
				ws.logits = grow(ws.logits, len(cands))
				raw := ws.raw[:len(cands)]
				logits := ws.logits[:len(cands)]
				ctx.RegionCandScores(w, R, E, i, raw)
				rawOld := math.Inf(-1)
				maxL := math.Inf(-1)
				for k, r := range cands {
					rv := raw[k]
					if r == R[i] {
						rawOld = rv
					}
					v := rv / temp
					logits[k] = v
					if v > maxL {
						maxL = v
					}
				}
				normalizeExp(logits, maxL)
				k := sampleIndex(logits, rng)
				if cands[k] != R[i] {
					if math.IsInf(rawOld, -1) {
						ctx.LocalRegionFeatures(R, E, i, R[i], buf)
						rawOld = dot(w, buf)
					}
					R[i] = cands[k]
					ws.score += raw[k] - rawOld
				}
			}
			ws.raw = grow(ws.raw, seq.NumEvents)
			ws.logits = grow(ws.logits, seq.NumEvents)
			raw := ws.raw[:seq.NumEvents]
			logits := ws.logits[:seq.NumEvents]
			ctx.EventCandScores(w, R, E, i, raw)
			rawOld := 0.0
			maxL := math.Inf(-1)
			for e := 0; e < seq.NumEvents; e++ {
				rv := raw[e]
				if seq.Event(e) == E[i] {
					rawOld = rv
				}
				v := rv / temp
				logits[e] = v
				if v > maxL {
					maxL = v
				}
			}
			normalizeExp(logits, maxL)
			k := sampleIndex(logits, rng)
			if seq.Event(k) != E[i] {
				E[i] = seq.Event(k)
				ws.score += raw[k] - rawOld
			}
		}
	}
	ws.markAllDirty()
}

// AnnotateWindowed is Model.AnnotateWindowed on reusable buffers: ctx
// is re-bound to each chunk in turn and ws annotates it, so a pooled
// (ctx, ws) pair serves day-long sequences without per-chunk
// allocation beyond the output labels.
func (ws *Workspace) AnnotateWindowed(m *Model, ctx *features.SeqContext, p *seq.PSequence, opts WindowOptions) seq.Labels {
	opts = opts.fill()
	n := p.Len()
	if n <= opts.Window+2*opts.Overlap {
		ctx.Reset(p, nil)
		return ws.Annotate(m, ctx, opts.Infer)
	}
	out := seq.NewLabels(n)
	chunk := seq.PSequence{ObjectID: p.ObjectID}
	for start := 0; start < n; start += opts.Window {
		end := start + opts.Window
		if end > n {
			end = n
		}
		lo := start - opts.Overlap
		if lo < 0 {
			lo = 0
		}
		hi := end + opts.Overlap
		if hi > n {
			hi = n
		}
		chunk.Records = p.Records[lo:hi]
		ctx.Reset(&chunk, nil)
		ws.annotate(m, ctx, opts.Infer)
		copy(out.Regions[start:end], ws.R[start-lo:end-lo])
		copy(out.Events[start:end], ws.E[start-lo:end-lo])
	}
	return out
}

func containsRegion(rs []indoor.RegionID, r indoor.RegionID) bool {
	for _, x := range rs {
		if x == r {
			return true
		}
	}
	return false
}

// grow returns s resized to n entries, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
