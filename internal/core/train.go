package core

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"c2mn/internal/features"
	"c2mn/internal/indoor"
	"c2mn/internal/lbfgs"
	"c2mn/internal/seq"
)

// TrainStats reports the outcome of a training run.
type TrainStats struct {
	// Iterations is the number of alternate-learning steps executed.
	Iterations int
	// Converged is true when ‖w̄−w‖∞ ≤ δ stopped the run.
	Converged bool
	// Swaps counts how often the configured variable switched.
	Swaps int
	// PLTrace holds the estimated pseudo-likelihood after each step
	// (relative values, Eq. 8).
	PLTrace []float64
	// Elapsed is the wall-clock training time.
	Elapsed time.Duration
}

// trainSeq is the per-object training state.
type trainSeq struct {
	ctx   *features.SeqContext
	truth seq.Labels
	// confR / confE hold the configured variable Ā (only the one
	// matching the current A is consulted).
	confR []indoor.RegionID
	confE []seq.Event

	// nodes caches, for every node of the currently sampled variable B,
	// the candidate Markov-blanket feature vectors (w-independent given
	// the configuration) and the index of the training label.
	nodes []nodeCache
	// counts[i][k] is how many of the M samples chose candidate k at
	// node i during the latest sampling pass.
	counts [][]int
}

// nodeCache holds one node's candidate features in a single flat
// slice, candidate k occupying feats[k*Dim : (k+1)*Dim]. The flat
// layout keeps the sampling pass's dot products on one contiguous
// allocation instead of a pointer-chased slice-of-slices.
type nodeCache struct {
	feats   []float64 // flat candidate features, features.Dim stride
	ncand   int       // number of candidates
	trueIdx int       // index of the empirical label; -1 when unknown
}

// cand returns candidate k's feature vector view.
func (nc *nodeCache) cand(k int) []float64 {
	return nc.feats[k*features.Dim : (k+1)*features.Dim]
}

// snapshot stores the Δf̄ information of the best-PL step (Eq. 8).
type snapshot struct {
	// deltas[s][i][k] = f(cand k) − f(true) for sequence s, node i.
	deltas [][][][]float32
	counts [][][]int
}

// Train runs Algorithm 1 (alternate learning with MCMC inference) on
// labeled sequences and returns the learned model.
//
// Interpretation notes (the paper's Algorithm 1 leaves two details
// open):
//   - "MCMC sampling over P(bi | MB(bi, Ā), ŵ)" is realised node-wise:
//     each node of the sampled variable draws from its exact local
//     conditional with the other variable fixed to Ā and its same-type
//     neighbours fixed to their training labels (the pseudo-likelihood
//     conditioning). The M instances are i.i.d. draws from that
//     conditional.
//   - every step updates the full weight vector; the partial
//     convergence test ‖w̄A−wA‖∞ ≤ δ (line 22) decides whether the next
//     step keeps the current configuration Ā or reconfigures with the
//     averaged samples B̄ and swaps roles (lines 24–26).
func Train(space *indoor.Space, data []seq.LabeledSequence, cfg Config) (*Model, TrainStats, error) {
	start := time.Now()
	cfg = cfg.fill()
	if cfg.UseRegionPrior {
		cfg.Params.RegionPrior = RegionPriorFromLabels(space.NumRegions(), data)
	}
	ex, err := features.NewExtractor(space, cfg.Params)
	if err != nil {
		return nil, TrainStats{}, err
	}
	if len(data) == 0 {
		return nil, TrainStats{}, fmt.Errorf("core: no training sequences")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Build per-sequence state and the first configuration (line 1).
	seqs := make([]*trainSeq, 0, len(data))
	for i := range data {
		ls := &data[i]
		if err := ls.Validate(); err != nil {
			return nil, TrainStats{}, fmt.Errorf("core: training data: %w", err)
		}
		if ls.P.Len() == 0 {
			continue
		}
		ts := &trainSeq{
			ctx:   ex.NewSeqContext(&ls.P, ls.Labels.Regions),
			truth: ls.Labels,
		}
		if cfg.FirstVar == VarE {
			ts.confE = InitEvents(ts.ctx)
		} else {
			ts.confR = InitRegions(ts.ctx)
		}
		seqs = append(seqs, ts)
	}
	if len(seqs) == 0 {
		return nil, TrainStats{}, fmt.Errorf("core: all training sequences empty")
	}

	// Random initial weights w0.
	w := make([]float64, features.Dim)
	for i := range w {
		w[i] = rng.Float64() * 0.1
	}

	a := cfg.FirstVar // the configured variable A; we sample B = a.Other()
	for _, ts := range seqs {
		ts.buildNodeCache(a.Other())
	}

	stats := TrainStats{}
	// One L-BFGS state per sampled variable: the two alternating
	// subproblems have different curvature, and mixing their gradient
	// histories degrades the search direction.
	steppers := map[Var]*lbfgs.Stepper{}
	for _, v := range []Var{VarE, VarR} {
		st := lbfgs.NewStepper(8, features.Dim)
		st.StepSize = cfg.StepSize
		st.MaxMove = 2.0
		steppers[v] = st
	}

	wHat := append([]float64(nil), w...)
	plHat := 0.0
	var best snapshot
	first := true
	grad := make([]float64, features.Dim)
	// The sampler draws its per-node logits buffer from one shared
	// inference workspace instead of allocating per pass.
	ws := NewWorkspace()

	for iter := 0; iter < cfg.MaxIter; iter++ {
		stats.Iterations = iter + 1

		// Sampling pass: estimate ∇PL(w) (Eq. 9) and collect counts.
		for i := range grad {
			grad[i] = 0
		}
		var touched [features.Dim]bool
		for _, ts := range seqs {
			ts.samplePass(w, cfg.M, rng, grad, ws)
			ts.markTouched(&touched)
		}
		// The prior term applies to the weights participating in this
		// step's subproblem. Components of cliques that involve no
		// sampled node (e.g. fsm/fst/fsc while sampling E) are frozen:
		// the step's pseudo-likelihood does not depend on them, and
		// decaying them between alternations would undo the other
		// variable's learning.
		for i := range grad {
			if touched[i] {
				grad[i] += w[i] / cfg.Sigma2
			}
		}

		// PL bookkeeping (Eq. 8): estimate PL(w) relative to PL(ŵ)
		// using the Δf̄ snapshot, and refresh the snapshot when the
		// estimate improves (lines 10–16).
		var pl float64
		if first {
			plHat = 0
			copy(wHat, w)
			best = takeSnapshot(seqs)
			pl = 0
			first = false
		} else {
			pl = estimatePL(plHat, wHat, w, cfg, &best)
			if pl < plHat {
				plHat = pl
				copy(wHat, w)
				best = takeSnapshot(seqs)
			}
		}
		stats.PLTrace = append(stats.PLTrace, pl)

		// L-BFGS update (line 17) and convergence checks (lines 18–26).
		wBar := steppers[a.Other()].Step(w, pl, append([]float64(nil), grad...))
		for i := range wBar {
			if !touched[i] {
				wBar[i] = w[i]
			}
		}
		if lbfgs.InfNormDiff(wBar, w) <= cfg.Delta {
			w = wBar
			stats.Converged = true
			break
		}
		aConverged := infNormDiffIdx(wBar, w, WeightIdx(a)) <= cfg.Delta
		w = wBar
		if !aConverged {
			// Reconfigure with the averaged samples B̄ and swap roles.
			for _, ts := range seqs {
				ts.adoptAveragedSamples(a.Other())
			}
			a = a.Other()
			for _, ts := range seqs {
				ts.buildNodeCache(a.Other())
			}
			stats.Swaps++
		}
	}

	stats.Elapsed = time.Since(start)
	m := &Model{Weights: w, Params: cfg.Params}
	if err := m.Validate(); err != nil {
		return nil, stats, err
	}
	return m, stats, nil
}

// buildNodeCache prepares the candidate feature vectors for every node
// of the sampled variable b, conditioning on the configured variable
// and the training labels of b's neighbours.
func (ts *trainSeq) buildNodeCache(b Var) {
	n := ts.ctx.Len()
	ts.nodes = make([]nodeCache, n)
	ts.counts = make([][]int, n)
	for i := 0; i < n; i++ {
		var nc nodeCache
		if b == VarE {
			nc.ncand = seq.NumEvents
			nc.feats = make([]float64, nc.ncand*features.Dim)
			for e := 0; e < seq.NumEvents; e++ {
				ts.ctx.LocalEventFeatures(ts.confR, ts.truth.Events, i, seq.Event(e), nc.cand(e))
			}
			nc.trueIdx = int(ts.truth.Events[i])
		} else {
			cands := ts.ctx.Candidates[i]
			nc.ncand = len(cands)
			nc.feats = make([]float64, nc.ncand*features.Dim)
			nc.trueIdx = -1
			for k, r := range cands {
				ts.ctx.LocalRegionFeatures(ts.truth.Regions, ts.confE, i, r, nc.cand(k))
				if r == ts.truth.Regions[i] {
					nc.trueIdx = k
				}
			}
		}
		ts.nodes[i] = nc
		ts.counts[i] = make([]int, nc.ncand)
	}
}

// samplePass draws M label samples per node from the local
// conditionals under w, accumulates the gradient contribution
// Σ_i (1/M) Σ_j Δf(j) into grad, and records the sample counts. The
// per-node probability buffer comes from the shared workspace ws.
func (ts *trainSeq) samplePass(w []float64, m int, rng *rand.Rand, grad []float64, ws *Workspace) {
	for i := range ts.nodes {
		nc := &ts.nodes[i]
		if nc.trueIdx < 0 {
			continue // unlabeled node: no empirical features
		}
		k := nc.ncand
		ws.logits = grow(ws.logits, k)
		p := ws.logits
		maxL := math.Inf(-1)
		for c := 0; c < k; c++ {
			p[c] = dot(w, nc.cand(c))
			if p[c] > maxL {
				maxL = p[c]
			}
		}
		normalizeExp(p, maxL)
		counts := ts.counts[i]
		for c := range counts {
			counts[c] = 0
		}
		for j := 0; j < m; j++ {
			counts[sampleIndex(p, rng)]++
		}
		// Gradient: Σ_c (count_c/M)(f_c − f_true).
		ft := nc.cand(nc.trueIdx)
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue
			}
			wc := float64(counts[c]) / float64(m)
			fc := nc.cand(c)
			for d := range grad {
				grad[d] += wc * (fc[d] - ft[d])
			}
		}
	}
}

// markTouched flags the weight components that participate in any of
// this sequence's candidate features, i.e. the components this step's
// pseudo-likelihood actually depends on.
func (ts *trainSeq) markTouched(touched *[features.Dim]bool) {
	for i := range ts.nodes {
		nc := &ts.nodes[i]
		if nc.trueIdx < 0 {
			continue
		}
		for d, v := range nc.feats {
			if v != 0 {
				touched[d%features.Dim] = true
			}
		}
	}
}

// adoptAveragedSamples replaces the configuration of variable b with
// the per-node majority of the latest samples (line 25's averaging,
// realised as the sample mode for discrete labels).
func (ts *trainSeq) adoptAveragedSamples(b Var) {
	n := ts.ctx.Len()
	if b == VarE {
		ts.confE = make([]seq.Event, n)
		for i := 0; i < n; i++ {
			ts.confE[i] = seq.Event(argmaxInt(ts.counts[i]))
		}
	} else {
		ts.confR = make([]indoor.RegionID, n)
		for i := 0; i < n; i++ {
			if len(ts.ctx.Candidates[i]) == 0 {
				ts.confR[i] = indoor.NoRegion
				continue
			}
			ts.confR[i] = ts.ctx.Candidates[i][argmaxInt(ts.counts[i])]
		}
	}
}

// takeSnapshot captures the Δf̄ and counts of the current step for the
// Eq. 8 estimate.
func takeSnapshot(seqs []*trainSeq) snapshot {
	sn := snapshot{
		deltas: make([][][][]float32, len(seqs)),
		counts: make([][][]int, len(seqs)),
	}
	for s, ts := range seqs {
		sn.deltas[s] = make([][][]float32, len(ts.nodes))
		sn.counts[s] = make([][]int, len(ts.nodes))
		for i := range ts.nodes {
			nc := &ts.nodes[i]
			if nc.trueIdx < 0 {
				continue
			}
			ft := nc.cand(nc.trueIdx)
			ds := make([][]float32, nc.ncand)
			for c := 0; c < nc.ncand; c++ {
				fc := nc.cand(c)
				d := make([]float32, features.Dim)
				for x := 0; x < features.Dim; x++ {
					d[x] = float32(fc[x] - ft[x])
				}
				ds[c] = d
			}
			sn.deltas[s][i] = ds
			sn.counts[s][i] = append([]int(nil), ts.counts[i]...)
		}
	}
	return sn
}

// estimatePL evaluates Eq. 8: PL(w) ≈ PL(ŵ) + Σ_i log{(1/M) Σ_j
// exp((w−ŵ)ᵀ Δf̄(j))} + (wᵀw − ŵᵀŵ)/2σ², with the per-sample sum
// collapsed over identical candidates via the stored counts.
func estimatePL(plHat float64, wHat, w []float64, cfg Config, sn *snapshot) float64 {
	dw := make([]float64, len(w))
	for i := range w {
		dw[i] = w[i] - wHat[i]
	}
	pl := plHat
	for s := range sn.deltas {
		for i := range sn.deltas[s] {
			ds := sn.deltas[s][i]
			if ds == nil {
				continue
			}
			counts := sn.counts[s][i]
			total := 0
			sum := 0.0
			for c := range ds {
				if counts[c] == 0 {
					continue
				}
				e := 0.0
				for x := range dw {
					e += dw[x] * float64(ds[c][x])
				}
				sum += float64(counts[c]) * math.Exp(e)
				total += counts[c]
			}
			if total > 0 && sum > 0 {
				pl += math.Log(sum / float64(total))
			}
		}
	}
	var ww, hh float64
	for i := range w {
		ww += w[i] * w[i]
		hh += wHat[i] * wHat[i]
	}
	pl += (ww - hh) / (2 * cfg.Sigma2)
	return pl
}

// sampleIndex draws one index from a normalised distribution.
func sampleIndex(p []float64, rng *rand.Rand) int {
	u := rng.Float64()
	acc := 0.0
	for i, v := range p {
		acc += v
		if u < acc {
			return i
		}
	}
	return len(p) - 1
}

func argmaxInt(xs []int) int {
	best, bestV := 0, -1
	for i, v := range xs {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

func infNormDiffIdx(a, b []float64, idx []int) float64 {
	m := 0.0
	for _, i := range idx {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}
