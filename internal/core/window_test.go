package core

import (
	"math/rand"
	"testing"

	"c2mn/internal/features"
	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// longSequence chains several room-to-room trips into one long
// labeled trajectory.
func longSequence(trips int, rngSeed int64) seq.LabeledSequence {
	rng := rand.New(rand.NewSource(rngSeed))
	var out seq.LabeledSequence
	out.P.ObjectID = "long"
	tOffset := 0.0
	cur := 0
	for trip := 0; trip < trips; trip++ {
		next := (cur + 1 + rng.Intn(2)) % 3
		ls := synthSequence("part", indoor.RegionID(cur), indoor.RegionID(next), rng)
		for i := range ls.P.Records {
			rec := ls.P.Records[i]
			rec.T += tOffset
			out.P.Records = append(out.P.Records, rec)
			out.Labels.Regions = append(out.Labels.Regions, ls.Labels.Regions[i])
			out.Labels.Events = append(out.Labels.Events, ls.Labels.Events[i])
		}
		tOffset = out.P.Records[len(out.P.Records)-1].T + 10
		cur = next
	}
	return out
}

func TestAnnotateWindowedMatchesWhole(t *testing.T) {
	space := testSpace(t)
	train := synthDataset(12, 41)
	m, _, err := TrainExact(space, train, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ex, _ := features.NewExtractor(space, m.Params)
	long := longSequence(8, 5)
	ctx := ex.NewSeqContext(&long.P, nil)
	whole := m.Annotate(ctx, InferOptions{})
	windowed := m.AnnotateWindowed(ex, &long.P, WindowOptions{Window: 30, Overlap: 10})

	n := long.P.Len()
	if len(windowed.Regions) != n || len(windowed.Events) != n {
		t.Fatalf("windowed labels misaligned")
	}
	agreeR, agreeE := 0, 0
	for i := 0; i < n; i++ {
		if windowed.Regions[i] == whole.Regions[i] {
			agreeR++
		}
		if windowed.Events[i] == whole.Events[i] {
			agreeE++
		}
	}
	if fr := float64(agreeR) / float64(n); fr < 0.9 {
		t.Errorf("windowed region agreement = %.3f, want >= 0.9", fr)
	}
	if fe := float64(agreeE) / float64(n); fe < 0.9 {
		t.Errorf("windowed event agreement = %.3f, want >= 0.9", fe)
	}
}

func TestAnnotateWindowedShortSequence(t *testing.T) {
	space := testSpace(t)
	train := synthDataset(6, 42)
	m, _, err := TrainExact(space, train, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ex, _ := features.NewExtractor(space, m.Params)
	rng := rand.New(rand.NewSource(9))
	ls := synthSequence("short", 0, 1, rng)
	ctx := ex.NewSeqContext(&ls.P, nil)
	whole := m.Annotate(ctx, InferOptions{})
	windowed := m.AnnotateWindowed(ex, &ls.P, WindowOptions{})
	for i := range whole.Regions {
		if whole.Regions[i] != windowed.Regions[i] || whole.Events[i] != windowed.Events[i] {
			t.Fatalf("short sequence should take the whole-sequence path, differs at %d", i)
		}
	}
}

func TestWindowOptionsFill(t *testing.T) {
	o := WindowOptions{}.fill()
	if o.Window != 256 || o.Overlap != 32 {
		t.Errorf("defaults = %+v", o)
	}
	o = WindowOptions{Window: 10, Overlap: -1}.fill()
	if o.Window != 10 || o.Overlap != 0 {
		t.Errorf("explicit = %+v", o)
	}
}
