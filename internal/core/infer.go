package core

import (
	"math"
	"math/rand"

	"c2mn/internal/features"
	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// regionConditional fills probs with the local conditional
// P(ri = cand | MB(ri), w) over ctx.Candidates[i], and feats[k] with
// the Markov-blanket feature vector of each candidate. feats may be
// nil when only probabilities are needed.
func regionConditional(w []float64, ctx *features.SeqContext, R []indoor.RegionID, E []seq.Event, i int, probs []float64, feats [][]float64) {
	cands := ctx.Candidates[i]
	buf := make([]float64, features.Dim)
	maxE := math.Inf(-1)
	for k, r := range cands {
		ctx.LocalRegionFeatures(R, E, i, r, buf)
		if feats != nil {
			copy(feats[k], buf)
		}
		probs[k] = dot(w, buf)
		if probs[k] > maxE {
			maxE = probs[k]
		}
	}
	normalizeExp(probs[:len(cands)], maxE)
}

// eventConditional is the event-node analogue over {Pass, Stay}
// (indexed by the seq.Event value).
func eventConditional(w []float64, ctx *features.SeqContext, R []indoor.RegionID, E []seq.Event, i int, probs []float64, feats [][]float64) {
	buf := make([]float64, features.Dim)
	maxE := math.Inf(-1)
	for e := 0; e < seq.NumEvents; e++ {
		ctx.LocalEventFeatures(R, E, i, seq.Event(e), buf)
		if feats != nil {
			copy(feats[e], buf)
		}
		probs[e] = dot(w, buf)
		if probs[e] > maxE {
			maxE = probs[e]
		}
	}
	normalizeExp(probs[:seq.NumEvents], maxE)
}

// normalizeExp turns log-potentials into a normalised distribution in
// place, with max subtraction for stability.
func normalizeExp(logits []float64, maxL float64) {
	sum := 0.0
	for k := range logits {
		logits[k] = math.Exp(logits[k] - maxL)
		sum += logits[k]
	}
	if sum <= 0 {
		u := 1 / float64(len(logits))
		for k := range logits {
			logits[k] = u
		}
		return
	}
	for k := range logits {
		logits[k] /= sum
	}
}

// InferOptions tunes Annotate.
type InferOptions struct {
	// MaxSweeps bounds the ICM coordinate-ascent sweeps. Default 20.
	MaxSweeps int
	// AnnealSweeps, when positive, adds a second inference start:
	// annealed Gibbs sweeps followed by ICM, keeping whichever fixed
	// point scores higher. Off by default — on the evaluated workloads
	// the annealed optima score higher but do not label better, so the
	// deterministic ICM start is preferred.
	AnnealSweeps int
	// Seed drives the annealing randomness (deterministic per seed).
	Seed int64
}

// Annotate labels a p-sequence with the most likely joint (R, E)
// configuration under the model. Regions start from their
// maximum-overlap candidates and events from the density tags; ICM
// (iterated conditional modes) sweeps then maximise each node's local
// conditional until a fixed point. Every accepted move increases the
// global score w·f(P,R,E), because the local Markov-blanket feature
// deltas equal the global ones, so the procedure terminates.
func (m *Model) Annotate(ctx *features.SeqContext, opts InferOptions) seq.Labels {
	if opts.MaxSweeps <= 0 {
		opts.MaxSweeps = 20
	}
	n := ctx.Len()
	R := InitRegions(ctx)
	E := InitEvents(ctx)
	if n == 0 {
		return seq.Labels{Regions: R, Events: E}
	}

	// First candidate: ICM from the deterministic initialisation.
	bestR := append([]indoor.RegionID(nil), R...)
	bestE := append([]seq.Event(nil), E...)
	m.icm(ctx, bestR, bestE, opts.MaxSweeps)
	m.blockICM(ctx, bestR, bestE, opts.MaxSweeps)
	bestScore := m.Score(ctx, bestR, bestE)

	// Second candidate: annealed Gibbs from the initialisation, then
	// ICM; keep whichever fixed point scores higher. The annealing
	// escapes local optima near region boundaries that greedy ICM
	// cannot leave.
	if opts.AnnealSweeps > 0 {
		m.anneal(ctx, R, E, opts)
		m.icm(ctx, R, E, opts.MaxSweeps)
		m.blockICM(ctx, R, E, opts.MaxSweeps)
		if s := m.Score(ctx, R, E); s > bestScore {
			bestScore = s
			copy(bestR, R)
			copy(bestE, E)
		}
	}
	return seq.Labels{Regions: bestR, Events: bestE}
}

// blockICM interleaves run-level region moves with node-level sweeps:
// each maximal same-region run is tentatively relabeled as a whole to
// every candidate of its records, keeping score-improving moves.
// Single-node ICM cannot make these moves once transition potentials
// lock a run into a uniform (possibly wrong) label; relabeling the
// block escapes that local optimum. Every accepted move increases the
// global score, so the procedure terminates.
func (m *Model) blockICM(ctx *features.SeqContext, R []indoor.RegionID, E []seq.Event, maxSweeps int) {
	n := ctx.Len()
	if n == 0 {
		return
	}
	cur := m.Score(ctx, R, E)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		improved := false
		for a := 0; a < n; {
			b := a
			for b+1 < n && R[b+1] == R[a] {
				b++
			}
			orig := R[a]
			// Candidate labels: union over the run's records.
			seen := map[indoor.RegionID]bool{orig: true}
			bestLabel, bestScore := orig, cur
			for x := a; x <= b; x++ {
				for _, r := range ctx.Candidates[x] {
					if seen[r] {
						continue
					}
					seen[r] = true
					for y := a; y <= b; y++ {
						R[y] = r
					}
					if s := m.Score(ctx, R, E); s > bestScore {
						bestLabel, bestScore = r, s
					}
				}
			}
			for y := a; y <= b; y++ {
				R[y] = bestLabel
			}
			if bestLabel != orig {
				improved = true
				cur = bestScore
			}
			a = b + 1
		}
		if !improved {
			break
		}
		// Let node-level moves refine boundaries after block changes.
		m.icm(ctx, R, E, maxSweeps)
		cur = m.Score(ctx, R, E)
	}
}

// anneal runs tempered Gibbs sweeps over R and E in place.
func (m *Model) anneal(ctx *features.SeqContext, R []indoor.RegionID, E []seq.Event, opts InferOptions) {
	n := ctx.Len()
	rng := rand.New(rand.NewSource(opts.Seed + 0x5eed))
	buf := make([]float64, features.Dim)
	logits := make([]float64, 0, 16)
	for sweep := 0; sweep < opts.AnnealSweeps; sweep++ {
		temp := 2.0 * float64(opts.AnnealSweeps-sweep) / float64(opts.AnnealSweeps)
		for i := 0; i < n; i++ {
			cands := ctx.Candidates[i]
			if len(cands) > 1 {
				logits = logits[:0]
				maxL := math.Inf(-1)
				for _, r := range cands {
					ctx.LocalRegionFeatures(R, E, i, r, buf)
					v := dot(m.Weights, buf) / temp
					logits = append(logits, v)
					if v > maxL {
						maxL = v
					}
				}
				normalizeExp(logits, maxL)
				R[i] = cands[sampleIndex(logits, rng)]
			}
			logits = logits[:0]
			maxL := math.Inf(-1)
			for e := 0; e < seq.NumEvents; e++ {
				ctx.LocalEventFeatures(R, E, i, seq.Event(e), buf)
				v := dot(m.Weights, buf) / temp
				logits = append(logits, v)
				if v > maxL {
					maxL = v
				}
			}
			normalizeExp(logits, maxL)
			E[i] = seq.Event(sampleIndex(logits, rng))
		}
	}
}

// icm runs coordinate-ascent sweeps over R and E in place until a
// fixed point; every accepted move increases the global score (the
// local Markov-blanket feature deltas equal the global ones), so the
// loop terminates.
func (m *Model) icm(ctx *features.SeqContext, R []indoor.RegionID, E []seq.Event, maxSweeps int) {
	n := ctx.Len()
	buf := make([]float64, features.Dim)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestV := R[i], math.Inf(-1)
			for _, r := range ctx.Candidates[i] {
				ctx.LocalRegionFeatures(R, E, i, r, buf)
				if v := dot(m.Weights, buf); v > bestV {
					best, bestV = r, v
				}
			}
			if best != R[i] {
				R[i] = best
				changed = true
			}
		}
		for i := 0; i < n; i++ {
			best, bestV := E[i], math.Inf(-1)
			for e := 0; e < seq.NumEvents; e++ {
				ctx.LocalEventFeatures(R, E, i, seq.Event(e), buf)
				if v := dot(m.Weights, buf); v > bestV {
					best, bestV = seq.Event(e), v
				}
			}
			if best != E[i] {
				E[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// AnnotateSequence is a convenience wrapper building the sequence
// context and returning merged m-semantics along with the labels.
func (m *Model) AnnotateSequence(ex *features.Extractor, p *seq.PSequence) (seq.Labels, seq.MSSequence) {
	ctx := ex.NewSeqContext(p, nil)
	labels := m.Annotate(ctx, InferOptions{})
	return labels, seq.Merge(p, labels)
}
