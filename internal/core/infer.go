package core

import (
	"math"

	"c2mn/internal/features"
	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// regionConditional fills probs with the local conditional
// P(ri = cand | MB(ri), w) over ctx.Candidates[i], and feats[k] with
// the Markov-blanket feature vector of each candidate. feats may be
// nil when only probabilities are needed. buf is caller-provided
// features.Dim scratch, keeping the conditionals allocation-free.
func regionConditional(w []float64, ctx *features.SeqContext, R []indoor.RegionID, E []seq.Event, i int, probs []float64, feats [][]float64, buf []float64) {
	cands := ctx.Candidates[i]
	maxE := math.Inf(-1)
	for k, r := range cands {
		ctx.LocalRegionFeatures(R, E, i, r, buf)
		if feats != nil {
			copy(feats[k], buf)
		}
		probs[k] = dot(w, buf)
		if probs[k] > maxE {
			maxE = probs[k]
		}
	}
	normalizeExp(probs[:len(cands)], maxE)
}

// eventConditional is the event-node analogue over {Pass, Stay}
// (indexed by the seq.Event value).
func eventConditional(w []float64, ctx *features.SeqContext, R []indoor.RegionID, E []seq.Event, i int, probs []float64, feats [][]float64, buf []float64) {
	maxE := math.Inf(-1)
	for e := 0; e < seq.NumEvents; e++ {
		ctx.LocalEventFeatures(R, E, i, seq.Event(e), buf)
		if feats != nil {
			copy(feats[e], buf)
		}
		probs[e] = dot(w, buf)
		if probs[e] > maxE {
			maxE = probs[e]
		}
	}
	normalizeExp(probs[:seq.NumEvents], maxE)
}

// normalizeExp turns log-potentials into a normalised distribution in
// place, with max subtraction for stability.
func normalizeExp(logits []float64, maxL float64) {
	sum := 0.0
	for k := range logits {
		logits[k] = math.Exp(logits[k] - maxL)
		sum += logits[k]
	}
	if sum <= 0 {
		u := 1 / float64(len(logits))
		for k := range logits {
			logits[k] = u
		}
		return
	}
	for k := range logits {
		logits[k] /= sum
	}
}

// InferOptions tunes Annotate.
type InferOptions struct {
	// MaxSweeps bounds the ICM coordinate-ascent sweeps. Default 20.
	MaxSweeps int
	// AnnealSweeps, when positive, adds a second inference start:
	// annealed Gibbs sweeps followed by ICM, keeping whichever fixed
	// point scores higher. Off by default — on the evaluated workloads
	// the annealed optima score higher but do not label better, so the
	// deterministic ICM start is preferred.
	AnnealSweeps int
	// Seed drives the annealing randomness (deterministic per seed).
	Seed int64
}

// Annotate labels a p-sequence with the most likely joint (R, E)
// configuration under the model. Regions start from their
// maximum-overlap candidates and events from the density tags; ICM
// (iterated conditional modes) sweeps then maximise each node's local
// conditional until a fixed point. Every accepted move increases the
// global score w·f(P,R,E), because the local Markov-blanket feature
// deltas equal the global ones, so the procedure terminates.
//
// Annotate allocates a throwaway Workspace; callers on a hot path
// should pool a Workspace and use its Annotate method directly.
func (m *Model) Annotate(ctx *features.SeqContext, opts InferOptions) seq.Labels {
	var ws Workspace
	return ws.Annotate(m, ctx, opts)
}

// AnnotateSequence is a convenience wrapper building the sequence
// context and returning merged m-semantics along with the labels.
func (m *Model) AnnotateSequence(ex *features.Extractor, p *seq.PSequence, opts InferOptions) (seq.Labels, seq.MSSequence) {
	ctx := ex.NewSeqContext(p, nil)
	labels := m.Annotate(ctx, opts)
	return labels, seq.Merge(p, labels)
}
