package core

import (
	"math/rand"
	"testing"

	"c2mn/internal/features"
	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

func TestAnnotateWithAnnealing(t *testing.T) {
	space := testSpace(t)
	train := synthDataset(10, 31)
	m, _, err := TrainExact(space, train, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ex, _ := features.NewExtractor(space, m.Params)
	rng := rand.New(rand.NewSource(77))
	ls := synthSequence("a", 0, 2, rng)
	ctx := ex.NewSeqContext(&ls.P, nil)

	plain := m.Annotate(ctx, InferOptions{})
	annealed := m.Annotate(ctx, InferOptions{AnnealSweeps: 5, Seed: 3})
	// The annealed variant keeps whichever fixed point scores higher,
	// so its score can never be below the plain ICM one.
	sPlain := m.Score(ctx, plain.Regions, plain.Events)
	sAnneal := m.Score(ctx, annealed.Regions, annealed.Events)
	if sAnneal < sPlain-1e-9 {
		t.Errorf("annealed score %v below plain %v", sAnneal, sPlain)
	}
	// Deterministic per seed.
	again := m.Annotate(ctx, InferOptions{AnnealSweeps: 5, Seed: 3})
	for i := range annealed.Regions {
		if annealed.Regions[i] != again.Regions[i] || annealed.Events[i] != again.Events[i] {
			t.Fatalf("annealing not deterministic at %d", i)
		}
	}
}

func TestAnnotateEmptySequence(t *testing.T) {
	space := testSpace(t)
	m := NewModel(testParams())
	ex, _ := features.NewExtractor(space, m.Params)
	empty := &seq.PSequence{ObjectID: "empty"}
	ctx := ex.NewSeqContext(empty, nil)
	labels := m.Annotate(ctx, InferOptions{})
	if len(labels.Regions) != 0 || len(labels.Events) != 0 {
		t.Errorf("empty sequence labels = %+v", labels)
	}
}

func TestAnnotateSingleRecord(t *testing.T) {
	space := testSpace(t)
	train := synthDataset(6, 32)
	m, _, err := TrainExact(space, train, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ex, _ := features.NewExtractor(space, m.Params)
	one := &seq.PSequence{ObjectID: "one", Records: []seq.Record{
		{Loc: indoor.Loc(5, 9, 0), T: 10}, // center of room A (region 0)
	}}
	ctx := ex.NewSeqContext(one, nil)
	labels := m.Annotate(ctx, InferOptions{})
	if len(labels.Regions) != 1 {
		t.Fatalf("labels = %+v", labels)
	}
	if labels.Regions[0] != 0 {
		t.Errorf("single record in room A labeled %v", labels.Regions[0])
	}
}

func TestConfigFillDefaults(t *testing.T) {
	cfg := Config{}.fill()
	if cfg.M != 800 || cfg.MaxIter != 90 || cfg.Delta != 1e-3 || cfg.Sigma2 != 0.5 {
		t.Errorf("paper defaults wrong: %+v", cfg)
	}
	if cfg.Params.V != 15 {
		t.Errorf("default params not applied: %+v", cfg.Params)
	}
	// Decoupled strips segmentation cliques.
	cfg = Config{Decoupled: true}.fill()
	if cfg.Params.Cliques.Has(features.SegmentationES) || cfg.Params.Cliques.Has(features.SegmentationSS) {
		t.Errorf("decoupled fill kept segmentation cliques")
	}
	// Explicit values survive.
	cfg = Config{M: 5, MaxIter: 7, Delta: 0.1, Sigma2: 2, StepSize: 0.5}.fill()
	if cfg.M != 5 || cfg.MaxIter != 7 || cfg.Delta != 0.1 || cfg.Sigma2 != 2 || cfg.StepSize != 0.5 {
		t.Errorf("explicit config overwritten: %+v", cfg)
	}
}
