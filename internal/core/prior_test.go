package core

import (
	"bytes"
	"testing"

	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

func TestRegionPriorFromLabels(t *testing.T) {
	data := []seq.LabeledSequence{
		{
			P: seq.PSequence{Records: make([]seq.Record, 4)},
			Labels: seq.Labels{
				Regions: []indoor.RegionID{0, 0, 0, 1},
				Events:  make([]seq.Event, 4),
			},
		},
	}
	prior := RegionPriorFromLabels(3, data)
	if len(prior) != 3 {
		t.Fatalf("len = %d", len(prior))
	}
	// Region 0 is most frequent: prior 1. Region 2 unseen: smoothed > 0.
	if prior[0] != 1 {
		t.Errorf("prior[0] = %v, want 1", prior[0])
	}
	if prior[1] <= prior[2] {
		t.Errorf("prior[1]=%v should exceed unseen prior[2]=%v", prior[1], prior[2])
	}
	if prior[2] <= 0 {
		t.Errorf("unseen region prior = %v, must stay positive", prior[2])
	}
	// Out-of-range labels are ignored.
	data[0].Labels.Regions[0] = indoor.NoRegion
	if p := RegionPriorFromLabels(3, data); p[0] != 1 && p[1] != 1 {
		t.Errorf("some region must normalise to 1: %v", p)
	}
}

func TestTrainWithRegionPrior(t *testing.T) {
	space := testSpace(t)
	train := synthDataset(8, 21)
	cfg := testConfig()
	cfg.UseRegionPrior = true
	m, _, err := TrainExact(space, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Params.RegionPrior) != space.NumRegions() {
		t.Fatalf("prior not attached to model: %v", m.Params.RegionPrior)
	}
	// The prior must survive model serialisation so annotation matches.
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadModelJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Params.RegionPrior {
		if m.Params.RegionPrior[i] != m2.Params.RegionPrior[i] {
			t.Fatalf("prior changed after round trip at %d", i)
		}
	}
	// MCMC path accepts the flag too.
	cfg.MaxIter = 5
	if _, _, err := Train(space, train, cfg); err != nil {
		t.Fatal(err)
	}
}
