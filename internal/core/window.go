package core

import (
	"c2mn/internal/features"
	"c2mn/internal/seq"
)

// WindowOptions tunes AnnotateWindowed.
type WindowOptions struct {
	// Window is the number of records labeled per chunk. Default 256.
	Window int
	// Overlap is the number of context records included on each side
	// of a chunk; their labels are discarded. Default 32.
	Overlap int
	// Infer is passed through to the per-chunk inference.
	Infer InferOptions
}

func (o WindowOptions) fill() WindowOptions {
	if o.Window <= 0 {
		o.Window = 256
	}
	if o.Overlap < 0 {
		o.Overlap = 0
	} else if o.Overlap == 0 {
		o.Overlap = 32
	}
	return o
}

// AnnotateWindowed labels a long p-sequence in overlapping chunks:
// each chunk is annotated with Overlap records of context on both
// sides, and only the core labels are kept. Inference cost per chunk
// is bounded regardless of total sequence length, making the method
// suitable for day-long streams; the overlap preserves the sequential
// context that the transition, synchronization and segmentation
// cliques need near chunk borders.
func (m *Model) AnnotateWindowed(ex *features.Extractor, p *seq.PSequence, opts WindowOptions) seq.Labels {
	opts = opts.fill()
	n := p.Len()
	if n <= opts.Window+2*opts.Overlap {
		ctx := ex.NewSeqContext(p, nil)
		return m.Annotate(ctx, opts.Infer)
	}
	out := seq.NewLabels(n)
	for start := 0; start < n; start += opts.Window {
		end := start + opts.Window
		if end > n {
			end = n
		}
		lo := start - opts.Overlap
		if lo < 0 {
			lo = 0
		}
		hi := end + opts.Overlap
		if hi > n {
			hi = n
		}
		chunk := seq.PSequence{
			ObjectID: p.ObjectID,
			Records:  p.Records[lo:hi],
		}
		ctx := ex.NewSeqContext(&chunk, nil)
		labels := m.Annotate(ctx, opts.Infer)
		for i := start; i < end; i++ {
			out.Regions[i] = labels.Regions[i-lo]
			out.Events[i] = labels.Events[i-lo]
		}
	}
	return out
}
