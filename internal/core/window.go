package core

import (
	"c2mn/internal/features"
	"c2mn/internal/seq"
)

// DefaultWindow and DefaultOverlap are the chunking defaults applied
// when WindowOptions leaves them zero.
const (
	DefaultWindow  = 256
	DefaultOverlap = 32
)

// WindowOptions tunes AnnotateWindowed.
type WindowOptions struct {
	// Window is the number of records labeled per chunk. Default 256.
	Window int
	// Overlap is the number of context records included on each side
	// of a chunk; their labels are discarded. Default 32.
	Overlap int
	// Infer is passed through to the per-chunk inference.
	Infer InferOptions
}

func (o WindowOptions) fill() WindowOptions {
	if o.Window <= 0 {
		o.Window = DefaultWindow
	}
	if o.Overlap < 0 {
		o.Overlap = 0
	} else if o.Overlap == 0 {
		o.Overlap = DefaultOverlap
	}
	return o
}

// AnnotateWindowed labels a long p-sequence in overlapping chunks:
// each chunk is annotated with Overlap records of context on both
// sides, and only the core labels are kept. Inference cost per chunk
// is bounded regardless of total sequence length, making the method
// suitable for day-long streams; the overlap preserves the sequential
// context that the transition, synchronization and segmentation
// cliques need near chunk borders.
//
// AnnotateWindowed allocates a throwaway workspace and context;
// callers on a hot path should pool them and use
// Workspace.AnnotateWindowed directly.
func (m *Model) AnnotateWindowed(ex *features.Extractor, p *seq.PSequence, opts WindowOptions) seq.Labels {
	var ws Workspace
	return ws.AnnotateWindowed(m, &features.SeqContext{Ex: ex}, p, opts)
}
