package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"c2mn/internal/features"
	"c2mn/internal/indoor"
	"c2mn/internal/lbfgs"
	"c2mn/internal/seq"
)

// TrainExact minimises the exact regularised negative log
// pseudo-likelihood (Eq. 6) with full L-BFGS. Unlike Algorithm 1 it
// needs no alternate fixing: because the label domains are small, the
// local expectations over every node's Markov-blanket conditional are
// enumerated exactly — including the re-segmentation of the
// segmentation cliques under each candidate label — with all
// neighbouring nodes held at their training values.
//
// The trainer is deterministic, serves as an oracle for the MCMC
// estimator of Train, and is the subject of the exact-vs-MCMC ablation
// bench.
func TrainExact(space *indoor.Space, data []seq.LabeledSequence, cfg Config) (*Model, TrainStats, error) {
	start := time.Now()
	cfg = cfg.fill()
	if cfg.UseRegionPrior {
		cfg.Params.RegionPrior = RegionPriorFromLabels(space.NumRegions(), data)
	}
	ex, err := features.NewExtractor(space, cfg.Params)
	if err != nil {
		return nil, TrainStats{}, err
	}
	if len(data) == 0 {
		return nil, TrainStats{}, fmt.Errorf("core: no training sequences")
	}

	// Precompute every node's candidate feature vectors once: they do
	// not depend on w. Features are stored flat with a features.Dim
	// stride so the many objective evaluations below walk one
	// contiguous allocation per node.
	type node struct {
		feats   []float64
		ncand   int
		trueIdx int
	}
	cand := func(nd *node, k int) []float64 {
		return nd.feats[k*features.Dim : (k+1)*features.Dim]
	}
	var nodes []node
	for i := range data {
		ls := &data[i]
		if err := ls.Validate(); err != nil {
			return nil, TrainStats{}, fmt.Errorf("core: training data: %w", err)
		}
		ctx := ex.NewSeqContext(&ls.P, ls.Labels.Regions)
		n := ctx.Len()
		for j := 0; j < n; j++ {
			// Region node.
			cands := ctx.Candidates[j]
			rn := node{feats: make([]float64, len(cands)*features.Dim), ncand: len(cands), trueIdx: -1}
			for k, r := range cands {
				ctx.LocalRegionFeatures(ls.Labels.Regions, ls.Labels.Events, j, r, cand(&rn, k))
				if r == ls.Labels.Regions[j] {
					rn.trueIdx = k
				}
			}
			if rn.trueIdx >= 0 && len(cands) > 1 {
				nodes = append(nodes, rn)
			}
			// Event node.
			en := node{feats: make([]float64, seq.NumEvents*features.Dim), ncand: seq.NumEvents, trueIdx: int(ls.Labels.Events[j])}
			for e := 0; e < seq.NumEvents; e++ {
				ctx.LocalEventFeatures(ls.Labels.Regions, ls.Labels.Events, j, seq.Event(e), cand(&en, e))
			}
			nodes = append(nodes, en)
		}
	}
	if len(nodes) == 0 {
		return nil, TrainStats{}, fmt.Errorf("core: no labeled nodes in training data")
	}

	// logits is shared across objective evaluations: L-BFGS calls obj
	// many times per training run and the per-node domains are small,
	// so one grown-once buffer serves every node.
	var logits []float64
	obj := func(w []float64) (float64, []float64) {
		f := 0.0
		g := make([]float64, features.Dim)
		for i := range nodes {
			nd := &nodes[i]
			k := nd.ncand
			maxL := math.Inf(-1)
			logits = grow(logits, k)
			for c := 0; c < k; c++ {
				logits[c] = dot(w, cand(nd, c))
				if logits[c] > maxL {
					maxL = logits[c]
				}
			}
			// logZ and expectation.
			z := 0.0
			for c := 0; c < k; c++ {
				logits[c] = math.Exp(logits[c] - maxL)
				z += logits[c]
			}
			ft := cand(nd, nd.trueIdx)
			f += -dot(w, ft) + maxL + math.Log(z)
			for c := 0; c < k; c++ {
				p := logits[c] / z
				fc := cand(nd, c)
				for d := range g {
					g[d] += p * fc[d]
				}
			}
			for d := range g {
				g[d] -= ft[d]
			}
		}
		for d := range g {
			f += w[d] * w[d] / (2 * cfg.Sigma2)
			g[d] += w[d] / cfg.Sigma2
		}
		return f, g
	}

	w0 := make([]float64, features.Dim)
	res, err := lbfgs.Minimize(obj, w0, lbfgs.Options{MaxIter: cfg.MaxIter, GradTol: 1e-6})
	if err != nil && !errors.Is(err, lbfgs.ErrLineSearch) {
		return nil, TrainStats{}, fmt.Errorf("core: exact training: %w", err)
	}
	// A line-search stall near the optimum still leaves the best
	// iterate in res; the model is usable.
	stats := TrainStats{
		Iterations: res.Iterations,
		Converged:  res.Converged,
		Elapsed:    time.Since(start),
		PLTrace:    []float64{res.F},
	}
	m := &Model{Weights: res.X, Params: cfg.Params}
	if err := m.Validate(); err != nil {
		return nil, stats, err
	}
	return m, stats, nil
}
