package core

import (
	"fmt"
	"math/rand"
	"testing"

	"c2mn/internal/features"
	"c2mn/internal/geom"
	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// randomVenue builds a randomized venue — a grid of rooms over one or
// more floors, randomly doored, with a random subset of rooms carrying
// semantic regions — so the exactness property is checked on geometry
// the handcrafted test venue cannot represent (region-free hallways,
// unreachable room pairs, multiple floors).
func randomVenue(t *testing.T, rng *rand.Rand) *indoor.Space {
	t.Helper()
	b := indoor.NewBuilder()
	floors := 1 + rng.Intn(2)
	gx, gy := 3+rng.Intn(3), 2+rng.Intn(3)
	roomW := 6 + 6*rng.Float64()
	var prevParts []indoor.PartitionID
	for f := 0; f < floors; f++ {
		parts := make([]indoor.PartitionID, gx*gy)
		for y := 0; y < gy; y++ {
			for x := 0; x < gx; x++ {
				x0, y0 := float64(x)*roomW, float64(y)*roomW
				parts[y*gx+x] = b.AddPartition(f, geom.RectPoly(
					geom.Pt(x0, y0), geom.Pt(x0+roomW, y0+roomW)))
			}
		}
		for y := 0; y < gy; y++ {
			for x := 0; x < gx; x++ {
				if x+1 < gx && rng.Float64() < 0.8 {
					b.AddDoor(geom.Pt(float64(x+1)*roomW, (float64(y)+0.5)*roomW),
						parts[y*gx+x], parts[y*gx+x+1])
				}
				if y+1 < gy && rng.Float64() < 0.8 {
					b.AddDoor(geom.Pt((float64(x)+0.5)*roomW, float64(y+1)*roomW),
						parts[y*gx+x], parts[(y+1)*gx+x])
				}
			}
		}
		if f > 0 {
			b.AddDoor(geom.Pt(0.5*roomW, 0.5*roomW), prevParts[0], parts[0])
		}
		for i, p := range parts {
			if rng.Float64() < 0.75 {
				b.AddRegion(fmt.Sprintf("r%d_%d", f, i), p)
			}
		}
		prevParts = parts
	}
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// randomWalkSequence fabricates a p-sequence wandering the venue:
// dwell phases (short steps, long dts) alternating with transit phases
// (long steps, short dts), sometimes drifting outside the venue bounds
// so records with empty candidate sets occur.
func randomWalkSequence(rng *rand.Rand, space *indoor.Space, n int) seq.PSequence {
	bounds := space.Bounds()
	p := seq.PSequence{ObjectID: "rand"}
	x := bounds.Min.X + rng.Float64()*(bounds.Max.X-bounds.Min.X)
	y := bounds.Min.Y + rng.Float64()*(bounds.Max.Y-bounds.Min.Y)
	floor := rng.Intn(len(space.Floors()))
	tcur := 0.0
	dwell := rng.Intn(2) == 0
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.15 {
			dwell = !dwell
		}
		step, dt := 4.0, 4.0
		if dwell {
			step, dt = 0.8, 8+rng.Float64()*6
		}
		x += rng.NormFloat64() * step
		y += rng.NormFloat64() * step
		tcur += dt
		p.Records = append(p.Records, seq.Record{Loc: indoor.Loc(x, y, floor), T: tcur})
	}
	return p
}

// TestAnnotateMatchesReferenceOnRandomVenues is the tentpole's
// property test at full generality: random venues, random wandering
// sequences and random models — including annealed restarts under a
// fixed seed — annotated through the optimized path (geometry cache,
// convergence worklists, fused scoring) must yield labels
// byte-identical to the pre-optimization reference implementation.
func TestAnnotateMatchesReferenceOnRandomVenues(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	optsList := []InferOptions{
		{},
		{MaxSweeps: 4},
		{AnnealSweeps: 3, Seed: 17},
		{MaxSweeps: 6, AnnealSweeps: 2, Seed: 5},
	}
	for trial := 0; trial < 6; trial++ {
		space := randomVenue(t, rng)
		params := testParams()
		params.V = 2 + 6*rng.Float64()
		if trial%2 == 1 {
			params.TimeDecayST = 0.01
			params.TimeDecaySC = 0.005
		}
		m := NewModel(params)
		for i := range m.Weights {
			m.Weights[i] = rng.NormFloat64()
		}
		ex, err := features.NewExtractor(space, params)
		if err != nil {
			t.Fatal(err)
		}
		for si := 0; si < 3; si++ {
			p := randomWalkSequence(rng, space, 20+rng.Intn(60))
			ctx := ex.NewSeqContext(&p, nil)
			for oi, opts := range optsList {
				want := referenceAnnotate(m, ctx, opts)
				got := m.Annotate(ctx, opts)
				for i := range want.Regions {
					if got.Regions[i] != want.Regions[i] || got.Events[i] != want.Events[i] {
						t.Fatalf("trial %d seq %d opts %d: label %d = (%v,%v), reference (%v,%v)",
							trial, si, oi, i, got.Regions[i], got.Events[i], want.Regions[i], want.Events[i])
					}
				}
			}
		}
	}
}
