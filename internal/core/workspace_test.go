package core

import (
	"math"
	"math/rand"
	"testing"

	"c2mn/internal/features"
	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// randomModel draws a model with random weights, exercising score
// regimes a trained model would not reach.
func randomModel(rng *rand.Rand) *Model {
	m := NewModel(testParams())
	for i := range m.Weights {
		m.Weights[i] = rng.NormFloat64()
	}
	return m
}

// scoreGap returns |running − recomputed| relative to the score scale.
func scoreGap(t *testing.T, ws *Workspace, m *Model, ctx *features.SeqContext) float64 {
	t.Helper()
	full := m.Score(ctx, ws.R, ws.E)
	return math.Abs(ws.Score()-full) / math.Max(1, math.Abs(full))
}

// TestWorkspaceScoreMatchesFullRecompute is the incremental-scoring
// property the whole refactor rests on: after arbitrary randomized
// sequences of ICM, block-ICM and annealed phases, the workspace's
// maintained running score must equal the full O(n·Dim) recompute.
func TestWorkspaceScoreMatchesFullRecompute(t *testing.T) {
	space := testSpace(t)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		m := randomModel(rng)
		ex, err := features.NewExtractor(space, m.Params)
		if err != nil {
			t.Fatal(err)
		}
		ls := synthSequence("w", indoor.RegionID(rng.Intn(3)), indoor.RegionID(rng.Intn(3)), rng)
		ctx := ex.NewSeqContext(&ls.P, nil)
		ws := NewWorkspace()
		ws.Reset(m, ctx)
		if g := scoreGap(t, ws, m, ctx); g > 1e-9 {
			t.Fatalf("trial %d: initial score off by %g", trial, g)
		}
		// Randomized phase sequence.
		for step := 0; step < 6; step++ {
			switch rng.Intn(3) {
			case 0:
				ws.icm(1 + rng.Intn(5))
			case 1:
				ws.blockICM(1 + rng.Intn(5))
			default:
				ws.anneal(InferOptions{AnnealSweeps: 1 + rng.Intn(3), Seed: rng.Int63()})
			}
			if g := scoreGap(t, ws, m, ctx); g > 1e-9 {
				t.Fatalf("trial %d step %d: running score off by %g", trial, step, g)
			}
		}
	}
}

// TestWorkspaceAnnotateScoreInvariant checks that after a full
// Annotate the workspace's score matches both the returned labels and
// the full recompute.
func TestWorkspaceAnnotateScoreInvariant(t *testing.T) {
	space := testSpace(t)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		m := randomModel(rng)
		ex, err := features.NewExtractor(space, m.Params)
		if err != nil {
			t.Fatal(err)
		}
		ls := synthSequence("w", 0, 2, rng)
		ctx := ex.NewSeqContext(&ls.P, nil)
		ws := NewWorkspace()
		labels := ws.Annotate(m, ctx, InferOptions{AnnealSweeps: trial % 3 * 2, Seed: int64(trial)})
		if got := m.Score(ctx, labels.Regions, labels.Events); math.Abs(ws.Score()-got) > 1e-9*math.Max(1, math.Abs(got)) {
			t.Fatalf("trial %d: workspace score %g, labels rescore %g", trial, ws.Score(), got)
		}
	}
}

// ---- pre-refactor reference implementation ----
//
// The functions below are the inference pipeline exactly as it stood
// before the workspace refactor: full O(n·Dim) rescoring per tentative
// block move, fresh buffers per call. They serve as the oracle for the
// byte-identical regression below.

func referenceAnnotate(m *Model, ctx *features.SeqContext, opts InferOptions) seq.Labels {
	if opts.MaxSweeps <= 0 {
		opts.MaxSweeps = 20
	}
	n := ctx.Len()
	R := InitRegions(ctx)
	E := InitEvents(ctx)
	if n == 0 {
		return seq.Labels{Regions: R, Events: E}
	}
	bestR := append([]indoor.RegionID(nil), R...)
	bestE := append([]seq.Event(nil), E...)
	referenceICM(m, ctx, bestR, bestE, opts.MaxSweeps)
	referenceBlockICM(m, ctx, bestR, bestE, opts.MaxSweeps)
	bestScore := m.Score(ctx, bestR, bestE)
	if opts.AnnealSweeps > 0 {
		referenceAnneal(m, ctx, R, E, opts)
		referenceICM(m, ctx, R, E, opts.MaxSweeps)
		referenceBlockICM(m, ctx, R, E, opts.MaxSweeps)
		if s := m.Score(ctx, R, E); s > bestScore {
			copy(bestR, R)
			copy(bestE, E)
		}
	}
	return seq.Labels{Regions: bestR, Events: bestE}
}

func referenceICM(m *Model, ctx *features.SeqContext, R []indoor.RegionID, E []seq.Event, maxSweeps int) {
	n := ctx.Len()
	buf := make([]float64, features.Dim)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestV := R[i], math.Inf(-1)
			for _, r := range ctx.Candidates[i] {
				ctx.LocalRegionFeatures(R, E, i, r, buf)
				if v := dot(m.Weights, buf); v > bestV {
					best, bestV = r, v
				}
			}
			if best != R[i] {
				R[i] = best
				changed = true
			}
		}
		for i := 0; i < n; i++ {
			best, bestV := E[i], math.Inf(-1)
			for e := 0; e < seq.NumEvents; e++ {
				ctx.LocalEventFeatures(R, E, i, seq.Event(e), buf)
				if v := dot(m.Weights, buf); v > bestV {
					best, bestV = seq.Event(e), v
				}
			}
			if best != E[i] {
				E[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

func referenceBlockICM(m *Model, ctx *features.SeqContext, R []indoor.RegionID, E []seq.Event, maxSweeps int) {
	n := ctx.Len()
	if n == 0 {
		return
	}
	cur := m.Score(ctx, R, E)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		improved := false
		for a := 0; a < n; {
			b := a
			for b+1 < n && R[b+1] == R[a] {
				b++
			}
			orig := R[a]
			seen := map[indoor.RegionID]bool{orig: true}
			bestLabel, bestScore := orig, cur
			for x := a; x <= b; x++ {
				for _, r := range ctx.Candidates[x] {
					if seen[r] {
						continue
					}
					seen[r] = true
					for y := a; y <= b; y++ {
						R[y] = r
					}
					if s := m.Score(ctx, R, E); s > bestScore {
						bestLabel, bestScore = r, s
					}
				}
			}
			for y := a; y <= b; y++ {
				R[y] = bestLabel
			}
			if bestLabel != orig {
				improved = true
				cur = bestScore
			}
			a = b + 1
		}
		if !improved {
			break
		}
		referenceICM(m, ctx, R, E, maxSweeps)
		cur = m.Score(ctx, R, E)
	}
}

func referenceAnneal(m *Model, ctx *features.SeqContext, R []indoor.RegionID, E []seq.Event, opts InferOptions) {
	n := ctx.Len()
	rng := rand.New(rand.NewSource(opts.Seed + 0x5eed))
	buf := make([]float64, features.Dim)
	logits := make([]float64, 0, 16)
	for sweep := 0; sweep < opts.AnnealSweeps; sweep++ {
		temp := 2.0 * float64(opts.AnnealSweeps-sweep) / float64(opts.AnnealSweeps)
		for i := 0; i < n; i++ {
			cands := ctx.Candidates[i]
			if len(cands) > 1 {
				logits = logits[:0]
				maxL := math.Inf(-1)
				for _, r := range cands {
					ctx.LocalRegionFeatures(R, E, i, r, buf)
					v := dot(m.Weights, buf) / temp
					logits = append(logits, v)
					if v > maxL {
						maxL = v
					}
				}
				normalizeExp(logits, maxL)
				R[i] = cands[sampleIndex(logits, rng)]
			}
			logits = logits[:0]
			maxL := math.Inf(-1)
			for e := 0; e < seq.NumEvents; e++ {
				ctx.LocalEventFeatures(R, E, i, seq.Event(e), buf)
				v := dot(m.Weights, buf) / temp
				logits = append(logits, v)
				if v > maxL {
					maxL = v
				}
			}
			normalizeExp(logits, maxL)
			E[i] = seq.Event(sampleIndex(logits, rng))
		}
	}
}

// TestAnnotateMatchesReference is the regression gate of the
// refactor: on seeded workloads — trained and random-weight models,
// with and without the annealed restart — the incremental inference
// must produce labels identical to the pre-refactor full-rescore
// implementation.
func TestAnnotateMatchesReference(t *testing.T) {
	space := testSpace(t)
	trained, _, err := TrainExact(space, synthDataset(10, 4), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	models := []*Model{trained}
	for i := 0; i < 4; i++ {
		models = append(models, randomModel(rng))
	}
	optsList := []InferOptions{
		{},
		{MaxSweeps: 3},
		{AnnealSweeps: 4, Seed: 9},
		{MaxSweeps: 7, AnnealSweeps: 2, Seed: 123},
	}
	for mi, m := range models {
		ex, err := features.NewExtractor(space, m.Params)
		if err != nil {
			t.Fatal(err)
		}
		for si := 0; si < 6; si++ {
			ls := synthSequence("r", indoor.RegionID(si%3), indoor.RegionID((si+1)%3), rng)
			ctx := ex.NewSeqContext(&ls.P, nil)
			for oi, opts := range optsList {
				want := referenceAnnotate(m, ctx, opts)
				got := m.Annotate(ctx, opts)
				for i := range want.Regions {
					if got.Regions[i] != want.Regions[i] || got.Events[i] != want.Events[i] {
						t.Fatalf("model %d seq %d opts %d: label %d = (%v,%v), reference (%v,%v)",
							mi, si, oi, i, got.Regions[i], got.Events[i], want.Regions[i], want.Events[i])
					}
				}
			}
		}
	}
}

// TestWorkspaceReuseAcrossSequences drives one pooled (ctx, ws) pair
// across many sequences of varying length and checks each result
// against a throwaway run, covering the grow/shrink paths of the
// reset lifecycle.
func TestWorkspaceReuseAcrossSequences(t *testing.T) {
	space := testSpace(t)
	m, _, err := TrainExact(space, synthDataset(10, 4), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ex, err := features.NewExtractor(space, m.Params)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	reusedCtx := &features.SeqContext{Ex: ex}
	ws := NewWorkspace()
	for round := 0; round < 12; round++ {
		ls := synthSequence("p", indoor.RegionID(round%3), indoor.RegionID((round+2)%3), rng)
		if round%3 == 1 {
			// Shrink to a fragment to exercise capacity reuse.
			ls.P.Records = ls.P.Records[:4+round%5]
		}
		reusedCtx.Reset(&ls.P, nil)
		got := ws.Annotate(m, reusedCtx, InferOptions{})
		want := m.Annotate(ex.NewSeqContext(&ls.P, nil), InferOptions{})
		for i := range want.Regions {
			if got.Regions[i] != want.Regions[i] || got.Events[i] != want.Events[i] {
				t.Fatalf("round %d: label %d = (%v,%v), fresh run (%v,%v)",
					round, i, got.Regions[i], got.Events[i], want.Regions[i], want.Events[i])
			}
		}
	}
}
