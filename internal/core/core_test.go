package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"c2mn/internal/cluster"
	"c2mn/internal/features"
	"c2mn/internal/geom"
	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// testSpace builds a one-floor venue: hallway plus three region rooms.
func testSpace(t testing.TB) *indoor.Space {
	t.Helper()
	b := indoor.NewBuilder()
	hall := b.AddPartition(0, geom.RectPoly(geom.Pt(0, 0), geom.Pt(30, 4)))
	ra := b.AddPartition(0, geom.RectPoly(geom.Pt(0, 4), geom.Pt(10, 14)))
	rb := b.AddPartition(0, geom.RectPoly(geom.Pt(10, 4), geom.Pt(20, 14)))
	rc := b.AddPartition(0, geom.RectPoly(geom.Pt(20, 4), geom.Pt(30, 14)))
	b.AddDoor(geom.Pt(5, 4), hall, ra)
	b.AddDoor(geom.Pt(15, 4), hall, rb)
	b.AddDoor(geom.Pt(25, 4), hall, rc)
	b.AddRegion("A", ra)
	b.AddRegion("B", rb)
	b.AddRegion("C", rc)
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testParams() features.Params {
	p := features.DefaultParams()
	p.V = 3
	p.Cluster = cluster.Params{EpsS: 3, EpsT: 30, MinPts: 3}
	return p
}

// roomCenter maps region id → room center.
var roomCenter = map[indoor.RegionID]geom.Point{
	0: geom.Pt(5, 9), 1: geom.Pt(15, 9), 2: geom.Pt(25, 9),
}

// synthSequence fabricates one labeled trajectory: stay in `from`,
// pass through the hallway, stay in `to`.
func synthSequence(id string, from, to indoor.RegionID, rng *rand.Rand) seq.LabeledSequence {
	var ls seq.LabeledSequence
	ls.P.ObjectID = id
	tcur := 0.0
	add := func(x, y float64, region indoor.RegionID, e seq.Event, dt float64) {
		tcur += dt
		nx := x + rng.NormFloat64()*0.8
		ny := y + rng.NormFloat64()*0.8
		ls.P.Records = append(ls.P.Records, seq.Record{Loc: indoor.Loc(nx, ny, 0), T: tcur})
		ls.Labels.Regions = append(ls.Labels.Regions, region)
		ls.Labels.Events = append(ls.Labels.Events, e)
	}
	cf, ct := roomCenter[from], roomCenter[to]
	stay1 := 5 + rng.Intn(4)
	for i := 0; i < stay1; i++ {
		add(cf.X, cf.Y, from, seq.Stay, 8+rng.Float64()*4)
	}
	// Walk: room -> door -> hallway -> door -> room, fast.
	add(cf.X, 5, from, seq.Pass, 4)
	mid := (cf.X + ct.X) / 2
	add(mid, 2, nearestRegionByX(mid), seq.Pass, 4)
	add(ct.X, 5, to, seq.Pass, 4)
	stay2 := 5 + rng.Intn(4)
	for i := 0; i < stay2; i++ {
		add(ct.X, ct.Y, to, seq.Stay, 8+rng.Float64()*4)
	}
	return ls
}

func nearestRegionByX(x float64) indoor.RegionID {
	switch {
	case x < 10:
		return 0
	case x < 20:
		return 1
	default:
		return 2
	}
}

// synthDataset builds n labeled sequences over random room pairs.
func synthDataset(n int, seed int64) []seq.LabeledSequence {
	rng := rand.New(rand.NewSource(seed))
	out := make([]seq.LabeledSequence, 0, n)
	for i := 0; i < n; i++ {
		from := indoor.RegionID(rng.Intn(3))
		to := indoor.RegionID((int(from) + 1 + rng.Intn(2)) % 3)
		out = append(out, synthSequence("s", from, to, rng))
	}
	return out
}

func labelAccuracy(truth, pred seq.Labels) (ra, ea float64) {
	n := len(truth.Regions)
	var okR, okE int
	for i := 0; i < n; i++ {
		if truth.Regions[i] == pred.Regions[i] {
			okR++
		}
		if truth.Events[i] == pred.Events[i] {
			okE++
		}
	}
	return float64(okR) / float64(n), float64(okE) / float64(n)
}

func testConfig() Config {
	return Config{
		Params:  testParams(),
		M:       60,
		MaxIter: 40,
		Delta:   1e-3,
		Sigma2:  0.5,
		Seed:    1,
	}
}

func TestVarBasics(t *testing.T) {
	if VarE.Other() != VarR || VarR.Other() != VarE {
		t.Errorf("Other wrong")
	}
	if VarE.String() != "E" || VarR.String() != "R" {
		t.Errorf("String wrong")
	}
	ri := WeightIdx(VarR)
	ei := WeightIdx(VarE)
	seen := map[int]bool{}
	for _, i := range append(append([]int{}, ri...), ei...) {
		if seen[i] {
			t.Errorf("index %d in both partitions", i)
		}
		seen[i] = true
	}
	if len(seen) != features.Dim {
		t.Errorf("weight partition covers %d of %d dims", len(seen), features.Dim)
	}
}

func TestModelValidateAndJSON(t *testing.T) {
	m := NewModel(testParams())
	if err := m.Validate(); err != nil {
		t.Fatalf("fresh model invalid: %v", err)
	}
	m.Weights[3] = 1.5
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadModelJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Weights {
		if m.Weights[i] != m2.Weights[i] {
			t.Errorf("weight %d changed", i)
		}
	}
	if m2.Params.V != m.Params.V {
		t.Errorf("params lost")
	}
	// Corrupt weights fail validation.
	m.Weights[0] = math.NaN()
	if err := m.Validate(); err == nil {
		t.Errorf("NaN weight should fail")
	}
	m.Weights = m.Weights[:3]
	if err := m.Validate(); err == nil {
		t.Errorf("short weights should fail")
	}
	if _, err := ReadModelJSON(bytes.NewBufferString("junk")); err == nil {
		t.Errorf("bad JSON should fail")
	}
}

func TestInitEventsAndRegions(t *testing.T) {
	space := testSpace(t)
	ex, _ := features.NewExtractor(space, testParams())
	rng := rand.New(rand.NewSource(5))
	ls := synthSequence("x", 0, 2, rng)
	ctx := ex.NewSeqContext(&ls.P, nil)

	E := InitEvents(ctx)
	if len(E) != ctx.Len() {
		t.Fatalf("InitEvents len")
	}
	// The dense head should initialise as stay.
	if E[1] != seq.Stay {
		t.Errorf("dense record initialised as %v", E[1])
	}
	R := InitRegions(ctx)
	// Records in room A should initialise to region 0.
	if R[1] != 0 {
		t.Errorf("in-room record initialised to %v", R[1])
	}
}

func TestConditionalsNormalised(t *testing.T) {
	space := testSpace(t)
	ex, _ := features.NewExtractor(space, testParams())
	rng := rand.New(rand.NewSource(7))
	ls := synthSequence("x", 0, 1, rng)
	ctx := ex.NewSeqContext(&ls.P, ls.Labels.Regions)
	w := make([]float64, features.Dim)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	R := InitRegions(ctx)
	E := InitEvents(ctx)
	buf := make([]float64, features.Dim)
	for i := 0; i < ctx.Len(); i++ {
		probs := make([]float64, len(ctx.Candidates[i]))
		regionConditional(w, ctx, R, E, i, probs, nil, buf)
		sum := 0.0
		for _, p := range probs {
			if p < 0 || p > 1 {
				t.Fatalf("region prob out of range: %v", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("region conditional sums to %v", sum)
		}
		ep := make([]float64, seq.NumEvents)
		eventConditional(w, ctx, R, E, i, ep, nil, buf)
		if math.Abs(ep[0]+ep[1]-1) > 1e-9 {
			t.Fatalf("event conditional sums to %v", ep[0]+ep[1])
		}
	}
}

func TestAnnotateImprovesScore(t *testing.T) {
	space := testSpace(t)
	ex, _ := features.NewExtractor(space, testParams())
	rng := rand.New(rand.NewSource(8))
	ls := synthSequence("x", 1, 2, rng)
	ctx := ex.NewSeqContext(&ls.P, nil)
	m := NewModel(testParams())
	for i := range m.Weights {
		m.Weights[i] = rng.Float64()
	}
	initScore := m.Score(ctx, InitRegions(ctx), InitEvents(ctx))
	labels := m.Annotate(ctx, InferOptions{})
	finalScore := m.Score(ctx, labels.Regions, labels.Events)
	if finalScore < initScore-1e-9 {
		t.Errorf("ICM decreased score: %v -> %v", initScore, finalScore)
	}
}

func TestTrainProducesAccurateModel(t *testing.T) {
	space := testSpace(t)
	train := synthDataset(14, 2)
	test := synthDataset(6, 99)

	model, stats, err := Train(space, train, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Iterations == 0 {
		t.Errorf("no iterations recorded")
	}
	ex, _ := features.NewExtractor(space, model.Params)
	var ra, ea float64
	for i := range test {
		ctx := ex.NewSeqContext(&test[i].P, nil)
		pred := model.Annotate(ctx, InferOptions{})
		r, e := labelAccuracy(test[i].Labels, pred)
		ra += r
		ea += e
	}
	ra /= float64(len(test))
	ea /= float64(len(test))
	if ra < 0.75 {
		t.Errorf("region accuracy = %v, want >= 0.75", ra)
	}
	if ea < 0.70 {
		t.Errorf("event accuracy = %v, want >= 0.70", ea)
	}
	t.Logf("MCMC-trained accuracy: RA=%.3f EA=%.3f iters=%d swaps=%d", ra, ea, stats.Iterations, stats.Swaps)
}

func TestTrainExactProducesAccurateModel(t *testing.T) {
	space := testSpace(t)
	train := synthDataset(14, 3)
	test := synthDataset(6, 77)

	model, stats, err := TrainExact(space, train, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ex, _ := features.NewExtractor(space, model.Params)
	var ra, ea float64
	for i := range test {
		ctx := ex.NewSeqContext(&test[i].P, nil)
		pred := model.Annotate(ctx, InferOptions{})
		r, e := labelAccuracy(test[i].Labels, pred)
		ra += r
		ea += e
	}
	ra /= float64(len(test))
	ea /= float64(len(test))
	if ra < 0.8 {
		t.Errorf("region accuracy = %v, want >= 0.8", ra)
	}
	if ea < 0.75 {
		t.Errorf("event accuracy = %v, want >= 0.75", ea)
	}
	t.Logf("exact-trained accuracy: RA=%.3f EA=%.3f iters=%d", ra, ea, stats.Iterations)
}

func TestTrainDeterministic(t *testing.T) {
	space := testSpace(t)
	train := synthDataset(6, 4)
	cfg := testConfig()
	cfg.MaxIter = 10
	m1, _, err := Train(space, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := Train(space, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.Weights {
		if m1.Weights[i] != m2.Weights[i] {
			t.Fatalf("weights differ at %d: %v vs %v", i, m1.Weights[i], m2.Weights[i])
		}
	}
	cfg.Seed = 42
	m3, _, err := Train(space, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range m1.Weights {
		if m1.Weights[i] != m3.Weights[i] {
			same = false
		}
	}
	if same {
		t.Errorf("different seeds produced identical weights")
	}
}

func TestTrainFirstVarR(t *testing.T) {
	space := testSpace(t)
	train := synthDataset(8, 5)
	cfg := testConfig()
	cfg.FirstVar = VarR
	cfg.MaxIter = 15
	m, stats, err := Train(space, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("C2MN@R model invalid: %v", err)
	}
	_ = stats
}

func TestTrainDecoupled(t *testing.T) {
	space := testSpace(t)
	train := synthDataset(8, 6)
	cfg := testConfig()
	cfg.Decoupled = true
	cfg.MaxIter = 15
	m, _, err := Train(space, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Segmentation weights must stay untouched by features (mask off).
	if m.Params.Cliques.Has(features.SegmentationES) || m.Params.Cliques.Has(features.SegmentationSS) {
		t.Errorf("decoupled model retains segmentation cliques")
	}
}

func TestTrainErrors(t *testing.T) {
	space := testSpace(t)
	if _, _, err := Train(space, nil, testConfig()); err == nil {
		t.Errorf("empty data should fail")
	}
	if _, _, err := TrainExact(space, nil, testConfig()); err == nil {
		t.Errorf("empty data should fail (exact)")
	}
	bad := []seq.LabeledSequence{{
		P:      seq.PSequence{Records: []seq.Record{{Loc: indoor.Loc(5, 9, 0), T: 1}}},
		Labels: seq.NewLabels(2),
	}}
	if _, _, err := Train(space, bad, testConfig()); err == nil {
		t.Errorf("misaligned labels should fail")
	}
	cfg := testConfig()
	cfg.Params.Alpha = 2 // invalid
	good := synthDataset(2, 7)
	if _, _, err := Train(space, good, cfg); err == nil {
		t.Errorf("invalid params should fail")
	}
}

func TestExactAndMCMCAgreeOnDirection(t *testing.T) {
	// The two trainers optimise the same objective; their learned
	// weights should agree in sign for the decisive features on the
	// same data.
	space := testSpace(t)
	train := synthDataset(12, 8)
	cfg := testConfig()
	mExact, _, err := TrainExact(space, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mMCMC, _, err := Train(space, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Compare on the matching weights, which carry the strongest
	// signal.
	for _, idx := range []int{features.IdxSM, features.IdxEM} {
		if mExact.Weights[idx] > 0.2 && mMCMC.Weights[idx] < -0.2 {
			t.Errorf("weight %d disagrees: exact %v vs mcmc %v", idx, mExact.Weights[idx], mMCMC.Weights[idx])
		}
	}
}

func TestAnnotateSequenceMerging(t *testing.T) {
	space := testSpace(t)
	train := synthDataset(10, 9)
	model, _, err := TrainExact(space, train, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ex, _ := features.NewExtractor(space, model.Params)
	rng := rand.New(rand.NewSource(123))
	ls := synthSequence("q", 0, 2, rng)
	labels, ms := model.AnnotateSequence(ex, &ls.P, InferOptions{})
	if len(labels.Regions) != ls.P.Len() {
		t.Fatalf("labels misaligned")
	}
	if len(ms.Semantics) == 0 {
		t.Fatalf("no m-semantics produced")
	}
	// Periods must be ordered and within the sequence time range.
	for i, s := range ms.Semantics {
		if s.Start > s.End {
			t.Errorf("semantics %d inverted period", i)
		}
		if i > 0 && s.Start <= ms.Semantics[i-1].End {
			t.Errorf("semantics %d overlaps previous", i)
		}
	}
}

func TestSampleIndexDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := []float64{0.2, 0.5, 0.3}
	counts := make([]int, 3)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[sampleIndex(p, rng)]++
	}
	for i, want := range p {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("sampleIndex freq[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestArgmaxInt(t *testing.T) {
	if argmaxInt([]int{3, 9, 2}) != 1 {
		t.Errorf("argmaxInt wrong")
	}
	if argmaxInt([]int{5}) != 0 {
		t.Errorf("argmaxInt single wrong")
	}
}
