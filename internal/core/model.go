// Package core implements the coupled conditional Markov network
// (C2MN) of the paper: the probabilistic model over positioning
// records, region labels and event labels (§III), its supervised
// learning via alternate learning with MCMC inference (§IV,
// Algorithm 1), and the joint MAP inference used to annotate new
// p-sequences.
//
// The package also provides an exact pseudo-likelihood trainer that
// enumerates the (small) local label domains instead of sampling; it
// serves as a deterministic oracle for tests and as an ablation
// against the paper's MCMC estimator.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"c2mn/internal/cluster"
	"c2mn/internal/features"
	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// Var designates one of the two target variables of the network.
type Var uint8

// The two target variables.
const (
	VarE Var = iota // event sequence E
	VarR            // region sequence R
)

func (v Var) String() string {
	if v == VarR {
		return "R"
	}
	return "E"
}

// Other returns the opposite variable.
func (v Var) Other() Var {
	if v == VarE {
		return VarR
	}
	return VarE
}

// RegionWeightIdx lists the weight components associated with the
// region-relevant dependencies of Table II (fsm, fst, fsc, fes).
var RegionWeightIdx = []int{
	features.IdxSM, features.IdxST, features.IdxSC,
	features.IdxES, features.IdxES + 1, features.IdxES + 2,
}

// EventWeightIdx lists the weight components associated with the
// event-relevant dependencies of Table II (fem, fet, fec, fss).
var EventWeightIdx = []int{
	features.IdxEM, features.IdxET, features.IdxEC,
	features.IdxSS, features.IdxSS + 1, features.IdxSS + 2,
}

// WeightIdx returns the weight components associated with v.
func WeightIdx(v Var) []int {
	if v == VarR {
		return RegionWeightIdx
	}
	return EventWeightIdx
}

// Model is a trained C2MN: feature parameters plus the learned weight
// vector.
type Model struct {
	Weights []float64
	Params  features.Params
}

// NewModel returns a model with zero weights and the given parameters.
func NewModel(params features.Params) *Model {
	return &Model{Weights: make([]float64, features.Dim), Params: params}
}

// Validate checks the model invariants.
func (m *Model) Validate() error {
	if len(m.Weights) != features.Dim {
		return fmt.Errorf("core: model has %d weights, want %d", len(m.Weights), features.Dim)
	}
	for i, w := range m.Weights {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("core: weight %d is %v", i, w)
		}
	}
	return m.Params.Validate()
}

// Score returns the unnormalised log-potential w·f(P, R, E) of a full
// label configuration; exponentiating and normalising would give the
// C2MN distribution of Eq. 2.
func (m *Model) Score(ctx *features.SeqContext, R []indoor.RegionID, E []seq.Event) float64 {
	f := make([]float64, features.Dim)
	ctx.TotalFeatures(R, E, f)
	return dot(m.Weights, f)
}

// Model serialisation format. Version 1 added the header; version-0
// files (headerless, written before the header existed) still load.
const (
	// ModelFormat names the file type in the header.
	ModelFormat = "c2mn-model"
	// ModelFormatVersion is the version this build writes.
	ModelFormatVersion = 1
)

// ErrModelVersion is returned by ReadModelJSON for files written by a
// newer format version than this build understands.
var ErrModelVersion = errors.New("core: unsupported model format version")

type jsonModel struct {
	Format  string          `json:"format,omitempty"`
	Version int             `json:"version,omitempty"`
	Weights []float64       `json:"weights"`
	Params  features.Params `json:"params"`
}

// WriteJSON serialises the model with a versioned header.
func (m *Model) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(jsonModel{
		Format:  ModelFormat,
		Version: ModelFormatVersion,
		Weights: m.Weights,
		Params:  m.Params,
	})
}

// ReadModelJSON deserialises a model written by WriteJSON. It accepts
// the current format version and every older one (including the
// headerless version 0) and rejects files from a newer format with
// ErrModelVersion, so a stale binary fails loudly instead of
// misreading a future layout.
func ReadModelJSON(r io.Reader) (*Model, error) {
	var jm jsonModel
	if err := json.NewDecoder(r).Decode(&jm); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if jm.Format != "" && jm.Format != ModelFormat {
		return nil, fmt.Errorf("core: model file has format %q, want %q", jm.Format, ModelFormat)
	}
	if jm.Version > ModelFormatVersion {
		return nil, fmt.Errorf("%w: file is version %d, this build reads <= %d",
			ErrModelVersion, jm.Version, ModelFormatVersion)
	}
	m := &Model{Weights: jm.Weights, Params: jm.Params}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Config parameterises training. Zero values fall back to the paper's
// real-data settings (§V-B1).
type Config struct {
	// Params are the feature hyper-parameters.
	Params features.Params
	// M is the number of MCMC instances sampled per step (paper: 800).
	M int
	// MaxIter bounds the alternate-learning steps (paper: 90).
	MaxIter int
	// Delta is the Chebyshev convergence threshold δ (paper: 1e-3).
	Delta float64
	// Sigma2 is the Gaussian prior variance σ² (paper: 0.5).
	Sigma2 float64
	// FirstVar is the first-configured variable (paper: E; VarR gives
	// the C2MN@R variant of Fig. 11).
	FirstVar Var
	// Seed drives all sampling; same seed, same result.
	Seed int64
	// StepSize damps the L-BFGS updates computed from sampled
	// gradients.
	StepSize float64
	// Decoupled trains and infers R and E independently (the CMN
	// baseline); it implies segmentation cliques are disabled.
	Decoupled bool
	// UseRegionPrior enables the paper's fsm alternative design
	// (§III-B (1)): the normalized historical region frequency of the
	// training data multiplies the overlap ratio.
	UseRegionPrior bool
}

// fill applies the paper's defaults to unset fields.
func (c Config) fill() Config {
	if c.Params.V == 0 && c.Params.Alpha == 0 {
		c.Params = features.DefaultParams()
	}
	if c.M <= 0 {
		c.M = 800
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 90
	}
	if c.Delta <= 0 {
		c.Delta = 1e-3
	}
	if c.Sigma2 <= 0 {
		c.Sigma2 = 0.5
	}
	if c.StepSize <= 0 {
		c.StepSize = 1.0
	}
	if c.Decoupled {
		c.Params.Cliques &^= features.SegmentationES | features.SegmentationSS
	}
	return c
}

// RegionPriorFromLabels computes the normalized historical region
// frequency over labeled data: counts of each region label with +1
// smoothing, scaled so the most frequent region maps to 1.
func RegionPriorFromLabels(numRegions int, data []seq.LabeledSequence) []float64 {
	counts := make([]float64, numRegions)
	for i := range counts {
		counts[i] = 1 // smoothing: unseen regions keep a small prior
	}
	for i := range data {
		for _, r := range data[i].Labels.Regions {
			if r >= 0 && int(r) < numRegions {
				counts[r]++
			}
		}
	}
	maxC := 0.0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	for i := range counts {
		counts[i] /= maxC
	}
	return counts
}

// InitEvents derives the initial event configuration Ē from the
// st-DBSCAN density tags (Algorithm 1, line 1): clustered records are
// stays, noise records are passes.
func InitEvents(ctx *features.SeqContext) []seq.Event {
	E := make([]seq.Event, ctx.Len())
	InitEventsInto(ctx, E)
	return E
}

// InitEventsInto is InitEvents writing into E (length ctx.Len()).
func InitEventsInto(ctx *features.SeqContext, E []seq.Event) {
	for i, d := range ctx.Density {
		if d == cluster.Noise {
			E[i] = seq.Pass
		} else {
			E[i] = seq.Stay
		}
	}
}

// InitRegions derives the initial region configuration R̄ by
// nearest-neighbour region matching (footnote 6): each record takes
// its maximum-overlap candidate.
func InitRegions(ctx *features.SeqContext) []indoor.RegionID {
	R := make([]indoor.RegionID, ctx.Len())
	InitRegionsInto(ctx, R)
	return R
}

// InitRegionsInto is InitRegions writing into R (length ctx.Len()).
func InitRegionsInto(ctx *features.SeqContext, R []indoor.RegionID) {
	for i := range R {
		best := indoor.NoRegion
		bestV := -1.0
		for _, r := range ctx.Candidates[i] {
			if v := ctx.SM(i, r); v > bestV {
				best, bestV = r, v
			}
		}
		R[i] = best
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
