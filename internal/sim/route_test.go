package sim

import (
	"math/rand"
	"testing"

	"c2mn/internal/indoor"
)

func TestRouteDoorsShortest(t *testing.T) {
	space, err := GenerateBuilding(SmallBuilding(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Same-floor route between two rooms in different columns must
	// pass through at least: room door, hallway chain, room door.
	a := space.PartitionAt(indoor.Loc(4, 5, 0))  // south room, column 0
	b := space.PartitionAt(indoor.Loc(36, 5, 0)) // south room, column 4
	if a == indoor.NoPartition || b == indoor.NoPartition {
		t.Fatal("probe points missed partitions")
	}
	doors := routeDoors(space, a, b)
	if doors == nil {
		t.Fatal("no route found")
	}
	// BFS gives a minimal-hop path: door out of a, 4 hallway links,
	// door into b = 6 doors.
	if len(doors) != 6 {
		t.Errorf("route length = %d doors, want 6", len(doors))
	}
	// The path must be connected: consecutive doors share a partition.
	cur := a
	for _, d := range doors {
		door := space.Door(d)
		switch cur {
		case door.A:
			cur = door.B
		case door.B:
			cur = door.A
		default:
			t.Fatalf("door %d does not touch partition %d", d, cur)
		}
	}
	if cur != b {
		t.Errorf("route ends at %d, want %d", cur, b)
	}
	// Trivial route.
	if got := routeDoors(space, a, a); len(got) != 0 {
		t.Errorf("self route = %v", got)
	}
}

func TestRouteWaypointsCrossFloor(t *testing.T) {
	space, err := GenerateBuilding(SmallBuilding(), 1)
	if err != nil {
		t.Fatal(err)
	}
	a := indoor.Loc(4, 5, 0)
	b := indoor.Loc(36, 5, 1)
	wps := routeWaypoints(space, a, b)
	if wps == nil {
		t.Fatal("no cross-floor route")
	}
	// The final waypoint is the destination on floor 1, and somewhere
	// along the way the floor flips exactly via a stair pair (same
	// planar point, different floors).
	last := wps[len(wps)-1]
	if last != b {
		t.Errorf("last waypoint = %v, want %v", last, b)
	}
	sawStair := false
	for i := 1; i < len(wps); i++ {
		if wps[i].Floor != wps[i-1].Floor {
			sawStair = true
			if wps[i].X != wps[i-1].X || wps[i].Y != wps[i-1].Y {
				t.Errorf("floor change moved planar position: %v -> %v", wps[i-1], wps[i])
			}
		}
	}
	if !sawStair {
		t.Errorf("cross-floor route never changed floor: %v", wps)
	}
}

func TestRegionAnchorInsideRegion(t *testing.T) {
	space, err := GenerateBuilding(SmallBuilding(), 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := newTestRand()
	for _, r := range space.Regions() {
		for i := 0; i < 5; i++ {
			a := regionAnchor(space, r, rng)
			if got := space.RegionAt(a); got != r {
				t.Fatalf("anchor %v for region %d lands in region %d", a, r, got)
			}
		}
	}
}

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(99)) }
