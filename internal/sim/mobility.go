package sim

import (
	"fmt"
	"math"
	"math/rand"

	"c2mn/internal/geom"
	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// MobilitySpec describes a synthetic mobility workload: how objects
// move (waypoint model, §V-C) and how the positioning system observes
// them.
type MobilitySpec struct {
	// Objects is the number of moving objects.
	Objects int
	// Duration is each object's lifespan in seconds.
	Duration float64
	// MaxSpeed is the maximum walking speed, m/s (paper: 1.7).
	MaxSpeed float64
	// StayMin and StayMax bound the dwell time at a destination,
	// seconds (paper: 1 s – 30 min).
	StayMin, StayMax float64
	// T is the maximum positioning period: after a report the object
	// keeps silent for at most T seconds (paper Table V: 5–15 s; the
	// mall data averages ~15 s).
	T float64
	// Mu is the positioning error factor: an estimate falls within Mu
	// meters of the true location (paper: 3–7 m synthetic, 2–25 m
	// real).
	Mu float64
	// FalseFloorProb is the probability of reporting a wrong floor
	// (paper: 3%).
	FalseFloorProb float64
	// OutlierProb is the probability of an outlier located within
	// 2.5·Mu–10·Mu of the true location (paper: 3%).
	OutlierProb float64
}

// Validate checks spec sanity.
func (s MobilitySpec) Validate() error {
	if s.Objects <= 0 {
		return fmt.Errorf("sim: Objects must be positive")
	}
	if s.Duration <= 0 || s.MaxSpeed <= 0 {
		return fmt.Errorf("sim: Duration and MaxSpeed must be positive")
	}
	if s.StayMin < 0 || s.StayMax < s.StayMin {
		return fmt.Errorf("sim: invalid stay bounds [%g,%g]", s.StayMin, s.StayMax)
	}
	if s.T < 1 {
		return fmt.Errorf("sim: T must be >= 1 second")
	}
	if s.Mu < 0 {
		return fmt.Errorf("sim: Mu must be non-negative")
	}
	if s.FalseFloorProb < 0 || s.FalseFloorProb > 1 || s.OutlierProb < 0 || s.OutlierProb > 1 {
		return fmt.Errorf("sim: probabilities must be in [0,1]")
	}
	return nil
}

// DefaultMobility mirrors the paper's synthetic setup: 1.7 m/s maximum
// speed, dwell 1 s–30 min, T = 5 s, μ = 3 m, 3% outliers and false
// floors.
func DefaultMobility(objects int, duration float64) MobilitySpec {
	return MobilitySpec{
		Objects:        objects,
		Duration:       duration,
		MaxSpeed:       1.7,
		StayMin:        1,
		StayMax:        1800,
		T:              5,
		Mu:             3,
		FalseFloorProb: 0.03,
		OutlierProb:    0.03,
	}
}

// MallMobility approximates the real dataset's observation profile
// (Table III): ~1/15 Hz sampling and 2–25 m errors.
func MallMobility(objects int, duration float64) MobilitySpec {
	m := DefaultMobility(objects, duration)
	m.T = 30
	m.Mu = 8
	m.StayMax = 900
	return m
}

// Generate simulates the workload on a space and returns the labeled
// dataset: each record carries its ground-truth region (the region at
// the true location, or the nearest region when the true location is
// in an unassigned partition such as a hallway) and ground-truth event
// (stay while dwelling, pass while moving). The same (space, spec,
// seed) triple always yields the same dataset.
func Generate(space *indoor.Space, spec MobilitySpec, seed int64) (*seq.Dataset, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if space.NumRegions() < 2 {
		return nil, fmt.Errorf("sim: space needs at least 2 regions")
	}
	rng := rand.New(rand.NewSource(seed))
	ds := &seq.Dataset{}
	for o := 0; o < spec.Objects; o++ {
		ls := simulateObject(space, spec, fmt.Sprintf("obj-%04d", o), rng)
		if ls.P.Len() >= 2 {
			ds.Sequences = append(ds.Sequences, ls)
		}
	}
	return ds, nil
}

// truthPoint is the ground-truth state at one simulated second.
type truthPoint struct {
	loc    indoor.Location
	moving bool
}

// simulateObject runs the waypoint model for one object and samples
// its positioning records.
func simulateObject(space *indoor.Space, spec MobilitySpec, id string, rng *rand.Rand) seq.LabeledSequence {
	track := simulateTrack(space, spec, rng)
	ls := seq.LabeledSequence{P: seq.PSequence{ObjectID: id}}
	t := 1 + rng.Float64()*(spec.T-1)
	for t < float64(len(track)) {
		tp := track[int(t)]
		loc := perturb(space, tp.loc, spec, rng)
		ls.P.Records = append(ls.P.Records, seq.Record{Loc: loc, T: t})
		region := space.RegionAt(tp.loc)
		if region == indoor.NoRegion {
			region = space.NearestRegion(tp.loc)
		}
		ls.Labels.Regions = append(ls.Labels.Regions, region)
		if tp.moving {
			ls.Labels.Events = append(ls.Labels.Events, seq.Pass)
		} else {
			ls.Labels.Events = append(ls.Labels.Events, seq.Stay)
		}
		t += 1 + rng.Float64()*(spec.T-1)
	}
	return ls
}

// simulateTrack produces the per-second ground truth of one object.
func simulateTrack(space *indoor.Space, spec MobilitySpec, rng *rand.Rand) []truthPoint {
	nTicks := int(spec.Duration)
	track := make([]truthPoint, 0, nTicks)

	// Start dwelling at a random region.
	curRegion := indoor.RegionID(rng.Intn(space.NumRegions()))
	cur := regionAnchor(space, curRegion, rng)
	stayLeft := dwell(spec, rng)

	var path []indoor.Location // remaining waypoints when moving
	var speed float64
	var stairRemaining float64 // meters left on the staircase being crossed

	for len(track) < nTicks {
		if len(path) == 0 {
			// Dwelling.
			if stayLeft > 0 {
				jit := indoor.Loc(cur.X+rng.NormFloat64()*0.3, cur.Y+rng.NormFloat64()*0.3, cur.Floor)
				if space.PartitionAt(jit) == indoor.NoPartition {
					jit = cur
				}
				track = append(track, truthPoint{jit, false})
				stayLeft--
				continue
			}
			// Pick the next destination and route to it.
			next := indoor.RegionID(rng.Intn(space.NumRegions()))
			if next == curRegion {
				next = indoor.RegionID((int(next) + 1) % space.NumRegions())
			}
			dest := regionAnchor(space, next, rng)
			path = routeWaypoints(space, cur, dest)
			curRegion = next
			speed = (0.4 + 0.6*rng.Float64()) * spec.MaxSpeed
			if len(path) == 0 {
				// Unreachable: restart at the destination.
				cur = dest
				stayLeft = dwell(spec, rng)
				continue
			}
		}
		// Moving: advance `speed` meters along the waypoint polyline,
		// one second per tick.
		budget := speed
		for budget > 0 && len(path) > 0 {
			nextWp := path[0]
			if nextWp.Floor != cur.Floor {
				// Stair traversal: walk down the stair segment,
				// carrying progress across ticks.
				if stairRemaining == 0 {
					stairRemaining = indoor.StairLength
				}
				if budget >= stairRemaining {
					budget -= stairRemaining
					stairRemaining = 0
					cur = nextWp
					path = path[1:]
				} else {
					stairRemaining -= budget
					budget = 0
				}
				continue
			}
			d := cur.Point().Dist(nextWp.Point())
			if d <= budget {
				budget -= d
				cur = nextWp
				path = path[1:]
			} else {
				frac := budget / d
				cur = indoor.Loc(cur.X+(nextWp.X-cur.X)*frac, cur.Y+(nextWp.Y-cur.Y)*frac, cur.Floor)
				budget = 0
			}
		}
		moving := len(path) > 0
		track = append(track, truthPoint{cur, moving})
		if !moving {
			stayLeft = dwell(spec, rng)
		}
	}
	return track
}

func dwell(spec MobilitySpec, rng *rand.Rand) int {
	return int(spec.StayMin + rng.Float64()*(spec.StayMax-spec.StayMin))
}

// regionAnchor picks a point inside a random partition of the region.
func regionAnchor(space *indoor.Space, r indoor.RegionID, rng *rand.Rand) indoor.Location {
	parts := space.Region(r).Partitions
	p := space.Partition(parts[rng.Intn(len(parts))])
	c := p.Centroid()
	b := p.Poly.Bounds()
	for try := 0; try < 8; try++ {
		x := b.Min.X + rng.Float64()*(b.Max.X-b.Min.X)
		y := b.Min.Y + rng.Float64()*(b.Max.Y-b.Min.Y)
		cand := indoor.Loc(x, y, p.Floor)
		if p.Poly.Contains(cand.Point()) {
			// Keep away from the walls so jitter stays inside.
			if cand.Point().Dist(c.Point()) < 0.8*c.Point().Dist(b.Min) {
				return cand
			}
		}
	}
	return c
}

// routeWaypoints returns the walk from a to b as waypoints through the
// door graph (BFS over partitions; edges are doors).
func routeWaypoints(space *indoor.Space, a, b indoor.Location) []indoor.Location {
	pa, pb := space.PartitionAt(a), space.PartitionAt(b)
	if pa == indoor.NoPartition || pb == indoor.NoPartition {
		return nil
	}
	if pa == pb {
		return []indoor.Location{b}
	}
	doors := routeDoors(space, pa, pb)
	if doors == nil {
		return nil
	}
	var wps []indoor.Location
	curPart := pa
	for _, d := range doors {
		door := space.Door(d)
		var other indoor.PartitionID
		if door.A == curPart {
			other = door.B
		} else {
			other = door.A
		}
		wps = append(wps, indoor.Loc(door.At.X, door.At.Y, space.Partition(curPart).Floor))
		if door.Stair {
			// Crossing a staircase adds the landing on the other floor.
			wps = append(wps, indoor.Loc(door.At.X, door.At.Y, space.Partition(other).Floor))
		}
		curPart = other
	}
	wps = append(wps, b)
	return wps
}

// routeDoors finds a door path between partitions with BFS.
func routeDoors(space *indoor.Space, from, to indoor.PartitionID) []indoor.DoorID {
	type hop struct {
		part indoor.PartitionID
		door indoor.DoorID
		prev int
	}
	visited := map[indoor.PartitionID]bool{from: true}
	queue := []hop{{part: from, door: indoor.NoDoor, prev: -1}}
	for qi := 0; qi < len(queue); qi++ {
		h := queue[qi]
		if h.part == to {
			var doors []indoor.DoorID
			for i := qi; queue[i].prev >= 0; i = queue[i].prev {
				doors = append(doors, queue[i].door)
			}
			// Reverse into walking order.
			for l, r := 0, len(doors)-1; l < r; l, r = l+1, r-1 {
				doors[l], doors[r] = doors[r], doors[l]
			}
			return doors
		}
		for _, d := range space.Partition(h.part).Doors {
			door := space.Door(d)
			other := door.A
			if other == h.part {
				other = door.B
			}
			if !visited[other] {
				visited[other] = true
				queue = append(queue, hop{part: other, door: d, prev: qi})
			}
		}
	}
	return nil
}

// perturb applies the positioning error model to a true location.
func perturb(space *indoor.Space, loc indoor.Location, spec MobilitySpec, rng *rand.Rand) indoor.Location {
	dist := rng.Float64() * spec.Mu
	if rng.Float64() < spec.OutlierProb {
		dist = (2.5 + 7.5*rng.Float64()) * spec.Mu
	}
	ang := rng.Float64() * 2 * math.Pi
	out := indoor.Loc(loc.X+dist*math.Cos(ang), loc.Y+dist*math.Sin(ang), loc.Floor)
	if rng.Float64() < spec.FalseFloorProb {
		delta := 1 + rng.Intn(2)
		if rng.Intn(2) == 0 {
			delta = -delta
		}
		floors := space.Floors()
		nf := out.Floor + delta
		if nf < floors[0] {
			nf = floors[0]
		}
		if nf > floors[len(floors)-1] {
			nf = floors[len(floors)-1]
		}
		out.Floor = nf
	}
	// Clamp into the building bounding box so estimates stay plottable.
	b := space.Bounds()
	out.X = geom.Clamp(out.X, b.Min.X, b.Max.X)
	out.Y = geom.Clamp(out.Y, b.Min.Y, b.Max.Y)
	return out
}
