// Package sim generates synthetic indoor venues and mobility data in
// the style of the Vita toolkit (Li et al., PVLDB 2016) that the paper
// uses for its synthetic experiments (§V-C), and doubles as the
// substitute for the paper's proprietary Hangzhou-mall Wi-Fi dataset
// (§V-B) — see DESIGN.md for the substitution rationale.
//
// Buildings are procedural: every floor has a central hallway band
// split into cells, with rooms on both sides; rooms carry semantic
// regions (some spanning two adjacent rooms), hallways carry none.
// Staircases connect hallway cells across floors. Moving objects
// follow the waypoint model: walk to a destination region through the
// door graph, dwell there, repeat. Positioning records are sampled
// aperiodically with bounded error, plus configurable outlier and
// false-floor rates.
package sim

import (
	"fmt"
	"math/rand"

	"c2mn/internal/geom"
	"c2mn/internal/indoor"
)

// BuildingSpec describes a procedural multi-floor venue.
type BuildingSpec struct {
	// Floors is the number of floors.
	Floors int
	// Columns is the number of room columns per side of the hallway.
	Columns int
	// RoomW and RoomD are the room width and depth, meters.
	RoomW, RoomD float64
	// HallW is the hallway band width, meters.
	HallW float64
	// Stairs is the number of staircase columns connecting floors.
	Stairs int
	// TargetRegions caps the number of semantic regions (0 = one
	// region per room).
	TargetRegions int
	// MultiFrac is the probability that a region spans two adjacent
	// rooms.
	MultiFrac float64
}

// Validate checks spec sanity.
func (s BuildingSpec) Validate() error {
	if s.Floors <= 0 || s.Columns <= 0 {
		return fmt.Errorf("sim: Floors and Columns must be positive")
	}
	if s.RoomW <= 0 || s.RoomD <= 0 || s.HallW <= 0 {
		return fmt.Errorf("sim: room dimensions must be positive")
	}
	if s.Stairs < 1 && s.Floors > 1 {
		return fmt.Errorf("sim: multi-floor building needs stairs")
	}
	if s.MultiFrac < 0 || s.MultiFrac > 1 {
		return fmt.Errorf("sim: MultiFrac must be in [0,1]")
	}
	return nil
}

// MallBuilding mirrors the scale of the paper's real venue (§V-B1):
// seven floors, ~202 shop regions. Sizes are scaled to container
// hardware; the topology class (compact shops along shared hallways)
// is what the model depends on. Shops are 10×12 m — small relative to
// real mall units but large enough relative to the positioning
// uncertainty radius that the fsm overlap stays discriminative.
func MallBuilding() BuildingSpec {
	return BuildingSpec{
		Floors:        7,
		Columns:       15, // 30 rooms per floor, 210 rooms total
		RoomW:         10,
		RoomD:         12,
		HallW:         6,
		Stairs:        4,
		TargetRegions: 202,
		MultiFrac:     0.05,
	}
}

// SynthBuilding mirrors the paper's ten-floor Vita environment
// (§V-C): 4 staircases, 423 semantic regions.
func SynthBuilding() BuildingSpec {
	return BuildingSpec{
		Floors:        10,
		Columns:       23, // 46 rooms per floor, 460 rooms total
		RoomW:         8,
		RoomD:         10,
		HallW:         5,
		Stairs:        4,
		TargetRegions: 423,
		MultiFrac:     0.05,
	}
}

// SmallBuilding is a two-floor venue for tests and examples.
func SmallBuilding() BuildingSpec {
	return BuildingSpec{
		Floors:        2,
		Columns:       5,
		RoomW:         8,
		RoomD:         10,
		HallW:         5,
		Stairs:        2,
		TargetRegions: 0,
		MultiFrac:     0.1,
	}
}

// GenerateBuilding constructs the indoor space for a spec. The same
// (spec, seed) pair always yields the same space.
func GenerateBuilding(spec BuildingSpec, seed int64) (*indoor.Space, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	b := indoor.NewBuilder()

	cols := spec.Columns
	hallY0 := spec.RoomD
	hallY1 := spec.RoomD + spec.HallW

	// Partition IDs per floor.
	type floorParts struct {
		hall  []indoor.PartitionID // one hallway cell per column
		south []indoor.PartitionID // rooms below the hallway
		north []indoor.PartitionID // rooms above the hallway
	}
	floors := make([]floorParts, spec.Floors)

	for f := 0; f < spec.Floors; f++ {
		fp := floorParts{
			hall:  make([]indoor.PartitionID, cols),
			south: make([]indoor.PartitionID, cols),
			north: make([]indoor.PartitionID, cols),
		}
		for cIdx := 0; cIdx < cols; cIdx++ {
			x0 := float64(cIdx) * spec.RoomW
			x1 := x0 + spec.RoomW
			fp.south[cIdx] = b.AddPartition(f, geom.RectPoly(geom.Pt(x0, 0), geom.Pt(x1, hallY0)))
			fp.hall[cIdx] = b.AddPartition(f, geom.RectPoly(geom.Pt(x0, hallY0), geom.Pt(x1, hallY1)))
			fp.north[cIdx] = b.AddPartition(f, geom.RectPoly(geom.Pt(x0, hallY1), geom.Pt(x1, hallY1+spec.RoomD)))
		}
		midX := func(cIdx int) float64 { return float64(cIdx)*spec.RoomW + spec.RoomW/2 }
		for cIdx := 0; cIdx < cols; cIdx++ {
			// Room doors open onto the hallway cell of the same column.
			b.AddDoor(geom.Pt(midX(cIdx), hallY0), fp.south[cIdx], fp.hall[cIdx])
			b.AddDoor(geom.Pt(midX(cIdx), hallY1), fp.north[cIdx], fp.hall[cIdx])
			// Hallway cells chain left to right.
			if cIdx > 0 {
				b.AddDoor(geom.Pt(float64(cIdx)*spec.RoomW, (hallY0+hallY1)/2), fp.hall[cIdx-1], fp.hall[cIdx])
			}
		}
		floors[f] = fp
	}

	// Staircases between consecutive floors, spread across columns.
	for f := 0; f+1 < spec.Floors; f++ {
		for s := 0; s < spec.Stairs; s++ {
			cIdx := (s*cols/spec.Stairs + cols/(2*spec.Stairs)) % cols
			at := geom.Pt(float64(cIdx)*spec.RoomW+spec.RoomW/2, (hallY0+hallY1)/2)
			b.AddDoor(at, floors[f].hall[cIdx], floors[f+1].hall[cIdx])
		}
	}

	// Semantic regions over rooms, in shuffled order; occasionally a
	// region spans two horizontally adjacent rooms on the same side.
	type roomRef struct {
		floor, col int
		north      bool
		id         indoor.PartitionID
	}
	var rooms []roomRef
	for f := 0; f < spec.Floors; f++ {
		for cIdx := 0; cIdx < cols; cIdx++ {
			rooms = append(rooms, roomRef{f, cIdx, false, floors[f].south[cIdx]})
			rooms = append(rooms, roomRef{f, cIdx, true, floors[f].north[cIdx]})
		}
	}
	rng.Shuffle(len(rooms), func(i, j int) { rooms[i], rooms[j] = rooms[j], rooms[i] })
	target := spec.TargetRegions
	if target <= 0 || target > len(rooms) {
		target = len(rooms)
	}
	assigned := make(map[indoor.PartitionID]bool)
	count := 0
	for _, rm := range rooms {
		if count >= target {
			break
		}
		if assigned[rm.id] {
			continue
		}
		parts := []indoor.PartitionID{rm.id}
		assigned[rm.id] = true
		if rng.Float64() < spec.MultiFrac && rm.col+1 < cols {
			var next indoor.PartitionID
			if rm.north {
				next = floors[rm.floor].north[rm.col+1]
			} else {
				next = floors[rm.floor].south[rm.col+1]
			}
			if !assigned[next] {
				assigned[next] = true
				parts = append(parts, next)
				// A door joins the two rooms of a multi-room region.
				x := float64(rm.col+1) * spec.RoomW
				var y float64
				if rm.north {
					y = hallY1 + spec.RoomD/2
				} else {
					y = hallY0 / 2
				}
				b.AddDoor(geom.Pt(x, y), rm.id, next)
			}
		}
		b.AddRegion(fmt.Sprintf("R%03d", count), parts...)
		count++
	}
	return b.Build()
}
