package sim

import (
	"math"
	"testing"

	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

func TestBuildingSpecValidate(t *testing.T) {
	bad := []BuildingSpec{
		{},
		{Floors: 2, Columns: 3, RoomW: 8, RoomD: 10, HallW: 5, Stairs: 0},
		{Floors: 1, Columns: 3, RoomW: 0, RoomD: 10, HallW: 5},
		{Floors: 1, Columns: 3, RoomW: 8, RoomD: 10, HallW: 5, MultiFrac: 2},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should fail validation", i)
		}
	}
	for _, s := range []BuildingSpec{MallBuilding(), SynthBuilding(), SmallBuilding()} {
		if err := s.Validate(); err != nil {
			t.Errorf("profile spec invalid: %v", err)
		}
	}
}

func TestGenerateSmallBuilding(t *testing.T) {
	space, err := GenerateBuilding(SmallBuilding(), 1)
	if err != nil {
		t.Fatal(err)
	}
	st := space.Stats()
	// 2 floors x (5 south + 5 hall + 5 north) partitions.
	if st.Partitions != 30 {
		t.Errorf("Partitions = %d, want 30", st.Partitions)
	}
	if st.Floors != 2 {
		t.Errorf("Floors = %d", st.Floors)
	}
	if st.Stairs != 2 {
		t.Errorf("Stairs = %d", st.Stairs)
	}
	if st.Regions == 0 {
		t.Errorf("no regions generated")
	}
	// Hallway partitions carry no region: probe the hallway band.
	if r := space.RegionAt(indoor.Loc(20, 12.5, 0)); r != indoor.NoRegion {
		t.Errorf("hallway has region %v", r)
	}
}

func TestGenerateBuildingDeterministic(t *testing.T) {
	a, err := GenerateBuilding(SmallBuilding(), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateBuilding(SmallBuilding(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats() != b.Stats() {
		t.Errorf("same seed, different stats: %+v vs %+v", a.Stats(), b.Stats())
	}
	for _, r := range a.Regions() {
		if a.Region(r).Name != b.Region(r).Name {
			t.Errorf("region %d name differs", r)
		}
	}
}

func TestGenerateBuildingProfiles(t *testing.T) {
	mall, err := GenerateBuilding(MallBuilding(), 1)
	if err != nil {
		t.Fatal(err)
	}
	st := mall.Stats()
	if st.Regions != 202 {
		t.Errorf("mall regions = %d, want 202 (§V-B1)", st.Regions)
	}
	if st.Floors != 7 {
		t.Errorf("mall floors = %d", st.Floors)
	}

	synth, err := GenerateBuilding(SynthBuilding(), 1)
	if err != nil {
		t.Fatal(err)
	}
	st = synth.Stats()
	if st.Regions != 423 {
		t.Errorf("synth regions = %d, want 423 (§V-C)", st.Regions)
	}
	if st.Floors != 10 {
		t.Errorf("synth floors = %d", st.Floors)
	}
}

func TestBuildingConnectivity(t *testing.T) {
	// Every region must be reachable from every other: MIWD between
	// region centroids is finite.
	space, err := GenerateBuilding(SmallBuilding(), 3)
	if err != nil {
		t.Fatal(err)
	}
	regions := space.Regions()
	a := space.RegionCentroid(regions[0])
	for _, r := range regions[1:] {
		b := space.RegionCentroid(r)
		if d := space.MIWD(a, b); math.IsInf(d, 1) {
			t.Errorf("region %d unreachable from %d", r, regions[0])
		}
	}
}

func TestMobilitySpecValidate(t *testing.T) {
	bad := []MobilitySpec{
		{},
		{Objects: 1, Duration: 10, MaxSpeed: 1, StayMin: 5, StayMax: 1, T: 5},
		{Objects: 1, Duration: 10, MaxSpeed: 1, T: 0.5},
		{Objects: 1, Duration: 10, MaxSpeed: 1, T: 5, Mu: -1},
		{Objects: 1, Duration: 10, MaxSpeed: 1, T: 5, OutlierProb: 2},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should fail", i)
		}
	}
	if err := DefaultMobility(10, 3600).Validate(); err != nil {
		t.Errorf("default invalid: %v", err)
	}
	if err := MallMobility(10, 3600).Validate(); err != nil {
		t.Errorf("mall invalid: %v", err)
	}
}

func TestGenerateMobility(t *testing.T) {
	space, err := GenerateBuilding(SmallBuilding(), 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := DefaultMobility(5, 1200)
	spec.StayMax = 120
	ds, err := Generate(space, spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Sequences) != 5 {
		t.Fatalf("sequences = %d", len(ds.Sequences))
	}
	if err := ds.Validate(); err != nil {
		t.Fatalf("dataset invalid: %v", err)
	}
	var stays, passes int
	for _, ls := range ds.Sequences {
		n := ls.P.Len()
		// Records are within the lifespan and intervals within [1, T].
		for i := 0; i < n; i++ {
			if ls.P.Records[i].T < 0 || ls.P.Records[i].T > spec.Duration {
				t.Fatalf("record time %v out of range", ls.P.Records[i].T)
			}
			if i > 0 {
				dt := ls.P.Records[i].T - ls.P.Records[i-1].T
				if dt < 1-1e-9 || dt > spec.T+1e-9 {
					t.Fatalf("interval %v outside [1,%v]", dt, spec.T)
				}
			}
			if ls.Labels.Regions[i] == indoor.NoRegion {
				t.Fatalf("record %d has no ground-truth region", i)
			}
			switch ls.Labels.Events[i] {
			case seq.Stay:
				stays++
			case seq.Pass:
				passes++
			}
		}
	}
	if stays == 0 || passes == 0 {
		t.Errorf("degenerate event mix: %d stays, %d passes", stays, passes)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	space, _ := GenerateBuilding(SmallBuilding(), 1)
	spec := DefaultMobility(3, 600)
	a, err := Generate(space, spec, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(space, spec, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sequences) != len(b.Sequences) {
		t.Fatalf("sequence count differs")
	}
	for i := range a.Sequences {
		pa, pb := a.Sequences[i].P, b.Sequences[i].P
		if pa.Len() != pb.Len() {
			t.Fatalf("sequence %d length differs", i)
		}
		for j := range pa.Records {
			if pa.Records[j] != pb.Records[j] {
				t.Fatalf("sequence %d record %d differs", i, j)
			}
		}
	}
}

func TestSamplingDensityScalesWithT(t *testing.T) {
	// Table V: larger T → fewer records for the same workload.
	space, _ := GenerateBuilding(SmallBuilding(), 1)
	counts := map[float64]int{}
	for _, tt := range []float64{5, 10, 15} {
		spec := DefaultMobility(4, 1800)
		spec.T = tt
		ds, err := Generate(space, spec, 11)
		if err != nil {
			t.Fatal(err)
		}
		counts[tt] = ds.NumRecords()
	}
	if !(counts[5] > counts[10] && counts[10] > counts[15]) {
		t.Errorf("record counts not decreasing in T: %v", counts)
	}
}

func TestErrorMagnitudeScalesWithMu(t *testing.T) {
	// Records should wander farther from region anchors as Mu grows;
	// proxy: average distance between consecutive records during stays
	// grows with Mu.
	space, _ := GenerateBuilding(SmallBuilding(), 1)
	spread := func(mu float64) float64 {
		spec := DefaultMobility(4, 1800)
		spec.Mu = mu
		spec.StayMin, spec.StayMax = 300, 600 // mostly staying
		ds, err := Generate(space, spec, 5)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		var cnt int
		for _, ls := range ds.Sequences {
			for i := 1; i < ls.P.Len(); i++ {
				if ls.Labels.Events[i] == seq.Stay && ls.Labels.Events[i-1] == seq.Stay {
					sum += ls.P.Records[i].Loc.Dist(ls.P.Records[i-1].Loc)
					cnt++
				}
			}
		}
		return sum / float64(cnt)
	}
	if !(spread(1) < spread(7)) {
		t.Errorf("error spread not increasing with Mu: %v vs %v", spread(1), spread(7))
	}
}

func TestFalseFloorRate(t *testing.T) {
	space, _ := GenerateBuilding(SmallBuilding(), 1)
	spec := DefaultMobility(6, 1800)
	spec.FalseFloorProb = 0.2
	spec.Mu = 0.5
	spec.OutlierProb = 0
	ds, err := Generate(space, spec, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Count records whose floor differs from the truth-region floor.
	var wrong, total int
	for _, ls := range ds.Sequences {
		for i := range ls.P.Records {
			total++
			trueFloor := space.RegionCentroid(ls.Labels.Regions[i]).Floor
			if ls.P.Records[i].Loc.Floor != trueFloor {
				wrong++
			}
		}
	}
	rate := float64(wrong) / float64(total)
	if rate < 0.08 || rate > 0.40 {
		t.Errorf("false-floor proxy rate = %v, expected near 0.2", rate)
	}
}

func TestGenerateErrors(t *testing.T) {
	space, _ := GenerateBuilding(SmallBuilding(), 1)
	if _, err := Generate(space, MobilitySpec{}, 1); err == nil {
		t.Errorf("invalid spec should fail")
	}
	// Space with 1 region rejected.
	one := BuildingSpec{Floors: 1, Columns: 2, RoomW: 8, RoomD: 10, HallW: 5, Stairs: 1, TargetRegions: 1}
	s1, err := GenerateBuilding(one, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(s1, DefaultMobility(1, 60), 1); err == nil {
		t.Errorf("single-region space should fail")
	}
}
