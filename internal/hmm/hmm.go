// Package hmm implements a discrete-observation hidden Markov model
// with frequency-counted maximum-likelihood parameters and Viterbi
// decoding. It is the substrate of the HMM+DC baseline (semantic
// regions as hidden states, location grid cells as observations,
// §V-A) and of SAP's stay-segment region labeling.
package hmm

import (
	"fmt"
	"math"
)

// Model is a first-order HMM over discrete states and observations.
// All parameters are kept in log space.
type Model struct {
	NumStates int
	NumObs    int

	logInit  []float64   // logInit[s]
	logTrans [][]float64 // logTrans[s][s']
	logEmit  [][]float64 // logEmit[s][o]
}

// Counter accumulates frequency counts for maximum-likelihood
// estimation with additive (Laplace) smoothing.
type Counter struct {
	numStates int
	numObs    int
	initCnt   []float64
	transCnt  [][]float64
	emitCnt   [][]float64
}

// NewCounter creates a Counter for the given domain sizes.
func NewCounter(numStates, numObs int) (*Counter, error) {
	if numStates <= 0 || numObs <= 0 {
		return nil, fmt.Errorf("hmm: domain sizes must be positive (%d states, %d obs)", numStates, numObs)
	}
	c := &Counter{numStates: numStates, numObs: numObs}
	c.initCnt = make([]float64, numStates)
	c.transCnt = make([][]float64, numStates)
	c.emitCnt = make([][]float64, numStates)
	for s := 0; s < numStates; s++ {
		c.transCnt[s] = make([]float64, numStates)
		c.emitCnt[s] = make([]float64, numObs)
	}
	return c, nil
}

// AddSequence counts one labeled sequence: states[i] emits obs[i].
func (c *Counter) AddSequence(states, obs []int) error {
	if len(states) != len(obs) {
		return fmt.Errorf("hmm: states (%d) and observations (%d) misaligned", len(states), len(obs))
	}
	for i, s := range states {
		if s < 0 || s >= c.numStates {
			return fmt.Errorf("hmm: state %d out of range at %d", s, i)
		}
		o := obs[i]
		if o < 0 || o >= c.numObs {
			return fmt.Errorf("hmm: observation %d out of range at %d", o, i)
		}
		c.emitCnt[s][o]++
		if i == 0 {
			c.initCnt[s]++
		} else {
			c.transCnt[states[i-1]][s]++
		}
	}
	return nil
}

// Estimate finalises the model with additive smoothing pseudo-count
// alpha (alpha <= 0 defaults to 0.1).
func (c *Counter) Estimate(alpha float64) *Model {
	if alpha <= 0 {
		alpha = 0.1
	}
	m := &Model{NumStates: c.numStates, NumObs: c.numObs}
	m.logInit = normalizeLog(c.initCnt, alpha)
	m.logTrans = make([][]float64, c.numStates)
	m.logEmit = make([][]float64, c.numStates)
	for s := 0; s < c.numStates; s++ {
		m.logTrans[s] = normalizeLog(c.transCnt[s], alpha)
		m.logEmit[s] = normalizeLog(c.emitCnt[s], alpha)
	}
	return m
}

func normalizeLog(counts []float64, alpha float64) []float64 {
	total := 0.0
	for _, v := range counts {
		total += v + alpha
	}
	out := make([]float64, len(counts))
	for i, v := range counts {
		out[i] = math.Log((v + alpha) / total)
	}
	return out
}

// Viterbi returns the most likely state sequence for the observations
// along with its log probability.
func (m *Model) Viterbi(obs []int) ([]int, float64, error) {
	n := len(obs)
	if n == 0 {
		return nil, 0, nil
	}
	for i, o := range obs {
		if o < 0 || o >= m.NumObs {
			return nil, 0, fmt.Errorf("hmm: observation %d out of range at %d", o, i)
		}
	}
	s := m.NumStates
	prev := make([]float64, s)
	cur := make([]float64, s)
	back := make([][]int32, n)
	for st := 0; st < s; st++ {
		prev[st] = m.logInit[st] + m.logEmit[st][obs[0]]
	}
	for t := 1; t < n; t++ {
		back[t] = make([]int32, s)
		for st := 0; st < s; st++ {
			bestV := math.Inf(-1)
			bestP := 0
			for p := 0; p < s; p++ {
				if v := prev[p] + m.logTrans[p][st]; v > bestV {
					bestV, bestP = v, p
				}
			}
			cur[st] = bestV + m.logEmit[st][obs[t]]
			back[t][st] = int32(bestP)
		}
		prev, cur = cur, prev
	}
	bestV := math.Inf(-1)
	bestS := 0
	for st := 0; st < s; st++ {
		if prev[st] > bestV {
			bestV, bestS = prev[st], st
		}
	}
	path := make([]int, n)
	path[n-1] = bestS
	for t := n - 1; t > 0; t-- {
		path[t-1] = int(back[t][path[t]])
	}
	return path, bestV, nil
}

// LogProb returns the joint log probability of a (states, obs) pair,
// useful for testing Viterbi optimality.
func (m *Model) LogProb(states, obs []int) float64 {
	lp := 0.0
	for i, s := range states {
		lp += m.logEmit[s][obs[i]]
		if i == 0 {
			lp += m.logInit[s]
		} else {
			lp += m.logTrans[states[i-1]][s]
		}
	}
	return lp
}

// Grid discretises planar locations into HMM observation symbols. The
// same grid must be used for training and decoding.
type Grid struct {
	MinX, MinY float64
	CellSize   float64
	Cols, Rows int
	Floors     int
}

// NewGrid covers [minX,maxX]×[minY,maxY] across `floors` floors with
// square cells.
func NewGrid(minX, minY, maxX, maxY, cellSize float64, floors int) (*Grid, error) {
	if cellSize <= 0 || maxX <= minX || maxY <= minY || floors <= 0 {
		return nil, fmt.Errorf("hmm: invalid grid spec")
	}
	g := &Grid{MinX: minX, MinY: minY, CellSize: cellSize, Floors: floors}
	g.Cols = int((maxX-minX)/cellSize) + 1
	g.Rows = int((maxY-minY)/cellSize) + 1
	return g, nil
}

// NumCells returns the observation domain size.
func (g *Grid) NumCells() int { return g.Cols * g.Rows * g.Floors }

// Cell maps a location to its observation symbol; coordinates outside
// the grid clamp to the border, unknown floors clamp to the nearest
// modeled floor.
func (g *Grid) Cell(x, y float64, floor int) int {
	cx := int((x - g.MinX) / g.CellSize)
	cy := int((y - g.MinY) / g.CellSize)
	cx = clampInt(cx, 0, g.Cols-1)
	cy = clampInt(cy, 0, g.Rows-1)
	floor = clampInt(floor, 0, g.Floors-1)
	return (floor*g.Rows+cy)*g.Cols + cx
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
