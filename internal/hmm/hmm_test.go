package hmm

import (
	"math"
	"math/rand"
	"testing"
)

func TestCounterErrors(t *testing.T) {
	if _, err := NewCounter(0, 3); err == nil {
		t.Errorf("zero states should fail")
	}
	if _, err := NewCounter(3, 0); err == nil {
		t.Errorf("zero obs should fail")
	}
	c, err := NewCounter(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddSequence([]int{0, 1}, []int{0}); err == nil {
		t.Errorf("misaligned should fail")
	}
	if err := c.AddSequence([]int{0, 5}, []int{0, 0}); err == nil {
		t.Errorf("state out of range should fail")
	}
	if err := c.AddSequence([]int{0, 1}, []int{0, 9}); err == nil {
		t.Errorf("obs out of range should fail")
	}
}

func TestEstimateProbabilitiesNormalised(t *testing.T) {
	c, _ := NewCounter(3, 4)
	if err := c.AddSequence([]int{0, 1, 1, 2}, []int{0, 1, 1, 3}); err != nil {
		t.Fatal(err)
	}
	m := c.Estimate(0.5)
	rows := append([][]float64{m.logInit}, m.logTrans...)
	rows = append(rows, m.logEmit...)
	for ri, row := range rows {
		sum := 0.0
		for _, lp := range row {
			sum += math.Exp(lp)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("row %d sums to %v", ri, sum)
		}
	}
}

func TestViterbiRecoverStates(t *testing.T) {
	// Deterministic emissions: state s emits observation s. Viterbi
	// must recover the exact state path.
	c, _ := NewCounter(3, 3)
	seqs := [][]int{
		{0, 0, 1, 1, 2, 2},
		{2, 2, 1, 0, 0, 0},
		{1, 1, 1, 2, 0, 1},
	}
	for _, s := range seqs {
		if err := c.AddSequence(s, s); err != nil {
			t.Fatal(err)
		}
	}
	m := c.Estimate(0.01)
	for _, s := range seqs {
		path, _, err := m.Viterbi(s)
		if err != nil {
			t.Fatal(err)
		}
		for i := range s {
			if path[i] != s[i] {
				t.Fatalf("Viterbi(%v) = %v", s, path)
			}
		}
	}
}

func TestViterbiOptimality(t *testing.T) {
	// Viterbi's path must have log-probability >= every enumerated path.
	rng := rand.New(rand.NewSource(3))
	c, _ := NewCounter(3, 3)
	for i := 0; i < 20; i++ {
		n := 4
		st := make([]int, n)
		ob := make([]int, n)
		for j := range st {
			st[j] = rng.Intn(3)
			ob[j] = rng.Intn(3)
		}
		if err := c.AddSequence(st, ob); err != nil {
			t.Fatal(err)
		}
	}
	m := c.Estimate(0.2)
	obs := []int{0, 2, 1, 1, 0}
	path, lp, err := m.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.LogProb(path, obs); math.Abs(got-lp) > 1e-9 {
		t.Errorf("Viterbi score %v != LogProb %v", lp, got)
	}
	n := len(obs)
	total := 1
	for i := 0; i < n; i++ {
		total *= 3
	}
	for code := 0; code < total; code++ {
		states := make([]int, n)
		c := code
		for i := 0; i < n; i++ {
			states[i] = c % 3
			c /= 3
		}
		if m.LogProb(states, obs) > lp+1e-9 {
			t.Fatalf("found better path %v than Viterbi %v", states, path)
		}
	}
}

func TestViterbiEdgeCases(t *testing.T) {
	c, _ := NewCounter(2, 2)
	_ = c.AddSequence([]int{0, 1}, []int{0, 1})
	m := c.Estimate(0.1)
	path, _, err := m.Viterbi(nil)
	if err != nil || path != nil {
		t.Errorf("empty obs = %v, %v", path, err)
	}
	path, _, err = m.Viterbi([]int{1})
	if err != nil || len(path) != 1 {
		t.Errorf("single obs = %v, %v", path, err)
	}
	if _, _, err := m.Viterbi([]int{5}); err == nil {
		t.Errorf("out-of-range obs should fail")
	}
}

func TestGrid(t *testing.T) {
	g, err := NewGrid(0, 0, 100, 50, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cols != 11 || g.Rows != 6 {
		t.Errorf("grid dims = %dx%d", g.Cols, g.Rows)
	}
	if g.NumCells() != 11*6*2 {
		t.Errorf("NumCells = %d", g.NumCells())
	}
	// Distinct cells for distinct areas.
	if g.Cell(5, 5, 0) == g.Cell(95, 45, 0) {
		t.Errorf("far cells equal")
	}
	// Same cell for nearby points.
	if g.Cell(5, 5, 0) != g.Cell(6, 6, 0) {
		t.Errorf("near cells differ")
	}
	// Floor separation.
	if g.Cell(5, 5, 0) == g.Cell(5, 5, 1) {
		t.Errorf("floors share cells")
	}
	// Clamping.
	if got := g.Cell(-10, -10, 0); got != g.Cell(0, 0, 0) {
		t.Errorf("clamp min: %d", got)
	}
	if got := g.Cell(1e6, 1e6, 9); got != g.Cell(100, 50, 1) {
		t.Errorf("clamp max: %d", got)
	}
	if _, err := NewGrid(0, 0, -1, 5, 1, 1); err == nil {
		t.Errorf("bad grid should fail")
	}
	if _, err := NewGrid(0, 0, 10, 5, 0, 1); err == nil {
		t.Errorf("zero cell should fail")
	}
}

func TestNoisyChannelDecoding(t *testing.T) {
	// States follow a sticky chain; observations are noisy state
	// readings. Viterbi should beat raw observation decoding.
	rng := rand.New(rand.NewSource(7))
	gen := func(n int) (states, obs []int) {
		states = make([]int, n)
		obs = make([]int, n)
		s := rng.Intn(3)
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.15 {
				s = rng.Intn(3)
			}
			states[i] = s
			if rng.Float64() < 0.25 {
				obs[i] = rng.Intn(3)
			} else {
				obs[i] = s
			}
		}
		return
	}
	c, _ := NewCounter(3, 3)
	for i := 0; i < 200; i++ {
		st, ob := gen(40)
		if err := c.AddSequence(st, ob); err != nil {
			t.Fatal(err)
		}
	}
	m := c.Estimate(0.1)
	var vOK, rawOK, total int
	for i := 0; i < 50; i++ {
		st, ob := gen(40)
		path, _, err := m.Viterbi(ob)
		if err != nil {
			t.Fatal(err)
		}
		for j := range st {
			total++
			if path[j] == st[j] {
				vOK++
			}
			if ob[j] == st[j] {
				rawOK++
			}
		}
	}
	if vOK <= rawOK {
		t.Errorf("Viterbi accuracy %d/%d not above raw %d/%d", vOK, total, rawOK, total)
	}
}
