package seq

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"c2mn/internal/indoor"
)

func rec(x, y float64, floor int, t float64) Record {
	return Record{Loc: indoor.Loc(x, y, floor), T: t}
}

func TestEventString(t *testing.T) {
	if Stay.String() != "stay" || Pass.String() != "pass" {
		t.Errorf("Event.String wrong")
	}
	if Event(7).String() == "" {
		t.Errorf("unknown event should format")
	}
}

func TestPSequenceBasics(t *testing.T) {
	p := PSequence{ObjectID: "o1", Records: []Record{
		rec(0, 0, 0, 10), rec(1, 0, 0, 20), rec(2, 0, 0, 40),
	}}
	if p.Len() != 3 {
		t.Errorf("Len = %d", p.Len())
	}
	if p.Duration() != 30 {
		t.Errorf("Duration = %v", p.Duration())
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	p.Records[2].T = 5
	if err := p.Validate(); err == nil {
		t.Errorf("out-of-order records should fail")
	}
	empty := PSequence{}
	if empty.Duration() != 0 {
		t.Errorf("empty Duration = %v", empty.Duration())
	}
}

func TestNewLabelsAndClone(t *testing.T) {
	l := NewLabels(3)
	for _, r := range l.Regions {
		if r != indoor.NoRegion {
			t.Errorf("fresh labels should be NoRegion")
		}
	}
	l.Regions[0] = 5
	l.Events[0] = Stay
	c := l.Clone()
	c.Regions[0] = 9
	c.Events[0] = Pass
	if l.Regions[0] != 5 || l.Events[0] != Stay {
		t.Errorf("Clone not deep")
	}
}

func TestLabeledSequenceValidate(t *testing.T) {
	ls := LabeledSequence{
		P:      PSequence{ObjectID: "o", Records: []Record{rec(0, 0, 0, 1)}},
		Labels: NewLabels(2),
	}
	if err := ls.Validate(); err == nil {
		t.Errorf("misaligned labels should fail")
	}
	ls.Labels = NewLabels(1)
	if err := ls.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestMergeBasic(t *testing.T) {
	// The example of Fig. 2: rA pass | rD stay x2 | rD pass | rC pass x2 | rB pass.
	p := &PSequence{ObjectID: "o", Records: []Record{
		rec(0, 0, 0, 1), rec(0, 0, 0, 2), rec(0, 0, 0, 3),
		rec(0, 0, 0, 4), rec(0, 0, 0, 5), rec(0, 0, 0, 6), rec(0, 0, 0, 7),
	}}
	labels := Labels{
		Regions: []indoor.RegionID{0, 3, 3, 3, 2, 2, 1},
		Events:  []Event{Pass, Stay, Stay, Pass, Pass, Pass, Pass},
	}
	ms := Merge(p, labels)
	want := []MSemantics{
		{Region: 0, Start: 1, End: 1, Event: Pass},
		{Region: 3, Start: 2, End: 3, Event: Stay},
		{Region: 3, Start: 4, End: 4, Event: Pass},
		{Region: 2, Start: 5, End: 6, Event: Pass},
		{Region: 1, Start: 7, End: 7, Event: Pass},
	}
	if len(ms.Semantics) != len(want) {
		t.Fatalf("Merge produced %d semantics, want %d: %v", len(ms.Semantics), len(want), ms.Semantics)
	}
	for i, w := range want {
		if ms.Semantics[i] != w {
			t.Errorf("semantics[%d] = %v, want %v", i, ms.Semantics[i], w)
		}
	}
}

func TestMergeSkipsNoRegion(t *testing.T) {
	p := &PSequence{Records: []Record{rec(0, 0, 0, 1), rec(0, 0, 0, 2), rec(0, 0, 0, 3)}}
	labels := Labels{
		Regions: []indoor.RegionID{indoor.NoRegion, 1, 1},
		Events:  []Event{Pass, Stay, Stay},
	}
	ms := Merge(p, labels)
	if len(ms.Semantics) != 1 || ms.Semantics[0].Region != 1 {
		t.Errorf("Merge = %v", ms.Semantics)
	}
}

func TestMergeEmpty(t *testing.T) {
	p := &PSequence{}
	ms := Merge(p, Labels{})
	if len(ms.Semantics) != 0 {
		t.Errorf("empty merge = %v", ms.Semantics)
	}
}

func TestMergeProperties(t *testing.T) {
	// Properties of label-and-merge on random labelings:
	//  1. periods are disjoint and ordered (Definition 3),
	//  2. every record with a region is covered by exactly one semantics,
	//  3. adjacent semantics differ in region or event.
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(n%40) + 1
		p := &PSequence{Records: make([]Record, m)}
		labels := NewLabels(m)
		tcur := 0.0
		for i := 0; i < m; i++ {
			tcur += 1 + rng.Float64()*10
			p.Records[i] = rec(rng.Float64()*50, rng.Float64()*50, 0, tcur)
			labels.Regions[i] = indoor.RegionID(rng.Intn(4)) // 0..3, no NoRegion
			labels.Events[i] = Event(rng.Intn(2))
		}
		ms := Merge(p, labels)
		// Ordering and disjointness.
		for i := 1; i < len(ms.Semantics); i++ {
			if ms.Semantics[i].Start <= ms.Semantics[i-1].End {
				return false
			}
			prev, cur := ms.Semantics[i-1], ms.Semantics[i]
			if prev.Region == cur.Region && prev.Event == cur.Event && prev.End+1e-9 >= cur.Start {
				// Mergeable neighbours must have a time gap... they
				// cannot be adjacent records, so this is fine only if
				// something separated them; with dense coverage it is
				// a failure.
				_ = prev
			}
		}
		// Coverage: every record timestamp falls in exactly one period.
		for i := 0; i < m; i++ {
			cnt := 0
			for _, s := range ms.Semantics {
				if p.Records[i].T >= s.Start && p.Records[i].T <= s.End {
					cnt++
				}
			}
			if cnt != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMergeRoundTripsLabels(t *testing.T) {
	// Merging then expanding periods back to records reproduces the
	// original labels (when no NoRegion labels are present).
	rng := rand.New(rand.NewSource(11))
	m := 50
	p := &PSequence{Records: make([]Record, m)}
	labels := NewLabels(m)
	for i := 0; i < m; i++ {
		p.Records[i] = rec(0, 0, 0, float64(i))
		labels.Regions[i] = indoor.RegionID(rng.Intn(3))
		labels.Events[i] = Event(rng.Intn(2))
	}
	ms := Merge(p, labels)
	for i := 0; i < m; i++ {
		found := false
		for _, s := range ms.Semantics {
			if p.Records[i].T >= s.Start && p.Records[i].T <= s.End {
				if s.Region != labels.Regions[i] || s.Event != labels.Events[i] {
					t.Fatalf("record %d: semantics %v != labels (%d,%v)", i, s, labels.Regions[i], labels.Events[i])
				}
				found = true
			}
		}
		if !found {
			t.Fatalf("record %d not covered", i)
		}
	}
}

func TestPreprocess(t *testing.T) {
	// Gap of 200 s splits; short fragments are dropped.
	var records []Record
	for i := 0; i < 10; i++ {
		records = append(records, rec(0, 0, 0, float64(i*10))) // 0..90
	}
	records = append(records, rec(0, 0, 0, 300)) // gap 210
	for i := 1; i < 8; i++ {
		records = append(records, rec(0, 0, 0, 300+float64(i*10))) // 310..370
	}
	out := Preprocess("dev", records, 180, 60)
	if len(out) != 2 {
		t.Fatalf("Preprocess produced %d sequences, want 2", len(out))
	}
	if out[0].ObjectID != "dev#0" || out[1].ObjectID != "dev#1" {
		t.Errorf("IDs = %q, %q", out[0].ObjectID, out[1].ObjectID)
	}
	if out[0].Len() != 10 || out[1].Len() != 8 {
		t.Errorf("lens = %d, %d", out[0].Len(), out[1].Len())
	}
	// With psi = 80 the second (70 s) fragment is dropped.
	out = Preprocess("dev", records, 180, 80)
	if len(out) != 1 {
		t.Fatalf("psi filter kept %d sequences, want 1", len(out))
	}
	// Everything shorter than psi: nothing survives.
	out = Preprocess("dev", records[:2], 180, 60)
	if len(out) != 0 {
		t.Errorf("short input kept %d sequences", len(out))
	}
	if got := Preprocess("dev", nil, 180, 60); len(got) != 0 {
		t.Errorf("empty input kept %d", len(got))
	}
}

func TestDatasetStats(t *testing.T) {
	d := Dataset{Sequences: []LabeledSequence{
		{P: PSequence{ObjectID: "a", Records: []Record{rec(0, 0, 0, 0), rec(0, 0, 0, 10), rec(0, 0, 0, 20)}}, Labels: NewLabels(3)},
		{P: PSequence{ObjectID: "b", Records: []Record{rec(0, 0, 0, 0), rec(0, 0, 0, 30)}}, Labels: NewLabels(2)},
	}}
	st := d.Stats()
	if st.Sequences != 2 || st.Records != 5 {
		t.Errorf("Stats = %+v", st)
	}
	if st.AvgRecordsPer != 2.5 || st.AvgDurationSec != 25 {
		t.Errorf("averages = %+v", st)
	}
	// Intervals: 10,10,30 -> mean 50/3.
	if st.AvgIntervalSec < 16.6 || st.AvgIntervalSec > 16.7 {
		t.Errorf("AvgIntervalSec = %v", st.AvgIntervalSec)
	}
	if d.NumRecords() != 5 {
		t.Errorf("NumRecords = %d", d.NumRecords())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := &Dataset{Sequences: []LabeledSequence{
		{
			P: PSequence{ObjectID: "obj-1", Records: []Record{
				rec(1.5, 2.5, 0, 100), rec(2.5, 3.5, 1, 115),
			}},
			Labels: Labels{
				Regions: []indoor.RegionID{2, indoor.NoRegion},
				Events:  []Event{Stay, Pass},
			},
		},
	}}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Sequences) != 1 {
		t.Fatalf("round trip lost sequences")
	}
	got := d2.Sequences[0]
	want := d.Sequences[0]
	if got.P.ObjectID != want.P.ObjectID {
		t.Errorf("ObjectID = %q", got.P.ObjectID)
	}
	for i := range want.P.Records {
		if got.P.Records[i] != want.P.Records[i] {
			t.Errorf("record %d = %+v, want %+v", i, got.P.Records[i], want.P.Records[i])
		}
		if got.Labels.Regions[i] != want.Labels.Regions[i] || got.Labels.Events[i] != want.Labels.Events[i] {
			t.Errorf("labels %d differ", i)
		}
	}
}

func TestJSONUnlabeled(t *testing.T) {
	var buf bytes.Buffer
	d := &Dataset{Sequences: []LabeledSequence{{
		P:      PSequence{ObjectID: "x", Records: []Record{rec(0, 0, 0, 1)}},
		Labels: NewLabels(1),
	}}}
	// Strip labels by writing raw JSON without them.
	buf.WriteString(`{"sequences":[{"object_id":"x","records":[[0,0,0,1]]}]}`)
	d2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Sequences[0].Labels.Regions[0] != indoor.NoRegion {
		t.Errorf("unlabeled sequence should default to NoRegion")
	}
	_ = d
}

func TestJSONErrors(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("nope")); err == nil {
		t.Errorf("bad JSON should fail")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"sequences":[{"object_id":"x","records":[[0,0,0,1]],"regions":[1,2],"events":[0]}]}`)); err == nil {
		t.Errorf("misaligned labels should fail")
	}
	// Out-of-order records fail validation.
	if _, err := ReadJSON(bytes.NewBufferString(`{"sequences":[{"object_id":"x","records":[[0,0,0,5],[0,0,0,1]]}]}`)); err == nil {
		t.Errorf("out-of-order records should fail")
	}
}

func TestMSemanticsString(t *testing.T) {
	ms := MSemantics{Region: 3, Start: 10, End: 20, Event: Stay}
	if ms.Duration() != 10 {
		t.Errorf("Duration = %v", ms.Duration())
	}
	if ms.String() == "" {
		t.Errorf("String empty")
	}
}
