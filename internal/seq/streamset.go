package seq

import "sort"

// StreamKey identifies one object's positioning stream within one
// venue. A multi-venue deployment routes every record by this pair, so
// the same object ID active in two venues segments as two independent
// streams.
type StreamKey struct {
	Venue  string
	Object string
}

// StreamSet is a keyed collection of incremental Segmenters: the
// streaming state of a serving pipeline, one Segmenter per
// (venue, object) stream, all sharing one η/ψ preprocessing
// configuration. Segmenters are created on first use and released by
// FlushAll, so a long-running server does not accumulate an entry per
// object ID ever seen.
//
// A StreamSet is not safe for concurrent use; callers (the Engine)
// serialise access.
type StreamSet struct {
	eta, psi float64
	streams  map[StreamKey]*Segmenter
}

// NewStreamSet returns an empty stream collection splitting on eta-gap
// and filtering fragments shorter than psi seconds.
func NewStreamSet(eta, psi float64) *StreamSet {
	return &StreamSet{eta: eta, psi: psi, streams: map[StreamKey]*Segmenter{}}
}

// Get returns the stream's segmenter, creating it on first use. The
// segmenter is keyed by the full (venue, object) pair but emits
// fragment IDs from the object ID alone — the venue is routing
// information, not part of the data.
func (ss *StreamSet) Get(k StreamKey) *Segmenter {
	s, ok := ss.streams[k]
	if !ok {
		s = NewSegmenter(k.Object, ss.eta, ss.psi)
		ss.streams[k] = s
	}
	return s
}

// Len returns the number of tracked streams.
func (ss *StreamSet) Len() int { return len(ss.streams) }

// Keys returns the tracked stream keys ordered by (venue, object).
func (ss *StreamSet) Keys() []StreamKey {
	out := make([]StreamKey, 0, len(ss.streams))
	for k := range ss.streams {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Venue != out[j].Venue {
			return out[i].Venue < out[j].Venue
		}
		return out[i].Object < out[j].Object
	})
	return out
}

// Pending reports how many streams have a buffered open fragment and
// how many records those fragments hold.
func (ss *StreamSet) Pending() (streams, records int) {
	for _, s := range ss.streams {
		if n := s.Pending(); n > 0 {
			streams++
			records += n
		}
	}
	return streams, records
}

// FlushAll completes every stream's trailing fragment in (venue,
// object) key order, releases all stream state, and returns the
// fragments that survive the ψ filter. The next record of a stream
// that keeps feeding starts a fresh segmenter, restarting fragment
// numbering at "#0" exactly like a fresh Preprocess call.
func (ss *StreamSet) FlushAll() []PSequence {
	keys := ss.Keys()
	var done []PSequence
	for _, k := range keys {
		if p, ok := ss.streams[k].Flush(); ok {
			done = append(done, p)
		}
		delete(ss.streams, k)
	}
	return done
}
