package seq

import (
	"fmt"
	"sort"
)

// StreamKey identifies one object's positioning stream within one
// venue. A multi-venue deployment routes every record by this pair, so
// the same object ID active in two venues segments as two independent
// streams.
type StreamKey struct {
	Venue  string
	Object string
}

// StreamSet is a keyed collection of incremental Segmenters: the
// streaming state of a serving pipeline, one Segmenter per
// (venue, object) stream, all sharing one η/ψ preprocessing
// configuration. Segmenters are created on first use and released by
// FlushAll, so a long-running server does not accumulate an entry per
// object ID ever seen.
//
// A StreamSet is not safe for concurrent use; callers (the Engine)
// serialise access.
type StreamSet struct {
	eta, psi float64
	streams  map[StreamKey]*Segmenter
}

// NewStreamSet returns an empty stream collection splitting on eta-gap
// and filtering fragments shorter than psi seconds.
func NewStreamSet(eta, psi float64) *StreamSet {
	return &StreamSet{eta: eta, psi: psi, streams: map[StreamKey]*Segmenter{}}
}

// Get returns the stream's segmenter, creating it on first use. The
// segmenter is keyed by the full (venue, object) pair but emits
// fragment IDs from the object ID alone — the venue is routing
// information, not part of the data.
func (ss *StreamSet) Get(k StreamKey) *Segmenter {
	s, ok := ss.streams[k]
	if !ok {
		s = NewSegmenter(k.Object, ss.eta, ss.psi)
		ss.streams[k] = s
	}
	return s
}

// Len returns the number of tracked streams.
func (ss *StreamSet) Len() int { return len(ss.streams) }

// Keys returns the tracked stream keys ordered by (venue, object).
func (ss *StreamSet) Keys() []StreamKey {
	out := make([]StreamKey, 0, len(ss.streams))
	for k := range ss.streams {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Venue != out[j].Venue {
			return out[i].Venue < out[j].Venue
		}
		return out[i].Object < out[j].Object
	})
	return out
}

// Pending reports how many streams have a buffered open fragment and
// how many records those fragments hold.
func (ss *StreamSet) Pending() (streams, records int) {
	for _, s := range ss.streams {
		if n := s.Pending(); n > 0 {
			streams++
			records += n
		}
	}
	return streams, records
}

// StreamState is the serialisable state of one stream: its key, the
// next fragment number (the "#k" counter) and the buffered records of
// its open fragment. Together with the set's η/ψ configuration it
// fully determines the segmenter's future behaviour, so a restored
// stream continues segmenting exactly where the captured one left off
// — same splits, same ψ filtering, same fragment IDs.
type StreamState struct {
	Key      StreamKey
	Fragment int      // next fragment number ("#k")
	Records  []Record // open-fragment buffer, time-ordered
}

// SnapshotState captures every stream's segmenter state in (venue,
// object) key order. The record slices are copies: later Feeds do not
// mutate a captured state.
func (ss *StreamSet) SnapshotState() []StreamState {
	keys := ss.Keys()
	out := make([]StreamState, 0, len(keys))
	for _, k := range keys {
		s := ss.streams[k]
		st := StreamState{Key: k, Fragment: s.k}
		if len(s.buf) > 0 {
			st.Records = append([]Record(nil), s.buf...)
		}
		out = append(out, st)
	}
	return out
}

// RestoreState replaces the set's streams with the captured states.
// Invalid states — a negative fragment counter, out-of-order buffered
// records, or a duplicated key — are rejected and the set is left
// unchanged. The states' record slices are copied, so the caller may
// keep mutating them afterwards.
func (ss *StreamSet) RestoreState(states []StreamState) error {
	streams := make(map[StreamKey]*Segmenter, len(states))
	for _, st := range states {
		if st.Fragment < 0 {
			return fmt.Errorf("seq: stream %s/%s: negative fragment counter %d",
				st.Key.Venue, st.Key.Object, st.Fragment)
		}
		for i := 1; i < len(st.Records); i++ {
			if st.Records[i].T < st.Records[i-1].T {
				return fmt.Errorf("seq: stream %s/%s: buffered records out of order at %d",
					st.Key.Venue, st.Key.Object, i)
			}
		}
		if _, dup := streams[st.Key]; dup {
			return fmt.Errorf("seq: stream %s/%s: duplicate stream state",
				st.Key.Venue, st.Key.Object)
		}
		s := NewSegmenter(st.Key.Object, ss.eta, ss.psi)
		s.k = st.Fragment
		if len(st.Records) > 0 {
			s.buf = append([]Record(nil), st.Records...)
		}
		streams[st.Key] = s
	}
	ss.streams = streams
	return nil
}

// FlushAll completes every stream's trailing fragment in (venue,
// object) key order, releases all stream state, and returns the
// fragments that survive the ψ filter. The next record of a stream
// that keeps feeding starts a fresh segmenter, restarting fragment
// numbering at "#0" exactly like a fresh Preprocess call.
func (ss *StreamSet) FlushAll() []PSequence {
	keys := ss.Keys()
	var done []PSequence
	for _, k := range keys {
		if p, ok := ss.streams[k].Flush(); ok {
			done = append(done, p)
		}
		delete(ss.streams, k)
	}
	return done
}
