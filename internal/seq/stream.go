package seq

import "fmt"

// Segmenter performs the η-gap/ψ-duration preprocessing of Preprocess
// incrementally, one record at a time, so that continuous positioning
// streams can be segmented online without buffering the whole stream.
//
// Feeding a record stream through Feed (plus a final Flush) yields
// exactly the p-sequences Preprocess yields on the same records in one
// batch: the same splits, the same ψ filtering, and the same "#k"
// sub-sequence IDs. Preprocess itself is implemented on a Segmenter,
// so the two cannot drift apart.
//
// A Segmenter is not safe for concurrent use; callers that share one
// across goroutines must serialise access.
type Segmenter struct {
	objectID string
	eta, psi float64
	k        int
	buf      []Record
}

// NewSegmenter returns an incremental segmenter for one object's
// stream, splitting on gaps larger than eta seconds and dropping
// fragments shorter than psi seconds.
func NewSegmenter(objectID string, eta, psi float64) *Segmenter {
	return &Segmenter{objectID: objectID, eta: eta, psi: psi}
}

// ObjectID returns the stream's object identifier.
func (s *Segmenter) ObjectID() string { return s.objectID }

// Pending returns the number of buffered records not yet part of a
// completed sequence.
func (s *Segmenter) Pending() int { return len(s.buf) }

// Last returns the timestamp of the most recently buffered record,
// with ok = false when no record is buffered.
func (s *Segmenter) Last() (t float64, ok bool) {
	if len(s.buf) == 0 {
		return 0, false
	}
	return s.buf[len(s.buf)-1].T, true
}

// Feed appends one record to the stream. When the record's gap from
// the previous one exceeds η the buffered fragment is completed: it is
// returned with ok = true if it survives the ψ filter, and silently
// dropped (ok = false) otherwise. In either case the fragment counter
// advances, matching Preprocess's sub-sequence numbering.
func (s *Segmenter) Feed(r Record) (p PSequence, ok bool) {
	if len(s.buf) > 0 && r.T-s.buf[len(s.buf)-1].T > s.eta {
		p, ok = s.complete()
	}
	s.buf = append(s.buf, r)
	return p, ok
}

// Flush completes the trailing fragment, if any survives the ψ filter.
// The stream may keep feeding afterwards; within one Segmenter the
// fragment numbering continues where it left off, so its sub-sequence
// IDs never collide. (A caller that discards the Segmenter after
// flushing — as Engine.Flush does to release per-object state —
// restarts numbering at #0, like a fresh Preprocess call.)
func (s *Segmenter) Flush() (p PSequence, ok bool) {
	return s.complete()
}

// complete closes the current buffer as fragment #k, advances k, and
// reports whether the fragment passes the ψ-duration filter.
func (s *Segmenter) complete() (PSequence, bool) {
	if len(s.buf) == 0 {
		return PSequence{}, false
	}
	frag := s.buf
	k := s.k
	s.k++
	s.buf = nil
	if frag[len(frag)-1].T-frag[0].T < s.psi {
		return PSequence{}, false
	}
	return PSequence{
		ObjectID: fmt.Sprintf("%s#%d", s.objectID, k),
		Records:  frag,
	}, true
}
