package seq

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// referencePreprocess is the original batch implementation of
// Preprocess, kept verbatim as the parity oracle for the incremental
// Segmenter (Preprocess itself now runs on a Segmenter).
func referencePreprocess(objectID string, records []Record, eta, psi float64) []PSequence {
	var out []PSequence
	start := 0
	flush := func(end int, k int) {
		if end <= start {
			return
		}
		sub := records[start:end]
		if sub[len(sub)-1].T-sub[0].T < psi {
			return
		}
		cp := make([]Record, len(sub))
		copy(cp, sub)
		out = append(out, PSequence{
			ObjectID: fmt.Sprintf("%s#%d", objectID, k),
			Records:  cp,
		})
	}
	k := 0
	for i := 1; i < len(records); i++ {
		if records[i].T-records[i-1].T > eta {
			flush(i, k)
			k++
			start = i
		}
	}
	flush(len(records), k)
	return out
}

// randomStream generates a record stream with occasional η-sized gaps.
func randomStream(rng *rand.Rand, n int, eta float64) []Record {
	var records []Record
	t := rng.Float64() * 100
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.08 {
			t += eta + rng.Float64()*eta // force a split
		} else {
			t += rng.Float64() * eta * 0.3
		}
		records = append(records, rec(rng.Float64()*50, rng.Float64()*50, rng.Intn(2), t))
	}
	return records
}

func TestSegmenterMatchesBatchPreprocess(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40)
		eta := 60 + rng.Float64()*240
		psi := rng.Float64() * 120
		if trial%10 == 0 {
			psi = 0 // psi = 0 keeps single-record fragments
		}
		records := randomStream(rng, n, eta)

		want := referencePreprocess("obj", records, eta, psi)
		got := Preprocess("obj", records, eta, psi)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d eta=%g psi=%g):\nbatch Preprocess diverged from reference\n got %v\nwant %v",
				trial, n, eta, psi, got, want)
		}

		// Incremental: one record at a time, trailing fragment at Flush.
		s := NewSegmenter("obj", eta, psi)
		var inc []PSequence
		for _, r := range records {
			if p, ok := s.Feed(r); ok {
				inc = append(inc, p)
			}
		}
		if p, ok := s.Flush(); ok {
			inc = append(inc, p)
		}
		if !reflect.DeepEqual(inc, want) {
			t.Fatalf("trial %d (n=%d eta=%g psi=%g):\nincremental segmenter diverged\n got %v\nwant %v",
				trial, n, eta, psi, inc, want)
		}
	}
}

func TestSegmenterPendingAndFlushContinuation(t *testing.T) {
	s := NewSegmenter("dev", 100, 0)
	if p, ok := s.Flush(); ok {
		t.Fatalf("Flush on empty segmenter emitted %v", p)
	}
	s.Feed(rec(0, 0, 0, 0))
	s.Feed(rec(0, 0, 0, 10))
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	p, ok := s.Flush()
	if !ok || p.ObjectID != "dev#0" || p.Len() != 2 {
		t.Fatalf("first flush = %v, %v", p, ok)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending after flush = %d", s.Pending())
	}
	// Numbering continues after a flush: no ID collisions.
	s.Feed(rec(0, 0, 0, 20))
	p, ok = s.Flush()
	if !ok || p.ObjectID != "dev#1" {
		t.Fatalf("post-flush fragment = %v, %v", p, ok)
	}
	if s.ObjectID() != "dev" {
		t.Fatalf("ObjectID = %q", s.ObjectID())
	}
}

func TestSegmenterDropsShortFragments(t *testing.T) {
	s := NewSegmenter("dev", 50, 30)
	// Fragment of 20 s, then a gap: dropped, but the counter advances.
	s.Feed(rec(0, 0, 0, 0))
	if p, ok := s.Feed(rec(0, 0, 0, 20)); ok {
		t.Fatalf("unexpected emit %v", p)
	}
	if p, ok := s.Feed(rec(0, 0, 0, 200)); ok {
		t.Fatalf("short fragment should be dropped, got %v", p)
	}
	s.Feed(rec(0, 0, 0, 240))
	p, ok := s.Flush()
	if !ok || p.ObjectID != "dev#1" {
		t.Fatalf("fragment after a dropped one = %v, %v (want dev#1)", p, ok)
	}
}
