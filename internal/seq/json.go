package seq

import (
	"encoding/json"
	"fmt"
	"io"

	"c2mn/internal/indoor"
)

// jsonDataset is the compact on-disk schema: per sequence, records as
// [x, y, floor, t] tuples and labels as parallel arrays.
type jsonDataset struct {
	Sequences []jsonSequence `json:"sequences"`
}

type jsonSequence struct {
	ObjectID string       `json:"object_id"`
	Records  [][4]float64 `json:"records"`
	Regions  []int        `json:"regions,omitempty"`
	Events   []uint8      `json:"events,omitempty"`
}

// WriteJSON serialises the dataset to w.
func (d *Dataset) WriteJSON(w io.Writer) error {
	jd := jsonDataset{}
	for i := range d.Sequences {
		ls := &d.Sequences[i]
		js := jsonSequence{ObjectID: ls.P.ObjectID}
		for _, rec := range ls.P.Records {
			js.Records = append(js.Records, [4]float64{rec.Loc.X, rec.Loc.Y, float64(rec.Loc.Floor), rec.T})
		}
		for _, r := range ls.Labels.Regions {
			js.Regions = append(js.Regions, int(r))
		}
		for _, e := range ls.Labels.Events {
			js.Events = append(js.Events, uint8(e))
		}
		jd.Sequences = append(jd.Sequences, js)
	}
	return json.NewEncoder(w).Encode(jd)
}

// ReadJSON deserialises a dataset written by WriteJSON. Sequences may
// omit labels, in which case empty labels of the right length are
// created with regions set to NoRegion.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var jd jsonDataset
	if err := json.NewDecoder(r).Decode(&jd); err != nil {
		return nil, fmt.Errorf("seq: decoding dataset: %w", err)
	}
	d := &Dataset{}
	for _, js := range jd.Sequences {
		ls := LabeledSequence{P: PSequence{ObjectID: js.ObjectID}}
		for _, rec := range js.Records {
			ls.P.Records = append(ls.P.Records, Record{
				Loc: indoor.Loc(rec[0], rec[1], int(rec[2])),
				T:   rec[3],
			})
		}
		n := ls.P.Len()
		if len(js.Regions) == 0 && len(js.Events) == 0 {
			ls.Labels = NewLabels(n)
		} else {
			if len(js.Regions) != n || len(js.Events) != n {
				return nil, fmt.Errorf("seq: sequence %q labels misaligned", js.ObjectID)
			}
			ls.Labels = NewLabels(n)
			for i, rr := range js.Regions {
				ls.Labels.Regions[i] = indoor.RegionID(rr)
			}
			for i, ee := range js.Events {
				ls.Labels.Events[i] = Event(ee)
			}
		}
		d.Sequences = append(d.Sequences, ls)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
