package seq

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadRecordsCSV(t *testing.T) {
	in := strings.NewReader(`object,x,y,floor,t
dev1,1.5,2.5,0,100
dev2,3,4,1,50
dev1,1.6,2.4,0,90
`)
	streams, err := ReadRecordsCSV(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 2 {
		t.Fatalf("streams = %d", len(streams))
	}
	d1 := streams["dev1"]
	if len(d1) != 2 {
		t.Fatalf("dev1 records = %d", len(d1))
	}
	// Sorted by time despite input order.
	if d1[0].T != 90 || d1[1].T != 100 {
		t.Errorf("dev1 not time-sorted: %+v", d1)
	}
	if d1[1].Loc.X != 1.5 || d1[1].Loc.Y != 2.5 || d1[1].Loc.Floor != 0 {
		t.Errorf("dev1 record = %+v", d1[1])
	}
}

func TestReadRecordsCSVNoHeader(t *testing.T) {
	in := strings.NewReader("dev1,1,2,0,10\ndev1,2,3,0,20\n")
	streams, err := ReadRecordsCSV(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams["dev1"]) != 2 {
		t.Fatalf("no-header parse lost rows: %+v", streams)
	}
}

func TestReadRecordsCSVErrors(t *testing.T) {
	cases := []string{
		"dev1,1,2,0\n",       // too few columns
		"dev1,x,2,0,10\n",    // bad x
		"dev1,1,y,0,10\n",    // bad y
		"dev1,1,2,zero,10\n", // bad floor
		"dev1,1,2,0,never\n", // bad t
	}
	for i, c := range cases {
		if _, err := ReadRecordsCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail: %q", i, c)
		}
	}
	// Header-only input yields no streams, no error.
	streams, err := ReadRecordsCSV(strings.NewReader("object,x,y,floor,t\n"))
	if err != nil || len(streams) != 0 {
		t.Errorf("header-only = %v, %v", streams, err)
	}
}

func TestRecordsCSVRoundTrip(t *testing.T) {
	streams := map[string][]Record{
		"b": {rec(1, 2, 0, 10), rec(3, 4, 1, 20)},
		"a": {rec(5.25, -1.5, 2, 30)},
	}
	var buf bytes.Buffer
	if err := WriteRecordsCSV(&buf, streams); err != nil {
		t.Fatal(err)
	}
	// Header present, objects sorted.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "object,x,y,floor,t" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "a,") {
		t.Errorf("objects not sorted: %q", lines[1])
	}
	back, err := ReadRecordsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for id, recs := range streams {
		got := back[id]
		if len(got) != len(recs) {
			t.Fatalf("%s: %d records, want %d", id, len(got), len(recs))
		}
		for i := range recs {
			if got[i] != recs[i] {
				t.Errorf("%s[%d] = %+v, want %+v", id, i, got[i], recs[i])
			}
		}
	}
}
