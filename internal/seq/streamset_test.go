package seq

import (
	"reflect"
	"testing"
)

func srec(t float64) Record { return Record{T: t} }

func TestStreamSetKeysByVenueAndObject(t *testing.T) {
	ss := NewStreamSet(100, 0)
	// The same object ID in two venues is two independent streams.
	a := ss.Get(StreamKey{Venue: "north", Object: "o"})
	b := ss.Get(StreamKey{Venue: "south", Object: "o"})
	if a == b {
		t.Fatal("streams of different venues share a segmenter")
	}
	if got := ss.Get(StreamKey{Venue: "north", Object: "o"}); got != a {
		t.Fatal("Get did not return the existing segmenter")
	}
	a.Feed(srec(0))
	if b.Pending() != 0 {
		t.Fatal("feeding one venue's stream affected the other")
	}
	want := []StreamKey{{"north", "o"}, {"south", "o"}}
	if got := ss.Keys(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys() = %v, want %v", got, want)
	}
	if ss.Len() != 2 {
		t.Fatalf("Len() = %d", ss.Len())
	}
}

func TestStreamSetFragmentIDsOmitVenue(t *testing.T) {
	ss := NewStreamSet(100, 0)
	s := ss.Get(StreamKey{Venue: "mall-7", Object: "visitor"})
	s.Feed(srec(0))
	s.Feed(srec(10))
	p, ok := s.Flush()
	if !ok {
		t.Fatal("flush dropped the fragment")
	}
	if p.ObjectID != "visitor#0" {
		t.Fatalf("fragment ID = %q, want venue-free %q", p.ObjectID, "visitor#0")
	}
}

func TestStreamSetFlushAllReleasesState(t *testing.T) {
	ss := NewStreamSet(100, 0)
	ss.Get(StreamKey{Venue: "a", Object: "x"}).Feed(srec(0))
	ss.Get(StreamKey{Venue: "a", Object: "x"}).Feed(srec(5))
	ss.Get(StreamKey{Venue: "b", Object: "y"}).Feed(srec(1))
	ss.Get(StreamKey{Venue: "a", Object: "empty"}) // no records buffered

	streams, records := ss.Pending()
	if streams != 2 || records != 3 {
		t.Fatalf("Pending() = %d streams / %d records, want 2/3", streams, records)
	}
	done := ss.FlushAll()
	if len(done) != 2 {
		t.Fatalf("FlushAll returned %d fragments, want 2", len(done))
	}
	// Key order: venue first, then object.
	if done[0].ObjectID != "x#0" || done[1].ObjectID != "y#0" {
		t.Fatalf("flush order = %q, %q", done[0].ObjectID, done[1].ObjectID)
	}
	if ss.Len() != 0 {
		t.Fatalf("FlushAll left %d streams tracked", ss.Len())
	}
	// A continuing stream restarts numbering at #0.
	s := ss.Get(StreamKey{Venue: "a", Object: "x"})
	s.Feed(srec(100))
	s.Feed(srec(110))
	if p, ok := s.Flush(); !ok || p.ObjectID != "x#0" {
		t.Fatalf("post-flush fragment = %v %v, want x#0 restart", p.ObjectID, ok)
	}
}
