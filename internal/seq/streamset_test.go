package seq

import (
	"reflect"
	"testing"
)

func srec(t float64) Record { return Record{T: t} }

func TestStreamSetKeysByVenueAndObject(t *testing.T) {
	ss := NewStreamSet(100, 0)
	// The same object ID in two venues is two independent streams.
	a := ss.Get(StreamKey{Venue: "north", Object: "o"})
	b := ss.Get(StreamKey{Venue: "south", Object: "o"})
	if a == b {
		t.Fatal("streams of different venues share a segmenter")
	}
	if got := ss.Get(StreamKey{Venue: "north", Object: "o"}); got != a {
		t.Fatal("Get did not return the existing segmenter")
	}
	a.Feed(srec(0))
	if b.Pending() != 0 {
		t.Fatal("feeding one venue's stream affected the other")
	}
	want := []StreamKey{{"north", "o"}, {"south", "o"}}
	if got := ss.Keys(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys() = %v, want %v", got, want)
	}
	if ss.Len() != 2 {
		t.Fatalf("Len() = %d", ss.Len())
	}
}

func TestStreamSetFragmentIDsOmitVenue(t *testing.T) {
	ss := NewStreamSet(100, 0)
	s := ss.Get(StreamKey{Venue: "mall-7", Object: "visitor"})
	s.Feed(srec(0))
	s.Feed(srec(10))
	p, ok := s.Flush()
	if !ok {
		t.Fatal("flush dropped the fragment")
	}
	if p.ObjectID != "visitor#0" {
		t.Fatalf("fragment ID = %q, want venue-free %q", p.ObjectID, "visitor#0")
	}
}

// TestStreamSetSnapshotRestore pins the stream-persistence contract: a
// restored set continues segmenting exactly where the captured one left
// off — same open-fragment buffers, same splits, same "#k" IDs — and a
// restore replaces (not merges into) the set's previous streams.
func TestStreamSetSnapshotRestore(t *testing.T) {
	ss := NewStreamSet(100, 0)
	a := ss.Get(StreamKey{Venue: "m", Object: "a"})
	a.Feed(srec(0))
	a.Feed(srec(10))
	a.Feed(srec(200)) // η-gap: completes a#0, buffers the t=200 record
	ss.Get(StreamKey{Venue: "m", Object: "b"}).Feed(srec(5))

	states := ss.SnapshotState()
	if len(states) != 2 {
		t.Fatalf("SnapshotState returned %d streams, want 2", len(states))
	}
	if states[0].Key != (StreamKey{Venue: "m", Object: "a"}) || states[0].Fragment != 1 ||
		len(states[0].Records) != 1 || states[0].Records[0].T != 200 {
		t.Fatalf("stream a state = %+v", states[0])
	}

	// The capture is isolated from further feeding.
	a.Feed(srec(210))
	if len(states[0].Records) != 1 {
		t.Fatal("snapshot shares the live buffer")
	}

	fresh := NewStreamSet(100, 0)
	fresh.Get(StreamKey{Venue: "old", Object: "gone"}).Feed(srec(1))
	if err := fresh.RestoreState(states); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != 2 {
		t.Fatalf("restored set tracks %d streams, want 2 (restore must replace)", fresh.Len())
	}
	// The restored stream continues fragment numbering at #1.
	ra := fresh.Get(StreamKey{Venue: "m", Object: "a"})
	if ra.Pending() != 1 {
		t.Fatalf("restored pending = %d, want 1", ra.Pending())
	}
	ra.Feed(srec(210))
	if p, ok := ra.Flush(); !ok || p.ObjectID != "a#1" || len(p.Records) != 2 {
		t.Fatalf("restored flush = %v %v, want a#1 with 2 records", p, ok)
	}

	// Invalid states are rejected and leave the set unchanged.
	bad := [][]StreamState{
		{{Key: StreamKey{"v", "o"}, Fragment: -1}},
		{{Key: StreamKey{"v", "o"}, Records: []Record{srec(5), srec(1)}}},
		{{Key: StreamKey{"v", "o"}}, {Key: StreamKey{"v", "o"}}},
	}
	for i, states := range bad {
		if err := fresh.RestoreState(states); err == nil {
			t.Fatalf("bad state %d accepted", i)
		}
	}
	if fresh.Len() != 2 {
		t.Fatal("failed restore mutated the set")
	}
}

func TestStreamSetFlushAllReleasesState(t *testing.T) {
	ss := NewStreamSet(100, 0)
	ss.Get(StreamKey{Venue: "a", Object: "x"}).Feed(srec(0))
	ss.Get(StreamKey{Venue: "a", Object: "x"}).Feed(srec(5))
	ss.Get(StreamKey{Venue: "b", Object: "y"}).Feed(srec(1))
	ss.Get(StreamKey{Venue: "a", Object: "empty"}) // no records buffered

	streams, records := ss.Pending()
	if streams != 2 || records != 3 {
		t.Fatalf("Pending() = %d streams / %d records, want 2/3", streams, records)
	}
	done := ss.FlushAll()
	if len(done) != 2 {
		t.Fatalf("FlushAll returned %d fragments, want 2", len(done))
	}
	// Key order: venue first, then object.
	if done[0].ObjectID != "x#0" || done[1].ObjectID != "y#0" {
		t.Fatalf("flush order = %q, %q", done[0].ObjectID, done[1].ObjectID)
	}
	if ss.Len() != 0 {
		t.Fatalf("FlushAll left %d streams tracked", ss.Len())
	}
	// A continuing stream restarts numbering at #0.
	s := ss.Get(StreamKey{Venue: "a", Object: "x"})
	s.Feed(srec(100))
	s.Feed(srec(110))
	if p, ok := s.Flush(); !ok || p.ObjectID != "x#0" {
		t.Fatalf("post-flush fragment = %v %v, want x#0 restart", p.ObjectID, ok)
	}
}
