package seq

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"c2mn/internal/indoor"
)

// ReadRecordsCSV ingests raw positioning logs in the common
// object,x,y,floor,t CSV layout (header optional; extra columns are
// ignored). Records are grouped per object and sorted by time — raw
// feeds are rarely ordered. Use Preprocess to split the streams into
// p-sequences.
func ReadRecordsCSV(r io.Reader) (map[string][]Record, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.TrimLeadingSpace = true
	out := map[string][]Record{}
	line := 0
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("seq: csv line %d: %w", line+1, err)
		}
		line++
		if len(row) < 5 {
			return nil, fmt.Errorf("seq: csv line %d: want at least 5 columns (object,x,y,floor,t), got %d", line, len(row))
		}
		if line == 1 && !looksNumeric(row[1]) && !looksNumeric(row[2]) &&
			!looksNumeric(row[3]) && !looksNumeric(row[4]) {
			continue // header
		}
		x, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("seq: csv line %d: x: %w", line, err)
		}
		y, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("seq: csv line %d: y: %w", line, err)
		}
		floor, err := strconv.Atoi(row[3])
		if err != nil {
			return nil, fmt.Errorf("seq: csv line %d: floor: %w", line, err)
		}
		t, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			return nil, fmt.Errorf("seq: csv line %d: t: %w", line, err)
		}
		out[row[0]] = append(out[row[0]], Record{Loc: indoor.Loc(x, y, floor), T: t})
	}
	for id := range out {
		recs := out[id]
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].T < recs[j].T })
	}
	return out, nil
}

// WriteRecordsCSV writes streams in the layout ReadRecordsCSV accepts,
// with a header, objects in sorted order.
func WriteRecordsCSV(w io.Writer, streams map[string][]Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"object", "x", "y", "floor", "t"}); err != nil {
		return err
	}
	ids := make([]string, 0, len(streams))
	for id := range streams {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		for _, rec := range streams[id] {
			row := []string{
				id,
				strconv.FormatFloat(rec.Loc.X, 'f', -1, 64),
				strconv.FormatFloat(rec.Loc.Y, 'f', -1, 64),
				strconv.Itoa(rec.Loc.Floor),
				strconv.FormatFloat(rec.T, 'f', -1, 64),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func looksNumeric(s string) bool {
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}
