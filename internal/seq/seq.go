// Package seq defines the data model of the annotation pipeline:
// positioning records, p-sequences (Definition 1 of the paper),
// region/event label sequences, m-semantics (Definition 2) and the
// label-and-merge construction of ms-sequences (Definition 3, Fig. 2).
// It also provides the preprocessing the paper applies to raw data
// (η-gap splitting and ψ-duration filtering, §V-B1) and JSON dataset
// serialisation.
package seq

import (
	"fmt"

	"c2mn/internal/indoor"
)

// Event is an indoor mobility event: the paper's two generic movement
// patterns.
type Event uint8

// The two mobility events. A stay means the object remained in a
// semantic region long enough for a purpose fulfilled there; a pass
// means it merely went through.
const (
	Pass Event = iota
	Stay
)

// NumEvents is the size of the event label domain.
const NumEvents = 2

func (e Event) String() string {
	switch e {
	case Stay:
		return "stay"
	case Pass:
		return "pass"
	default:
		return fmt.Sprintf("event(%d)", uint8(e))
	}
}

// Record is one positioning record θ(l, t): an estimated indoor
// location and a timestamp in seconds.
type Record struct {
	Loc indoor.Location
	T   float64
}

// PSequence is a time-ordered positioning sequence of one object.
type PSequence struct {
	ObjectID string
	Records  []Record
}

// Len returns the number of records.
func (p *PSequence) Len() int { return len(p.Records) }

// Duration returns the covered time span in seconds.
func (p *PSequence) Duration() float64 {
	if len(p.Records) < 2 {
		return 0
	}
	return p.Records[len(p.Records)-1].T - p.Records[0].T
}

// Validate checks that records are in non-decreasing time order.
func (p *PSequence) Validate() error {
	for i := 1; i < len(p.Records); i++ {
		if p.Records[i].T < p.Records[i-1].T {
			return fmt.Errorf("seq: %s records out of order at %d (%.3f < %.3f)",
				p.ObjectID, i, p.Records[i].T, p.Records[i-1].T)
		}
	}
	return nil
}

// Labels carries the per-record region and event labels of one
// p-sequence; both slices are index-aligned with the records.
type Labels struct {
	Regions []indoor.RegionID
	Events  []Event
}

// NewLabels allocates label slices for n records, with regions
// initialised to NoRegion.
func NewLabels(n int) Labels {
	l := Labels{
		Regions: make([]indoor.RegionID, n),
		Events:  make([]Event, n),
	}
	for i := range l.Regions {
		l.Regions[i] = indoor.NoRegion
	}
	return l
}

// Clone returns a deep copy.
func (l Labels) Clone() Labels {
	c := Labels{
		Regions: append([]indoor.RegionID(nil), l.Regions...),
		Events:  append([]Event(nil), l.Events...),
	}
	return c
}

// LabeledSequence couples a p-sequence with its ground-truth or
// predicted labels.
type LabeledSequence struct {
	P      PSequence
	Labels Labels
}

// Validate checks record ordering and label alignment.
func (ls *LabeledSequence) Validate() error {
	if err := ls.P.Validate(); err != nil {
		return err
	}
	n := ls.P.Len()
	if len(ls.Labels.Regions) != n || len(ls.Labels.Events) != n {
		return fmt.Errorf("seq: %s labels misaligned: %d records, %d regions, %d events",
			ls.P.ObjectID, n, len(ls.Labels.Regions), len(ls.Labels.Events))
	}
	return nil
}

// MSemantics is one mobility semantics triple ms(r, τ, e): an object
// did e in region r throughout the period τ = [Start, End].
type MSemantics struct {
	Region indoor.RegionID
	Start  float64
	End    float64
	Event  Event
}

// Duration returns End - Start.
func (ms MSemantics) Duration() float64 { return ms.End - ms.Start }

func (ms MSemantics) String() string {
	return fmt.Sprintf("(r%d, [%.0f,%.0f], %s)", ms.Region, ms.Start, ms.End, ms.Event)
}

// MSSequence is an object's time-ordered ms-sequence.
type MSSequence struct {
	ObjectID  string
	Semantics []MSemantics
}

// Merge performs the label-and-merge step (Fig. 2): consecutive records
// sharing both the region and the event label collapse into one
// m-semantics whose period spans their timestamps. Records labelled
// NoRegion are skipped (no semantics can be asserted for them).
func Merge(p *PSequence, labels Labels) MSSequence {
	out := MSSequence{ObjectID: p.ObjectID}
	n := p.Len()
	for i := 0; i < n; {
		r, e := labels.Regions[i], labels.Events[i]
		j := i + 1
		for j < n && labels.Regions[j] == r && labels.Events[j] == e {
			j++
		}
		if r != indoor.NoRegion {
			out.Semantics = append(out.Semantics, MSemantics{
				Region: r,
				Start:  p.Records[i].T,
				End:    p.Records[j-1].T,
				Event:  e,
			})
		}
		i = j
	}
	return out
}

// Preprocess applies the paper's data cleaning to one raw record
// stream: the stream is split whenever the gap between consecutive
// records exceeds eta seconds, and resulting sequences shorter than
// psi seconds are dropped. Sub-sequence IDs get a "#k" suffix.
//
// Preprocess is the batch form of Segmenter: it feeds the records
// through an incremental segmenter, so streaming ingestion (e.g.
// Engine.Feed in the root package) segments identically.
func Preprocess(objectID string, records []Record, eta, psi float64) []PSequence {
	s := NewSegmenter(objectID, eta, psi)
	var out []PSequence
	for _, r := range records {
		if p, ok := s.Feed(r); ok {
			out = append(out, p)
		}
	}
	if p, ok := s.Flush(); ok {
		out = append(out, p)
	}
	return out
}

// Dataset is a labeled corpus: a set of labeled p-sequences over one
// indoor space.
type Dataset struct {
	Sequences []LabeledSequence
}

// NumRecords returns the total record count over all sequences.
func (d *Dataset) NumRecords() int {
	n := 0
	for i := range d.Sequences {
		n += d.Sequences[i].P.Len()
	}
	return n
}

// Validate checks every sequence.
func (d *Dataset) Validate() error {
	for i := range d.Sequences {
		if err := d.Sequences[i].Validate(); err != nil {
			return fmt.Errorf("sequence %d: %w", i, err)
		}
	}
	return nil
}

// Stats summarises a dataset the way the paper's Table III does.
type Stats struct {
	Sequences      int
	Records        int
	AvgRecordsPer  float64
	AvgDurationSec float64
	AvgIntervalSec float64
}

// Stats computes dataset statistics.
func (d *Dataset) Stats() Stats {
	st := Stats{Sequences: len(d.Sequences)}
	var dur, interval float64
	var intervals int
	for i := range d.Sequences {
		p := &d.Sequences[i].P
		st.Records += p.Len()
		dur += p.Duration()
		for j := 1; j < p.Len(); j++ {
			interval += p.Records[j].T - p.Records[j-1].T
			intervals++
		}
	}
	if st.Sequences > 0 {
		st.AvgRecordsPer = float64(st.Records) / float64(st.Sequences)
		st.AvgDurationSec = dur / float64(st.Sequences)
	}
	if intervals > 0 {
		st.AvgIntervalSec = interval / float64(intervals)
	}
	return st
}
