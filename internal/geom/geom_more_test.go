package geom

import (
	"math"
	"testing"
)

func TestRectCenterExpand(t *testing.T) {
	r := Rect{Pt(0, 0), Pt(4, 2)}
	if got := r.Center(); got != Pt(2, 1) {
		t.Errorf("Center = %v", got)
	}
	e := r.Expand(1)
	if e.Min != Pt(-1, -1) || e.Max != Pt(5, 3) {
		t.Errorf("Expand = %+v", e)
	}
	// Invalid rect has zero area.
	bad := Rect{Pt(4, 4), Pt(0, 0)}
	if bad.Area() != 0 {
		t.Errorf("inverted rect area = %v", bad.Area())
	}
}

func TestPointString(t *testing.T) {
	if s := Pt(1.5, -2).String(); s != "(1.500,-2.000)" {
		t.Errorf("String = %q", s)
	}
}

func TestDegenerateCentroid(t *testing.T) {
	// Collinear polygon falls back to the vertex average.
	degenerate := Polygon{Pt(0, 0), Pt(2, 0), Pt(4, 0)}
	c := degenerate.Centroid()
	if math.Abs(c.X-2) > 1e-12 || math.Abs(c.Y) > 1e-12 {
		t.Errorf("degenerate centroid = %v", c)
	}
	var empty Polygon
	if got := empty.Centroid(); got != Pt(0, 0) {
		t.Errorf("empty centroid = %v", got)
	}
	if got := empty.Perimeter(); got != 0 {
		t.Errorf("empty perimeter = %v", got)
	}
	if got := (Polygon{Pt(0, 0), Pt(1, 1)}).SignedArea(); got != 0 {
		t.Errorf("2-point signed area = %v", got)
	}
}

func TestContainsTinyPolygon(t *testing.T) {
	if (Polygon{Pt(0, 0), Pt(1, 1)}).Contains(Pt(0.5, 0.5)) {
		t.Errorf("2-point polygon cannot contain anything")
	}
}

func TestCircleIntersectAreaDegenerate(t *testing.T) {
	c := Circle{Pt(0, 0), 0}
	if got := c.IntersectArea(RectPoly(Pt(-1, -1), Pt(1, 1))); got != 0 {
		t.Errorf("zero-radius area = %v", got)
	}
	c = Circle{Pt(0, 0), 1}
	if got := c.IntersectArea(Polygon{Pt(0, 0), Pt(1, 1)}); got != 0 {
		t.Errorf("degenerate polygon area = %v", got)
	}
	if (Circle{Pt(0, 0), 1}).IntersectsPolygon(Polygon{Pt(0, 0)}) {
		t.Errorf("degenerate polygon should not intersect")
	}
}
