// Package geom provides the planar geometry primitives used by the
// indoor space model and the C2MN feature functions: points, rectangles,
// polygons, circle–polygon intersection areas and turn detection.
//
// All coordinates are in meters. The package is self-contained and has
// no dependencies outside the standard library.
package geom

import (
	"fmt"
	"math"
)

// Eps is the tolerance used for geometric predicates.
const Eps = 1e-9

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p×q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean norm of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Mid returns the midpoint of p and q.
func (p Point) Mid(q Point) Point { return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2} }

func (p Point) String() string { return fmt.Sprintf("(%.3f,%.3f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle. A Rect is valid when Min.X <= Max.X
// and Min.Y <= Max.Y.
type Rect struct {
	Min, Max Point
}

// RectOf builds the bounding rectangle of a set of points.
func RectOf(pts ...Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{pts[0], pts[0]}
	for _, p := range pts[1:] {
		r = r.ExtendPoint(p)
	}
	return r
}

// ExtendPoint grows r to include p.
func (r Rect) ExtendPoint(p Point) Rect {
	if p.X < r.Min.X {
		r.Min.X = p.X
	}
	if p.Y < r.Min.Y {
		r.Min.Y = p.Y
	}
	if p.X > r.Max.X {
		r.Max.X = p.X
	}
	if p.Y > r.Max.Y {
		r.Max.Y = p.Y
	}
	return r
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	return r.ExtendPoint(s.Min).ExtendPoint(s.Max)
}

// Intersects reports whether r and s overlap (touching counts).
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// ContainsPoint reports whether p lies inside or on the boundary of r.
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s lies entirely within r.
func (r Rect) ContainsRect(s Rect) bool {
	return r.ContainsPoint(s.Min) && r.ContainsPoint(s.Max)
}

// Area returns the area of r.
func (r Rect) Area() float64 {
	if r.Max.X < r.Min.X || r.Max.Y < r.Min.Y {
		return 0
	}
	return (r.Max.X - r.Min.X) * (r.Max.Y - r.Min.Y)
}

// Center returns the center point of r.
func (r Rect) Center() Point { return r.Min.Mid(r.Max) }

// Expand grows r by d in every direction.
func (r Rect) Expand(d float64) Rect {
	return Rect{Point{r.Min.X - d, r.Min.Y - d}, Point{r.Max.X + d, r.Max.Y + d}}
}

// DistPoint returns the distance from p to the closest point of r
// (zero when p is inside r).
func (r Rect) DistPoint(p Point) float64 {
	dx := math.Max(math.Max(r.Min.X-p.X, 0), p.X-r.Max.X)
	dy := math.Max(math.Max(r.Min.Y-p.Y, 0), p.Y-r.Max.Y)
	return math.Hypot(dx, dy)
}

// IntersectsCircle reports whether r overlaps the disk centered at c
// with radius rad.
func (r Rect) IntersectsCircle(c Point, rad float64) bool {
	return r.DistPoint(c) <= rad
}

// Polygon is a simple polygon given by its vertices in order (either
// orientation). The ring is implicitly closed: the last vertex connects
// back to the first.
type Polygon []Point

// RectPoly builds a rectangular polygon from two opposite corners.
func RectPoly(min, max Point) Polygon {
	return Polygon{min, {max.X, min.Y}, max, {min.X, max.Y}}
}

// Area returns the (unsigned) area of the polygon via the shoelace
// formula.
func (poly Polygon) Area() float64 {
	return math.Abs(poly.SignedArea())
}

// SignedArea returns the signed shoelace area: positive for
// counter-clockwise rings, negative for clockwise ones.
func (poly Polygon) SignedArea() float64 {
	if len(poly) < 3 {
		return 0
	}
	sum := 0.0
	for i, p := range poly {
		q := poly[(i+1)%len(poly)]
		sum += p.Cross(q)
	}
	return sum / 2
}

// Perimeter returns the total boundary length of the polygon.
func (poly Polygon) Perimeter() float64 {
	if len(poly) < 2 {
		return 0
	}
	sum := 0.0
	for i, p := range poly {
		sum += p.Dist(poly[(i+1)%len(poly)])
	}
	return sum
}

// Centroid returns the area centroid of the polygon. For degenerate
// polygons it falls back to the vertex average.
func (poly Polygon) Centroid() Point {
	a := poly.SignedArea()
	if math.Abs(a) < Eps {
		var c Point
		for _, p := range poly {
			c = c.Add(p)
		}
		if len(poly) > 0 {
			c = c.Scale(1 / float64(len(poly)))
		}
		return c
	}
	var c Point
	for i, p := range poly {
		q := poly[(i+1)%len(poly)]
		w := p.Cross(q)
		c.X += (p.X + q.X) * w
		c.Y += (p.Y + q.Y) * w
	}
	return c.Scale(1 / (6 * a))
}

// Bounds returns the bounding rectangle of the polygon.
func (poly Polygon) Bounds() Rect { return RectOf(poly...) }

// Contains reports whether p lies inside the polygon (boundary points
// count as inside) using the even-odd ray-casting rule.
func (poly Polygon) Contains(p Point) bool {
	if len(poly) < 3 {
		return false
	}
	if poly.OnBoundary(p) {
		return true
	}
	inside := false
	n := len(poly)
	for i := 0; i < n; i++ {
		a, b := poly[i], poly[(i+1)%n]
		if (a.Y > p.Y) != (b.Y > p.Y) {
			x := a.X + (p.Y-a.Y)/(b.Y-a.Y)*(b.X-a.X)
			if p.X < x {
				inside = !inside
			}
		}
	}
	return inside
}

// OnBoundary reports whether p lies on an edge of the polygon (within
// Eps tolerance).
func (poly Polygon) OnBoundary(p Point) bool {
	n := len(poly)
	for i := 0; i < n; i++ {
		if DistPointSegment(p, poly[i], poly[(i+1)%n]) < Eps {
			return true
		}
	}
	return false
}

// Validate checks the polygon has at least three vertices and a
// non-degenerate area.
func (poly Polygon) Validate() error {
	if len(poly) < 3 {
		return fmt.Errorf("geom: polygon needs at least 3 vertices, got %d", len(poly))
	}
	if poly.Area() < Eps {
		return fmt.Errorf("geom: polygon area is degenerate (%g)", poly.Area())
	}
	return nil
}

// DistPointSegment returns the distance from p to the segment a-b.
func DistPointSegment(p, a, b Point) float64 {
	ab := b.Sub(a)
	l2 := ab.Dot(ab)
	if l2 < Eps*Eps {
		return p.Dist(a)
	}
	t := p.Sub(a).Dot(ab) / l2
	t = Clamp(t, 0, 1)
	return p.Dist(a.Add(ab.Scale(t)))
}

// ClosestOnSegment returns the point on segment a-b closest to p.
func ClosestOnSegment(p, a, b Point) Point {
	ab := b.Sub(a)
	l2 := ab.Dot(ab)
	if l2 < Eps*Eps {
		return a
	}
	t := Clamp(p.Sub(a).Dot(ab)/l2, 0, 1)
	return a.Add(ab.Scale(t))
}

// Clamp limits v to the range [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SegmentsIntersect reports whether segments a-b and c-d share at least
// one point.
func SegmentsIntersect(a, b, c, d Point) bool {
	d1 := orient(c, d, a)
	d2 := orient(c, d, b)
	d3 := orient(a, b, c)
	d4 := orient(a, b, d)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	switch {
	case d1 == 0 && onSeg(c, d, a):
		return true
	case d2 == 0 && onSeg(c, d, b):
		return true
	case d3 == 0 && onSeg(a, b, c):
		return true
	case d4 == 0 && onSeg(a, b, d):
		return true
	}
	return false
}

func orient(a, b, c Point) float64 {
	v := b.Sub(a).Cross(c.Sub(a))
	if math.Abs(v) < Eps {
		return 0
	}
	return v
}

func onSeg(a, b, p Point) bool {
	return math.Min(a.X, b.X)-Eps <= p.X && p.X <= math.Max(a.X, b.X)+Eps &&
		math.Min(a.Y, b.Y)-Eps <= p.Y && p.Y <= math.Max(a.Y, b.Y)+Eps
}

// Angle returns the absolute turning angle, in radians within [0, π],
// between direction a→b and direction b→c. Degenerate steps (zero
// movement) yield a zero angle.
func Angle(a, b, c Point) float64 {
	u := b.Sub(a)
	v := c.Sub(b)
	nu, nv := u.Norm(), v.Norm()
	if nu < Eps || nv < Eps {
		return 0
	}
	cos := Clamp(u.Dot(v)/(nu*nv), -1, 1)
	return math.Acos(cos)
}

// IsTurn reports whether the heading change at b along the path a→b→c
// exceeds 90 degrees, the turn criterion of the paper's fes feature
// (footnote 4 of the paper).
func IsTurn(a, b, c Point) bool {
	return Angle(a, b, c) > math.Pi/2+Eps
}

// CountTurns counts the number of turns along a path, applying IsTurn
// at every interior point.
func CountTurns(path []Point) int {
	n := 0
	for i := 1; i+1 < len(path); i++ {
		if IsTurn(path[i-1], path[i], path[i+1]) {
			n++
		}
	}
	return n
}
