package geom

import "math"

// Circle is a disk centered at C with radius R.
type Circle struct {
	C Point
	R float64
}

// Area returns the area of the disk.
func (c Circle) Area() float64 { return math.Pi * c.R * c.R }

// Contains reports whether p lies inside or on the circle.
func (c Circle) Contains(p Point) bool { return c.C.Dist(p) <= c.R+Eps }

// Bounds returns the bounding rectangle of the circle.
func (c Circle) Bounds() Rect {
	return Rect{
		Point{c.C.X - c.R, c.C.Y - c.R},
		Point{c.C.X + c.R, c.C.Y + c.R},
	}
}

// IntersectArea returns the exact area of the intersection between the
// disk and the polygon. It decomposes the polygon into signed triangles
// anchored at the circle center and sums each triangle's exact
// intersection with the disk (sectors where the edge lies outside the
// circle, plain triangles where it lies inside). The result is clamped
// to [0, min(circle area, polygon area)].
func (c Circle) IntersectArea(poly Polygon) float64 {
	if len(poly) < 3 || c.R <= 0 {
		return 0
	}
	// Quick reject on bounding boxes.
	if !poly.Bounds().IntersectsCircle(c.C, c.R) {
		return 0
	}
	total := 0.0
	n := len(poly)
	for i := 0; i < n; i++ {
		a := poly[i].Sub(c.C)
		b := poly[(i+1)%n].Sub(c.C)
		total += circleEdgeArea(c.R, a, b)
	}
	area := math.Abs(total)
	return Clamp(area, 0, math.Min(c.Area(), poly.Area()))
}

// circleEdgeArea returns the signed area of the intersection between
// the disk of radius r centered at the origin and the triangle
// (origin, a, b).
func circleEdgeArea(r float64, a, b Point) float64 {
	na, nb := a.Norm(), b.Norm()
	if na < Eps || nb < Eps {
		return 0
	}
	cross := a.Cross(b)
	if math.Abs(cross) < Eps*Eps {
		return 0
	}
	if na <= r+Eps && nb <= r+Eps {
		// Both endpoints inside: plain triangle.
		return cross / 2
	}
	// Solve |a + t(b-a)| = r for t.
	d := b.Sub(a)
	qa := d.Dot(d)
	qb := 2 * a.Dot(d)
	qc := a.Dot(a) - r*r
	disc := qb*qb - 4*qa*qc
	if disc <= 0 {
		// Edge entirely outside the circle: circular sector.
		return sectorArea(r, a, b)
	}
	sq := math.Sqrt(disc)
	t1 := (-qb - sq) / (2 * qa)
	t2 := (-qb + sq) / (2 * qa)
	if t1 >= 1 || t2 <= 0 {
		// Chord misses the segment: sector again.
		return sectorArea(r, a, b)
	}
	t1c := Clamp(t1, 0, 1)
	t2c := Clamp(t2, 0, 1)
	p1 := a.Add(d.Scale(t1c))
	p2 := a.Add(d.Scale(t2c))
	area := 0.0
	if t1 > 0 {
		area += sectorArea(r, a, p1)
	}
	area += p1.Cross(p2) / 2
	if t2 < 1 {
		area += sectorArea(r, p2, b)
	}
	return area
}

// sectorArea returns the signed area of the circular sector of radius r
// swept from direction a to direction b.
func sectorArea(r float64, a, b Point) float64 {
	theta := math.Atan2(a.Cross(b), a.Dot(b))
	return r * r * theta / 2
}

// IntersectsPolygon reports whether the disk and polygon share any
// point, checking containment both ways plus edge proximity.
func (c Circle) IntersectsPolygon(poly Polygon) bool {
	if len(poly) < 3 {
		return false
	}
	if !poly.Bounds().IntersectsCircle(c.C, c.R) {
		return false
	}
	if poly.Contains(c.C) {
		return true
	}
	n := len(poly)
	for i := 0; i < n; i++ {
		if DistPointSegment(c.C, poly[i], poly[(i+1)%n]) <= c.R {
			return true
		}
	}
	return false
}
