package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointOps(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -1)
	if got := p.Add(q); got != Pt(4, 1) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 1 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != -7 {
		t.Errorf("Cross = %v", got)
	}
	if !almost(p.Dist(q), math.Sqrt(13), 1e-12) {
		t.Errorf("Dist = %v", p.Dist(q))
	}
	if got := p.Mid(q); got != Pt(2, 0.5) {
		t.Errorf("Mid = %v", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := RectOf(Pt(0, 0), Pt(4, 3), Pt(2, -1))
	if r.Min != Pt(0, -1) || r.Max != Pt(4, 3) {
		t.Fatalf("RectOf = %+v", r)
	}
	if got := r.Area(); got != 16 {
		t.Errorf("Area = %v", got)
	}
	if !r.ContainsPoint(Pt(2, 2)) || r.ContainsPoint(Pt(5, 0)) {
		t.Errorf("ContainsPoint wrong")
	}
	s := Rect{Pt(3, 2), Pt(6, 6)}
	if !r.Intersects(s) {
		t.Errorf("expected intersection")
	}
	if r.Intersects(Rect{Pt(5, 5), Pt(6, 6)}) {
		t.Errorf("unexpected intersection")
	}
	u := r.Union(s)
	if u.Min != Pt(0, -1) || u.Max != Pt(6, 6) {
		t.Errorf("Union = %+v", u)
	}
	if !u.ContainsRect(r) || !u.ContainsRect(s) {
		t.Errorf("Union must contain operands")
	}
}

func TestRectDistPoint(t *testing.T) {
	r := Rect{Pt(0, 0), Pt(2, 2)}
	cases := []struct {
		p Point
		d float64
	}{
		{Pt(1, 1), 0},
		{Pt(3, 1), 1},
		{Pt(-1, -1), math.Sqrt2},
		{Pt(1, 5), 3},
	}
	for _, c := range cases {
		if got := r.DistPoint(c.p); !almost(got, c.d, 1e-12) {
			t.Errorf("DistPoint(%v) = %v, want %v", c.p, got, c.d)
		}
	}
	if !r.IntersectsCircle(Pt(3, 1), 1.5) || r.IntersectsCircle(Pt(3, 1), 0.5) {
		t.Errorf("IntersectsCircle wrong")
	}
}

func TestPolygonAreaCentroid(t *testing.T) {
	sq := RectPoly(Pt(0, 0), Pt(2, 2))
	if got := sq.Area(); !almost(got, 4, 1e-12) {
		t.Errorf("square area = %v", got)
	}
	if got := sq.Centroid(); !almost(got.X, 1, 1e-12) || !almost(got.Y, 1, 1e-12) {
		t.Errorf("square centroid = %v", got)
	}
	if got := sq.Perimeter(); !almost(got, 8, 1e-12) {
		t.Errorf("square perimeter = %v", got)
	}
	// Clockwise orientation gives negative signed area, same unsigned.
	cw := Polygon{Pt(0, 0), Pt(0, 2), Pt(2, 2), Pt(2, 0)}
	if cw.SignedArea() >= 0 {
		t.Errorf("clockwise signed area should be negative: %v", cw.SignedArea())
	}
	if !almost(cw.Area(), 4, 1e-12) {
		t.Errorf("clockwise unsigned area = %v", cw.Area())
	}
	tri := Polygon{Pt(0, 0), Pt(4, 0), Pt(0, 3)}
	if got := tri.Area(); !almost(got, 6, 1e-12) {
		t.Errorf("triangle area = %v", got)
	}
}

func TestPolygonContains(t *testing.T) {
	poly := Polygon{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(2, 2), Pt(0, 4)} // concave
	in := []Point{Pt(1, 1), Pt(3, 1), Pt(2, 0.5), Pt(0, 0), Pt(2, 2)}
	out := []Point{Pt(2, 3.5), Pt(-1, 0), Pt(5, 5), Pt(2, 4)}
	for _, p := range in {
		if !poly.Contains(p) {
			t.Errorf("Contains(%v) = false, want true", p)
		}
	}
	for _, p := range out {
		if poly.Contains(p) {
			t.Errorf("Contains(%v) = true, want false", p)
		}
	}
}

func TestPolygonValidate(t *testing.T) {
	if err := (Polygon{Pt(0, 0), Pt(1, 1)}).Validate(); err == nil {
		t.Errorf("expected error for 2-vertex polygon")
	}
	if err := (Polygon{Pt(0, 0), Pt(1, 1), Pt(2, 2)}).Validate(); err == nil {
		t.Errorf("expected error for collinear polygon")
	}
	if err := RectPoly(Pt(0, 0), Pt(1, 1)).Validate(); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestDistPointSegment(t *testing.T) {
	cases := []struct {
		p, a, b Point
		d       float64
	}{
		{Pt(0, 1), Pt(-1, 0), Pt(1, 0), 1},
		{Pt(2, 0), Pt(-1, 0), Pt(1, 0), 1},
		{Pt(0, 0), Pt(0, 0), Pt(0, 0), 0},
		{Pt(3, 4), Pt(0, 0), Pt(0, 0), 5},
	}
	for _, c := range cases {
		if got := DistPointSegment(c.p, c.a, c.b); !almost(got, c.d, 1e-12) {
			t.Errorf("DistPointSegment(%v,%v,%v) = %v, want %v", c.p, c.a, c.b, got, c.d)
		}
	}
}

func TestSegmentsIntersect(t *testing.T) {
	if !SegmentsIntersect(Pt(0, 0), Pt(2, 2), Pt(0, 2), Pt(2, 0)) {
		t.Errorf("crossing segments should intersect")
	}
	if SegmentsIntersect(Pt(0, 0), Pt(1, 0), Pt(0, 1), Pt(1, 1)) {
		t.Errorf("parallel segments should not intersect")
	}
	if !SegmentsIntersect(Pt(0, 0), Pt(2, 0), Pt(1, 0), Pt(1, 1)) {
		t.Errorf("touching segments should intersect")
	}
	if !SegmentsIntersect(Pt(0, 0), Pt(2, 0), Pt(1, 0), Pt(3, 0)) {
		t.Errorf("overlapping collinear segments should intersect")
	}
}

func TestAngleAndTurns(t *testing.T) {
	if got := Angle(Pt(0, 0), Pt(1, 0), Pt(2, 0)); !almost(got, 0, 1e-12) {
		t.Errorf("straight angle = %v", got)
	}
	if got := Angle(Pt(0, 0), Pt(1, 0), Pt(1, 1)); !almost(got, math.Pi/2, 1e-12) {
		t.Errorf("right angle = %v", got)
	}
	if got := Angle(Pt(0, 0), Pt(1, 0), Pt(0, 0)); !almost(got, math.Pi, 1e-12) {
		t.Errorf("u-turn angle = %v", got)
	}
	if IsTurn(Pt(0, 0), Pt(1, 0), Pt(2, 0.1)) {
		t.Errorf("slight bend should not be a turn")
	}
	if !IsTurn(Pt(0, 0), Pt(1, 0), Pt(0.5, -1)) {
		t.Errorf("sharp bend should be a turn")
	}
	path := []Point{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1), Pt(0, 0.5)}
	// Each corner is exactly 90 degrees which does not exceed the
	// strict >90 criterion, so no turns are counted.
	if got := CountTurns(path); got != 0 {
		t.Errorf("CountTurns(square) = %d, want 0", got)
	}
	zig := []Point{Pt(0, 0), Pt(1, 0), Pt(0.1, 0.2), Pt(1.1, 0.4)}
	if got := CountTurns(zig); got != 2 {
		t.Errorf("CountTurns(zigzag) = %d, want 2", got)
	}
}

func TestCircleIntersectAreaExactCases(t *testing.T) {
	c := Circle{Pt(0, 0), 1}
	// Polygon fully containing the circle: area is the circle area.
	big := RectPoly(Pt(-5, -5), Pt(5, 5))
	if got := c.IntersectArea(big); !almost(got, math.Pi, 1e-9) {
		t.Errorf("contained circle area = %v, want pi", got)
	}
	// Polygon fully inside the circle: area is polygon area.
	small := RectPoly(Pt(-0.3, -0.3), Pt(0.3, 0.3))
	if got := c.IntersectArea(small); !almost(got, 0.36, 1e-9) {
		t.Errorf("contained polygon area = %v, want 0.36", got)
	}
	// Disjoint: zero.
	far := RectPoly(Pt(10, 10), Pt(11, 11))
	if got := c.IntersectArea(far); got != 0 {
		t.Errorf("disjoint area = %v, want 0", got)
	}
	// Half-plane cut: rectangle covering exactly the right half.
	half := RectPoly(Pt(0, -5), Pt(5, 5))
	if got := c.IntersectArea(half); !almost(got, math.Pi/2, 1e-9) {
		t.Errorf("half area = %v, want pi/2", got)
	}
	// Quarter cut.
	quarter := RectPoly(Pt(0, 0), Pt(5, 5))
	if got := c.IntersectArea(quarter); !almost(got, math.Pi/4, 1e-9) {
		t.Errorf("quarter area = %v, want pi/4", got)
	}
}

func TestCircleIntersectAreaKnownSegment(t *testing.T) {
	// Circle radius 2 at origin against the half-plane x >= 1 gives a
	// circular segment with area r^2*(theta - sin theta)/2 where
	// theta = 2*acos(d/r).
	c := Circle{Pt(0, 0), 2}
	rect := RectPoly(Pt(1, -10), Pt(10, 10))
	theta := 2 * math.Acos(1.0/2.0)
	want := 0.5 * 4 * (theta - math.Sin(theta))
	if got := c.IntersectArea(rect); !almost(got, want, 1e-9) {
		t.Errorf("segment area = %v, want %v", got, want)
	}
}

func TestCircleIntersectAreaMonteCarlo(t *testing.T) {
	// Cross-validate the analytic area against Monte Carlo estimates on
	// random circles vs a fixed concave polygon.
	poly := Polygon{Pt(0, 0), Pt(6, 0), Pt(6, 4), Pt(3, 2), Pt(0, 4)}
	rng := rand.New(rand.NewSource(42))
	const samples = 60000
	for trial := 0; trial < 8; trial++ {
		c := Circle{Pt(rng.Float64()*8-1, rng.Float64()*6-1), 0.5 + rng.Float64()*2.5}
		got := c.IntersectArea(poly)
		hits := 0
		for i := 0; i < samples; i++ {
			ang := rng.Float64() * 2 * math.Pi
			rad := c.R * math.Sqrt(rng.Float64())
			p := Pt(c.C.X+rad*math.Cos(ang), c.C.Y+rad*math.Sin(ang))
			if poly.Contains(p) {
				hits++
			}
		}
		mc := float64(hits) / samples * c.Area()
		tol := 0.05*c.Area() + 0.02
		if math.Abs(got-mc) > tol {
			t.Errorf("trial %d: analytic %v vs monte carlo %v (circle %+v)", trial, got, mc, c)
		}
	}
}

func TestCircleIntersectAreaProperties(t *testing.T) {
	poly := Polygon{Pt(0, 0), Pt(5, 0), Pt(5, 5), Pt(0, 5)}
	f := func(x, y, r float64) bool {
		c := Circle{Pt(math.Mod(math.Abs(x), 10)-2, math.Mod(math.Abs(y), 10)-2), math.Mod(math.Abs(r), 4) + 0.01}
		a := c.IntersectArea(poly)
		return a >= 0 && a <= c.Area()+1e-9 && a <= poly.Area()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCircleIntersectsPolygon(t *testing.T) {
	poly := RectPoly(Pt(0, 0), Pt(4, 4))
	cases := []struct {
		c    Circle
		want bool
	}{
		{Circle{Pt(2, 2), 0.5}, true},     // center inside
		{Circle{Pt(-1, 2), 1.5}, true},    // overlaps edge
		{Circle{Pt(-2, -2), 1}, false},    // disjoint
		{Circle{Pt(5, 2), 1}, true},       // touches edge
		{Circle{Pt(6, 6), 0.5}, false},    // near corner but out
		{Circle{Pt(-0.5, -0.5), 1}, true}, // corner overlap
	}
	for _, tc := range cases {
		if got := tc.c.IntersectsPolygon(poly); got != tc.want {
			t.Errorf("IntersectsPolygon(%+v) = %v, want %v", tc.c, got, tc.want)
		}
	}
}

func TestCircleContainsBounds(t *testing.T) {
	c := Circle{Pt(1, 1), 2}
	if !c.Contains(Pt(1, 3)) || c.Contains(Pt(1, 3.01)) {
		t.Errorf("Contains boundary wrong")
	}
	b := c.Bounds()
	if b.Min != Pt(-1, -1) || b.Max != Pt(3, 3) {
		t.Errorf("Bounds = %+v", b)
	}
}

func TestClosestOnSegment(t *testing.T) {
	got := ClosestOnSegment(Pt(0, 5), Pt(-2, 0), Pt(2, 0))
	if !almost(got.X, 0, 1e-12) || !almost(got.Y, 0, 1e-12) {
		t.Errorf("ClosestOnSegment = %v", got)
	}
	got = ClosestOnSegment(Pt(10, 0), Pt(-2, 0), Pt(2, 0))
	if got != Pt(2, 0) {
		t.Errorf("clamped end = %v", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Errorf("Clamp wrong")
	}
}
