package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a uniform numeric result grid: one row per method (or
// dataset), one column per metric or sweep point. Cells hold the raw
// numbers so tests can assert shapes; Fprint renders the same rows the
// paper's tables and figure series report.
type Table struct {
	ID       string
	Title    string
	RowNames []string
	ColNames []string
	Cells    [][]float64
	// Format is the printf verb for cells (default "%.4f").
	Format string
}

// NewTable allocates an empty table with the given axes.
func NewTable(id, title string, rows, cols []string) *Table {
	t := &Table{ID: id, Title: title, RowNames: rows, ColNames: cols}
	t.Cells = make([][]float64, len(rows))
	for i := range t.Cells {
		t.Cells[i] = make([]float64, len(cols))
	}
	return t
}

// Set stores a cell by index.
func (t *Table) Set(row, col int, v float64) { t.Cells[row][col] = v }

// Cell fetches a cell by row and column name; it panics on unknown
// names (programmer error in tests).
func (t *Table) Cell(row, col string) float64 {
	ri, ci := t.rowIndex(row), t.colIndex(col)
	if ri < 0 || ci < 0 {
		panic(fmt.Sprintf("experiments: no cell (%q, %q) in table %s", row, col, t.ID))
	}
	return t.Cells[ri][ci]
}

func (t *Table) rowIndex(name string) int {
	for i, n := range t.RowNames {
		if n == name {
			return i
		}
	}
	return -1
}

func (t *Table) colIndex(name string) int {
	for i, n := range t.ColNames {
		if n == name {
			return i
		}
	}
	return -1
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) error {
	format := t.Format
	if format == "" {
		format = "%.4f"
	}
	width := 12
	for _, c := range t.ColNames {
		if len(c)+2 > width {
			width = len(c) + 2
		}
	}
	rowW := 12
	for _, r := range t.RowNames {
		if len(r)+2 > rowW {
			rowW = len(r) + 2
		}
	}
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-*s", rowW, "")
	for _, c := range t.ColNames {
		fmt.Fprintf(w, "%*s", width, c)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", rowW+width*len(t.ColNames)))
	for i, r := range t.RowNames {
		fmt.Fprintf(w, "%-*s", rowW, r)
		for j := range t.ColNames {
			fmt.Fprintf(w, "%*s", width, fmt.Sprintf(format, t.Cells[i][j]))
		}
		fmt.Fprintln(w)
	}
	_, err := fmt.Fprintln(w)
	return err
}
