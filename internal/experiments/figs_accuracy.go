package experiments

import "strconv"

// TrainingFractionSweep reproduces Figs. 5 and 6: combined accuracy
// (CA) and perfect accuracy (PA) of the C2MN family as the training
// fraction grows from 40% to 80%. The two tables share one
// computation; Fig5 and Fig6 are slicing wrappers.
func TrainingFractionSweep(sc Scale) (ca, pa *Table, err error) {
	w, err := sc.mallWorld()
	if err != nil {
		return nil, nil, err
	}
	fracs := []float64{0.4, 0.5, 0.6, 0.7, 0.8}
	cols := make([]string, len(fracs))
	for i, f := range fracs {
		cols[i] = fracLabel(f)
	}
	names := methodNames(sc.c2mnFamily(w.cfg))
	ca = NewTable("fig5", "Combined accuracy vs training data fraction (cf. paper Fig. 5)", names, cols)
	pa = NewTable("fig6", "Perfect accuracy vs training data fraction (cf. paper Fig. 6)", names, cols)
	for fi, frac := range fracs {
		w.resplit(frac, sc.Seed+3)
		results, err := w.runMethods(sc.c2mnFamily(w.cfg))
		if err != nil {
			return nil, nil, err
		}
		for mi, r := range results {
			ca.Set(mi, fi, r.acc.CA)
			pa.Set(mi, fi, r.acc.PA)
		}
	}
	return ca, pa, nil
}

// Fig5 returns the CA-vs-training-fraction series.
func Fig5(sc Scale) (*Table, error) {
	ca, _, err := TrainingFractionSweep(sc)
	return ca, err
}

// Fig6 returns the PA-vs-training-fraction series.
func Fig6(sc Scale) (*Table, error) {
	_, pa, err := TrainingFractionSweep(sc)
	return pa, err
}

// MSweep reproduces Figs. 7 and 8: region and event accuracy of the
// C2MN family as the number of MCMC instances M varies (400–1000 in
// the paper; scaled values here keep the same 1:2.5 span). The sweep
// forces Algorithm 1 (the exact trainer has no M).
func MSweep(sc Scale) (ra, ea *Table, err error) {
	sc.Exact = false
	w, err := sc.mallWorld()
	if err != nil {
		return nil, nil, err
	}
	ms := []int{sc.M * 2 / 4, sc.M * 3 / 4, sc.M, sc.M * 5 / 4}
	cols := make([]string, len(ms))
	for i, m := range ms {
		cols[i] = strconv.Itoa(m)
	}
	names := methodNames(sc.c2mnFamily(w.cfg))
	ra = NewTable("fig7", "Region accuracy vs MCMC instances M (cf. paper Fig. 7)", names, cols)
	ea = NewTable("fig8", "Event accuracy vs MCMC instances M (cf. paper Fig. 8)", names, cols)
	for mi, m := range ms {
		cfg := w.cfg
		cfg.M = m
		results, err := w.runMethods(sc.c2mnFamily(cfg))
		if err != nil {
			return nil, nil, err
		}
		for ri, r := range results {
			ra.Set(ri, mi, r.acc.RA)
			ea.Set(ri, mi, r.acc.EA)
		}
	}
	return ra, ea, nil
}

// Fig7 returns the RA-vs-M series.
func Fig7(sc Scale) (*Table, error) {
	ra, _, err := MSweep(sc)
	return ra, err
}

// Fig8 returns the EA-vs-M series.
func Fig8(sc Scale) (*Table, error) {
	_, ea, err := MSweep(sc)
	return ea, err
}
