package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"tiny", "small", "paper", ""} {
		if _, ok := ScaleByName(name); !ok {
			t.Errorf("ScaleByName(%q) failed", name)
		}
	}
	if _, ok := ScaleByName("bogus"); ok {
		t.Errorf("bogus scale accepted")
	}
}

func TestTableBasics(t *testing.T) {
	tb := NewTable("x", "title", []string{"a", "b"}, []string{"c1", "c2"})
	tb.Set(0, 1, 0.5)
	if got := tb.Cell("a", "c2"); got != 0.5 {
		t.Errorf("Cell = %v", got)
	}
	var buf bytes.Buffer
	if err := tb.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"x", "title", "a", "b", "c1", "c2", "0.5000"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	defer func() {
		if recover() == nil {
			t.Errorf("unknown cell should panic")
		}
	}()
	tb.Cell("nope", "c1")
}

func TestTable3Shape(t *testing.T) {
	sc := Tiny()
	tb, err := Table3(sc)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Cell("mall", "sequences") < 4 {
		t.Errorf("too few sequences: %v", tb.Cell("mall", "sequences"))
	}
	if tb.Cell("mall", "records") <= tb.Cell("mall", "sequences") {
		t.Errorf("records should exceed sequences")
	}
	if tb.Cell("mall", "interval(s)") <= 0 {
		t.Errorf("interval must be positive")
	}
}

func TestTable4Shape(t *testing.T) {
	sc := Tiny()
	tb, err := Table4(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.RowNames) != 10 {
		t.Fatalf("Table IV should have 10 methods, got %v", tb.RowNames)
	}
	// Every accuracy is a valid probability.
	for i, row := range tb.RowNames {
		for j, col := range tb.ColNames {
			v := tb.Cells[i][j]
			if v < 0 || v > 1 {
				t.Errorf("%s/%s = %v out of [0,1]", row, col, v)
			}
		}
	}
	// Headline shape: C2MN tops CA among all methods (allowing slack
	// for family members, strict vs the separate baselines).
	c2mn := tb.Cell("C2MN", "CA")
	for _, m := range []string{"SMoT", "SAPDV"} {
		if c2mn <= tb.Cell(m, "CA")-0.02 {
			t.Errorf("C2MN CA %v should beat %s CA %v", c2mn, m, tb.Cell(m, "CA"))
		}
	}
	if c2mn < 0.6 {
		t.Errorf("C2MN CA %v implausibly low", c2mn)
	}
}

func TestTable5Shape(t *testing.T) {
	sc := Tiny()
	tb, err := Table5(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Record counts decrease as T grows (Table V).
	if !(tb.Cell("T5u7", "records") > tb.Cell("T10u7", "records") &&
		tb.Cell("T10u7", "records") > tb.Cell("T15u7", "records")) {
		t.Errorf("record counts not decreasing in T")
	}
	// Same T, different mu: counts are similar (within 20%).
	a, b := tb.Cell("T5u3", "records"), tb.Cell("T5u7", "records")
	if a/b > 1.2 || b/a > 1.2 {
		t.Errorf("same-T counts diverge: %v vs %v", a, b)
	}
}

func TestTrainingFractionSweepShape(t *testing.T) {
	sc := Tiny()
	ca, pa, err := TrainingFractionSweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ca.ColNames) != 5 || ca.ColNames[0] != "40%" || ca.ColNames[4] != "80%" {
		t.Errorf("fraction columns = %v", ca.ColNames)
	}
	for _, tb := range []*Table{ca, pa} {
		for i := range tb.RowNames {
			for j := range tb.ColNames {
				if v := tb.Cells[i][j]; v < 0 || v > 1 {
					t.Errorf("%s cell out of range: %v", tb.ID, v)
				}
			}
		}
	}
}

func TestQueryPrecisionShape(t *testing.T) {
	sc := Tiny()
	tkprq, tkfrpq, err := QueryPrecision(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range []*Table{tkprq, tkfrpq} {
		if len(tb.RowNames) != 10 {
			t.Fatalf("%s should have 10 methods", tb.ID)
		}
		for i := range tb.RowNames {
			for j := range tb.ColNames {
				if v := tb.Cells[i][j]; v < 0 || v > 1 {
					t.Errorf("%s precision out of range: %v", tb.ID, v)
				}
			}
		}
	}
}

func TestRunDispatch(t *testing.T) {
	sc := Tiny()
	tables, err := Run("table5", sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].ID != "table5" {
		t.Errorf("Run(table5) = %v", tables)
	}
	if _, err := Run("nope", sc); err == nil {
		t.Errorf("unknown id should fail")
	}
	ids := IDs()
	if len(ids) < 19 {
		t.Errorf("IDs incomplete: %v", ids)
	}
}

func TestAblationCandidateRadius(t *testing.T) {
	sc := Tiny()
	tb, err := AblationCandidateRadius(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Candidate sets grow with the radius.
	first := tb.Cells[0][3]
	last := tb.Cells[len(tb.RowNames)-1][3]
	if !(last > first) {
		t.Errorf("candidate count should grow with v: %v vs %v", first, last)
	}
}
