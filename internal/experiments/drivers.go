package experiments

import (
	"fmt"

	"c2mn/internal/seq"
	"c2mn/internal/sim"
)

// Table3 reproduces Table III: statistics of the (simulated) mall
// dataset. Columns: sequences, records, avg records/sequence, avg
// duration, avg sampling interval.
func Table3(sc Scale) (*Table, error) {
	w, err := sc.mallWorld()
	if err != nil {
		return nil, err
	}
	ds := seq.Dataset{Sequences: w.data}
	st := ds.Stats()
	t := NewTable("table3", "Statistics of the mall dataset (cf. paper Table III)",
		[]string{"mall"},
		[]string{"sequences", "records", "recs/seq", "duration(s)", "interval(s)"})
	t.Format = "%.1f"
	t.Set(0, 0, float64(st.Sequences))
	t.Set(0, 1, float64(st.Records))
	t.Set(0, 2, st.AvgRecordsPer)
	t.Set(0, 3, st.AvgDurationSec)
	t.Set(0, 4, st.AvgIntervalSec)
	return t, nil
}

// Table4 reproduces Table IV: RA/EA/CA/PA for the ten methods on the
// mall workload with a 70/30 split.
func Table4(sc Scale) (*Table, error) {
	w, err := sc.mallWorld()
	if err != nil {
		return nil, err
	}
	methods := sc.fullSet(w.cfg)
	results, err := w.runMethods(methods)
	if err != nil {
		return nil, err
	}
	t := NewTable("table4", "Labeling accuracy on the mall workload (cf. paper Table IV)",
		methodNames(methods), []string{"RA", "EA", "CA", "PA"})
	for i, r := range results {
		t.Set(i, 0, r.acc.RA)
		t.Set(i, 1, r.acc.EA)
		t.Set(i, 2, r.acc.CA)
		t.Set(i, 3, r.acc.PA)
	}
	return t, nil
}

// Table5 reproduces Table V: record counts of the synthetic datasets
// generated for each (T, μ) setting.
func Table5(sc Scale) (*Table, error) {
	space, err := sim.GenerateBuilding(sc.SynthSpec, sc.Seed)
	if err != nil {
		return nil, err
	}
	settings := []struct {
		name  string
		t, mu float64
	}{
		{"T5u3", 5, 3},
		{"T5u5", 5, 5},
		{"T5u7", 5, 7},
		{"T10u7", 10, 7},
		{"T15u7", 15, 7},
	}
	rows := make([]string, len(settings))
	for i, s := range settings {
		rows[i] = s.name
	}
	t := NewTable("table5", "Synthetic mobility datasets (cf. paper Table V)",
		rows, []string{"T(s)", "mu(m)", "records"})
	t.Format = "%.0f"
	for i, s := range settings {
		spec := sim.DefaultMobility(sc.SynthObjects, sc.SynthDuration)
		spec.T = s.t
		spec.Mu = s.mu
		ds, err := sim.Generate(space, spec, sc.Seed+2)
		if err != nil {
			return nil, err
		}
		t.Set(i, 0, s.t)
		t.Set(i, 1, s.mu)
		t.Set(i, 2, float64(ds.NumRecords()))
	}
	return t, nil
}

// fracLabel formats a training fraction as the paper's x-axis labels.
func fracLabel(f float64) string { return fmt.Sprintf("%.0f%%", f*100) }
