package experiments

import (
	"strconv"

	"c2mn/internal/baseline"
	"c2mn/internal/core"
)

// trainingTime measures one Algorithm 1 run in seconds. When
// fullIters is true the convergence threshold is relaxed so the run
// executes exactly max_iter steps (Figs. 9–10 plot cost against
// max_iter); otherwise the paper's δ applies, so convergence speed
// differences show (Fig. 11 contrasts the first-configured variable).
func trainingTime(w *world, cfg core.Config, decoupled bool, firstVar core.Var, fullIters bool) (float64, error) {
	if fullIters {
		cfg.Delta = 1e-12
	}
	cfg.Decoupled = decoupled
	cfg.FirstVar = firstVar
	_, stats, err := core.Train(w.space, w.train, cfg)
	if err != nil {
		return 0, err
	}
	return stats.Elapsed.Seconds(), nil
}

// MaxIterSweep reproduces Fig. 9: training time of the C2MN family as
// max_iter grows. Algorithm 1 is always used (the exact trainer has no
// per-iteration sampling cost to measure). CMN's time is its single
// decoupled run, matching the paper's "longest of the two parts"
// convention for comparability.
func MaxIterSweep(sc Scale) (*Table, error) {
	sc.Exact = false
	w, err := sc.mallWorld()
	if err != nil {
		return nil, err
	}
	iters := []int{sc.MaxIter / 2, sc.MaxIter, sc.MaxIter * 5 / 4, sc.MaxIter * 3 / 2}
	cols := make([]string, len(iters))
	for i, it := range iters {
		cols[i] = strconv.Itoa(it)
	}
	family := sc.c2mnFamily(w.cfg)
	t := NewTable("fig9", "Training time (s) vs max_iter (cf. paper Fig. 9)", methodNames(family), cols)
	t.Format = "%.2f"
	for ii, maxIter := range iters {
		for mi, m := range family {
			cm := m.(*baseline.C2MN)
			cfg := cm.Cfg
			cfg.MaxIter = maxIter
			secs, err := trainingTime(w, cfg, cfg.Decoupled, cfg.FirstVar, true)
			if err != nil {
				return nil, err
			}
			t.Set(mi, ii, secs)
		}
	}
	return t, nil
}

// Fig9 is MaxIterSweep.
func Fig9(sc Scale) (*Table, error) { return MaxIterSweep(sc) }

// TrainingTimeVsFraction reproduces Fig. 10: training time of the C2MN
// family as the training fraction grows from 40% to 80%.
func TrainingTimeVsFraction(sc Scale) (*Table, error) {
	sc.Exact = false
	w, err := sc.mallWorld()
	if err != nil {
		return nil, err
	}
	fracs := []float64{0.4, 0.5, 0.6, 0.7, 0.8}
	cols := make([]string, len(fracs))
	for i, f := range fracs {
		cols[i] = fracLabel(f)
	}
	family := sc.c2mnFamily(w.cfg)
	t := NewTable("fig10", "Training time (s) vs training data fraction (cf. paper Fig. 10)", methodNames(family), cols)
	t.Format = "%.2f"
	for fi, frac := range fracs {
		w.resplit(frac, sc.Seed+3)
		for mi, m := range family {
			cm := m.(*baseline.C2MN)
			secs, err := trainingTime(w, cm.Cfg, cm.Cfg.Decoupled, cm.Cfg.FirstVar, true)
			if err != nil {
				return nil, err
			}
			t.Set(mi, fi, secs)
		}
	}
	return t, nil
}

// Fig10 is TrainingTimeVsFraction.
func Fig10(sc Scale) (*Table, error) { return TrainingTimeVsFraction(sc) }

// FirstConfiguredVariable reproduces Fig. 11: training time of C2MN
// (E configured first) against C2MN@R (R configured first) across
// max_iter settings.
func FirstConfiguredVariable(sc Scale) (*Table, error) {
	sc.Exact = false
	w, err := sc.mallWorld()
	if err != nil {
		return nil, err
	}
	iters := []int{sc.MaxIter / 2, sc.MaxIter * 3 / 4, sc.MaxIter, sc.MaxIter * 5 / 4}
	cols := make([]string, len(iters))
	for i, it := range iters {
		cols[i] = strconv.Itoa(it)
	}
	t := NewTable("fig11", "Training time (s) by first-configured variable (cf. paper Fig. 11)",
		[]string{"C2MN", "C2MN@R"}, cols)
	t.Format = "%.2f"
	for ii, maxIter := range iters {
		cfg := w.cfg
		cfg.MaxIter = maxIter
		secsE, err := trainingTime(w, cfg, false, core.VarE, false)
		if err != nil {
			return nil, err
		}
		secsR, err := trainingTime(w, cfg, false, core.VarR, false)
		if err != nil {
			return nil, err
		}
		t.Set(0, ii, secsE)
		t.Set(1, ii, secsR)
	}
	return t, nil
}

// Fig11 is FirstConfiguredVariable.
func Fig11(sc Scale) (*Table, error) { return FirstConfiguredVariable(sc) }
