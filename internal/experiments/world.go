package experiments

import (
	"fmt"

	"c2mn/internal/baseline"
	"c2mn/internal/core"
	"c2mn/internal/eval"
	"c2mn/internal/features"
	"c2mn/internal/indoor"
	"c2mn/internal/seq"
	"c2mn/internal/sim"
)

// world is one experiment environment: a venue plus a labeled
// train/test split.
type world struct {
	space *indoor.Space
	train []seq.LabeledSequence
	test  []seq.LabeledSequence
	data  []seq.LabeledSequence
	// cfg is the base C2MN config tuned to this workload.
	cfg core.Config
}

// mallWorld builds the simulated stand-in for the paper's real mall
// dataset (§V-B1) with a 70/30 split.
func (sc Scale) mallWorld() (*world, error) {
	space, err := sim.GenerateBuilding(sc.MallSpec, sc.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: mall building: %w", err)
	}
	spec := sim.MallMobility(sc.MallObjects, sc.MallDuration)
	ds, err := sim.Generate(space, spec, sc.Seed+1)
	if err != nil {
		return nil, fmt.Errorf("experiments: mall mobility: %w", err)
	}
	return sc.newWorld(space, ds.Sequences, sc.mallParams(), sc.Sigma2Mall, 0.7)
}

// synthWorld builds a ten-floor synthetic workload for one (T, μ)
// setting (§V-C, Table V).
func (sc Scale) synthWorld(t, mu float64) (*world, error) {
	space, err := sim.GenerateBuilding(sc.SynthSpec, sc.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: synth building: %w", err)
	}
	spec := sim.DefaultMobility(sc.SynthObjects, sc.SynthDuration)
	spec.T = t
	spec.Mu = mu
	ds, err := sim.Generate(space, spec, sc.Seed+2)
	if err != nil {
		return nil, fmt.Errorf("experiments: synth mobility: %w", err)
	}
	return sc.newWorld(space, ds.Sequences, sc.synthParams(), sc.Sigma2Synth, 0.7)
}

func (sc Scale) newWorld(space *indoor.Space, data []seq.LabeledSequence, params features.Params, sigma2, frac float64) (*world, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("experiments: workload produced only %d sequences", len(data))
	}
	params.Cluster = baseline.TuneClusterParams(data)
	train, test := eval.Split(data, frac, sc.Seed+3)
	return &world{
		space: space,
		train: train,
		test:  test,
		data:  data,
		cfg:   sc.coreConfig(params, sigma2),
	}, nil
}

// resplit changes the train/test fraction in place (Fig. 5/6/10).
func (w *world) resplit(frac float64, seed int64) {
	w.train, w.test = eval.Split(w.data, frac, seed)
}

// Method set construction. Names follow the paper's tables.

func (sc Scale) newC2MN(cfg core.Config) *baseline.C2MN {
	m := baseline.NewC2MN(cfg)
	m.Exact = sc.Exact
	return m
}

func (sc Scale) newVariant(label string, cfg core.Config, remove features.CliqueSet) *baseline.C2MN {
	m := baseline.NewC2MNVariant(label, cfg, remove)
	m.Exact = sc.Exact
	return m
}

func (sc Scale) newCMN(cfg core.Config) *baseline.C2MN {
	m := baseline.NewCMN(cfg)
	m.Exact = sc.Exact
	return m
}

// c2mnFamily returns the six jointly-trained models of Figs. 5–10:
// CMN, the four structural ablations, and full C2MN.
func (sc Scale) c2mnFamily(cfg core.Config) []baseline.Method {
	return []baseline.Method{
		sc.newCMN(cfg),
		sc.newVariant("C2MN/Tran", cfg, features.Transition),
		sc.newVariant("C2MN/Syn", cfg, features.Synchronization),
		sc.newVariant("C2MN/ES", cfg, features.SegmentationES),
		sc.newVariant("C2MN/SS", cfg, features.SegmentationSS),
		sc.newC2MN(cfg),
	}
}

// separateBaselines returns the four non-CMN methods of §V-A, tuned to
// the workload's clustering parameters. The HMM observation grid
// tracks the positioning noise amplitude (≈ the tuned spatial epsilon)
// so frequency counting does not starve on noisy workloads.
func (sc Scale) separateBaselines(cfg core.Config) []baseline.Method {
	hmmdc := baseline.NewHMMDC()
	hmmdc.Cluster = cfg.Params.Cluster
	if eps := cfg.Params.Cluster.EpsS; eps > hmmdc.CellSize {
		hmmdc.CellSize = eps
	}
	sapda := baseline.NewSAPDA()
	sapda.Cluster = cfg.Params.Cluster
	return []baseline.Method{
		baseline.NewSMoT(),
		hmmdc,
		baseline.NewSAPDV(),
		sapda,
	}
}

// fullSet returns the ten methods of Table IV in the paper's order.
func (sc Scale) fullSet(cfg core.Config) []baseline.Method {
	out := sc.separateBaselines(cfg)
	out = append(out, sc.c2mnFamily(cfg)...)
	return out
}

// sixSet returns the six methods compared in the synthetic study
// (Figs. 14–19).
func (sc Scale) sixSet(cfg core.Config) []baseline.Method {
	out := sc.separateBaselines(cfg)
	out = append(out, sc.newCMN(cfg), sc.newC2MN(cfg))
	return out
}

// methodEval trains one method on the world and measures its labeling
// accuracy on the test set; annotated predicts are returned for query
// studies.
type methodEval struct {
	name string
	acc  eval.Accuracy
	pred []seq.Labels
}

// runMethod trains and evaluates a single method.
func (w *world) runMethod(m baseline.Method) (methodEval, error) {
	if err := m.Train(w.space, w.train); err != nil {
		return methodEval{}, fmt.Errorf("experiments: train %s: %w", m.Name(), err)
	}
	var counter eval.Counter
	res := methodEval{name: m.Name()}
	for i := range w.test {
		labels, err := m.Annotate(&w.test[i].P)
		if err != nil {
			return methodEval{}, fmt.Errorf("experiments: annotate %s: %w", m.Name(), err)
		}
		if err := counter.Add(w.test[i].Labels, labels); err != nil {
			return methodEval{}, err
		}
		res.pred = append(res.pred, labels)
	}
	res.acc = counter.Result(eval.DefaultLambda)
	return res, nil
}

// runMethods evaluates a whole method set.
func (w *world) runMethods(methods []baseline.Method) ([]methodEval, error) {
	out := make([]methodEval, 0, len(methods))
	for _, m := range methods {
		r, err := w.runMethod(m)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// truthMS merges the test set's ground-truth labels into ms-sequences.
func (w *world) truthMS() []seq.MSSequence {
	out := make([]seq.MSSequence, 0, len(w.test))
	for i := range w.test {
		out = append(out, seq.Merge(&w.test[i].P, w.test[i].Labels))
	}
	return out
}

// predMS merges one method's predicted labels into ms-sequences.
func (w *world) predMS(pred []seq.Labels) []seq.MSSequence {
	out := make([]seq.MSSequence, 0, len(w.test))
	for i := range w.test {
		out = append(out, seq.Merge(&w.test[i].P, pred[i]))
	}
	return out
}

func methodNames(methods []baseline.Method) []string {
	out := make([]string, len(methods))
	for i, m := range methods {
		out[i] = m.Name()
	}
	return out
}
