package experiments

import "testing"

func TestAblationOptionalFeatures(t *testing.T) {
	sc := microScale()
	tb, err := AblationOptionalFeatures(sc)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"base", "region-prior", "time-decay", "both"}
	for i, r := range want {
		if tb.RowNames[i] != r {
			t.Fatalf("rows = %v", tb.RowNames)
		}
	}
	for i := range tb.RowNames {
		for j := range tb.ColNames {
			if v := tb.Cells[i][j]; v <= 0 || v > 1 {
				t.Errorf("%s/%s = %v", tb.RowNames[i], tb.ColNames[j], v)
			}
		}
	}
}

func TestCrossValidation(t *testing.T) {
	sc := microScale()
	tb, err := CrossValidation(sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tb.RowNames[len(tb.RowNames)-1] != "mean" {
		t.Fatalf("rows = %v", tb.RowNames)
	}
	// The mean row is the average of the fold rows.
	for j := range tb.ColNames {
		sum := 0.0
		for i := 0; i < len(tb.RowNames)-1; i++ {
			sum += tb.Cells[i][j]
		}
		mean := sum / float64(len(tb.RowNames)-1)
		got := tb.Cells[len(tb.RowNames)-1][j]
		if diff := mean - got; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("mean %s = %v, want %v", tb.ColNames[j], got, mean)
		}
	}
	// Dispatch path.
	tables, err := Run("cv", sc)
	if err != nil || len(tables) != 1 {
		t.Fatalf("Run(cv) = %v, %v", tables, err)
	}
}

func TestAblationGenericCRF(t *testing.T) {
	sc := microScale()
	tb, err := AblationGenericCRF(sc)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"LCCRF", "CMN", "C2MN"}
	for i, r := range want {
		if tb.RowNames[i] != r {
			t.Fatalf("rows = %v", tb.RowNames)
		}
	}
	for i := range tb.RowNames {
		if v := tb.Cells[i][0]; v <= 0 || v > 1 {
			t.Errorf("%s RA = %v", tb.RowNames[i], v)
		}
	}
}
