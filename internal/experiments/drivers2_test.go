package experiments

import (
	"testing"
)

// microScale shrinks Tiny further for the training-time sweeps, which
// must run the MCMC trainer many times.
func microScale() Scale {
	sc := Tiny()
	sc.MallObjects = 6
	sc.MallDuration = 900
	sc.SynthObjects = 6
	sc.SynthDuration = 700
	sc.M = 15
	sc.MaxIter = 8
	sc.NumQueries = 2
	sc.QTs = []float64{300, 600, 900}
	return sc
}

func TestMSweepShape(t *testing.T) {
	sc := microScale()
	ra, ea, err := MSweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.ColNames) != 4 || len(ea.ColNames) != 4 {
		t.Fatalf("M columns = %v", ra.ColNames)
	}
	for _, tb := range []*Table{ra, ea} {
		if len(tb.RowNames) != 6 {
			t.Fatalf("%s rows = %v", tb.ID, tb.RowNames)
		}
		for i := range tb.RowNames {
			for j := range tb.ColNames {
				if v := tb.Cells[i][j]; v < 0 || v > 1 {
					t.Errorf("%s cell %d,%d = %v", tb.ID, i, j, v)
				}
			}
		}
	}
}

func TestMaxIterSweepShape(t *testing.T) {
	sc := microScale()
	tb, err := MaxIterSweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.RowNames) != 6 {
		t.Fatalf("rows = %v", tb.RowNames)
	}
	for i := range tb.RowNames {
		for j := range tb.ColNames {
			if tb.Cells[i][j] <= 0 {
				t.Errorf("training time cell %d,%d = %v must be positive", i, j, tb.Cells[i][j])
			}
		}
		// More iterations should not be dramatically cheaper.
		first, last := tb.Cells[i][0], tb.Cells[i][len(tb.ColNames)-1]
		if last < first*0.3 {
			t.Errorf("%s: time shrank from %v to %v with more iterations", tb.RowNames[i], first, last)
		}
	}
}

func TestTrainingTimeVsFractionShape(t *testing.T) {
	sc := microScale()
	tb, err := TrainingTimeVsFraction(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.ColNames) != 5 {
		t.Fatalf("cols = %v", tb.ColNames)
	}
	for i := range tb.RowNames {
		for j := range tb.ColNames {
			if tb.Cells[i][j] <= 0 {
				t.Errorf("cell %d,%d = %v", i, j, tb.Cells[i][j])
			}
		}
	}
}

func TestFirstConfiguredVariableShape(t *testing.T) {
	sc := microScale()
	tb, err := FirstConfiguredVariable(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.RowNames) != 2 || tb.RowNames[0] != "C2MN" || tb.RowNames[1] != "C2MN@R" {
		t.Fatalf("rows = %v", tb.RowNames)
	}
	for i := range tb.RowNames {
		for j := range tb.ColNames {
			if tb.Cells[i][j] <= 0 {
				t.Errorf("cell %d,%d = %v", i, j, tb.Cells[i][j])
			}
		}
	}
}

func TestTSweepShape(t *testing.T) {
	sc := microScale()
	pa, tkprq, tkfrpq, err := TSweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	if pa.ID != "fig14" || tkprq.ID != "fig15" || tkfrpq.ID != "fig16" {
		t.Fatalf("ids = %s %s %s", pa.ID, tkprq.ID, tkfrpq.ID)
	}
	wantCols := []string{"T=5s", "T=10s", "T=15s"}
	for i, c := range pa.ColNames {
		if c != wantCols[i] {
			t.Fatalf("cols = %v", pa.ColNames)
		}
	}
	for _, tb := range []*Table{pa, tkprq, tkfrpq} {
		if len(tb.RowNames) != 6 {
			t.Fatalf("%s rows = %v", tb.ID, tb.RowNames)
		}
		for i := range tb.RowNames {
			for j := range tb.ColNames {
				if v := tb.Cells[i][j]; v < 0 || v > 1 {
					t.Errorf("%s cell out of range: %v", tb.ID, v)
				}
			}
		}
	}
}

func TestMuSweepShape(t *testing.T) {
	sc := microScale()
	pa, tkprq, tkfrpq, err := MuSweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	if pa.ID != "fig17" || tkprq.ID != "fig18" || tkfrpq.ID != "fig19" {
		t.Fatalf("ids = %s %s %s", pa.ID, tkprq.ID, tkfrpq.ID)
	}
	if pa.ColNames[0] != "mu=3m" || pa.ColNames[2] != "mu=7m" {
		t.Fatalf("cols = %v", pa.ColNames)
	}
}

func TestRunDispatchAllIDs(t *testing.T) {
	sc := microScale()
	for _, id := range []string{"fig9", "fig11"} {
		tables, err := Run(id, sc)
		if err != nil {
			t.Fatalf("Run(%s): %v", id, err)
		}
		if len(tables) == 0 {
			t.Fatalf("Run(%s) returned no tables", id)
		}
	}
	// Combined dispatches return multiple tables.
	tables, err := Run("fig14", sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("Run(fig14) = %d tables", len(tables))
	}
}

func TestAblationExactVsMCMC(t *testing.T) {
	sc := microScale()
	tb, err := AblationExactVsMCMC(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []string{"Algorithm1", "ExactPL"} {
		if v := tb.Cell(row, "RA"); v <= 0 || v > 1 {
			t.Errorf("%s RA = %v", row, v)
		}
		if v := tb.Cell(row, "time(s)"); v <= 0 {
			t.Errorf("%s time = %v", row, v)
		}
	}
}

func TestFigSlicers(t *testing.T) {
	sc := microScale()
	for _, f := range []func(Scale) (*Table, error){Fig9, Fig11} {
		tb, err := f(sc)
		if err != nil {
			t.Fatal(err)
		}
		if tb == nil || len(tb.RowNames) == 0 {
			t.Fatalf("empty table")
		}
	}
}
