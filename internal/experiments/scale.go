// Package experiments reproduces the paper's evaluation (§V): one
// driver per table and figure, each returning a Table whose rows and
// columns mirror what the paper reports. Scales are configurable so
// the same drivers power fast unit tests, `go test -bench`, and the
// larger runs of cmd/msexp.
//
// Absolute numbers differ from the paper (the substrate here is a
// simulator, not a mall Wi-Fi deployment and a 10-core Xeon); the
// experiment *shapes* — who wins, by roughly what factor, and where
// curves cross — are the reproduction target. See EXPERIMENTS.md.
package experiments

import (
	"c2mn/internal/core"
	"c2mn/internal/features"
	"c2mn/internal/sim"
)

// Scale bundles every knob that trades fidelity for runtime.
type Scale struct {
	// Name tags the scale in output.
	Name string

	// MallSpec and SynthSpec are the two venues (§V-B1, §V-C).
	MallSpec, SynthSpec sim.BuildingSpec
	// MallObjects/MallDuration parameterise the mall workload.
	MallObjects  int
	MallDuration float64
	// SynthObjects/SynthDuration parameterise the synthetic workload.
	SynthObjects  int
	SynthDuration float64

	// M is the number of MCMC instances per step (paper: 800 real,
	// 500 synthetic).
	M int
	// MaxIter bounds alternate learning (paper: 90 real, 50 synthetic).
	MaxIter int
	// VMall and VSynth are the fsm uncertainty radii (paper: 15 m and
	// 10 m).
	VMall, VSynth float64
	// Sigma2Mall and Sigma2Synth are the prior variances (paper: 0.5
	// and 0.2).
	Sigma2Mall, Sigma2Synth float64
	// Exact switches the C2MN family to the exact pseudo-likelihood
	// trainer (fast unit tests); the paper's Algorithm 1 is used when
	// false.
	Exact bool

	// QueryK, QFrac, NumQueries and QTs parameterise the §V-B4 query
	// study: top-k size, fraction of regions in Q, number of random
	// queries averaged, and the query window lengths in seconds.
	QueryK     int
	QFrac      float64
	NumQueries int
	QTs        []float64
	// PairQFrac sizes the TkFRPQ query sets; the paper uses a much
	// smaller Q for pair queries on the synthetic venue (|Q| = 25 of
	// 423 regions) than for TkPRQ. Zero falls back to QFrac.
	PairQFrac float64

	// Seed drives all pseudo-randomness.
	Seed int64
}

// Tiny is the unit-test scale: a two-floor venue, exact training,
// seconds of runtime.
func Tiny() Scale {
	return Scale{
		Name:          "tiny",
		MallSpec:      sim.SmallBuilding(),
		SynthSpec:     sim.SmallBuilding(),
		MallObjects:   12,
		MallDuration:  1500,
		SynthObjects:  10,
		SynthDuration: 1200,
		M:             30,
		MaxIter:       20,
		VMall:         6,
		VSynth:        6,
		Sigma2Mall:    0.5,
		Sigma2Synth:   0.2,
		Exact:         true,
		QueryK:        4,
		QFrac:         0.6,
		NumQueries:    4,
		QTs:           []float64{500, 1000, 1500},
		PairQFrac:     0.4,
		Seed:          1,
	}
}

// Small is the benchmark scale: the paper's venue profiles with
// container-sized workloads and Algorithm 1 training.
func Small() Scale {
	return Scale{
		Name:          "small",
		MallSpec:      sim.MallBuilding(),
		SynthSpec:     sim.SynthBuilding(),
		MallObjects:   56,
		MallDuration:  10800,
		SynthObjects:  44,
		SynthDuration: 7200,
		M:             60,
		MaxIter:       40,
		// The paper tunes v = 15 m for its mall (shops of hundreds of
		// m²) and v = 10 m for the synthetic venue. Our scaled venues
		// have smaller rooms, so the analogous tuning — a disk that
		// covers the true region without fully containing several
		// neighbours — lands at 10 m and 8 m.
		VMall:       10,
		VSynth:      8,
		Sigma2Mall:  0.5,
		Sigma2Synth: 0.2,
		Exact:       false,
		QueryK:      20,
		QFrac:       0.5,
		NumQueries:  10,
		QTs:         []float64{3600, 7200, 10800},
		// |Q| ≈ 0.08·423 ≈ 34 pairs-query regions on the synthetic
		// venue, mirroring the paper's |Q| = 25.
		PairQFrac: 0.08,
		Seed:      1,
	}
}

// Paper pushes toward the paper's own parameters (M = 800,
// max_iter = 90); expect hours of runtime on laptop hardware.
func Paper() Scale {
	s := Small()
	s.Name = "paper"
	s.MallObjects = 200
	s.SynthObjects = 150
	s.SynthDuration = 14400
	s.M = 800
	s.MaxIter = 90
	s.QueryK = 60
	s.NumQueries = 10
	return s
}

// ScaleByName resolves "tiny", "small" or "paper".
func ScaleByName(name string) (Scale, bool) {
	switch name {
	case "tiny":
		return Tiny(), true
	case "small", "":
		return Small(), true
	case "paper":
		return Paper(), true
	default:
		return Scale{}, false
	}
}

// mallParams returns the feature parameters for the mall workload.
func (sc Scale) mallParams() features.Params {
	p := features.DefaultParams()
	p.V = sc.VMall
	return p
}

// synthParams returns the feature parameters for the synthetic
// workload.
func (sc Scale) synthParams() features.Params {
	p := features.DefaultParams()
	p.V = sc.VSynth
	return p
}

// coreConfig assembles the training configuration for one workload.
func (sc Scale) coreConfig(params features.Params, sigma2 float64) core.Config {
	return core.Config{
		Params:  params,
		M:       sc.M,
		MaxIter: sc.MaxIter,
		Sigma2:  sigma2,
		Seed:    sc.Seed,
	}
}
