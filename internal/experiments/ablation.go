package experiments

import (
	"strconv"
	"time"

	"c2mn/internal/baseline"
	"c2mn/internal/core"
	"c2mn/internal/eval"
	"c2mn/internal/features"
	"c2mn/internal/seq"
)

// AblationExactVsMCMC compares the paper's Algorithm 1 (MCMC
// pseudo-likelihood estimation) against this repository's exact
// pseudo-likelihood trainer on the same mall workload: accuracy and
// training time. DESIGN.md §6 calls this design choice out.
func AblationExactVsMCMC(sc Scale) (*Table, error) {
	w, err := sc.mallWorld()
	if err != nil {
		return nil, err
	}
	t := NewTable("ablation-trainer", "Exact pseudo-likelihood vs Algorithm 1 (MCMC)",
		[]string{"Algorithm1", "ExactPL"}, []string{"RA", "EA", "PA", "time(s)"})

	run := func(row int, exact bool) error {
		var m *core.Model
		var elapsed time.Duration
		if exact {
			model, stats, err := core.TrainExact(w.space, w.train, w.cfg)
			if err != nil {
				return err
			}
			m, elapsed = model, stats.Elapsed
		} else {
			model, stats, err := core.Train(w.space, w.train, w.cfg)
			if err != nil {
				return err
			}
			m, elapsed = model, stats.Elapsed
		}
		ex, err := features.NewExtractor(w.space, m.Params)
		if err != nil {
			return err
		}
		var counter eval.Counter
		for i := range w.test {
			ctx := ex.NewSeqContext(&w.test[i].P, nil)
			pred := m.Annotate(ctx, core.InferOptions{})
			if err := counter.Add(w.test[i].Labels, pred); err != nil {
				return err
			}
		}
		acc := counter.Result(eval.DefaultLambda)
		t.Set(row, 0, acc.RA)
		t.Set(row, 1, acc.EA)
		t.Set(row, 2, acc.PA)
		t.Set(row, 3, elapsed.Seconds())
		return nil
	}
	if err := run(0, false); err != nil {
		return nil, err
	}
	if err := run(1, true); err != nil {
		return nil, err
	}
	return t, nil
}

// AblationCandidateRadius sweeps the fsm uncertainty radius v,
// measuring accuracy and the average candidate-set size it induces.
// The paper tunes v = 15 m for the mall data (§V-B1); this quantifies
// the sensitivity.
func AblationCandidateRadius(sc Scale) (*Table, error) {
	w, err := sc.mallWorld()
	if err != nil {
		return nil, err
	}
	radii := []float64{sc.VMall / 2, sc.VMall * 3 / 4, sc.VMall, sc.VMall * 3 / 2}
	rows := make([]string, len(radii))
	for i, v := range radii {
		rows[i] = "v=" + trimFloat(v)
	}
	t := NewTable("ablation-radius", "Candidate radius v sensitivity",
		rows, []string{"RA", "EA", "PA", "avg-cands"})
	for ri, v := range radii {
		cfg := w.cfg
		cfg.Params.V = v
		m, _, err := core.TrainExact(w.space, w.train, cfg)
		if err != nil {
			return nil, err
		}
		ex, err := features.NewExtractor(w.space, m.Params)
		if err != nil {
			return nil, err
		}
		var counter eval.Counter
		var cands, records int
		for i := range w.test {
			ctx := ex.NewSeqContext(&w.test[i].P, nil)
			for _, cs := range ctx.Candidates {
				cands += len(cs)
				records++
			}
			pred := m.Annotate(ctx, core.InferOptions{})
			if err := counter.Add(w.test[i].Labels, pred); err != nil {
				return nil, err
			}
		}
		acc := counter.Result(eval.DefaultLambda)
		t.Set(ri, 0, acc.RA)
		t.Set(ri, 1, acc.EA)
		t.Set(ri, 2, acc.PA)
		t.Set(ri, 3, float64(cands)/float64(records))
	}
	return t, nil
}

// AblationOptionalFeatures measures the paper's two optional feature
// designs against the base model: the normalized historical region
// frequency multiplier on fsm (§III-B (1)) and the time-decay
// multipliers on fst/fsc (Eqs. 4–5 extensions).
func AblationOptionalFeatures(sc Scale) (*Table, error) {
	w, err := sc.mallWorld()
	if err != nil {
		return nil, err
	}
	t := NewTable("ablation-optional", "Optional feature designs (fsm prior, fst/fsc time decay)",
		[]string{"base", "region-prior", "time-decay", "both"}, []string{"RA", "EA", "PA"})
	run := func(row int, prior bool, decay float64) error {
		cfg := w.cfg
		cfg.UseRegionPrior = prior
		cfg.Params.TimeDecayST = decay
		cfg.Params.TimeDecaySC = decay
		m, _, err := core.TrainExact(w.space, w.train, cfg)
		if err != nil {
			return err
		}
		ex, err := features.NewExtractor(w.space, m.Params)
		if err != nil {
			return err
		}
		var counter eval.Counter
		for i := range w.test {
			ctx := ex.NewSeqContext(&w.test[i].P, nil)
			pred := m.Annotate(ctx, core.InferOptions{})
			if err := counter.Add(w.test[i].Labels, pred); err != nil {
				return err
			}
		}
		acc := counter.Result(eval.DefaultLambda)
		t.Set(row, 0, acc.RA)
		t.Set(row, 1, acc.EA)
		t.Set(row, 2, acc.PA)
		return nil
	}
	const decay = 0.002
	if err := run(0, false, 0); err != nil {
		return nil, err
	}
	if err := run(1, true, 0); err != nil {
		return nil, err
	}
	if err := run(2, false, decay); err != nil {
		return nil, err
	}
	if err := run(3, true, decay); err != nil {
		return nil, err
	}
	return t, nil
}

// CrossValidation reproduces the paper's 10-fold cross-validation
// protocol (§V-B1) on the mall workload: C2MN accuracy per fold plus
// the mean. The fold count shrinks when fewer sequences are available.
func CrossValidation(sc Scale, folds int) (*Table, error) {
	w, err := sc.mallWorld()
	if err != nil {
		return nil, err
	}
	idx := eval.KFold(len(w.data), folds, sc.Seed+23)
	rows := make([]string, 0, len(idx)+1)
	for i := range idx {
		rows = append(rows, "fold"+strconv.Itoa(i))
	}
	rows = append(rows, "mean")
	t := NewTable("cv", "10-fold cross-validation of C2MN (cf. §V-B1)", rows, []string{"RA", "EA", "CA", "PA"})
	var sums [4]float64
	for fi, testIdx := range idx {
		inTest := map[int]bool{}
		for _, i := range testIdx {
			inTest[i] = true
		}
		var train, test []int
		for i := range w.data {
			if inTest[i] {
				test = append(test, i)
			} else {
				train = append(train, i)
			}
		}
		trainSeqs := pick(w.data, train)
		m, _, err := core.TrainExact(w.space, trainSeqs, w.cfg)
		if err != nil {
			return nil, err
		}
		ex, err := features.NewExtractor(w.space, m.Params)
		if err != nil {
			return nil, err
		}
		var counter eval.Counter
		for _, i := range test {
			ctx := ex.NewSeqContext(&w.data[i].P, nil)
			pred := m.Annotate(ctx, core.InferOptions{})
			if err := counter.Add(w.data[i].Labels, pred); err != nil {
				return nil, err
			}
		}
		acc := counter.Result(eval.DefaultLambda)
		vals := [4]float64{acc.RA, acc.EA, acc.CA, acc.PA}
		for c, v := range vals {
			t.Set(fi, c, v)
			sums[c] += v
		}
	}
	for c := range sums {
		t.Set(len(idx), c, sums[c]/float64(len(idx)))
	}
	return t, nil
}

func pick(data []seq.LabeledSequence, idx []int) []seq.LabeledSequence {
	out := make([]seq.LabeledSequence, 0, len(idx))
	for _, i := range idx {
		out = append(out, data[i])
	}
	return out
}

// AblationGenericCRF pits a generic linear-chain CRF toolkit (LCCRF:
// exact-likelihood chains over the same matching/transition/
// synchronization features, no coupling, no segmentation) against the
// decoupled CMN and the full C2MN. This quantifies what exists today —
// the paper notes only generic CRF libraries are available for this
// problem — versus the coupled model.
func AblationGenericCRF(sc Scale) (*Table, error) {
	w, err := sc.mallWorld()
	if err != nil {
		return nil, err
	}
	methods := []baseline.Method{
		baseline.NewLCCRF(w.cfg.Params),
		sc.newCMN(w.cfg),
		sc.newC2MN(w.cfg),
	}
	results, err := w.runMethods(methods)
	if err != nil {
		return nil, err
	}
	t := NewTable("ablation-crf", "Generic linear-chain CRF vs CMN vs C2MN",
		methodNames(methods), []string{"RA", "EA", "CA", "PA"})
	for i, r := range results {
		t.Set(i, 0, r.acc.RA)
		t.Set(i, 1, r.acc.EA)
		t.Set(i, 2, r.acc.CA)
		t.Set(i, 3, r.acc.PA)
	}
	return t, nil
}

// Ablations runs every ablation study.
func Ablations(sc Scale) ([]*Table, error) {
	a, err := AblationExactVsMCMC(sc)
	if err != nil {
		return nil, err
	}
	b, err := AblationCandidateRadius(sc)
	if err != nil {
		return nil, err
	}
	c, err := AblationOptionalFeatures(sc)
	if err != nil {
		return nil, err
	}
	d, err := AblationGenericCRF(sc)
	if err != nil {
		return nil, err
	}
	return []*Table{a, b, c, d}, nil
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 3, 64)
}
