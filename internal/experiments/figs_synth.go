package experiments

import "fmt"

// synthSweep runs the six-method synthetic study for a list of (T, μ)
// settings, producing PA, TkPRQ-precision and TkFRPQ-precision series.
// The query study uses the middle QT window, matching the paper's
// fixed QT = 120 min for Figs. 15/16/18/19.
func (sc Scale) synthSweep(id string, settings []struct {
	label string
	t, mu float64
}) (pa, tkprq, tkfrpq *Table, err error) {
	cols := make([]string, len(settings))
	for i, s := range settings {
		cols[i] = s.label
	}
	qt := sc.QTs[len(sc.QTs)/2]
	var names []string
	for si, s := range settings {
		w, err := sc.synthWorld(s.t, s.mu)
		if err != nil {
			return nil, nil, nil, err
		}
		methods := sc.sixSet(w.cfg)
		if names == nil {
			names = methodNames(methods)
			pa = NewTable(id, "Perfect accuracy (cf. paper Figs. 14/17)", names, cols)
			tkprq = NewTable(id, "TkPRQ precision (cf. paper Figs. 15/18)", names, cols)
			tkfrpq = NewTable(id, "TkFRPQ precision (cf. paper Figs. 16/19)", names, cols)
		}
		results, err := w.runMethods(methods)
		if err != nil {
			return nil, nil, nil, err
		}
		qp, qf, err := sc.queryStudy(w, results, []float64{qt})
		if err != nil {
			return nil, nil, nil, err
		}
		for mi, r := range results {
			pa.Set(mi, si, r.acc.PA)
			tkprq.Set(mi, si, qp.Cells[mi][0])
			tkfrpq.Set(mi, si, qf.Cells[mi][0])
		}
	}
	return pa, tkprq, tkfrpq, nil
}

// TSweep reproduces Figs. 14–16: the effect of the maximum positioning
// period T (temporal sparsity) with μ fixed at 7 m.
func TSweep(sc Scale) (pa, tkprq, tkfrpq *Table, err error) {
	settings := []struct {
		label string
		t, mu float64
	}{
		{"T=5s", 5, 7},
		{"T=10s", 10, 7},
		{"T=15s", 15, 7},
	}
	pa, tkprq, tkfrpq, err = sc.synthSweep("figT", settings)
	if err != nil {
		return
	}
	pa.ID, pa.Title = "fig14", "Perfect accuracy vs T (cf. paper Fig. 14)"
	tkprq.ID, tkprq.Title = "fig15", "TkPRQ precision vs T (cf. paper Fig. 15)"
	tkfrpq.ID, tkfrpq.Title = "fig16", "TkFRPQ precision vs T (cf. paper Fig. 16)"
	return
}

// Fig14 returns PA vs T.
func Fig14(sc Scale) (*Table, error) {
	pa, _, _, err := TSweep(sc)
	return pa, err
}

// Fig15 returns TkPRQ precision vs T.
func Fig15(sc Scale) (*Table, error) {
	_, t, _, err := TSweep(sc)
	return t, err
}

// Fig16 returns TkFRPQ precision vs T.
func Fig16(sc Scale) (*Table, error) {
	_, _, t, err := TSweep(sc)
	return t, err
}

// MuSweep reproduces Figs. 17–19: the effect of the positioning error
// factor μ with T fixed at 5 s.
func MuSweep(sc Scale) (pa, tkprq, tkfrpq *Table, err error) {
	settings := []struct {
		label string
		t, mu float64
	}{
		{"mu=3m", 5, 3},
		{"mu=5m", 5, 5},
		{"mu=7m", 5, 7},
	}
	pa, tkprq, tkfrpq, err = sc.synthSweep("figMu", settings)
	if err != nil {
		return
	}
	pa.ID, pa.Title = "fig17", "Perfect accuracy vs mu (cf. paper Fig. 17)"
	tkprq.ID, tkprq.Title = "fig18", "TkPRQ precision vs mu (cf. paper Fig. 18)"
	tkfrpq.ID, tkfrpq.Title = "fig19", "TkFRPQ precision vs mu (cf. paper Fig. 19)"
	return
}

// Fig17 returns PA vs μ.
func Fig17(sc Scale) (*Table, error) {
	pa, _, _, err := MuSweep(sc)
	return pa, err
}

// Fig18 returns TkPRQ precision vs μ.
func Fig18(sc Scale) (*Table, error) {
	_, t, _, err := MuSweep(sc)
	return t, err
}

// Fig19 returns TkFRPQ precision vs μ.
func Fig19(sc Scale) (*Table, error) {
	_, _, t, err := MuSweep(sc)
	return t, err
}

// Run dispatches an experiment by its id ("table3", "fig14", ...) and
// returns its tables (a combined driver may return several).
func Run(id string, sc Scale) ([]*Table, error) {
	one := func(t *Table, err error) ([]*Table, error) {
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}
	switch id {
	case "table3":
		return one(Table3(sc))
	case "table4":
		return one(Table4(sc))
	case "table5":
		return one(Table5(sc))
	case "fig5", "fig6":
		ca, pa, err := TrainingFractionSweep(sc)
		if err != nil {
			return nil, err
		}
		return []*Table{ca, pa}, nil
	case "fig7", "fig8":
		ra, ea, err := MSweep(sc)
		if err != nil {
			return nil, err
		}
		return []*Table{ra, ea}, nil
	case "fig9":
		return one(Fig9(sc))
	case "fig10":
		return one(Fig10(sc))
	case "fig11":
		return one(Fig11(sc))
	case "fig12", "fig13":
		a, b, err := QueryPrecision(sc)
		if err != nil {
			return nil, err
		}
		return []*Table{a, b}, nil
	case "fig14", "fig15", "fig16":
		a, b, c, err := TSweep(sc)
		if err != nil {
			return nil, err
		}
		return []*Table{a, b, c}, nil
	case "fig17", "fig18", "fig19":
		a, b, c, err := MuSweep(sc)
		if err != nil {
			return nil, err
		}
		return []*Table{a, b, c}, nil
	case "ablation":
		return Ablations(sc)
	case "cv":
		return one(CrossValidation(sc, 10))
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
}

// IDs lists every runnable experiment id.
func IDs() []string {
	return []string{
		"table3", "table4", "table5",
		"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
		"ablation", "cv",
	}
}
