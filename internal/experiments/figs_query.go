package experiments

import (
	"fmt"
	"math/rand"

	"c2mn/internal/indoor"
	"c2mn/internal/query"
	"c2mn/internal/seq"
)

// queryStudy computes the average TkPRQ and TkFRPQ precision of each
// trained method's m-semantics against the ground truth m-semantics,
// over NumQueries random query sets and the given window lengths.
func (sc Scale) queryStudy(w *world, results []methodEval, windows []float64) (tkprq, tkfrpq *Table, err error) {
	truth := w.truthMS()
	predByMethod := make([][]seq.MSSequence, len(results))
	names := make([]string, len(results))
	for i, r := range results {
		predByMethod[i] = w.predMS(r.pred)
		names[i] = r.name
	}

	cols := make([]string, len(windows))
	for i, qt := range windows {
		cols[i] = fmt.Sprintf("QT=%.0fmin", qt/60)
	}
	tkprq = NewTable("fig12", "TkPRQ precision vs query window (cf. paper Fig. 12)", names, cols)
	tkfrpq = NewTable("fig13", "TkFRPQ precision vs query window (cf. paper Fig. 13)", names, cols)

	regions := w.space.Regions()
	rng := rand.New(rand.NewSource(sc.Seed + 17))
	drawSets := func(frac float64) [][]indoor.RegionID {
		qSize := int(frac * float64(len(regions)))
		if qSize < 2 {
			qSize = 2
		}
		sets := make([][]indoor.RegionID, sc.NumQueries)
		for q := range sets {
			perm := rng.Perm(len(regions))
			set := make([]indoor.RegionID, qSize)
			for i := 0; i < qSize; i++ {
				set[i] = regions[perm[i]]
			}
			sets[q] = set
		}
		return sets
	}
	// Pre-draw the query sets so every method answers the same
	// queries; pair queries use their own (smaller) sets, as the paper
	// does on the synthetic venue.
	querySets := drawSets(sc.QFrac)
	pairFrac := sc.PairQFrac
	if pairFrac <= 0 {
		pairFrac = sc.QFrac
	}
	pairSets := drawSets(pairFrac)

	for wi, qt := range windows {
		win := query.Window{Start: 0, End: qt}
		for mi := range results {
			var sumP, sumF float64
			for _, qs := range querySets {
				truthTop := query.TopKPopularRegions(truth, qs, win, sc.QueryK)
				gotTop := query.TopKPopularRegions(predByMethod[mi], qs, win, sc.QueryK)
				sumP += query.RegionPrecision(gotTop, truthTop, sc.QueryK)
			}
			for _, qs := range pairSets {
				truthPairs := query.TopKFrequentPairs(truth, qs, win, sc.QueryK)
				gotPairs := query.TopKFrequentPairs(predByMethod[mi], qs, win, sc.QueryK)
				sumF += query.PairPrecision(gotPairs, truthPairs, sc.QueryK)
			}
			tkprq.Set(mi, wi, sumP/float64(sc.NumQueries))
			tkfrpq.Set(mi, wi, sumF/float64(sc.NumQueries))
		}
	}
	return tkprq, tkfrpq, nil
}

// QueryPrecision reproduces Figs. 12 and 13: the precision of TkPRQ
// and TkFRPQ answered over each method's annotated m-semantics on the
// mall workload, as the query window QT grows.
func QueryPrecision(sc Scale) (tkprq, tkfrpq *Table, err error) {
	w, err := sc.mallWorld()
	if err != nil {
		return nil, nil, err
	}
	methods := sc.fullSet(w.cfg)
	results, err := w.runMethods(methods)
	if err != nil {
		return nil, nil, err
	}
	return sc.queryStudy(w, results, sc.QTs)
}

// Fig12 returns the TkPRQ precision series.
func Fig12(sc Scale) (*Table, error) {
	t, _, err := QueryPrecision(sc)
	return t, err
}

// Fig13 returns the TkFRPQ precision series.
func Fig13(sc Scale) (*Table, error) {
	_, t, err := QueryPrecision(sc)
	return t, err
}
