package query

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// TestStoreGenerationMonotonic drives a store through a random
// interleaving of adds (some triggering retention evictions via time
// jumps), no-op adds, state captures and restores of arbitrary earlier
// states, and checks the generation contract at every step: mutations
// strictly advance it, observations never move it. The restore-jump
// plus the RestoreState clamp make this hold even when an old captured
// generation is swapped back in.
func TestStoreGenerationMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := NewStore(150)
	var states []IndexState
	last := s.Generation()
	tcur := 0.0
	for i := 0; i < 500; i++ {
		switch op := rng.Intn(10); {
		case op == 0:
			states = append(states, s.SnapshotState())
			if g := s.Generation(); g != last {
				t.Fatalf("op %d: capturing state moved the generation %d → %d", i, last, g)
			}
		case op == 1 && len(states) > 0:
			if err := s.RestoreState(states[rng.Intn(len(states))]); err != nil {
				t.Fatal(err)
			}
			g := s.Generation()
			if g <= last {
				t.Fatalf("op %d: restore did not advance the generation: %d → %d", i, last, g)
			}
			last = g
		case op == 2:
			s.Add(seq.MSSequence{ObjectID: "empty"})
			if g := s.Generation(); g != last {
				t.Fatalf("op %d: ignored empty add moved the generation %d → %d", i, last, g)
			}
		default:
			if rng.Intn(5) == 0 {
				tcur += 400 // jump stream time: retention evicts
			}
			d := 5 + rng.Float64()*40
			s.Add(storeMS(fmt.Sprintf("o%d", i),
				stay(indoor.RegionID(rng.Intn(8)), tcur, tcur+d)))
			tcur += d
			g := s.Generation()
			if g <= last {
				t.Fatalf("op %d: add did not advance the generation: %d → %d", i, last, g)
			}
			last = g
		}
	}
}

// TestEqualGenerationsGiveIdenticalAnswers is the soundness property
// the result caches rely on: an answer memoized at generation G can be
// served for any later query that observes the store still at G. The
// memo plays the cache, the fresh query the recompute; whenever their
// generations agree the answers must be deep-equal.
func TestEqualGenerationsGiveIdenticalAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewStore(0)
	q := []indoor.RegionID{0, 1, 2, 3, 4, 5, 6, 7}
	windows := []Window{{Start: 0, End: 1e9}, {Start: 50, End: 500}, {Start: 200, End: 10000}}
	type memo struct {
		gen     uint64
		regions []RegionCount
		pairs   []PairCount
	}
	memos := map[int]memo{}
	tcur := 0.0
	for i := 0; i < 300; i++ {
		if rng.Intn(3) == 0 {
			d := 5 + rng.Float64()*40
			s.Add(storeMS(fmt.Sprintf("o%d", i),
				stay(indoor.RegionID(rng.Intn(8)), tcur, tcur+d),
				stay(indoor.RegionID(rng.Intn(8)), tcur+d, tcur+2*d)))
			tcur += d
		}
		wi := rng.Intn(len(windows))
		regions, rgen := s.TopKPopularRegionsGen(q, windows[wi], 4)
		pairs, pgen := s.TopKFrequentPairsGen(q, windows[wi], 4)
		if rgen != pgen {
			t.Fatalf("iteration %d: generation moved between queries with no add: %d vs %d", i, rgen, pgen)
		}
		if m, ok := memos[wi]; ok && m.gen == rgen {
			if !reflect.DeepEqual(m.regions, regions) {
				t.Fatalf("window %d at generation %d: memoized regions %v, recomputed %v",
					wi, rgen, m.regions, regions)
			}
			if !reflect.DeepEqual(m.pairs, pairs) {
				t.Fatalf("window %d at generation %d: memoized pairs %v, recomputed %v",
					wi, rgen, m.pairs, pairs)
			}
		}
		memos[wi] = memo{gen: rgen, regions: regions, pairs: pairs}
	}
}

// TestSeedGeneration covers the hot-swap splice: a fresh store seeded
// past its predecessor's generation keeps the monotonic contract, stays
// silent (no change callback), and still advances normally afterwards.
func TestSeedGeneration(t *testing.T) {
	s := NewStore(0)
	fired := 0
	s.OnChange(func(uint64) { fired++ })
	s.SeedGeneration(5000)
	if g := s.Generation(); g != 5000 {
		t.Fatalf("seeded generation %d, want 5000", g)
	}
	if fired != 0 {
		t.Fatalf("seeding fired %d change callbacks, want 0", fired)
	}
	// Seeding below the current counter is a no-op.
	s.SeedGeneration(10)
	if g := s.Generation(); g != 5000 {
		t.Fatalf("backward seed moved the generation to %d", g)
	}
	s.Add(storeMS("o1", stay(1, 0, 10)))
	if g := s.Generation(); g <= 5000 {
		t.Fatalf("add after seeding did not advance: %d", g)
	}
	if fired != 1 {
		t.Fatalf("add fired %d callbacks, want 1", fired)
	}
}
