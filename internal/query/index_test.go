package query

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// mirrorStore is the brute-force reference: a plain slice with the
// same eviction contract as the index (evict when a sequence's last
// end falls strictly behind maxEnd - retention).
type mirrorStore struct {
	retention float64
	maxEnd    float64
	hasMax    bool
	mss       []seq.MSSequence
}

func (m *mirrorStore) add(ms seq.MSSequence) {
	if len(ms.Semantics) == 0 {
		return
	}
	if end := ms.Semantics[len(ms.Semantics)-1].End; !m.hasMax || end > m.maxEnd {
		m.maxEnd, m.hasMax = end, true
	}
	m.mss = append(m.mss, ms)
	if m.retention <= 0 {
		return
	}
	horizon := m.maxEnd - m.retention
	kept := m.mss[:0]
	for _, ms := range m.mss {
		if ms.Semantics[len(ms.Semantics)-1].End >= horizon {
			kept = append(kept, ms)
		}
	}
	m.mss = kept
}

func (m *mirrorStore) semantics() int {
	n := 0
	for _, ms := range m.mss {
		n += len(ms.Semantics)
	}
	return n
}

// randomMS builds a sequence of 1..5 time-ordered semantics with
// random regions, a mix of stays and passes, and periods anywhere in
// [lo, hi) — sequence end times across calls are deliberately NOT
// monotone, exercising out-of-order eviction.
func randomMS(rng *rand.Rand, id int, lo, hi float64) seq.MSSequence {
	n := 1 + rng.Intn(5)
	ms := seq.MSSequence{ObjectID: fmt.Sprintf("obj%d", id)}
	t := lo + rng.Float64()*(hi-lo)*0.8
	for i := 0; i < n; i++ {
		d := rng.Float64() * (hi - lo) * 0.05
		ev := seq.Stay
		if rng.Intn(4) == 0 {
			ev = seq.Pass
		}
		ms.Semantics = append(ms.Semantics, seq.MSemantics{
			Region: indoor.RegionID(rng.Intn(10)),
			Start:  t,
			End:    t + d,
			Event:  ev,
		})
		t += d + rng.Float64()*(hi-lo)*0.02
	}
	return ms
}

// TestIndexMatchesBruteForce is the exactness property: under random
// adds (with out-of-order end times) and retention evictions, the
// bucketed top-k answers equal a brute-force recount over the
// retained sequences, for random windows, query sets and k.
func TestIndexMatchesBruteForce(t *testing.T) {
	allRegions := make([]indoor.RegionID, 10)
	for i := range allRegions {
		allRegions[i] = indoor.RegionID(i)
	}
	cases := []struct {
		name      string
		retention float64
		lo, hi    float64
	}{
		{"unbounded", 0, 0, 2000},
		{"windowed", 300, 0, 2000},
		{"tight-window", 40, 0, 2000},
		{"negative-times", 250, -5000, 1000},
		{"wide-span-coarsens", 0, 0, 500000}, // >> maxBuckets * defaultWidth
		{"wide-span-windowed", 20000, 0, 500000},
	}
	for ci, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + ci)))
			s := NewStore(tc.retention)
			mirror := &mirrorStore{retention: tc.retention}
			for i := 0; i < 400; i++ {
				ms := randomMS(rng, i, tc.lo, tc.hi)
				if i%31 == 0 {
					ms.Semantics = nil // empty sequences are ignored
				}
				s.Add(ms)
				mirror.add(ms)
				if i%5 != 0 {
					continue
				}
				// Random query: window, region subset, k.
				a := tc.lo + rng.Float64()*(tc.hi-tc.lo)
				b := tc.lo + rng.Float64()*(tc.hi-tc.lo)
				w := Window{Start: min(a, b), End: max(a, b)}
				q := allRegions
				if rng.Intn(2) == 0 {
					q = allRegions[:1+rng.Intn(len(allRegions))]
				}
				k := 1 + rng.Intn(6)

				if got, want := s.TopKPopularRegions(q, w, k), TopKPopularRegions(mirror.mss, q, w, k); !reflect.DeepEqual(got, want) {
					t.Fatalf("step %d: TopKPopularRegions(%v, %v, %d)\n got %v\nwant %v",
						i, q, w, k, got, want)
				}
				if got, want := s.TopKFrequentPairs(q, w, k), TopKFrequentPairs(mirror.mss, q, w, k); !reflect.DeepEqual(got, want) {
					t.Fatalf("step %d: TopKFrequentPairs(%v, %v, %d)\n got %v\nwant %v",
						i, q, w, k, got, want)
				}
				seqs, sems := s.Len()
				if seqs != len(mirror.mss) || sems != mirror.semantics() {
					t.Fatalf("step %d: Len = (%d, %d), want (%d, %d)",
						i, seqs, sems, len(mirror.mss), mirror.semantics())
				}
			}
			// Final full-content check.
			if got, want := s.Snapshot(), mirror.mss; !reflect.DeepEqual(got, append([]seq.MSSequence{}, want...)) {
				t.Fatalf("snapshot diverged: %d vs %d sequences", len(got), len(want))
			}
		})
	}
}

// TestIndexOutOfOrderEviction pins the eviction fix: a stale sequence
// must be evicted even when a fresher one arrived before it (the old
// head-first amortised eviction kept it).
func TestIndexOutOfOrderEviction(t *testing.T) {
	s := NewStore(100)
	s.Add(storeMS("fresh", stay(1, 490, 500))) // arrives first, ends late
	s.Add(storeMS("stale", stay(2, 440, 450))) // arrives second, ends early
	s.Add(storeMS("new", stay(3, 590, 600)))   // horizon -> 500
	if seqs, _ := s.Len(); seqs != 2 {
		t.Fatalf("stored %d sequences, want 2 (stale evicted, fresh kept)", seqs)
	}
	snap := s.Snapshot()
	ids := map[string]bool{}
	for _, ms := range snap {
		ids[ms.ObjectID] = true
	}
	if !ids["fresh"] || !ids["new"] || ids["stale"] {
		t.Fatalf("retained %v, want fresh+new without stale", ids)
	}
	// The evicted sequence no longer counts in either query.
	top := s.TopKPopularRegions([]indoor.RegionID{1, 2, 3}, Window{0, 1000}, 3)
	for _, rc := range top {
		if rc.Region == 2 {
			t.Fatalf("evicted region still counted: %v", top)
		}
	}
}

// TestIndexNaNWindow: NaN bounds match the brute-force semantics —
// Window.Contains is false against NaN, so both queries are empty.
func TestIndexNaNWindow(t *testing.T) {
	s := NewStore(0)
	s.Add(storeMS("a", stay(1, 0, 100), stay(2, 50, 150)))
	nan := math.NaN()
	for _, w := range []Window{{nan, 100}, {0, nan}, {nan, nan}} {
		got := s.TopKPopularRegions([]indoor.RegionID{1, 2}, w, 5)
		want := TopKPopularRegions(s.Snapshot(), []indoor.RegionID{1, 2}, w, 5)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("NaN window %v: got %v, want %v", w, got, want)
		}
		if len(got) != 0 {
			t.Fatalf("NaN window %v returned counts: %v", w, got)
		}
		if pairs := s.TopKFrequentPairs([]indoor.RegionID{1, 2}, w, 5); len(pairs) != 0 {
			t.Fatalf("NaN window %v returned pairs: %v", w, pairs)
		}
	}
}

// TestIndexInvertedWindow checks the degenerate Start > End window
// agrees with the brute-force semantics of Window.Contains.
func TestIndexInvertedWindow(t *testing.T) {
	s := NewStore(0)
	spanning := storeMS("span", stay(1, 0, 100)) // intersects [50, 40] per Contains
	narrow := storeMS("narrow", stay(2, 45, 47)) // does not
	s.Add(spanning)
	s.Add(narrow)
	w := Window{Start: 50, End: 40}
	got := s.TopKPopularRegions([]indoor.RegionID{1, 2}, w, 5)
	want := TopKPopularRegions([]seq.MSSequence{spanning, narrow}, []indoor.RegionID{1, 2}, w, 5)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("inverted window: got %v, want %v", got, want)
	}
}

// TestIndexRetentionKeepsResolution: under a retention window, wall-
// clock advance alone must not coarsen the buckets — the live span
// stays ~retention wide, so overflow of the ring is resolved by
// re-basing at the current width, not by doubling it.
func TestIndexRetentionKeepsResolution(t *testing.T) {
	s := NewStore(900)
	want := s.ix.width
	for i := 0; i < 600; i++ { // 60k seconds of stream time, ~66 windows
		t0 := float64(i * 100)
		s.Add(storeMS(fmt.Sprintf("o%d", i), stay(indoor.RegionID(i%5), t0, t0+60)))
	}
	if s.ix.width != want {
		t.Fatalf("bucket width coarsened to %g under a sliding window, want %g", s.ix.width, want)
	}
	if len(s.ix.buckets) > s.ix.maxBuckets {
		t.Fatalf("ring grew to %d buckets, cap %d", len(s.ix.buckets), s.ix.maxBuckets)
	}
}

// TestIndexWidthRecoversAfterOutlier: a transiently wide time span —
// e.g. one sequence with far-future timestamps — coarsens the buckets,
// but once it is evicted and the ring is rebuilt over the survivors,
// the resolution must return to the base width instead of staying
// degraded forever.
func TestIndexWidthRecoversAfterOutlier(t *testing.T) {
	s := NewStore(900)
	base := s.ix.width
	// An outlier far in the future coarsens the ring and (by advancing
	// maxEnd) evicts everything else.
	s.Add(storeMS("outlier", stay(1, 1e7, 1e7+10)))
	s.Add(storeMS("normal", stay(2, 0, 60))) // instantly stale, evicted
	if s.ix.width <= base {
		t.Fatalf("test setup: outlier did not coarsen (width %g)", s.ix.width)
	}
	// Traffic continues in the outlier's time frame; churn through the
	// retention window until the outlier is evicted and a compaction
	// rebuild re-fits the width to the surviving ~900s span.
	for i := 0; i < 300; i++ {
		t0 := 1e7 + float64(i*100)
		s.Add(storeMS(fmt.Sprintf("o%d", i), stay(indoor.RegionID(i%5), t0, t0+60)))
	}
	if s.ix.width != base {
		t.Fatalf("width stuck at %g after the outlier was evicted, want recovery to %g", s.ix.width, base)
	}
}

// TestIndexCompaction drives enough churn through a small window that
// dead sequences repeatedly outnumber live ones, forcing compaction
// rebuilds, and verifies correctness afterwards.
func TestIndexCompaction(t *testing.T) {
	s := NewStore(50)
	mirror := &mirrorStore{retention: 50}
	for i := 0; i < 1000; i++ {
		t0 := float64(i)
		ms := storeMS(fmt.Sprintf("o%d", i), stay(indoor.RegionID(i%7), t0, t0+5))
		s.Add(ms)
		mirror.add(ms)
	}
	q := []indoor.RegionID{0, 1, 2, 3, 4, 5, 6}
	w := Window{Start: 940, End: 1010}
	if got, want := s.TopKPopularRegions(q, w, 7), TopKPopularRegions(mirror.mss, q, w, 7); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-churn TopKPopularRegions: got %v, want %v", got, want)
	}
	if seqs, _ := s.Len(); seqs != len(mirror.mss) {
		t.Fatalf("post-churn Len = %d, want %d", seqs, len(mirror.mss))
	}
}
