package query

import (
	"sync"

	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// Store is a concurrency-safe in-memory m-semantics store that the
// top-k queries can be answered from while annotation is still in
// flight. It is the live counterpart of running TopKPopularRegions /
// TopKFrequentPairs over a finished batch: a streaming pipeline adds
// each completed ms-sequence as it is emitted and queries see all
// semantics added so far.
//
// Internally the store maintains an Index — an incrementally updated,
// time-bucketed aggregate of per-region stay counts and per-bucket
// candidate sequences — so the top-k queries cost on the order of the
// bucket count plus the activity inside the queried window, not a
// recount of every retained semantics triple. Answers are exact: they
// equal the brute-force queries over Snapshot().
//
// A positive retention turns the store into a sliding window over
// stream time: whenever a new ms-sequence advances the maximum period
// end seen so far, sequences that ended more than retention seconds
// before it are evicted. Eviction orders sequences by their end time
// (not arrival order), so interleaved streams whose sequences complete
// out of order are evicted correctly: a stale sequence cannot hide
// behind a fresher one that happened to arrive first.
//
// Each venue shard owns one Store, so this lock is per shard; stores
// of different venues never contend.
type Store struct {
	mu       sync.RWMutex
	ix       *Index
	onChange func(gen uint64)
}

// NewStore returns an empty store. retention <= 0 keeps everything.
func NewStore(retention float64) *Store {
	return &Store{ix: NewIndex(retention)}
}

// OnChange registers a callback invoked after every mutation that moves
// the generation counter (an effective Add, including any eviction it
// triggers, or a RestoreState). The callback receives the generation the
// store moved to and runs outside the store lock, after the mutation is
// visible to queries — it may query the store but must not block for
// long, since it runs on the writer's goroutine. One mutation produces
// one callback carrying the final generation, even when it moved the
// counter several times (an Add plus the evictions it triggered);
// change-feed fan-out coalesces further downstream (see
// internal/notify). At most one
// callback can be registered; OnChange must be called before the store
// is shared across goroutines.
func (s *Store) OnChange(f func(gen uint64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onChange = f
}

// Add appends one ms-sequence and folds its stay events into the
// aggregate index. Sequences with no semantics are ignored — they
// carry nothing a query could count.
func (s *Store) Add(ms seq.MSSequence) {
	s.mu.Lock()
	before := s.ix.Generation()
	s.ix.Add(ms)
	after := s.ix.Generation()
	f := s.onChange
	s.mu.Unlock()
	if f != nil && after != before {
		f(after)
	}
}

// Len returns the number of stored sequences and semantics triples.
func (s *Store) Len() (sequences, semantics int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ix.Len()
}

// Generation returns the store's content-mutation counter. It is
// strictly monotonic across Add, eviction and RestoreState: equal
// generations imply byte-identical answers to every query, so the value
// is a sound cache key and HTTP freshness validator.
func (s *Store) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ix.Generation()
}

// SeedGeneration raises the store's generation counter to at least
// floor without changing contents and without firing the change
// callback (nothing a subscriber could observe changed — the counter
// only skipped ahead). A store already at or past floor is untouched.
// Used when a fresh store replaces one whose generations are already
// cached downstream: seeding past the predecessor (plus GenerationJump
// headroom) keeps the monotonic-generation contract — equal gens imply
// byte-identical answers — across the swap.
func (s *Store) SeedGeneration(floor uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ix := s.ix; ix.gen < floor {
		ix.gen = floor
	}
}

// Snapshot returns a copy of the stored sequences, safe to use after
// further Adds. The per-sequence semantics slices are shared (they are
// append-only once stored).
func (s *Store) Snapshot() []seq.MSSequence {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ix.Snapshot()
}

// SnapshotState captures the store's index state under the read lock;
// see Index.SnapshotState.
func (s *Store) SnapshotState() IndexState {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ix.SnapshotState()
}

// RestoreState replaces the store's contents with a captured state
// (including its retention), atomically with respect to concurrent
// queries. The store is unchanged when the state is invalid.
func (s *Store) RestoreState(st IndexState) error {
	ix, err := RestoreIndex(st)
	if err != nil {
		return err
	}
	s.mu.Lock()
	// Keep the generation strictly monotonic across the swap: a restore
	// into a store that has already moved past the captured (jumped)
	// generation must still look like new content to every cache.
	if cur := s.ix.Generation(); ix.gen <= cur {
		ix.gen = cur + 1
	}
	s.ix = ix
	after := s.ix.Generation()
	f := s.onChange
	s.mu.Unlock()
	// A restore always moves the generation (the jump or the clamp above
	// guarantees it), so it is unconditionally a change event.
	if f != nil {
		f(after)
	}
	return nil
}

// TopKPopularRegions answers a TkPRQ over the current contents.
func (s *Store) TopKPopularRegions(q []indoor.RegionID, w Window, k int) []RegionCount {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ix.TopKPopularRegions(q, w, k)
}

// TopKFrequentPairs answers a TkFRPQ over the current contents.
func (s *Store) TopKFrequentPairs(q []indoor.RegionID, w Window, k int) []PairCount {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ix.TopKFrequentPairs(q, w, k)
}

// TopKPopularRegionsGen answers a TkPRQ and returns the generation the
// answer was computed at, atomically under one read lock — the pair is
// safe to memoize: any later read at the same generation would get the
// same bytes.
func (s *Store) TopKPopularRegionsGen(q []indoor.RegionID, w Window, k int) ([]RegionCount, uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ix.TopKPopularRegions(q, w, k), s.ix.Generation()
}

// TopKFrequentPairsGen answers a TkFRPQ and returns the generation the
// answer was computed at, atomically under one read lock.
func (s *Store) TopKFrequentPairsGen(q []indoor.RegionID, w Window, k int) ([]PairCount, uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ix.TopKFrequentPairs(q, w, k), s.ix.Generation()
}
