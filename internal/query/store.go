package query

import (
	"sync"

	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// Store is a concurrency-safe in-memory m-semantics store that the
// top-k queries can be answered from while annotation is still in
// flight. It is the live counterpart of running TopKPopularRegions /
// TopKFrequentPairs over a finished batch: a streaming pipeline adds
// each completed ms-sequence as it is emitted and queries see all
// semantics added so far.
//
// A positive retention turns the store into a sliding window over
// stream time: whenever a new ms-sequence advances the maximum period
// end seen so far, sequences that ended more than retention seconds
// before it become eligible for eviction. Eviction is amortised — it
// compacts only when the oldest stored sequence is stale — so a query
// may transiently see slightly more history than the window, never
// less.
type Store struct {
	mu        sync.RWMutex
	retention float64
	maxEnd    float64
	mss       []seq.MSSequence
	semantics int
}

// NewStore returns an empty store. retention <= 0 keeps everything.
func NewStore(retention float64) *Store {
	return &Store{retention: retention}
}

// Add appends one ms-sequence. Sequences with no semantics are
// ignored — they carry nothing a query could count.
func (s *Store) Add(ms seq.MSSequence) {
	if len(ms.Semantics) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if end := ms.Semantics[len(ms.Semantics)-1].End; end > s.maxEnd {
		s.maxEnd = end
	}
	s.mss = append(s.mss, ms)
	s.semantics += len(ms.Semantics)
	s.evictLocked()
}

// evictLocked drops sequences that ended before the retention horizon.
// Streams append in roughly increasing time order, so checking the head
// first keeps the common case O(1).
func (s *Store) evictLocked() {
	if s.retention <= 0 || len(s.mss) == 0 {
		return
	}
	horizon := s.maxEnd - s.retention
	if last := s.mss[0].Semantics[len(s.mss[0].Semantics)-1]; last.End >= horizon {
		return
	}
	kept := s.mss[:0]
	semantics := 0
	for _, ms := range s.mss {
		if ms.Semantics[len(ms.Semantics)-1].End >= horizon {
			kept = append(kept, ms)
			semantics += len(ms.Semantics)
		}
	}
	// Release the tail so evicted sequences can be collected.
	for i := len(kept); i < len(s.mss); i++ {
		s.mss[i] = seq.MSSequence{}
	}
	s.mss = kept
	s.semantics = semantics
}

// Len returns the number of stored sequences and semantics triples.
func (s *Store) Len() (sequences, semantics int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.mss), s.semantics
}

// Snapshot returns a copy of the stored sequences, safe to use after
// further Adds. The per-sequence semantics slices are shared (they are
// append-only once stored).
func (s *Store) Snapshot() []seq.MSSequence {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]seq.MSSequence(nil), s.mss...)
}

// TopKPopularRegions answers a TkPRQ over the current contents.
func (s *Store) TopKPopularRegions(q []indoor.RegionID, w Window, k int) []RegionCount {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return TopKPopularRegions(s.mss, q, w, k)
}

// TopKFrequentPairs answers a TkFRPQ over the current contents.
func (s *Store) TopKFrequentPairs(q []indoor.RegionID, w Window, k int) []PairCount {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return TopKFrequentPairs(s.mss, q, w, k)
}
