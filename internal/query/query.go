// Package query implements the two semantics-oriented top-k queries
// the paper uses to judge m-semantics quality (§V-B4):
//
//   - TkPRQ, the top-k popular region query: the k regions of a query
//     set Q with the most visits (stay events) in a time window;
//   - TkFRPQ, the top-k frequent region pair query: the k pairs from
//     Q×Q most often visited by the same object in the window.
//
// Precision compares a method's top-k against the ground truth top-k.
package query

import (
	"sort"

	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// Window is a query time interval [Start, End] in seconds.
type Window struct {
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Contains reports whether an m-semantics period intersects the
// window.
func (w Window) Contains(ms seq.MSemantics) bool {
	return ms.End >= w.Start && ms.Start <= w.End
}

// RegionCount pairs a region with its visit count.
type RegionCount struct {
	Region indoor.RegionID `json:"region"`
	Count  int             `json:"count"`
}

// PairCount pairs an ordered region pair with its co-visit count.
type PairCount struct {
	A     indoor.RegionID `json:"a"`
	B     indoor.RegionID `json:"b"`
	Count int             `json:"count"`
}

// visits returns, per object, the set of query regions the object
// stayed in during the window (a visit is a stay event, footnote 8).
func visits(mss []seq.MSSequence, q map[indoor.RegionID]bool, w Window) []map[indoor.RegionID]int {
	out := make([]map[indoor.RegionID]int, 0, len(mss))
	for i := range mss {
		m := map[indoor.RegionID]int{}
		for _, ms := range mss[i].Semantics {
			if ms.Event == seq.Stay && q[ms.Region] && w.Contains(ms) {
				m[ms.Region]++
			}
		}
		out = append(out, m)
	}
	return out
}

func regionSet(q []indoor.RegionID) map[indoor.RegionID]bool {
	s := make(map[indoor.RegionID]bool, len(q))
	for _, r := range q {
		s[r] = true
	}
	return s
}

// TopKPopularRegions answers a TkPRQ: the k regions of Q with the most
// visits in the window, ties broken by region ID for determinism.
func TopKPopularRegions(mss []seq.MSSequence, q []indoor.RegionID, w Window, k int) []RegionCount {
	counts := map[indoor.RegionID]int{}
	for _, v := range visits(mss, regionSet(q), w) {
		for r, c := range v {
			counts[r] += c
		}
	}
	out := make([]RegionCount, 0, len(counts))
	for r, c := range counts {
		out = append(out, RegionCount{r, c})
	}
	sortRegionCounts(out)
	return TruncateRegionCounts(out, k)
}

// TopKFrequentPairs answers a TkFRPQ: the k pairs of Q×Q most
// frequently visited by the same object within the window. Each object
// contributes one count per distinct pair it visited.
func TopKFrequentPairs(mss []seq.MSSequence, q []indoor.RegionID, w Window, k int) []PairCount {
	counts := map[[2]indoor.RegionID]int{}
	for _, v := range visits(mss, regionSet(q), w) {
		regions := make([]indoor.RegionID, 0, len(v))
		for r := range v {
			regions = append(regions, r)
		}
		sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
		for i := 0; i < len(regions); i++ {
			for j := i + 1; j < len(regions); j++ {
				counts[[2]indoor.RegionID{regions[i], regions[j]}]++
			}
		}
	}
	out := make([]PairCount, 0, len(counts))
	for p, c := range counts {
		out = append(out, PairCount{p[0], p[1], c})
	}
	sortPairCounts(out)
	return TruncatePairCounts(out, k)
}

// RegionPrecision is the fraction of the true top-k regions present in
// the returned top-k (the paper's precision metric, §V-B4).
func RegionPrecision(got, truth []RegionCount, k int) float64 {
	if k <= 0 {
		return 0
	}
	want := map[indoor.RegionID]bool{}
	for i, rc := range truth {
		if i >= k {
			break
		}
		want[rc.Region] = true
	}
	if len(want) == 0 {
		return 0
	}
	hit := 0
	for i, rc := range got {
		if i >= k {
			break
		}
		if want[rc.Region] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

// PairPrecision is the pair analogue of RegionPrecision.
func PairPrecision(got, truth []PairCount, k int) float64 {
	if k <= 0 {
		return 0
	}
	want := map[[2]indoor.RegionID]bool{}
	for i, pc := range truth {
		if i >= k {
			break
		}
		want[[2]indoor.RegionID{pc.A, pc.B}] = true
	}
	if len(want) == 0 {
		return 0
	}
	hit := 0
	for i, pc := range got {
		if i >= k {
			break
		}
		if want[[2]indoor.RegionID{pc.A, pc.B}] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}
