package query

import (
	"reflect"
	"sync"
	"testing"

	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

func storeMS(object string, triples ...seq.MSemantics) seq.MSSequence {
	return seq.MSSequence{ObjectID: object, Semantics: triples}
}

func stay(r indoor.RegionID, start, end float64) seq.MSemantics {
	return seq.MSemantics{Region: r, Start: start, End: end, Event: seq.Stay}
}

func TestStoreMatchesBatchQueries(t *testing.T) {
	mss := []seq.MSSequence{
		storeMS("a", stay(1, 0, 10), stay(2, 20, 30)),
		storeMS("b", stay(1, 5, 15), stay(3, 40, 50)),
		storeMS("c", stay(2, 0, 5)),
	}
	s := NewStore(0)
	for _, ms := range mss {
		s.Add(ms)
	}
	q := []indoor.RegionID{1, 2, 3}
	w := Window{Start: 0, End: 100}
	if got, want := s.TopKPopularRegions(q, w, 3), TopKPopularRegions(mss, q, w, 3); !reflect.DeepEqual(got, want) {
		t.Errorf("TopKPopularRegions: got %v want %v", got, want)
	}
	if got, want := s.TopKFrequentPairs(q, w, 3), TopKFrequentPairs(mss, q, w, 3); !reflect.DeepEqual(got, want) {
		t.Errorf("TopKFrequentPairs: got %v want %v", got, want)
	}
	if seqs, sems := s.Len(); seqs != 3 || sems != 5 {
		t.Errorf("Len = %d, %d", seqs, sems)
	}
}

func TestStoreIgnoresEmptySequences(t *testing.T) {
	s := NewStore(0)
	s.Add(seq.MSSequence{ObjectID: "empty"})
	if seqs, _ := s.Len(); seqs != 0 {
		t.Errorf("empty sequence stored")
	}
}

func TestStoreRetentionEvicts(t *testing.T) {
	s := NewStore(100)
	s.Add(storeMS("old", stay(1, 0, 10)))
	s.Add(storeMS("mid", stay(2, 50, 60)))
	if seqs, _ := s.Len(); seqs != 2 {
		t.Fatalf("premature eviction: %d sequences", seqs)
	}
	// maxEnd jumps to 300: horizon 200 evicts both earlier sequences.
	s.Add(storeMS("new", stay(3, 290, 300)))
	if seqs, sems := s.Len(); seqs != 1 || sems != 1 {
		t.Fatalf("retention kept %d sequences / %d semantics, want 1/1", seqs, sems)
	}
	snap := s.Snapshot()
	if len(snap) != 1 || snap[0].ObjectID != "new" {
		t.Errorf("snapshot = %v", snap)
	}
	// The evicted region no longer counts.
	top := s.TopKPopularRegions([]indoor.RegionID{1, 2, 3}, Window{0, 1000}, 3)
	if len(top) != 1 || top[0].Region != 3 {
		t.Errorf("post-eviction top-k = %v", top)
	}
}

func TestStoreSnapshotIsolated(t *testing.T) {
	s := NewStore(0)
	s.Add(storeMS("a", stay(1, 0, 10)))
	snap := s.Snapshot()
	s.Add(storeMS("b", stay(2, 0, 10)))
	if len(snap) != 1 {
		t.Errorf("snapshot grew with the store")
	}
}

func TestStoreConcurrentAddAndQuery(t *testing.T) {
	s := NewStore(500)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				t0 := float64(g*200 + i)
				s.Add(storeMS("obj", stay(indoor.RegionID(i%5), t0, t0+1)))
				if i%10 == 0 {
					s.TopKPopularRegions([]indoor.RegionID{0, 1, 2, 3, 4}, Window{0, 1e9}, 3)
				}
			}
		}(g)
	}
	wg.Wait()
	if seqs, _ := s.Len(); seqs == 0 {
		t.Fatal("store empty after concurrent adds")
	}
}

func TestStoreOnChange(t *testing.T) {
	s := NewStore(0)
	var gens []uint64
	s.OnChange(func(gen uint64) { gens = append(gens, gen) })

	s.Add(storeMS("a", stay(1, 0, 10)))
	if len(gens) != 1 || gens[0] != s.Generation() {
		t.Fatalf("after one Add: gens = %v, store gen = %d", gens, s.Generation())
	}

	// An empty-semantics sequence is not stored and must not notify.
	s.Add(seq.MSSequence{ObjectID: "empty"})
	if len(gens) != 1 {
		t.Fatalf("empty Add notified: gens = %v", gens)
	}

	// One mutation, one callback — even when the mutation moves the
	// counter more than once (an Add whose retention horizon also
	// evicts bumps per eviction plus once for the insert).
	s2 := NewStore(100)
	var calls []uint64
	s2.OnChange(func(gen uint64) { calls = append(calls, gen) })
	s2.Add(storeMS("old", stay(1, 0, 10)))
	s2.Add(storeMS("new", stay(2, 290, 300))) // evicts "old" and inserts
	if len(calls) != 2 {
		t.Fatalf("calls = %v, want exactly one per Add", calls)
	}
	if calls[1] != s2.Generation() {
		t.Fatalf("callback gen %d != final gen %d", calls[1], s2.Generation())
	}
	if calls[1] < calls[0]+2 {
		t.Fatalf("evicting Add moved gen by %d, want >= 2 (evict + insert)", calls[1]-calls[0])
	}
}

func TestStoreRestoreNotifies(t *testing.T) {
	src := NewStore(0)
	src.Add(storeMS("a", stay(1, 0, 10)))
	st := src.SnapshotState()

	dst := NewStore(0)
	var gens []uint64
	dst.OnChange(func(gen uint64) { gens = append(gens, gen) })
	if err := dst.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if len(gens) != 1 || gens[0] != dst.Generation() {
		t.Fatalf("restore notified %v, store gen %d", gens, dst.Generation())
	}
}
