package query

import (
	"reflect"
	"sync"
	"testing"

	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

func storeMS(object string, triples ...seq.MSemantics) seq.MSSequence {
	return seq.MSSequence{ObjectID: object, Semantics: triples}
}

func stay(r indoor.RegionID, start, end float64) seq.MSemantics {
	return seq.MSemantics{Region: r, Start: start, End: end, Event: seq.Stay}
}

func TestStoreMatchesBatchQueries(t *testing.T) {
	mss := []seq.MSSequence{
		storeMS("a", stay(1, 0, 10), stay(2, 20, 30)),
		storeMS("b", stay(1, 5, 15), stay(3, 40, 50)),
		storeMS("c", stay(2, 0, 5)),
	}
	s := NewStore(0)
	for _, ms := range mss {
		s.Add(ms)
	}
	q := []indoor.RegionID{1, 2, 3}
	w := Window{Start: 0, End: 100}
	if got, want := s.TopKPopularRegions(q, w, 3), TopKPopularRegions(mss, q, w, 3); !reflect.DeepEqual(got, want) {
		t.Errorf("TopKPopularRegions: got %v want %v", got, want)
	}
	if got, want := s.TopKFrequentPairs(q, w, 3), TopKFrequentPairs(mss, q, w, 3); !reflect.DeepEqual(got, want) {
		t.Errorf("TopKFrequentPairs: got %v want %v", got, want)
	}
	if seqs, sems := s.Len(); seqs != 3 || sems != 5 {
		t.Errorf("Len = %d, %d", seqs, sems)
	}
}

func TestStoreIgnoresEmptySequences(t *testing.T) {
	s := NewStore(0)
	s.Add(seq.MSSequence{ObjectID: "empty"})
	if seqs, _ := s.Len(); seqs != 0 {
		t.Errorf("empty sequence stored")
	}
}

func TestStoreRetentionEvicts(t *testing.T) {
	s := NewStore(100)
	s.Add(storeMS("old", stay(1, 0, 10)))
	s.Add(storeMS("mid", stay(2, 50, 60)))
	if seqs, _ := s.Len(); seqs != 2 {
		t.Fatalf("premature eviction: %d sequences", seqs)
	}
	// maxEnd jumps to 300: horizon 200 evicts both earlier sequences.
	s.Add(storeMS("new", stay(3, 290, 300)))
	if seqs, sems := s.Len(); seqs != 1 || sems != 1 {
		t.Fatalf("retention kept %d sequences / %d semantics, want 1/1", seqs, sems)
	}
	snap := s.Snapshot()
	if len(snap) != 1 || snap[0].ObjectID != "new" {
		t.Errorf("snapshot = %v", snap)
	}
	// The evicted region no longer counts.
	top := s.TopKPopularRegions([]indoor.RegionID{1, 2, 3}, Window{0, 1000}, 3)
	if len(top) != 1 || top[0].Region != 3 {
		t.Errorf("post-eviction top-k = %v", top)
	}
}

func TestStoreSnapshotIsolated(t *testing.T) {
	s := NewStore(0)
	s.Add(storeMS("a", stay(1, 0, 10)))
	snap := s.Snapshot()
	s.Add(storeMS("b", stay(2, 0, 10)))
	if len(snap) != 1 {
		t.Errorf("snapshot grew with the store")
	}
}

func TestStoreConcurrentAddAndQuery(t *testing.T) {
	s := NewStore(500)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				t0 := float64(g*200 + i)
				s.Add(storeMS("obj", stay(indoor.RegionID(i%5), t0, t0+1)))
				if i%10 == 0 {
					s.TopKPopularRegions([]indoor.RegionID{0, 1, 2, 3, 4}, Window{0, 1e9}, 3)
				}
			}
		}(g)
	}
	wg.Wait()
	if seqs, _ := s.Len(); seqs == 0 {
		t.Fatal("store empty after concurrent adds")
	}
}
