package query

import (
	"testing"

	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

func ms(r indoor.RegionID, start, end float64, e seq.Event) seq.MSemantics {
	return seq.MSemantics{Region: r, Start: start, End: end, Event: e}
}

func fixtures() []seq.MSSequence {
	return []seq.MSSequence{
		{ObjectID: "o1", Semantics: []seq.MSemantics{
			ms(1, 0, 100, seq.Stay),
			ms(2, 150, 200, seq.Pass), // pass: not a visit
			ms(3, 250, 400, seq.Stay),
		}},
		{ObjectID: "o2", Semantics: []seq.MSemantics{
			ms(1, 10, 60, seq.Stay),
			ms(3, 100, 150, seq.Stay),
			ms(1, 500, 600, seq.Stay), // outside window in some tests
		}},
		{ObjectID: "o3", Semantics: []seq.MSemantics{
			ms(2, 20, 80, seq.Stay),
			ms(1, 90, 130, seq.Stay),
		}},
	}
}

func allQ() []indoor.RegionID { return []indoor.RegionID{1, 2, 3} }

func TestWindowContains(t *testing.T) {
	w := Window{100, 200}
	if !w.Contains(ms(1, 50, 100, seq.Stay)) {
		t.Errorf("touching start should count")
	}
	if !w.Contains(ms(1, 200, 300, seq.Stay)) {
		t.Errorf("touching end should count")
	}
	if w.Contains(ms(1, 0, 99, seq.Stay)) {
		t.Errorf("before window should not count")
	}
}

func TestTopKPopularRegions(t *testing.T) {
	w := Window{0, 450}
	got := TopKPopularRegions(fixtures(), allQ(), w, 3)
	// Visits: r1 = o1+o2+o3 = 3, r3 = o1+o2 = 2, r2 = o3 = 1.
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	if got[0].Region != 1 || got[0].Count != 3 {
		t.Errorf("rank1 = %+v", got[0])
	}
	if got[1].Region != 3 || got[1].Count != 2 {
		t.Errorf("rank2 = %+v", got[1])
	}
	if got[2].Region != 2 || got[2].Count != 1 {
		t.Errorf("rank3 = %+v", got[2])
	}
}

func TestTopKPopularRegionsWindowAndQ(t *testing.T) {
	// Narrow window drops o2's late visit to r1.
	got := TopKPopularRegions(fixtures(), allQ(), Window{450, 700}, 3)
	if len(got) != 1 || got[0].Region != 1 || got[0].Count != 1 {
		t.Errorf("late window = %v", got)
	}
	// Restricting Q hides region 1.
	got = TopKPopularRegions(fixtures(), []indoor.RegionID{2, 3}, Window{0, 450}, 3)
	for _, rc := range got {
		if rc.Region == 1 {
			t.Errorf("region 1 not in Q but returned")
		}
	}
	// k truncates.
	got = TopKPopularRegions(fixtures(), allQ(), Window{0, 450}, 1)
	if len(got) != 1 {
		t.Errorf("k=1 returned %d", len(got))
	}
}

func TestTopKFrequentPairs(t *testing.T) {
	w := Window{0, 450}
	got := TopKFrequentPairs(fixtures(), allQ(), w, 5)
	// o1 visited {1,3}, o2 visited {1,3}, o3 visited {1,2}.
	// Pairs: (1,3) x2, (1,2) x1.
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	if got[0].A != 1 || got[0].B != 3 || got[0].Count != 2 {
		t.Errorf("rank1 = %+v", got[0])
	}
	if got[1].A != 1 || got[1].B != 2 || got[1].Count != 1 {
		t.Errorf("rank2 = %+v", got[1])
	}
}

func TestPrecisionPerfectAndPartial(t *testing.T) {
	w := Window{0, 450}
	truth := TopKPopularRegions(fixtures(), allQ(), w, 2)
	if p := RegionPrecision(truth, truth, 2); p != 1 {
		t.Errorf("self precision = %v", p)
	}
	other := []RegionCount{{Region: 1, Count: 9}, {Region: 2, Count: 8}}
	// truth top-2 = {1, 3}; other has {1, 2}: 1 hit of 2.
	if p := RegionPrecision(other, truth, 2); p != 0.5 {
		t.Errorf("partial precision = %v", p)
	}
	if p := RegionPrecision(nil, truth, 2); p != 0 {
		t.Errorf("empty precision = %v", p)
	}
	if p := RegionPrecision(truth, nil, 2); p != 0 {
		t.Errorf("no-truth precision = %v", p)
	}
	if p := RegionPrecision(truth, truth, 0); p != 0 {
		t.Errorf("k=0 precision = %v", p)
	}
}

func TestPairPrecision(t *testing.T) {
	truth := []PairCount{{1, 3, 2}, {1, 2, 1}}
	got := []PairCount{{1, 3, 5}, {2, 3, 4}}
	if p := PairPrecision(got, truth, 2); p != 0.5 {
		t.Errorf("pair precision = %v", p)
	}
	if p := PairPrecision(truth, truth, 2); p != 1 {
		t.Errorf("self pair precision = %v", p)
	}
}

func TestDeterministicTieBreaks(t *testing.T) {
	// Two regions with equal counts order by ID.
	mss := []seq.MSSequence{
		{ObjectID: "a", Semantics: []seq.MSemantics{ms(5, 0, 10, seq.Stay), ms(2, 20, 30, seq.Stay)}},
	}
	got := TopKPopularRegions(mss, []indoor.RegionID{2, 5}, Window{0, 100}, 2)
	if got[0].Region != 2 || got[1].Region != 5 {
		t.Errorf("tie break wrong: %v", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	if got := TopKPopularRegions(nil, allQ(), Window{0, 1}, 3); len(got) != 0 {
		t.Errorf("nil mss = %v", got)
	}
	if got := TopKFrequentPairs(nil, allQ(), Window{0, 1}, 3); len(got) != 0 {
		t.Errorf("nil mss pairs = %v", got)
	}
	if got := TopKPopularRegions(fixtures(), nil, Window{0, 450}, 3); len(got) != 0 {
		t.Errorf("empty Q = %v", got)
	}
}
