package query

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// randomFleet builds n retention-bounded indexes and feeds them random
// ms-sequences with steadily advancing stream time, so adds and
// evictions interleave across shards exactly as venue stores would see
// them.
func randomFleet(rng *rand.Rand, n, seqsPerShard, regions int) []*Index {
	shards := make([]*Index, n)
	for i := range shards {
		shards[i] = NewIndex(200 + rng.Float64()*400)
	}
	t := make([]float64, n)
	for s := 0; s < seqsPerShard; s++ {
		for i := range shards {
			ms := seq.MSSequence{ObjectID: fmt.Sprintf("v%d-o%d", i, s)}
			stays := 1 + rng.Intn(4)
			for j := 0; j < stays; j++ {
				d := 10 + rng.Float64()*120
				ev := seq.Stay
				if rng.Float64() < 0.2 {
					ev = seq.Pass
				}
				ms.Semantics = append(ms.Semantics, seq.MSemantics{
					Region: indoor.RegionID(rng.Intn(regions)),
					Start:  t[i],
					End:    t[i] + d,
					Event:  ev,
				})
				// Overlapping periods, sometimes jumping backwards so
				// sequences complete out of order within the shard.
				t[i] += d * (0.2 + rng.Float64()*0.8)
				if rng.Float64() < 0.1 {
					t[i] -= d
				}
			}
			shards[i].Add(ms)
		}
	}
	return shards
}

// TestMergeMatchesBruteForceOverConcatenation is the fleet-merge
// property test: merging each shard's untruncated counts must equal a
// brute-force recount over the concatenation of all shards' live
// snapshots — under random adds and retention evictions across >= 3
// shards, random query windows, and random region subsets.
func TestMergeMatchesBruteForceOverConcatenation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const regions = 12
	for trial := 0; trial < 25; trial++ {
		shards := randomFleet(rng, 3+rng.Intn(3), 20+rng.Intn(40), regions)

		// The brute-force reference: every shard's snapshot, concatenated.
		var all []seq.MSSequence
		for _, ix := range shards {
			all = append(all, ix.Snapshot()...)
		}

		q := make([]indoor.RegionID, 0, regions)
		for r := 0; r < regions; r++ {
			if rng.Float64() < 0.7 {
				q = append(q, indoor.RegionID(r))
			}
		}
		lo := rng.Float64() * 3000
		w := Window{Start: lo, End: lo + rng.Float64()*3000}
		k := 1 + rng.Intn(regions)

		regionParts := make([][]RegionCount, len(shards))
		pairParts := make([][]PairCount, len(shards))
		for i, ix := range shards {
			regionParts[i] = ix.TopKPopularRegions(q, w, AllCounts)
			pairParts[i] = ix.TopKFrequentPairs(q, w, AllCounts)
		}

		gotR := TruncateRegionCounts(MergeRegionCounts(regionParts...), k)
		wantR := TopKPopularRegions(all, q, w, k)
		if !reflect.DeepEqual(append([]RegionCount{}, gotR...), wantR) {
			t.Fatalf("trial %d: merged TkPRQ = %v, brute force = %v (window %+v, k=%d)", trial, gotR, wantR, w, k)
		}

		gotP := TruncatePairCounts(MergePairCounts(pairParts...), k)
		wantP := TopKFrequentPairs(all, q, w, k)
		if !reflect.DeepEqual(append([]PairCount{}, gotP...), wantP) {
			t.Fatalf("trial %d: merged TkFRPQ = %v, brute force = %v (window %+v, k=%d)", trial, gotP, wantP, w, k)
		}
	}
}

// TestMergeSingleShardIsIdentity pins the single-list fast path: a
// one-venue merge is the shard's own canonical answer.
func TestMergeSingleShardIsIdentity(t *testing.T) {
	in := []RegionCount{{Region: 2, Count: 9}, {Region: 1, Count: 4}}
	if got := MergeRegionCounts(in); !reflect.DeepEqual(got, in) {
		t.Fatalf("single-shard merge = %v, want input %v", got, in)
	}
	pin := []PairCount{{A: 1, B: 2, Count: 3}}
	if got := MergePairCounts(pin); !reflect.DeepEqual(got, pin) {
		t.Fatalf("single-shard pair merge = %v, want input %v", got, pin)
	}
}

// TestMergeSumsSharedRegionIDs pins the namespace semantics: counts of
// the same region ID from different shards sum, and a region that is
// nobody's per-shard leader can still win the merged ranking.
func TestMergeSumsSharedRegionIDs(t *testing.T) {
	a := []RegionCount{{Region: 1, Count: 5}, {Region: 3, Count: 4}}
	b := []RegionCount{{Region: 2, Count: 5}, {Region: 3, Count: 4}}
	got := MergeRegionCounts(a, b)
	want := []RegionCount{{Region: 3, Count: 8}, {Region: 1, Count: 5}, {Region: 2, Count: 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge = %v, want %v", got, want)
	}
}

// TestTruncateBounds pins the truncation edge cases shared by every
// ranked list.
func TestTruncateBounds(t *testing.T) {
	in := []RegionCount{{Region: 1, Count: 2}, {Region: 2, Count: 1}}
	if got := TruncateRegionCounts(in, 1); len(got) != 1 || got[0].Region != 1 {
		t.Fatalf("k=1 truncation = %v", got)
	}
	if got := TruncateRegionCounts(in, 0); len(got) != 0 {
		t.Fatalf("k=0 truncation = %v, want empty", got)
	}
	if got := TruncateRegionCounts(in, -3); len(got) != 0 {
		t.Fatalf("negative k truncation = %v, want empty", got)
	}
	if got := TruncateRegionCounts(in, 99); !reflect.DeepEqual(got, in) {
		t.Fatalf("oversized k truncation = %v, want input", got)
	}
	if got := TruncateRegionCounts(nil, 5); got != nil {
		t.Fatalf("nil truncation = %v, want nil", got)
	}
	if got := TruncatePairCounts([]PairCount{{A: 1, B: 2, Count: 1}}, 0); len(got) != 0 {
		t.Fatalf("pair k=0 truncation = %v, want empty", got)
	}
}
