package query

import (
	"fmt"
	"math"
	"sort"

	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// Index is an incrementally-maintained, time-bucketed aggregate over a
// set of retained ms-sequences. It answers the two top-k queries
// exactly — identical to a brute-force recount over the retained
// sequences — while paying per query a cost bounded by the bucket
// count plus the events of at most two boundary buckets, instead of a
// scan of every retained semantics triple.
//
// The structure is a ring of fixed-width time buckets covering the
// span of all retained stay events. Per bucket it keeps
//
//   - per-region counts of stay events whose period *starts* in the
//     bucket and, separately, whose period *ends* in the bucket;
//   - the start/end event records themselves, for exact partial counts
//     inside the two buckets a query window's edges fall into;
//   - the set of sequences with a stay period intersecting the bucket,
//     the candidate generator for the pair query.
//
// TkPRQ uses the identity, valid for Start <= End windows,
//
//	#{e : e.End >= w.Start && e.Start <= w.End}
//	  = #{e : e.Start <= w.End} - #{e : e.End < w.Start}
//
// both terms of which are a prefix sum over bucket aggregates plus one
// boundary-bucket scan. TkFRPQ gathers the sequences registered in
// the buckets the window overlaps and recounts only those — exact, and
// proportional to the activity inside the window rather than to the
// total retained history.
//
// When the event span outgrows the bucket budget the bucket width
// doubles and the ring is rebuilt from the retained sequences, so the
// bucket count stays bounded for unbounded retention. Eviction is
// driven by a min-heap on sequence end time, which is correct for
// out-of-order sequence completion (a stale sequence is evicted even
// when fresher sequences arrived before it). Evicted sequences are
// removed from the aggregates immediately and from the per-bucket
// event lists lazily; a rebuild compacts the lists once dead
// sequences outnumber live ones.
//
// An Index is not safe for concurrent use; Store adds the lock.
type Index struct {
	retention float64

	maxBuckets int
	baseWidth  float64 // finest resolution; width recovers to it on rebuilds
	width      float64 // current bucket width in seconds
	base       int64   // time-key of buckets[0] (key = floor(t/width))
	buckets    []bucket

	seqs []idxSeq
	heap []int32 // min-heap of seq indices ordered by end time

	alive    int // live sequences
	aliveSem int // semantics triples across live sequences
	maxEnd   float64
	hasMax   bool

	// gen counts content mutations: every Add and every eviction bumps
	// it, so two reads of the index under the same generation are
	// guaranteed to see identical content. Query results memoized under
	// a generation never need explicit invalidation — a moved generation
	// simply never matches again.
	gen uint64
}

// idxSeq is one stored sequence plus its eviction bookkeeping.
type idxSeq struct {
	ms   seq.MSSequence
	end  float64 // last semantics End: the eviction key
	dead bool
}

// bucket aggregates the stay events of one time slice.
type bucket struct {
	stayStarts map[indoor.RegionID]int // stay events starting here, by region
	stayEnds   map[indoor.RegionID]int // stay events ending here, by region
	starts     []eventRef              // the start events themselves (lazy-deleted)
	ends       []eventRef              // the end events themselves (lazy-deleted)
	seqIDs     []int32                 // sequences with a stay period intersecting the bucket
}

// eventRef is one endpoint of a stay event.
type eventRef struct {
	seq    int32
	region indoor.RegionID
	t      float64
}

const (
	// defaultMaxBuckets bounds the ring; beyond it the width doubles.
	defaultMaxBuckets = 128
	// retentionBuckets is the initial resolution of a bounded window.
	retentionBuckets = 48
	// defaultWidth (seconds) seeds the resolution when retention is
	// unbounded and no better guess exists.
	defaultWidth = 60
	// compactMinDead delays list compaction until it pays for itself.
	compactMinDead = 64
	// maxKeyMagnitude clamps time keys so extreme timestamps (e.g. a
	// client feeding t = 1e300) cannot overflow the int64 key space.
	maxKeyMagnitude = int64(1) << 53
)

// NewIndex returns an empty index. retention <= 0 keeps everything.
func NewIndex(retention float64) *Index {
	width := float64(defaultWidth)
	if retention > 0 && retention/retentionBuckets < width {
		width = retention / retentionBuckets
	}
	return &Index{
		retention:  retention,
		maxBuckets: defaultMaxBuckets,
		baseWidth:  width,
		width:      width,
	}
}

// fitWidth returns the smallest power-of-two multiple of the base
// width at which the [lo, hi] time range fits the bucket budget.
// Starting from the base width — not the current one — lets the
// resolution recover after a transiently wide span (one sequence with
// an extreme timestamp would otherwise coarsen the index forever).
func (ix *Index) fitWidth(lo, hi float64) float64 {
	width := ix.baseWidth
	for spanAt(lo, hi, width) > int64(ix.maxBuckets) {
		width *= 2
	}
	return width
}

// keyOf maps a timestamp to its bucket key at the current width.
func (ix *Index) keyOf(t float64) int64 {
	f := math.Floor(t / ix.width)
	switch {
	case f > float64(maxKeyMagnitude):
		return maxKeyMagnitude
	case f < -float64(maxKeyMagnitude):
		return -maxKeyMagnitude
	}
	return int64(f)
}

// Add inserts one ms-sequence, updates the bucket aggregates with its
// stay events, and evicts sequences that fell behind the retention
// horizon. Sequences with no semantics are ignored.
func (ix *Index) Add(ms seq.MSSequence) {
	if len(ms.Semantics) == 0 {
		return
	}
	ix.gen++
	end := ms.Semantics[len(ms.Semantics)-1].End
	idx := int32(len(ix.seqs))
	ix.seqs = append(ix.seqs, idxSeq{ms: ms, end: end})
	ix.alive++
	ix.aliveSem += len(ms.Semantics)
	if !ix.hasMax || end > ix.maxEnd {
		ix.maxEnd, ix.hasMax = end, true
	}
	// Coverage first: growing the ring may instead trigger a coarsening
	// rebuild, which (re)indexes every live sequence including this one.
	if !ix.ensureCoverage(idx) {
		ix.indexEvents(idx)
	}
	ix.heapPush(idx)
	ix.evict()
	if dead := len(ix.seqs) - ix.alive; dead >= compactMinDead && dead > ix.alive {
		ix.compact()
	}
}

// ensureCoverage extends the ring to cover seq idx's stay events. It
// reports whether it rebuilt the ring (which indexes idx already).
func (ix *Index) ensureCoverage(idx int32) bool {
	lo, hi, any := int64(0), int64(0), false
	for _, m := range ix.seqs[idx].ms.Semantics {
		if m.Event != seq.Stay {
			continue
		}
		ks, ke := ix.keyOf(m.Start), ix.keyOf(m.End)
		if !any {
			lo, hi, any = ks, ke, true
			continue
		}
		lo, hi = min(lo, ks), max(hi, ke)
	}
	if !any {
		return false
	}
	if len(ix.buckets) > 0 {
		lo = min(lo, ix.base)
		hi = max(hi, ix.base+int64(len(ix.buckets))-1)
	}
	if hi-lo+1 > int64(ix.maxBuckets) {
		// The tracked span outgrew the ring — often only because evicted
		// front buckets are still allocated (they are reclaimed lazily).
		// Rebuild on the live span at the finest width that fits it:
		// usually a re-base at the current (or even the base) width, and
		// a genuine coarsening only when the live span demands it.
		tlo, thi := ix.liveTimeRange(idx)
		ix.rebuild(ix.fitWidth(tlo, thi))
		return true
	}
	if len(ix.buckets) == 0 {
		ix.base = lo
		ix.buckets = make([]bucket, hi-lo+1)
		return false
	}
	if lo < ix.base {
		grown := make([]bucket, int(ix.base-lo)+len(ix.buckets))
		copy(grown[ix.base-lo:], ix.buckets)
		ix.buckets, ix.base = grown, lo
	}
	if last := ix.base + int64(len(ix.buckets)) - 1; hi > last {
		ix.buckets = append(ix.buckets, make([]bucket, hi-last)...)
	}
	return false
}

// liveTimeRange returns the min start and max end over the stay events
// of all live sequences up to and including upTo.
func (ix *Index) liveTimeRange(upTo int32) (lo, hi float64) {
	first := true
	for i := int32(0); i <= upTo; i++ {
		if ix.seqs[i].dead {
			continue
		}
		for _, m := range ix.seqs[i].ms.Semantics {
			if m.Event != seq.Stay {
				continue
			}
			if first {
				lo, hi, first = m.Start, m.End, false
				continue
			}
			lo, hi = math.Min(lo, m.Start), math.Max(hi, m.End)
		}
	}
	return lo, hi
}

// spanAt returns the bucket count the [lo, hi] time range needs at the
// given width.
func spanAt(lo, hi float64, width float64) int64 {
	kl := int64(math.Max(math.Min(math.Floor(lo/width), float64(maxKeyMagnitude)), -float64(maxKeyMagnitude)))
	kh := int64(math.Max(math.Min(math.Floor(hi/width), float64(maxKeyMagnitude)), -float64(maxKeyMagnitude)))
	return kh - kl + 1
}

// indexEvents registers seq idx's stay events in the (already
// covering) ring.
func (ix *Index) indexEvents(idx int32) {
	for _, m := range ix.seqs[idx].ms.Semantics {
		if m.Event != seq.Stay {
			continue
		}
		ks, ke := ix.keyOf(m.Start), ix.keyOf(m.End)
		bs := &ix.buckets[ks-ix.base]
		if bs.stayStarts == nil {
			bs.stayStarts = map[indoor.RegionID]int{}
		}
		bs.stayStarts[m.Region]++
		bs.starts = append(bs.starts, eventRef{seq: idx, region: m.Region, t: m.Start})
		be := &ix.buckets[ke-ix.base]
		if be.stayEnds == nil {
			be.stayEnds = map[indoor.RegionID]int{}
		}
		be.stayEnds[m.Region]++
		be.ends = append(be.ends, eventRef{seq: idx, region: m.Region, t: m.End})
		for k := ks; k <= ke; k++ {
			b := &ix.buckets[k-ix.base]
			if n := len(b.seqIDs); n == 0 || b.seqIDs[n-1] != idx {
				b.seqIDs = append(b.seqIDs, idx)
			}
		}
	}
}

// rebuild re-creates the ring at the given width from the live
// sequences, dropping lazily-deleted event references along the way.
func (ix *Index) rebuild(width float64) {
	ix.width = width
	ix.buckets = nil
	ix.base = 0
	for i := range ix.seqs {
		if ix.seqs[i].dead {
			continue
		}
		if !ix.ensureCoverage(int32(i)) {
			ix.indexEvents(int32(i))
		}
	}
}

// compact drops dead sequences entirely: the seqs slice, the heap and
// the ring are rebuilt over the live survivors, preserving insertion
// order (and with it Snapshot order). The width is re-fit to the
// surviving span, so resolution lost to since-evicted outliers comes
// back.
func (ix *Index) compact() {
	live := make([]idxSeq, 0, ix.alive)
	for i := range ix.seqs {
		if !ix.seqs[i].dead {
			live = append(live, ix.seqs[i])
		}
	}
	ix.seqs = live
	ix.heap = ix.heap[:0]
	for i := range ix.seqs {
		ix.heapPush(int32(i))
	}
	width := ix.baseWidth
	if len(ix.seqs) > 0 {
		tlo, thi := ix.liveTimeRange(int32(len(ix.seqs) - 1))
		width = ix.fitWidth(tlo, thi)
	}
	ix.rebuild(width)
}

// evict kills sequences whose end time fell behind the retention
// horizon. The heap ordering makes this exact under out-of-order ends:
// the staleness check always sees the oldest live sequence, not the
// insertion head.
func (ix *Index) evict() {
	if ix.retention <= 0 {
		return
	}
	horizon := ix.maxEnd - ix.retention
	for len(ix.heap) > 0 {
		idx := ix.heap[0]
		if ix.seqs[idx].end >= horizon {
			return
		}
		ix.heapPop()
		ix.kill(idx)
	}
}

// kill removes one sequence from the aggregates. Its entries in the
// per-bucket event and candidate lists are left for lazy deletion.
func (ix *Index) kill(idx int32) {
	ix.gen++
	s := &ix.seqs[idx]
	s.dead = true
	ix.alive--
	ix.aliveSem -= len(s.ms.Semantics)
	for _, m := range s.ms.Semantics {
		if m.Event != seq.Stay {
			continue
		}
		bs := &ix.buckets[ix.keyOf(m.Start)-ix.base]
		if bs.stayStarts[m.Region]--; bs.stayStarts[m.Region] == 0 {
			delete(bs.stayStarts, m.Region)
		}
		be := &ix.buckets[ix.keyOf(m.End)-ix.base]
		if be.stayEnds[m.Region]--; be.stayEnds[m.Region] == 0 {
			delete(be.stayEnds, m.Region)
		}
	}
}

// Len returns the live sequence and semantics counts.
func (ix *Index) Len() (sequences, semantics int) {
	return ix.alive, ix.aliveSem
}

// Generation returns the content-mutation counter. It moves strictly
// forward: equal generations imply identical query answers, so it is a
// sound cache key and HTTP validator for every query over the index.
func (ix *Index) Generation() uint64 {
	return ix.gen
}

// Snapshot returns the live sequences in insertion order.
func (ix *Index) Snapshot() []seq.MSSequence {
	out := make([]seq.MSSequence, 0, ix.alive)
	for i := range ix.seqs {
		if !ix.seqs[i].dead {
			out = append(out, ix.seqs[i].ms)
		}
	}
	return out
}

// IndexState is the serialisable state of an Index: the retained live
// sequences in insertion order plus the bucket-geometry parameters and
// the eviction clock. The derived structures — the bucket ring with
// its per-region stay aggregates, the per-bucket event and candidate
// lists and the eviction min-heap — are reconstructed deterministically
// from the sequences by RestoreIndex, so a restored index answers every
// query identically to the captured one without serialising redundant
// (and lazily-deleted) internal state.
type IndexState struct {
	Retention  float64
	BaseWidth  float64
	Width      float64
	MaxEnd     float64
	HasMax     bool
	Generation uint64
	Seqs       []seq.MSSequence
}

// SnapshotState captures the index's state. The per-sequence semantics
// slices are shared with the index (append-only once stored), so the
// capture is cheap and safe against later Adds.
func (ix *Index) SnapshotState() IndexState {
	return IndexState{
		Retention:  ix.retention,
		BaseWidth:  ix.baseWidth,
		Width:      ix.width,
		MaxEnd:     ix.maxEnd,
		HasMax:     ix.hasMax,
		Generation: ix.gen,
		Seqs:       ix.Snapshot(),
	}
}

// RestoreIndex reconstructs an index from a captured state: the live
// sequences are re-indexed in their original insertion order at the
// captured bucket geometry, rebuilding the aggregates, candidate lists
// and eviction heap. Every query over the restored index answers
// identically to the same query over the captured one.
func RestoreIndex(st IndexState) (*Index, error) {
	if !(st.BaseWidth > 0) || !(st.Width >= st.BaseWidth) {
		return nil, fmt.Errorf("query: invalid index state widths (base %g, width %g)",
			st.BaseWidth, st.Width)
	}
	if math.IsNaN(st.MaxEnd) || math.IsInf(st.MaxEnd, 0) {
		return nil, fmt.Errorf("query: invalid index state maxEnd %g", st.MaxEnd)
	}
	ix := &Index{
		retention:  st.Retention,
		maxBuckets: defaultMaxBuckets,
		baseWidth:  st.BaseWidth,
		width:      st.Width,
	}
	for _, ms := range st.Seqs {
		ix.Add(ms)
	}
	// The captured eviction clock is authoritative: the replay recomputes
	// it from the live sequences (the max-end sequence is never evicted,
	// so the values agree), but restoring it explicitly keeps the horizon
	// exact even for a state captured by a future writer with different
	// eviction bookkeeping.
	if st.HasMax {
		ix.maxEnd, ix.hasMax = st.MaxEnd, st.HasMax
		ix.evict()
	}
	// The restored generation jumps past everything the captured index
	// could have published after the snapshot: the replay above left gen
	// at the live sequence count, but the dead process may have advanced
	// its counter well beyond the captured value before crashing, and any
	// of those generations may survive in remote caches (router partials,
	// client ETags). Jumping by a range no live process plausibly covers
	// between snapshots keeps those stale validators from ever matching.
	ix.gen = st.Generation + genRestoreJump
	return ix, nil
}

// GenerationJump is the headroom added whenever a store's generation
// line is spliced onto another's — a snapshot restore, or a hot model
// swap seeding the replacement engine's store past its predecessor
// (Store.SeedGeneration). Generations the old line published after the
// splice point cannot collide with generations the new line will
// publish, so stale validators (router partials, client ETags) never
// match fresh content.
const GenerationJump = uint64(1) << 32

// genRestoreJump is added to a restored index's captured generation so
// generations published by the pre-crash process after its snapshot
// cannot collide with generations the restored process will publish.
const genRestoreJump = GenerationJump

// TopKPopularRegions answers a TkPRQ over the live sequences, with
// results identical to TopKPopularRegions over Snapshot().
func (ix *Index) TopKPopularRegions(q []indoor.RegionID, w Window, k int) []RegionCount {
	if math.IsNaN(w.Start) || math.IsNaN(w.End) {
		// Window.Contains is false against NaN bounds everywhere, and
		// the prefix-sum identity below would silently miscount.
		return make([]RegionCount, 0)
	}
	if w.Start > w.End {
		// Degenerate inverted window: Window.Contains still matches
		// periods spanning [w.End, w.Start]; recount rather than
		// special-case the prefix-sum identity, which assumes order.
		return TopKPopularRegions(ix.Snapshot(), q, w, k)
	}
	qs := regionSet(q)
	counts := map[indoor.RegionID]int{}
	ix.accumulate(counts, qs, w.End, false, +1)  // +#{Start <= w.End}
	ix.accumulate(counts, qs, w.Start, true, -1) // -#{End < w.Start}
	out := make([]RegionCount, 0, len(counts))
	for r, c := range counts {
		if c > 0 {
			out = append(out, RegionCount{r, c})
		}
	}
	sortRegionCounts(out)
	return TruncateRegionCounts(out, k)
}

// accumulate adds sign * #{events with endpoint before cutoff} to
// counts, per region restricted to qs. ends selects which endpoint:
// start times compare inclusively (Start <= cutoff), end times
// strictly (End < cutoff), matching the TkPRQ identity.
func (ix *Index) accumulate(counts map[indoor.RegionID]int, qs map[indoor.RegionID]bool, cutoff float64, ends bool, sign int) {
	if len(ix.buckets) == 0 {
		return
	}
	edge := ix.cutoffBucket(cutoff)
	interior := min(edge, len(ix.buckets))
	for b := 0; b < interior; b++ {
		agg := ix.buckets[b].stayStarts
		if ends {
			agg = ix.buckets[b].stayEnds
		}
		for r, c := range agg {
			if qs[r] {
				counts[r] += sign * c
			}
		}
	}
	if edge < 0 || edge >= len(ix.buckets) {
		return
	}
	evs := ix.buckets[edge].starts
	if ends {
		evs = ix.buckets[edge].ends
	}
	for _, ev := range evs {
		if ix.seqs[ev.seq].dead || !qs[ev.region] {
			continue
		}
		if (!ends && ev.t <= cutoff) || (ends && ev.t < cutoff) {
			counts[ev.region] += sign
		}
	}
}

// cutoffBucket maps a query timestamp onto a ring position: -1 before
// the ring, len(buckets) past it, else the bucket index. Comparisons
// run in float space so an extreme cutoff (e.g. MaxFloat64) cannot
// overflow the key arithmetic.
func (ix *Index) cutoffBucket(t float64) int {
	if t < float64(ix.base)*ix.width {
		return -1
	}
	if t >= float64(ix.base+int64(len(ix.buckets)))*ix.width {
		return len(ix.buckets)
	}
	b := int(ix.keyOf(t) - ix.base)
	return min(max(b, 0), len(ix.buckets)-1)
}

// TopKFrequentPairs answers a TkFRPQ over the live sequences, with
// results identical to TopKFrequentPairs over Snapshot(). Candidates
// come from the buckets the window overlaps, so the cost follows the
// activity inside the window, not the total retained history.
func (ix *Index) TopKFrequentPairs(q []indoor.RegionID, w Window, k int) []PairCount {
	if math.IsNaN(w.Start) || math.IsNaN(w.End) {
		return make([]PairCount, 0)
	}
	if w.Start > w.End {
		return TopKFrequentPairs(ix.Snapshot(), q, w, k)
	}
	if len(ix.buckets) == 0 {
		return make([]PairCount, 0)
	}
	b0 := max(ix.cutoffBucket(w.Start), 0)
	b1 := min(ix.cutoffBucket(w.End), len(ix.buckets)-1)
	counts := map[[2]indoor.RegionID]int{}
	qs := regionSet(q)
	seen := map[int32]bool{}
	var regions []indoor.RegionID
	for b := b0; b <= b1; b++ {
		for _, idx := range ix.buckets[b].seqIDs {
			if seen[idx] || ix.seqs[idx].dead {
				continue
			}
			seen[idx] = true
			regions = regions[:0]
			for _, m := range ix.seqs[idx].ms.Semantics {
				if m.Event == seq.Stay && qs[m.Region] && w.Contains(m) && !containsRegion(regions, m.Region) {
					regions = append(regions, m.Region)
				}
			}
			sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
			for i := 0; i < len(regions); i++ {
				for j := i + 1; j < len(regions); j++ {
					counts[[2]indoor.RegionID{regions[i], regions[j]}]++
				}
			}
		}
	}
	out := make([]PairCount, 0, len(counts))
	for p, c := range counts {
		out = append(out, PairCount{p[0], p[1], c})
	}
	sortPairCounts(out)
	return TruncatePairCounts(out, k)
}

func containsRegion(rs []indoor.RegionID, r indoor.RegionID) bool {
	for _, x := range rs {
		if x == r {
			return true
		}
	}
	return false
}

// heapPush / heapPop maintain the eviction min-heap on sequence end.

func (ix *Index) heapPush(idx int32) {
	ix.heap = append(ix.heap, idx)
	i := len(ix.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if ix.seqs[ix.heap[parent]].end <= ix.seqs[ix.heap[i]].end {
			break
		}
		ix.heap[parent], ix.heap[i] = ix.heap[i], ix.heap[parent]
		i = parent
	}
}

func (ix *Index) heapPop() {
	n := len(ix.heap) - 1
	ix.heap[0] = ix.heap[n]
	ix.heap = ix.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && ix.seqs[ix.heap[l]].end < ix.seqs[ix.heap[least]].end {
			least = l
		}
		if r < n && ix.seqs[ix.heap[r]].end < ix.seqs[ix.heap[least]].end {
			least = r
		}
		if least == i {
			return
		}
		ix.heap[i], ix.heap[least] = ix.heap[least], ix.heap[i]
		i = least
	}
}
