package query

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"c2mn/internal/indoor"
)

// answersJSON serialises a query answer pair so two indexes can be
// compared for byte equality, not just structural equality.
func answersJSON(t *testing.T, ix *Index, q []indoor.RegionID, w Window, k int) []byte {
	t.Helper()
	buf, err := json.Marshal(struct {
		Regions []RegionCount
		Pairs   []PairCount
	}{ix.TopKPopularRegions(q, w, k), ix.TopKFrequentPairs(q, w, k)})
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestIndexSnapshotRestoreProperty is the snapshot-exactness property:
// across random add/evict workloads, an index restored from
// SnapshotState answers every query byte-equal to the live index it
// was captured from — and keeps doing so as both continue to ingest
// the same stream.
func TestIndexSnapshotRestoreProperty(t *testing.T) {
	allRegions := make([]indoor.RegionID, 10)
	for i := range allRegions {
		allRegions[i] = indoor.RegionID(i)
	}
	cases := []struct {
		name      string
		retention float64
		lo, hi    float64
	}{
		{"unbounded", 0, 0, 2000},
		{"windowed", 300, 0, 2000},
		{"tight-window", 40, 0, 2000},
		{"negative-times", 250, -5000, 1000},
		{"wide-span-coarsens", 0, 0, 500000},
		{"wide-span-windowed", 20000, 0, 500000},
	}
	for ci, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(500 + ci)))
			live := NewIndex(tc.retention)
			// restored tracks the most recent snapshot, re-fed with the
			// records added since; nil until the first capture.
			var restored *Index
			for i := 0; i < 400; i++ {
				ms := randomMS(rng, i, tc.lo, tc.hi)
				live.Add(ms)
				if restored != nil {
					restored.Add(ms)
				}
				if i%37 == 0 {
					// Re-capture: restore must reproduce the live index at an
					// arbitrary point of the workload, heap and eviction state
					// included.
					st := live.SnapshotState()
					var err error
					restored, err = RestoreIndex(st)
					if err != nil {
						t.Fatalf("step %d: RestoreIndex: %v", i, err)
					}
					ls, lsem := live.Len()
					rs, rsem := restored.Len()
					if ls != rs || lsem != rsem {
						t.Fatalf("step %d: restored Len = (%d, %d), live (%d, %d)", i, rs, rsem, ls, lsem)
					}
					if !reflect.DeepEqual(restored.Snapshot(), live.Snapshot()) {
						t.Fatalf("step %d: restored Snapshot diverges from live", i)
					}
				}
				if i%5 != 0 || restored == nil {
					continue
				}
				a := tc.lo + rng.Float64()*(tc.hi-tc.lo)
				b := tc.lo + rng.Float64()*(tc.hi-tc.lo)
				w := Window{Start: min(a, b), End: max(a, b)}
				q := allRegions
				if rng.Intn(2) == 0 {
					q = allRegions[:1+rng.Intn(len(allRegions))]
				}
				k := 1 + rng.Intn(6)
				got := answersJSON(t, restored, q, w, k)
				want := answersJSON(t, live, q, w, k)
				if string(got) != string(want) {
					t.Fatalf("step %d: restored answers (%v, %v, k=%d)\n got %s\nwant %s",
						i, q, w, k, got, want)
				}
			}
		})
	}
}

// TestRestoreIndexRejectsInvalidState pins the typed rejection of
// nonsense geometry instead of a panic or a silently-wrong index.
func TestRestoreIndexRejectsInvalidState(t *testing.T) {
	good := NewIndex(100).SnapshotState()
	bad := []IndexState{
		{},                        // zero widths
		{BaseWidth: -1, Width: 1}, // negative base
		{BaseWidth: 4, Width: 2},  // width below base
		{BaseWidth: 1, Width: 1, MaxEnd: nan(), HasMax: true}, // NaN clock
	}
	for i, st := range bad {
		if _, err := RestoreIndex(st); err == nil {
			t.Fatalf("bad state %d accepted", i)
		}
	}
	if _, err := RestoreIndex(good); err != nil {
		t.Fatalf("valid empty state rejected: %v", err)
	}
}

func nan() float64 {
	var z float64
	return z / z
}

// TestStoreSnapshotRestoreRoundTrip drives the same property through
// the locked Store surface.
func TestStoreSnapshotRestoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewStore(500)
	for i := 0; i < 100; i++ {
		s.Add(randomMS(rng, i, 0, 3000))
	}
	fresh := NewStore(0)
	if err := fresh.RestoreState(s.SnapshotState()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.Snapshot(), s.Snapshot()) {
		t.Fatal("restored store contents diverge")
	}
	q := []indoor.RegionID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	w := Window{Start: 0, End: 3000}
	if !reflect.DeepEqual(fresh.TopKPopularRegions(q, w, 5), s.TopKPopularRegions(q, w, 5)) {
		t.Fatal("restored store TkPRQ diverges")
	}
	// The restored store adopted the snapshot's retention: continued
	// ingestion keeps evicting identically.
	for i := 100; i < 160; i++ {
		ms := randomMS(rng, i, 2000, 6000)
		s.Add(ms)
		fresh.Add(ms)
	}
	if !reflect.DeepEqual(fresh.Snapshot(), s.Snapshot()) {
		t.Fatal("post-restore ingestion diverges")
	}
}
