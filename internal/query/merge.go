package query

import (
	"math"
	"sort"

	"c2mn/internal/indoor"
)

// AllCounts, passed as k, disables top-k truncation: the query returns
// the full count list, the form a cross-shard merge needs.
const AllCounts = math.MaxInt

// Cross-shard merging. A fleet-scoped query fans out to per-venue
// stores, collects each shard's untruncated counts, and merges them
// here. The merge is exact because the partials are full counts, not
// per-shard top-k lists: a region ranked k+1 in every shard can still
// win the merged ranking, which a merge of truncated lists would miss.
//
// All ranked count lists in this package share one canonical order —
// count descending, ties broken by region ID(s) ascending — so merged
// and single-shard answers compare (and concatenate across pages)
// deterministically.

// SortRegionCounts orders a count list canonically: count descending,
// ties broken by region ID ascending. The change-feed fold
// (internal/notify) re-sorts answers it reassembles from deltas with
// this, so folded and freshly-computed answers compare byte-for-byte.
func SortRegionCounts(out []RegionCount) { sortRegionCounts(out) }

// SortPairCounts orders a pair-count list canonically.
func SortPairCounts(out []PairCount) { sortPairCounts(out) }

// sortRegionCounts orders a count list canonically.
func sortRegionCounts(out []RegionCount) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Region < out[j].Region
	})
}

// sortPairCounts orders a pair-count list canonically.
func sortPairCounts(out []PairCount) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
}

// TruncateRegionCounts caps a canonically-ordered count list at k
// entries. k <= 0 yields an empty list; a nil input stays nil.
func TruncateRegionCounts(rcs []RegionCount, k int) []RegionCount {
	if rcs == nil {
		return nil
	}
	if k < 0 {
		k = 0
	}
	if len(rcs) > k {
		rcs = rcs[:k]
	}
	return rcs
}

// TruncatePairCounts caps a canonically-ordered pair-count list at k
// entries. k <= 0 yields an empty list; a nil input stays nil.
func TruncatePairCounts(pcs []PairCount, k int) []PairCount {
	if pcs == nil {
		return nil
	}
	if k < 0 {
		k = 0
	}
	if len(pcs) > k {
		pcs = pcs[:k]
	}
	return pcs
}

// MergeRegionCounts sums per-shard region counts exactly — the inputs
// must be untruncated — and returns the merged counts in canonical
// order. Region IDs are merged by value: fleet queries assume a shared
// region ID namespace across venues (the per-venue breakdown is the
// disambiguated view).
func MergeRegionCounts(lists ...[]RegionCount) []RegionCount {
	if len(lists) == 1 {
		return lists[0]
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	counts := make(map[indoor.RegionID]int, total)
	for _, l := range lists {
		for _, rc := range l {
			counts[rc.Region] += rc.Count
		}
	}
	out := make([]RegionCount, 0, len(counts))
	for r, c := range counts {
		out = append(out, RegionCount{Region: r, Count: c})
	}
	sortRegionCounts(out)
	return out
}

// MergePairCounts is the pair analogue of MergeRegionCounts.
func MergePairCounts(lists ...[]PairCount) []PairCount {
	if len(lists) == 1 {
		return lists[0]
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	counts := make(map[[2]indoor.RegionID]int, total)
	for _, l := range lists {
		for _, pc := range l {
			counts[[2]indoor.RegionID{pc.A, pc.B}] += pc.Count
		}
	}
	out := make([]PairCount, 0, len(counts))
	for p, c := range counts {
		out = append(out, PairCount{A: p[0], B: p[1], Count: c})
	}
	sortPairCounts(out)
	return out
}
