package notify

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"c2mn/internal/indoor"
	"c2mn/internal/query"
)

func drain(t *testing.T, s *Sub) (map[string]uint64, bool) {
	t.Helper()
	select {
	case <-s.Ready():
	default:
		t.Fatal("subscription has no ready signal")
	}
	return s.Take()
}

func TestHubVenueScopedDelivery(t *testing.T) {
	h := NewHub()
	s := h.Subscribe([]string{"a", "b"}, 0)
	defer s.Close()

	h.Publish("a", 3)
	h.Publish("c", 9) // not subscribed: must not appear
	h.Publish("b", 1)

	pending, resync := drain(t, s)
	if resync {
		t.Fatal("unexpected resync")
	}
	if want := map[string]uint64{"a": 3, "b": 1}; !reflect.DeepEqual(pending, want) {
		t.Fatalf("pending = %v, want %v", pending, want)
	}
	select {
	case <-s.Ready():
		t.Fatal("ready signal left over after Take")
	default:
	}
}

func TestHubCoalescesToHighestGeneration(t *testing.T) {
	h := NewHub()
	s := h.Subscribe([]string{"a"}, 0)
	defer s.Close()

	// Out-of-order arrival (concurrent publishers can interleave): the
	// pending map must keep the maximum, not the latest.
	h.Publish("a", 5)
	h.Publish("a", 2)
	h.Publish("a", 7)
	h.Publish("a", 6)

	pending, resync := drain(t, s)
	if resync || pending["a"] != 7 {
		t.Fatalf("pending = %v resync = %v, want a:7 and no resync", pending, resync)
	}
}

func TestHubOverflowFlipsToResync(t *testing.T) {
	h := NewHub()
	s := h.Subscribe(nil, 2) // wildcard, tiny bound
	defer s.Close()

	h.Publish("a", 1)
	h.Publish("b", 1)
	h.Publish("c", 1) // third distinct venue overflows the bound of 2

	pending, resync := drain(t, s)
	if !resync {
		t.Fatalf("pending = %v, want resync after overflow", pending)
	}
	if len(pending) != 2 {
		t.Fatalf("pending kept %d venues, want the 2 that fit", len(pending))
	}

	// A signal for an already-pended venue coalesces and must NOT
	// overflow even at the bound.
	h.Publish("a", 1)
	h.Publish("b", 2)
	h.Publish("a", 3)
	pending, resync = drain(t, s)
	if resync {
		t.Fatal("coalescing signal at the bound must not force a resync")
	}
	if pending["a"] != 3 || pending["b"] != 2 {
		t.Fatalf("pending = %v", pending)
	}
}

func TestHubInvalidate(t *testing.T) {
	h := NewHub()
	scoped := h.Subscribe([]string{"a"}, 0)
	defer scoped.Close()
	other := h.Subscribe([]string{"b"}, 0)
	defer other.Close()
	wild := h.Subscribe(nil, 0)
	defer wild.Close()

	h.Invalidate("a")
	if _, resync := drain(t, scoped); !resync {
		t.Fatal("scoped subscription covering the venue must resync")
	}
	if _, resync := drain(t, wild); !resync {
		t.Fatal("wildcard subscription must resync")
	}
	select {
	case <-other.Ready():
		t.Fatal("subscription not covering the venue was signalled")
	default:
	}
}

func TestHubWildcardSeesVenuesLoadedLater(t *testing.T) {
	h := NewHub()
	s := h.Subscribe(nil, 0)
	defer s.Close()

	// "later" is any venue the hub has never seen before this publish.
	h.Publish("fresh", 1)
	pending, _ := drain(t, s)
	if pending["fresh"] != 1 {
		t.Fatalf("pending = %v, want fresh:1", pending)
	}
}

func TestHubCloseStopsDeliveryAndIsIdempotent(t *testing.T) {
	h := NewHub()
	s := h.Subscribe([]string{"a"}, 0)
	if got := h.Subscribers(); got != 1 {
		t.Fatalf("Subscribers() = %d, want 1", got)
	}
	s.Close()
	s.Close()
	if got := h.Subscribers(); got != 0 {
		t.Fatalf("Subscribers() after Close = %d, want 0", got)
	}
	h.Publish("a", 1)
	select {
	case <-s.Ready():
		t.Fatal("closed subscription was signalled")
	default:
	}
}

func TestHubPublishConcurrent(t *testing.T) {
	h := NewHub()
	s := h.Subscribe(nil, 0)
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= 100; i++ {
				h.Publish("v", uint64(i))
			}
		}(g)
	}
	wg.Wait()
	pending, resync := drain(t, s)
	if resync || pending["v"] != 100 {
		t.Fatalf("pending = %v resync = %v, want v:100", pending, resync)
	}
}

func randomAnswer(rng *rand.Rand) Answer {
	a := Answer{Kind: "popular-regions"}
	seenR := map[indoor.RegionID]bool{}
	for i, n := 0, rng.Intn(8); i < n; i++ {
		id := indoor.RegionID(rng.Intn(10))
		if seenR[id] {
			continue
		}
		seenR[id] = true
		a.Regions = append(a.Regions, query.RegionCount{Region: id, Count: 1 + rng.Intn(50)})
	}
	query.SortRegionCounts(a.Regions)
	seenP := map[[2]indoor.RegionID]bool{}
	for i, n := 0, rng.Intn(8); i < n; i++ {
		k := [2]indoor.RegionID{indoor.RegionID(rng.Intn(6)), indoor.RegionID(rng.Intn(6))}
		if k[0] > k[1] {
			k[0], k[1] = k[1], k[0]
		}
		if seenP[k] {
			continue
		}
		seenP[k] = true
		a.Pairs = append(a.Pairs, query.PairCount{A: k[0], B: k[1], Count: 1 + rng.Intn(50)})
	}
	query.SortPairCounts(a.Pairs)
	return a
}

func answersEqual(a, b Answer) bool {
	if len(a.Regions) != len(b.Regions) || len(a.Pairs) != len(b.Pairs) {
		return false
	}
	for i := range a.Regions {
		if a.Regions[i] != b.Regions[i] {
			return false
		}
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			return false
		}
	}
	return true
}

// TestDiffApplyRoundTrip is the folding exactness property the whole
// delta schema rests on: for any pair of answers,
// Apply(prev, Diff(prev, next)) reproduces next row-for-row.
func TestDiffApplyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		prev, next := randomAnswer(rng), randomAnswer(rng)
		d := Diff(prev, next)
		if folded := Apply(prev, d); !answersEqual(folded, next) {
			t.Fatalf("case %d:\nprev = %+v\nnext = %+v\ndelta = %+v\nfolded = %+v", i, prev, next, d, folded)
		}
		if got := Diff(prev, prev); !got.Empty() {
			t.Fatalf("Diff(a, a) = %+v, want empty", got)
		}
	}
}

func TestDiffClassifiesRows(t *testing.T) {
	prev := Answer{Regions: []query.RegionCount{{Region: 1, Count: 10}, {Region: 2, Count: 5}}}
	next := Answer{Regions: []query.RegionCount{{Region: 1, Count: 12}, {Region: 3, Count: 4}}}
	d := Diff(prev, next)
	if len(d.Entered) != 1 || d.Entered[0].Region != 3 {
		t.Fatalf("entered = %+v", d.Entered)
	}
	if len(d.Changed) != 1 || d.Changed[0] != (query.RegionCount{Region: 1, Count: 12}) {
		t.Fatalf("changed = %+v", d.Changed)
	}
	// Left rows carry the last pushed count for display.
	if len(d.Left) != 1 || d.Left[0] != (query.RegionCount{Region: 2, Count: 5}) {
		t.Fatalf("left = %+v", d.Left)
	}
}

func TestEventIDRoundTrip(t *testing.T) {
	cases := []map[string]uint64{
		{},
		{"a": 0},
		{"north": 7, "south": 12},
		{"with:colon": 1, "with;semi": 2, "with%percent": 3, "plain": 4},
	}
	for _, gens := range cases {
		id := EncodeEventID(gens)
		got, ok := ParseEventID(id)
		if !ok || !reflect.DeepEqual(got, gens) {
			t.Fatalf("roundtrip %v -> %q -> %v ok=%v", gens, id, got, ok)
		}
	}
	if id := EncodeEventID(map[string]uint64{"b": 2, "a": 1}); id != "a:1;b:2" {
		t.Fatalf("composite not venue-sorted: %q", id)
	}
	if VenueEventID("north", 7) != EncodeEventID(map[string]uint64{"north": 7}) {
		t.Fatal("VenueEventID disagrees with the single-venue composite")
	}
	for _, bad := range []string{"noclosestructure", "a:1;a:2", "a:notanumber", "%zz:1"} {
		if _, ok := ParseEventID(bad); ok {
			t.Fatalf("ParseEventID(%q) accepted a malformed id", bad)
		}
	}
}

func TestSSEWriterReaderRoundTrip(t *testing.T) {
	rec := httptest.NewRecorder()
	sw, err := NewSSEWriter(rec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("Cache-Control = %q, want no-store", cc)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}

	if err := sw.Event("snapshot", "a:1", SnapshotData{Kind: "popular-regions", K: 3, Scanned: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Comment("hb"); err != nil {
		t.Fatal(err)
	}
	if err := sw.Event("delta", "a:2", DeltaData{Kind: "popular-regions",
		Entered: []query.RegionCount{{Region: 4, Count: 9}}}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Event("goodbye", "", GoodbyeData{Reason: ReasonDraining}); err != nil {
		t.Fatal(err)
	}

	er := NewEventReader(bytes.NewReader(rec.Body.Bytes()))
	ev, err := er.Next()
	if err != nil || ev.Name != "snapshot" || ev.ID != "a:1" {
		t.Fatalf("first event = %+v err = %v", ev, err)
	}
	var snap SnapshotData
	if err := json.Unmarshal(ev.Data, &snap); err != nil || snap.K != 3 {
		t.Fatalf("snapshot payload %s: %v", ev.Data, err)
	}
	ev, err = er.Next()
	if err != nil || !ev.IsComment() || string(ev.Data) != "hb" {
		t.Fatalf("heartbeat = %+v err = %v", ev, err)
	}
	ev, err = er.Next()
	if err != nil || ev.Name != "delta" || ev.ID != "a:2" {
		t.Fatalf("delta event = %+v err = %v", ev, err)
	}
	// The goodbye has no id: the spec's sticky last-event-ID applies.
	ev, err = er.Next()
	if err != nil || ev.Name != "goodbye" || ev.ID != "a:2" {
		t.Fatalf("goodbye event = %+v err = %v (want sticky id a:2)", ev, err)
	}
	if _, err := er.Next(); err != io.EOF {
		t.Fatalf("stream end = %v, want io.EOF", err)
	}
}

// The SSE spec allows comment lines anywhere, including inside an event
// block. A heartbeat interleaved mid-event must dispatch immediately
// without discarding the fields accumulated so far.
func TestEventReaderCommentMidEvent(t *testing.T) {
	const stream = "event: delta\n: hb\nid: a:3\ndata: {\"kind\":\"popular-regions\"}\n\n"
	er := NewEventReader(strings.NewReader(stream))
	ev, err := er.Next()
	if err != nil || !ev.IsComment() || string(ev.Data) != "hb" {
		t.Fatalf("first event = %+v err = %v, want the interleaved comment", ev, err)
	}
	ev, err = er.Next()
	if err != nil || ev.Name != "delta" || ev.ID != "a:3" || string(ev.Data) != `{"kind":"popular-regions"}` {
		t.Fatalf("after comment: event = %+v err = %v, want the intact delta", ev, err)
	}
	if _, err := er.Next(); err != io.EOF {
		t.Fatalf("stream end = %v, want io.EOF", err)
	}
}

// Multi-line data split around a comment must still join per the spec.
func TestEventReaderCommentBetweenDataLines(t *testing.T) {
	const stream = "data: first\n: keepalive\ndata: second\n\n"
	er := NewEventReader(strings.NewReader(stream))
	if ev, err := er.Next(); err != nil || !ev.IsComment() {
		t.Fatalf("first event = %+v err = %v, want comment", ev, err)
	}
	ev, err := er.Next()
	if err != nil || string(ev.Data) != "first\nsecond" {
		t.Fatalf("event = %+v err = %v, want joined data lines", ev, err)
	}
}

// noFlushWriter is a ResponseWriter that cannot stream: no Flush, no
// Unwrap. It records whether the response was ever committed.
type noFlushWriter struct {
	header http.Header
	wrote  bool
}

func (w *noFlushWriter) Header() http.Header {
	if w.header == nil {
		w.header = http.Header{}
	}
	return w.header
}
func (w *noFlushWriter) Write([]byte) (int, error) { w.wrote = true; return 0, nil }
func (w *noFlushWriter) WriteHeader(int)           { w.wrote = true }

// A ResponseWriter that cannot flush must be rejected before anything
// is written, so the handler can still send a clean error response
// instead of appending it to a committed 200 text/event-stream.
func TestNewSSEWriterNotFlushableLeavesResponseUntouched(t *testing.T) {
	w := &noFlushWriter{}
	if _, err := NewSSEWriter(w, 0); !errors.Is(err, ErrNotFlushable) {
		t.Fatalf("NewSSEWriter = %v, want ErrNotFlushable", err)
	}
	if w.wrote {
		t.Fatal("NewSSEWriter committed the response before discovering it cannot stream")
	}
	if ct := w.Header().Get("Content-Type"); ct != "" {
		t.Fatalf("NewSSEWriter set Content-Type %q on a rejected writer", ct)
	}
}

// unwrapWriter hides the flusher one Unwrap level down, the shape of
// middleware wrappers that implement the ResponseController protocol.
type unwrapWriter struct{ inner http.ResponseWriter }

func (w unwrapWriter) Header() http.Header         { return w.inner.Header() }
func (w unwrapWriter) Write(p []byte) (int, error) { return w.inner.Write(p) }
func (w unwrapWriter) WriteHeader(code int)        { w.inner.WriteHeader(code) }
func (w unwrapWriter) Unwrap() http.ResponseWriter { return w.inner }

func TestNewSSEWriterFlushesThroughUnwrapChain(t *testing.T) {
	rec := httptest.NewRecorder()
	sw, err := NewSSEWriter(unwrapWriter{inner: rec}, 0)
	if err != nil {
		t.Fatalf("NewSSEWriter through an Unwrap chain: %v", err)
	}
	if err := sw.Comment("hb"); err != nil {
		t.Fatal(err)
	}
	if rec.Body.String() != ": hb\n" {
		t.Fatalf("body = %q", rec.Body.String())
	}
}
