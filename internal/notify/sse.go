package notify

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// SSE framing. The writer emits exactly the subset of the EventSource
// wire format the watch plane needs — named events with an id and one
// JSON data line, plus comment heartbeats — and flushes after every
// frame so events cross proxies immediately. The reader parses the
// same subset (multi-line data is still joined per the spec, and ids
// are sticky, so the reader is a well-behaved general client).

// ErrNotFlushable is returned by NewSSEWriter when the ResponseWriter
// cannot stream (no http.Flusher anywhere in its chain).
var ErrNotFlushable = errors.New("notify: response writer cannot stream (no flusher)")

// SSEWriter writes server-sent events to an HTTP response. Not safe for
// concurrent use; the watch handlers are single-writer by construction.
type SSEWriter struct {
	w            http.ResponseWriter
	rc           *http.ResponseController
	writeTimeout time.Duration
}

// NewSSEWriter prepares a streaming response: sets the event-stream
// headers (including Cache-Control: no-store — a change feed must never
// be served stale by an intermediary), writes the 200, and flushes the
// header frame. writeTimeout, when positive, bounds every subsequent
// frame write so one wedged client cannot pin the handler goroutine
// past its heartbeat cadence.
//
// Flush support is probed before anything is written: on
// ErrNotFlushable the response is untouched, so the caller can still
// send a clean error status instead of appending a JSON body to an
// already-committed 200 text/event-stream response.
func NewSSEWriter(w http.ResponseWriter, writeTimeout time.Duration) (*SSEWriter, error) {
	if !canFlush(w) {
		return nil, ErrNotFlushable
	}
	rc := http.NewResponseController(w)
	sw := &SSEWriter{w: w, rc: rc, writeTimeout: writeTimeout}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream; charset=utf-8")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no") // tell buffering reverse proxies to pass frames through
	w.WriteHeader(http.StatusOK)
	if err := sw.flush(); err != nil {
		if errors.Is(err, http.ErrNotSupported) {
			return nil, ErrNotFlushable
		}
		return nil, err
	}
	return sw, nil
}

// canFlush reports whether w can stream, walking the same Unwrap chain
// http.ResponseController.Flush would, without committing the response
// the way an actual Flush does.
func canFlush(w http.ResponseWriter) bool {
	for {
		switch t := w.(type) {
		case http.Flusher:
			return true
		case interface{ Unwrap() http.ResponseWriter }:
			w = t.Unwrap()
		default:
			return false
		}
	}
}

func (sw *SSEWriter) flush() error {
	return sw.rc.Flush()
}

func (sw *SSEWriter) armDeadline() {
	if sw.writeTimeout <= 0 {
		return
	}
	// Not every ResponseWriter supports per-write deadlines (recorders in
	// tests don't); streaming without them is still correct, just less
	// defensive, so the error is deliberately dropped.
	_ = sw.rc.SetWriteDeadline(time.Now().Add(sw.writeTimeout))
}

// Event writes one named event. id may be empty (the field is omitted);
// data is JSON-encoded onto a single data: line.
func (sw *SSEWriter) Event(name, id string, data any) error {
	payload, err := json.Marshal(data)
	if err != nil {
		return err
	}
	sw.armDeadline()
	var b strings.Builder
	b.WriteString("event: ")
	b.WriteString(name)
	b.WriteByte('\n')
	if id != "" {
		b.WriteString("id: ")
		b.WriteString(id)
		b.WriteByte('\n')
	}
	b.WriteString("data: ")
	b.Write(payload)
	b.WriteString("\n\n")
	if _, err := io.WriteString(sw.w, b.String()); err != nil {
		return err
	}
	return sw.flush()
}

// Comment writes a comment frame — the heartbeat. Comments are invisible
// to EventSource consumers but keep idle connections alive through
// proxies and let the server detect dead peers via write errors.
func (sw *SSEWriter) Comment(text string) error {
	sw.armDeadline()
	if _, err := fmt.Fprintf(sw.w, ": %s\n", text); err != nil {
		return err
	}
	return sw.flush()
}

// Event is one parsed server-sent event. Comment frames surface with
// Name == "" and Data holding the comment text, so transports layered
// on the reader (the router's upstream subscriptions, msload's lag
// probes) can observe heartbeats; data-bearing events always carry an
// explicit Name.
type Event struct {
	Name string
	ID   string
	Data []byte
}

// IsComment reports whether the event is a comment/heartbeat frame.
func (e Event) IsComment() bool { return e.Name == "" && e.ID == "" }

// EventReader incrementally parses an SSE byte stream.
type EventReader struct {
	br *bufio.Reader
	// lastID implements the spec's sticky last-event-ID: an event without
	// an id: field inherits the stream's previous one.
	lastID string
	// Partially accumulated event fields. They live on the reader, not
	// the stack of Next, because the spec allows comment lines anywhere —
	// including inside an event block — and Next dispatches comments
	// immediately: the in-progress event must survive that early return
	// and resume on the following call.
	name    string
	id      string
	idSet   bool
	data    []string
	sawData bool
}

// NewEventReader wraps a response body (or any stream) for parsing.
func NewEventReader(r io.Reader) *EventReader {
	return &EventReader{br: bufio.NewReader(r)}
}

// Next returns the next event, blocking until one is complete. Comment
// frames are returned as Event{Data: text} (see Event.IsComment) the
// moment they arrive, without waiting for a blank line, so heartbeat
// observation has no extra latency; a comment interleaved mid-event
// does not disturb the fields accumulated so far. io.EOF surfaces when
// the stream ends cleanly.
func (er *EventReader) Next() (Event, error) {
	for {
		line, err := er.br.ReadString('\n')
		if err != nil {
			// A partial final line cannot complete an event; treat any end
			// of stream as EOF for the caller's reconnect logic.
			if err == io.EOF && len(line) > 0 {
				err = io.ErrUnexpectedEOF
			}
			return Event{}, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if !er.sawData && er.name == "" {
				continue // stray blank line between events
			}
			id := er.lastID
			if er.idSet {
				id = er.id
			}
			er.lastID = id
			ev := Event{Name: er.name, ID: id, Data: []byte(strings.Join(er.data, "\n"))}
			er.name, er.id, er.idSet, er.data, er.sawData = "", "", false, nil, false
			return ev, nil
		case strings.HasPrefix(line, ":"):
			return Event{Data: []byte(strings.TrimPrefix(strings.TrimPrefix(line, ":"), " "))}, nil
		case strings.HasPrefix(line, "event:"):
			er.name = strings.TrimPrefix(strings.TrimPrefix(line, "event:"), " ")
		case strings.HasPrefix(line, "id:"):
			er.id = strings.TrimPrefix(strings.TrimPrefix(line, "id:"), " ")
			er.idSet = true
		case strings.HasPrefix(line, "data:"):
			er.data = append(er.data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
			er.sawData = true
		default:
			// Unknown field: ignored per the spec.
		}
	}
}
