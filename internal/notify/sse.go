package notify

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// SSE framing. The writer emits exactly the subset of the EventSource
// wire format the watch plane needs — named events with an id and one
// JSON data line, plus comment heartbeats — and flushes after every
// frame so events cross proxies immediately. The reader parses the
// same subset (multi-line data is still joined per the spec, and ids
// are sticky, so the reader is a well-behaved general client).

// ErrNotFlushable is returned by NewSSEWriter when the ResponseWriter
// cannot stream (no http.Flusher anywhere in its chain).
var ErrNotFlushable = errors.New("notify: response writer cannot stream (no flusher)")

// SSEWriter writes server-sent events to an HTTP response. Not safe for
// concurrent use; the watch handlers are single-writer by construction.
type SSEWriter struct {
	w            http.ResponseWriter
	rc           *http.ResponseController
	writeTimeout time.Duration
}

// NewSSEWriter prepares a streaming response: sets the event-stream
// headers (including Cache-Control: no-store — a change feed must never
// be served stale by an intermediary), writes the 200, and flushes the
// header frame. writeTimeout, when positive, bounds every subsequent
// frame write so one wedged client cannot pin the handler goroutine
// past its heartbeat cadence.
func NewSSEWriter(w http.ResponseWriter, writeTimeout time.Duration) (*SSEWriter, error) {
	rc := http.NewResponseController(w)
	sw := &SSEWriter{w: w, rc: rc, writeTimeout: writeTimeout}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream; charset=utf-8")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no") // tell buffering reverse proxies to pass frames through
	w.WriteHeader(http.StatusOK)
	if err := sw.flush(); err != nil {
		if errors.Is(err, http.ErrNotSupported) {
			return nil, ErrNotFlushable
		}
		return nil, err
	}
	return sw, nil
}

func (sw *SSEWriter) flush() error {
	return sw.rc.Flush()
}

func (sw *SSEWriter) armDeadline() {
	if sw.writeTimeout <= 0 {
		return
	}
	// Not every ResponseWriter supports per-write deadlines (recorders in
	// tests don't); streaming without them is still correct, just less
	// defensive, so the error is deliberately dropped.
	_ = sw.rc.SetWriteDeadline(time.Now().Add(sw.writeTimeout))
}

// Event writes one named event. id may be empty (the field is omitted);
// data is JSON-encoded onto a single data: line.
func (sw *SSEWriter) Event(name, id string, data any) error {
	payload, err := json.Marshal(data)
	if err != nil {
		return err
	}
	sw.armDeadline()
	var b strings.Builder
	b.WriteString("event: ")
	b.WriteString(name)
	b.WriteByte('\n')
	if id != "" {
		b.WriteString("id: ")
		b.WriteString(id)
		b.WriteByte('\n')
	}
	b.WriteString("data: ")
	b.Write(payload)
	b.WriteString("\n\n")
	if _, err := io.WriteString(sw.w, b.String()); err != nil {
		return err
	}
	return sw.flush()
}

// Comment writes a comment frame — the heartbeat. Comments are invisible
// to EventSource consumers but keep idle connections alive through
// proxies and let the server detect dead peers via write errors.
func (sw *SSEWriter) Comment(text string) error {
	sw.armDeadline()
	if _, err := fmt.Fprintf(sw.w, ": %s\n", text); err != nil {
		return err
	}
	return sw.flush()
}

// Event is one parsed server-sent event. Comment frames surface with
// Name == "" and Data holding the comment text, so transports layered
// on the reader (the router's upstream subscriptions, msload's lag
// probes) can observe heartbeats; data-bearing events always carry an
// explicit Name.
type Event struct {
	Name string
	ID   string
	Data []byte
}

// IsComment reports whether the event is a comment/heartbeat frame.
func (e Event) IsComment() bool { return e.Name == "" && e.ID == "" }

// EventReader incrementally parses an SSE byte stream.
type EventReader struct {
	br *bufio.Reader
	// lastID implements the spec's sticky last-event-ID: an event without
	// an id: field inherits the stream's previous one.
	lastID string
}

// NewEventReader wraps a response body (or any stream) for parsing.
func NewEventReader(r io.Reader) *EventReader {
	return &EventReader{br: bufio.NewReader(r)}
}

// Next returns the next event, blocking until one is complete. Comment
// frames are returned as Event{Data: text} (see Event.IsComment) the
// moment they arrive, without waiting for a blank line, so heartbeat
// observation has no extra latency. io.EOF surfaces when the stream
// ends cleanly.
func (er *EventReader) Next() (Event, error) {
	var (
		name    string
		id      = er.lastID
		data    []string
		sawData bool
	)
	for {
		line, err := er.br.ReadString('\n')
		if err != nil {
			// A partial final line cannot complete an event; treat any end
			// of stream as EOF for the caller's reconnect logic.
			if err == io.EOF && len(line) > 0 {
				err = io.ErrUnexpectedEOF
			}
			return Event{}, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if !sawData && name == "" {
				continue // stray blank line between events
			}
			er.lastID = id
			return Event{Name: name, ID: id, Data: []byte(strings.Join(data, "\n"))}, nil
		case strings.HasPrefix(line, ":"):
			return Event{Data: []byte(strings.TrimPrefix(strings.TrimPrefix(line, ":"), " "))}, nil
		case strings.HasPrefix(line, "event:"):
			name = strings.TrimPrefix(strings.TrimPrefix(line, "event:"), " ")
		case strings.HasPrefix(line, "id:"):
			id = strings.TrimPrefix(strings.TrimPrefix(line, "id:"), " ")
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
			sawData = true
		default:
			// Unknown field: ignored per the spec.
		}
	}
}
