// Package notify is the continuous-query push plane's fan-out core: a
// per-venue change-feed hub driven by the query store's generation
// counter, plus the wire schema (snapshot / delta / resync / goodbye
// events), the composite-generation event IDs that make Last-Event-ID
// reconnects exact, and a minimal SSE writer/reader pair shared by
// msserve, msrouter, msload and the examples.
//
// The hub deliberately transports *signals*, not data: a subscriber
// learns "venue V moved past generation G", never the write itself.
// Publishers (the store's OnChange callback, on the feed path) must
// never block, so each subscription coalesces bursts into its pending
// map and drops to a resync marker when the map outgrows its bound —
// the subscriber then re-executes its standing query from scratch,
// which is always sound because equal generations imply byte-identical
// answers.
package notify

import "sync"

// DefaultPending bounds a subscription's pending-venue map when the
// subscriber passes no explicit bound. A venue-scoped watch pends at
// most a handful of venues; only fleet watches over very wide
// registries approach the bound, and overflowing to a resync is cheap
// there (one fleet re-execution, which the watch loop was about to do
// anyway).
const DefaultPending = 64

// Hub fans venue change signals out to subscriptions. One hub serves a
// whole process (all venues of a registry); its lock is held only for
// map bookkeeping, never while executing queries or writing to sockets.
type Hub struct {
	mu     sync.Mutex
	venues map[string]map[*Sub]struct{}
	all    map[*Sub]struct{}
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{
		venues: make(map[string]map[*Sub]struct{}),
		all:    make(map[*Sub]struct{}),
	}
}

// Sub is one subscription. The owning goroutine waits on Ready and
// drains with Take; the hub side only ever signals, so a slow or stuck
// subscriber cannot hold up a publisher.
type Sub struct {
	hub    *Hub
	venues []string // nil = wildcard (all venues, including ones loaded later)

	mu      sync.Mutex
	pending map[string]uint64 // venue -> highest generation seen since last Take
	bound   int
	resync  bool
	closed  bool
	ready   chan struct{} // 1-cap signal channel
}

// Subscribe registers a subscription for the given venues. An empty
// venue list subscribes to every venue, including venues loaded after
// the subscription was created — the shape a fleet-scoped watch needs.
// bound caps the pending map (<= 0 uses DefaultPending); overflow sets
// the resync flag instead of growing. Close releases the subscription.
func (h *Hub) Subscribe(venues []string, bound int) *Sub {
	if bound <= 0 {
		bound = DefaultPending
	}
	s := &Sub{
		hub:     h,
		pending: make(map[string]uint64),
		bound:   bound,
		ready:   make(chan struct{}, 1),
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(venues) == 0 {
		h.all[s] = struct{}{}
		return s
	}
	s.venues = append(s.venues, venues...)
	for _, v := range s.venues {
		set := h.venues[v]
		if set == nil {
			set = make(map[*Sub]struct{})
			h.venues[v] = set
		}
		set[s] = struct{}{}
	}
	return s
}

// Publish signals that a venue's store moved to generation gen. It
// never blocks: each matching subscription either records the signal in
// its pending map (keeping the highest generation — concurrent
// publishers may arrive out of order) or, when the map is full, flips
// to resync. Safe for concurrent use; called from the write path.
func (h *Hub) Publish(venue string, gen uint64) {
	h.mu.Lock()
	subs := make([]*Sub, 0, len(h.venues[venue])+len(h.all))
	for s := range h.venues[venue] {
		subs = append(subs, s)
	}
	for s := range h.all {
		subs = append(subs, s)
	}
	h.mu.Unlock()
	for _, s := range subs {
		s.signal(venue, gen, false)
	}
}

// Invalidate tells every subscription that covers the venue to resync:
// its standing answer can no longer be patched forward (the venue was
// unloaded, hot-reloaded, or restored from a snapshot whose history the
// subscriber never saw). Subscribers re-execute and discover the new
// state — including "venue gone" — on their own read path.
func (h *Hub) Invalidate(venue string) {
	h.mu.Lock()
	subs := make([]*Sub, 0, len(h.venues[venue])+len(h.all))
	for s := range h.venues[venue] {
		subs = append(subs, s)
	}
	for s := range h.all {
		subs = append(subs, s)
	}
	h.mu.Unlock()
	for _, s := range subs {
		s.signal(venue, 0, true)
	}
}

// Subscribers returns the number of live subscriptions (an
// observability gauge, not a synchronization primitive).
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	set := make(map[*Sub]struct{}, len(h.all))
	for s := range h.all {
		set[s] = struct{}{}
	}
	for _, subs := range h.venues {
		for s := range subs {
			set[s] = struct{}{}
		}
	}
	return len(set)
}

func (s *Sub) signal(venue string, gen uint64, resync bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if resync {
		s.resync = true
	} else if cur, ok := s.pending[venue]; ok {
		if gen > cur {
			s.pending[venue] = gen
		}
	} else if len(s.pending) >= s.bound {
		s.resync = true
	} else {
		s.pending[venue] = gen
	}
	s.mu.Unlock()
	select {
	case s.ready <- struct{}{}:
	default: // already signalled; the pending state carries the rest
	}
}

// Ready returns the signal channel: it receives (at most one buffered
// token) whenever the subscription has pending state to Take.
func (s *Sub) Ready() <-chan struct{} { return s.ready }

// Take drains and resets the subscription's pending state: the highest
// generation seen per venue since the last Take, and whether the
// subscription overflowed (or was invalidated) and must resync. The
// returned map is owned by the caller.
func (s *Sub) Take() (pending map[string]uint64, resync bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pending = s.pending
	resync = s.resync
	s.pending = make(map[string]uint64)
	s.resync = false
	return pending, resync
}

// Close unregisters the subscription from its hub. Idempotent; safe to
// call while publishers are signalling.
func (s *Sub) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()

	h := s.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.all, s)
	for _, v := range s.venues {
		if set := h.venues[v]; set != nil {
			delete(set, s)
			if len(set) == 0 {
				delete(h.venues, v)
			}
		}
	}
}
