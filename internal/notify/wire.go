package notify

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"c2mn/internal/indoor"
	"c2mn/internal/query"
)

// Wire schema of the /v1/watch event stream. Four event types flow to
// a subscriber:
//
//   - "snapshot": the full current top-k answer; always the first
//     data-bearing event of a connection unless the client's
//     Last-Event-ID already names the current composite generation.
//   - "delta": the entered / count-changed / left rows versus the last
//     event's answer. Folding a delta into the previous answer yields
//     the exact answer at the event's id.
//   - "resync": a full answer re-sent mid-stream (the subscriber's hub
//     buffer overflowed, or the venue set changed under it). Folds like
//     a snapshot: replace, don't patch.
//   - "goodbye": terminal; the server is draining, the watched venue is
//     gone, or the stream can no longer stay exact. Reconnect decisions
//     belong to the client.
//
// Every data-bearing event's id: field is the composite generation of
// the venues the answer was computed over — the same content as the
// /v1/query ETag, unquoted — so a reconnect with Last-Event-ID resumes
// exactly: matching composite means the client's folded answer is
// byte-identical to the current one and the snapshot is skipped.

// SnapshotData is the payload of "snapshot" and "resync" events.
type SnapshotData struct {
	Kind    string              `json:"kind"`
	K       int                 `json:"k"`
	Scanned []string            `json:"scanned"`
	Regions []query.RegionCount `json:"regions,omitempty"`
	Pairs   []query.PairCount   `json:"pairs,omitempty"`
}

// DeltaData is the payload of "delta" events. Left rows carry the row's
// identity with its last pushed count, so a consumer can render "X left
// the top-k" without bookkeeping; folding ignores the count.
type DeltaData struct {
	Kind         string              `json:"kind"`
	Entered      []query.RegionCount `json:"entered,omitempty"`
	Changed      []query.RegionCount `json:"changed,omitempty"`
	Left         []query.RegionCount `json:"left,omitempty"`
	EnteredPairs []query.PairCount   `json:"entered_pairs,omitempty"`
	ChangedPairs []query.PairCount   `json:"changed_pairs,omitempty"`
	LeftPairs    []query.PairCount   `json:"left_pairs,omitempty"`
}

// Empty reports whether the delta changes nothing.
func (d DeltaData) Empty() bool {
	return len(d.Entered) == 0 && len(d.Changed) == 0 && len(d.Left) == 0 &&
		len(d.EnteredPairs) == 0 && len(d.ChangedPairs) == 0 && len(d.LeftPairs) == 0
}

// GoodbyeData is the payload of the terminal "goodbye" event.
type GoodbyeData struct {
	Reason string `json:"reason"`
}

// Goodbye reasons.
const (
	ReasonDraining     = "draining"      // process shutting down; reconnect elsewhere
	ReasonUnknownVenue = "unknown_venue" // a watched venue is gone
	ReasonError        = "error"         // re-execution failed; reconnect to retry
)

// Answer is a subscriber's folded view of its standing query: exactly
// the Regions/Pairs of the QueryResult the server computed. Kind
// follows c2mn.QueryKind values but stays a plain string here so the
// package has no dependency on the root API surface.
type Answer struct {
	Kind    string
	Regions []query.RegionCount
	Pairs   []query.PairCount
}

// Diff computes the delta from prev to next: rows that entered next's
// top-k, rows present in both whose count changed, and rows that left.
// All three lists come out in canonical order. Folding the result into
// prev (Apply) reproduces next exactly.
func Diff(prev, next Answer) DeltaData {
	d := DeltaData{Kind: next.Kind}
	{
		old := make(map[indoor.RegionID]int, len(prev.Regions))
		for _, rc := range prev.Regions {
			old[rc.Region] = rc.Count
		}
		cur := make(map[indoor.RegionID]bool, len(next.Regions))
		for _, rc := range next.Regions {
			cur[rc.Region] = true
			c, present := old[rc.Region]
			switch {
			case present && c == rc.Count: // identical row: no change
			case present:
				d.Changed = append(d.Changed, rc)
			default:
				d.Entered = append(d.Entered, rc)
			}
		}
		for _, rc := range prev.Regions {
			if !cur[rc.Region] {
				d.Left = append(d.Left, rc)
			}
		}
		query.SortRegionCounts(d.Entered)
		query.SortRegionCounts(d.Changed)
		query.SortRegionCounts(d.Left)
	}
	{
		old := make(map[[2]indoor.RegionID]int, len(prev.Pairs))
		for _, pc := range prev.Pairs {
			old[[2]indoor.RegionID{pc.A, pc.B}] = pc.Count
		}
		cur := make(map[[2]indoor.RegionID]bool, len(next.Pairs))
		for _, pc := range next.Pairs {
			k := [2]indoor.RegionID{pc.A, pc.B}
			cur[k] = true
			c, present := old[k]
			switch {
			case present && c == pc.Count:
			case present:
				d.ChangedPairs = append(d.ChangedPairs, pc)
			default:
				d.EnteredPairs = append(d.EnteredPairs, pc)
			}
		}
		for _, pc := range prev.Pairs {
			if !cur[[2]indoor.RegionID{pc.A, pc.B}] {
				d.LeftPairs = append(d.LeftPairs, pc)
			}
		}
		query.SortPairCounts(d.EnteredPairs)
		query.SortPairCounts(d.ChangedPairs)
		query.SortPairCounts(d.LeftPairs)
	}
	return d
}

// Apply folds a delta into the answer, returning the exact successor
// answer in canonical order. Apply(prev, Diff(prev, next)) == next.
func Apply(prev Answer, d DeltaData) Answer {
	next := Answer{Kind: d.Kind}
	if next.Kind == "" {
		next.Kind = prev.Kind
	}
	{
		gone := make(map[indoor.RegionID]bool, len(d.Left))
		for _, rc := range d.Left {
			gone[rc.Region] = true
		}
		repl := make(map[indoor.RegionID]int, len(d.Changed))
		for _, rc := range d.Changed {
			repl[rc.Region] = rc.Count
		}
		out := make([]query.RegionCount, 0, len(prev.Regions)+len(d.Entered))
		for _, rc := range prev.Regions {
			if gone[rc.Region] {
				continue
			}
			if c, ok := repl[rc.Region]; ok {
				rc.Count = c
			}
			out = append(out, rc)
		}
		out = append(out, d.Entered...)
		query.SortRegionCounts(out)
		next.Regions = out
	}
	{
		gone := make(map[[2]indoor.RegionID]bool, len(d.LeftPairs))
		for _, pc := range d.LeftPairs {
			gone[[2]indoor.RegionID{pc.A, pc.B}] = true
		}
		repl := make(map[[2]indoor.RegionID]int, len(d.ChangedPairs))
		for _, pc := range d.ChangedPairs {
			repl[[2]indoor.RegionID{pc.A, pc.B}] = pc.Count
		}
		out := make([]query.PairCount, 0, len(prev.Pairs)+len(d.EnteredPairs))
		for _, pc := range prev.Pairs {
			k := [2]indoor.RegionID{pc.A, pc.B}
			if gone[k] {
				continue
			}
			if c, ok := repl[k]; ok {
				pc.Count = c
			}
			out = append(out, pc)
		}
		out = append(out, d.EnteredPairs...)
		query.SortPairCounts(out)
		next.Pairs = out
	}
	return next
}

// EncodeEventID renders a composite generation as an SSE event id:
// venue-sorted "venue:gen" entries joined by ';', venue names
// URL-escaped so ';' and ':' in IDs cannot corrupt the format. This is
// the /v1/query ETag's content without the quotes, so clients can
// correlate push events with polled answers.
func EncodeEventID(gens map[string]uint64) string {
	venues := make([]string, 0, len(gens))
	for v := range gens {
		venues = append(venues, v)
	}
	sort.Strings(venues)
	var b strings.Builder
	for i, v := range venues {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(url.QueryEscape(v))
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(gens[v], 10))
	}
	return b.String()
}

// ParseEventID inverts EncodeEventID. A malformed id returns ok=false;
// callers treat that like no id at all (full snapshot). The empty
// string parses to an empty map — the id of an answer over zero venues.
func ParseEventID(id string) (gens map[string]uint64, ok bool) {
	gens = make(map[string]uint64)
	if id == "" {
		return gens, true
	}
	for _, part := range strings.Split(id, ";") {
		colon := strings.LastIndexByte(part, ':')
		if colon < 0 {
			return nil, false
		}
		venue, err := url.QueryUnescape(part[:colon])
		if err != nil {
			return nil, false
		}
		gen, err := strconv.ParseUint(part[colon+1:], 10, 64)
		if err != nil {
			return nil, false
		}
		if _, dup := gens[venue]; dup {
			return nil, false
		}
		gens[venue] = gen
	}
	return gens, true
}

// VenueEventID is the single-venue composite — what a backend's
// venue-scoped watch emits and the router's per-venue upstream
// subscriptions track.
func VenueEventID(venue string, gen uint64) string {
	return url.QueryEscape(venue) + ":" + strconv.FormatUint(gen, 10)
}

// String implements a debug rendering for Answer.
func (a Answer) String() string {
	return fmt.Sprintf("Answer{kind=%s regions=%d pairs=%d}", a.Kind, len(a.Regions), len(a.Pairs))
}
