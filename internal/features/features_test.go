package features

import (
	"math"
	"math/rand"
	"testing"

	"c2mn/internal/cluster"
	"c2mn/internal/geom"
	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// testSpace builds a one-floor venue with a hallway and three rooms,
// each its own region.
func testSpace(t testing.TB) *indoor.Space {
	t.Helper()
	b := indoor.NewBuilder()
	hall := b.AddPartition(0, geom.RectPoly(geom.Pt(0, 0), geom.Pt(30, 4)))
	ra := b.AddPartition(0, geom.RectPoly(geom.Pt(0, 4), geom.Pt(10, 14)))
	rb := b.AddPartition(0, geom.RectPoly(geom.Pt(10, 4), geom.Pt(20, 14)))
	rc := b.AddPartition(0, geom.RectPoly(geom.Pt(20, 4), geom.Pt(30, 14)))
	b.AddDoor(geom.Pt(5, 4), hall, ra)
	b.AddDoor(geom.Pt(15, 4), hall, rb)
	b.AddDoor(geom.Pt(25, 4), hall, rc)
	b.AddRegion("A", ra)
	b.AddRegion("B", rb)
	b.AddRegion("C", rc)
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testParams() Params {
	p := DefaultParams()
	p.V = 3
	p.Cluster = cluster.Params{EpsS: 3, EpsT: 30, MinPts: 3}
	return p
}

// walkSequence fabricates a p-sequence that stays in room A, walks the
// hallway, then stays in room C.
func walkSequence() *seq.PSequence {
	p := &seq.PSequence{ObjectID: "w"}
	add := func(x, y, t float64) {
		p.Records = append(p.Records, seq.Record{Loc: indoor.Loc(x, y, 0), T: t})
	}
	// Stay in A (dense).
	for i := 0; i < 6; i++ {
		add(5+0.3*float64(i%2), 9+0.2*float64(i%3), float64(i*10))
	}
	// Pass through the hallway (fast, sparse).
	add(5, 4.5, 70)
	add(12, 2, 72)
	add(20, 2, 74)
	add(25, 4.5, 76)
	// Stay in C (dense).
	for i := 0; i < 6; i++ {
		add(25+0.3*float64(i%2), 9+0.2*float64(i%3), 110+float64(i*10))
	}
	return p
}

func newCtx(t testing.TB) *SeqContext {
	t.Helper()
	ex, err := NewExtractor(testSpace(t), testParams())
	if err != nil {
		t.Fatal(err)
	}
	return ex.NewSeqContext(walkSequence(), nil)
}

func TestParamsValidate(t *testing.T) {
	good := testParams()
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.V = 0 },
		func(p *Params) { p.Alpha = 1.2 },
		func(p *Params) { p.Beta = 0.9 }, // beta > alpha
		func(p *Params) { p.GammaST = 0 },
		func(p *Params) { p.GammaST = 1.5 },
		func(p *Params) { p.GammaEC = -1 },
		func(p *Params) { p.Cluster.MinPts = 0 },
	}
	for i, mut := range bad {
		p := testParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
	if _, err := NewExtractor(testSpace(t), Params{}); err == nil {
		t.Errorf("NewExtractor with zero params should fail")
	}
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.V != 15 || p.Alpha != 0.8 || p.Beta != 0.6 || p.GammaST != 0.1 || p.GammaEC != 0.2 {
		t.Errorf("defaults diverge from §V-B1: %+v", p)
	}
	if p.Cluster.EpsS != 8 || p.Cluster.EpsT != 60 || p.Cluster.MinPts != 4 {
		t.Errorf("st-DBSCAN defaults diverge: %+v", p.Cluster)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
}

func TestSeqContextPrecomputation(t *testing.T) {
	c := newCtx(t)
	n := c.Len()
	if n != 16 {
		t.Fatalf("Len = %d", n)
	}
	// The dense head is clustered (stay-ish), the fast middle is noise.
	if c.Density[2] == cluster.Noise {
		t.Errorf("dense record tagged noise")
	}
	if c.Density[7] != cluster.Noise {
		t.Errorf("fast hallway record tagged %v", c.Density[7])
	}
	// Every record has at least one candidate.
	for i, cands := range c.Candidates {
		if len(cands) == 0 {
			t.Errorf("record %d has no candidates", i)
		}
	}
}

func TestCandidatesIncludeTruth(t *testing.T) {
	ex, _ := NewExtractor(testSpace(t), testParams())
	p := walkSequence()
	truth := make([]indoor.RegionID, p.Len())
	for i := range truth {
		truth[i] = 1 // force region B everywhere
	}
	c := ex.NewSeqContext(p, truth)
	for i, cands := range c.Candidates {
		found := false
		for _, r := range cands {
			if r == 1 {
				found = true
			}
		}
		if !found {
			t.Errorf("record %d candidates %v missing forced truth", i, cands)
		}
		for k := 1; k < len(cands); k++ {
			if cands[k] <= cands[k-1] {
				t.Errorf("record %d candidates not sorted: %v", i, cands)
			}
		}
	}
}

func TestSMValues(t *testing.T) {
	c := newCtx(t)
	// Record 0 sits well inside room A (region 0).
	if got := c.SM(0, 0); math.Abs(got-1) > 1e-6 {
		t.Errorf("SM(in A, A) = %v, want 1", got)
	}
	// Region C is far away: zero overlap.
	if got := c.SM(0, 2); got != 0 {
		t.Errorf("SM(in A, C) = %v, want 0", got)
	}
	if got := c.SM(0, indoor.NoRegion); got != 0 {
		t.Errorf("SM(NoRegion) = %v", got)
	}
}

func TestEMValues(t *testing.T) {
	c := newCtx(t)
	p := c.Ex.Params
	cases := []struct {
		d    cluster.Density
		e    seq.Event
		want float64
	}{
		{cluster.Core, seq.Stay, 1},
		{cluster.Noise, seq.Pass, 1},
		{cluster.Border, seq.Stay, p.Alpha},
		{cluster.Border, seq.Pass, p.Beta},
		{cluster.Core, seq.Pass, 0},
		{cluster.Noise, seq.Stay, 0},
	}
	for _, tc := range cases {
		c.Density[0] = tc.d
		if got := c.EM(0, tc.e); got != tc.want {
			t.Errorf("EM(%v,%v) = %v, want %v", tc.d, tc.e, got, tc.want)
		}
	}
}

func TestSTValues(t *testing.T) {
	c := newCtx(t)
	// Identical labels: 1 (no decay configured).
	if got := c.ST(0, 1, 1); got != 1 {
		t.Errorf("ST(same) = %v", got)
	}
	// Nearby pair beats the far pair.
	ab := c.ST(0, 0, 1)
	ac := c.ST(0, 0, 2)
	if !(ab > ac && ac > 0) {
		t.Errorf("ST ordering wrong: d(A,B)=%v d(A,C)=%v", ab, ac)
	}
	if got := c.ST(0, 0, indoor.NoRegion); got != 0 {
		t.Errorf("ST(NoRegion) = %v", got)
	}
	// Time decay multiplies in.
	c.Ex.Params.TimeDecayST = 0.01
	withDecay := c.ST(0, 0, 1)
	if !(withDecay < ab) {
		t.Errorf("time decay should shrink ST: %v vs %v", withDecay, ab)
	}
	c.Ex.Params.TimeDecayST = 0
}

func TestETValues(t *testing.T) {
	c := newCtx(t)
	if c.ET(seq.Stay, seq.Stay) != 1 || c.ET(seq.Pass, seq.Pass) != 1 {
		t.Errorf("ET(same) != 1")
	}
	if c.ET(seq.Stay, seq.Pass) != 0 {
		t.Errorf("ET(diff) != 0")
	}
}

func TestSCValues(t *testing.T) {
	c := newCtx(t)
	// fsc is exp(−|E[dI] − dE|): check the formula on both label pairs
	// and that the better-matching pair scores higher.
	for _, pair := range [][2]indoor.RegionID{{0, 0}, {0, 1}, {1, 2}} {
		want := math.Exp(-math.Abs(c.Ex.Space.RegionDist(pair[0], pair[1]) - c.dist[6]))
		if got := c.SC(6, pair[0], pair[1]); math.Abs(got-want) > 1e-12 {
			t.Errorf("SC(6,%v) = %v, want %v", pair, got, want)
		}
	}
	// A ~7 m hop is more consistent with the ~5 m intra-region
	// expectation than with the ~20 m A→B walk.
	if !(c.SC(6, 0, 0) > c.SC(6, 0, 1)) {
		t.Errorf("SC ordering wrong: same=%v cross=%v", c.SC(6, 0, 0), c.SC(6, 0, 1))
	}
	if got := c.SC(0, indoor.NoRegion, 0); got != 0 {
		t.Errorf("SC(NoRegion) = %v", got)
	}
	// Time decay shrinks fsc.
	base := c.SC(6, 0, 1)
	c.Ex.Params.TimeDecaySC = 0.05
	if got := c.SC(6, 0, 1); !(got < base) {
		t.Errorf("time decay should shrink SC: %v vs %v", got, base)
	}
	c.Ex.Params.TimeDecaySC = 0
}

func TestECValues(t *testing.T) {
	c := newCtx(t)
	// Records 0→1 are slow (stay-like): stay/stay maximises consistency.
	ss := c.EC(0, seq.Stay, seq.Stay)
	pp := c.EC(0, seq.Pass, seq.Pass)
	if !(ss > pp) {
		t.Errorf("slow step should favor stay/stay: %v vs %v", ss, pp)
	}
	if math.Abs(ss-1) > 0.05 {
		t.Errorf("EC(slow, stay, stay) = %v, want ~1", ss)
	}
	// Records 6→7 are fast: pass/pass wins.
	fast := c.EC(6, seq.Pass, seq.Pass)
	slowLabel := c.EC(6, seq.Stay, seq.Stay)
	if !(fast > slowLabel) {
		t.Errorf("fast step should favor pass/pass: %v vs %v", fast, slowLabel)
	}
}

func TestESVector(t *testing.T) {
	c := newCtx(t)
	R := make([]indoor.RegionID, c.Len())
	for i := range R {
		R[i] = 0
	}
	var stay, pass [3]float64
	c.ES(0, 5, seq.Stay, func(x int) indoor.RegionID { return R[x] }, &stay)
	c.ES(0, 5, seq.Pass, func(x int) indoor.RegionID { return R[x] }, &pass)
	// Opposite signs between stay and pass.
	for k := 0; k < 3; k++ {
		if stay[k] != -pass[k] {
			t.Errorf("ES sign asymmetry at %d: %v vs %v", k, stay[k], pass[k])
		}
	}
	// One region over six records: distinct/len = 1/6, negated for stay.
	if math.Abs(stay[0]+1.0/6.0) > 1e-9 {
		t.Errorf("ES distinct = %v, want -1/6", stay[0])
	}
	// More distinct regions increases the magnitude.
	R[2], R[3] = 1, 2
	var stay2 [3]float64
	c.ES(0, 5, seq.Stay, func(x int) indoor.RegionID { return R[x] }, &stay2)
	if !(stay2[0] < stay[0]) {
		t.Errorf("distinct regions should lower stay score: %v vs %v", stay2[0], stay[0])
	}
	// Single-record run is well-defined.
	var single [3]float64
	c.ES(3, 3, seq.Pass, func(x int) indoor.RegionID { return R[x] }, &single)
	if single[0] != 1 || single[1] != 0 || single[2] != 0 {
		t.Errorf("single-record ES = %v", single)
	}
}

func TestSSVector(t *testing.T) {
	c := newCtx(t)
	E := []seq.Event{seq.Stay, seq.Stay, seq.Pass, seq.Pass, seq.Stay, seq.Stay}
	var v [3]float64
	c.SS(0, 5, func(x int) seq.Event { return E[x] }, &v)
	// 3 runs, 2 changes over 6 records; boundary events both stay.
	if math.Abs(v[0]+0.5) > 1e-9 {
		t.Errorf("SS runs = %v, want -0.5", v[0])
	}
	if math.Abs(v[1]+2.0/6.0) > 1e-9 {
		t.Errorf("SS changes = %v, want -1/3", v[1])
	}
	if v[2] != 0 {
		t.Errorf("SS boundary = %v, want 0", v[2])
	}
	// Pass at the boundaries raises the third component.
	E[0], E[5] = seq.Pass, seq.Pass
	c.SS(0, 5, func(x int) seq.Event { return E[x] }, &v)
	if v[2] != 1 {
		t.Errorf("SS boundary pass = %v, want 1", v[2])
	}
	// Single record run.
	c.SS(2, 2, func(x int) seq.Event { return seq.Pass }, &v)
	if v[0] != -1 || v[1] != 0 || v[2] != 1 {
		t.Errorf("single-record SS = %v", v)
	}
}

func TestRunBounds(t *testing.T) {
	R := []indoor.RegionID{1, 1, 2, 2, 2, 3}
	if a := runStartRegion(R, 4); a != 2 {
		t.Errorf("runStartRegion = %d", a)
	}
	if b := runEndRegion(R, 2); b != 4 {
		t.Errorf("runEndRegion = %d", b)
	}
	E := []seq.Event{seq.Stay, seq.Pass, seq.Pass}
	if a := runStartEvent(E, 2); a != 1 {
		t.Errorf("runStartEvent = %d", a)
	}
	if b := runEndEvent(E, 1); b != 2 {
		t.Errorf("runEndEvent = %d", b)
	}
}

// randomLabels draws a random labeling from the candidate sets.
func randomLabels(c *SeqContext, rng *rand.Rand) ([]indoor.RegionID, []seq.Event) {
	n := c.Len()
	R := make([]indoor.RegionID, n)
	E := make([]seq.Event, n)
	for i := 0; i < n; i++ {
		cands := c.Candidates[i]
		R[i] = cands[rng.Intn(len(cands))]
		E[i] = seq.Event(rng.Intn(2))
	}
	return R, E
}

// TestLocalFeaturesMatchTotalDeltas is the central correctness check:
// for any node and any pair of labels, the difference of local
// (Markov-blanket) features equals the difference of total features.
// This guarantees the local conditionals used in Gibbs sampling and
// ICM are exact.
func TestLocalFeaturesMatchTotalDeltas(t *testing.T) {
	for _, cliques := range []CliqueSet{
		AllCliques,
		AllCliques &^ Transition,
		AllCliques &^ Synchronization,
		AllCliques &^ SegmentationES,
		AllCliques &^ SegmentationSS,
		Matching | Transition | Synchronization,
	} {
		params := testParams()
		params.Cliques = cliques
		ex, err := NewExtractor(testSpace(t), params)
		if err != nil {
			t.Fatal(err)
		}
		c := ex.NewSeqContext(walkSequence(), nil)
		rng := rand.New(rand.NewSource(int64(cliques)))
		n := c.Len()

		tot1 := make([]float64, Dim)
		tot2 := make([]float64, Dim)
		loc1 := make([]float64, Dim)
		loc2 := make([]float64, Dim)

		for trial := 0; trial < 30; trial++ {
			R, E := randomLabels(c, rng)
			i := rng.Intn(n)

			// Region node check.
			cands := c.Candidates[i]
			r1 := cands[rng.Intn(len(cands))]
			r2 := cands[rng.Intn(len(cands))]
			R[i] = r1
			c.TotalFeatures(R, E, tot1)
			R[i] = r2
			c.TotalFeatures(R, E, tot2)
			c.LocalRegionFeatures(R, E, i, r1, loc1)
			c.LocalRegionFeatures(R, E, i, r2, loc2)
			for k := 0; k < Dim; k++ {
				dTot := tot1[k] - tot2[k]
				dLoc := loc1[k] - loc2[k]
				if math.Abs(dTot-dLoc) > 1e-9 {
					t.Fatalf("cliques=%b region node %d feature %d (%s): total delta %v != local delta %v",
						cliques, i, k, Names()[k], dTot, dLoc)
				}
			}

			// Event node check.
			E[i] = seq.Stay
			c.TotalFeatures(R, E, tot1)
			E[i] = seq.Pass
			c.TotalFeatures(R, E, tot2)
			c.LocalEventFeatures(R, E, i, seq.Stay, loc1)
			c.LocalEventFeatures(R, E, i, seq.Pass, loc2)
			for k := 0; k < Dim; k++ {
				dTot := tot1[k] - tot2[k]
				dLoc := loc1[k] - loc2[k]
				if math.Abs(dTot-dLoc) > 1e-9 {
					t.Fatalf("cliques=%b event node %d feature %d (%s): total delta %v != local delta %v",
						cliques, i, k, Names()[k], dTot, dLoc)
				}
			}
		}
	}
}

func TestCliqueMaskZeroesFeatures(t *testing.T) {
	params := testParams()
	params.Cliques = Matching
	ex, _ := NewExtractor(testSpace(t), params)
	c := ex.NewSeqContext(walkSequence(), nil)
	rng := rand.New(rand.NewSource(3))
	R, E := randomLabels(c, rng)
	out := make([]float64, Dim)
	c.TotalFeatures(R, E, out)
	for k := IdxST; k < Dim; k++ {
		if out[k] != 0 {
			t.Errorf("masked feature %d = %v, want 0", k, out[k])
		}
	}
	if out[IdxSM] == 0 && out[IdxEM] == 0 {
		t.Errorf("matching features should be non-zero")
	}
}

func TestTotalFeaturesBounded(t *testing.T) {
	// All per-clique features are bounded, so totals are bounded by the
	// number of cliques.
	c := newCtx(t)
	rng := rand.New(rand.NewSource(4))
	out := make([]float64, Dim)
	n := float64(c.Len())
	for trial := 0; trial < 50; trial++ {
		R, E := randomLabels(c, rng)
		c.TotalFeatures(R, E, out)
		for k, v := range out {
			if math.Abs(v) > 2*n {
				t.Fatalf("feature %d = %v out of bound", k, v)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("feature %d = %v", k, v)
			}
		}
	}
}

func TestNames(t *testing.T) {
	names := Names()
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" || seen[n] {
			t.Errorf("bad feature name %q", n)
		}
		seen[n] = true
	}
}

func TestCliqueSetHas(t *testing.T) {
	cs := Matching | Transition
	if !cs.Has(Matching) || !cs.Has(Transition) || cs.Has(Synchronization) {
		t.Errorf("Has wrong")
	}
	if !AllCliques.Has(SegmentationES | SegmentationSS) {
		t.Errorf("AllCliques incomplete")
	}
}
