package features

import (
	"math/rand"
	"testing"

	"c2mn/internal/cluster"
	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// randConfig draws a random labeling: regions from the candidate sets
// most of the time, but sometimes an arbitrary region (as block moves
// produce) or NoRegion, so the fused path is exercised on every label
// shape the inference loop can feed it.
func randConfig(rng *rand.Rand, c *SeqContext, numRegions int) ([]indoor.RegionID, []seq.Event) {
	n := c.Len()
	R := make([]indoor.RegionID, n)
	E := make([]seq.Event, n)
	for i := 0; i < n; i++ {
		switch {
		case len(c.Candidates[i]) > 0 && rng.Float64() < 0.7:
			R[i] = c.Candidates[i][rng.Intn(len(c.Candidates[i]))]
		case rng.Float64() < 0.1:
			R[i] = indoor.NoRegion
		default:
			R[i] = indoor.RegionID(rng.Intn(numRegions))
		}
		E[i] = seq.Event(rng.Intn(seq.NumEvents))
	}
	return R, E
}

// TestFusedScoresBitwiseIdentical pins the fused extract-and-dot path
// against the reference LocalRegionFeatures/LocalEventFeatures + Dot
// composition: the scores must match bit for bit across random
// configurations, clique ablations, time-decay variants and region
// priors.
func TestFusedScoresBitwiseIdentical(t *testing.T) {
	space := testSpace(t)
	paramSets := []Params{
		testParams(),
		func() Params { p := testParams(); p.TimeDecayST = 0.01; p.TimeDecaySC = 0.02; return p }(),
		func() Params { p := testParams(); p.Cliques = Matching | Transition; return p }(),
		func() Params { p := testParams(); p.Cliques = SegmentationES | SegmentationSS; return p }(),
		func() Params { p := testParams(); p.RegionPrior = []float64{1, 0.5, 0.25}; return p }(),
	}
	rng := rand.New(rand.NewSource(99))
	for pi, params := range paramSets {
		ex, err := NewExtractor(space, params)
		if err != nil {
			t.Fatal(err)
		}
		ctx := ex.NewSeqContext(walkSequence(), nil)
		w := make([]float64, Dim)
		buf := make([]float64, Dim)
		for trial := 0; trial < 40; trial++ {
			for k := range w {
				w[k] = rng.NormFloat64()
			}
			R, E := randConfig(rng, ctx, space.NumRegions())
			for i := 0; i < ctx.Len(); i++ {
				cands := ctx.Candidates[i]
				scores := make([]float64, len(cands))
				ctx.RegionCandScores(w, R, E, i, scores)
				for k, r := range cands {
					ctx.LocalRegionFeatures(R, E, i, r, buf)
					if want := Dot(w, buf); scores[k] != want {
						t.Fatalf("params %d trial %d node %d cand %v: fused %v, reference %v",
							pi, trial, i, r, scores[k], want)
					}
				}
				ev := make([]float64, seq.NumEvents)
				ctx.EventCandScores(w, R, E, i, ev)
				for e := 0; e < seq.NumEvents; e++ {
					ctx.LocalEventFeatures(R, E, i, seq.Event(e), buf)
					if want := Dot(w, buf); ev[e] != want {
						t.Fatalf("params %d trial %d node %d event %d: fused %v, reference %v",
							pi, trial, i, e, ev[e], want)
					}
				}
			}
		}
	}
}

// TestFusedScoresHandAssembledExtractor covers the fallback branches:
// an Extractor built without NewExtractor has no geometry cache and no
// fst kernel matrix, and the fused path must still agree with the
// reference bit for bit.
func TestFusedScoresHandAssembledExtractor(t *testing.T) {
	space := testSpace(t)
	ex := &Extractor{Space: space, Params: testParams()}
	ctx := ex.NewSeqContext(walkSequence(), nil)
	rng := rand.New(rand.NewSource(3))
	w := make([]float64, Dim)
	for k := range w {
		w[k] = rng.NormFloat64()
	}
	buf := make([]float64, Dim)
	R, E := randConfig(rng, ctx, space.NumRegions())
	for i := 0; i < ctx.Len(); i++ {
		cands := ctx.Candidates[i]
		scores := make([]float64, len(cands))
		ctx.RegionCandScores(w, R, E, i, scores)
		for k, r := range cands {
			ctx.LocalRegionFeatures(R, E, i, r, buf)
			if want := Dot(w, buf); scores[k] != want {
				t.Fatalf("node %d cand %v: fused %v, reference %v", i, r, scores[k], want)
			}
		}
	}
}

// TestExtractorSTKernel checks the precomputed fst kernel against the
// ST feature function on every region pair.
func TestExtractorSTKernel(t *testing.T) {
	space := testSpace(t)
	p := testParams()
	p.Cluster = cluster.Params{EpsS: 3, EpsT: 30, MinPts: 3}
	ex, err := NewExtractor(space, p)
	if err != nil {
		t.Fatal(err)
	}
	ctx := ex.NewSeqContext(walkSequence(), nil)
	nr := space.NumRegions()
	for a := 0; a < nr; a++ {
		for b := 0; b < nr; b++ {
			want := ctx.ST(0, indoor.RegionID(a), indoor.RegionID(b))
			got := ctx.fastST(0, indoor.RegionID(a), indoor.RegionID(b))
			if got != want {
				t.Fatalf("fastST(%d,%d) = %v, ST = %v", a, b, got, want)
			}
		}
	}
	if got := ctx.fastST(0, indoor.NoRegion, 0); got != 0 {
		t.Fatalf("fastST(NoRegion, 0) = %v, want 0", got)
	}
}
