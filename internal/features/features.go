// Package features implements the eight clique-template feature
// functions of the paper's Table II, their aggregation into empirical
// feature vectors, and the exact node-local ("Markov blanket") feature
// computation that the learning and inference procedures of C2MN rely
// on.
//
// The weight vector w has Dim = 12 components:
//
//	index 0      fsm  — spatial matching          (matching, region)
//	index 1      fem  — event matching            (matching, event)
//	index 2      fst  — space transition          (transition, region)
//	index 3      fet  — event transition          (transition, event)
//	index 4      fsc  — spatial consistency       (synchronization, region)
//	index 5      fec  — event consistency         (synchronization, event)
//	index 6..8   fes  — event-based segmentation  (segmentation, 3 features)
//	index 9..11  fss  — space-based segmentation  (segmentation, 3 features)
//
// Segmentation feature values are normalised to [-1, 1] by run length
// (the paper states fes/fss values "need to be normalized" without
// fixing the scheme; per-record normalisation keeps every feature
// bounded regardless of sequence length).
package features

import (
	"fmt"
	"math"

	"c2mn/internal/cluster"
	"c2mn/internal/geom"
	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// Weight vector layout.
const (
	IdxSM = 0 // spatial matching
	IdxEM = 1 // event matching
	IdxST = 2 // space transition
	IdxET = 3 // event transition
	IdxSC = 4 // spatial consistency
	IdxEC = 5 // event consistency
	IdxES = 6 // event-based segmentation (3 components)
	IdxSS = 9 // space-based segmentation (3 components)

	// Dim is the dimensionality of the weight vector.
	Dim = 12
)

// Names returns human-readable names for the weight components.
func Names() [Dim]string {
	return [Dim]string{
		"fsm", "fem", "fst", "fet", "fsc", "fec",
		"fes.regions", "fes.speed", "fes.turns",
		"fss.eventRuns", "fss.eventChanges", "fss.boundaryPass",
	}
}

// CliqueSet selects which clique templates are active; ablations of
// §V-A (C2MN/Tran, /Syn, /ES, /SS and CMN) disable subsets.
type CliqueSet uint8

// Clique template groups.
const (
	Matching CliqueSet = 1 << iota
	Transition
	Synchronization
	SegmentationES
	SegmentationSS

	// AllCliques enables the complete C2MN structure.
	AllCliques = Matching | Transition | Synchronization | SegmentationES | SegmentationSS
)

// Has reports whether all cliques in q are enabled.
func (c CliqueSet) Has(q CliqueSet) bool { return c&q == q }

// Params holds the feature hyper-parameters. The defaults follow the
// paper's tuned real-data values (§V-B1).
type Params struct {
	// V is the uncertainty-region radius of fsm, meters.
	V float64
	// Alpha and Beta are the fem constants for border points,
	// 0 < Beta < Alpha < 1.
	Alpha, Beta float64
	// GammaST is the fst distance scale in (0,1).
	GammaST float64
	// GammaEC is the fec/fes speed scale.
	GammaEC float64
	// TimeDecayST is the optional γ' of Eq. 4's time-decay extension;
	// zero disables it.
	TimeDecayST float64
	// TimeDecaySC is the optional γ'' of Eq. 5's time-decay extension;
	// zero disables it.
	TimeDecaySC float64
	// Cluster parameterises the st-DBSCAN pass that tags record
	// densities for fem.
	Cluster cluster.Params
	// Cliques selects the active clique templates.
	Cliques CliqueSet
	// RegionPrior optionally holds a per-region popularity multiplier
	// for fsm, indexed by RegionID and normalised to max 1 — the
	// paper's §III-B (1) alternative design ("include the normalized
	// historical region frequency as a multiplier"). Empty disables
	// the prior.
	RegionPrior []float64
}

// DefaultParams returns the paper's tuned configuration: v = 15 m,
// α = 0.8, β = 0.6, γst = 0.1, γec = 0.2, st-DBSCAN(εs = 8 m,
// εt = 60 s, ptm = 4), all cliques enabled.
func DefaultParams() Params {
	return Params{
		V:       15,
		Alpha:   0.8,
		Beta:    0.6,
		GammaST: 0.1,
		GammaEC: 0.2,
		Cluster: cluster.Params{EpsS: 8, EpsT: 60, MinPts: 4},
		Cliques: AllCliques,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.V <= 0 {
		return fmt.Errorf("features: V must be positive, got %g", p.V)
	}
	if !(0 < p.Beta && p.Beta < p.Alpha && p.Alpha < 1) {
		return fmt.Errorf("features: need 0 < beta < alpha < 1, got alpha=%g beta=%g", p.Alpha, p.Beta)
	}
	if p.GammaST <= 0 || p.GammaST >= 1 {
		return fmt.Errorf("features: GammaST must be in (0,1), got %g", p.GammaST)
	}
	if p.GammaEC <= 0 {
		return fmt.Errorf("features: GammaEC must be positive, got %g", p.GammaEC)
	}
	return p.Cluster.Validate()
}

// Extractor computes features against one indoor space.
type Extractor struct {
	Space  *indoor.Space
	Params Params

	// cache is the venue geometry memoization for radius Params.V:
	// grid-quantized candidate lookup plus precomputed centroids and
	// adjacency. Built once per (Space, V) by NewExtractor; nil on
	// hand-assembled Extractors, which fall back to the R-tree path.
	cache *indoor.SpaceCache
	// stExp[ra*nr+rb] is the precomputed fst kernel
	// exp(−γst·E[dI(ra,rb)]): 1 on the diagonal (identical labels score
	// 1 by definition), 0 for unreachable pairs. With it the space
	// transition feature is a single array lookup per edge.
	stExp []float64
	nr    int
}

// NewExtractor builds an Extractor after validating params, together
// with the venue-level memoizations the inference hot path leans on:
// the geometry cache for Params.V and the fst distance-kernel matrix.
func NewExtractor(space *indoor.Space, params Params) (*Extractor, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	ex := &Extractor{Space: space, Params: params}
	ex.cache = space.GeometryCache(params.V)
	nr := space.NumRegions()
	ex.nr = nr
	ex.stExp = make([]float64, nr*nr)
	for a := 0; a < nr; a++ {
		for b := 0; b < nr; b++ {
			if a == b {
				ex.stExp[a*nr+b] = 1
				continue
			}
			d := space.RegionDist(indoor.RegionID(a), indoor.RegionID(b))
			if math.IsInf(d, 1) {
				continue // unreachable pairs keep the zero value
			}
			ex.stExp[a*nr+b] = math.Exp(-params.GammaST * d)
		}
	}
	return ex, nil
}

// Cache returns the extractor's venue geometry cache (nil on
// hand-assembled extractors that skipped NewExtractor).
func (ex *Extractor) Cache() *indoor.SpaceCache { return ex.cache }

// SeqContext caches the label-independent computations for one
// p-sequence: density tags, candidate regions, fsm overlaps, distance
// and turn prefix sums.
//
// A SeqContext has a reset-and-reuse lifecycle: Reset re-binds it to a
// new p-sequence, reusing every internal buffer (candidate arenas,
// density tags, clustering scratch, prefix sums), so a pooled context
// performs zero steady-state allocation per sequence. A SeqContext is
// not safe for concurrent use.
type SeqContext struct {
	Ex *Extractor
	P  *seq.PSequence

	// Density holds each record's st-DBSCAN tag.
	Density []cluster.Density
	// Candidates holds each record's candidate region labels.
	Candidates [][]indoor.RegionID

	// overlap[i][k] is fsm(θi, Candidates[i][k]).
	overlap [][]float64
	// dist[i] is dE(θi.l, θi+1.l); n-1 entries.
	dist []float64
	// dt[i] is θi+1.t − θi.t; n-1 entries.
	dt []float64
	// speedNorm[i] is min(1, γec · dist[i]/dt[i]); n-1 entries.
	speedNorm []float64
	// distCum[k] = Σ_{x<k} dist[x]; n entries.
	distCum []float64
	// turnCum[k] = number of turn points among 1..k; n entries.
	turnCum []int

	// Reusable backing storage. candArena/ovArena hold every record's
	// candidates/overlaps contiguously; candOff[i] is record i's offset
	// (n+1 entries). Candidates/overlap above are re-sliced views into
	// the arenas on every Reset.
	candArena      []indoor.RegionID
	candOff        []int
	ovArena        []float64
	pts            []cluster.Point
	clusterRes     cluster.Result
	clusterScratch cluster.Scratch
	// seenScratch backs the distinct-region count of ES.
	seenScratch []indoor.RegionID
	// idsScratch backs the R-tree lookups of the candidate search.
	idsScratch []int

	// Per-edge memos for the fused scoring path (fastscore.go).
	// ecExp[3i+s] = exp(−|speedNorm[i] − s/2|), the three possible fec
	// values of edge i (s = passInd(ea)+passInd(eb) ∈ {0,1,2}).
	ecExp []float64
	// stDecay/scDecay are the optional per-edge time-decay multipliers
	// exp(−γ'·Δt) of fst/fsc; empty when the decay is disabled.
	stDecay []float64
	scDecay []float64
	// scoreBuf is the Dim-vector the fused path assembles feature
	// values into before the dot product.
	scoreBuf []float64
}

// NewSeqContext precomputes the context of one p-sequence. When
// truth is non-nil its regions are force-included in the candidate
// sets so that training labels are always representable.
func (ex *Extractor) NewSeqContext(p *seq.PSequence, truth []indoor.RegionID) *SeqContext {
	c := &SeqContext{Ex: ex}
	c.Reset(p, truth)
	return c
}

// Reset re-binds the context to a new p-sequence, recomputing every
// cached quantity while reusing the context's internal buffers. The
// semantics are identical to building a fresh context with
// NewSeqContext; c.Ex must be set.
func (c *SeqContext) Reset(p *seq.PSequence, truth []indoor.RegionID) {
	ex := c.Ex
	n := p.Len()
	c.P = p
	c.Candidates = growSlice(c.Candidates, n)
	c.overlap = growSlice(c.overlap, n)
	c.dist = growSlice(c.dist, max(0, n-1))
	c.dt = growSlice(c.dt, max(0, n-1))
	c.speedNorm = growSlice(c.speedNorm, max(0, n-1))
	c.distCum = growSlice(c.distCum, n)
	c.turnCum = growSlice(c.turnCum, n)
	c.candOff = growSlice(c.candOff, n+1)

	// st-DBSCAN density tags.
	c.pts = growSlice(c.pts, n)
	for i, rec := range p.Records {
		c.pts[i] = cluster.Point{X: rec.Loc.X, Y: rec.Loc.Y, Floor: rec.Loc.Floor, T: rec.T}
	}
	if err := cluster.RunScratch(c.pts, ex.Params.Cluster, &c.clusterRes, &c.clusterScratch); err != nil {
		// Params were validated at construction; this is unreachable
		// except for programmer error.
		panic(fmt.Sprintf("features: st-DBSCAN: %v", err))
	}
	c.Density = c.clusterRes.Tag

	// Candidate regions into the arena. The views are sliced out only
	// after the arena stops growing: an append inside the loop may move
	// the backing array. The venue geometry cache answers the lookup
	// with one grid-cell probe when it matches the configured radius;
	// the R-tree path is the fallback and returns identical slices.
	cache := ex.cache
	if cache != nil && cache.V != ex.Params.V {
		cache = nil
	}
	c.candArena = c.candArena[:0]
	for i, rec := range p.Records {
		c.candOff[i] = len(c.candArena)
		if cache != nil {
			c.candArena = cache.CandidateRegions(rec.Loc, c.candArena)
		} else {
			c.candArena, c.idsScratch = ex.Space.CandidateRegionsScratch(rec.Loc, ex.Params.V, c.candArena, c.idsScratch)
		}
		if truth != nil && truth[i] != indoor.NoRegion && !containsRegion(c.candArena[c.candOff[i]:], truth[i]) {
			c.candArena = insertRegion(c.candArena, c.candOff[i], truth[i])
		}
	}
	c.candOff[n] = len(c.candArena)

	// fsm overlaps, arena-backed like the candidates.
	c.ovArena = growSlice(c.ovArena, len(c.candArena))
	for i, rec := range p.Records {
		lo, hi := c.candOff[i], c.candOff[i+1]
		c.Candidates[i] = c.candArena[lo:hi:hi]
		ov := c.ovArena[lo:hi:hi]
		for k, r := range c.Candidates[i] {
			ov[k] = ex.Space.UncertaintyOverlap(rec.Loc, ex.Params.V, r)
		}
		c.overlap[i] = ov
	}

	// Pairwise distances, times and speeds.
	for i := 0; i+1 < n; i++ {
		a, b := p.Records[i], p.Records[i+1]
		c.dist[i] = a.Loc.Dist(b.Loc)
		c.dt[i] = b.T - a.T
		speed := 0.0
		if c.dt[i] > 0 {
			speed = c.dist[i] / c.dt[i]
		}
		c.speedNorm[i] = math.Min(1, ex.Params.GammaEC*speed)
	}

	// Per-edge memos for the fused scoring path: the three possible fec
	// values per edge and the optional fst/fsc time-decay multipliers.
	// Each stores exactly the value the reference feature function
	// computes, so fused scores stay bitwise-identical.
	c.ecExp = growSlice(c.ecExp, 3*max(0, n-1))
	for i := 0; i+1 < n; i++ {
		c.ecExp[3*i] = math.Exp(-math.Abs(c.speedNorm[i] - 0))
		c.ecExp[3*i+1] = math.Exp(-math.Abs(c.speedNorm[i] - 0.5))
		c.ecExp[3*i+2] = math.Exp(-math.Abs(c.speedNorm[i] - 1))
	}
	if g := ex.Params.TimeDecayST; g > 0 {
		c.stDecay = growSlice(c.stDecay, max(0, n-1))
		for i := 0; i+1 < n; i++ {
			c.stDecay[i] = math.Exp(-g * c.dt[i])
		}
	} else {
		c.stDecay = c.stDecay[:0]
	}
	if g := ex.Params.TimeDecaySC; g > 0 {
		c.scDecay = growSlice(c.scDecay, max(0, n-1))
		for i := 0; i+1 < n; i++ {
			c.scDecay[i] = math.Exp(-g * c.dt[i])
		}
	} else {
		c.scDecay = c.scDecay[:0]
	}
	if n > 0 {
		c.distCum[0] = 0
		c.turnCum[0] = 0
	}
	for i := 1; i < n; i++ {
		c.distCum[i] = c.distCum[i-1] + c.dist[i-1]
	}
	// Turn points (footnote 4: heading change > 90°).
	for i := 1; i < n; i++ {
		c.turnCum[i] = c.turnCum[i-1]
		if i+1 < n && geom.IsTurn(p.Records[i-1].Loc.Point(), p.Records[i].Loc.Point(), p.Records[i+1].Loc.Point()) {
			c.turnCum[i]++
		}
	}
}

// growSlice returns s resized to n entries, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

func containsRegion(rs []indoor.RegionID, r indoor.RegionID) bool {
	for _, x := range rs {
		if x == r {
			return true
		}
	}
	return false
}

// insertRegion appends r and insertion-sorts it into the suffix
// rs[start:], keeping the per-record candidate views ordered.
func insertRegion(rs []indoor.RegionID, start int, r indoor.RegionID) []indoor.RegionID {
	rs = append(rs, r)
	for i := len(rs) - 1; i > start && rs[i] < rs[i-1]; i-- {
		rs[i], rs[i-1] = rs[i-1], rs[i]
	}
	return rs
}

// Len returns the sequence length.
func (c *SeqContext) Len() int { return c.P.Len() }

// ---- individual feature functions (Table II) ----

// SM is feature (1), fsm(θi, r): the overlap ratio between the
// uncertainty disk of record i and region r, optionally scaled by the
// historical region-frequency prior.
func (c *SeqContext) SM(i int, r indoor.RegionID) float64 {
	for k, cand := range c.Candidates[i] {
		if cand == r {
			return c.overlap[i][k] * c.prior(r)
		}
	}
	if r == indoor.NoRegion {
		return 0
	}
	// Non-candidate regions still get their true (typically zero)
	// overlap.
	return c.Ex.Space.UncertaintyOverlap(c.P.Records[i].Loc, c.Ex.Params.V, r) * c.prior(r)
}

// prior returns the fsm multiplier for region r (1 when no prior is
// configured or r is out of range).
func (c *SeqContext) prior(r indoor.RegionID) float64 {
	p := c.Ex.Params.RegionPrior
	if len(p) == 0 || r < 0 || int(r) >= len(p) {
		return 1
	}
	return p[r]
}

// EM is feature (2), fem(θi, e): the density/event compatibility.
func (c *SeqContext) EM(i int, e seq.Event) float64 {
	switch {
	case e == seq.Stay && c.Density[i] == cluster.Core:
		return 1
	case e == seq.Pass && c.Density[i] == cluster.Noise:
		return 1
	case e == seq.Stay && c.Density[i] == cluster.Border:
		return c.Ex.Params.Alpha
	case e == seq.Pass && c.Density[i] == cluster.Border:
		return c.Ex.Params.Beta
	default:
		return 0
	}
}

// ST is feature (3), fst(ri, ri+1) for the pair starting at record i:
// exp(−γst · E[dI]) with the optional time-decay multiplier. Identical
// consecutive labels score 1 (the paper's Fig. 4 example sets
// fst(rC, rC) = 1).
func (c *SeqContext) ST(i int, ra, rb indoor.RegionID) float64 {
	v := 1.0
	if ra != rb {
		d := c.Ex.Space.RegionDist(ra, rb)
		if math.IsInf(d, 1) {
			return 0
		}
		v = math.Exp(-c.Ex.Params.GammaST * d)
	}
	if g := c.Ex.Params.TimeDecayST; g > 0 {
		v *= math.Exp(-g * c.dt[i])
	}
	return v
}

// ET is feature (4), fet(ei, ei+1): event label smoothness.
func (c *SeqContext) ET(ea, eb seq.Event) float64 {
	if ea == eb {
		return 1
	}
	return 0
}

// SC is feature (5), fsc(θi, θi+1, ri, ri+1):
// exp(−|E[dI] − dE|), the consistency between region-level and raw
// distances, with the optional time decay.
func (c *SeqContext) SC(i int, ra, rb indoor.RegionID) float64 {
	d := c.Ex.Space.RegionDist(ra, rb)
	if math.IsInf(d, 1) {
		return 0
	}
	v := math.Exp(-math.Abs(d - c.dist[i]))
	if g := c.Ex.Params.TimeDecaySC; g > 0 {
		v *= math.Exp(-g * c.dt[i])
	}
	return v
}

// EC is feature (6), fec(θi, θi+1, ei, ei+1): consistency between the
// observed speed and the pass-ness of the two event labels.
func (c *SeqContext) EC(i int, ea, eb seq.Event) float64 {
	return math.Exp(-math.Abs(c.speedNorm[i] - (passInd(ea)+passInd(eb))/2))
}

func passInd(e seq.Event) float64 {
	if e == seq.Pass {
		return 1
	}
	return 0
}

// segDist returns Σ dE(θx, θx+1) for a ≤ x < b.
func (c *SeqContext) segDist(a, b int) float64 { return c.distCum[b] - c.distCum[a] }

// segTurns returns the number of turn points strictly inside [a, b].
func (c *SeqContext) segTurns(a, b int) int {
	if b-a < 2 {
		return 0
	}
	return c.turnCum[b-1] - c.turnCum[a]
}

// segSpeedNorm returns the normalised average speed over [a, b].
func (c *SeqContext) segSpeedNorm(a, b int) float64 {
	if a >= b {
		return 0
	}
	dur := c.P.Records[b].T - c.P.Records[a].T
	if dur <= 0 {
		return 0
	}
	return math.Min(1, c.Ex.Params.GammaEC*c.segDist(a, b)/dur)
}

// ES is feature (7), fes over the event-based segmentation covering
// records [a, b] that all carry event e. The three components are
// sign·(distinct regions, speed, −turns), each normalised by run
// length, where sign = 2·I(e)−1 (+1 for pass, −1 for stay). reg gives
// the region label of a record.
func (c *SeqContext) ES(a, b int, e seq.Event, reg func(int) indoor.RegionID, out *[3]float64) {
	sign := 2*passInd(e) - 1
	// Count distinct region labels over the run. The distinct set is
	// small (bounded by the candidate regions around the run), so a
	// linear scan over a reused scratch slice beats a map — and
	// allocates nothing, which matters on the inference hot path.
	seen := c.seenScratch[:0]
	for x := a; x <= b; x++ {
		r := reg(x)
		found := false
		for _, s := range seen {
			if s == r {
				found = true
				break
			}
		}
		if !found {
			seen = append(seen, r)
		}
	}
	c.seenScratch = seen
	runLen := float64(b - a + 1)
	out[0] = sign * float64(len(seen)) / runLen
	out[1] = sign * c.segSpeedNorm(a, b)
	out[2] = -sign * float64(c.segTurns(a, b)) / runLen
}

// SS is feature (8), fss over the space-based segmentation covering
// records [a, b] that all carry the same region label. The components
// are (−event runs, −event changes, boundary pass indicators), each
// normalised by run length (the last by 2). ev gives the event label
// of a record.
func (c *SeqContext) SS(a, b int, ev func(int) seq.Event, out *[3]float64) {
	runs := 1
	changes := 0
	for x := a; x < b; x++ {
		if ev(x) != ev(x+1) {
			changes++
			runs++
		}
	}
	runLen := float64(b - a + 1)
	out[0] = -float64(runs) / runLen
	out[1] = -float64(changes) / runLen
	out[2] = (passInd(ev(a)) + passInd(ev(b))) / 2
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
