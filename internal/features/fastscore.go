package features

import (
	"math"

	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// This file is the fused extract-and-dot scoring path of the inference
// hot loop. RegionCandScores and EventCandScores compute
// w·LocalRegionFeatures / w·LocalEventFeatures for every candidate of
// one node while sharing the candidate-independent work across the
// whole evaluation:
//
//   - fsm is an overlap-arena index instead of a candidate scan,
//   - fst reads the extractor's precomputed exp(−γst·E[dI]) matrix,
//   - fec reads the per-edge three-value exp memo filled by Reset,
//   - the fes window statistics are computed once per node; only the
//     distinct-region count depends on the candidate, answered by a
//     membership probe against the candidate-excluded distinct set,
//   - the fss window decomposition depends only on whether the
//     candidate merges with its run neighbours, so at most four value
//     triples exist per node and each is computed lazily once.
//
// Exactness is the contract: every component is assembled from the
// same inputs with the same expressions and accumulated in the same
// order as the reference path, so the resulting scores — and therefore
// every inference decision — are bitwise-identical. The property tests
// in fastscore_test.go and the core reference tests pin this.

// Dot returns w·f accumulated in index order. It mirrors the reference
// dot product exactly so fused scores match assembling the feature
// vector first.
func Dot(w, f []float64) float64 {
	s := 0.0
	for i := range w {
		s += w[i] * f[i]
	}
	return s
}

// scoreScratch returns the Dim-length assembly buffer, zeroed.
func (c *SeqContext) scoreScratch() []float64 {
	buf := c.scoreBuf
	if cap(buf) < Dim {
		buf = make([]float64, Dim)
		c.scoreBuf = buf
	} else {
		buf = buf[:Dim]
	}
	for k := range buf {
		buf[k] = 0
	}
	return buf
}

// fastST is ST(i, ra, rb) through the precomputed distance kernel.
func (c *SeqContext) fastST(i int, ra, rb indoor.RegionID) float64 {
	var v float64
	switch {
	case ra == rb:
		v = 1.0
	case ra < 0 || rb < 0:
		return 0
	default:
		if st := c.Ex.stExp; st != nil {
			v = st[int(ra)*c.Ex.nr+int(rb)]
		} else {
			d := c.Ex.Space.RegionDist(ra, rb)
			if math.IsInf(d, 1) {
				return 0
			}
			v = math.Exp(-c.Ex.Params.GammaST * d)
		}
		if v == 0 {
			// Unreachable pair (or underflow, which the reference path
			// also scores 0 after the decay multiply).
			return 0
		}
	}
	if len(c.stDecay) > 0 {
		v *= c.stDecay[i]
	}
	return v
}

// fastSC is SC(i, ra, rb) with the decay multiplier memoized.
func (c *SeqContext) fastSC(i int, ra, rb indoor.RegionID) float64 {
	d := c.Ex.Space.RegionDist(ra, rb)
	if math.IsInf(d, 1) {
		return 0
	}
	v := math.Exp(-math.Abs(d - c.dist[i]))
	if len(c.scDecay) > 0 {
		v *= c.scDecay[i]
	}
	return v
}

// RegionCandScores fills scores[k] with w·LocalRegionFeatures(R, E, i,
// Candidates[i][k]) for every candidate of record i, bitwise-identical
// to the reference path. scores must have len(Candidates[i]) entries.
func (c *SeqContext) RegionCandScores(w []float64, R []indoor.RegionID, E []seq.Event, i int, scores []float64) {
	cands := c.Candidates[i]
	if len(cands) == 0 {
		return
	}
	n := c.Len()
	cl := c.Ex.Params.Cliques
	buf := c.scoreScratch()
	hasM := cl.Has(Matching)
	hasT := cl.Has(Transition)
	hasS := cl.Has(Synchronization)

	// fes window: the same-event run around i. Only the distinct-region
	// count depends on the candidate; the speed and turn components are
	// shared verbatim.
	esOn := cl.Has(SegmentationES)
	var (
		esSign, esRunLen, esV1, esV2 float64
		esSeen                       []indoor.RegionID
	)
	if esOn {
		a, b := runStartEvent(E, i), runEndEvent(E, i)
		esSign = 2*passInd(E[i]) - 1
		esRunLen = float64(b - a + 1)
		esV1 = esSign * c.segSpeedNorm(a, b)
		esV2 = -esSign * float64(c.segTurns(a, b)) / esRunLen
		seen := c.seenScratch[:0]
		for x := a; x <= b; x++ {
			if x == i {
				continue
			}
			r := R[x]
			found := false
			for _, s := range seen {
				if s == r {
					found = true
					break
				}
			}
			if !found {
				seen = append(seen, r)
			}
		}
		c.seenScratch = seen
		esSeen = seen
	}

	// fss window [A,B]: spans the region runs of i−1 and i+1 and never
	// consults R[i], so the sub-run decomposition of a candidate depends
	// only on whether it merges left/right — at most four distinct value
	// triples, computed lazily.
	ssOn := cl.Has(SegmentationSS)
	var (
		ssA, ssB int
		ssSet    [4]bool
		ssVals   [4][3]float64
	)
	if ssOn {
		ssA, ssB = i, i
		if i > 0 {
			ssA = runStartRegion(R, i-1)
		}
		if i+1 < n {
			ssB = runEndRegion(R, i+1)
		}
	}

	for k, r := range cands {
		if hasM {
			buf[IdxSM] = c.overlap[i][k] * c.prior(r)
		}
		if hasT {
			st := 0.0
			if i > 0 {
				st += c.fastST(i-1, R[i-1], r)
			}
			if i+1 < n {
				st += c.fastST(i, r, R[i+1])
			}
			buf[IdxST] = st
		}
		if hasS {
			sc := 0.0
			if i > 0 {
				sc += c.fastSC(i-1, R[i-1], r)
			}
			if i+1 < n {
				sc += c.fastSC(i, r, R[i+1])
			}
			buf[IdxSC] = sc
		}
		if esOn {
			distinct := len(esSeen)
			if !containsRegion(esSeen, r) {
				distinct++
			}
			buf[IdxES] = esSign * float64(distinct) / esRunLen
			buf[IdxES+1] = esV1
			buf[IdxES+2] = esV2
		}
		if ssOn {
			ck := 0
			if i > ssA && R[i-1] == r {
				ck |= 1
			}
			if i < ssB && R[i+1] == r {
				ck |= 2
			}
			if !ssSet[ck] {
				ssSet[ck] = true
				c.ssWindowRegion(R, E, ssA, ssB, i, r, &ssVals[ck])
			}
			buf[IdxSS] = ssVals[ck][0]
			buf[IdxSS+1] = ssVals[ck][1]
			buf[IdxSS+2] = ssVals[ck][2]
		}
		scores[k] = Dot(w, buf)
	}
}

// ssWindowRegion accumulates the fss triple over window [A,B] with r
// substituted at i, iterating sub-runs left to right exactly like the
// reference decomposition.
func (c *SeqContext) ssWindowRegion(R []indoor.RegionID, E []seq.Event, A, B, i int, r indoor.RegionID, out *[3]float64) {
	out[0], out[1], out[2] = 0, 0, 0
	for x := A; x <= B; {
		lx := R[x]
		if x == i {
			lx = r
		}
		y := x
		for y+1 <= B {
			ly := R[y+1]
			if y+1 == i {
				ly = r
			}
			if ly != lx {
				break
			}
			y++
		}
		runs, changes := 1, 0
		for z := x; z < y; z++ {
			if E[z] != E[z+1] {
				changes++
				runs++
			}
		}
		runLen := float64(y - x + 1)
		out[0] += -float64(runs) / runLen
		out[1] += -float64(changes) / runLen
		out[2] += (passInd(E[x]) + passInd(E[y])) / 2
		x = y + 1
	}
}

// esDirect is ES(a, b, e, reg=R, out) without closure indirection.
func (c *SeqContext) esDirect(a, b int, e seq.Event, R []indoor.RegionID, out *[3]float64) {
	sign := 2*passInd(e) - 1
	seen := c.seenScratch[:0]
	for x := a; x <= b; x++ {
		r := R[x]
		found := false
		for _, s := range seen {
			if s == r {
				found = true
				break
			}
		}
		if !found {
			seen = append(seen, r)
		}
	}
	c.seenScratch = seen
	runLen := float64(b - a + 1)
	out[0] = sign * float64(len(seen)) / runLen
	out[1] = sign * c.segSpeedNorm(a, b)
	out[2] = -sign * float64(c.segTurns(a, b)) / runLen
}

// passCountIdx maps an event pair to its fec memo slot:
// passInd(ea)+passInd(eb) ∈ {0, 1, 2}.
func passCountIdx(ea, eb seq.Event) int {
	n := 0
	if ea == seq.Pass {
		n++
	}
	if eb == seq.Pass {
		n++
	}
	return n
}

// EventCandScores fills scores[e] with w·LocalEventFeatures(R, E, i, e)
// for e = 0..NumEvents−1, bitwise-identical to the reference path.
// scores must have seq.NumEvents entries.
func (c *SeqContext) EventCandScores(w []float64, R []indoor.RegionID, E []seq.Event, i int, scores []float64) {
	n := c.Len()
	cl := c.Ex.Params.Cliques
	buf := c.scoreScratch()
	hasM := cl.Has(Matching)
	hasT := cl.Has(Transition)
	hasS := cl.Has(Synchronization)
	esOn := cl.Has(SegmentationES)
	ssOn := cl.Has(SegmentationSS)

	var esA, esB int
	if esOn {
		esA, esB = i, i
		if i > 0 {
			esA = runStartEvent(E, i-1)
		}
		if i+1 < n {
			esB = runEndEvent(E, i+1)
		}
	}
	var ssa, ssb int
	if ssOn {
		ssa, ssb = runStartRegion(R, i), runEndRegion(R, i)
	}

	for ei := 0; ei < seq.NumEvents; ei++ {
		e := seq.Event(ei)
		if hasM {
			buf[IdxEM] = c.EM(i, e)
		}
		if hasT {
			et := 0.0
			if i > 0 {
				et += c.ET(E[i-1], e)
			}
			if i+1 < n {
				et += c.ET(e, E[i+1])
			}
			buf[IdxET] = et
		}
		if hasS {
			ec := 0.0
			if i > 0 {
				ec += c.ecExp[3*(i-1)+passCountIdx(E[i-1], e)]
			}
			if i+1 < n {
				ec += c.ecExp[3*i+passCountIdx(e, E[i+1])]
			}
			buf[IdxEC] = ec
		}
		if esOn {
			var s0, s1, s2 float64
			var v [3]float64
			for x := esA; x <= esB; {
				ex0 := E[x]
				if x == i {
					ex0 = e
				}
				y := x
				for y+1 <= esB {
					ey := E[y+1]
					if y+1 == i {
						ey = e
					}
					if ey != ex0 {
						break
					}
					y++
				}
				c.esDirect(x, y, ex0, R, &v)
				s0 += v[0]
				s1 += v[1]
				s2 += v[2]
				x = y + 1
			}
			buf[IdxES], buf[IdxES+1], buf[IdxES+2] = s0, s1, s2
		}
		if ssOn {
			runs, changes := 1, 0
			for x := ssa; x < ssb; x++ {
				ea := E[x]
				if x == i {
					ea = e
				}
				eb := E[x+1]
				if x+1 == i {
					eb = e
				}
				if ea != eb {
					changes++
					runs++
				}
			}
			runLen := float64(ssb - ssa + 1)
			evA, evB := E[ssa], E[ssb]
			if ssa == i {
				evA = e
			}
			if ssb == i {
				evB = e
			}
			buf[IdxSS] = -float64(runs) / runLen
			buf[IdxSS+1] = -float64(changes) / runLen
			buf[IdxSS+2] = (passInd(evA) + passInd(evB)) / 2
		}
		scores[ei] = Dot(w, buf)
	}
}
