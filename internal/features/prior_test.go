package features

import (
	"testing"
)

func TestRegionPriorScalesSM(t *testing.T) {
	params := testParams()
	params.RegionPrior = []float64{0.5, 1.0, 0.25}
	ex, err := NewExtractor(testSpace(t), params)
	if err != nil {
		t.Fatal(err)
	}
	c := ex.NewSeqContext(walkSequence(), nil)

	noPrior := testParams()
	ex2, _ := NewExtractor(testSpace(t), noPrior)
	c2 := ex2.NewSeqContext(walkSequence(), nil)

	// Record 0 sits in room A (region 0): prior 0.5 halves fsm.
	withP := c.SM(0, 0)
	without := c2.SM(0, 0)
	if diff := withP - 0.5*without; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("prior-scaled SM = %v, want %v", withP, 0.5*without)
	}
	// Out-of-range region falls back to multiplier 1.
	if got := c.prior(99); got != 1 {
		t.Errorf("out-of-range prior = %v", got)
	}
	if got := c.prior(-1); got != 1 {
		t.Errorf("negative region prior = %v", got)
	}
}
