package features

import (
	"math"
	"math/rand"
	"testing"

	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// randomConfig draws a random label configuration: regions from each
// record's candidate set (occasionally a neighbour's candidate, as
// block moves produce), events uniform.
func randomConfig(ctx *SeqContext, rng *rand.Rand) ([]indoor.RegionID, []seq.Event) {
	n := ctx.Len()
	R := make([]indoor.RegionID, n)
	E := make([]seq.Event, n)
	for i := 0; i < n; i++ {
		cands := ctx.Candidates[i]
		if rng.Intn(4) == 0 && i > 0 {
			cands = ctx.Candidates[i-1]
		}
		if len(cands) == 0 {
			R[i] = indoor.NoRegion
		} else {
			R[i] = cands[rng.Intn(len(cands))]
		}
		E[i] = seq.Event(rng.Intn(seq.NumEvents))
	}
	return R, E
}

func totalDiff(ctx *SeqContext, R1 []indoor.RegionID, E1 []seq.Event, R2 []indoor.RegionID, E2 []seq.Event) []float64 {
	f1 := make([]float64, Dim)
	f2 := make([]float64, Dim)
	ctx.TotalFeatures(R1, E1, f1)
	ctx.TotalFeatures(R2, E2, f2)
	for k := range f2 {
		f2[k] -= f1[k]
	}
	return f2
}

func assertClose(t *testing.T, got, want []float64, what string) {
	t.Helper()
	for k := range want {
		if math.Abs(got[k]-want[k]) > 1e-9 {
			t.Fatalf("%s: component %d = %.12g, want %.12g", what, k, got[k], want[k])
		}
	}
}

// TestRegionRunDeltaMatchesFullRecompute is the core exactness
// property of the incremental scorer: for randomized configurations
// and every right-maximal uniform segment and candidate label, the
// Markov-blanket delta must equal the difference of two full feature
// passes.
func TestRegionRunDeltaMatchesFullRecompute(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(42))
	n := ctx.Len()
	delta := make([]float64, Dim)
	for trial := 0; trial < 50; trial++ {
		R, E := randomConfig(ctx, rng)
		for a := 0; a < n; {
			b := a
			for b+1 < n && R[b+1] == R[a] {
				b++
			}
			for r := indoor.RegionID(0); r < 3; r++ {
				ctx.RegionRunDelta(R, E, a, b, r, delta)
				R2 := append([]indoor.RegionID(nil), R...)
				for y := a; y <= b; y++ {
					R2[y] = r
				}
				assertClose(t, delta, totalDiff(ctx, R, E, R2, E), "run delta")
			}
			a = b + 1
		}
	}
}

// TestRegionRunDeltaLeftNonMaximal covers the segment shape blockICM
// produces when a relabeled run merges with its left neighbour: the
// segment is uniform and right-maximal but R[a-1] carries the same
// label.
func TestRegionRunDeltaLeftNonMaximal(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(7))
	n := ctx.Len()
	delta := make([]float64, Dim)
	for trial := 0; trial < 50; trial++ {
		R, E := randomConfig(ctx, rng)
		// Force a left-equal boundary: pick a mid segment and copy the
		// left neighbour's label onto it.
		a := 1 + rng.Intn(n-2)
		b := a + rng.Intn(n-a-1)
		for y := a; y <= b; y++ {
			R[y] = R[a-1]
		}
		// Re-derive right-maximality.
		for b+1 < n && R[b+1] == R[a] {
			b++
		}
		for r := indoor.RegionID(0); r < 3; r++ {
			ctx.RegionRunDelta(R, E, a, b, r, delta)
			R2 := append([]indoor.RegionID(nil), R...)
			for y := a; y <= b; y++ {
				R2[y] = r
			}
			assertClose(t, delta, totalDiff(ctx, R, E, R2, E), "left-non-maximal run delta")
		}
	}
}

func TestSingleMoveDeltasMatchFullRecompute(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(99))
	n := ctx.Len()
	delta := make([]float64, Dim)
	scratch := make([]float64, Dim)
	for trial := 0; trial < 30; trial++ {
		R, E := randomConfig(ctx, rng)
		for i := 0; i < n; i++ {
			for r := indoor.RegionID(0); r < 3; r++ {
				ctx.RegionMoveDelta(R, E, i, r, scratch, delta)
				R2 := append([]indoor.RegionID(nil), R...)
				R2[i] = r
				assertClose(t, delta, totalDiff(ctx, R, E, R2, E), "region move delta")
			}
			for e := 0; e < seq.NumEvents; e++ {
				ctx.EventMoveDelta(R, E, i, seq.Event(e), scratch, delta)
				E2 := append([]seq.Event(nil), E...)
				E2[i] = seq.Event(e)
				assertClose(t, delta, totalDiff(ctx, R, E, R, E2), "event move delta")
			}
		}
	}
}

// TestSeqContextResetMatchesFresh asserts the reset-and-reuse
// lifecycle: a context re-bound across several sequences must be
// indistinguishable from a freshly built one, including after
// shrinking to a shorter sequence.
func TestSeqContextResetMatchesFresh(t *testing.T) {
	ex, err := NewExtractor(testSpace(t), testParams())
	if err != nil {
		t.Fatal(err)
	}
	long := walkSequence()
	short := &seq.PSequence{ObjectID: "s", Records: long.Records[3:9]}
	reused := &SeqContext{Ex: ex}
	rng := rand.New(rand.NewSource(3))
	for round, p := range []*seq.PSequence{long, short, long, walkSequence()} {
		reused.Reset(p, nil)
		fresh := ex.NewSeqContext(p, nil)
		n := fresh.Len()
		if reused.Len() != n {
			t.Fatalf("round %d: Len = %d, want %d", round, reused.Len(), n)
		}
		for i := 0; i < n; i++ {
			if reused.Density[i] != fresh.Density[i] {
				t.Fatalf("round %d: Density[%d] differs", round, i)
			}
			if len(reused.Candidates[i]) != len(fresh.Candidates[i]) {
				t.Fatalf("round %d: candidate count[%d] differs", round, i)
			}
			for k, r := range fresh.Candidates[i] {
				if reused.Candidates[i][k] != r {
					t.Fatalf("round %d: Candidates[%d][%d] differs", round, i, k)
				}
			}
		}
		// Feature outputs must agree on random configurations.
		for trial := 0; trial < 5; trial++ {
			R, E := randomConfig(fresh, rng)
			fa := make([]float64, Dim)
			fb := make([]float64, Dim)
			reused.TotalFeatures(R, E, fa)
			fresh.TotalFeatures(R, E, fb)
			assertClose(t, fa, fb, "reset TotalFeatures")
			for i := 0; i < n; i++ {
				reused.LocalRegionFeatures(R, E, i, R[i], fa)
				fresh.LocalRegionFeatures(R, E, i, R[i], fb)
				assertClose(t, fa, fb, "reset LocalRegionFeatures")
			}
		}
	}
}

// TestSeqContextResetTruth checks that truth labels are still force-
// included in candidate sets through the arena-backed Reset path.
func TestSeqContextResetTruth(t *testing.T) {
	ex, err := NewExtractor(testSpace(t), testParams())
	if err != nil {
		t.Fatal(err)
	}
	p := walkSequence()
	truth := make([]indoor.RegionID, p.Len())
	for i := range truth {
		truth[i] = indoor.RegionID(i % 3) // often not a natural candidate
	}
	c := &SeqContext{Ex: ex}
	c.Reset(p, truth)
	for i := range truth {
		if !containsRegion(c.Candidates[i], truth[i]) {
			t.Fatalf("truth region %d missing from candidates of record %d", truth[i], i)
		}
		for k := 1; k < len(c.Candidates[i]); k++ {
			if c.Candidates[i][k-1] >= c.Candidates[i][k] {
				t.Fatalf("record %d candidates not strictly sorted: %v", i, c.Candidates[i])
			}
		}
	}
}
