package features

import (
	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// This file implements the incremental (delta) feature computation the
// inference workspace builds its maintained running score on: instead
// of recomputing the full O(n·Dim) feature vector after a tentative
// move, each API returns the exact change f(P, R', E') − f(P, R, E)
// restricted to the Markov blanket of the move. Cliques not containing
// a moved node contribute identically to both configurations and
// cancel, so the deltas equal the global differences exactly (up to
// floating-point association).

// RegionMoveDelta accumulates into out (length Dim, overwritten) the
// feature change of the single-node move R[i] → r, computed as the
// difference of the two Markov-blanket statistics. scratch must have
// length Dim and is clobbered. R is not modified.
func (c *SeqContext) RegionMoveDelta(R []indoor.RegionID, E []seq.Event, i int, r indoor.RegionID, scratch, out []float64) {
	c.LocalRegionFeatures(R, E, i, r, out)
	c.LocalRegionFeatures(R, E, i, R[i], scratch)
	for k := range out {
		out[k] -= scratch[k]
	}
}

// EventMoveDelta is the event-node analogue of RegionMoveDelta for the
// move E[i] → e.
func (c *SeqContext) EventMoveDelta(R []indoor.RegionID, E []seq.Event, i int, e seq.Event, scratch, out []float64) {
	c.LocalEventFeatures(R, E, i, e, out)
	c.LocalEventFeatures(R, E, i, E[i], scratch)
	for k := range out {
		out[k] -= scratch[k]
	}
}

// RegionRunDelta accumulates into out (length Dim, overwritten) the
// feature change of the block move that relabels the uniform segment
// [a, b] (every R[x], a ≤ x ≤ b, carries the same label) to r. The
// segment must be right-maximal (b == n−1 or R[b+1] ≠ R[b]); the left
// neighbour may carry the same label, as happens when a preceding run
// was just merged into this one. R is not modified.
//
// Cost is O(w·Dim) where w spans the segment, its neighbouring region
// runs and the event runs overlapping it — the Markov blanket of the
// block — instead of the O(n·Dim) of a full rescore.
func (c *SeqContext) RegionRunDelta(R []indoor.RegionID, E []seq.Event, a, b int, r indoor.RegionID, out []float64) {
	for k := range out {
		out[k] = 0
	}
	orig := R[a]
	if r == orig {
		return
	}
	n := c.Len()
	cl := c.Ex.Params.Cliques
	// reg is the tentative labeling R' restricted to the indices the
	// affected cliques touch.
	reg := func(x int) indoor.RegionID {
		if x >= a && x <= b {
			return r
		}
		return R[x]
	}
	if cl.Has(Matching) {
		for i := a; i <= b; i++ {
			out[IdxSM] += c.SM(i, r) - c.SM(i, orig)
		}
	}
	if cl.Has(Transition) {
		// Interior transition edges pair identical labels on both sides
		// of the move and fst(x, x) is label-independent, so only the
		// boundary edges change.
		if a > 0 {
			out[IdxST] += c.ST(a-1, R[a-1], r) - c.ST(a-1, R[a-1], orig)
		}
		if b+1 < n {
			out[IdxST] += c.ST(b, r, R[b+1]) - c.ST(b, orig, R[b+1])
		}
	}
	if cl.Has(Synchronization) {
		// fsc(x, x) depends on the intra-region distance E[dI(p,q∈x)],
		// which differs per region, so interior edges must be rescored
		// along with the boundaries.
		if a > 0 {
			out[IdxSC] += c.SC(a-1, R[a-1], r) - c.SC(a-1, R[a-1], orig)
		}
		for i := a; i < b; i++ {
			out[IdxSC] += c.SC(i, r, r) - c.SC(i, orig, orig)
		}
		if b+1 < n {
			out[IdxSC] += c.SC(b, r, R[b+1]) - c.SC(b, orig, R[b+1])
		}
	}
	if cl.Has(SegmentationES) {
		// Every event-based segmentation clique overlapping [a, b] sees
		// region labels change; those fully outside do not.
		A, B := runStartEvent(E, a), runEndEvent(E, b)
		var vNew, vOld [3]float64
		for x := A; x <= B; {
			y := x
			for y+1 <= B && E[y+1] == E[x] {
				y++
			}
			c.ES(x, y, E[x], reg, &vNew)
			c.ES(x, y, E[x], func(z int) indoor.RegionID { return R[z] }, &vOld)
			out[IdxES] += vNew[0] - vOld[0]
			out[IdxES+1] += vNew[1] - vOld[1]
			out[IdxES+2] += vNew[2] - vOld[2]
			x = y + 1
		}
	}
	if cl.Has(SegmentationSS) {
		// The move reshapes the space-based segmentation runs in the
		// window spanned by the segment and its neighbouring runs: the
		// segment can merge with a neighbour when r matches its label.
		// Run boundaries outside the window involve only unchanged
		// labels on both sides and stay put.
		A, B := a, b
		if a > 0 {
			A = runStartRegion(R, a-1)
		}
		if b+1 < n {
			B = runEndRegion(R, b+1)
		}
		var v [3]float64
		for x := A; x <= B; {
			y := x
			for y+1 <= B && R[y+1] == R[x] {
				y++
			}
			c.SS(x, y, func(z int) seq.Event { return E[z] }, &v)
			out[IdxSS] -= v[0]
			out[IdxSS+1] -= v[1]
			out[IdxSS+2] -= v[2]
			x = y + 1
		}
		for x := A; x <= B; {
			y := x
			for y+1 <= B && reg(y+1) == reg(x) {
				y++
			}
			c.SS(x, y, func(z int) seq.Event { return E[z] }, &v)
			out[IdxSS] += v[0]
			out[IdxSS+1] += v[1]
			out[IdxSS+2] += v[2]
			x = y + 1
		}
	}
}
