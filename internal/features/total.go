package features

import (
	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// TotalFeatures accumulates the empirical feature vector
// f(P, R, E) = Σ_ct Σ_{c∈C(ct)} f_c over every clique of the unrolled
// network (the parameter-shared form of Eq. 2). out must have length
// Dim and is overwritten.
func (c *SeqContext) TotalFeatures(R []indoor.RegionID, E []seq.Event, out []float64) {
	for k := range out {
		out[k] = 0
	}
	n := c.Len()
	cl := c.Ex.Params.Cliques
	if cl.Has(Matching) {
		for i := 0; i < n; i++ {
			out[IdxSM] += c.SM(i, R[i])
			out[IdxEM] += c.EM(i, E[i])
		}
	}
	if cl.Has(Transition) {
		for i := 0; i+1 < n; i++ {
			out[IdxST] += c.ST(i, R[i], R[i+1])
			out[IdxET] += c.ET(E[i], E[i+1])
		}
	}
	if cl.Has(Synchronization) {
		for i := 0; i+1 < n; i++ {
			out[IdxSC] += c.SC(i, R[i], R[i+1])
			out[IdxEC] += c.EC(i, E[i], E[i+1])
		}
	}
	if cl.Has(SegmentationES) {
		var v [3]float64
		for a := 0; a < n; {
			b := a
			for b+1 < n && E[b+1] == E[a] {
				b++
			}
			c.ES(a, b, E[a], func(x int) indoor.RegionID { return R[x] }, &v)
			out[IdxES] += v[0]
			out[IdxES+1] += v[1]
			out[IdxES+2] += v[2]
			a = b + 1
		}
	}
	if cl.Has(SegmentationSS) {
		var v [3]float64
		for a := 0; a < n; {
			b := a
			for b+1 < n && R[b+1] == R[a] {
				b++
			}
			c.SS(a, b, func(x int) seq.Event { return E[x] }, &v)
			out[IdxSS] += v[0]
			out[IdxSS+1] += v[1]
			out[IdxSS+2] += v[2]
			a = b + 1
		}
	}
}

// runStartRegion returns the first index of the maximal same-region
// run containing i.
func runStartRegion(R []indoor.RegionID, i int) int {
	for i > 0 && R[i-1] == R[i] {
		i--
	}
	return i
}

// runEndRegion returns the last index of the maximal same-region run
// containing i.
func runEndRegion(R []indoor.RegionID, i int) int {
	for i+1 < len(R) && R[i+1] == R[i] {
		i++
	}
	return i
}

// runStartEvent and runEndEvent are the event-label analogues.
func runStartEvent(E []seq.Event, i int) int {
	for i > 0 && E[i-1] == E[i] {
		i--
	}
	return i
}

func runEndEvent(E []seq.Event, i int) int {
	for i+1 < len(E) && E[i+1] == E[i] {
		i++
	}
	return i
}

// LocalRegionFeatures accumulates into out (length Dim, overwritten)
// the features of every clique containing region node i, evaluated
// with R[i] substituted by r. This is the exact Markov-blanket
// statistic used by the local conditionals P(ri | MB(ri)) in both
// learning (Eq. 6–9) and inference: cliques not containing node i
// contribute equally to every candidate r and cancel from the
// conditional.
func (c *SeqContext) LocalRegionFeatures(R []indoor.RegionID, E []seq.Event, i int, r indoor.RegionID, out []float64) {
	for k := range out {
		out[k] = 0
	}
	n := c.Len()
	cl := c.Ex.Params.Cliques
	if cl.Has(Matching) {
		out[IdxSM] = c.SM(i, r)
	}
	reg := func(x int) indoor.RegionID {
		if x == i {
			return r
		}
		return R[x]
	}
	if cl.Has(Transition) {
		if i > 0 {
			out[IdxST] += c.ST(i-1, R[i-1], r)
		}
		if i+1 < n {
			out[IdxST] += c.ST(i, r, R[i+1])
		}
	}
	if cl.Has(Synchronization) {
		if i > 0 {
			out[IdxSC] += c.SC(i-1, R[i-1], r)
		}
		if i+1 < n {
			out[IdxSC] += c.SC(i, r, R[i+1])
		}
	}
	if cl.Has(SegmentationES) {
		// The event-based segmentation clique containing record i is
		// the maximal same-event run around i; its region-distinctness
		// feature depends on r.
		a, b := runStartEvent(E, i), runEndEvent(E, i)
		var v [3]float64
		c.ES(a, b, E[i], reg, &v)
		out[IdxES] += v[0]
		out[IdxES+1] += v[1]
		out[IdxES+2] += v[2]
	}
	if cl.Has(SegmentationSS) {
		// Changing R[i] reshapes the space-based segmentation runs in
		// the window spanned by the runs of i−1 and i+1; boundaries
		// outside the window are unaffected.
		A, B := i, i
		if i > 0 {
			A = runStartRegion(R, i-1)
		}
		if i+1 < n {
			B = runEndRegion(R, i+1)
		}
		var v [3]float64
		for x := A; x <= B; {
			y := x
			for y+1 <= B && reg(y+1) == reg(x) {
				y++
			}
			c.SS(x, y, func(z int) seq.Event { return E[z] }, &v)
			out[IdxSS] += v[0]
			out[IdxSS+1] += v[1]
			out[IdxSS+2] += v[2]
			x = y + 1
		}
	}
}

// LocalEventFeatures accumulates into out (length Dim, overwritten)
// the features of every clique containing event node i, evaluated with
// E[i] substituted by e. See LocalRegionFeatures.
func (c *SeqContext) LocalEventFeatures(R []indoor.RegionID, E []seq.Event, i int, e seq.Event, out []float64) {
	for k := range out {
		out[k] = 0
	}
	n := c.Len()
	cl := c.Ex.Params.Cliques
	if cl.Has(Matching) {
		out[IdxEM] = c.EM(i, e)
	}
	ev := func(x int) seq.Event {
		if x == i {
			return e
		}
		return E[x]
	}
	if cl.Has(Transition) {
		if i > 0 {
			out[IdxET] += c.ET(E[i-1], e)
		}
		if i+1 < n {
			out[IdxET] += c.ET(e, E[i+1])
		}
	}
	if cl.Has(Synchronization) {
		if i > 0 {
			out[IdxEC] += c.EC(i-1, E[i-1], e)
		}
		if i+1 < n {
			out[IdxEC] += c.EC(i, e, E[i+1])
		}
	}
	if cl.Has(SegmentationES) {
		// Changing E[i] reshapes the event runs within the window
		// spanned by the runs of i−1 and i+1.
		A, B := i, i
		if i > 0 {
			A = runStartEvent(E, i-1)
		}
		if i+1 < n {
			B = runEndEvent(E, i+1)
		}
		var v [3]float64
		for x := A; x <= B; {
			y := x
			for y+1 <= B && ev(y+1) == ev(x) {
				y++
			}
			c.ES(x, y, ev(x), func(z int) indoor.RegionID { return R[z] }, &v)
			out[IdxES] += v[0]
			out[IdxES+1] += v[1]
			out[IdxES+2] += v[2]
			x = y + 1
		}
	}
	if cl.Has(SegmentationSS) {
		// The space-based segmentation clique containing record i is
		// the same-region run around i; its event statistics depend on e.
		a, b := runStartRegion(R, i), runEndRegion(R, i)
		var v [3]float64
		c.SS(a, b, ev, &v)
		out[IdxSS] += v[0]
		out[IdxSS+1] += v[1]
		out[IdxSS+2] += v[2]
	}
}
