// Package cluster implements ST-DBSCAN (Birant & Kut, 2007), the
// spatio-temporal density clustering algorithm the paper uses to
//
//   - derive the core/border/noise density tag of each positioning
//     record (feature fem, Table II),
//   - initialise the event variable E in Algorithm 1 (noise → pass,
//     core/border → stay), and
//   - segment trajectories in the HMM+DC and SAPDA baselines.
//
// Two records are neighbours when they are within spatial distance
// EpsS *and* temporal distance EpsT of each other; a cluster needs at
// least MinPts records.
package cluster

import "fmt"

// Density is the density tag assigned to a point by ST-DBSCAN.
type Density uint8

// Density tags. Noise points are not part of any cluster; core points
// have a dense neighbourhood; border points are density-reachable from
// a core point without being cores themselves.
const (
	Noise Density = iota
	Border
	Core
)

func (d Density) String() string {
	switch d {
	case Noise:
		return "noise"
	case Border:
		return "border"
	case Core:
		return "core"
	default:
		return fmt.Sprintf("density(%d)", uint8(d))
	}
}

// Point is one spatio-temporal observation. Floor carries the indoor
// floor number: points on different floors are never neighbours.
type Point struct {
	X, Y  float64
	Floor int
	T     float64 // seconds
}

// Params are the three ST-DBSCAN thresholds, named after the paper
// (§III-B (2)): εs, εt and ptm.
type Params struct {
	EpsS   float64 // spatial radius, meters
	EpsT   float64 // temporal radius, seconds
	MinPts int     // minimum neighbourhood size (the point itself counts)
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.EpsS <= 0 || p.EpsT <= 0 {
		return fmt.Errorf("cluster: EpsS and EpsT must be positive (got %g, %g)", p.EpsS, p.EpsT)
	}
	if p.MinPts < 1 {
		return fmt.Errorf("cluster: MinPts must be >= 1 (got %d)", p.MinPts)
	}
	return nil
}

// Result holds the clustering output, index-aligned with the input
// points.
type Result struct {
	// Cluster holds the cluster ID of each point (-1 for noise).
	Cluster []int
	// Tag holds the density tag of each point.
	Tag []Density
	// NumClusters is the number of clusters found.
	NumClusters int
}

// NoCluster marks points that belong to no cluster.
const NoCluster = -1

// Scratch holds the working buffers of a clustering run so that
// callers tagging many sequences (one Run per p-sequence) can reuse
// them via RunScratch instead of allocating per call.
type Scratch struct {
	visited    []bool
	nbuf, qbuf []int
}

// Run clusters the points. The input is assumed time-ordered (as
// p-sequences are); the neighbourhood scan exploits this to examine
// only the temporal window around each point, giving O(n·w) behaviour
// where w is the window width.
func Run(points []Point, params Params) (Result, error) {
	var res Result
	if err := RunScratch(points, params, &res, &Scratch{}); err != nil {
		return Result{}, err
	}
	return res, nil
}

// RunScratch is Run writing into res and drawing every working buffer
// from res and sc, both of which are grown as needed and fully
// overwritten. Steady-state it allocates nothing.
func RunScratch(points []Point, params Params, res *Result, sc *Scratch) error {
	if err := params.Validate(); err != nil {
		return err
	}
	n := len(points)
	res.Cluster = growSlice(res.Cluster, n)
	res.Tag = growSlice(res.Tag, n)
	res.NumClusters = 0
	for i := range res.Cluster {
		res.Cluster[i] = NoCluster
		res.Tag[i] = Noise
	}
	if n == 0 {
		return nil
	}

	neighbors := func(i int, dst []int) []int {
		dst = dst[:0]
		// Scan backwards and forwards inside the temporal window.
		for j := i - 1; j >= 0 && points[i].T-points[j].T <= params.EpsT; j-- {
			if near(points[i], points[j], params.EpsS) {
				dst = append(dst, j)
			}
		}
		dst = append(dst, i)
		for j := i + 1; j < n && points[j].T-points[i].T <= params.EpsT; j++ {
			if near(points[i], points[j], params.EpsS) {
				dst = append(dst, j)
			}
		}
		return dst
	}

	visited := growSlice(sc.visited, n)
	for i := range visited {
		visited[i] = false
	}
	nbuf, qbuf := sc.nbuf, sc.qbuf
	clusterID := 0
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		nbuf = neighbors(i, nbuf)
		if len(nbuf) < params.MinPts {
			continue // stays noise unless later claimed as border
		}
		// Start a new cluster and expand it breadth-first.
		res.Tag[i] = Core
		res.Cluster[i] = clusterID
		qbuf = append(qbuf[:0], nbuf...)
		for qi := 0; qi < len(qbuf); qi++ {
			j := qbuf[qi]
			if res.Cluster[j] == NoCluster {
				res.Cluster[j] = clusterID
				if res.Tag[j] != Core {
					res.Tag[j] = Border
				}
			}
			if visited[j] {
				continue
			}
			visited[j] = true
			nbuf = neighbors(j, nbuf)
			if len(nbuf) >= params.MinPts {
				res.Tag[j] = Core
				qbuf = append(qbuf, nbuf...)
			}
		}
		clusterID++
	}
	res.NumClusters = clusterID
	sc.visited, sc.nbuf, sc.qbuf = visited, nbuf, qbuf
	return nil
}

func near(a, b Point, epsS float64) bool {
	if a.Floor != b.Floor {
		return false
	}
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx+dy*dy <= epsS*epsS
}

// growSlice returns s resized to n entries, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
