package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{EpsS: 0, EpsT: 1, MinPts: 1},
		{EpsS: 1, EpsT: 0, MinPts: 1},
		{EpsS: 1, EpsT: 1, MinPts: 0},
		{EpsS: -1, EpsT: 1, MinPts: 1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", p)
		}
	}
	if err := (Params{EpsS: 1, EpsT: 1, MinPts: 1}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestEmptyInput(t *testing.T) {
	res, err := Run(nil, Params{EpsS: 1, EpsT: 1, MinPts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 || len(res.Cluster) != 0 {
		t.Errorf("empty result = %+v", res)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run([]Point{{}}, Params{}); err == nil {
		t.Errorf("invalid params should error")
	}
}

// stayPoints produces n points densely packed at (x, y) starting at t0,
// one second apart.
func stayPoints(x, y, t0 float64, n int, rng *rand.Rand) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			X: x + rng.Float64()*0.5,
			Y: y + rng.Float64()*0.5,
			T: t0 + float64(i),
		}
	}
	return pts
}

func TestTwoStaysSeparatedByMove(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var pts []Point
	pts = append(pts, stayPoints(0, 0, 0, 10, rng)...)
	// Fast pass: points far apart spatially.
	for i := 0; i < 5; i++ {
		pts = append(pts, Point{X: 10 + float64(i)*20, Y: 0, T: 10 + float64(i)})
	}
	pts = append(pts, stayPoints(100, 0, 15, 10, rng)...)

	res, err := Run(pts, Params{EpsS: 2, EpsT: 5, MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Fatalf("NumClusters = %d, want 2", res.NumClusters)
	}
	// The two stays end up in different clusters.
	if res.Cluster[0] == res.Cluster[len(pts)-1] {
		t.Errorf("stays merged into one cluster")
	}
	// The pass points are noise.
	for i := 10; i < 15; i++ {
		if res.Tag[i] != Noise || res.Cluster[i] != NoCluster {
			t.Errorf("pass point %d tagged %v cluster %d", i, res.Tag[i], res.Cluster[i])
		}
	}
	// Interior stay points are core.
	if res.Tag[5] != Core {
		t.Errorf("interior stay point tagged %v", res.Tag[5])
	}
}

func TestTemporalSeparationSplitsClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Same place, visited twice with a long gap: temporal epsilon keeps
	// the visits apart.
	var pts []Point
	pts = append(pts, stayPoints(0, 0, 0, 8, rng)...)
	pts = append(pts, stayPoints(0, 0, 1000, 8, rng)...)
	res, err := Run(pts, Params{EpsS: 2, EpsT: 10, MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Fatalf("NumClusters = %d, want 2 (temporal split)", res.NumClusters)
	}
	if res.Cluster[0] == res.Cluster[8] {
		t.Errorf("temporally distant visits merged")
	}
}

func TestFloorSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := stayPoints(0, 0, 0, 8, rng)
	b := stayPoints(0, 0, 8, 8, rng)
	for i := range b {
		b[i].Floor = 1
	}
	pts := append(a, b...)
	res, err := Run(pts, Params{EpsS: 2, EpsT: 100, MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Fatalf("NumClusters = %d, want 2 (floor split)", res.NumClusters)
	}
}

func TestMinPtsBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := stayPoints(0, 0, 0, 3, rng)
	// MinPts 4 > 3 available: all noise.
	res, err := Run(pts, Params{EpsS: 2, EpsT: 10, MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 {
		t.Errorf("NumClusters = %d, want 0", res.NumClusters)
	}
	for i, tag := range res.Tag {
		if tag != Noise {
			t.Errorf("point %d tagged %v, want noise", i, tag)
		}
	}
	// MinPts 3 == 3 available: one cluster.
	res, err = Run(pts, Params{EpsS: 2, EpsT: 10, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 {
		t.Errorf("NumClusters = %d, want 1", res.NumClusters)
	}
}

func TestBorderPoints(t *testing.T) {
	// A tight core with a point on the fringe: the fringe point's own
	// neighbourhood is too small, so it becomes a border point.
	pts := []Point{
		{X: 0, Y: 0, T: 0},
		{X: 0.1, Y: 0, T: 1},
		{X: 0.2, Y: 0, T: 2},
		{X: 0.1, Y: 0.1, T: 3},
		{X: 1.9, Y: 0, T: 4}, // within EpsS of core points near x≈0.2 only
	}
	res, err := Run(pts, Params{EpsS: 2, EpsT: 10, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 {
		t.Fatalf("NumClusters = %d, want 1", res.NumClusters)
	}
	// Point 4 is reachable but cannot be core itself with MinPts=5 if
	// we move it out a bit more; with this layout all points see all
	// others, so instead verify tags are consistent: every border point
	// belongs to a cluster.
	for i := range pts {
		if res.Tag[i] == Border && res.Cluster[i] == NoCluster {
			t.Errorf("border point %d without cluster", i)
		}
	}
}

func TestDensityString(t *testing.T) {
	if Noise.String() != "noise" || Border.String() != "border" || Core.String() != "core" {
		t.Errorf("Density.String wrong")
	}
	if Density(9).String() == "" {
		t.Errorf("unknown density should still format")
	}
}

func TestInvariants(t *testing.T) {
	// Property-based: for random inputs,
	//  1. clusters are labelled 0..NumClusters-1,
	//  2. noise points have no cluster, non-noise points have one,
	//  3. every cluster contains at least one core point,
	//  4. every cluster has at least MinPts members.
	f := func(seed int64, n uint8, minPts uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := make([]Point, int(n))
		tcur := 0.0
		for i := range pts {
			tcur += rng.Float64() * 5
			pts[i] = Point{
				X:     rng.Float64() * 30,
				Y:     rng.Float64() * 30,
				Floor: rng.Intn(2),
				T:     tcur,
			}
		}
		params := Params{EpsS: 3, EpsT: 8, MinPts: 1 + int(minPts%6)}
		res, err := Run(pts, params)
		if err != nil {
			return false
		}
		counts := make(map[int]int)
		coreIn := make(map[int]bool)
		for i := range pts {
			c := res.Cluster[i]
			if res.Tag[i] == Noise && c != NoCluster {
				return false
			}
			if res.Tag[i] != Noise && (c < 0 || c >= res.NumClusters) {
				return false
			}
			if c != NoCluster {
				counts[c]++
				if res.Tag[i] == Core {
					coreIn[c] = true
				}
			}
		}
		for c := 0; c < res.NumClusters; c++ {
			if counts[c] == 0 || !coreIn[c] {
				return false
			}
			if counts[c] < params.MinPts {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOrderStability(t *testing.T) {
	// Clustering a time-ordered sequence should be deterministic.
	rng := rand.New(rand.NewSource(5))
	var pts []Point
	pts = append(pts, stayPoints(0, 0, 0, 20, rng)...)
	pts = append(pts, stayPoints(50, 50, 30, 20, rng)...)
	p := Params{EpsS: 2, EpsT: 10, MinPts: 4}
	r1, _ := Run(pts, p)
	r2, _ := Run(pts, p)
	for i := range pts {
		if r1.Cluster[i] != r2.Cluster[i] || r1.Tag[i] != r2.Tag[i] {
			t.Fatalf("non-deterministic result at %d", i)
		}
	}
}
