package eval

import (
	"math"
	"testing"

	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

func mkLabels(regions []indoor.RegionID, events []seq.Event) seq.Labels {
	return seq.Labels{Regions: regions, Events: events}
}

func TestCounterMetrics(t *testing.T) {
	truth := mkLabels(
		[]indoor.RegionID{1, 1, 2, 3},
		[]seq.Event{seq.Stay, seq.Stay, seq.Pass, seq.Pass},
	)
	pred := mkLabels(
		[]indoor.RegionID{1, 2, 2, 3},                       // 3/4 regions right
		[]seq.Event{seq.Stay, seq.Stay, seq.Stay, seq.Pass}, // 3/4 events right
	)
	var c Counter
	if err := c.Add(truth, pred); err != nil {
		t.Fatal(err)
	}
	a := c.Result(0.7)
	if a.RA != 0.75 || a.EA != 0.75 {
		t.Errorf("RA=%v EA=%v", a.RA, a.EA)
	}
	if math.Abs(a.CA-0.75) > 1e-12 {
		t.Errorf("CA = %v", a.CA)
	}
	// Records 0 and 3 have both labels right.
	if a.PA != 0.5 {
		t.Errorf("PA = %v", a.PA)
	}
	if a.Records != 4 {
		t.Errorf("Records = %d", a.Records)
	}
}

func TestCounterCALambda(t *testing.T) {
	truth := mkLabels([]indoor.RegionID{1, 1}, []seq.Event{seq.Stay, seq.Stay})
	pred := mkLabels([]indoor.RegionID{1, 2}, []seq.Event{seq.Stay, seq.Stay})
	var c Counter
	_ = c.Add(truth, pred)
	// RA = 0.5, EA = 1.
	a := c.Result(0.7)
	if math.Abs(a.CA-(0.7*0.5+0.3*1)) > 1e-12 {
		t.Errorf("CA = %v", a.CA)
	}
	a = c.Result(0)
	if a.CA != 1 {
		t.Errorf("lambda=0 CA = %v", a.CA)
	}
}

func TestCounterErrors(t *testing.T) {
	var c Counter
	err := c.Add(
		mkLabels([]indoor.RegionID{1}, []seq.Event{seq.Stay}),
		mkLabels([]indoor.RegionID{1, 2}, []seq.Event{seq.Stay, seq.Stay}),
	)
	if err == nil {
		t.Errorf("misaligned labels should fail")
	}
	if a := c.Result(0.7); a.Records != 0 || a.RA != 0 {
		t.Errorf("empty counter result = %+v", a)
	}
}

func mkDataset(n int) []seq.LabeledSequence {
	out := make([]seq.LabeledSequence, n)
	for i := range out {
		out[i].P.ObjectID = string(rune('a' + i))
		out[i].P.Records = []seq.Record{{T: float64(i)}}
		out[i].Labels = seq.NewLabels(1)
	}
	return out
}

func TestSplit(t *testing.T) {
	data := mkDataset(10)
	train, test := Split(data, 0.7, 1)
	if len(train) != 7 || len(test) != 3 {
		t.Fatalf("split sizes = %d/%d", len(train), len(test))
	}
	// No overlap, full coverage.
	seen := map[string]int{}
	for _, s := range train {
		seen[s.P.ObjectID]++
	}
	for _, s := range test {
		seen[s.P.ObjectID]++
	}
	if len(seen) != 10 {
		t.Errorf("coverage = %d ids", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("id %q appears %d times", id, n)
		}
	}
	// Deterministic for same seed, different for another.
	tr2, _ := Split(data, 0.7, 1)
	for i := range train {
		if train[i].P.ObjectID != tr2[i].P.ObjectID {
			t.Errorf("split not deterministic")
		}
	}
}

func TestSplitEdges(t *testing.T) {
	data := mkDataset(3)
	train, test := Split(data, 1.0, 2)
	if len(train) != 3 || len(test) != 0 {
		t.Errorf("full split = %d/%d", len(train), len(test))
	}
	train, test = Split(data, 0, 2)
	if len(train) != 0 || len(test) != 3 {
		t.Errorf("empty split = %d/%d", len(train), len(test))
	}
}

func TestKFold(t *testing.T) {
	folds := KFold(10, 3, 1)
	if len(folds) != 3 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := map[int]bool{}
	for _, f := range folds {
		if len(f) < 3 || len(f) > 4 {
			t.Errorf("fold size %d", len(f))
		}
		for _, i := range f {
			if seen[i] {
				t.Errorf("index %d in two folds", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 10 {
		t.Errorf("coverage %d", len(seen))
	}
	if KFold(0, 3, 1) != nil {
		t.Errorf("n=0 should be nil")
	}
	if got := KFold(2, 5, 1); len(got) != 2 {
		t.Errorf("k>n should clamp: %d folds", len(got))
	}
}
