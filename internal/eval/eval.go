// Package eval implements the paper's labeling metrics (§V-A): region
// accuracy RA, event accuracy EA, combined accuracy CA = λ·RA +
// (1−λ)·EA, and perfect accuracy PA (both labels correct), plus
// train/test splitting and k-fold cross-validation utilities.
package eval

import (
	"fmt"
	"math/rand"

	"c2mn/internal/seq"
)

// DefaultLambda is the CA trade-off the paper uses (λ = 0.7: region
// labels matter more).
const DefaultLambda = 0.7

// Accuracy aggregates the four labeling metrics.
type Accuracy struct {
	RA, EA, CA, PA float64
	Records        int
}

// Counter accumulates per-record outcomes across sequences.
type Counter struct {
	records int
	okR     int
	okE     int
	okBoth  int
}

// Add compares one sequence's prediction against its truth.
func (c *Counter) Add(truth, pred seq.Labels) error {
	n := len(truth.Regions)
	if len(pred.Regions) != n || len(pred.Events) != n || len(truth.Events) != n {
		return fmt.Errorf("eval: label lengths differ (truth %d/%d, pred %d/%d)",
			len(truth.Regions), len(truth.Events), len(pred.Regions), len(pred.Events))
	}
	for i := 0; i < n; i++ {
		c.records++
		r := truth.Regions[i] == pred.Regions[i]
		e := truth.Events[i] == pred.Events[i]
		if r {
			c.okR++
		}
		if e {
			c.okE++
		}
		if r && e {
			c.okBoth++
		}
	}
	return nil
}

// Result finalises the metrics with the CA trade-off lambda.
func (c *Counter) Result(lambda float64) Accuracy {
	if c.records == 0 {
		return Accuracy{}
	}
	n := float64(c.records)
	a := Accuracy{
		RA:      float64(c.okR) / n,
		EA:      float64(c.okE) / n,
		PA:      float64(c.okBoth) / n,
		Records: c.records,
	}
	a.CA = lambda*a.RA + (1-lambda)*a.EA
	return a
}

// Split shuffles the sequences with the seed and splits them into a
// training set of ⌈frac·n⌉ sequences and a test set of the rest.
func Split(data []seq.LabeledSequence, frac float64, seedVal int64) (train, test []seq.LabeledSequence) {
	idx := rand.New(rand.NewSource(seedVal)).Perm(len(data))
	nTrain := int(frac*float64(len(data)) + 0.9999)
	if nTrain > len(data) {
		nTrain = len(data)
	}
	for i, j := range idx {
		if i < nTrain {
			train = append(train, data[j])
		} else {
			test = append(test, data[j])
		}
	}
	return train, test
}

// KFold returns k disjoint test folds (as index slices) covering all n
// items, shuffled by the seed. Fold sizes differ by at most one.
func KFold(n, k int, seedVal int64) [][]int {
	if k <= 0 || n <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	idx := rand.New(rand.NewSource(seedVal)).Perm(n)
	folds := make([][]int, k)
	for i, j := range idx {
		folds[i%k] = append(folds[i%k], j)
	}
	return folds
}
