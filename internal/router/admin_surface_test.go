package router

// Tests for the consolidated /v1/admin mirror: the deprecated /admin/*
// aliases' steering headers, the proxied backend admin tree with the
// retrain/migration guard, and the typed 404/405 envelope.

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func adminReq(t *testing.T, method, url, token string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func envelopeCode(t *testing.T, resp *http.Response) string {
	t.Helper()
	var body struct {
		Error wireError `json:"error"`
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding envelope: %v", err)
	}
	return body.Error.Code
}

// TestRouterAdminMirror: the router's own admin plane answers under
// /v1/admin/, the /admin/* mounts alias it with deprecation steering,
// and both share the token gate.
func TestRouterAdminMirror(t *testing.T) {
	a := newFakeBackend(t)
	a.venues["north"] = &fakeVenue{}
	rt := testRouter(t, Config{AdminToken: "sesame"}, a)
	srv := routerServer(t, rt)

	for _, path := range []string{"/v1/admin/backends", "/admin/backends"} {
		resp := adminReq(t, "GET", srv.URL+path, "")
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("GET %s without token: %d, want 401", path, resp.StatusCode)
		}
	}

	resp := adminReq(t, "GET", srv.URL+"/v1/admin/backends", "sesame")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/admin/backends: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Deprecation"); got != "" {
		t.Errorf("canonical mount marked deprecated: %q", got)
	}

	resp = adminReq(t, "GET", srv.URL+"/admin/backends", "sesame")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /admin/backends: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Deprecation"); got != "true" {
		t.Errorf("alias Deprecation %q, want true", got)
	}
	if got, want := resp.Header.Get("Link"), `</v1/admin/backends>; rel="successor-version"`; got != want {
		t.Errorf("alias Link %q, want %q", got, want)
	}
}

// TestRouterProxiesAdminVenueTree: the backends' consolidated admin
// tree forwards to the venue's owner, and a retrain trigger against a
// migrating venue is refused router-side with the typed conflict.
func TestRouterProxiesAdminVenueTree(t *testing.T) {
	a := newFakeBackend(t)
	a.venues["north"] = &fakeVenue{}
	rt := testRouter(t, Config{}, a)
	srv := routerServer(t, rt)

	resp := adminReq(t, "POST", srv.URL+"/v1/admin/venues/north/retrain", "")
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("proxied retrain: %d (%s)", resp.StatusCode, body)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	log := a.callLog()
	if len(log) == 0 || log[len(log)-1] != "retrain north" {
		t.Fatalf("backend call log %v, want a retrain forward", log)
	}

	// Mid-migration the guard answers before the backend sees anything.
	rt.mu.Lock()
	rt.migrating["north"] = true
	rt.mu.Unlock()
	before := len(a.callLog())
	resp = adminReq(t, "POST", srv.URL+"/v1/admin/venues/north/retrain", "")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("retrain while migrating: %d, want 409", resp.StatusCode)
	}
	if code := envelopeCode(t, resp); code != "migration_conflict" {
		t.Fatalf("guard code %q, want migration_conflict", code)
	}
	if got := len(a.callLog()); got != before {
		t.Fatalf("guarded retrain still reached the backend (%d calls, was %d)", got, before)
	}

	// Other admin subpaths pass through the guard untouched, migrating
	// or not (the drain below is the migration's own tool).
	resp = adminReq(t, "POST", srv.URL+"/v1/admin/venues/north/drain", "")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied drain while migrating: %d, want 200", resp.StatusCode)
	}
}

// TestRouterV1Envelope405And404: the router's mux errors under /v1
// carry the typed envelope with Allow preserved.
func TestRouterV1Envelope405And404(t *testing.T) {
	a := newFakeBackend(t)
	a.venues["north"] = &fakeVenue{}
	rt := testRouter(t, Config{}, a)
	srv := routerServer(t, rt)

	resp := adminReq(t, "DELETE", srv.URL+"/v1/query", "")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /v1/query: %d, want 405", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("405 Content-Type %q, want JSON envelope", ct)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "POST") {
		t.Fatalf("405 Allow %q lost the method list", allow)
	}
	if code := envelopeCode(t, resp); code != "method_not_allowed" {
		t.Fatalf("405 code %q", code)
	}

	resp = adminReq(t, "GET", srv.URL+"/v1/nope", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/nope: %d, want 404", resp.StatusCode)
	}
	if code := envelopeCode(t, resp); code != "not_found" {
		t.Fatalf("404 code %q", code)
	}
}
