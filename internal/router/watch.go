package router

// The routing tier's continuous-query endpoint: GET /v1/watch (and the
// venue-scoped GET /v1/venues/{venue}/watch) serves one client SSE
// stream multiplexed over per-owner upstream /v1/watch subscriptions.
// Each watched venue gets a goroutine that subscribes to the venue's
// owning backend with k = AllCounts — untruncated partials, the same
// invariant the scatter path relies on — and folds nothing itself: it
// relays parsed events into the merge loop, which owns every fold,
// re-merges through the exact merge helpers, truncates to the client's
// k, and pushes snapshot/delta events with composite-generation ids
// identical in shape to a single msserve's.
//
// Upstream subscriptions are self-healing: on stream end, backend
// death, or a draining goodbye, the goroutine re-resolves the venue's
// owner (which tracks migration pins and health) and reconnects with
// Last-Event-ID, so an unchanged store resumes without a duplicate
// snapshot and a migrated venue's generation jump forces the fresh
// snapshot that keeps the merged answer exact.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"c2mn"
	"c2mn/internal/notify"
	"c2mn/internal/query"
)

// upstreamMsg is one parsed event relayed from a venue's upstream
// subscription into the client stream's merge loop. Data-bearing
// messages always carry the generation parsed from the upstream event
// id — the relay validates ids before relaying (an unparseable one is
// a protocol error that forces a resubscribe), so the merge loop never
// folds bytes whose generation is unknown and the client's composite
// id always covers exactly the bytes it stamps.
type upstreamMsg struct {
	venue string
	gen   uint64               // generation of the relayed bytes
	snap  *notify.SnapshotData // snapshot/resync: replace the venue's fold
	delta *notify.DeltaData    // delta: patch the venue's fold
	gone  bool                 // the venue is unloaded fleet-wide
}

// handleWatch serves the router's continuous-query stream.
func (rt *Router) handleWatch(w http.ResponseWriter, r *http.Request) {
	kind := c2mn.QueryPopularRegions
	switch v := r.URL.Query().Get("kind"); v {
	case "", string(c2mn.QueryPopularRegions):
	case string(c2mn.QueryFrequentPairs):
		kind = c2mn.QueryFrequentPairs
	default:
		rt.writeError(w, r, http.StatusBadRequest,
			fmt.Errorf("bad kind %q (want %q or %q)", v, c2mn.QueryPopularRegions, c2mn.QueryFrequentPairs))
		return
	}
	vals := r.URL.Query()
	scope, venues := c2mn.QueryScope(""), []string(nil)
	switch {
	case r.PathValue("venue") != "":
		scope, venues = c2mn.ScopeVenue, []string{r.PathValue("venue")}
	case vals.Get("venue") != "":
		scope, venues = c2mn.ScopeVenue, []string{vals.Get("venue")}
	case vals.Get("venues") != "":
		scope, venues = c2mn.ScopeVenues, strings.Split(vals.Get("venues"), ",")
	case vals.Get("scope") == "fleet":
		scope = c2mn.ScopeFleet
	case vals.Get("scope") != "":
		rt.writeError(w, r, http.StatusBadRequest,
			fmt.Errorf("bad scope %q (only \"fleet\" may be given without venues)", vals.Get("scope")))
		return
	default:
		known := rt.knownVenues()
		if len(known) != 1 {
			rt.writeError(w, r, http.StatusBadRequest,
				fmt.Errorf("%d venue(s) in the fleet: pass ?venue=, ?venues=a,b or ?scope=fleet", len(known)))
			return
		}
		scope, venues = c2mn.ScopeVenue, []string{known[0]}
	}
	regions, win, k, err := sugarParams(r)
	if err != nil {
		rt.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	nq, err := normalizeQuery(c2mn.Query{Kind: kind, Scope: scope, Venues: venues, Regions: regions, Window: win, K: k})
	if err != nil {
		rt.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	// The watched venue set is resolved once, at connect: membership is
	// what the stream's exactness is defined over. Fleet clients pick up
	// venues added later by reconnecting (the goodbye/heartbeat contract
	// documents this).
	watched := nq.Venues
	if scope == c2mn.ScopeFleet {
		watched = rt.knownVenues()
	}
	if len(watched) == 0 {
		rt.writeError(w, r, http.StatusServiceUnavailable,
			fmt.Errorf("%w: no venues known to the fleet", c2mn.ErrNoBackend))
		return
	}

	hb := rt.cfg.WatchHeartbeat
	sw, err := notify.NewSSEWriter(w, 3*hb)
	if err != nil {
		rt.writeError(w, r, http.StatusInternalServerError, err)
		return
	}

	// One relay goroutine per venue; all funnel into the merge loop.
	// The channel is sized so a burst across venues rarely blocks a
	// relay (blocking is still safe — it backpressures the upstream
	// read, never a backend's write path).
	msgs := make(chan upstreamMsg, 4*len(watched))
	ctx := r.Context()
	params := upstreamParams(nq)
	for _, v := range watched {
		go rt.watchUpstream(ctx, v, params, msgs)
	}

	// Per-venue untruncated folds and generations. The client answer is
	// merged from every fold and truncated to the client's k; its id is
	// the composite of the per-venue generations — the same bytes a
	// single msserve holding these venues would stamp.
	folds := map[string]notify.Answer{}
	gens := map[string]uint64{}
	waiting := make(map[string]bool, len(watched))
	for _, v := range watched {
		waiting[v] = true
	}
	var answer notify.Answer
	curID, started := "", false
	clientLast := r.Header.Get("Last-Event-ID")

	// The first client event waits for a snapshot from every watched
	// venue; a venue whose owner never resolves (backend down and
	// staying down) must not leave the stream heartbeating forever with
	// no data — the poll path would have returned an error. The gather
	// is bounded: past the deadline the stream ends with a goodbye, and
	// the client's reconnect retries against whatever has recovered.
	connect := time.NewTimer(rt.cfg.WatchConnectTimeout)
	defer connect.Stop()
	connectC := connect.C

	ticker := time.NewTicker(hb)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-rt.watchStop:
			sw.Event("goodbye", curID, notify.GoodbyeData{Reason: notify.ReasonDraining})
			return
		case <-connectC:
			rt.cfg.Logf("watch: %d of %d venue(s) still unresolved after %v; ending stream",
				len(waiting), len(watched), rt.cfg.WatchConnectTimeout)
			sw.Event("goodbye", curID, notify.GoodbyeData{Reason: notify.ReasonError})
			return
		case <-ticker.C:
			if err := sw.Comment("hb"); err != nil {
				return
			}
		case m := <-msgs:
			if m.gone {
				if scope != c2mn.ScopeFleet {
					// An explicitly watched venue is gone fleet-wide: the
					// stream cannot stay exact. Same contract as msserve.
					sw.Event("goodbye", curID, notify.GoodbyeData{Reason: notify.ReasonUnknownVenue})
					return
				}
				// Fleet scope skips vanished venues, like the scatter path.
				delete(folds, m.venue)
				delete(gens, m.venue)
				delete(waiting, m.venue)
			} else {
				switch {
				case m.snap != nil:
					folds[m.venue] = notify.Answer{Kind: m.snap.Kind, Regions: m.snap.Regions, Pairs: m.snap.Pairs}
					delete(waiting, m.venue)
				case m.delta != nil:
					prev, ok := folds[m.venue]
					if !ok {
						continue // delta before any snapshot: stale relay, drop
					}
					folds[m.venue] = notify.Apply(prev, *m.delta)
				}
				gens[m.venue] = m.gen
			}
			if len(waiting) > 0 {
				continue // the first client event needs every venue's partial
			}
			if connectC != nil {
				connect.Stop()
				connectC = nil // gather complete: the deadline is disarmed
			}
			merged := mergeFolds(string(nq.Kind), nq.K, folds)
			newID := notify.EncodeEventID(gens)
			if !started {
				started = true
				answer, curID = merged, newID
				if clientLast != "" && clientLast == newID {
					continue // exact resume: the client already holds these bytes
				}
				if err := sw.Event("snapshot", newID, watchSnapshotData(nq, gens, merged)); err != nil {
					return
				}
				continue
			}
			if newID == curID {
				continue
			}
			delta := notify.Diff(answer, merged)
			if delta.Empty() {
				continue // stores moved, merged top-k did not: nothing to push
			}
			if err := sw.Event("delta", newID, delta); err != nil {
				return
			}
			answer, curID = merged, newID
		}
	}
}

// watchSnapshotData renders the merged answer as the client's
// snapshot payload; scanned is the sorted watched-venue set, matching
// /v1/query's Scanned for the same scope.
func watchSnapshotData(nq c2mn.Query, gens map[string]uint64, merged notify.Answer) notify.SnapshotData {
	scanned := make([]string, 0, len(gens))
	for v := range gens {
		scanned = append(scanned, v)
	}
	sort.Strings(scanned)
	return notify.SnapshotData{
		Kind:    string(nq.Kind),
		K:       nq.K,
		Scanned: scanned,
		Regions: merged.Regions,
		Pairs:   merged.Pairs,
	}
}

// mergeFolds merges the per-venue untruncated partials exactly and
// truncates to the client's k — the push-plane twin of scatter's merge.
func mergeFolds(kind string, k int, folds map[string]notify.Answer) notify.Answer {
	regionLists := make([][]query.RegionCount, 0, len(folds))
	pairLists := make([][]query.PairCount, 0, len(folds))
	for _, f := range folds {
		regionLists = append(regionLists, f.Regions)
		pairLists = append(pairLists, f.Pairs)
	}
	return notify.Answer{
		Kind:    kind,
		Regions: query.TruncateRegionCounts(query.MergeRegionCounts(regionLists...), k),
		Pairs:   query.TruncatePairCounts(query.MergePairCounts(pairLists...), k),
	}
}

// parseVenueGen extracts the generation from an upstream single-venue
// event id ("venue:gen", venue escaped).
func parseVenueGen(venue, id string) (uint64, bool) {
	gens, ok := notify.ParseEventID(id)
	if !ok {
		return 0, false
	}
	g, ok := gens[venue]
	return g, ok
}

// upstreamParams renders the standing query as the query string of the
// venue-scoped upstream watch: k = AllCounts so partials arrive
// untruncated, window bounds formatted to round-trip float64 exactly.
func upstreamParams(nq c2mn.Query) string {
	up := url.Values{}
	up.Set("kind", string(nq.Kind))
	up.Set("k", strconv.Itoa(query.AllCounts))
	if len(nq.Regions) > 0 {
		parts := make([]string, len(nq.Regions))
		for i, id := range nq.Regions {
			parts[i] = strconv.Itoa(int(id))
		}
		up.Set("regions", strings.Join(parts, ","))
	}
	if nq.Window != nil {
		up.Set("start", strconv.FormatFloat(nq.Window.Start, 'g', -1, 64))
		up.Set("end", strconv.FormatFloat(nq.Window.End, 'g', -1, 64))
	}
	return up.Encode()
}

// watchUpstream maintains one venue's upstream subscription for the
// life of the client stream: resolve the owner, subscribe with
// Last-Event-ID, relay events, reconnect on any end of stream. Owner
// resolution already encodes migration pins and backend health, so
// cutover and death handling are the same code path: re-resolve and
// resume. Consecutive unknown-venue answers (bounded, so a venue
// mid-migration — unloaded from the source, restoring on the target —
// is not mistaken for a gone one) report the venue gone.
//
// "Any end of stream" is not enough on its own: a backend that wedges
// (or a half-open connection whose peer died without a FIN) never ends
// the stream, and a backend that lost ownership but still hosts the
// venue keeps heartbeating a copy that will never move again. Both
// failures are invisible to a blocked read, so each established
// subscription runs a watchdog (watchStream) that force-closes the
// response body — which is what makes the reconnect-and-re-resolve
// path actually reachable — when the stream goes frame-silent past
// WatchIdleTimeout or the venue's owner stops being the connected
// backend.
func (rt *Router) watchUpstream(ctx context.Context, venue, params string, out chan<- upstreamMsg) {
	const goneAfter = 5
	lastID := ""
	unknown := 0
	backoff := 50 * time.Millisecond
	const maxBackoff = 2 * time.Second
	sleep := func() {
		select {
		case <-ctx.Done():
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
	send := func(m upstreamMsg) bool {
		select {
		case out <- m:
			return true
		case <-ctx.Done():
			return false
		}
	}
	for ctx.Err() == nil {
		backend, err := rt.owner(venue)
		if err != nil {
			sleep() // nothing ready: wait for the health sweep
			continue
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, venuePath(backend, venue, "watch")+"?"+params, nil)
		if err != nil {
			return
		}
		req.Header.Set("Accept", "text/event-stream")
		if lastID != "" {
			req.Header.Set("Last-Event-ID", lastID)
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			if ctx.Err() == nil {
				rt.markUnreachable(backend, err)
			}
			sleep()
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			if resp.StatusCode == http.StatusNotFound {
				if unknown++; unknown >= goneAfter {
					send(upstreamMsg{venue: venue, gone: true})
					return
				}
			}
			sleep()
			continue
		}
		reader := notify.NewEventReader(resp.Body)
		var lastFrame atomic.Int64
		lastFrame.Store(time.Now().UnixNano())
		done := make(chan struct{})
		go rt.watchStream(ctx, venue, backend, resp.Body, &lastFrame, done)
		// A data-bearing event whose id does not parse to this venue's
		// generation — or whose payload does not decode — is a protocol
		// error, not something to skip: folding its bytes (or folding past
		// it) would leave the venue's entry in the client's composite id
		// misstating the bytes actually pushed, breaking the resume
		// contract. The stream is dropped and resubscribed without a
		// Last-Event-ID, so the fresh connection starts from a full
		// snapshot whose id is validated again.
		protoErr := false
	read:
		for {
			ev, err := reader.Next()
			if err != nil {
				break // stream ended or watchdog-closed: reconnect
			}
			lastFrame.Store(time.Now().UnixNano())
			if ev.IsComment() {
				continue // upstream heartbeat; the client loop beats its own
			}
			switch ev.Name {
			case "snapshot", "resync":
				gen, ok := parseVenueGen(venue, ev.ID)
				var snap notify.SnapshotData
				if !ok || json.Unmarshal(ev.Data, &snap) != nil {
					protoErr = true
					break read
				}
				lastID = ev.ID
				unknown = 0
				backoff = 50 * time.Millisecond
				if !send(upstreamMsg{venue: venue, gen: gen, snap: &snap}) {
					close(done)
					resp.Body.Close()
					return
				}
			case "delta":
				gen, ok := parseVenueGen(venue, ev.ID)
				var delta notify.DeltaData
				if !ok || json.Unmarshal(ev.Data, &delta) != nil {
					protoErr = true
					break read
				}
				lastID = ev.ID
				unknown = 0
				if !send(upstreamMsg{venue: venue, gen: gen, delta: &delta}) {
					close(done)
					resp.Body.Close()
					return
				}
			case "goodbye":
				var bye notify.GoodbyeData
				_ = json.Unmarshal(ev.Data, &bye)
				if bye.Reason == notify.ReasonUnknownVenue {
					// The venue left this backend — migration cutover or an
					// unload. Re-resolve; repeated unknowns mean gone.
					if unknown++; unknown >= goneAfter {
						send(upstreamMsg{venue: venue, gone: true})
						close(done)
						resp.Body.Close()
						return
					}
				}
			}
		}
		close(done)
		resp.Body.Close()
		if protoErr {
			rt.cfg.Logf("watch: venue %q upstream %s sent an event with an unusable id or payload; resubscribing for a fresh snapshot", venue, backend)
			lastID = ""
		}
		if ctx.Err() == nil {
			sleep()
		}
	}
}

// watchStream is the per-subscription watchdog: while the relay is
// blocked reading one upstream response, it closes the body — the only
// way to unblock that read — when the stream produces no frame for
// WatchIdleTimeout, or when the venue's owner re-resolves to a
// different backend than the one the stream is connected to. The relay
// then reconnects through the normal path. Closing an already-closed
// response body is a no-op, so the watchdog never races the reader's
// own cleanup.
func (rt *Router) watchStream(ctx context.Context, venue, backend string, body io.Closer, lastFrame *atomic.Int64, done <-chan struct{}) {
	idle := rt.cfg.WatchIdleTimeout
	tick := idle / 8
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	if tick > 2*time.Second {
		tick = 2 * time.Second
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			return
		case <-ctx.Done():
			body.Close()
			return
		case <-ticker.C:
			if cur, err := rt.owner(venue); err == nil && cur != backend {
				rt.cfg.Logf("watch: venue %q moved %s -> %s; resubscribing", venue, backend, cur)
				body.Close()
				return
			}
			if since := time.Duration(time.Now().UnixNano() - lastFrame.Load()); since > idle {
				rt.cfg.Logf("watch: venue %q upstream %s silent for %v; resubscribing", venue, backend, since.Round(time.Second))
				body.Close()
				return
			}
		}
	}
}
